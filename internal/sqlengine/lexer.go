// Package sqlengine implements the SQL subset DataChat compiles skill DAGs
// into: SELECT with expressions, joins, grouping, having, ordering, limits,
// and subqueries in FROM. The engine executes against any Catalog of
// dataset.Tables and reports plan shape (query-block counts) so the DAG
// compiler's consolidation behaviour (paper §2.2, Figure 4) is observable.
package sqlengine

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer turns SQL text into tokens. Keywords are plain identifiers matched
// case-insensitively by the parser.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexQuotedIdent(); err != nil {
				return nil, err
			}
		default:
			if !l.lexOp() {
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isDigit(c byte) bool      { return c >= '0' && c <= '9' }

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		r := rune(l.src[l.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			l.pos++
			continue
		}
		break
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
			return
		}
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string starting at offset %d", start)
}

func (l *lexer) lexQuotedIdent() error {
	start := l.pos
	l.pos++ // opening quote
	end := strings.IndexByte(l.src[l.pos:], '"')
	if end < 0 {
		return fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[l.pos : l.pos+end], pos: start})
	l.pos += end + 1
	return nil
}

var twoCharOps = []string{"<=", ">=", "<>", "!=", "||"}

func (l *lexer) lexOp() bool {
	for _, op := range twoCharOps {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.tokens = append(l.tokens, token{kind: tokOp, text: op, pos: l.pos})
			l.pos += 2
			return true
		}
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.':
		l.tokens = append(l.tokens, token{kind: tokOp, text: string(c), pos: l.pos})
		l.pos++
		return true
	}
	return false
}
