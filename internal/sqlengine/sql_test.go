package sqlengine

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"datachat/internal/dataset"
)

func testCatalog() MapCatalog { return NewMapCatalog(testTables()) }

func testTables() map[string]*dataset.Table {
	people := dataset.MustNewTable("people",
		dataset.IntColumn("id", []int64{1, 2, 3, 4, 5}, nil),
		dataset.StringColumn("name", []string{"ann", "bob", "carl", "dee", "eve"}, nil),
		dataset.IntColumn("age", []int64{30, 25, 40, 25, 35}, nil),
		dataset.StringColumn("dept", []string{"eng", "eng", "sales", "sales", "hr"}, nil),
		dataset.FloatColumn("salary", []float64{100, 80, 90, 85, 0}, []bool{false, false, false, false, true}),
	)
	orders := dataset.MustNewTable("orders",
		dataset.IntColumn("order_id", []int64{10, 11, 12, 13}, nil),
		dataset.IntColumn("person_id", []int64{1, 1, 3, 9}, nil),
		dataset.FloatColumn("amount", []float64{5.5, 2.5, 10, 1}, nil),
	)
	return map[string]*dataset.Table{"people": people, "orders": orders}
}

func mustExec(t *testing.T, query string) *dataset.Table {
	t.Helper()
	out, err := Exec(testCatalog(), query)
	if err != nil {
		t.Fatalf("Exec(%q): %v", query, err)
	}
	return out
}

func colStrings(t *testing.T, tbl *dataset.Table, name string) []string {
	t.Helper()
	c, err := tbl.Column(name)
	if err != nil {
		t.Fatalf("column %q: %v", name, err)
	}
	out := make([]string, c.Len())
	for i := range out {
		out[i] = c.Value(i).String()
	}
	return out
}

func TestSelectStar(t *testing.T) {
	out := mustExec(t, "SELECT * FROM people")
	if out.NumRows() != 5 || out.NumCols() != 5 {
		t.Fatalf("shape = %d×%d", out.NumRows(), out.NumCols())
	}
}

func TestSelectProjectionAndAlias(t *testing.T) {
	out := mustExec(t, "SELECT name, age * 2 AS double_age FROM people WHERE id = 1")
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if got := colStrings(t, out, "double_age"); got[0] != "60" {
		t.Errorf("double_age = %v", got)
	}
}

func TestWhereOperators(t *testing.T) {
	cases := []struct {
		where string
		want  int
	}{
		{"age > 25", 3},
		{"age >= 25", 5},
		{"age = 25 AND dept = 'sales'", 1},
		{"age = 25 OR dept = 'hr'", 3},
		{"name LIKE 'a%'", 1},
		{"name NOT LIKE 'a%'", 4},
		{"age BETWEEN 26 AND 36", 2},
		{"age NOT BETWEEN 26 AND 36", 3},
		{"dept IN ('eng', 'hr')", 3},
		{"dept NOT IN ('eng', 'hr')", 2},
		{"salary IS NULL", 1},
		{"salary IS NOT NULL", 4},
		{"NOT (age > 25)", 2},
	}
	for _, c := range cases {
		out := mustExec(t, "SELECT id FROM people WHERE "+c.where)
		if out.NumRows() != c.want {
			t.Errorf("WHERE %s: rows = %d, want %d", c.where, out.NumRows(), c.want)
		}
	}
}

func TestGroupByAggregates(t *testing.T) {
	out := mustExec(t, `SELECT dept, COUNT(*) AS n, AVG(age) AS avg_age, SUM(salary) AS pay
		FROM people GROUP BY dept ORDER BY dept`)
	if out.NumRows() != 3 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	depts := colStrings(t, out, "dept")
	ns := colStrings(t, out, "n")
	if depts[0] != "eng" || ns[0] != "2" {
		t.Errorf("group 0 = %s/%s", depts[0], ns[0])
	}
	avg := colStrings(t, out, "avg_age")
	if avg[0] != "27.5" {
		t.Errorf("eng avg_age = %s", avg[0])
	}
	// hr has one row with null salary -> SUM null.
	pay := colStrings(t, out, "pay")
	if pay[1] != "null" {
		t.Errorf("hr pay = %s, want null", pay[1])
	}
}

func TestAggregatesWithoutGroupBy(t *testing.T) {
	out := mustExec(t, "SELECT COUNT(*) AS n, MIN(age) AS lo, MAX(age) AS hi, MEDIAN(age) AS med FROM people")
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if got := colStrings(t, out, "n")[0]; got != "5" {
		t.Errorf("n = %s", got)
	}
	if got := colStrings(t, out, "lo")[0]; got != "25" {
		t.Errorf("lo = %s", got)
	}
	if got := colStrings(t, out, "hi")[0]; got != "40" {
		t.Errorf("hi = %s", got)
	}
	if got := colStrings(t, out, "med")[0]; got != "30" {
		t.Errorf("med = %s", got)
	}
}

func TestCountDistinctAndNullSkipping(t *testing.T) {
	out := mustExec(t, "SELECT COUNT(DISTINCT dept) AS d, COUNT(salary) AS s FROM people")
	if got := colStrings(t, out, "d")[0]; got != "3" {
		t.Errorf("distinct depts = %s", got)
	}
	// COUNT(salary) skips the null.
	if got := colStrings(t, out, "s")[0]; got != "4" {
		t.Errorf("count salary = %s", got)
	}
}

func TestHaving(t *testing.T) {
	out := mustExec(t, "SELECT dept, COUNT(*) AS n FROM people GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept")
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if got := colStrings(t, out, "dept"); got[0] != "eng" || got[1] != "sales" {
		t.Errorf("depts = %v", got)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	out := mustExec(t, "SELECT name FROM people ORDER BY age DESC, name ASC LIMIT 2 OFFSET 1")
	got := colStrings(t, out, "name")
	// ages desc: carl(40), eve(35), ann(30), bob(25), dee(25); offset 1 limit 2 -> eve, ann
	if len(got) != 2 || got[0] != "eve" || got[1] != "ann" {
		t.Errorf("order/limit/offset = %v", got)
	}
}

func TestOrderByAlias(t *testing.T) {
	out := mustExec(t, "SELECT name, age * -1 AS neg FROM people ORDER BY neg")
	got := colStrings(t, out, "name")
	if got[0] != "carl" {
		t.Errorf("order by alias: first = %s", got[0])
	}
}

func TestDistinct(t *testing.T) {
	out := mustExec(t, "SELECT DISTINCT dept FROM people")
	if out.NumRows() != 3 {
		t.Errorf("distinct rows = %d", out.NumRows())
	}
}

func TestInnerJoin(t *testing.T) {
	out := mustExec(t, `SELECT p.name, o.amount FROM people p JOIN orders o ON p.id = o.person_id ORDER BY o.amount`)
	if out.NumRows() != 3 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	names := colStrings(t, out, "name")
	if names[0] != "ann" || names[2] != "carl" {
		t.Errorf("join names = %v", names)
	}
}

func TestLeftJoin(t *testing.T) {
	out := mustExec(t, `SELECT p.name, o.order_id FROM people p LEFT JOIN orders o ON p.id = o.person_id ORDER BY p.id`)
	// ann has 2 orders, carl 1, others null => 2+1+3 = 6 rows
	if out.NumRows() != 6 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	ids := colStrings(t, out, "order_id")
	nullCount := 0
	for _, s := range ids {
		if s == "null" {
			nullCount++
		}
	}
	if nullCount != 3 {
		t.Errorf("null order_ids = %d, want 3", nullCount)
	}
}

func TestCrossJoin(t *testing.T) {
	out := mustExec(t, "SELECT p.id, o.order_id FROM people p CROSS JOIN orders o")
	if out.NumRows() != 20 {
		t.Errorf("cross join rows = %d, want 20", out.NumRows())
	}
}

func TestJoinWithResidualPredicate(t *testing.T) {
	out := mustExec(t, `SELECT p.name FROM people p JOIN orders o ON p.id = o.person_id AND o.amount > 3`)
	if out.NumRows() != 2 { // ann's 5.5 and carl's 10
		t.Errorf("rows = %d, want 2", out.NumRows())
	}
}

func TestSubqueryInFrom(t *testing.T) {
	out := mustExec(t, `SELECT name FROM (SELECT name, age FROM people WHERE age > 25) t WHERE age < 40`)
	got := colStrings(t, out, "name")
	if len(got) != 2 { // ann(30), eve(35)
		t.Fatalf("rows = %v", got)
	}
}

func TestDeeplyNestedProjection(t *testing.T) {
	q := "SELECT id FROM (SELECT id, name FROM (SELECT id, name, age FROM people) a) b"
	out := mustExec(t, q)
	if out.NumRows() != 5 {
		t.Errorf("rows = %d", out.NumRows())
	}
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := CountSelectBlocks(stmt); got != 3 {
		t.Errorf("CountSelectBlocks = %d, want 3", got)
	}
}

func TestCaseExpression(t *testing.T) {
	out := mustExec(t, `SELECT name, CASE WHEN age >= 35 THEN 'senior' ELSE 'junior' END AS level FROM people ORDER BY id`)
	levels := colStrings(t, out, "level")
	want := []string{"junior", "junior", "senior", "junior", "senior"}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
}

func TestScalarFunctionsInQuery(t *testing.T) {
	out := mustExec(t, "SELECT UPPER(name) AS u, LENGTH(name) AS l FROM people WHERE id = 1")
	if got := colStrings(t, out, "u")[0]; got != "ANN" {
		t.Errorf("u = %s", got)
	}
	if got := colStrings(t, out, "l")[0]; got != "3" {
		t.Errorf("l = %s", got)
	}
}

func TestCastSyntax(t *testing.T) {
	out := mustExec(t, "SELECT CAST(age AS float) AS f FROM people WHERE id = 1")
	if got := colStrings(t, out, "f")[0]; got != "30" {
		t.Errorf("cast = %s", got)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	out := mustExec(t, "SELECT 1 + 2 AS three, 'x' AS s")
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if got := colStrings(t, out, "three")[0]; got != "3" {
		t.Errorf("three = %s", got)
	}
}

func TestStddev(t *testing.T) {
	out := mustExec(t, "SELECT STDDEV(age) AS sd FROM people WHERE dept = 'eng'")
	// ages 30, 25 -> mean 27.5, population stddev 2.5
	if got := colStrings(t, out, "sd")[0]; got != "2.5" {
		t.Errorf("stddev = %s", got)
	}
}

func TestDuplicateOutputNamesDisambiguated(t *testing.T) {
	out := mustExec(t, "SELECT age, age FROM people LIMIT 1")
	names := out.ColumnNames()
	if names[0] == names[1] {
		t.Errorf("duplicate output names not disambiguated: %v", names)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM people",
		"SELECT FROM people",
		"SELECT * FROM people WHERE",
		"SELECT * FROM people GROUP age",
		"SELECT * FROM (SELECT * FROM people",
		"SELECT * FROM people LIMIT x",
		"SELECT NOPEFUNC(age) FROM people",
		"SELECT SUM(*) FROM people",
		"SELECT * FROM people trailing nonsense tokens ~",
		"SELECT 'unterminated FROM people",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestExecErrors(t *testing.T) {
	if _, err := Exec(testCatalog(), "SELECT * FROM missing"); err == nil {
		t.Error("missing table should error")
	}
	if _, err := Exec(testCatalog(), "SELECT nope FROM people"); err == nil {
		t.Error("missing column should error")
	}
	if _, err := Exec(testCatalog(), "SELECT p.id FROM people p JOIN orders o ON p.id = o.person_id WHERE zzz = 1"); err == nil {
		t.Error("unknown column in join query should error")
	}
	if _, err := Exec(testCatalog(), "SELECT SUM(name) FROM people"); err == nil {
		t.Error("SUM over strings should error")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	tables := testTables()
	tables["dup"] = dataset.MustNewTable("dup",
		dataset.IntColumn("id", []int64{1}, nil),
		dataset.StringColumn("name", []string{"x"}, nil),
	)
	catalog := NewMapCatalog(tables)
	if _, err := Exec(catalog, "SELECT id FROM people p JOIN dup d ON p.id = d.id"); err == nil {
		t.Error("bare ambiguous column should error")
	}
	out, err := Exec(catalog, "SELECT p.id FROM people p JOIN dup d ON p.id = d.id")
	if err != nil {
		t.Fatalf("qualified lookup should work: %v", err)
	}
	if out.NumRows() != 1 {
		t.Errorf("rows = %d", out.NumRows())
	}
}

func TestStarWithJoinQualifiesDuplicates(t *testing.T) {
	out := mustExec(t, "SELECT * FROM people p JOIN orders o ON p.id = o.person_id")
	if out.NumCols() != 8 {
		t.Errorf("cols = %d, want 8", out.NumCols())
	}
}

func TestRoundTripStringParse(t *testing.T) {
	queries := []string{
		"SELECT * FROM people",
		"SELECT name, age * 2 AS d FROM people WHERE (age > 25) AND (dept = 'eng')",
		"SELECT dept, COUNT(*) AS n FROM people GROUP BY dept HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 3",
		"SELECT p.name FROM people AS p LEFT JOIN orders AS o ON (p.id = o.person_id)",
		"SELECT name FROM (SELECT name FROM people WHERE age > 30) AS t",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		again, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", q, stmt.String(), err)
		}
		r1, err := ExecStmt(testCatalog(), stmt)
		if err != nil {
			t.Fatalf("exec %q: %v", q, err)
		}
		r2, err := ExecStmt(testCatalog(), again)
		if err != nil {
			t.Fatalf("exec reparsed %q: %v", stmt.String(), err)
		}
		if !r1.Equal(r2) {
			t.Errorf("round trip changed results for %q", q)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: filters with random thresholds round-trip through SQL text
	// and return consistent row counts with a direct count query.
	f := func(threshold int8) bool {
		q := fmt.Sprintf("SELECT id FROM people WHERE age > %d", threshold)
		rows, err := Exec(testCatalog(), q)
		if err != nil {
			return false
		}
		count, err := Exec(testCatalog(), fmt.Sprintf("SELECT COUNT(*) AS n FROM people WHERE age > %d", threshold))
		if err != nil {
			return false
		}
		nCol, err := count.Column("n")
		if err != nil {
			return false
		}
		return nCol.Value(0).I == int64(rows.NumRows())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNestedVsFlattenedSameResult(t *testing.T) {
	// The §2.2 optimization claim: a flattened query returns the same rows
	// as the nested projection chain it replaces.
	nested := "SELECT name FROM (SELECT name, age FROM (SELECT name, age, dept FROM people) a) b"
	flat := "SELECT name FROM people"
	r1 := mustExec(t, nested)
	r2 := mustExec(t, flat)
	if !r1.Equal(r2) {
		t.Error("nested and flattened queries disagree")
	}
}

func TestLexerEdgeCases(t *testing.T) {
	toks, err := lex("SELECT a -- comment\n, 1.5e-3, 'it''s' FROM \"weird name\"")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	joined := strings.Join(texts, "|")
	if !strings.Contains(joined, "1.5e-3") {
		t.Errorf("scientific number not lexed: %s", joined)
	}
	if !strings.Contains(joined, "it's") {
		t.Errorf("escaped quote not lexed: %s", joined)
	}
	if !strings.Contains(joined, "weird name") {
		t.Errorf("quoted ident not lexed: %s", joined)
	}
}
