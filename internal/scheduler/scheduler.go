// Package scheduler turns saved recipes into long-lived jobs: cron-like
// triggers on a faults.Clock (virtual in tests — fully deterministic; wall
// clock in the daemon) re-run each recipe against refreshed data and
// publish the result to an insights board (internal/board). Refreshes are
// incremental: the run first EXPLAINs the recipe — read-only — and diffs
// the post-fusion plan fingerprints against the previous run's, and
// because source content fingerprints key the platform LRU cache,
// unchanged sub-DAGs are served from cache with zero cloud scans; only
// changed inputs recompute. Background runs yield to interactive traffic
// twice over: an admission Gate (installed by the server) queues them
// behind the interactive class, and a small bounded busy-retry on the
// §2.4 session lock makes a contended run skip rather than camp.
package scheduler

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"datachat/internal/board"
	"datachat/internal/core"
	"datachat/internal/dag"
	"datachat/internal/faults"
	"datachat/internal/recipe"
	"datachat/internal/session"
)

// historyCap bounds each job's retained run records.
const historyCap = 32

// Spec declares one scheduled job.
type Spec struct {
	// Name identifies the job (unique per scheduler).
	Name string
	// Session is the session the recipe replays in, created on demand and
	// owned by User. Point multiple jobs at one session to serialize them,
	// or give each its own for parallelism.
	Session string
	// User is the identity background runs execute as.
	User string
	// Recipe is the saved pipeline to re-run.
	Recipe *recipe.Recipe
	// Every is the trigger period.
	Every time.Duration
	// Board and Tile name where results are published; an empty Board
	// disables publishing, an empty Tile defaults to the recipe name.
	Board string
	Tile  string
	// MaxRuns stops the job after that many completed runs (0 = unlimited).
	// Skipped runs (busy lock, throttled admission) do not count.
	MaxRuns int
}

// RunRecord is one run's history entry: timing, the executor's stats delta,
// and the fingerprint-diff summary that explains how much work the
// incremental refresh actually skipped.
type RunRecord struct {
	Seq     int           `json:"seq"`
	At      time.Time     `json:"at"`
	Elapsed time.Duration `json:"elapsed"`

	Stats dag.Stats `json:"stats"`

	// FPTotal/FPChanged/FPUnchanged summarize the post-fusion plan
	// fingerprint diff against the previous run: unchanged fingerprints mark
	// sub-DAGs the cache served without touching the warehouse.
	FPTotal     int `json:"fp_total"`
	FPChanged   int `json:"fp_changed"`
	FPUnchanged int `json:"fp_unchanged"`

	Degraded     bool   `json:"degraded,omitempty"`
	Skipped      bool   `json:"skipped,omitempty"`
	SkipReason   string `json:"skip_reason,omitempty"`
	Err          string `json:"err,omitempty"`
	BoardVersion uint64 `json:"board_version,omitempty"`
}

// JobInfo is a read-only snapshot of a job.
type JobInfo struct {
	Name    string
	Session string
	User    string
	Board   string
	Tile    string
	Every   time.Duration
	MaxRuns int
	NextRun time.Time
	Runs    int
	Done    bool
	History []RunRecord
}

// Stats are the scheduler-wide counters surfaced in /statsz.
type Stats struct {
	Jobs     int
	Done     int
	Runs     int64
	Failures int64
	Skips    int64
	Degraded int64
	// NodesTotal/NodesChanged/NodesUnchanged accumulate the per-run
	// fingerprint diffs: Unchanged/Total is the fleet-wide fraction of
	// sub-DAGs incremental refresh never re-executed.
	NodesTotal     int64
	NodesChanged   int64
	NodesUnchanged int64
	Published      int64
}

// Gate admits one background run. The server installs one wrapping its
// background priority class; err means the run is skipped (recorded, never
// silently dropped), otherwise release must be called when the run ends.
type Gate func(ctx context.Context) (release func(), err error)

type job struct {
	spec    Spec
	tile    string
	nextRun time.Time
	runs    int
	done    bool
	history []RunRecord
	lastFPs map[string]bool
	running bool // guards against overlapping runs of one job
}

// Scheduler owns the job table and the trigger loop.
type Scheduler struct {
	platform *core.Platform
	hub      *board.Hub

	mu        sync.Mutex
	clock     faults.Clock
	jobs      map[string]*job
	gate      Gate
	busyRetry faults.RetryPolicy

	runs, failures, skips, degraded          int64
	nodesTotal, nodesChanged, nodesUnchanged int64
	published                                int64
}

// New returns a scheduler over the platform publishing to hub (which may
// be nil when no boards are wanted), on the real clock.
func New(p *core.Platform, hub *board.Hub) *Scheduler {
	return &Scheduler{
		platform: p,
		hub:      hub,
		clock:    faults.Real(),
		jobs:     make(map[string]*job),
		// Three quick attempts at the session lock, then skip: background
		// refreshes must never camp on a lock an interactive user wants.
		busyRetry: faults.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Multiplier: 2},
	}
}

// SetClock swaps the trigger clock (virtual in tests). Pending NextRun
// times are not rebased; call before adding jobs.
func (s *Scheduler) SetClock(c faults.Clock) {
	if c == nil {
		return
	}
	s.mu.Lock()
	s.clock = c
	s.mu.Unlock()
}

// SetGate installs the admission hook background runs pass through.
func (s *Scheduler) SetGate(g Gate) {
	s.mu.Lock()
	s.gate = g
	s.mu.Unlock()
}

// SetBusyRetry replaces the bounded busy-retry policy runs use on the
// §2.4 session lock.
func (s *Scheduler) SetBusyRetry(p faults.RetryPolicy) {
	s.mu.Lock()
	s.busyRetry = p
	s.mu.Unlock()
}

// Add registers a job. The first trigger fires one period from now.
func (s *Scheduler) Add(spec Spec) (JobInfo, error) {
	if spec.Name == "" {
		return JobInfo{}, fmt.Errorf("scheduler: job needs a name")
	}
	if spec.Recipe == nil || len(spec.Recipe.Steps) == 0 {
		return JobInfo{}, fmt.Errorf("scheduler: job %q needs a recipe with steps", spec.Name)
	}
	if spec.Every <= 0 {
		return JobInfo{}, fmt.Errorf("scheduler: job %q needs a positive period", spec.Name)
	}
	if spec.Session == "" {
		spec.Session = "sched:" + spec.Name
	}
	if spec.User == "" {
		return JobInfo{}, fmt.Errorf("scheduler: job %q needs a user", spec.Name)
	}
	tile := spec.Tile
	if tile == "" {
		tile = spec.Recipe.Name
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.jobs[spec.Name]; dup {
		return JobInfo{}, fmt.Errorf("scheduler: job %q already exists", spec.Name)
	}
	j := &job{spec: spec, tile: tile, nextRun: s.clock.Now().Add(spec.Every), lastFPs: map[string]bool{}}
	s.jobs[spec.Name] = j
	return s.infoLocked(j), nil
}

// Remove deletes a job (its board and history of published updates stay).
func (s *Scheduler) Remove(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.jobs[name]
	delete(s.jobs, name)
	return ok
}

// Get snapshots one job.
func (s *Scheduler) Get(name string) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return JobInfo{}, false
	}
	return s.infoLocked(j), true
}

// List snapshots every job, sorted by name.
func (s *Scheduler) List() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	infos := make([]JobInfo, 0, len(s.jobs))
	for _, j := range s.jobs {
		infos = append(infos, s.infoLocked(j))
	}
	sort.Slice(infos, func(i, k int) bool { return infos[i].Name < infos[k].Name })
	return infos
}

func (s *Scheduler) infoLocked(j *job) JobInfo {
	return JobInfo{
		Name:    j.spec.Name,
		Session: j.spec.Session,
		User:    j.spec.User,
		Board:   j.spec.Board,
		Tile:    j.tile,
		Every:   j.spec.Every,
		MaxRuns: j.spec.MaxRuns,
		NextRun: j.nextRun,
		Runs:    j.runs,
		Done:    j.done,
		History: append([]RunRecord{}, j.history...),
	}
}

// Stats returns scheduler-wide counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Jobs:           len(s.jobs),
		Runs:           s.runs,
		Failures:       s.failures,
		Skips:          s.skips,
		Degraded:       s.degraded,
		NodesTotal:     s.nodesTotal,
		NodesChanged:   s.nodesChanged,
		NodesUnchanged: s.nodesUnchanged,
		Published:      s.published,
	}
	for _, j := range s.jobs {
		if j.done {
			st.Done++
		}
	}
	return st
}

// RunDue runs every job whose trigger time has arrived, in name order, and
// advances each trigger past now. It returns the number of jobs it ran
// (including skipped and failed runs). Deterministic on a virtual clock:
// tests Advance the clock and call RunDue.
func (s *Scheduler) RunDue(ctx context.Context) int {
	s.mu.Lock()
	now := s.clock.Now()
	var due []*job
	for _, j := range s.jobs {
		if !j.done && !j.running && !j.nextRun.After(now) {
			j.running = true
			// Catch up past now in whole periods; a late tick runs once,
			// not once per missed period.
			for !j.nextRun.After(now) {
				j.nextRun = j.nextRun.Add(j.spec.Every)
			}
			due = append(due, j)
		}
	}
	s.mu.Unlock()
	sort.Slice(due, func(i, k int) bool { return due[i].spec.Name < due[k].spec.Name })
	for _, j := range due {
		s.runJob(ctx, j)
	}
	return len(due)
}

// RunNow force-runs one job immediately (the POST …/run endpoint),
// regardless of its trigger time, and returns the run record.
func (s *Scheduler) RunNow(ctx context.Context, name string) (RunRecord, error) {
	s.mu.Lock()
	j, ok := s.jobs[name]
	if !ok {
		s.mu.Unlock()
		return RunRecord{}, fmt.Errorf("scheduler: no job %q", name)
	}
	if j.running {
		s.mu.Unlock()
		return RunRecord{}, fmt.Errorf("scheduler: job %q is already running", name)
	}
	j.running = true
	s.mu.Unlock()
	return s.runJob(ctx, j), nil
}

// Loop ticks until ctx is done: run due jobs, sleep until the earliest
// trigger (capped at poll, so newly added jobs are noticed). On a
// VirtualClock the sleeps advance virtual time instantly, so the loop
// replays any schedule as fast as the work itself.
func (s *Scheduler) Loop(ctx context.Context, poll time.Duration) {
	if poll <= 0 {
		poll = time.Second
	}
	for ctx.Err() == nil {
		s.RunDue(ctx)
		wait := poll
		s.mu.Lock()
		now := s.clock.Now()
		for _, j := range s.jobs {
			if j.done || j.running {
				continue
			}
			if d := j.nextRun.Sub(now); d < wait {
				wait = d
			}
		}
		clock := s.clock
		s.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		if clock.Sleep(ctx, wait) != nil {
			return
		}
	}
}

// runJob executes one run of j (which must have been marked running) and
// records + publishes the outcome. Never returns an error: failures are
// history entries and board updates, not crashes of the trigger loop.
func (s *Scheduler) runJob(ctx context.Context, j *job) RunRecord {
	s.mu.Lock()
	clock, gate, busy := s.clock, s.gate, s.busyRetry
	s.mu.Unlock()

	start := clock.Now()
	rec := RunRecord{Seq: j.runs + 1, At: start}

	if gate != nil {
		release, err := gate(ctx)
		if err != nil {
			rec.Skipped, rec.SkipReason = true, "admission: "+err.Error()
			return s.finishRun(j, rec, nil, clock, start)
		}
		defer release()
	}

	sess, err := s.platform.EnsureSession(j.spec.Session, j.spec.User)
	if err != nil {
		rec.Err = err.Error()
		return s.finishRun(j, rec, nil, clock, start)
	}
	tune := &session.Tuning{BusyRetry: busy, Clock: clock}
	res, exp, delta, err := sess.ReplayRecipePlanned(ctx, j.spec.User, j.spec.Recipe, tune)
	rec.Stats = delta
	if exp != nil {
		fps := make(map[string]bool, len(exp.Nodes))
		for _, n := range exp.Nodes {
			if n.Fingerprint != "" {
				fps[n.Fingerprint] = true
			}
		}
		rec.FPTotal = len(fps)
		for fp := range fps {
			if !j.lastFPs[fp] {
				rec.FPChanged++
			}
		}
		rec.FPUnchanged = rec.FPTotal - rec.FPChanged
		if err == nil {
			// Only a completed run becomes the diff baseline; a failed one
			// must not make the next refresh look incremental.
			j.lastFPs = fps
		}
	}
	switch {
	case errors.Is(err, session.ErrBusy):
		// Interactive traffic holds the lock; yield and try again next tick.
		rec.Skipped, rec.SkipReason = true, "session busy"
		return s.finishRun(j, rec, nil, clock, start)
	case err != nil:
		rec.Err = err.Error()
		return s.finishRun(j, rec, s.failureUpdate(j, rec), clock, start)
	}
	rec.Degraded = res.Degraded
	u := &board.Update{
		Job:          j.spec.Name,
		Seq:          rec.Seq,
		Table:        res.Table,
		Message:      res.Message,
		Degraded:     res.Degraded,
		DegradedNote: res.DegradedNote,
		FPTotal:      rec.FPTotal,
		FPChanged:    rec.FPChanged,
		CacheHits:    int64(delta.CacheHits),
	}
	return s.finishRun(j, rec, u, clock, start)
}

// failureUpdate builds the board update for a failed run so dashboards see
// the error instead of silently keeping a stale tile.
func (s *Scheduler) failureUpdate(j *job, rec RunRecord) *board.Update {
	return &board.Update{
		Job:       j.spec.Name,
		Seq:       rec.Seq,
		RunError:  rec.Err,
		Message:   fmt.Sprintf("refresh %d failed", rec.Seq),
		FPTotal:   rec.FPTotal,
		FPChanged: rec.FPChanged,
	}
}

// finishRun publishes u (when non-nil and the job has a board), stamps the
// record, appends history, and updates counters. It also clears the job's
// running flag, and returns the fully stamped record (elapsed time, board
// version) so RunNow callers see what history sees.
func (s *Scheduler) finishRun(j *job, rec RunRecord, u *board.Update, clock faults.Clock, start time.Time) RunRecord {
	rec.Elapsed = clock.Now().Sub(start)
	published := false
	if u != nil && j.spec.Board != "" && s.hub != nil {
		b, ok := s.hub.Get(j.spec.Board)
		if !ok {
			b, _ = s.hub.Create(j.spec.Board, "", j.spec.User)
		}
		if b != nil {
			pub := b.Publish(j.tile, *u)
			rec.BoardVersion = pub.Version
			published = true
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.Skipped {
		s.skips++
	} else {
		s.runs++
		j.runs++
		if rec.Err != "" {
			s.failures++
		}
		if rec.Degraded {
			s.degraded++
		}
		s.nodesTotal += int64(rec.FPTotal)
		s.nodesChanged += int64(rec.FPChanged)
		s.nodesUnchanged += int64(rec.FPUnchanged)
		if j.spec.MaxRuns > 0 && j.runs >= j.spec.MaxRuns {
			j.done = true
		}
	}
	if published {
		s.published++
	}
	j.history = append(j.history, rec)
	if len(j.history) > historyCap {
		j.history = append(j.history[:0:0], j.history[len(j.history)-historyCap:]...)
	}
	j.running = false
	return rec
}
