package dag

import (
	"container/list"
	"sync"

	"datachat/internal/skills"
)

// DefaultCacheCapacity bounds the sub-DAG cache of a freshly built executor
// or platform. Entries hold result tables by reference, so capacity controls
// how many distinct sub-DAG results stay pinned, not bytes.
const DefaultCacheCapacity = 256

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	// Hits counts lookups served from a stored entry or a shared in-flight
	// computation (singleflight followers).
	Hits int64
	// Misses counts lookups that had to execute.
	Misses int64
	// Evictions counts entries dropped by the LRU bound (invalidations are
	// not evictions).
	Evictions int64
	// Entries is the current number of stored results.
	Entries int
}

// Cache is a concurrency-safe, bounded LRU cache of sub-DAG results keyed by
// content signature (§2.2). It may be shared by the executors of many
// sessions: identical computations submitted concurrently share a single
// execution (singleflight), and Invalidate bumps a generation counter so
// executions that started before an invalidation cannot store stale results
// after it.
type Cache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used
	entries  map[string]*list.Element
	flights  map[string]*flight
	gen      uint64

	hits, misses, evictions int64
}

type cacheEntry struct {
	key string
	res *skills.Result
}

// flight is one in-progress computation that concurrent callers of the same
// key wait on instead of recomputing.
type flight struct {
	done chan struct{}
	res  *skills.Result
	err  error
}

// NewCache returns an empty cache holding at most capacity results
// (DefaultCacheCapacity when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		entries:  map[string]*list.Element{},
		flights:  map[string]*flight{},
	}
}

// Get returns the stored result for key, bumping its recency and the hit
// counter. It does not join in-flight computations; use Do for that.
func (c *Cache) Get(key string) (*skills.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).res, true
}

// Peek reports whether key is stored, without touching recency or counters.
// The planner uses it to stop consolidation chains at already-cached
// prefixes.
func (c *Cache) Peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Do returns the result for key, computing it with fn on a miss. Concurrent
// calls with the same key share one execution: the first caller (the leader)
// runs fn while the rest block and receive the leader's result, counted as
// hits — so hit/miss totals do not depend on scheduling. A leader's error is
// returned to every waiter and nothing is stored. Results computed across an
// Invalidate call are discarded rather than stored, and so are degraded
// results: the key fingerprints the exact computation, and a fallback answer
// must not be served later as if it were the exact one.
func (c *Cache) Do(key string, fn func() (*skills.Result, error)) (res *skills.Result, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		res = el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return f.res, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	gen := c.gen
	c.misses++
	c.mu.Unlock()

	f.res, f.err = fn()

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil && gen == c.gen && (f.res == nil || !f.res.Degraded) {
		c.storeLocked(key, f.res)
	}
	c.mu.Unlock()
	close(f.done)
	return f.res, false, f.err
}

func (c *Cache) storeLocked(key string, res *skills.Result) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	for c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Invalidate drops every entry and bumps the generation, so computations
// already in flight cannot repopulate the cache with pre-invalidation
// results. Counters are preserved.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	c.gen++
	c.lru.Init()
	c.entries = map[string]*list.Element{}
	c.mu.Unlock()
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
	}
}
