package skills

import (
	"testing"

	"datachat/internal/dataset"
)

// TestSkillErrorPaths sweeps the common failure modes of every skill group:
// missing inputs, absent datasets, bad parameter types, and out-of-range
// values. Each case must fail with an error, never panic.
func TestSkillErrorPaths(t *testing.T) {
	ctx := newTestContext(t)
	cases := []struct {
		name string
		inv  Invocation
	}{
		{"no input dataset", Invocation{Skill: "KeepRows", Args: Args{"condition": "age > 1"}}},
		{"missing dataset", Invocation{Skill: "KeepRows", Inputs: []string{"ghost"},
			Args: Args{"condition": "age > 1"}}},
		{"select missing column", Invocation{Skill: "KeepColumns", Inputs: []string{"people"},
			Args: Args{"columns": []string{"ghost"}}}},
		{"negative limit", Invocation{Skill: "LimitRows", Inputs: []string{"people"},
			Args: Args{"count": -1}}},
		{"bad sample fraction", Invocation{Skill: "SampleRows", Inputs: []string{"people"},
			Args: Args{"fraction": 2.0}}},
		{"bad bin size", Invocation{Skill: "Bin", Inputs: []string{"people"},
			Args: Args{"column": "age", "size": 0}}},
		{"concat one input", Invocation{Skill: "Concatenate", Inputs: []string{"people"}}},
		{"join bad kind", Invocation{Skill: "JoinDatasets", Inputs: []string{"people", "orders"},
			Args: Args{"on": "people.id = orders.person_id", "kind": "outer-full"}}},
		{"join bad condition", Invocation{Skill: "JoinDatasets", Inputs: []string{"people", "orders"},
			Args: Args{"on": "this is not a condition at all >"}}},
		{"pivot two measures", Invocation{Skill: "Pivot", Inputs: []string{"people"},
			Args: Args{"rows": "dept", "columns": "name", "measure": []string{"sum of age", "min of age"}}}},
		{"describe missing column", Invocation{Skill: "DescribeColumn", Inputs: []string{"people"},
			Args: Args{"column": "ghost"}}},
		{"correlate constant", Invocation{Skill: "Correlate", Inputs: []string{"people"},
			Args: Args{"column1": "age", "column2": "age_const"}}},
		{"correlate strings", Invocation{Skill: "Correlate", Inputs: []string{"people"},
			Args: Args{"column1": "name", "column2": "dept"}}},
		{"train unknown model", Invocation{Skill: "TrainModel", Inputs: []string{"people"},
			Args: Args{"target": "age", "model": "transformer"}}},
		{"predict missing model", Invocation{Skill: "PredictWithModel", Inputs: []string{"people"},
			Args: Args{"model": "ghost", "features": []string{"age"}}}},
		{"cluster k too large", Invocation{Skill: "ClusterRows", Inputs: []string{"people"},
			Args: Args{"columns": []string{"age"}, "k": 100}}},
		{"outliers bad method", Invocation{Skill: "DetectOutliers", Inputs: []string{"people"},
			Args: Args{"column": "age", "method": "vibes"}}},
		{"outliers string column", Invocation{Skill: "DetectOutliers", Inputs: []string{"people"},
			Args: Args{"column": "name"}}},
		{"evaluate missing model", Invocation{Skill: "EvaluateModel", Inputs: []string{"people"},
			Args: Args{"model": "ghost", "target": "age", "features": []string{"id"}}}},
		{"plot missing x", Invocation{Skill: "PlotChart", Inputs: []string{"people"},
			Args: Args{"chart": "bar"}}},
		{"visualize missing kpi column", Invocation{Skill: "Visualize", Inputs: []string{"people"},
			Args: Args{"kpi": "ghost"}}},
		{"visualize bad filter", Invocation{Skill: "Visualize", Inputs: []string{"people"},
			Args: Args{"kpi": "dept", "filter": "age >"}}},
		{"snapshot without store", Invocation{Skill: "UseSnapshot", Args: Args{"name": "x"}}},
		{"export without file", Invocation{Skill: "ExportCSV", Inputs: []string{"people"}, Args: Args{}}},
		{"use missing dataset", Invocation{Skill: "UseDataset", Args: Args{"dataset": "ghost"}}},
		{"load missing table", Invocation{Skill: "LoadTable",
			Args: Args{"database": "nope", "table": "t"}}},
	}
	// A constant column for the correlate case.
	konst := make([]int64, ctx.Datasets["people"].NumRows())
	withConst, err := ctx.Datasets["people"].WithColumn(dataset.IntColumn("age_const", konst, nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx.Datasets["people"] = withConst

	for _, c := range cases {
		if _, err := reg.Execute(ctx, c.inv); err == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
}
