package sqlengine

import (
	"fmt"
	"strings"

	"datachat/internal/dataset"
	"datachat/internal/expr"
)

// SelectStmt is the root AST node for a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Where    expr.Expr
	GroupBy  []expr.Expr
	Having   expr.Expr
	OrderBy  []OrderItem
	Limit    int // -1 means no limit
	Offset   int
}

// SelectItem is one projected expression; Star selects all columns.
type SelectItem struct {
	Star  bool
	Expr  expr.Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// TableRef is a FROM-clause relation: a base table, a subquery, or a join.
type TableRef interface {
	refString() string
}

// BaseTable names a catalog table, optionally aliased.
type BaseTable struct {
	Name  string
	Alias string
}

func (b *BaseTable) refString() string {
	if b.Alias != "" && b.Alias != b.Name {
		return b.Name + " AS " + b.Alias
	}
	return b.Name
}

// Subquery is a derived table.
type Subquery struct {
	Stmt  *SelectStmt
	Alias string
}

func (s *Subquery) refString() string {
	out := "(" + s.Stmt.String() + ")"
	if s.Alias != "" {
		out += " AS " + s.Alias
	}
	return out
}

// JoinKind distinguishes join types.
type JoinKind int

// Supported join kinds.
const (
	InnerJoin JoinKind = iota
	LeftJoin
	CrossJoin
)

// Join combines two relations with an optional ON condition.
type Join struct {
	Kind        JoinKind
	Left, Right TableRef
	On          expr.Expr
}

func (j *Join) refString() string {
	kw := "JOIN"
	switch j.Kind {
	case LeftJoin:
		kw = "LEFT JOIN"
	case CrossJoin:
		kw = "CROSS JOIN"
	}
	out := j.Left.refString() + " " + kw + " " + j.Right.refString()
	if j.On != nil {
		out += " ON " + j.On.String()
	}
	return out
}

// String renders the statement back to SQL. Parse(stmt.String()) yields an
// equivalent statement; the DAG compiler relies on this for recipe SQL views.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	items := make([]string, len(s.Items))
	for i, item := range s.Items {
		switch {
		case item.Star:
			items[i] = "*"
		case item.Alias != "":
			items[i] = item.Expr.String() + " AS " + quoteIdentIfNeeded(item.Alias)
		default:
			items[i] = item.Expr.String()
		}
	}
	b.WriteString(strings.Join(items, ", "))
	if s.From != nil {
		b.WriteString(" FROM ")
		b.WriteString(s.From.refString())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		keys := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			keys[i] = g.String()
		}
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(keys, ", "))
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		keys := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			keys[i] = o.Expr.String()
			if o.Desc {
				keys[i] += " DESC"
			}
		}
		b.WriteString(" ORDER BY ")
		b.WriteString(strings.Join(keys, ", "))
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", s.Offset)
	}
	return b.String()
}

func quoteIdentIfNeeded(name string) string {
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9' && i > 0:
		default:
			return `"` + name + `"`
		}
	}
	return name
}

// AggCall is an aggregate function reference inside a select item, HAVING,
// or ORDER BY expression. It implements expr.Expr: during group evaluation
// the executor binds each aggregate's computed value under its Key in the
// environment, so Eval is a lookup.
type AggCall struct {
	Name     string // COUNT, SUM, AVG, MIN, MAX, MEDIAN, STDDEV
	Arg      expr.Expr
	Star     bool // COUNT(*)
	Distinct bool
}

// Key is the environment binding name for this aggregate's value.
func (a *AggCall) Key() string { return "\x00agg:" + a.String() }

// Eval implements expr.Expr by looking up the precomputed group value.
func (a *AggCall) Eval(env expr.Env) (dataset.Value, error) {
	if env == nil {
		return dataset.Null, fmt.Errorf("sql: aggregate %s evaluated outside a group context", a)
	}
	return env.Lookup(a.Key())
}

// String implements expr.Expr.
func (a *AggCall) String() string {
	if a.Star {
		return a.Name + "(*)"
	}
	if a.Distinct {
		return a.Name + "(DISTINCT " + a.Arg.String() + ")"
	}
	return a.Name + "(" + a.Arg.String() + ")"
}

// Columns implements expr.Expr.
func (a *AggCall) Columns(dst []string) []string {
	if a.Arg != nil {
		return a.Arg.Columns(dst)
	}
	return dst
}

// aggregateNames is the set of supported aggregate functions.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"MEDIAN": true, "STDDEV": true,
}

// collectAggs appends all AggCall nodes reachable from e.
func collectAggs(e expr.Expr, dst []*AggCall) []*AggCall {
	switch n := e.(type) {
	case nil:
		return dst
	case *AggCall:
		return append(dst, n)
	case *expr.Binary:
		return collectAggs(n.Right, collectAggs(n.Left, dst))
	case *expr.Unary:
		return collectAggs(n.Operand, dst)
	case *expr.FuncCall:
		for _, a := range n.Args {
			dst = collectAggs(a, dst)
		}
		return dst
	case *expr.IsNull:
		return collectAggs(n.Operand, dst)
	case *expr.In:
		dst = collectAggs(n.Operand, dst)
		for _, item := range n.List {
			dst = collectAggs(item, dst)
		}
		return dst
	case *expr.Between:
		return collectAggs(n.Hi, collectAggs(n.Lo, collectAggs(n.Operand, dst)))
	case *expr.Case:
		for _, w := range n.Whens {
			dst = collectAggs(w.Result, collectAggs(w.Cond, dst))
		}
		return collectAggs(n.Else, dst)
	default:
		return dst
	}
}

// CountSelectBlocks returns the number of SELECT blocks in the statement,
// counting the top level and every FROM-clause subquery. The paper's §2.2
// argues flattened single-block queries execute faster than deeply nested
// equivalents; the DAG compiler's consolidation is measured with this.
func CountSelectBlocks(s *SelectStmt) int {
	if s == nil {
		return 0
	}
	return 1 + countRefBlocks(s.From)
}

func countRefBlocks(ref TableRef) int {
	switch r := ref.(type) {
	case *Subquery:
		return CountSelectBlocks(r.Stmt)
	case *Join:
		return countRefBlocks(r.Left) + countRefBlocks(r.Right)
	default:
		return 0
	}
}
