package dag

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/faults"
	"datachat/internal/skills"
)

// These tests pin the executor's fault-tolerance contract: transient task
// failures are retried (with all waiting on a virtual clock), permanent
// failures cancel in-flight sibling retries and surface the real cause,
// retry time is bounded by the run deadline, and degraded results are never
// stored in the sub-DAG cache.

// faultReg returns a registry with the built-in skills plus the given custom
// test skills.
func faultReg(t *testing.T, defs ...*skills.Definition) *skills.Registry {
	t.Helper()
	r := skills.NewRegistry()
	for _, def := range defs {
		if err := r.Register(def); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// passthrough returns inv's first input unchanged.
func passthrough(ctx *skills.Context, inv skills.Invocation) (*skills.Result, error) {
	tb, err := ctx.Dataset(inv.Inputs[0])
	if err != nil {
		return nil, err
	}
	return &skills.Result{Table: tb}, nil
}

// TestRetryRecoversTransientTaskFailure: a task failing twice with a
// transient fault recovers under ExecOptions.Retry and yields the same
// result as a fault-free run, with the retries visible in Stats and all
// backoff on the virtual clock.
func TestRetryRecoversTransientTaskFailure(t *testing.T) {
	var calls atomic.Int32
	reg2 := faultReg(t, &skills.Definition{
		Name: "FlakyScan", Summary: "fails twice, then passes through",
		Apply: func(ctx *skills.Context, inv skills.Invocation) (*skills.Result, error) {
			if calls.Add(1) <= 2 {
				return nil, &faults.Error{Op: "scan", Target: inv.Inputs[0], Kind: faults.Throttled, Class: faults.Transient}
			}
			return passthrough(ctx, inv)
		},
	})
	build := func() (*Graph, NodeID) {
		g := NewGraph()
		g.Add(skills.Invocation{Skill: "FlakyScan", Inputs: []string{"base"}, Output: "loaded"})
		last := g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"loaded"},
			Args: skills.Args{"condition": "id < 5"}, Output: "few"})
		return g, last
	}

	clock := faults.NewVirtualClock(time.Unix(0, 0))
	ex := NewExecutor(reg2, newCtx(t))
	ex.Options = ExecOptions{
		Retry: faults.RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond,
			MaxDelay: time.Second, Multiplier: 2, JitterFrac: 0.3, Seed: 9},
		Clock: clock,
	}
	g, last := build()
	res, err := ex.Run(g, last)
	if err != nil {
		t.Fatalf("run with retries: %v", err)
	}
	if res.Table.NumRows() != 5 {
		t.Errorf("rows = %d, want 5", res.Table.NumRows())
	}
	if got := ex.Stats().Retries; got != 2 {
		t.Errorf("Stats.Retries = %d, want 2", got)
	}
	if clock.Slept() <= 0 {
		t.Error("retries did not wait on the virtual clock")
	}

	// The zero policy fails fast on the first transient error.
	calls.Store(0)
	ex2 := NewExecutor(reg2, newCtx(t))
	g2, last2 := build()
	_, err = ex2.Run(g2, last2)
	if !faults.IsTransient(err) {
		t.Fatalf("zero policy: err = %v, want the transient fault", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("zero policy attempted %d times, want 1", got)
	}
	if got := ex2.Stats().Retries; got != 0 {
		t.Errorf("zero policy Stats.Retries = %d", got)
	}
}

// TestPermanentFailureCancelsSiblingRetries: when one branch fails
// permanently, a sibling branch spinning on transient retries is cancelled
// instead of running out its (enormous) retry budget, and the run reports
// the permanent fault — not the sibling's collateral context.Canceled.
func TestPermanentFailureCancelsSiblingRetries(t *testing.T) {
	permErr := &faults.Error{Op: "scan", Target: "gone", Kind: faults.Unavailable, Class: faults.Permanent}
	var spins atomic.Int32
	reg2 := faultReg(t,
		&skills.Definition{
			Name: "PermFail", Summary: "always fails permanently",
			Apply: func(ctx *skills.Context, inv skills.Invocation) (*skills.Result, error) {
				return nil, permErr
			},
		},
		&skills.Definition{
			Name: "SpinTransient", Summary: "always fails transiently",
			Apply: func(ctx *skills.Context, inv skills.Invocation) (*skills.Result, error) {
				spins.Add(1)
				return nil, &faults.Error{Op: "scan", Target: inv.Inputs[0], Kind: faults.BlockIO, Class: faults.Transient}
			},
		},
		&skills.Definition{
			Name: "Pair", Summary: "joins two branches",
			Apply: func(ctx *skills.Context, inv skills.Invocation) (*skills.Result, error) {
				return passthrough(ctx, inv)
			},
		},
	)
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "PermFail", Inputs: []string{"base"}, Output: "a"})
	g.Add(skills.Invocation{Skill: "SpinTransient", Inputs: []string{"base"}, Output: "b"})
	last := g.Add(skills.Invocation{Skill: "Pair", Inputs: []string{"a", "b"}, Output: "joined"})

	ex := NewExecutor(reg2, newCtx(t))
	ex.Options = ExecOptions{
		Parallelism: 2,
		// The spinner's budget is effectively unbounded: only cancellation by
		// the sibling's permanent failure can stop it promptly.
		Retry: faults.RetryPolicy{MaxAttempts: 1 << 20, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		Clock: faults.NewVirtualClock(time.Unix(0, 0)),
	}
	_, err := ex.Run(g, last)
	if !errors.Is(err, permErr) {
		t.Fatalf("err = %v, want the permanent fault", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("run surfaced the collateral cancellation, not the cause: %v", err)
	}
	if got := ex.Stats().PermanentFailures; got != 1 {
		t.Errorf("Stats.PermanentFailures = %d, want 1", got)
	}
	if got := spins.Load(); got >= 1<<20 {
		t.Errorf("sibling was not cancelled: %d attempts", got)
	}
}

// TestRunDeadlineBoundsRetryTime: a persistently transient task stops
// retrying once the next backoff would cross ExecOptions.Deadline; total
// virtual retry time stays within the budget.
func TestRunDeadlineBoundsRetryTime(t *testing.T) {
	reg2 := faultReg(t, &skills.Definition{
		Name: "AlwaysThrottled", Summary: "never succeeds",
		Apply: func(ctx *skills.Context, inv skills.Invocation) (*skills.Result, error) {
			return nil, &faults.Error{Op: "scan", Target: inv.Inputs[0], Kind: faults.Throttled, Class: faults.Transient}
		},
	})
	g := NewGraph()
	last := g.Add(skills.Invocation{Skill: "AlwaysThrottled", Inputs: []string{"base"}, Output: "x"})

	start := time.Unix(50, 0)
	clock := faults.NewVirtualClock(start)
	const budget = 200 * time.Millisecond
	ex := NewExecutor(reg2, newCtx(t))
	ex.Options = ExecOptions{
		Retry: faults.RetryPolicy{MaxAttempts: 1000, BaseDelay: 10 * time.Millisecond,
			MaxDelay: 50 * time.Millisecond, Multiplier: 2, JitterFrac: 0.2, Seed: 3},
		Deadline: budget,
		Clock:    clock,
	}
	_, err := ex.Run(g, last)
	if err == nil {
		t.Fatal("run against an always-failing task succeeded")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("err = %v, want a retry-deadline error", err)
	}
	if !faults.IsTransient(err) {
		t.Errorf("deadline error lost the transient cause: %v", err)
	}
	if clock.Slept() > budget {
		t.Errorf("virtual retry time %v exceeds the %v deadline", clock.Slept(), budget)
	}
	if clock.Now().After(start.Add(budget)) {
		t.Errorf("virtual clock %v passed the deadline %v", clock.Now(), start.Add(budget))
	}
}

// TestDegradedResultNotCached: a cacheable task returning a degraded result
// is re-executed on the next run — the fallback answer never enters the
// sub-DAG cache under the exact-result fingerprint — while an identical
// exact result is cached as usual.
func TestDegradedResultNotCached(t *testing.T) {
	sample := dataset.MustNewTable("s", dataset.IntColumn("x", []int64{1, 2, 3}, nil))
	var degradedCalls, exactCalls atomic.Int32
	reg2 := faultReg(t,
		&skills.Definition{
			Name: "DegradedSrc", Summary: "always returns a fallback sample",
			Apply: func(ctx *skills.Context, inv skills.Invocation) (*skills.Result, error) {
				degradedCalls.Add(1)
				return &skills.Result{Table: sample, Degraded: true,
					DegradedNote: "block sample at rate 0.1", Message: "degraded"}, nil
			},
		},
		&skills.Definition{
			Name: "ExactSrc", Summary: "same shape, exact",
			Apply: func(ctx *skills.Context, inv skills.Invocation) (*skills.Result, error) {
				exactCalls.Add(1)
				return &skills.Result{Table: sample}, nil
			},
		},
	)

	ex := NewExecutor(reg2, newCtx(t))
	g := NewGraph()
	last := g.Add(skills.Invocation{Skill: "DegradedSrc", Inputs: []string{"base"}, Output: "d"})
	for run := 1; run <= 2; run++ {
		res, err := ex.Run(g, last)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded || res.DegradedNote == "" {
			t.Fatalf("run %d: degraded annotation lost: %+v", run, res)
		}
		if got := ex.Cache().Len(); got != 0 {
			t.Fatalf("run %d: degraded result entered the cache (len %d)", run, got)
		}
	}
	if got := degradedCalls.Load(); got != 2 {
		t.Errorf("degraded task executed %d times, want 2 (no cache reuse)", got)
	}
	st := ex.Stats()
	if st.Degraded != 2 {
		t.Errorf("Stats.Degraded = %d, want 2", st.Degraded)
	}
	if st.CacheHits != 0 || st.CacheMisses != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 0/2", st.CacheHits, st.CacheMisses)
	}

	// Control: the identical exact-result task is cached on the second run.
	ex2 := NewExecutor(reg2, newCtx(t))
	g2 := NewGraph()
	last2 := g2.Add(skills.Invocation{Skill: "ExactSrc", Inputs: []string{"base"}, Output: "e"})
	for run := 1; run <= 2; run++ {
		if _, err := ex2.Run(g2, last2); err != nil {
			t.Fatal(err)
		}
	}
	if got := exactCalls.Load(); got != 1 {
		t.Errorf("exact task executed %d times, want 1 (second run cached)", got)
	}
	if ex2.Stats().CacheHits == 0 {
		t.Error("exact-result control never hit the cache")
	}
}
