package plan

import (
	"reflect"
	"testing"

	"datachat/internal/skills"
)

func lookupEnv(t *testing.T) *Env {
	t.Helper()
	reg := skills.NewRegistry()
	return &Env{Lookup: reg.Lookup}
}

func mustRun(t *testing.T, p *Plan, env *Env, passes ...Pass) {
	t.Helper()
	if err := RunPasses(p, env, passes...); err != nil {
		t.Fatalf("RunPasses: %v", err)
	}
}

func trace(t *testing.T, p *Plan, name string) PassTrace {
	t.Helper()
	for _, tr := range p.Trace {
		if tr.Pass == name {
			return tr
		}
	}
	t.Fatalf("no trace entry for pass %q", name)
	return PassTrace{}
}

// chainPlan builds scan -> KeepRows -> KeepColumns with an unrelated dangling
// KeepRows branch off the scan.
func chainPlan() *Plan {
	p := New(2)
	p.Add(&Node{ID: 0, Skill: "LoadData", Args: skills.Args{"file": "sales.csv"}, Output: "sales"})
	p.Add(&Node{ID: 1, Skill: "KeepRows", Args: skills.Args{"condition": "region = 'west'"},
		Inputs: []Input{{Node: 0, Name: "sales"}}})
	p.Add(&Node{ID: 2, Skill: "KeepColumns", Args: skills.Args{"columns": []string{"region", "amount"}},
		Inputs: []Input{{Node: 1, Name: "node1"}}, Output: "out"})
	p.Add(&Node{ID: 3, Skill: "KeepRows", Args: skills.Args{"condition": "amount > 10"},
		Inputs: []Input{{Node: 0, Name: "sales"}}})
	return p
}

func TestSlicePassPrunesDeadSteps(t *testing.T) {
	p := chainPlan()
	mustRun(t, p, nil, SlicePass())
	if got := trace(t, p, "slice").Pruned; got != 1 {
		t.Fatalf("Pruned = %d, want 1", got)
	}
	if p.Node(3) != nil {
		t.Fatalf("dead node 3 survived slicing")
	}
	for _, id := range []int{0, 1, 2} {
		if p.Node(id) == nil {
			t.Fatalf("needed node %d was pruned", id)
		}
	}
}

func TestFusePassKeepRows(t *testing.T) {
	p := New(2)
	p.Add(&Node{ID: 0, Skill: "LoadData", Args: skills.Args{"file": "f.csv"}, Output: "d"})
	p.Add(&Node{ID: 1, Skill: "KeepRows", Args: skills.Args{"condition": "a > 1"},
		Inputs: []Input{{Node: 0, Name: "d"}}})
	p.Add(&Node{ID: 2, Skill: "KeepRows", Args: skills.Args{"condition": "b < 2"},
		Inputs: []Input{{Node: 1, Name: "node1"}}, Output: "out"})
	mustRun(t, p, nil, FusePass())
	if got := trace(t, p, "fuse").Merged; got != 1 {
		t.Fatalf("Merged = %d, want 1", got)
	}
	n := p.Node(2)
	cond, err := n.Args.String("condition")
	if err != nil || cond != "(a > 1) AND (b < 2)" {
		t.Fatalf("fused condition = %q, %v", cond, err)
	}
	if !reflect.DeepEqual(n.Absorbed, []int{1}) {
		t.Fatalf("Absorbed = %v, want [1]", n.Absorbed)
	}
	if n.Inputs[0].Node != 0 {
		t.Fatalf("fused node should consume the scan, got input %+v", n.Inputs[0])
	}
}

func TestFuseArgsLimitRows(t *testing.T) {
	parent := &Node{Skill: "LimitRows", Args: skills.Args{"count": 10}}
	child := &Node{Skill: "LimitRows", Args: skills.Args{"count": 3}}
	args, ok := FuseArgs("LimitRows", parent, child)
	if !ok {
		t.Fatal("LimitRows pair did not fuse")
	}
	if n, err := args.Int("count"); err != nil || n != 3 {
		t.Fatalf("fused count = %d, %v; want 3", n, err)
	}
}

func TestFuseArgsKeepColumnsSubsetGuard(t *testing.T) {
	parent := &Node{Skill: "KeepColumns", Args: skills.Args{"columns": []string{"A", "b"}}}
	sub := &Node{Skill: "KeepColumns", Args: skills.Args{"columns": []string{"a"}}}
	if args, ok := FuseArgs("KeepColumns", parent, sub); !ok {
		t.Fatal("subset projection did not fuse")
	} else if cols, _ := args.StringList("columns"); !reflect.DeepEqual(cols, []string{"a"}) {
		t.Fatalf("fused columns = %v, want [a]", cols)
	}
	// A child projecting a column the parent dropped must NOT fuse: sequential
	// execution errors, and fusion must preserve that.
	bad := &Node{Skill: "KeepColumns", Args: skills.Args{"columns": []string{"a", "c"}}}
	if _, ok := FuseArgs("KeepColumns", parent, bad); ok {
		t.Fatal("non-subset projection fused; it would mask the sequential error")
	}
}

func TestFusePassSkipsSharedParent(t *testing.T) {
	p := New(2)
	p.Add(&Node{ID: 0, Skill: "KeepRows", Args: skills.Args{"condition": "a > 1"},
		Inputs: []Input{{Node: External, Name: "d"}}})
	p.Add(&Node{ID: 1, Skill: "KeepRows", Args: skills.Args{"condition": "b < 2"},
		Inputs: []Input{{Node: 0, Name: "node0"}}})
	p.Add(&Node{ID: 2, Skill: "KeepRows", Args: skills.Args{"condition": "c = 3"},
		Inputs: []Input{{Node: 0, Name: "node0"}}})
	mustRun(t, p, nil, FusePass())
	if p.Node(0) == nil {
		t.Fatal("shared parent was absorbed despite having two consumers")
	}
}

func TestFingerprintFusedMatchesPremerged(t *testing.T) {
	env := lookupEnv(t)

	// Live two-step chain, fused before fingerprinting.
	live := New(2)
	live.Add(&Node{ID: 0, Skill: "LoadData", Args: skills.Args{"file": "f.csv"}, Output: "d"})
	live.Add(&Node{ID: 1, Skill: "KeepRows", Args: skills.Args{"condition": "a > 1"},
		Inputs: []Input{{Node: 0, Name: "d"}}})
	live.Add(&Node{ID: 2, Skill: "KeepRows", Args: skills.Args{"condition": "b < 2"},
		Inputs: []Input{{Node: 1, Name: "node1"}}, Output: "out"})
	mustRun(t, live, env, FusePass(), FingerprintPass())

	// The same pipeline as a recipe would record it after slicing pre-merged
	// the two filters into one step.
	merged := New(1)
	merged.Add(&Node{ID: 0, Skill: "LoadData", Args: skills.Args{"file": "f.csv"}, Output: "d"})
	merged.Add(&Node{ID: 1, Skill: "KeepRows", Args: skills.Args{"condition": "(a > 1) AND (b < 2)"},
		Inputs: []Input{{Node: 0, Name: "d"}}, Output: "out"})
	mustRun(t, merged, env, FusePass(), FingerprintPass())

	lfp := live.Node(live.Target).Fingerprint
	mfp := merged.Node(merged.Target).Fingerprint
	if lfp == "" || lfp != mfp {
		t.Fatalf("fused chain fingerprint %q != pre-merged fingerprint %q", lfp, mfp)
	}
}

func TestFingerprintVolatilePropagates(t *testing.T) {
	env := lookupEnv(t)
	env.ExtFingerprint = func(string) (uint64, bool) { return 7, true }
	p := New(1)
	// LoadData is volatile (reads outside the session), so neither it nor its
	// descendants may receive cache keys.
	p.Add(&Node{ID: 0, Skill: "LoadData", Args: skills.Args{"file": "f.csv"}, Output: "d"})
	p.Add(&Node{ID: 1, Skill: "KeepRows", Args: skills.Args{"condition": "a > 1"},
		Inputs: []Input{{Node: 0, Name: "d"}}, Output: "out"})
	mustRun(t, p, env, FingerprintPass())
	if !p.Node(1).Volatile {
		t.Fatal("volatility did not propagate to the descendant")
	}
	if p.Node(1).Key != "" {
		t.Fatalf("volatile descendant got cache key %q", p.Node(1).Key)
	}
}

func TestFingerprintKeyIncludesExternalContent(t *testing.T) {
	env := lookupEnv(t)
	env.ExtFingerprint = func(string) (uint64, bool) { return 0xabc, true }
	p := New(0)
	p.Add(&Node{ID: 0, Skill: "KeepRows", Args: skills.Args{"condition": "a > 1"},
		Inputs: []Input{{Node: External, Name: "d"}}, Output: "out"})
	mustRun(t, p, env, FingerprintPass())
	key1 := p.Node(0).Key
	if key1 == "" {
		t.Fatal("cacheable node got no key")
	}

	env2 := lookupEnv(t)
	env2.ExtFingerprint = func(string) (uint64, bool) { return 0xdef, true }
	q := New(0)
	q.Add(&Node{ID: 0, Skill: "KeepRows", Args: skills.Args{"condition": "a > 1"},
		Inputs: []Input{{Node: External, Name: "d"}}, Output: "out"})
	mustRun(t, q, env2, FingerprintPass())
	if q.Node(0).Key == key1 {
		t.Fatal("key ignored the external dataset's content fingerprint")
	}
	if q.Node(0).Fingerprint != p.Node(0).Fingerprint {
		t.Fatal("structural fingerprint should not depend on dataset content")
	}
}

func TestCacheProbePrunesAncestors(t *testing.T) {
	env := lookupEnv(t)
	env.ExtFingerprint = func(string) (uint64, bool) { return 1, true }
	cached := &skills.Result{Message: "pinned"}
	var probed []string
	env.CacheGet = func(key string) (*skills.Result, bool) {
		probed = append(probed, key)
		return cached, true
	}
	p := New(1)
	p.Add(&Node{ID: 0, Skill: "KeepRows", Args: skills.Args{"condition": "a > 1"},
		Inputs: []Input{{Node: External, Name: "d"}}})
	p.Add(&Node{ID: 1, Skill: "KeepColumns", Args: skills.Args{"columns": []string{"a"}},
		Inputs: []Input{{Node: 0, Name: "node0"}}, Output: "out"})
	mustRun(t, p, env, FingerprintPass(), CacheProbePass())
	n := p.Node(1)
	if !n.Cached || n.Pinned != cached {
		t.Fatalf("target not pinned: cached=%v pinned=%v", n.Cached, n.Pinned)
	}
	if p.Node(0) != nil {
		t.Fatal("ancestor of a cache hit was not pruned")
	}
	if len(probed) != 1 {
		t.Fatalf("probe touched %d keys, want 1 (descent must stop at the hit)", len(probed))
	}
}

func TestConsolidateStopsAtCachedAndShared(t *testing.T) {
	env := lookupEnv(t)
	p := New(3)
	p.Add(&Node{ID: 0, Skill: "KeepRows", Args: skills.Args{"condition": "a > 1"},
		Inputs: []Input{{Node: External, Name: "d"}}})
	p.Add(&Node{ID: 1, Skill: "KeepRows", Args: skills.Args{"condition": "b < 2"},
		Inputs: []Input{{Node: 0, Name: "node0"}}})
	p.Add(&Node{ID: 2, Skill: "KeepColumns", Args: skills.Args{"columns": []string{"a"}},
		Inputs: []Input{{Node: 1, Name: "node1"}}})
	p.Add(&Node{ID: 3, Skill: "LimitRows", Args: skills.Args{"count": 5},
		Inputs: []Input{{Node: 2, Name: "node2"}}, Output: "out"})
	// Mark node 1 as a plan-time hit: the chain below must build on it.
	if err := RunPasses(p, env, FingerprintPass()); err != nil {
		t.Fatal(err)
	}
	p.Node(1).Cached = true
	mustRun(t, p, env, ConsolidatePass())
	tr := trace(t, p, "consolidate")
	if tr.Chains != 2 {
		t.Fatalf("Chains = %d, want 2 (cached node splits the run)", tr.Chains)
	}
	last := p.Fragments[len(p.Fragments)-1]
	if last.Base.Node != 1 {
		t.Fatalf("tail fragment base = %+v, want node 1 (the cached prefix)", last.Base)
	}
	if !reflect.DeepEqual(last.Nodes, []int{2, 3}) {
		t.Fatalf("tail fragment nodes = %v, want [2 3]", last.Nodes)
	}
}

func TestConsolidateCountsAbsorbedNodes(t *testing.T) {
	env := lookupEnv(t)
	p := New(2)
	p.Add(&Node{ID: 2, Skill: "KeepRows", Args: skills.Args{"condition": "a > 1"},
		Inputs: []Input{{Node: External, Name: "d"}}, Output: "out", Absorbed: []int{0, 1}})
	mustRun(t, p, env, FingerprintPass(), ConsolidatePass())
	tr := trace(t, p, "consolidate")
	if tr.NodesConsolidated != 3 {
		t.Fatalf("NodesConsolidated = %d, want 3 (1 survivor + 2 absorbed)", tr.NodesConsolidated)
	}
}

func TestPushdownCopiesArgsAndRespectsGuard(t *testing.T) {
	env := lookupEnv(t)
	sharedArgs := skills.Args{"database": "db", "table": "t1"}
	p := New(1)
	p.Add(&Node{ID: 0, Skill: "LoadTable", Args: sharedArgs, Output: "d"})
	p.Add(&Node{ID: 1, Skill: "KeepColumns", Args: skills.Args{"columns": []string{"a"}},
		Inputs: []Input{{Node: 0, Name: "d"}}, Output: "out"})
	mustRun(t, p, env, FingerprintPass(), PushdownPass())
	scan := p.Node(0)
	if _, ok := scan.Args["columns"]; !ok {
		t.Fatalf("columns were not pushed into the scan: %v", scan.Args)
	}
	if _, ok := sharedArgs["columns"]; ok {
		t.Fatal("pushdown mutated the shared lowered Args map instead of copying")
	}
	if !reflect.DeepEqual(scan.Pushdown, []string{"columns"}) {
		t.Fatalf("Pushdown = %v, want [columns]", scan.Pushdown)
	}

	// A scan that already carries a user-written condition must be left alone:
	// mixing user and pushed arguments would diverge from sequential order.
	q := New(1)
	q.Add(&Node{ID: 0, Skill: "LoadTable",
		Args: skills.Args{"database": "db", "table": "t1", "condition": "a > 1"}, Output: "d"})
	q.Add(&Node{ID: 1, Skill: "KeepColumns", Args: skills.Args{"columns": []string{"a"}},
		Inputs: []Input{{Node: 0, Name: "d"}}, Output: "out"})
	mustRun(t, q, env, FingerprintPass(), PushdownPass())
	if got := trace(t, q, "pushdown").Pushdowns; got != 0 {
		t.Fatalf("Pushdowns = %d, want 0 when the scan has user-written args", got)
	}
}

func TestPushdownSkipsSharedScan(t *testing.T) {
	env := lookupEnv(t)
	p := New(2)
	p.Add(&Node{ID: 0, Skill: "LoadTable", Args: skills.Args{"database": "db", "table": "t1"}, Output: "d"})
	p.Add(&Node{ID: 1, Skill: "KeepColumns", Args: skills.Args{"columns": []string{"a"}},
		Inputs: []Input{{Node: 0, Name: "d"}}})
	p.Add(&Node{ID: 2, Skill: "KeepRows", Args: skills.Args{"condition": "a > 1"},
		Inputs: []Input{{Node: 0, Name: "d"}}, Output: "out"})
	mustRun(t, p, env, FingerprintPass(), PushdownPass())
	if got := trace(t, p, "pushdown").Pushdowns; got != 0 {
		t.Fatalf("Pushdowns = %d, want 0 for a scan with two consumers", got)
	}
}
