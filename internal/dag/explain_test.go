package dag

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"datachat/internal/cloud"
	"datachat/internal/dataset"
	"datachat/internal/plan"
	"datachat/internal/skills"
)

var updateGolden = flag.Bool("update", false, "rewrite EXPLAIN golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN output diverged from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// The ingest→filter→join→group-by shape of a typical session: the filter
// chain on one side consolidates, the join and grouping ride on top.
func TestExplainGoldenJoinGroupBy(t *testing.T) {
	ctx := newCtx(t)
	ctx.Files["sales.csv"] = "id,amount\n1,10\n2,20\n"
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "LoadData", Inputs: nil,
		Args: skills.Args{"source": "sales.csv"}, Output: "sales"})
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 2"}, Output: "big"})
	g.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{"big"},
		Args: skills.Args{"columns": []string{"id", "v", "cat"}}, Output: "slim"})
	g.Add(skills.Invocation{Skill: "JoinDatasets", Inputs: []string{"slim", "sales"},
		Args: skills.Args{"on": "slim.id = sales.id"}, Output: "joined"})
	last := g.Add(skills.Invocation{Skill: "Compute", Inputs: []string{"joined"},
		Args: skills.Args{"aggregates": []string{"count of id as n", "sum of v as total"},
			"for_each": []string{"cat"}}, Output: "report"})
	e, err := ex.Explain(g, last)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_join_groupby", e.String())
}

// A replayed recipe with steps the target does not need: slicing prunes them
// and fusion folds the adjacent filters, like Figure 5's minimal recipe.
func TestExplainGoldenSlicedRecipe(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 1"}, Output: "f1"})
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"f1"},
		Args: skills.Args{"condition": "v < 9"}, Output: "f2"})
	g.Add(skills.Invocation{Skill: "DescribeDataset", Inputs: []string{"f1"}, Output: "profile"})
	g.Add(skills.Invocation{Skill: "PlotChart", Inputs: []string{"f1"},
		Args: skills.Args{"kind": "bar", "x": "cat", "y": "v"}, Output: "chart"})
	target := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"f2"},
		Args: skills.Args{"count": 10}, Output: "top"})
	e, err := ex.Explain(g, target)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_sliced_recipe", e.String())
}

// A cloud scan whose sole consumer's projection is pushed into the scan —
// the plan the degraded/fault-injected LoadTable path executes.
func TestExplainGoldenScanPushdown(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "LoadTable", Inputs: nil,
		Args: skills.Args{"database": "warehouse", "table": "orders"}, Output: "orders"})
	g.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{"orders"},
		Args: skills.Args{"columns": []string{"id", "total"}}, Output: "slim"})
	last := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"slim"},
		Args: skills.Args{"count": 20}, Output: "preview"})
	e, err := ex.Explain(g, last)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_scan_pushdown", e.String())
}

// Explain must round-trip through its JSON encoding unchanged.
func TestExplainJSONRoundTrip(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 2"}, Output: "f"})
	last := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"f"},
		Args: skills.Args{"count": 3}, Output: "top"})
	e, err := ex.Explain(g, last)
	if err != nil {
		t.Fatal(err)
	}
	data, err := e.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := plan.DecodeExplain(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, back) {
		t.Errorf("round trip changed the report:\nbefore: %+v\nafter:  %+v", e, back)
	}
	if back.String() != e.String() {
		t.Error("round trip changed the text rendering")
	}
}

// Explain must not execute anything or touch the cache.
func TestExplainHasNoSideEffects(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 2"}, Output: "f"})
	last := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"f"},
		Args: skills.Args{"count": 3}, Output: "top"})
	if _, err := ex.Run(g, last); err != nil {
		t.Fatal(err)
	}
	statsBefore, cacheBefore := ex.Stats(), ex.CacheStats()
	e, err := ex.Explain(g, last)
	if err != nil {
		t.Fatal(err)
	}
	// The second compilation sees the first run's cached tail.
	hits := 0
	for _, n := range e.Nodes {
		if n.Cached {
			hits++
		}
	}
	if hits == 0 {
		t.Error("Explain after a run should report the cached tail")
	}
	if got := ex.Stats(); got != statsBefore {
		t.Errorf("Explain changed executor stats: %+v -> %+v", statsBefore, got)
	}
	if got := ex.CacheStats(); got != cacheBefore {
		t.Errorf("Explain changed cache stats: %+v -> %+v", cacheBefore, got)
	}
}

// A connected warehouse gives the planner catalog stats: every node carries
// non-zero cost columns and each pass records its estimated-scan delta.
func TestExplainGoldenCostedScan(t *testing.T) {
	ctx := newCtx(t)
	ctx.Cloud["wh"] = costDB(t, 4000)
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "LoadTable", Inputs: nil,
		Args: skills.Args{"database": "wh", "table": "orders"}, Output: "orders"})
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"orders"},
		Args: skills.Args{"condition": "amount > 100"}, Output: "big"})
	last := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"big"},
		Args: skills.Args{"count": 25}, Output: "preview"})
	e, err := ex.Explain(g, last)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_costed_scan", e.String())
}

// The same scan under a forcing budget: sample-substitute fires, the node is
// rewritten to a SampleTable flagged [substituted], and the pass line shows
// the estimated-scan drop.
func TestExplainGoldenBudgetedSample(t *testing.T) {
	ctx := newCtx(t)
	ctx.Cloud["wh"] = costDB(t, 4000)
	ex := NewExecutor(reg, ctx)
	ex.Options.CostBudgetBytes = 1024
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "LoadTable", Inputs: nil,
		Args: skills.Args{"database": "wh", "table": "orders"}, Output: "orders"})
	last := g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"orders"},
		Args: skills.Args{"condition": "amount > 100"}, Output: "big"})
	e, err := ex.Explain(g, last)
	if err != nil {
		t.Fatal(err)
	}
	sub := 0
	for _, n := range e.Nodes {
		if n.Substituted {
			sub++
		}
	}
	if sub != 1 {
		t.Fatalf("want exactly 1 substituted node, got %d", sub)
	}
	checkGolden(t, "explain_budgeted_sample", e.String())

	// The costed report must survive its JSON encoding unchanged, cost
	// annotations and substitution flags included.
	data, err := e.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := plan.DecodeExplain(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, back) {
		t.Errorf("round trip changed the costed report:\nbefore: %+v\nafter:  %+v", e, back)
	}
	if back.String() != e.String() {
		t.Error("round trip changed the costed text rendering")
	}
}

// costDB builds a small warehouse whose catalog stats seed the cost model.
func costDB(t *testing.T, rows int) *cloud.Database {
	t.Helper()
	db := cloud.NewDatabase("wh", cloud.DefaultPricing, 256)
	ids := make([]int64, rows)
	amounts := make([]float64, rows)
	for i := range ids {
		ids[i] = int64(i)
		amounts[i] = float64(i % 500)
	}
	if err := db.CreateTable(dataset.MustNewTable("orders",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("amount", amounts, nil),
	)); err != nil {
		t.Fatal(err)
	}
	return db
}
