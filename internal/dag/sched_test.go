package dag

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/skills"
)

// TestDiamondSignatureMemoized is the regression test for the exponential
// Signature recursion: a 40-deep diamond DAG has 2^40 root-to-leaf paths, so
// the unmemoized recursion would take combinatorial time; memoized it hashes
// each node once.
func TestDiamondSignatureMemoized(t *testing.T) {
	buildDiamond := func(depth int) (*Graph, NodeID) {
		g := NewGraph()
		prev := "base"
		var last NodeID
		for i := 0; i < depth; i++ {
			out := fmt.Sprintf("d%d", i)
			// Both inputs resolve to the same producer: a diamond at every
			// level.
			last = g.Add(skills.Invocation{Skill: "JoinDatasets",
				Inputs: []string{prev, prev},
				Args:   skills.Args{"on": fmt.Sprintf("a.id = b.id /* %d */", i)},
				Output: out})
			prev = out
		}
		return g, last
	}

	start := time.Now()
	g, last := buildDiamond(40)
	sig, err := g.Signature(last)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("signature of a 40-deep diamond took %v; memoization is broken", elapsed)
	}
	// Deterministic across independently built graphs.
	g2, last2 := buildDiamond(40)
	sig2, err := g2.Signature(last2)
	if err != nil {
		t.Fatal(err)
	}
	if sig != sig2 {
		t.Error("identical diamonds should share a signature")
	}
	exts, err := g.ExternalInputs(last)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 1 || exts[0] != "base" {
		t.Errorf("external inputs = %v, want [base]", exts)
	}
}

func TestSignatureMemoInvalidatedOnAdd(t *testing.T) {
	g := NewGraph()
	a := g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 1"}, Output: "a"})
	sigBefore, err := g.Signature(a)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"a"},
		Args: skills.Args{"count": 3}, Output: "b"})
	sigAfter, err := g.Signature(a)
	if err != nil {
		t.Fatal(err)
	}
	if sigBefore != sigAfter {
		t.Error("adding a node must not change an existing node's signature")
	}
	sigB, err := g.Signature(b)
	if err != nil {
		t.Fatal(err)
	}
	if sigB == sigAfter {
		t.Error("child signature should differ from parent signature")
	}
}

// TestCacheNotStaleAfterDataRefresh is the regression test for stale cache
// hits: the seed keyed external inputs by dataset *name* only, so replacing
// a dataset's content under the same name kept serving the old cached
// result. Content fingerprints in the key make the second run recompute.
func TestCacheNotStaleAfterDataRefresh(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	last := g.Add(skills.Invocation{Skill: "Compute", Inputs: []string{"base"},
		Args: skills.Args{"aggregates": []string{"sum of v as total"}}})
	res1, err := ex.Run(g, last)
	if err != nil {
		t.Fatal(err)
	}
	// The same dataset name is refreshed with different content.
	vals := make([]float64, 100)
	ids := make([]int64, 100)
	for i := range vals {
		ids[i] = int64(i)
		vals[i] = 1000
	}
	ctx.PutDataset("base", dataset.MustNewTable("base",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("v", vals, nil),
	))
	res2, err := ex.Run(g, last)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Table.Equal(res2.Table) {
		t.Fatal("refreshed data served a stale cached result")
	}
	if hits := ex.Stats().CacheHits; hits != 0 {
		t.Errorf("cache hits = %d, want 0 (keys must differ across content)", hits)
	}
	// Running again with unchanged content hits normally.
	if _, err := ex.Run(g, last); err != nil {
		t.Fatal(err)
	}
	if hits := ex.Stats().CacheHits; hits != 1 {
		t.Errorf("cache hits = %d, want 1 after an identical rerun", hits)
	}
}

// TestChainPrefixCachePolicy pins down the consolidation cache policy: a
// chain task caches only its tail signature, an interior node targeted later
// recomputes (as a shorter chain) and is then cached, and subsequent chains
// stop extending at the cached prefix and reuse it as their base.
func TestChainPrefixCachePolicy(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	f := g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 2"}, Output: "f"})
	p := g.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{"f"},
		Args: skills.Args{"columns": []string{"id", "v"}}, Output: "p"})
	if _, err := ex.Run(g, p); err != nil {
		t.Fatal(err)
	}
	s0 := ex.Stats()
	if s0.SQLTasks != 1 || s0.NodesConsolidated != 2 {
		t.Fatalf("first run should consolidate [f p] into one task: %+v", s0)
	}

	// Targeting the interior node misses (only the tail was cached) and
	// executes f as its own one-node chain — which caches it.
	if _, err := ex.Run(g, f); err != nil {
		t.Fatal(err)
	}
	s1 := ex.Stats()
	if s1.CacheHits != s0.CacheHits {
		t.Errorf("interior chain node should not hit the cache: %+v", s1)
	}
	if s1.NodesConsolidated != s0.NodesConsolidated+1 {
		t.Errorf("interior target should run as a one-node chain: %+v", s1)
	}

	// A new chain on top of f stops at the cached prefix: f is served from
	// the cache and only the new node consolidates.
	l := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"f"},
		Args: skills.Args{"count": 5}, Output: "l"})
	if _, err := ex.Run(g, l); err != nil {
		t.Fatal(err)
	}
	s2 := ex.Stats()
	if s2.CacheHits != s1.CacheHits+1 {
		t.Errorf("cached prefix f should be reused as the chain base: %+v", s2)
	}
	if s2.NodesConsolidated != s1.NodesConsolidated+1 {
		t.Errorf("chain should contain only the new node: %+v", s2)
	}
}

func TestVolatileSkillsNeverCached(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	list := g.Add(skills.Invocation{Skill: "ListDatasets", Output: "catalog"})
	for i := 1; i <= 2; i++ {
		if _, err := ex.Run(g, list); err != nil {
			t.Fatal(err)
		}
		if got := ex.Stats().TasksRun; got != i {
			t.Errorf("run %d: tasks = %d, want %d (volatile reruns every time)", i, got, i)
		}
	}
	if ex.Stats().CacheHits != 0 {
		t.Errorf("volatile node hit the cache: %+v", ex.Stats())
	}
	// Descendants of a volatile node are tainted and rerun too.
	lim := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"catalog"},
		Args: skills.Args{"count": 2}, Output: "top"})
	before := ex.Stats().TasksRun
	for i := 0; i < 2; i++ {
		if _, err := ex.Run(g, lim); err != nil {
			t.Fatal(err)
		}
	}
	if got := ex.Stats().TasksRun; got != before+4 {
		t.Errorf("tainted descendant should rerun with its parent: %d -> %d, want +4", before, got)
	}
	if ex.Stats().CacheHits != 0 {
		t.Errorf("tainted descendant hit the cache: %+v", ex.Stats())
	}
}

// branchyGraph builds a fan-out/fan-in DAG: a shared filter, k relational
// branch chains (two of them identical except for output names, exercising
// in-run deduplication), concatenated into one target.
func branchyGraph(k int) (*Graph, NodeID) {
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v >= 0"}, Output: "shared"})
	tails := make([]string, 0, k+1)
	for i := 0; i < k; i++ {
		fOut := fmt.Sprintf("b%df", i)
		g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"shared"},
			Args: skills.Args{"condition": fmt.Sprintf("v > %d", i%7)}, Output: fOut})
		cOut := fmt.Sprintf("b%dc", i)
		g.Add(skills.Invocation{Skill: "NewColumn", Inputs: []string{fOut},
			Args: skills.Args{"name": fmt.Sprintf("w%d", i), "formula": fmt.Sprintf("v * %d", i+2)}, Output: cOut})
		tail := fmt.Sprintf("b%dt", i)
		g.Add(skills.Invocation{Skill: "SortRows", Inputs: []string{cOut},
			Args: skills.Args{"columns": "id"}, Output: tail})
		tails = append(tails, tail)
	}
	// A branch identical to branch 0 up to output names: same signatures,
	// so its tasks share cache keys with branch 0's within a single run.
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"shared"},
		Args: skills.Args{"condition": "v > 0"}, Output: "dupf"})
	g.Add(skills.Invocation{Skill: "NewColumn", Inputs: []string{"dupf"},
		Args: skills.Args{"name": "w0", "formula": "v * 2"}, Output: "dupc"})
	g.Add(skills.Invocation{Skill: "SortRows", Inputs: []string{"dupc"},
		Args: skills.Args{"columns": "id"}, Output: "dupt"})
	tails = append(tails, "dupt")
	target := g.Add(skills.Invocation{Skill: "Concatenate", Inputs: tails, Output: "all"})
	return g, target
}

// TestParallelMatchesSerialProperty is the §2.2 schedule-independence
// property: for branchy DAGs, serial execution (Parallelism=1) and parallel
// execution produce identical result tables and identical stats.
func TestParallelMatchesSerialProperty(t *testing.T) {
	run := func(parallelism, branches int) (*skills.Result, Stats, error) {
		ex := NewExecutor(reg, newCtxQuiet())
		ex.Options.Parallelism = parallelism
		g, target := branchyGraph(branches)
		res, err := ex.Run(g, target)
		return res, ex.Stats(), err
	}
	f := func(raw uint8) bool {
		branches := 2 + int(raw%6)
		serialRes, serialStats, err := run(1, branches)
		if err != nil {
			t.Log(err)
			return false
		}
		for _, workers := range []int{0, 4, 16} {
			parRes, parStats, err := run(workers, branches)
			if err != nil {
				t.Log(err)
				return false
			}
			if !serialRes.Table.Equal(parRes.Table.WithName(serialRes.Table.Name())) {
				t.Logf("parallelism %d: result differs from serial", workers)
				return false
			}
			if serialStats != parStats {
				t.Logf("parallelism %d: stats %+v != serial %+v", workers, parStats, serialStats)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestParallelRunDeduplicatesIdenticalBranches checks that two structurally
// identical branches submitted in one run execute once: the second is served
// by the cache (or joins the first's in-flight computation under parallel
// scheduling) — singleflight in action.
func TestParallelRunDeduplicatesIdenticalBranches(t *testing.T) {
	for _, parallelism := range []int{1, 8} {
		// With session-wide CSE off, the duplicate branch still dedups at
		// execution time: the second fragment joins the first's cache entry
		// (or in-flight computation) — singleflight in action.
		ex := NewExecutor(reg, newCtxQuiet())
		ex.CSE = false
		ex.Options.Parallelism = parallelism
		g, target := branchyGraph(1) // branch 0 + its duplicate
		if _, err := ex.Run(g, target); err != nil {
			t.Fatal(err)
		}
		stats := ex.Stats()
		if stats.CacheHits != 1 {
			t.Errorf("parallelism %d: cache hits = %d, want 1 (duplicate branch deduplicated)", parallelism, stats.CacheHits)
		}

		// With CSE on (the default), the duplicate never even plans: the
		// cse pass merges the identical sub-plans before task emission and
		// the one result materializes under both output names.
		ex2 := NewExecutor(reg, newCtxQuiet())
		ex2.Options.Parallelism = parallelism
		g2, target2 := branchyGraph(1)
		res, err := ex2.Run(g2, target2)
		if err != nil {
			t.Fatal(err)
		}
		ctx2 := ex2.Ctx
		dup, err := ctx2.Dataset("dupt")
		if err != nil {
			t.Fatalf("parallelism %d: CSE alias dupt not materialized: %v", parallelism, err)
		}
		orig, err := ctx2.Dataset("b0t")
		if err != nil {
			t.Fatal(err)
		}
		if !dup.Equal(orig.WithName(dup.Name())) {
			t.Errorf("parallelism %d: alias dataset differs from survivor", parallelism)
		}
		ex3 := NewExecutor(reg, newCtxQuiet())
		ex3.CSE = false
		g3, target3 := branchyGraph(1)
		base, err := ex3.Run(g3, target3)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Table.Equal(base.Table.WithName(res.Table.Name())) {
			t.Errorf("parallelism %d: CSE changed the result", parallelism)
		}
		ex2e, err := ex2.Explain(g2, target2)
		if err != nil {
			t.Fatal(err)
		}
		cseFired := false
		for _, pt := range ex2e.Passes {
			if pt.Pass == "cse" && pt.Fired && pt.Dedup >= 3 {
				cseFired = true
			}
		}
		if !cseFired {
			t.Errorf("parallelism %d: cse pass did not dedup the duplicate branch", parallelism)
		}
	}
}

func TestRunErrorsPropagateFromParallelBranches(t *testing.T) {
	ex := NewExecutor(reg, newCtxQuiet())
	ex.Options.Parallelism = 8
	g := NewGraph()
	tails := []string{}
	for i := 0; i < 4; i++ {
		out := fmt.Sprintf("t%d", i)
		cond := fmt.Sprintf("v > %d", i)
		if i == 2 {
			cond = "no_such_column > 1" // this branch fails at execution
		}
		g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
			Args: skills.Args{"condition": cond}, Output: out})
		tails = append(tails, out)
	}
	target := g.Add(skills.Invocation{Skill: "Concatenate", Inputs: tails})
	if _, err := ex.Run(g, target); err == nil {
		t.Fatal("failing branch should fail the run")
	}
}
