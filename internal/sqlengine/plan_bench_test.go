// Plan-pipeline benchmarks live in the external test package so they can
// drive the dag executor (dag imports sqlengine) over realistic relational
// chains: planned execution — fuse + consolidate + pushdown — against the
// naive one-task-per-step baseline, picked up by the tier-1 benchtime smoke.
package sqlengine_test

import (
	"fmt"
	"testing"

	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/skills"
)

var benchReg = skills.NewRegistry()

func benchPlanCtx(rows int) *skills.Context {
	ctx := skills.NewContext()
	ids := make([]int64, rows)
	vals := make([]float64, rows)
	cats := make([]string, rows)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = float64(i % 997)
		cats[i] = string(rune('a' + i%5))
	}
	ctx.Datasets["events"] = dataset.MustNewTable("events",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("v", vals, nil),
		dataset.StringColumn("cat", cats, nil),
	)
	return ctx
}

func benchPlanGraph() (*dag.Graph, dag.NodeID) {
	g := dag.NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"events"},
		Args: skills.Args{"condition": "v > 100"}, Output: "f1"})
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"f1"},
		Args: skills.Args{"condition": "v < 900"}, Output: "f2"})
	g.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{"f2"},
		Args: skills.Args{"columns": []string{"id", "v", "cat"}}, Output: "p1"})
	g.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{"p1"},
		Args: skills.Args{"columns": []string{"id", "v"}}, Output: "p2"})
	last := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"p2"},
		Args: skills.Args{"count": 500}})
	return g, last
}

func benchPlanChain(b *testing.B, planned bool) {
	for _, rows := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			ctx := benchPlanCtx(rows)
			ex := dag.NewExecutor(benchReg, ctx)
			if !planned {
				ex.Consolidate, ex.Fuse, ex.Pushdown = false, false, false
			}
			ex.UseCache = false // measure execution, not the cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, last := benchPlanGraph()
				if _, err := ex.Run(g, last); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPlannedChain(b *testing.B) { benchPlanChain(b, true) }

func BenchmarkNaiveChain(b *testing.B) { benchPlanChain(b, false) }

// BenchmarkPlanCompile isolates the planning cost itself: lowering plus the
// full pass pipeline, without executing.
func BenchmarkPlanCompile(b *testing.B) {
	ctx := benchPlanCtx(1_000)
	ex := dag.NewExecutor(benchReg, ctx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, last := benchPlanGraph()
		if _, err := ex.Explain(g, last); err != nil {
			b.Fatal(err)
		}
	}
}
