package datachat_test

import (
	"fmt"

	"datachat"
)

// ExampleNew shows the platform quickstart: register data, open a session,
// and run GEL sentences.
func ExampleNew() {
	p := datachat.New()
	p.RegisterFile("sales.csv", "region,price\neast,10\nwest,20\neast,30\n")
	if _, err := p.CreateSession("analysis", "ann"); err != nil {
		fmt.Println(err)
		return
	}
	res, err := p.RequestGEL("analysis", "ann", "Load data from the file sales.csv", "")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("loaded %d rows × %d columns\n", res.Table.NumRows(), res.Table.NumCols())
	// Output: loaded 3 rows × 2 columns
}

// ExampleNewExecutor shows direct DAG execution with consolidation: three
// relational skills compile into one SQL task.
func ExampleNewExecutor() {
	reg := datachat.NewRegistry()
	ctx := datachat.NewContext()
	tbl, _ := datachat.ReadCSV("sales", "region,price\neast,10\nwest,20\neast,30\n")
	ctx.Datasets["sales"] = tbl

	g := datachat.NewGraph()
	g.Add(datachat.Invocation{Skill: "KeepRows", Inputs: []string{"sales"},
		Args: datachat.Args{"condition": "price >= 10"}, Output: "kept"})
	g.Add(datachat.Invocation{Skill: "KeepColumns", Inputs: []string{"kept"},
		Args: datachat.Args{"columns": []string{"region"}}, Output: "proj"})
	last := g.Add(datachat.Invocation{Skill: "LimitRows", Inputs: []string{"proj"},
		Args: datachat.Args{"count": 2}})

	ex := datachat.NewExecutor(reg, ctx)
	res, err := ex.Run(g, last)
	if err != nil {
		fmt.Println(err)
		return
	}
	stats := ex.Stats()
	fmt.Printf("%d rows via %d SQL task(s), %d query block(s)\n",
		res.Table.NumRows(), stats.SQLTasks, stats.QueryBlocks)
	// Output: 2 rows via 1 SQL task(s), 1 query block(s)
}

// ExampleNewGELRunner steps a recipe line by line, the Figure 2a debugger
// interaction.
func ExampleNewGELRunner() {
	reg := datachat.NewRegistry()
	ctx := datachat.NewContext()
	tbl, _ := datachat.ReadCSV("people", "age\n10\n20\n30\n40\n")
	ctx.Datasets["people"] = tbl
	runner := datachat.NewGELRunner(datachat.NewGELParser(reg), datachat.NewExecutor(reg, ctx), []string{
		"Use the dataset people",
		"Keep the rows where age > 15",
		"Count the rows",
	})
	steps, err := runner.RunAll()
	if err != nil {
		fmt.Println(err)
		return
	}
	c, _ := steps[2].Result.Table.Column("rows")
	fmt.Println("count:", c.Value(0))
	// Output: count: 3
}
