package conformance

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strings"
	"time"

	"datachat/internal/client"
	"datachat/internal/cloud"
	"datachat/internal/core"
	"datachat/internal/dataset"
	"datachat/internal/faults"
	"datachat/internal/recipe"
	"datachat/internal/server"
	"datachat/internal/session"
	"datachat/internal/skills"
	"datachat/internal/wire"
)

// SessionName and User are the fixed identity every route runs under.
const (
	SessionName = "conformance"
	User        = "tester"
)

// Routes lists the five execution routes in comparison order. The first
// entry (recipe replay) is the reference the others are diffed against.
var Routes = []string{"recipe", "gel", "pyapi", "phrase", "wire"}

// RouteResult is one route's observable outcome, reduced to the fields
// the harness compares cell by cell.
type RouteResult struct {
	Route        string
	Table        *dataset.Table
	NumCharts    int
	ChartsJSON   string
	Message      string
	Degraded     bool
	DegradedNote string
	// Err is the execution error (nil on success). Harness failures —
	// the route machinery itself misbehaving — are returned separately.
	Err error
}

func fromResult(route string, res *skills.Result) (*RouteResult, error) {
	rr := &RouteResult{Route: route}
	if res == nil {
		return rr, nil
	}
	rr.Table = res.Table
	rr.Message = res.Message
	rr.Degraded = res.Degraded
	rr.DegradedNote = res.DegradedNote
	rr.NumCharts = len(res.Charts)
	if len(res.Charts) > 0 {
		j, err := json.Marshal(res.Charts)
		if err != nil {
			return nil, fmt.Errorf("conformance: marshaling charts: %w", err)
		}
		rr.ChartsJSON = string(j)
	}
	return rr, nil
}

// caseEnv is one fresh platform + session seeded with the case's fixtures.
// Every route gets its own so no route observes another's cache or graph.
type caseEnv struct {
	p *core.Platform
	s *session.Session
}

func newEnv(c *Case) (*caseEnv, error) {
	p := core.New()
	for _, f := range c.Fixtures {
		p.RegisterFile(f.Name, f.CSV)
	}
	dbs := map[string]*cloud.Database{}
	for _, f := range c.DBFixtures {
		key := strings.ToLower(f.DB)
		db := dbs[key]
		if db == nil {
			db = cloud.NewDatabase(f.DB, cloud.DefaultPricing, 4)
			dbs[key] = db
		}
		t, err := dataset.ReadCSVString(f.Table, f.CSV)
		if err != nil {
			return nil, fmt.Errorf("conformance: fixture %s.%s: %w", f.DB, f.Table, err)
		}
		if err := db.CreateTable(t); err != nil {
			return nil, err
		}
	}
	for _, db := range dbs {
		var conn cloud.DB = db
		if c.Kind == "degraded" {
			// Every scan fails permanently; the degrade ladder must carry
			// the case. A 100% block sample keeps results deterministic and
			// cell-identical to a healthy scan, so the only visible change
			// is the annotation — exactly what the case pins.
			inj := faults.NewInjector(faults.Schedule{
				PermanentRate: 1,
				Ops:           map[string]bool{"scan": true},
			}, nil)
			conn = faults.WrapDB(db, inj)
		}
		if err := p.ConnectDatabase(conn); err != nil {
			return nil, err
		}
	}
	s, err := p.CreateSession(SessionName, User)
	if err != nil {
		return nil, err
	}
	for _, f := range c.Fixtures {
		t, err := dataset.ReadCSVString(f.Name, f.CSV)
		if err != nil {
			return nil, fmt.Errorf("conformance: fixture %s: %w", f.Name, err)
		}
		s.Context().PutDataset(f.Name, t)
	}
	if c.Kind == "degraded" {
		s.Context().Degrade = skills.DegradePolicy{Enabled: true, SampleRate: 1}
	}
	if c.BudgetBytes > 0 {
		// The in-process routes read the executor's standing options; the
		// wire route additionally carries the knob on the RunRequest.
		s.Executor().Options.CostBudgetBytes = c.BudgetBytes
	}
	return &caseEnv{p: p, s: s}, nil
}

func invsOf(steps []recipe.Step) []skills.Invocation {
	invs := make([]skills.Invocation, len(steps))
	for i, st := range steps {
		invs[i] = skills.Invocation{
			Skill:  st.Skill,
			Inputs: append([]string{}, st.Inputs...),
			Output: st.Output,
			Args:   st.Args,
		}
	}
	return invs
}

// RunRoute executes the case's canonical program through one front end.
// The returned error is a harness failure; execution failures land in
// RouteResult.Err so error-expecting cases can assert on them.
func RunRoute(c *Case, route string) (*RouteResult, error) {
	switch route {
	case "recipe":
		return runRecipe(c)
	case "gel":
		return runGEL(c)
	case "pyapi":
		return runPyAPI(c)
	case "phrase":
		return runPhrase(c)
	case "wire":
		return runWire(c)
	}
	return nil, fmt.Errorf("conformance: unknown route %q", route)
}

// runRecipe replays the canonical steps as a saved recipe — the reference
// route: no rendering, no parsing, just the program itself.
func runRecipe(c *Case) (*RouteResult, error) {
	env, err := newEnv(c)
	if err != nil {
		return nil, err
	}
	r := &recipe.Recipe{Name: c.Name, Steps: c.Steps}
	res, err := env.s.ReplayRecipe(context.Background(), User, r, false)
	if err != nil {
		return &RouteResult{Route: "recipe", Err: err}, nil
	}
	return fromResult("recipe", res)
}

// sentenceNamesInputs reports whether a skill's GEL sentence spells out its
// dataset inputs (so the parse round trip recovers them without relying on
// the current-dataset default).
func sentenceNamesInputs(skill string) bool {
	return skill == "JoinDatasets" || skill == "Concatenate"
}

// runGEL renders every canonical step back to its GEL sentence, re-parses
// it through the platform's front door, and executes step by step with the
// console's current-dataset bookkeeping — pinning the render→parse round
// trip AND the needsInput defaulting rule against the reference.
func runGEL(c *Case) (*RouteResult, error) {
	env, err := newEnv(c)
	if err != nil {
		return nil, err
	}
	// Statement-by-statement execution populates the sub-DAG cache as it
	// goes, so a later statement's consolidation would stop at its cached
	// prefix and quote a shorter SQL fragment than the batch reference.
	// That divergence is legitimate interactive behavior but not what this
	// route pins (the render→parse round trip), so run it uncached.
	env.s.Executor().UseCache = false
	nameMap := map[string]string{} // canonical output -> session output name
	mapName := func(n string) string {
		if actual, ok := nameMap[n]; ok {
			return actual
		}
		return n
	}
	current := ""
	run1 := func(line, cur string) (*skills.Result, string, error) {
		parsed, err := env.p.ParseGEL(line, cur)
		if err != nil {
			return nil, "", err
		}
		res, ids, err := env.s.RequestProgram(User, parsed)
		if err != nil {
			return nil, "", err
		}
		return res, fmt.Sprintf("node%d", ids[len(ids)-1]), nil
	}
	var last *skills.Result
	for _, step := range c.Steps {
		inv := skills.Invocation{Skill: step.Skill, Args: step.Args}
		for _, in := range step.Inputs {
			inv.Inputs = append(inv.Inputs, mapName(in))
		}
		// A join condition may qualify its keys by the canonical input
		// names ("s1.id = s2.ref"); those need the same renaming the
		// Inputs themselves get, or the re-parsed statement would point
		// at datasets this session never created.
		if on, ok := inv.Args["on"].(string); ok {
			mapped := on
			for canon, actual := range nameMap {
				mapped = strings.ReplaceAll(mapped, canon+".", actual+".")
			}
			if mapped != on {
				args := skills.Args{}
				for k, v := range inv.Args {
					args[k] = v
				}
				args["on"] = mapped
				inv.Args = args
			}
		}
		// A step consuming a dataset its sentence cannot name relies on the
		// current-dataset default; when the target is not current, switch
		// with the idiomatic "Use the dataset …" sentence first.
		if needsInput(step.Skill) && len(inv.Inputs) == 1 &&
			inv.Inputs[0] != current && !sentenceNamesInputs(step.Skill) {
			_, out, err := run1("Use the dataset "+inv.Inputs[0], "")
			if err != nil {
				return &RouteResult{Route: "gel", Err: err}, nil
			}
			current = out
			inv.Inputs[0] = current
		}
		line, err := env.p.Registry.RenderGEL(inv)
		if err != nil {
			return nil, fmt.Errorf("conformance: rendering %s to GEL: %w", step.Skill, err)
		}
		res, out, err := run1(line, current)
		if err != nil {
			return &RouteResult{Route: "gel", Err: err}, nil
		}
		last = res
		nameMap[step.Output] = out
		if advancesCurrent(env.p.Registry, step.Skill) {
			current = out
		}
	}
	return fromResult("gel", last)
}

// runPyAPI renders the canonical steps as a Python API script and executes
// it through the platform's script entry point.
func runPyAPI(c *Case) (*RouteResult, error) {
	env, err := newEnv(c)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, inv := range invsOf(c.Steps) {
		line, err := env.p.Registry.RenderPython(inv)
		if err != nil {
			return nil, fmt.Errorf("conformance: rendering %s to Python: %w", inv.Skill, err)
		}
		lines = append(lines, line)
	}
	res, err := env.p.RunPython(SessionName, User, strings.Join(lines, "\n"))
	if err != nil {
		return &RouteResult{Route: "pyapi", Err: err}, nil
	}
	return fromResult("pyapi", res)
}

// phraseSentence reconstructs the §4.8 phrase sentence for a canonical
// Visualize step, when one can express it (filters cannot round-trip
// through the translator's paren-wrapping, so filtered steps pass).
func phraseSentence(step recipe.Step) (string, bool) {
	if step.Skill != "Visualize" || len(step.Inputs) != 1 {
		return "", false
	}
	if _, filtered := step.Args["filter"]; filtered {
		return "", false
	}
	kpi, ok := step.Args["kpi"].(string)
	if !ok {
		return "", false
	}
	s := "Visualize " + kpi
	if by := step.Args.StringListOr("by"); len(by) > 0 {
		s += " by " + strings.Join(by, ", ")
	}
	return s, true
}

// runPhrase exercises the phrase-based translator whenever the case is
// phrase-expressible: phrase-dialect cases run their statements one by one
// through the translator; other
// cases ending in an unfiltered Visualize run their prefix as a program
// and the final step through the translator. Programs the Visualize-only
// phrase surface cannot express execute through the same shared Run entry
// point the translator would hand its invocation to.
func runPhrase(c *Case) (*RouteResult, error) {
	env, err := newEnv(c)
	if err != nil {
		return nil, err
	}
	if c.Dialect == "phrase" {
		// A phrase session is a sequence of questions asked of one dataset;
		// run it statement by statement the way an interactive user would,
		// with the last answer as the session's result.
		var last *skills.Result
		for _, line := range strings.Split(c.Body, "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			res, err := env.p.RunPhrase(SessionName, User, line, c.PhraseDataset)
			if err != nil {
				return &RouteResult{Route: "phrase", Err: err}, nil
			}
			last = res
		}
		return fromResult("phrase", last)
	}
	last := c.Steps[len(c.Steps)-1]
	if sentence, ok := phraseSentence(last); ok {
		if len(c.Steps) > 1 {
			if _, _, err := env.s.RequestProgram(User, invsOf(c.Steps[:len(c.Steps)-1])...); err != nil {
				return &RouteResult{Route: "phrase", Err: err}, nil
			}
		}
		res, err := env.p.RunPhrase(SessionName, User, sentence, last.Inputs[0])
		if err != nil {
			return &RouteResult{Route: "phrase", Err: err}, nil
		}
		return fromResult("phrase", res)
	}
	res, _, err := env.s.RequestProgram(User, invsOf(c.Steps)...)
	if err != nil {
		return &RouteResult{Route: "phrase", Err: err}, nil
	}
	return fromResult("phrase", res)
}

// runWire executes the canonical steps over HTTP against an in-process
// datachatd via the Go client — JSON encode/decode, admission control, and
// the server's program resolution all in the loop.
func runWire(c *Case) (*RouteResult, error) {
	env, err := newEnv(c)
	if err != nil {
		return nil, err
	}
	srv := server.New(env.p, server.Config{DefaultMaxRows: 1_000_000, MaxPageRows: 1_000_000})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := client.New(ts.URL)
	resp, err := cl.Run(context.Background(), SessionName, wire.RunRequest{
		User: User, Program: c.Steps, CostBudgetBytes: c.BudgetBytes,
	})
	if err != nil {
		return &RouteResult{Route: "wire", Err: err}, nil
	}
	rr := &RouteResult{Route: "wire"}
	if resp.Result != nil {
		rr.Message = resp.Result.Message
		rr.Degraded = resp.Result.Degraded
		rr.DegradedNote = resp.Result.DegradedNote
		rr.NumCharts = len(resp.Result.Charts)
		if len(resp.Result.Charts) > 0 {
			j, err := json.Marshal(resp.Result.Charts)
			if err != nil {
				return nil, err
			}
			rr.ChartsJSON = string(j)
		}
		if resp.Result.Table != nil {
			t, err := resp.Result.Table.Decode()
			if err != nil {
				return nil, fmt.Errorf("conformance: decoding wire table: %w", err)
			}
			rr.Table = t
		}
	}
	return rr, nil
}

// diff compares a route's outcome against the reference route's,
// returning a description of the first divergence.
func (rr *RouteResult) diff(ref *RouteResult) error {
	if (rr.Err != nil) != (ref.Err != nil) {
		return fmt.Errorf("route %s error %v, reference error %v", rr.Route, rr.Err, ref.Err)
	}
	if rr.Err != nil {
		return nil // both failed; ExpectError asserts the message per route
	}
	if (rr.Table != nil) != (ref.Table != nil) {
		return fmt.Errorf("route %s table presence %v, reference %v", rr.Route, rr.Table != nil, ref.Table != nil)
	}
	if rr.Table != nil && !rr.Table.Equal(ref.Table) {
		return fmt.Errorf("route %s table differs from reference:\n%s", rr.Route, tableDiff(rr.Table, ref.Table))
	}
	if rr.NumCharts != ref.NumCharts {
		return fmt.Errorf("route %s built %d charts, reference %d", rr.Route, rr.NumCharts, ref.NumCharts)
	}
	if rr.ChartsJSON != ref.ChartsJSON {
		return fmt.Errorf("route %s charts differ from reference", rr.Route)
	}
	if normMessage(rr.Message) != normMessage(ref.Message) {
		return fmt.Errorf("route %s message %q, reference %q", rr.Route, rr.Message, ref.Message)
	}
	if rr.Degraded != ref.Degraded || rr.DegradedNote != ref.DegradedNote {
		return fmt.Errorf("route %s degraded (%v, %q), reference (%v, %q)",
			rr.Route, rr.Degraded, rr.DegradedNote, ref.Degraded, ref.DegradedNote)
	}
	return nil
}

// intermediateName matches the synthesized names each route gives unnamed
// intermediate results: canonical s1, s2, … and the console's node0, node1,
// …. Result messages quote consolidated SQL over these names, so a route's
// naming scheme leaks into otherwise identical messages.
var intermediateName = regexp.MustCompile(`\b(?:node|s)\d+\b`)

// normMessage canonicalizes route-specific intermediate dataset names so
// message comparison pins the SQL shape, not the naming scheme.
func normMessage(msg string) string {
	return intermediateName.ReplaceAllString(msg, "§")
}

func tableDiff(got, want *dataset.Table) string {
	return fmt.Sprintf("got %d×%d cols %v\nwant %d×%d cols %v",
		got.NumRows(), got.NumCols(), got.ColumnNames(),
		want.NumRows(), want.NumCols(), want.ColumnNames())
}

// Verify runs the case through all five routes, asserts cross-route
// agreement, checks the case's own expectations, and runs the kind's
// extra protocol (lock contention, cache-hit replay). It returns the
// reference route's result for reuse (matrix mode, generators).
func Verify(c *Case) (*RouteResult, error) {
	results := make([]*RouteResult, 0, len(Routes))
	for _, route := range Routes {
		rr, err := RunRoute(c, route)
		if err != nil {
			return nil, fmt.Errorf("case %s: route %s: %w", c.Name, route, err)
		}
		results = append(results, rr)
	}
	ref := results[0]
	for _, rr := range results[1:] {
		if err := rr.diff(ref); err != nil {
			return nil, fmt.Errorf("case %s: %w", c.Name, err)
		}
	}
	for _, rr := range results {
		if c.ExpectError != "" {
			if rr.Err == nil {
				return nil, fmt.Errorf("case %s: route %s succeeded, want error containing %q", c.Name, rr.Route, c.ExpectError)
			}
			if !strings.Contains(rr.Err.Error(), c.ExpectError) {
				return nil, fmt.Errorf("case %s: route %s error %q does not contain %q", c.Name, rr.Route, rr.Err.Error(), c.ExpectError)
			}
			continue
		}
		if rr.Err != nil {
			return nil, fmt.Errorf("case %s: route %s failed: %w", c.Name, rr.Route, rr.Err)
		}
		if c.ExpectDegraded && !rr.Degraded {
			return nil, fmt.Errorf("case %s: route %s result is not annotated degraded", c.Name, rr.Route)
		}
		if c.ExpectDegradedNote != "" && !strings.Contains(rr.DegradedNote, c.ExpectDegradedNote) {
			return nil, fmt.Errorf("case %s: route %s degraded note %q does not contain %q",
				c.Name, rr.Route, rr.DegradedNote, c.ExpectDegradedNote)
		}
	}
	if c.ExpectError == "" {
		if c.Expect != "" {
			want, err := dataset.ReadCSVString("expect", c.Expect)
			if err != nil {
				return nil, fmt.Errorf("case %s: expect block: %w", c.Name, err)
			}
			if ref.Table == nil {
				return nil, fmt.Errorf("case %s: expected a table, got none", c.Name)
			}
			if err := TablesMatch(ref.Table, want, c.Unordered); err != nil {
				return nil, fmt.Errorf("case %s: %w", c.Name, err)
			}
		}
		if c.ExpectMessage != "" && ref.Message != c.ExpectMessage {
			return nil, fmt.Errorf("case %s: message %q, want %q", c.Name, ref.Message, c.ExpectMessage)
		}
		if c.ExpectCharts >= 0 && ref.NumCharts != c.ExpectCharts {
			return nil, fmt.Errorf("case %s: built %d charts, want %d", c.Name, ref.NumCharts, c.ExpectCharts)
		}
	}
	switch c.Kind {
	case "lock":
		if err := checkContention(c); err != nil {
			return nil, fmt.Errorf("case %s: %w", c.Name, err)
		}
	case "cache":
		if err := checkCacheReplay(c); err != nil {
			return nil, fmt.Errorf("case %s: %w", c.Name, err)
		}
	}
	return ref, nil
}

// canonCell formats a value for order-insensitive / CSV-roundtrip-safe
// comparison: numerics at %.6g so int/float inference drift between a
// result table and its CSV golden never false-fails.
func canonCell(v dataset.Value) string {
	if v.IsNull() {
		return "∅"
	}
	if f, ok := v.AsFloat(); ok && v.Type != dataset.TypeBool && v.Type != dataset.TypeTime {
		return fmt.Sprintf("%.6g", f)
	}
	return v.String()
}

func canonRows(t *dataset.Table) []string {
	rows := make([]string, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		cells := make([]string, t.NumCols())
		for j, c := range t.Columns() {
			cells[j] = canonCell(c.Value(r))
		}
		rows[r] = strings.Join(cells, "|")
	}
	return rows
}

// TablesMatch compares a result table to an expected table with canonical
// cell formatting; unordered treats the rows as a multiset.
func TablesMatch(got, want *dataset.Table, unordered bool) error {
	gn, wn := got.ColumnNames(), want.ColumnNames()
	if strings.Join(gn, ",") != strings.Join(wn, ",") {
		return fmt.Errorf("columns %v, want %v", gn, wn)
	}
	if got.NumRows() != want.NumRows() {
		return fmt.Errorf("%d rows, want %d", got.NumRows(), want.NumRows())
	}
	gr, wr := canonRows(got), canonRows(want)
	if unordered {
		sortStrings(gr)
		sortStrings(wr)
	}
	for i := range gr {
		if gr[i] != wr[i] {
			return fmt.Errorf("row %d is %q, want %q", i, gr[i], wr[i])
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// checkContention asserts the §2.4 single-writer protocol around the
// case's pipeline: while a (harness-injected) skill holds the session
// lock, the same program is rejected with ErrBusy in-process and with a
// typed 409 over the wire — then the pipeline runs to completion.
func checkContention(c *Case) error {
	env, err := newEnv(c)
	if err != nil {
		return err
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	err = env.p.Registry.Register(&skills.Definition{
		Name:     "ConformanceBarrier",
		Category: skills.Collaboration,
		Summary:  "test-only: block the session lock until released",
		GEL:      "Hold the conformance barrier",
		PyName:   "conformance_barrier",
		Volatile: true,
		Apply: func(ctx *skills.Context, inv skills.Invocation) (*skills.Result, error) {
			close(entered)
			select {
			case <-release:
			case <-time.After(30 * time.Second):
				return nil, fmt.Errorf("conformance: barrier never released")
			}
			return &skills.Result{Message: "released"}, nil
		},
	})
	if err != nil {
		return err
	}
	srv := server.New(env.p, server.Config{DefaultMaxRows: 1_000_000})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	holdDone := make(chan error, 1)
	go func() {
		_, _, err := env.s.RequestProgram(User, skills.Invocation{Skill: "ConformanceBarrier"})
		holdDone <- err
	}()
	<-entered
	if _, _, err := env.s.RequestProgram(User, invsOf(c.Steps)...); !isBusy(err) {
		close(release)
		<-holdDone
		return fmt.Errorf("in-process run under contention: got %v, want session busy", err)
	}
	cl := client.New(ts.URL)
	if _, err := cl.Run(context.Background(), SessionName, wire.RunRequest{User: User, Program: c.Steps}); !client.IsBusy(err) {
		close(release)
		<-holdDone
		return fmt.Errorf("wire run under contention: got %v, want typed 409 busy", err)
	}
	close(release)
	if err := <-holdDone; err != nil {
		return fmt.Errorf("barrier holder: %w", err)
	}
	// Lock free again: the pipeline must run normally.
	if _, _, err := env.s.RequestProgram(User, invsOf(c.Steps)...); err != nil {
		return fmt.Errorf("run after contention: %w", err)
	}
	return nil
}

func isBusy(err error) bool {
	if err == nil {
		return false
	}
	return strings.Contains(err.Error(), session.ErrBusy.Error())
}

// checkCacheReplay replays the case's recipe twice in one environment and
// asserts the second pass is served from the sub-DAG cache with identical
// results.
func checkCacheReplay(c *Case) error {
	env, err := newEnv(c)
	if err != nil {
		return err
	}
	r := &recipe.Recipe{Name: c.Name, Steps: c.Steps}
	first, err := env.s.ReplayRecipe(context.Background(), User, r, false)
	if err != nil {
		return fmt.Errorf("first replay: %w", err)
	}
	before := env.p.CacheStats()
	second, err := env.s.ReplayRecipe(context.Background(), User, r, false)
	if err != nil {
		return fmt.Errorf("second replay: %w", err)
	}
	after := env.p.CacheStats()
	if after.Hits <= before.Hits {
		return fmt.Errorf("second replay hit the cache %d times, want > %d", after.Hits, before.Hits)
	}
	if (first.Table != nil) != (second.Table != nil) {
		return fmt.Errorf("cached replay changed table presence")
	}
	if first.Table != nil && !first.Table.Equal(second.Table) {
		return fmt.Errorf("cached replay returned a different table")
	}
	return nil
}

// MatrixPoint is one cell of the streamed-execution matrix.
type MatrixPoint struct {
	Workers         int
	MaxBufferedRows int
}

// DefaultMatrix re-runs a case streamed at parallelism {1,2,4} with a
// tiny memory budget so pipeline breakers must spill.
var DefaultMatrix = []MatrixPoint{{1, 3}, {2, 3}, {4, 3}}

// RunMatrix executes the canonical program streamed under the point's
// tuning and asserts both the final result and the reassembled chunk
// stream are cell-identical to the buffered reference.
func RunMatrix(c *Case, ref *RouteResult, pt MatrixPoint, spillDir string) error {
	env, err := newEnv(c)
	if err != nil {
		return err
	}
	var parts []*dataset.Table
	tune := &session.Tuning{
		Stream:                func(t *dataset.Table) error { parts = append(parts, t); return nil },
		StreamChunkRows:       2,
		StreamParallelism:     pt.Workers,
		StreamMaxBufferedRows: pt.MaxBufferedRows,
		StreamSpillDir:        spillDir,
	}
	res, _, err := env.s.RequestProgramCtx(context.Background(), User, tune, invsOf(c.Steps)...)
	if err != nil {
		return fmt.Errorf("streamed run (workers=%d, budget=%d): %w", pt.Workers, pt.MaxBufferedRows, err)
	}
	if (res.Table != nil) != (ref.Table != nil) {
		return fmt.Errorf("streamed run (workers=%d) table presence %v, buffered %v", pt.Workers, res.Table != nil, ref.Table != nil)
	}
	if res.Table != nil && !res.Table.Equal(ref.Table) {
		return fmt.Errorf("streamed run (workers=%d, budget=%d) diverges from buffered:\n%s",
			pt.Workers, pt.MaxBufferedRows, tableDiff(res.Table, ref.Table))
	}
	if len(parts) > 0 {
		assembled := parts[0]
		for _, p := range parts[1:] {
			assembled, err = assembled.Concat(p, false)
			if err != nil {
				return fmt.Errorf("reassembling chunks: %w", err)
			}
		}
		if !assembled.Equal(ref.Table) {
			return fmt.Errorf("reassembled chunk stream (workers=%d) diverges from buffered:\n%s",
				pt.Workers, tableDiff(assembled, ref.Table))
		}
	}
	return nil
}

// MatrixEligible reports whether matrix mode applies: standard cases that
// execute successfully. Lock and cache kinds have their own protocol;
// degraded and error cases exercise failure paths the stream replays
// identically anyway.
func MatrixEligible(c *Case) bool {
	return c.Kind == "" && c.ExpectError == "" && c.DryRunError == "" && c.BudgetBytes == 0
}
