package wire

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/plan"
	"datachat/internal/skills"
)

func sampleTable(t *testing.T) *dataset.Table {
	t.Helper()
	return dataset.MustNewTable("mixed",
		dataset.IntColumn("id", []int64{1, 2, 3, 1 << 60}, []bool{false, false, true, false}),
		dataset.FloatColumn("score", []float64{1.5, -2.25, 0, 9e15}, []bool{false, false, true, false}),
		dataset.StringColumn("tag", []string{"a", "", "c", "d"}, []bool{false, true, false, false}),
		dataset.BoolColumn("ok", []bool{true, false, true, false}, nil),
		dataset.TimeColumn("at", []time.Time{
			time.Date(2023, 6, 1, 12, 0, 0, 0, time.UTC),
			time.Date(2024, 1, 2, 3, 4, 5, 600700800, time.UTC),
			{},
			time.Date(2025, 12, 31, 23, 59, 59, 0, time.UTC),
		}, []bool{false, false, true, false}),
	)
}

// TestTableRoundTrip: encode → JSON → DecodeJSON → Decode reproduces the
// table exactly, including nulls, times, and int64s beyond 2^53.
func TestTableRoundTrip(t *testing.T) {
	orig := sampleTable(t)
	w := EncodeTable(orig, 0, 0)
	if w.TotalRows != 4 || w.Offset != 0 || w.NextOffset != -1 {
		t.Fatalf("page header = %d/%d/%d, want 4/0/-1", w.TotalRows, w.Offset, w.NextOffset)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := DecodeJSON(bytes.NewReader(data), &got); err != nil {
		t.Fatal(err)
	}
	back, err := got.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(orig) {
		t.Fatalf("round trip changed the table:\norig:\n%v\ngot:\n%v", orig, back)
	}
}

// TestTablePagination: offset/limit slice the rows and set NextOffset.
func TestTablePagination(t *testing.T) {
	orig := sampleTable(t)
	w := EncodeTable(orig, 1, 2)
	if len(w.Rows) != 2 || w.Offset != 1 || w.NextOffset != 3 || w.TotalRows != 4 {
		t.Fatalf("page = rows:%d offset:%d next:%d total:%d, want 2/1/3/4",
			len(w.Rows), w.Offset, w.NextOffset, w.TotalRows)
	}
	last := EncodeTable(orig, 3, 10)
	if len(last.Rows) != 1 || last.NextOffset != -1 {
		t.Fatalf("last page = rows:%d next:%d, want 1/-1", len(last.Rows), last.NextOffset)
	}
	empty := EncodeTable(orig, 99, 5)
	if len(empty.Rows) != 0 || empty.NextOffset != -1 {
		t.Fatalf("past-the-end page = rows:%d next:%d, want 0/-1", len(empty.Rows), empty.NextOffset)
	}
}

// TestTableRoundTripWithoutUseNumber: a plain json.Unmarshal (float64 cells)
// still decodes small ints correctly — the degraded path streaming consumers
// may take.
func TestTableRoundTripWithoutUseNumber(t *testing.T) {
	orig := dataset.MustNewTable("small",
		dataset.IntColumn("n", []int64{0, -5, 1 << 40}, nil),
		dataset.FloatColumn("f", []float64{0.5, 2, -7.25}, nil),
	)
	data, err := json.Marshal(EncodeTable(orig, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	back, err := got.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(orig) {
		t.Fatalf("plain-decode round trip changed the table:\n%v\n%v", orig, back)
	}
}

// TestDecodeRejectsNonIntegralFloat: on the plain-json path a fractional
// value landing in an int column is a type error, not a silent truncation.
func TestDecodeRejectsNonIntegralFloat(t *testing.T) {
	w := &Table{
		Name: "bad",
		Cols: []ColumnMeta{{Name: "n", Type: "int"}},
		Rows: [][]any{{3.9}},
	}
	if _, err := w.Decode(); err == nil || !strings.Contains(err.Error(), "non-integral") {
		t.Fatalf("Decode(3.9 in int col) = %v, want non-integral error", err)
	}
	ok := &Table{
		Name: "good",
		Cols: []ColumnMeta{{Name: "n", Type: "int"}},
		Rows: [][]any{{3.0}},
	}
	tab, err := ok.Decode()
	if err != nil {
		t.Fatalf("Decode(3.0 in int col): %v", err)
	}
	if got := tab.Columns()[0].Value(0).I; got != 3 {
		t.Fatalf("decoded value = %d, want 3", got)
	}
}

// TestEncodeResultCarriesDegradation: the §2.3 degradation marker survives
// the wire form.
func TestEncodeResultCarriesDegradation(t *testing.T) {
	res := &skills.Result{
		Table:        sampleTable(t),
		Message:      "via fallback",
		Degraded:     true,
		DegradedNote: "stale snapshot \"s1\" (age 3h)",
	}
	w := EncodeResult(res, 2)
	if !w.Degraded || w.DegradedNote != res.DegradedNote {
		t.Fatalf("degradation lost: %+v", w)
	}
	if len(w.Table.Rows) != 2 || w.Table.TotalRows != 4 {
		t.Fatalf("maxRows page = %d rows of %d", len(w.Table.Rows), w.Table.TotalRows)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := DecodeJSON(bytes.NewReader(data), &got); err != nil {
		t.Fatal(err)
	}
	if !got.Degraded || got.DegradedNote != res.DegradedNote || got.Message != "via fallback" {
		t.Fatalf("decoded result lost fields: %+v", got)
	}
}

// TestErrorPayload: the typed error round-trips and formats usefully.
func TestErrorPayload(t *testing.T) {
	e := &Error{Code: CodeBusy, Message: "session: another execution is already running", RetryAfterMs: 250}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var got Error
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	got.Status = 409
	if got.Code != CodeBusy || got.RetryAfterMs != 250 {
		t.Fatalf("error round trip: %+v", got)
	}
	if got.Error() == "" {
		t.Fatal("empty error text")
	}
}

// TestForwardCompatDecode pins the wire types' forward compatibility: a
// response or EXPLAIN report produced by a newer server may carry fields
// this client has never heard of, and decoding must tolerate them — future
// cost-model extensions (new per-node annotations, new summary fields) must
// not break older readers.
func TestForwardCompatDecode(t *testing.T) {
	respJSON := `{
		"result": {"message": "ok", "future_flag": true},
		"nodes": [1, 2],
		"cost": {
			"est_rows": 10, "est_bytes": 320, "est_scan_bytes": 4096,
			"est_latency_ms": 8, "est_dollars": 0.000020,
			"substituted": 1, "budget_bytes": 1024,
			"est_carbon_grams": 0.4
		},
		"experimental_section": {"nested": [1, 2, 3]}
	}`
	var resp RunResponse
	if err := json.Unmarshal([]byte(respJSON), &resp); err != nil {
		t.Fatalf("decoding future RunResponse: %v", err)
	}
	if resp.Cost == nil || resp.Cost.EstScanBytes != 4096 || resp.Cost.Substituted != 1 ||
		resp.Cost.BudgetBytes != 1024 {
		t.Fatalf("cost summary = %+v, want known fields preserved", resp.Cost)
	}
	if resp.Result == nil || resp.Result.Message != "ok" {
		t.Fatalf("result = %+v, want known fields preserved", resp.Result)
	}

	explainJSON := `{
		"target": "top",
		"nodes": [{
			"id": 1, "skill": "LoadTable", "output": "top",
			"cost": {"rows": 5, "bytes": 160, "scan_bytes": 4096, "confidence": 0.9},
			"substituted": true,
			"substitute_note": "scan exceeds budget",
			"hologram": {"depth": 3}
		}],
		"passes": [{"pass": "sample-substitute", "fired": true, "substituted": 1,
			"cost": {"rows": 5, "bytes": 160, "scan_bytes": 204, "latency_ns": 1,
				"dollars": 0.1, "novel_axis": 7}}],
		"cost": {"rows": 5, "bytes": 160, "scan_bytes": 204, "latency_ns": 1, "dollars": 0.1},
		"future_top_level": "yes"
	}`
	ex, err := plan.DecodeExplain([]byte(explainJSON))
	if err != nil {
		t.Fatalf("decoding future EXPLAIN JSON: %v", err)
	}
	if ex.Target != "top" || len(ex.Nodes) != 1 || !ex.Nodes[0].Substituted {
		t.Fatalf("explain = %+v, want known fields preserved", ex)
	}
	if ex.Nodes[0].Cost == nil || ex.Nodes[0].Cost.ScanBytes != 4096 {
		t.Fatalf("node cost = %+v, want scan_bytes preserved", ex.Nodes[0].Cost)
	}
	if ex.Cost == nil || ex.Cost.ScanBytes != 204 {
		t.Fatalf("plan cost = %+v, want scan_bytes preserved", ex.Cost)
	}
	if len(ex.Passes) != 1 || ex.Passes[0].Cost == nil || ex.Passes[0].Substituted != 1 {
		t.Fatalf("passes = %+v, want per-pass cost preserved", ex.Passes)
	}
}
