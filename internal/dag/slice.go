package dag

import (
	"datachat/internal/plan"
	"datachat/internal/skills"
)

// SliceReport describes what slicing removed and merged.
type SliceReport struct {
	// NodesBefore and NodesAfter are the graph sizes around slicing.
	NodesBefore, NodesAfter int
	// Pruned counts nodes removed because the artifact does not depend on
	// them; Merged counts adjacent nodes folded into one.
	Pruned, Merged int
}

// Slice reduces a graph to the recipe of one target node (§2.3, Figure 5) by
// running the plan pipeline's slicing and fusion passes: every node the
// target does not depend on is pruned, and adjacent steps that a single
// skill call can represent are merged — consecutive KeepRows become one
// AND-ed filter, consecutive LimitRows keep the minimum, and a KeepColumns
// whose projection is a subset of its predecessor's wins outright (see
// plan.FuseArgs, the single home of those rules).
func Slice(g *Graph, target NodeID) (*Graph, SliceReport, error) {
	report := SliceReport{NodesBefore: g.Len()}
	lp, err := lowerGraph(g, target)
	if err != nil {
		return nil, report, err
	}
	if err := plan.RunPasses(lp, nil, plan.SlicePass(), plan.FusePass()); err != nil {
		return nil, report, err
	}
	for _, t := range lp.Trace {
		report.Pruned += t.Pruned
		report.Merged += t.Merged
	}

	// Rebuild a fresh graph from the surviving plan nodes, remapping parent
	// IDs to new IDs. Inputs that referenced pruned/merged nodes by their
	// old generated names keep working because parent wiring is restored
	// explicitly below.
	out := NewGraph()
	idMap := map[int]NodeID{}
	for _, n := range lp.Nodes {
		inv := skills.Invocation{Skill: n.Skill, Output: n.Output, Args: n.Args}
		for _, in := range n.Inputs {
			inv.Inputs = append(inv.Inputs, in.Name)
		}
		newID := out.Add(inv)
		idMap[n.ID] = newID
		// Fix parent wiring explicitly (Add matched by output name; enforce
		// the recorded inputs instead).
		node := out.nodes[newID]
		node.Parents = node.Parents[:0]
		for _, in := range n.Inputs {
			if in.Node == plan.External {
				node.Parents = append(node.Parents, -1)
			} else {
				node.Parents = append(node.Parents, idMap[in.Node])
			}
		}
	}
	report.NodesAfter = out.Len()
	return out, report, nil
}

// IsLinear reports whether the graph is a simple chain: every node has at
// most one parent and at most one consumer. Sliced recipes for single
// artifacts typically are (Figure 5's "simple linear" result).
func IsLinear(g *Graph) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	consumerCount := map[NodeID]int{}
	for _, id := range g.order {
		n := g.nodes[id]
		realParents := 0
		for _, p := range n.Parents {
			if p >= 0 {
				realParents++
				consumerCount[p]++
			}
		}
		if realParents > 1 {
			return false
		}
	}
	for _, c := range consumerCount {
		if c > 1 {
			return false
		}
	}
	return true
}
