package wire

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"datachat/internal/dataset"
)

// FuzzWireDecodeTable feeds arbitrary bytes through the exact path a client
// response takes: DecodeJSON into the wire form, Decode into a typed table,
// re-encode. Wire input comes from the network, so every malformation —
// short rows, type/schema mismatches, numbers out of range, bogus
// timestamps — must come back as an error, never a panic.
func FuzzWireDecodeTable(f *testing.F) {
	// A well-formed page covering every column type, nulls included, is the
	// structural seed the mutator works outward from.
	tab, err := dataset.NewTable("t",
		dataset.IntColumn("i", []int64{1, -9007199254740993, 0}, []bool{false, false, true}),
		dataset.FloatColumn("f", []float64{1.5, -0.25, 0}, []bool{false, false, true}),
		dataset.StringColumn("s", []string{"a", "", "∅"}, []bool{false, false, true}),
		dataset.BoolColumn("b", []bool{true, false, false}, []bool{false, false, true}),
		dataset.TimeColumn("ts", []time.Time{time.Unix(0, 0), time.Unix(1e9, 12345), {}}, []bool{false, false, true}),
	)
	if err != nil {
		f.Fatal(err)
	}
	seed, err := json.Marshal(EncodeTable(tab, 0, 0))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	paged, err := json.Marshal(EncodeTable(tab, 1, 1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(paged)
	for _, s := range []string{
		`{}`,
		`{"name":"t","cols":[{"name":"i","type":"int"}],"rows":[[1.5]]}`,
		`{"cols":[{"name":"i","type":"int"},{"name":"s","type":"string"}],"rows":[[1]]}`,
		`{"cols":[{"name":"i","type":"int"}],"rows":[["NaN"],[null],[9999999999999999999999]]}`,
		`{"cols":[{"name":"ts","type":"time"}],"rows":[["not-a-time"]]}`,
		`{"cols":[{"name":"x","type":"wat"}],"rows":[[1]]}`,
		`{"cols":[{"name":"b","type":"bool"}],"rows":[[1],[“x”]]}`,
		`{"rows":[[1,2,3]]}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var w Table
		if err := DecodeJSON(bytes.NewReader(data), &w); err != nil {
			return
		}
		decoded, err := w.Decode()
		if err != nil || decoded == nil {
			return
		}
		// A table that decoded cleanly must survive re-encoding.
		if again := EncodeTable(decoded, 0, 0); again == nil {
			t.Fatalf("re-encoding a decoded table returned nil")
		}
	})
}
