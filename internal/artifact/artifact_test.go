package artifact

import (
	"testing"
	"time"

	"datachat/internal/recipe"
)

func testRecipe() *recipe.Recipe {
	return &recipe.Recipe{Name: "r", Steps: []recipe.Step{
		{Skill: "CountRows", Inputs: []string{"base"}, Output: "n"},
	}}
}

func save(t *testing.T, s *Store, name, owner string) *Artifact {
	t.Helper()
	a := &Artifact{Name: name, Type: TypeTable, Owner: owner, Recipe: testRecipe()}
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSaveAndGet(t *testing.T) {
	s := NewStore()
	now := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	s.SetClock(func() time.Time { return now })
	a := save(t, s, "chart1", "ann")
	if !a.CreatedAt.Equal(now) {
		t.Errorf("CreatedAt = %v", a.CreatedAt)
	}
	got, err := s.Get("Chart1", "ann") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "chart1" {
		t.Errorf("got = %s", got.Name)
	}
	if _, err := s.Get("chart1", "bob"); err == nil {
		t.Error("non-member should be denied")
	}
	if _, err := s.Get("missing", "ann"); err == nil {
		t.Error("missing artifact should error")
	}
}

func TestSaveValidation(t *testing.T) {
	s := NewStore()
	if err := s.Save(&Artifact{Name: "", Owner: "a", Recipe: testRecipe()}); err == nil {
		t.Error("empty name should fail")
	}
	if err := s.Save(&Artifact{Name: "x", Owner: "", Recipe: testRecipe()}); err == nil {
		t.Error("empty owner should fail")
	}
	if err := s.Save(&Artifact{Name: "x", Owner: "a"}); err == nil {
		t.Error("missing recipe should fail — every artifact carries one")
	}
	save(t, s, "x", "a")
	if err := s.Save(&Artifact{Name: "x", Owner: "a", Recipe: testRecipe()}); err == nil {
		t.Error("duplicate name should fail")
	}
}

func TestSharingLevels(t *testing.T) {
	s := NewStore()
	save(t, s, "a1", "ann")
	if err := s.Share("a1", "ann", "bob", ViewAccess); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a1", "bob"); err != nil {
		t.Errorf("viewer should read: %v", err)
	}
	// Viewers cannot share onwards.
	if err := s.Share("a1", "bob", "carl", ViewAccess); err == nil {
		t.Error("viewer should not share")
	}
	// Editors can share view but not edit.
	if err := s.Share("a1", "ann", "dana", EditAccess); err != nil {
		t.Fatal(err)
	}
	if err := s.Share("a1", "dana", "carl", ViewAccess); err != nil {
		t.Errorf("editor should share view: %v", err)
	}
	if err := s.Share("a1", "dana", "carl", EditAccess); err == nil {
		t.Error("editor should not grant edit")
	}
	if err := s.Share("a1", "ann", "x", OwnerAccess); err == nil {
		t.Error("cannot grant owner")
	}
	if err := s.Share("missing", "ann", "x", ViewAccess); err == nil {
		t.Error("missing artifact should error")
	}
}

func TestRevoke(t *testing.T) {
	s := NewStore()
	save(t, s, "a1", "ann")
	if err := s.Share("a1", "ann", "bob", ViewAccess); err != nil {
		t.Fatal(err)
	}
	if err := s.Revoke("a1", "bob", "ann"); err == nil {
		t.Error("non-owner should not revoke")
	}
	if err := s.Revoke("a1", "ann", "ann"); err == nil {
		t.Error("owner cannot be revoked")
	}
	if err := s.Revoke("a1", "ann", "bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a1", "bob"); err == nil {
		t.Error("revoked user should be denied")
	}
}

func TestSecretLinks(t *testing.T) {
	s := NewStore()
	save(t, s, "a1", "ann")
	secret, err := s.CreateSecretLink("a1", "ann")
	if err != nil {
		t.Fatal(err)
	}
	if len(secret) != 32 {
		t.Errorf("secret = %q", secret)
	}
	got, err := s.GetBySecret(secret)
	if err != nil || got.Name != "a1" {
		t.Errorf("GetBySecret = %v, %v", got, err)
	}
	if _, err := s.GetBySecret("bogus"); err == nil {
		t.Error("bogus secret should fail")
	}
	// Viewers cannot mint links.
	if err := s.Share("a1", "ann", "bob", ViewAccess); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateSecretLink("a1", "bob"); err == nil {
		t.Error("viewer should not create links")
	}
	if err := s.RevokeSecret(secret, "bob"); err == nil {
		t.Error("viewer should not revoke links")
	}
	if err := s.RevokeSecret(secret, "ann"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetBySecret(secret); err == nil {
		t.Error("revoked secret should fail")
	}
}

func TestRenameKeepsLinksAndPerms(t *testing.T) {
	s := NewStore()
	save(t, s, "old", "ann")
	if err := s.Share("old", "ann", "bob", ViewAccess); err != nil {
		t.Fatal(err)
	}
	secret, err := s.CreateSecretLink("old", "ann")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("old", "bob", "new"); err == nil {
		t.Error("viewer should not rename")
	}
	if err := s.Rename("old", "ann", "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("new", "bob"); err != nil {
		t.Errorf("perms lost on rename: %v", err)
	}
	got, err := s.GetBySecret(secret)
	if err != nil || got.Name != "new" {
		t.Errorf("link lost on rename: %v, %v", got, err)
	}
	save(t, s, "taken", "ann")
	if err := s.Rename("new", "ann", "taken"); err == nil {
		t.Error("rename onto existing should fail")
	}
}

func TestDelete(t *testing.T) {
	s := NewStore()
	save(t, s, "a1", "ann")
	secret, _ := s.CreateSecretLink("a1", "ann")
	if err := s.Delete("a1", "bob"); err == nil {
		t.Error("non-owner should not delete")
	}
	if err := s.Delete("a1", "ann"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a1", "ann"); err == nil {
		t.Error("deleted artifact should be gone")
	}
	if _, err := s.GetBySecret(secret); err == nil {
		t.Error("links to deleted artifacts should fail")
	}
}

func TestList(t *testing.T) {
	s := NewStore()
	save(t, s, "zeta", "ann")
	save(t, s, "alpha", "ann")
	save(t, s, "private", "bob")
	if err := s.Share("private", "bob", "ann", ViewAccess); err != nil {
		t.Fatal(err)
	}
	got := s.List("ann")
	want := []string{"alpha", "private", "zeta"}
	if len(got) != 3 {
		t.Fatalf("list = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("list = %v, want %v", got, want)
		}
	}
	if len(s.List("nobody")) != 0 {
		t.Error("stranger should see nothing")
	}
}

func TestMarkRefreshed(t *testing.T) {
	s := NewStore()
	now := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	s.SetClock(func() time.Time { return now })
	save(t, s, "a1", "ann")
	now = now.Add(time.Hour)
	if err := s.MarkRefreshed("a1"); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Get("a1", "ann")
	if !a.RefreshedAt.Equal(now) {
		t.Errorf("RefreshedAt = %v", a.RefreshedAt)
	}
	if err := s.MarkRefreshed("missing"); err == nil {
		t.Error("missing artifact should error")
	}
}
