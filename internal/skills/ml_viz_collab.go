package skills

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/ml"
	"datachat/internal/sqlengine"
	"datachat/internal/viz"
)

func visualizationSkills() []*Definition {
	return []*Definition{
		{
			Name:     "PlotChart",
			Category: DataVisualization,
			Summary:  "Plot an explicit chart over the dataset",
			Params: []ParamSpec{
				{"chart", "string", true, "chart type: line, bar, scatter, histogram, donut, violin, bubble, heatmap"},
				{"x", "column", true, "x-axis column"},
				{"y", "column", false, "y-axis / measure column"},
				{"for_each", "column", false, "one series per value of this column"},
				{"size_by", "column", false, "bubble size column"},
				{"color_by", "column", false, "mark color column"},
				{"title", "string", false, "chart title"},
				{"bins", "number", false, "histogram bin count"},
			},
			GEL: "Plot a {chart} chart with the x-axis {x}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				chartName, err := inv.Args.String("chart")
				if err != nil {
					return nil, err
				}
				chartType, err := chartTypeByName(chartName)
				if err != nil {
					return nil, err
				}
				x, err := inv.Args.String("x")
				if err != nil {
					return nil, err
				}
				spec := viz.Spec{
					Type:    chartType,
					X:       x,
					Y:       inv.Args.StringOr("y", ""),
					GroupBy: inv.Args.StringOr("for_each", ""),
					SizeBy:  inv.Args.StringOr("size_by", ""),
					ColorBy: inv.Args.StringOr("color_by", ""),
					Title:   inv.Args.StringOr("title", ""),
					Bins:    inv.Args.IntOr("bins", 0),
				}
				chart, err := viz.Build(t, spec)
				if err != nil {
					return nil, err
				}
				return &Result{Charts: []*viz.Chart{chart}, Message: "Created " + chart.Describe()}, nil
			},
		},
		{
			Name:     "Visualize",
			Category: DataVisualization,
			Summary:  "Automatically chart a KPI against grouping columns (phrase-based entry)",
			Params: []ParamSpec{
				{"kpi", "column", true, "the measure or category of interest"},
				{"by", "columns", false, "grouping columns"},
				{"filter", "expression", false, "filter phrase applied before charting"},
			},
			GEL: "Visualize {kpi} by {by}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				kpi, err := inv.Args.String("kpi")
				if err != nil {
					return nil, err
				}
				if filterStr := inv.Args.StringOr("filter", ""); filterStr != "" {
					cond, err := parseCondition(filterStr)
					if err != nil {
						return nil, err
					}
					if t, err = filterTable(t, cond); err != nil {
						return nil, err
					}
				}
				by := inv.Args.StringListOr("by")
				specs, err := viz.AutoCharts(t, kpi, by)
				if err != nil {
					return nil, err
				}
				result := &Result{}
				var lines []string
				for i, spec := range specs {
					chart, err := viz.Build(t, spec)
					if err != nil {
						return nil, err
					}
					result.Charts = append(result.Charts, chart)
					lines = append(lines, fmt.Sprintf("%d. Chart1%c (%s)", i+1, 'A'+i, chart.Describe()))
				}
				result.Message = fmt.Sprintf("Here are %d charts to visualize the data\n%s",
					len(result.Charts), strings.Join(lines, "\n"))
				return result, nil
			},
		},
	}
}

func chartTypeByName(name string) (viz.ChartType, error) {
	switch strings.ToLower(name) {
	case "bar":
		return viz.Bar, nil
	case "line":
		return viz.Line, nil
	case "scatter":
		return viz.Scatter, nil
	case "histogram":
		return viz.Histogram, nil
	case "donut", "pie":
		return viz.Donut, nil
	case "violin":
		return viz.Violin, nil
	case "bubble":
		return viz.Bubble, nil
	case "heatmap":
		return viz.Heatmap, nil
	default:
		return 0, fmt.Errorf("skills: unknown chart type %q", name)
	}
}

func mlSkills() []*Definition {
	return []*Definition{
		{
			Name:     "TrainModel",
			Category: MachineLearning,
			Summary:  "Train a model to predict a column",
			Params: []ParamSpec{
				{"target", "column", true, "column to predict"},
				{"features", "columns", false, "feature columns (defaults to all others)"},
				{"model", "string", false, "linear (default), logistic, or tree"},
				{"name", "string", false, "name to store the model under"},
				{"test_fraction", "number", false, "held-out fraction for evaluation (default 0.25)"},
			},
			GEL:      "Train a model to predict {target}",
			Volatile: true, // registers the model in session state
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				target, err := inv.Args.String("target")
				if err != nil {
					return nil, err
				}
				features := inv.Args.StringListOr("features")
				if len(features) == 0 {
					for _, c := range t.Columns() {
						if !strings.EqualFold(c.Name(), target) {
							features = append(features, c.Name())
						}
					}
				}
				matrix, err := ml.BuildMatrix(t, features, target)
				if err != nil {
					return nil, err
				}
				testFrac := inv.Args.FloatOr("test_fraction", 0.25)
				train, test := matrix.Split(testFrac, ctx.Seed)
				kind := strings.ToLower(inv.Args.StringOr("model", "linear"))
				var model ml.Model
				switch kind {
				case "linear":
					model, err = ml.TrainLinear(train, 0)
					if err != nil {
						// Collinearity rescue, as the UI does silently.
						model, err = ml.TrainLinear(train, 1e-6)
					}
				case "ridge":
					model, err = ml.TrainLinear(train, 1.0)
				case "logistic":
					model, err = ml.TrainLogistic(train, 0.5, 300)
				case "tree":
					model, err = ml.TrainTree(train, 6, 2)
				default:
					return nil, fmt.Errorf("skills: unknown model kind %q", kind)
				}
				if err != nil {
					return nil, err
				}
				modelName := inv.Args.StringOr("name", "Predict_"+target)
				ctx.PutModel(modelName, model)
				metrics := evalMetrics(model, test)
				msg := fmt.Sprintf("Trained %s model %q on %d rows (%d held out). %s",
					model.Kind(), modelName, len(train.Rows), len(test.Rows), model.Explain())
				return &Result{Table: metrics, Model: model, Message: msg}, nil
			},
		},
		{
			Name:     "PredictWithModel",
			Category: MachineLearning,
			Summary:  "Apply a trained model, adding a prediction column",
			Params: []ParamSpec{
				{"model", "string", true, "trained model name"},
				{"features", "columns", true, "feature columns, in training order"},
				{"name", "string", false, "prediction column name (default prediction)"},
			},
			GEL:      "Predict with the model {model}",
			Volatile: true, // depends on the session's trained-model state
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				modelName, err := inv.Args.String("model")
				if err != nil {
					return nil, err
				}
				model, ok := ctx.Model(modelName)
				if !ok {
					return nil, fmt.Errorf("skills: no trained model named %q", modelName)
				}
				features, err := inv.Args.StringList("features")
				if err != nil {
					return nil, err
				}
				matrix, err := ml.BuildMatrix(t, features, "")
				if err != nil {
					return nil, err
				}
				preds := model.Predict(matrix.Rows)
				col := dataset.NewColumn(inv.Args.StringOr("name", "prediction"), dataset.TypeFloat)
				predByRow := map[int]float64{}
				for i, row := range matrix.Kept {
					predByRow[row] = preds[i]
				}
				for r := 0; r < t.NumRows(); r++ {
					if p, ok := predByRow[r]; ok {
						col.Append(dataset.Float(p))
					} else {
						col.Append(dataset.Null)
					}
				}
				out, err := t.WithColumn(col)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
		},
		{
			Name:     "PredictTimeSeries",
			Category: MachineLearning,
			Summary:  "Forecast the next values of a measure over a time column",
			Params: []ParamSpec{
				{"measure", "column", true, "numeric column to forecast"},
				{"time", "column", true, "time or ordering column"},
				{"steps", "number", true, "number of future values to predict"},
				{"period", "number", false, "seasonal period in steps (0 = none)"},
			},
			GEL: "Predict time series with measure columns {measure} for the next {steps} values of {time}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				return applyPredictTimeSeries(t, inv.Args)
			},
		},
		{
			Name:     "ClusterRows",
			Category: MachineLearning,
			Summary:  "Cluster rows with k-means, adding a cluster column",
			Params: []ParamSpec{
				{"columns", "columns", true, "feature columns"},
				{"k", "number", true, "number of clusters"},
			},
			GEL: "Cluster the rows into {k} groups using {columns}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				cols, err := inv.Args.StringList("columns")
				if err != nil {
					return nil, err
				}
				k, err := inv.Args.Int("k")
				if err != nil {
					return nil, err
				}
				matrix, err := ml.BuildMatrix(t, cols, "")
				if err != nil {
					return nil, err
				}
				model, err := ml.TrainKMeans(matrix, k, ctx.Seed, 100)
				if err != nil {
					return nil, err
				}
				assignments := model.Predict(matrix.Rows)
				col := dataset.NewColumn("cluster", dataset.TypeInt)
				byRow := map[int]int64{}
				for i, row := range matrix.Kept {
					byRow[row] = int64(assignments[i])
				}
				for r := 0; r < t.NumRows(); r++ {
					if c, ok := byRow[r]; ok {
						col.Append(dataset.Int(c))
					} else {
						col.Append(dataset.Null)
					}
				}
				out, err := t.WithColumn(col)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out, Model: model, Message: model.Explain()}, nil
			},
		},
		{
			Name:     "DetectOutliers",
			Category: MachineLearning,
			Summary:  "Flag anomalous values in a numeric column",
			Params: []ParamSpec{
				{"column", "column", true, "numeric column to inspect"},
				{"method", "string", false, "zscore (default), iqr, or model"},
				{"threshold", "number", false, "method-specific threshold"},
			},
			GEL: "Detect outliers in {column}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				colName, err := inv.Args.String("column")
				if err != nil {
					return nil, err
				}
				c, err := t.Column(colName)
				if err != nil {
					return nil, err
				}
				var method ml.OutlierMethod
				switch strings.ToLower(inv.Args.StringOr("method", "zscore")) {
				case "zscore":
					method = ml.ZScore
				case "iqr":
					method = ml.IQR
				case "model", "model-residual":
					method = ml.ModelResidual
				default:
					return nil, fmt.Errorf("skills: unknown outlier method %q", inv.Args.StringOr("method", ""))
				}
				series := make([]float64, c.Len())
				vals, valid := c.Floats()
				for i := range series {
					if valid[i] {
						series[i] = vals[i]
					} else {
						series[i] = nan()
					}
				}
				report, err := ml.DetectOutliers(series, method, inv.Args.FloatOr("threshold", 0))
				if err != nil {
					return nil, err
				}
				flagged := map[int]bool{}
				for _, i := range report.Indexes {
					flagged[i] = true
				}
				col := dataset.NewColumn("is_outlier", dataset.TypeBool)
				for r := 0; r < t.NumRows(); r++ {
					col.Append(dataset.Bool(flagged[r]))
				}
				out, err := t.WithColumn(col)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out,
					Message: fmt.Sprintf("Flagged %d of %d rows as outliers using the %s method", len(report.Indexes), t.NumRows(), report.Method)}, nil
			},
		},
		{
			Name:     "EvaluateModel",
			Category: MachineLearning,
			Summary:  "Score a trained model against a labeled dataset",
			Params: []ParamSpec{
				{"model", "string", true, "trained model name"},
				{"target", "column", true, "ground-truth column"},
				{"features", "columns", true, "feature columns, in training order"},
			},
			GEL:      "Evaluate the model {model} against {target}",
			Volatile: true, // depends on the session's trained-model state
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				modelName, err := inv.Args.String("model")
				if err != nil {
					return nil, err
				}
				model, ok := ctx.Model(modelName)
				if !ok {
					return nil, fmt.Errorf("skills: no trained model named %q", modelName)
				}
				target, err := inv.Args.String("target")
				if err != nil {
					return nil, err
				}
				features, err := inv.Args.StringList("features")
				if err != nil {
					return nil, err
				}
				matrix, err := ml.BuildMatrix(t, features, target)
				if err != nil {
					return nil, err
				}
				return &Result{Table: evalMetrics(model, matrix)}, nil
			},
		},
		{
			Name:     "ExplainModel",
			Category: MachineLearning,
			Summary:  "Explain what a trained model learned, in plain language",
			Params: []ParamSpec{
				{"model", "string", true, "trained model name"},
			},
			GEL:      "Explain the model {model}",
			Volatile: true, // depends on the session's trained-model state
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				modelName, err := inv.Args.String("model")
				if err != nil {
					return nil, err
				}
				model, ok := ctx.Model(modelName)
				if !ok {
					return nil, fmt.Errorf("skills: no trained model named %q", modelName)
				}
				return &Result{Message: model.Explain()}, nil
			},
		},
	}
}

func nan() float64 {
	var zero float64
	return 0 / zero
}

func evalMetrics(model ml.Model, matrix *ml.Matrix) *dataset.Table {
	names := []string{"rows"}
	values := []float64{float64(len(matrix.Rows))}
	if len(matrix.Rows) > 0 && len(matrix.Target) == len(matrix.Rows) {
		preds := model.Predict(matrix.Rows)
		names = append(names, "rmse", "mae", "r2", "accuracy")
		values = append(values,
			ml.RMSE(preds, matrix.Target),
			ml.MAE(preds, matrix.Target),
			ml.R2(preds, matrix.Target),
			ml.Accuracy(preds, matrix.Target))
	}
	metricCol := dataset.NewColumn("metric", dataset.TypeString)
	valueCol := dataset.NewColumn("value", dataset.TypeFloat)
	for i, n := range names {
		metricCol.Append(dataset.Str(n))
		valueCol.Append(dataset.Float(values[i]))
	}
	return dataset.MustNewTable("metrics", metricCol, valueCol)
}

// applyPredictTimeSeries implements the Figure 2 skill: order by the time
// column, fit trend+seasonality, and emit a table of the next k time steps
// with predicted values and RecordType = "Predicted".
func applyPredictTimeSeries(t *dataset.Table, args Args) (*Result, error) {
	measure, err := args.String("measure")
	if err != nil {
		return nil, err
	}
	timeName, err := args.String("time")
	if err != nil {
		return nil, err
	}
	steps, err := args.Int("steps")
	if err != nil {
		return nil, err
	}
	if steps <= 0 {
		return nil, fmt.Errorf("skills: steps must be positive, got %d", steps)
	}
	sorted, err := t.SortBy([]string{timeName}, nil)
	if err != nil {
		return nil, err
	}
	mc, err := sorted.Column(measure)
	if err != nil {
		return nil, err
	}
	tc, err := sorted.Column(timeName)
	if err != nil {
		return nil, err
	}
	var series []float64
	var stamps []dataset.Value
	vals, valid := mc.Floats()
	for i := range vals {
		if valid[i] && !tc.IsNull(i) {
			series = append(series, vals[i])
			stamps = append(stamps, tc.Value(i))
		}
	}
	forecast, err := ml.FitForecast(series, args.IntOr("period", 0))
	if err != nil {
		return nil, err
	}
	next := forecast.Next(steps)
	// Extrapolate the time column: median spacing of the observed stamps.
	futureStamps, err := extrapolateStamps(stamps, steps)
	if err != nil {
		return nil, err
	}
	timeCol := dataset.NewColumn(tc.Name(), tc.Type())
	measureCol := dataset.NewColumn(measure, dataset.TypeFloat)
	typeCol := dataset.NewColumn("RecordType", dataset.TypeString)
	for i := 0; i < steps; i++ {
		timeCol.Append(futureStamps[i])
		measureCol.Append(dataset.Float(next[i]))
		typeCol.Append(dataset.Str("Predicted"))
	}
	out, err := dataset.NewTable("PredictedTimeSeries_"+measure, timeCol, measureCol, typeCol)
	if err != nil {
		return nil, err
	}
	return &Result{Table: out, Message: forecast.Explain()}, nil
}

func extrapolateStamps(stamps []dataset.Value, steps int) ([]dataset.Value, error) {
	if len(stamps) < 2 {
		return nil, fmt.Errorf("skills: need at least 2 time points to extrapolate")
	}
	last := stamps[len(stamps)-1]
	if last.Type == dataset.TypeTime {
		deltas := make([]time.Duration, 0, len(stamps)-1)
		for i := 1; i < len(stamps); i++ {
			deltas = append(deltas, stamps[i].T.Sub(stamps[i-1].T))
		}
		sort.Slice(deltas, func(a, b int) bool { return deltas[a] < deltas[b] })
		step := deltas[len(deltas)/2]
		// Calendar-aware stepping: monthly/quarterly/yearly spacings vary in
		// day count, so snap near-month medians to month arithmetic.
		days := step.Hours() / 24
		months := 0
		switch {
		case days >= 27 && days <= 32:
			months = 1
		case days >= 88 && days <= 93:
			months = 3
		case days >= 180 && days <= 186:
			months = 6
		case days >= 360 && days <= 371:
			months = 12
		}
		out := make([]dataset.Value, steps)
		cur := last.T
		for i := range out {
			if months > 0 {
				cur = cur.AddDate(0, months, 0)
			} else {
				cur = cur.Add(step)
			}
			out[i] = dataset.Time(cur)
		}
		return out, nil
	}
	// Numeric ordering column.
	lastF, ok := last.AsFloat()
	if !ok {
		return nil, fmt.Errorf("skills: time column must be a date or number")
	}
	prevF, _ := stamps[len(stamps)-2].AsFloat()
	step := lastF - prevF
	if step == 0 {
		step = 1
	}
	out := make([]dataset.Value, steps)
	for i := range out {
		out[i] = dataset.Float(lastF + step*float64(i+1))
	}
	return out, nil
}

func sqlSkills() []*Definition {
	return []*Definition{
		{
			Name:     "RunSQL",
			Category: SQLTasks,
			Summary:  "Run a SQL query over the session's datasets",
			Params: []ParamSpec{
				{"query", "string", true, "a SELECT statement; session datasets are tables"},
			},
			GEL:      "Run the SQL query {query}",
			Volatile: true, // the query references datasets the signature cannot see
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				query, err := inv.Args.String("query")
				if err != nil {
					return nil, err
				}
				out, err := sqlengine.Exec(ctx, query)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
		},
	}
}

func collaborationSkills() []*Definition {
	return []*Definition{
		{
			Name:     "SaveArtifact",
			Category: Collaboration,
			Summary:  "Save the current result as a named artifact with its recipe",
			Params: []ParamSpec{
				{"name", "string", true, "artifact name"},
				{"type", "string", false, "artifact type hint: table, chart, model"},
			},
			GEL:      "Save this as {name}",
			Volatile: true, // the session layer persists the artifact as a side effect
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				// The session layer intercepts this skill to persist the
				// artifact and its sliced recipe; the direct path simply
				// passes the data through.
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				name, err := inv.Args.String("name")
				if err != nil {
					return nil, err
				}
				return &Result{Table: t, Message: fmt.Sprintf("Saved artifact %q", name)}, nil
			},
		},
		{
			Name:     "ShareArtifact",
			Category: Collaboration,
			Summary:  "Share an artifact with another user or via a secret link",
			Params: []ParamSpec{
				{"name", "string", true, "artifact name"},
				{"with", "string", false, "user to share with (omit for a secret link)"},
				{"access", "string", false, "view (default) or edit"},
			},
			GEL:      "Share the artifact {name} with {with}",
			Volatile: true, // side-effecting collaboration request
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				name, err := inv.Args.String("name")
				if err != nil {
					return nil, err
				}
				return &Result{Message: fmt.Sprintf("Requested sharing of artifact %q", name)}, nil
			},
		},
		{
			Name:     "PublishToInsightsBoard",
			Category: Collaboration,
			Summary:  "Publish an artifact to an Insights Board",
			Params: []ParamSpec{
				{"artifact", "string", true, "artifact name"},
				{"board", "string", true, "insights board name"},
			},
			GEL:      "Publish {artifact} to the insights board {board}",
			Volatile: true, // side-effecting collaboration request
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				artifact, err := inv.Args.String("artifact")
				if err != nil {
					return nil, err
				}
				board, err := inv.Args.String("board")
				if err != nil {
					return nil, err
				}
				return &Result{Message: fmt.Sprintf("Requested publishing %q to board %q", artifact, board)}, nil
			},
		},
		{
			Name:     "AddComment",
			Category: Collaboration,
			Summary:  "Attach a comment to the current recipe step",
			Params: []ParamSpec{
				{"text", "string", true, "comment text"},
			},
			GEL:      "Comment: {text}",
			Volatile: true, // comments attach to the live recipe step
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				text, err := inv.Args.String("text")
				if err != nil {
					return nil, err
				}
				return &Result{Message: "Comment recorded: " + text}, nil
			},
		},
		{
			Name:     "ExportCSV",
			Category: Collaboration,
			Summary:  "Export the current dataset as CSV",
			Params: []ParamSpec{
				{"file", "string", true, "output file name (stored in the session workspace)"},
			},
			GEL:      "Export the data to {file}",
			Volatile: true, // writes into the session workspace
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				file, err := inv.Args.String("file")
				if err != nil {
					return nil, err
				}
				var buf bytes.Buffer
				if err := dataset.WriteCSV(t, &buf); err != nil {
					return nil, err
				}
				ctx.PutFile(file, buf.String())
				return &Result{Table: t, Message: fmt.Sprintf("Exported %d rows to %s", t.NumRows(), file)}, nil
			},
		},
		{
			Name:     "Define",
			Category: Collaboration,
			Summary:  "Define a semantic-layer phrase and its expansion",
			Params: []ParamSpec{
				{"phrase", "string", true, "phrase to define, e.g. 'successful purchases'"},
				{"meaning", "string", true, "expression or description it expands to"},
			},
			GEL:      "Define {phrase} as {meaning}",
			Volatile: true, // mutates the session's semantic layer
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				phrase, err := inv.Args.String("phrase")
				if err != nil {
					return nil, err
				}
				meaning, err := inv.Args.String("meaning")
				if err != nil {
					return nil, err
				}
				ctx.DefinePhrase(phrase, meaning)
				return &Result{Message: fmt.Sprintf("Defined %q as %q", phrase, meaning)}, nil
			},
		},
		{
			Name:     "ShareSession",
			Category: Collaboration,
			Summary:  "Invite another user into this session",
			Params: []ParamSpec{
				{"with", "string", true, "user to invite"},
				{"access", "string", false, "view (default) or edit"},
			},
			GEL:      "Share this session with {with}",
			Volatile: true, // side-effecting collaboration request
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				with, err := inv.Args.String("with")
				if err != nil {
					return nil, err
				}
				return &Result{Message: fmt.Sprintf("Requested sharing the session with %s", with)}, nil
			},
		},
	}
}
