package expr

import (
	"time"

	"datachat/internal/dataset"
)

// This file is the expression half of the vectorized execution engine: it
// compiles an Expr tree into a typed kernel that evaluates whole columns at
// once instead of boxing one Value per row. Compilation resolves types
// statically — every supported operator knows its operand vector types at
// compile time, so the per-row work inside a kernel is a tight typed loop
// with no interface dispatch and no allocation beyond the output vector.
//
// The compiler is deliberately partial. Any construct whose row-at-a-time
// semantics are not cheap to replicate exactly (scalar functions, CASE,
// cross-type comparisons that fall into Compare's string-render ordering,
// LIKE with a non-literal pattern, …) fails compilation, and the caller
// falls back to the row path. The row evaluator stays authoritative: a
// kernel either reproduces its results bit for bit — including SQL
// three-valued null logic, NaN comparing equal to everything under
// cmpFloat, and / by zero yielding null — or it does not exist.

// Vec is a typed vector of N values: one backing slice (chosen by Type)
// plus an optional null mask. A nil Nulls means no row is null; a vec of
// TypeNull has every row null and no backing slice at all. Vecs returned by
// column-reference kernels alias column storage and must be treated as
// read-only.
type Vec struct {
	Type  dataset.Type
	I     []int64
	F     []float64
	S     []string
	B     []bool
	T     []int64 // unix nanoseconds, as time columns store them
	Nulls []bool
	N     int
}

// NullAt reports whether row i is null.
func (v *Vec) NullAt(i int) bool {
	return v.Type == dataset.TypeNull || (v.Nulls != nil && v.Nulls[i])
}

// ValueAt boxes row i into a Value — interop with row-at-a-time code paths;
// not for use in per-row hot loops.
func (v *Vec) ValueAt(i int) dataset.Value {
	if v.NullAt(i) {
		return dataset.Null
	}
	switch v.Type {
	case dataset.TypeInt:
		return dataset.Int(v.I[i])
	case dataset.TypeFloat:
		return dataset.Float(v.F[i])
	case dataset.TypeString:
		return dataset.Str(v.S[i])
	case dataset.TypeBool:
		return dataset.Bool(v.B[i])
	case dataset.TypeTime:
		return dataset.Time(time.Unix(0, v.T[i]).UTC())
	default:
		return dataset.Null
	}
}

// Column wraps the vec into a dataset column sharing its storage. All-null
// vecs become all-null string columns, matching the row path's column
// builder, which infers string for columns that never see a value.
func (v *Vec) Column(name string) *dataset.Column {
	switch v.Type {
	case dataset.TypeInt:
		return dataset.IntColumn(name, v.I, v.Nulls)
	case dataset.TypeFloat:
		return dataset.FloatColumn(name, v.F, v.Nulls)
	case dataset.TypeString:
		return dataset.StringColumn(name, v.S, v.Nulls)
	case dataset.TypeBool:
		return dataset.BoolColumn(name, v.B, v.Nulls)
	case dataset.TypeTime:
		return dataset.TimeNanosColumn(name, v.T, v.Nulls)
	default:
		nulls := make([]bool, v.N)
		for i := range nulls {
			nulls[i] = true
		}
		return dataset.StringColumn(name, make([]string, v.N), nulls)
	}
}

// ColumnVec wraps a column's backing storage as a Vec without copying.
func ColumnVec(c *dataset.Column) (*Vec, bool) {
	n := c.Len()
	switch c.Type() {
	case dataset.TypeInt:
		vals, nulls, _ := c.Ints()
		return &Vec{Type: dataset.TypeInt, I: vals, Nulls: nulls, N: n}, true
	case dataset.TypeFloat:
		vals, nulls, _ := c.FloatVals()
		return &Vec{Type: dataset.TypeFloat, F: vals, Nulls: nulls, N: n}, true
	case dataset.TypeString:
		vals, nulls, _ := c.Strs()
		return &Vec{Type: dataset.TypeString, S: vals, Nulls: nulls, N: n}, true
	case dataset.TypeBool:
		vals, nulls, _ := c.Bools()
		return &Vec{Type: dataset.TypeBool, B: vals, Nulls: nulls, N: n}, true
	case dataset.TypeTime:
		vals, nulls, _ := c.Times()
		return &Vec{Type: dataset.TypeTime, T: vals, Nulls: nulls, N: n}, true
	case dataset.TypeNull:
		return &Vec{Type: dataset.TypeNull, N: n}, true
	}
	return nil, false
}

// SelectTrue returns the indexes of rows where the vec is truthy and
// non-null — EvalBool's predicate acceptance rule (null and false reject;
// int and float vecs are true when non-zero; string and time vecs are never
// true). limit < 0 means no cap.
func (v *Vec) SelectTrue(limit int) []int {
	if limit < 0 || limit > v.N {
		limit = v.N
	}
	sel := make([]int, 0, limit)
	nulls := v.Nulls
	switch v.Type {
	case dataset.TypeBool:
		for i := 0; i < v.N && len(sel) < limit; i++ {
			if (nulls == nil || !nulls[i]) && v.B[i] {
				sel = append(sel, i)
			}
		}
	case dataset.TypeInt:
		for i := 0; i < v.N && len(sel) < limit; i++ {
			if (nulls == nil || !nulls[i]) && v.I[i] != 0 {
				sel = append(sel, i)
			}
		}
	case dataset.TypeFloat:
		for i := 0; i < v.N && len(sel) < limit; i++ {
			if (nulls == nil || !nulls[i]) && v.F[i] != 0 {
				sel = append(sel, i)
			}
		}
	}
	return sel
}

// floats returns the vec's values widened to float64, copying for int vecs.
// Only valid on numeric vecs.
func (v *Vec) floats() []float64 {
	if v.Type == dataset.TypeFloat {
		return v.F
	}
	out := make([]float64, v.N)
	for i, x := range v.I {
		out[i] = float64(x)
	}
	return out
}

// ColumnBinder resolves a column reference to its backing column. The
// sqlengine implements it over its relation representation; any other
// columnar source can too.
type ColumnBinder interface {
	BindColumn(name string) (*dataset.Column, error)
}

// Kernel evaluates a compiled expression over all bound rows at once.
type Kernel func() (*Vec, error)

// Compile compiles e into a kernel over the n rows reachable through b.
// ok is false when e uses a construct the vectorizer does not support;
// callers must then fall back to row-at-a-time Eval.
func Compile(e Expr, b ColumnBinder, n int) (Kernel, bool) {
	k, _, ok := compileVec(e, b, n)
	return k, ok
}

func compileVec(e Expr, b ColumnBinder, n int) (Kernel, dataset.Type, bool) {
	switch node := e.(type) {
	case *Literal:
		return compileLiteral(node.Value, n)
	case *Col:
		c, err := b.BindColumn(node.Name)
		if err != nil || c.Len() != n {
			return nil, 0, false
		}
		v, ok := ColumnVec(c)
		if !ok {
			return nil, 0, false
		}
		return func() (*Vec, error) { return v, nil }, v.Type, true
	case *Binary:
		return compileBinary(node, b, n)
	case *Unary:
		return compileUnary(node, b, n)
	case *IsNull:
		return compileIsNull(node, b, n)
	case *In:
		return compileIn(node, b, n)
	case *Between:
		return compileBetween(node, b, n)
	}
	return nil, 0, false
}

func constNull(n int) Kernel {
	return func() (*Vec, error) { return &Vec{Type: dataset.TypeNull, N: n}, nil }
}

func compileLiteral(v dataset.Value, n int) (Kernel, dataset.Type, bool) {
	// Broadcast once at compile time: the vec is read-only downstream
	// (kernels never mutate operand storage), so every evaluation can
	// return the same instance.
	var vec *Vec
	switch v.Type {
	case dataset.TypeNull:
		return constNull(n), dataset.TypeNull, true
	case dataset.TypeInt:
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = v.I
		}
		vec = &Vec{Type: dataset.TypeInt, I: vals, N: n}
	case dataset.TypeFloat:
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = v.F
		}
		vec = &Vec{Type: dataset.TypeFloat, F: vals, N: n}
	case dataset.TypeString:
		vals := make([]string, n)
		for i := range vals {
			vals[i] = v.S
		}
		vec = &Vec{Type: dataset.TypeString, S: vals, N: n}
	case dataset.TypeBool:
		vals := make([]bool, n)
		for i := range vals {
			vals[i] = v.B
		}
		vec = &Vec{Type: dataset.TypeBool, B: vals, N: n}
	case dataset.TypeTime:
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = v.T.UnixNano()
		}
		vec = &Vec{Type: dataset.TypeTime, T: vals, N: n}
	default:
		return nil, 0, false
	}
	return func() (*Vec, error) { return vec, nil }, vec.Type, true
}

func compileBinary(node *Binary, b ColumnBinder, n int) (Kernel, dataset.Type, bool) {
	lk, lt, lok := compileVec(node.Left, b, n)
	if !lok {
		return nil, 0, false
	}
	// Scalar fast paths: a literal right operand folds into the loop as a
	// constant, skipping both its broadcast and the pair evaluation.
	if lit, isLit := node.Right.(*Literal); isLit && !lit.Value.IsNull() {
		switch op := node.Op; {
		case op <= OpMod:
			if k, t, ok := compileArithScalar(op, lk, lt, lit.Value, n); ok {
				return k, t, true
			}
		case op >= OpEq && op <= OpGe:
			if k, t, ok := compileCompareScalar(op, lk, lt, lit.Value, n); ok {
				return k, t, true
			}
		}
	}
	rk, rt, rok := compileVec(node.Right, b, n)
	if !rok {
		return nil, 0, false
	}
	// Mirror case: a literal LEFT operand of a comparison flips onto the
	// right. (Non-commutative arithmetic keeps the broadcast path.)
	if lit, isLit := node.Left.(*Literal); isLit && !lit.Value.IsNull() {
		if op := node.Op; op >= OpEq && op <= OpGe {
			if k, t, ok := compileCompareScalar(flipCmp(op), rk, rt, lit.Value, n); ok {
				return k, t, true
			}
		}
	}
	switch op := node.Op; {
	case op == OpAnd || op == OpOr:
		boolish := func(t dataset.Type) bool { return t == dataset.TypeBool || t == dataset.TypeNull }
		if !boolish(lt) || !boolish(rt) {
			return nil, 0, false
		}
		return logicalKernel(op, lk, rk, n), dataset.TypeBool, true
	case op == OpLike:
		return compileLike(node, lk, lt, n)
	case op == OpConcat:
		if lt == dataset.TypeNull || rt == dataset.TypeNull {
			return constNull(n), dataset.TypeNull, true
		}
		if lt != dataset.TypeString || rt != dataset.TypeString {
			return nil, 0, false
		}
		return concatKernel(lk, rk, n), dataset.TypeString, true
	case op <= OpMod:
		return compileArith(op, lk, lt, rk, rt, n)
	default: // OpEq … OpGe
		return compileCompare(op, lk, lt, rk, rt, n)
	}
}

// flipCmp mirrors a comparison operator so `lit op vec` can run as
// `vec flip(op) lit`.
func flipCmp(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpGt:
		return OpLt
	case OpLe:
		return OpGe
	case OpGe:
		return OpLe
	}
	return op // Eq, Ne are symmetric
}

// compileCompareScalar compares a vector against a non-null literal. The
// type pairings mirror compileCompare exactly; anything else reports !ok
// and the caller uses the broadcast path.
func compileCompareScalar(op BinOp, k Kernel, vt dataset.Type, lit dataset.Value, n int) (Kernel, dataset.Type, bool) {
	switch {
	case vt == dataset.TypeInt && lit.Type == dataset.TypeInt:
		return cmpScalarKernel(op, k, func(v *Vec) []int64 { return v.I }, lit.I, n), dataset.TypeBool, true
	case vt.Numeric() && (lit.Type == dataset.TypeInt || lit.Type == dataset.TypeFloat):
		f, _ := lit.AsFloat()
		return cmpScalarKernel(op, k, (*Vec).floats, f, n), dataset.TypeBool, true
	case vt == dataset.TypeString && lit.Type == dataset.TypeString:
		return cmpScalarKernel(op, k, func(v *Vec) []string { return v.S }, lit.S, n), dataset.TypeBool, true
	case vt == dataset.TypeTime && lit.Type == dataset.TypeTime:
		return cmpScalarKernel(op, k, func(v *Vec) []int64 { return v.T }, lit.T.UnixNano(), n), dataset.TypeBool, true
	case vt == dataset.TypeBool && lit.Type == dataset.TypeBool:
		var c int64
		if lit.B {
			c = 1
		}
		return cmpScalarKernel(op, k, boolInts, c, n), dataset.TypeBool, true
	}
	return nil, 0, false
}

// cmpScalarKernel is cmpKernel with the right operand fixed; same derived
// operators, same NaN behavior.
func cmpScalarKernel[T int64 | float64 | string](op BinOp, k Kernel, get func(*Vec) []T, c T, n int) Kernel {
	return func() (*Vec, error) {
		v, err := k()
		if err != nil {
			return nil, err
		}
		l := get(v)
		out := make([]bool, n)
		switch op {
		case OpEq:
			for i := range out {
				out[i] = !(l[i] < c) && !(l[i] > c)
			}
		case OpNe:
			for i := range out {
				out[i] = l[i] < c || l[i] > c
			}
		case OpLt:
			for i := range out {
				out[i] = l[i] < c
			}
		case OpLe:
			for i := range out {
				out[i] = !(l[i] > c)
			}
		case OpGt:
			for i := range out {
				out[i] = l[i] > c
			}
		case OpGe:
			for i := range out {
				out[i] = !(l[i] < c)
			}
		}
		return &Vec{Type: dataset.TypeBool, B: out, Nulls: v.Nulls, N: n}, nil
	}
}

// compileArithScalar folds a non-null right-hand literal into arithmetic.
// Only vec-op-scalar is specialized; scalar-op-vec stays on the broadcast
// path since subtraction, division, and modulo are not commutative.
func compileArithScalar(op BinOp, lk Kernel, lt dataset.Type, lit dataset.Value, n int) (Kernel, dataset.Type, bool) {
	if !lt.Numeric() || (lit.Type != dataset.TypeInt && lit.Type != dataset.TypeFloat) {
		return nil, 0, false
	}
	bothInt := lt == dataset.TypeInt && lit.Type == dataset.TypeInt
	switch {
	case op == OpMod:
		if !bothInt {
			return constNull(n), dataset.TypeNull, true
		}
		if lit.I == 0 {
			// x % 0 is null for every row; evalArith agrees.
			return constNull(n), dataset.TypeNull, true
		}
		c := lit.I
		k := func() (*Vec, error) {
			v, err := lk()
			if err != nil {
				return nil, err
			}
			out := make([]int64, n)
			for i, x := range v.I {
				out[i] = x % c
			}
			return &Vec{Type: dataset.TypeInt, I: out, Nulls: v.Nulls, N: n}, nil
		}
		return k, dataset.TypeInt, true
	case bothInt && op != OpDiv:
		c := lit.I
		k := func() (*Vec, error) {
			v, err := lk()
			if err != nil {
				return nil, err
			}
			out := make([]int64, n)
			switch op {
			case OpAdd:
				for i, x := range v.I {
					out[i] = x + c
				}
			case OpSub:
				for i, x := range v.I {
					out[i] = x - c
				}
			case OpMul:
				for i, x := range v.I {
					out[i] = x * c
				}
			}
			return &Vec{Type: dataset.TypeInt, I: out, Nulls: v.Nulls, N: n}, nil
		}
		return k, dataset.TypeInt, true
	default:
		c, _ := lit.AsFloat()
		if op == OpDiv && c == 0 {
			// Division by a constant zero nulls every row, like evalArith.
			return constNull(n), dataset.TypeNull, true
		}
		k := func() (*Vec, error) {
			v, err := lk()
			if err != nil {
				return nil, err
			}
			l := v.floats()
			out := make([]float64, n)
			switch op {
			case OpAdd:
				for i, x := range l {
					out[i] = x + c
				}
			case OpSub:
				for i, x := range l {
					out[i] = x - c
				}
			case OpMul:
				for i, x := range l {
					out[i] = x * c
				}
			case OpDiv:
				for i, x := range l {
					out[i] = x / c
				}
			}
			return &Vec{Type: dataset.TypeFloat, F: out, Nulls: v.Nulls, N: n}, nil
		}
		return k, dataset.TypeFloat, true
	}
}

// logicalKernel implements three-valued AND/OR: a determining operand
// (false for AND, true for OR) wins even when the other side is null.
func logicalKernel(op BinOp, lk, rk Kernel, n int) Kernel {
	return func() (*Vec, error) {
		lv, rv, err := evalPair(lk, rk)
		if err != nil {
			return nil, err
		}
		out := make([]bool, n)
		lAll, rAll := lv.Type == dataset.TypeNull, rv.Type == dataset.TypeNull
		ln, rn := lv.Nulls, rv.Nulls
		if !lAll && !rAll && ln == nil && rn == nil {
			// Null-free fast path: plain two-valued logic.
			lb, rb := lv.B, rv.B
			if op == OpAnd {
				for i := range out {
					out[i] = lb[i] && rb[i]
				}
			} else {
				for i := range out {
					out[i] = lb[i] || rb[i]
				}
			}
			return &Vec{Type: dataset.TypeBool, B: out, N: n}, nil
		}
		var nulls []bool
		for i := 0; i < n; i++ {
			lnull := lAll || (ln != nil && ln[i])
			rnull := rAll || (rn != nil && rn[i])
			lb := !lnull && lv.B[i]
			rb := !rnull && rv.B[i]
			if op == OpAnd {
				switch {
				case (!lnull && !lb) || (!rnull && !rb):
					// determined false
				case lnull || rnull:
					nulls = markNull(nulls, n, i)
				default:
					out[i] = true
				}
			} else {
				switch {
				case lb || rb:
					out[i] = true
				case lnull || rnull:
					nulls = markNull(nulls, n, i)
				}
			}
		}
		return &Vec{Type: dataset.TypeBool, B: out, Nulls: nulls, N: n}, nil
	}
}

// markNull sets row i in a lazily allocated private mask.
func markNull(nulls []bool, n, i int) []bool {
	if nulls == nil {
		nulls = make([]bool, n)
	}
	nulls[i] = true
	return nulls
}

// setNull marks row i null, copying the mask first when it may still alias
// input storage; owned tracks whether the mask is already private.
func setNull(nulls []bool, n, i int, owned *bool) []bool {
	if !*owned {
		fresh := make([]bool, n)
		copy(fresh, nulls)
		nulls = fresh
		*owned = true
	}
	nulls[i] = true
	return nulls
}

func evalPair(lk, rk Kernel) (*Vec, *Vec, error) {
	lv, err := lk()
	if err != nil {
		return nil, nil, err
	}
	rv, err := rk()
	if err != nil {
		return nil, nil, err
	}
	return lv, rv, nil
}

// unionNulls ORs two null masks; either may be nil. The result may alias an
// input, so callers that add more nulls must go through setNull.
func unionNulls(a, b []bool) []bool {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	out := make([]bool, len(a))
	for i := range out {
		out[i] = a[i] || b[i]
	}
	return out
}

func compileLike(node *Binary, lk Kernel, lt dataset.Type, n int) (Kernel, dataset.Type, bool) {
	lit, ok := node.Right.(*Literal)
	if !ok {
		return nil, 0, false
	}
	if lt == dataset.TypeNull || lit.Value.IsNull() {
		return constNull(n), dataset.TypeNull, true
	}
	if lt != dataset.TypeString {
		return nil, 0, false
	}
	p := compileLikePattern(lit.Value.String())
	k := func() (*Vec, error) {
		lv, err := lk()
		if err != nil {
			return nil, err
		}
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			if lv.Nulls != nil && lv.Nulls[i] {
				continue
			}
			out[i] = p.match(lv.S[i])
		}
		return &Vec{Type: dataset.TypeBool, B: out, Nulls: lv.Nulls, N: n}, nil
	}
	return k, dataset.TypeBool, true
}

func concatKernel(lk, rk Kernel, n int) Kernel {
	return func() (*Vec, error) {
		lv, rv, err := evalPair(lk, rk)
		if err != nil {
			return nil, err
		}
		nulls := unionNulls(lv.Nulls, rv.Nulls)
		out := make([]string, n)
		for i := range out {
			if nulls != nil && nulls[i] {
				continue
			}
			out[i] = lv.S[i] + rv.S[i]
		}
		return &Vec{Type: dataset.TypeString, S: out, Nulls: nulls, N: n}, nil
	}
}

func compileArith(op BinOp, lk Kernel, lt dataset.Type, rk Kernel, rt dataset.Type, n int) (Kernel, dataset.Type, bool) {
	if lt == dataset.TypeNull || rt == dataset.TypeNull {
		return constNull(n), dataset.TypeNull, true
	}
	// Bool operands are excluded even though AsFloat accepts them: keeping
	// the domain to int/float keeps every result type static.
	if !lt.Numeric() || !rt.Numeric() {
		return nil, 0, false
	}
	bothInt := lt == dataset.TypeInt && rt == dataset.TypeInt
	switch {
	case op == OpMod:
		if !bothInt {
			// evalArith yields null for every non-int-int mod, whatever the values
			return constNull(n), dataset.TypeNull, true
		}
		return intModKernel(lk, rk, n), dataset.TypeInt, true
	case bothInt && op != OpDiv:
		return intArithKernel(op, lk, rk, n), dataset.TypeInt, true
	default:
		return floatArithKernel(op, lk, rk, n), dataset.TypeFloat, true
	}
}

func intArithKernel(op BinOp, lk, rk Kernel, n int) Kernel {
	return func() (*Vec, error) {
		lv, rv, err := evalPair(lk, rk)
		if err != nil {
			return nil, err
		}
		nulls := unionNulls(lv.Nulls, rv.Nulls)
		l, r := lv.I, rv.I
		out := make([]int64, n)
		switch op {
		case OpAdd:
			for i := range out {
				out[i] = l[i] + r[i]
			}
		case OpSub:
			for i := range out {
				out[i] = l[i] - r[i]
			}
		case OpMul:
			for i := range out {
				out[i] = l[i] * r[i]
			}
		}
		return &Vec{Type: dataset.TypeInt, I: out, Nulls: nulls, N: n}, nil
	}
}

func intModKernel(lk, rk Kernel, n int) Kernel {
	return func() (*Vec, error) {
		lv, rv, err := evalPair(lk, rk)
		if err != nil {
			return nil, err
		}
		nulls := unionNulls(lv.Nulls, rv.Nulls)
		owned := false
		l, r := lv.I, rv.I
		out := make([]int64, n)
		for i := range out {
			if r[i] == 0 {
				nulls = setNull(nulls, n, i, &owned)
				continue
			}
			out[i] = l[i] % r[i]
		}
		return &Vec{Type: dataset.TypeInt, I: out, Nulls: nulls, N: n}, nil
	}
}

func floatArithKernel(op BinOp, lk, rk Kernel, n int) Kernel {
	return func() (*Vec, error) {
		lv, rv, err := evalPair(lk, rk)
		if err != nil {
			return nil, err
		}
		nulls := unionNulls(lv.Nulls, rv.Nulls)
		l, r := lv.floats(), rv.floats()
		out := make([]float64, n)
		switch op {
		case OpAdd:
			for i := range out {
				out[i] = l[i] + r[i]
			}
		case OpSub:
			for i := range out {
				out[i] = l[i] - r[i]
			}
		case OpMul:
			for i := range out {
				out[i] = l[i] * r[i]
			}
		case OpDiv:
			owned := false
			for i := range out {
				if r[i] == 0 {
					nulls = setNull(nulls, n, i, &owned)
					continue
				}
				out[i] = l[i] / r[i]
			}
		}
		return &Vec{Type: dataset.TypeFloat, F: out, Nulls: nulls, N: n}, nil
	}
}

func compileCompare(op BinOp, lk Kernel, lt dataset.Type, rk Kernel, rt dataset.Type, n int) (Kernel, dataset.Type, bool) {
	if lt == dataset.TypeNull || rt == dataset.TypeNull {
		return constNull(n), dataset.TypeNull, true
	}
	switch {
	case lt == dataset.TypeInt && rt == dataset.TypeInt:
		// int64 compares must not round-trip through float64: values past
		// 2^53 would collapse. Compare uses cmpInt here, so do we.
		return cmpKernel(op, lk, rk, func(v *Vec) []int64 { return v.I }, n), dataset.TypeBool, true
	case lt.Numeric() && rt.Numeric():
		return cmpKernel(op, lk, rk, (*Vec).floats, n), dataset.TypeBool, true
	case lt == dataset.TypeString && rt == dataset.TypeString:
		return cmpKernel(op, lk, rk, func(v *Vec) []string { return v.S }, n), dataset.TypeBool, true
	case lt == dataset.TypeTime && rt == dataset.TypeTime:
		return cmpKernel(op, lk, rk, func(v *Vec) []int64 { return v.T }, n), dataset.TypeBool, true
	case lt == dataset.TypeBool && rt == dataset.TypeBool:
		return cmpKernel(op, lk, rk, boolInts, n), dataset.TypeBool, true
	default:
		// Mixed non-numeric types land in Compare's string-render ordering;
		// leave those to the row path.
		return nil, 0, false
	}
}

// boolInts widens a bool vec to int64s so bool comparisons reuse the
// ordered-compare kernels with false < true.
func boolInts(v *Vec) []int64 {
	out := make([]int64, v.N)
	for i, bit := range v.B {
		if bit {
			out[i] = 1
		}
	}
	return out
}

// cmpKernel builds a comparison kernel over any ordered element type. Every
// operator is derived from (a<b, a>b) so float semantics match cmpFloat,
// where a NaN operand makes both false and the pair compares "equal".
func cmpKernel[T int64 | float64 | string](op BinOp, lk, rk Kernel, get func(*Vec) []T, n int) Kernel {
	return func() (*Vec, error) {
		lv, rv, err := evalPair(lk, rk)
		if err != nil {
			return nil, err
		}
		nulls := unionNulls(lv.Nulls, rv.Nulls)
		l, r := get(lv), get(rv)
		out := make([]bool, n)
		switch op {
		case OpEq:
			for i := range out {
				out[i] = !(l[i] < r[i]) && !(l[i] > r[i])
			}
		case OpNe:
			for i := range out {
				out[i] = l[i] < r[i] || l[i] > r[i]
			}
		case OpLt:
			for i := range out {
				out[i] = l[i] < r[i]
			}
		case OpLe:
			for i := range out {
				out[i] = !(l[i] > r[i])
			}
		case OpGt:
			for i := range out {
				out[i] = l[i] > r[i]
			}
		case OpGe:
			for i := range out {
				out[i] = !(l[i] < r[i])
			}
		}
		return &Vec{Type: dataset.TypeBool, B: out, Nulls: nulls, N: n}, nil
	}
}

func compileUnary(node *Unary, b ColumnBinder, n int) (Kernel, dataset.Type, bool) {
	k, kt, ok := compileVec(node.Operand, b, n)
	if !ok {
		return nil, 0, false
	}
	if kt == dataset.TypeNull {
		return constNull(n), dataset.TypeNull, true
	}
	if node.Negate {
		switch kt {
		case dataset.TypeInt:
			kernel := func() (*Vec, error) {
				v, err := k()
				if err != nil {
					return nil, err
				}
				out := make([]int64, n)
				for i, x := range v.I {
					out[i] = -x
				}
				return &Vec{Type: dataset.TypeInt, I: out, Nulls: v.Nulls, N: n}, nil
			}
			return kernel, dataset.TypeInt, true
		case dataset.TypeFloat:
			kernel := func() (*Vec, error) {
				v, err := k()
				if err != nil {
					return nil, err
				}
				out := make([]float64, n)
				for i, x := range v.F {
					out[i] = -x
				}
				return &Vec{Type: dataset.TypeFloat, F: out, Nulls: v.Nulls, N: n}, nil
			}
			return kernel, dataset.TypeFloat, true
		}
		return nil, 0, false
	}
	// NOT: int/float operands would coerce through asBool; restricting to
	// bool keeps this a pure flip.
	if kt != dataset.TypeBool {
		return nil, 0, false
	}
	kernel := func() (*Vec, error) {
		v, err := k()
		if err != nil {
			return nil, err
		}
		out := make([]bool, n)
		for i, x := range v.B {
			out[i] = !x
		}
		return &Vec{Type: dataset.TypeBool, B: out, Nulls: v.Nulls, N: n}, nil
	}
	return kernel, dataset.TypeBool, true
}

func compileIsNull(node *IsNull, b ColumnBinder, n int) (Kernel, dataset.Type, bool) {
	k, _, ok := compileVec(node.Operand, b, n)
	if !ok {
		return nil, 0, false
	}
	neg := node.Negated
	kernel := func() (*Vec, error) {
		v, err := k()
		if err != nil {
			return nil, err
		}
		out := make([]bool, n)
		switch {
		case v.Type == dataset.TypeNull:
			for i := range out {
				out[i] = !neg
			}
		case v.Nulls == nil:
			for i := range out {
				out[i] = neg
			}
		default:
			for i := range out {
				out[i] = v.Nulls[i] != neg
			}
		}
		return &Vec{Type: dataset.TypeBool, B: out, N: n}, nil
	}
	return kernel, dataset.TypeBool, true
}

func compileIn(node *In, b ColumnBinder, n int) (Kernel, dataset.Type, bool) {
	k, kt, ok := compileVec(node.Operand, b, n)
	if !ok {
		return nil, 0, false
	}
	if kt == dataset.TypeNull {
		return constNull(n), dataset.TypeNull, true
	}
	sawNull := false
	var items []dataset.Value
	for _, item := range node.List {
		lit, isLit := item.(*Literal)
		if !isLit {
			return nil, 0, false
		}
		if lit.Value.IsNull() {
			sawNull = true
			continue
		}
		items = append(items, lit.Value)
	}
	neg := node.Negated
	switch kt {
	case dataset.TypeInt, dataset.TypeFloat:
		// Numeric and bool items share Equal's AsFloat comparison; string
		// or time items would match through the string-render fallback, so
		// those lists stay on the row path.
		fitems := make([]float64, 0, len(items))
		for _, it := range items {
			f, isNum := it.AsFloat()
			if !isNum {
				return nil, 0, false
			}
			fitems = append(fitems, f)
		}
		return inKernel(k, func(v *Vec) []float64 { return v.floats() }, fitems, sawNull, neg, n), dataset.TypeBool, true
	case dataset.TypeString:
		sitems := make([]string, 0, len(items))
		for _, it := range items {
			if it.Type != dataset.TypeString {
				return nil, 0, false
			}
			sitems = append(sitems, it.S)
		}
		return inKernel(k, func(v *Vec) []string { return v.S }, sitems, sawNull, neg, n), dataset.TypeBool, true
	case dataset.TypeTime:
		titems := make([]int64, 0, len(items))
		for _, it := range items {
			if it.Type != dataset.TypeTime {
				return nil, 0, false
			}
			titems = append(titems, it.T.UnixNano())
		}
		return inKernel(k, func(v *Vec) []int64 { return v.T }, titems, sawNull, neg, n), dataset.TypeBool, true
	}
	// Bool operands compare numerically against int items under Equal;
	// rather than model that, leave bool IN (...) to the row path.
	return nil, 0, false
}

// inKernel tests membership with Compare's equality (derived from < and >,
// so a NaN operand "equals" every numeric item). A null item in the list
// turns non-matches into nulls, per SQL IN.
func inKernel[T int64 | float64 | string](k Kernel, get func(*Vec) []T, items []T, sawNull, neg bool, n int) Kernel {
	return func() (*Vec, error) {
		v, err := k()
		if err != nil {
			return nil, err
		}
		vals := get(v)
		out := make([]bool, n)
		nulls := v.Nulls
		owned := false
		for i := 0; i < n; i++ {
			if v.Nulls != nil && v.Nulls[i] {
				continue
			}
			x := vals[i]
			match := false
			for _, it := range items {
				if !(x < it) && !(x > it) {
					match = true
					break
				}
			}
			switch {
			case match:
				out[i] = !neg
			case sawNull:
				nulls = setNull(nulls, n, i, &owned)
			default:
				out[i] = neg
			}
		}
		return &Vec{Type: dataset.TypeBool, B: out, Nulls: nulls, N: n}, nil
	}
}

func compileBetween(node *Between, b ColumnBinder, n int) (Kernel, dataset.Type, bool) {
	vk, vt, ok1 := compileVec(node.Operand, b, n)
	lok, lot, ok2 := compileVec(node.Lo, b, n)
	hik, hit, ok3 := compileVec(node.Hi, b, n)
	if !ok1 || !ok2 || !ok3 {
		return nil, 0, false
	}
	if vt == dataset.TypeNull || lot == dataset.TypeNull || hit == dataset.TypeNull {
		return constNull(n), dataset.TypeNull, true
	}
	neg := node.Negated
	switch {
	case vt == dataset.TypeInt && lot == dataset.TypeInt && hit == dataset.TypeInt:
		return betweenKernel(vk, lok, hik, func(v *Vec) []int64 { return v.I }, neg, n), dataset.TypeBool, true
	case vt.Numeric() && lot.Numeric() && hit.Numeric():
		return betweenKernel(vk, lok, hik, (*Vec).floats, neg, n), dataset.TypeBool, true
	case vt == dataset.TypeString && lot == dataset.TypeString && hit == dataset.TypeString:
		return betweenKernel(vk, lok, hik, func(v *Vec) []string { return v.S }, neg, n), dataset.TypeBool, true
	case vt == dataset.TypeTime && lot == dataset.TypeTime && hit == dataset.TypeTime:
		return betweenKernel(vk, lok, hik, func(v *Vec) []int64 { return v.T }, neg, n), dataset.TypeBool, true
	}
	return nil, 0, false
}

func betweenKernel[T int64 | float64 | string](vk, lok, hik Kernel, get func(*Vec) []T, neg bool, n int) Kernel {
	return func() (*Vec, error) {
		vv, err := vk()
		if err != nil {
			return nil, err
		}
		lv, err := lok()
		if err != nil {
			return nil, err
		}
		hv, err := hik()
		if err != nil {
			return nil, err
		}
		nulls := unionNulls(unionNulls(vv.Nulls, lv.Nulls), hv.Nulls)
		v, lo, hi := get(vv), get(lv), get(hv)
		out := make([]bool, n)
		for i := range out {
			in := !(v[i] < lo[i]) && !(v[i] > hi[i])
			out[i] = in != neg
		}
		return &Vec{Type: dataset.TypeBool, B: out, Nulls: nulls, N: n}, nil
	}
}
