package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"datachat/internal/board"
	"datachat/internal/client"
	"datachat/internal/cloud"
	"datachat/internal/core"
	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/recipe"
	"datachat/internal/scheduler"
	"datachat/internal/server"
	"datachat/internal/skills"
)

// The sched experiment measures what incremental refresh buys a scheduled
// recipe: the cost of a refresh should scale with the fraction of source
// tables whose content actually changed — an unchanged refresh is served
// entirely from the fingerprint-keyed cache with ZERO cloud scans — and
// background refreshes running under the background admission class should
// leave interactive latency essentially untouched. Both claims are enforced,
// not just reported: a 0%-changed refresh that scans, or an interference
// run without background admissions, fails the experiment.

// RefreshCase is one refresh of the scheduled recipe after changing a
// fraction of its source tables.
type RefreshCase struct {
	Label         string  `json:"label"` // "cold", "0%", "25%", "100%"
	FracChanged   float64 `json:"frac_changed"`
	TablesChanged int     `json:"tables_changed"`
	ElapsedMs     float64 `json:"elapsed_ms"`
	// CloudScans is the warehouse query-count delta for this refresh.
	CloudScans int64 `json:"cloud_scans"`
	// CacheHits counts sub-DAG results served from the platform cache.
	CacheHits int64 `json:"cache_hits"`
	// FPTotal/FPChanged summarize the plan fingerprint diff vs the
	// previous run.
	FPTotal   int `json:"fp_total"`
	FPChanged int `json:"fp_changed"`
}

// SchedInterferenceCase measures interactive request latency with and
// without scheduled background refreshes competing on the same server.
type SchedInterferenceCase struct {
	Mode     string `json:"mode"` // "alone" or "with-background"
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	// AdmissionP50WaitMs is the server-side median interactive admission
	// wait (bucketed upper bound).
	AdmissionP50WaitMs float64 `json:"admission_p50_wait_ms"`
	// BackgroundRuns counts scheduled refreshes completed during the cell.
	BackgroundRuns int64 `json:"background_runs"`
}

// SchedResult is the full grid for BENCH_sched.json.
type SchedResult struct {
	Tables       int           `json:"tables"`
	RowsPerTable int           `json:"rows_per_table"`
	Refresh      []RefreshCase `json:"refresh"`
	// UnchangedNodeFraction is the scheduler-wide fraction of plan
	// fingerprints that incremental refresh never re-executed.
	UnchangedNodeFraction float64                 `json:"unchanged_node_fraction"`
	Publishes             int64                   `json:"publishes"`
	Interference          []SchedInterferenceCase `json:"interference"`
}

// schedSourceTable builds one warehouse source table; seed perturbs the
// values so replacing a table changes its content fingerprint.
func schedSourceTable(name string, rows, seed int) *dataset.Table {
	ids := make([]int64, rows)
	hosts := make([]string, rows)
	vals := make([]int64, rows)
	for i := 0; i < rows; i++ {
		ids[i] = int64(i)
		hosts[i] = fmt.Sprintf("h%d", i%7)
		vals[i] = int64((i*31 + seed) % 1000)
	}
	return dataset.MustNewTable(name,
		dataset.IntColumn("mid", ids, nil),
		dataset.StringColumn("host", hosts, nil),
		dataset.IntColumn("val", vals, nil),
	)
}

// schedFanRecipe loads every source table, filters each, and concatenates —
// so each table is an independent sub-DAG the fingerprint diff can skip.
func schedFanRecipe(tables int) (*recipe.Recipe, error) {
	g := dag.NewGraph()
	var outs []string
	for i := 0; i < tables; i++ {
		tn := fmt.Sprintf("t%d", i)
		g.Add(skills.Invocation{Skill: "LoadTable",
			Args: skills.Args{"database": "wh", "table": tn}, Output: tn + "_raw"})
		g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{tn + "_raw"},
			Args: skills.Args{"condition": "val >= 500"}, Output: tn + "_hot"})
		outs = append(outs, tn+"_hot")
	}
	g.Add(skills.Invocation{Skill: "Concatenate", Inputs: outs, Output: "all_hot"})
	return recipe.FromGraph("hot-all", g)
}

// Sched runs the grid: refresh latency vs fraction of changed sources, then
// the interactive-interference cells.
func Sched(tables, rowsPerTable, clients, perClient int) (*SchedResult, error) {
	if tables <= 0 {
		tables = 4
	}
	if rowsPerTable <= 0 {
		rowsPerTable = 20_000
	}
	res := &SchedResult{Tables: tables, RowsPerTable: rowsPerTable}

	p := core.New()
	db := cloud.NewDatabase("wh", cloud.DefaultPricing, 64)
	for i := 0; i < tables; i++ {
		if err := db.CreateTable(schedSourceTable(fmt.Sprintf("t%d", i), rowsPerTable, 1)); err != nil {
			return nil, err
		}
	}
	if err := p.ConnectDatabase(db); err != nil {
		return nil, err
	}
	hub := board.NewHub()
	sched := scheduler.New(p, hub)
	rec, err := schedFanRecipe(tables)
	if err != nil {
		return nil, err
	}
	if _, err := sched.Add(scheduler.Spec{
		Name: "refresh", User: "bench", Recipe: rec,
		Every: time.Hour, Board: "bench", Tile: "hot",
	}); err != nil {
		return nil, err
	}

	ctx := context.Background()
	refresh := func(label string, frac float64) (*RefreshCase, error) {
		changed := int(frac*float64(tables) + 0.5)
		for i := 0; i < changed; i++ {
			nt := schedSourceTable(fmt.Sprintf("t%d", i), rowsPerTable, len(res.Refresh)*100+i+2)
			if err := db.ReplaceTable(nt); err != nil {
				return nil, err
			}
		}
		before := db.Meter().Queries()
		start := time.Now()
		runRec, err := sched.RunNow(ctx, "refresh")
		if err != nil {
			return nil, err
		}
		if runRec.Err != "" || runRec.Skipped {
			return nil, fmt.Errorf("sched: refresh %q did not complete: %+v", label, runRec)
		}
		return &RefreshCase{
			Label: label, FracChanged: frac, TablesChanged: changed,
			ElapsedMs:  float64(time.Since(start).Microseconds()) / 1000,
			CloudScans: int64(db.Meter().Queries() - before),
			CacheHits:  int64(runRec.Stats.CacheHits),
			FPTotal:    runRec.FPTotal, FPChanged: runRec.FPChanged,
		}, nil
	}

	cold, err := refresh("cold", 0)
	if err != nil {
		return nil, err
	}
	res.Refresh = append(res.Refresh, *cold)
	for _, cell := range []struct {
		label string
		frac  float64
	}{{"0%", 0}, {"25%", 0.25}, {"100%", 1}} {
		rc, err := refresh(cell.label, cell.frac)
		if err != nil {
			return nil, err
		}
		// The contracts the incremental path promises, enforced.
		if cell.frac == 0 && rc.CloudScans != 0 {
			return nil, fmt.Errorf("sched: unchanged refresh executed %d cloud scans", rc.CloudScans)
		}
		if cell.frac == 0 && rc.CacheHits == 0 {
			return nil, fmt.Errorf("sched: unchanged refresh hit the cache zero times")
		}
		if cell.frac == 1 && rc.FPChanged == 0 {
			return nil, fmt.Errorf("sched: fully changed refresh diffed as unchanged")
		}
		res.Refresh = append(res.Refresh, *rc)
	}
	st := sched.Stats()
	if st.NodesTotal > 0 {
		res.UnchangedNodeFraction = float64(st.NodesUnchanged) / float64(st.NodesTotal)
	}
	res.Publishes = hub.Stats().Publishes

	for _, mode := range []string{"alone", "with-background"} {
		cell, err := schedInterferenceCell(mode, clients, perClient, rowsPerTable)
		if err != nil {
			return nil, err
		}
		res.Interference = append(res.Interference, *cell)
	}
	return res, nil
}

// schedInterferenceCell boots a fresh datachatd and measures interactive
// latency, optionally with a background refresher hammering RunNow the
// whole time.
func schedInterferenceCell(mode string, clients, perClient, rowsPerTable int) (*SchedInterferenceCase, error) {
	if clients <= 0 {
		clients = 4
	}
	if perClient <= 0 {
		perClient = 25
	}
	p := core.New()
	db := cloud.NewDatabase("wh", cloud.DefaultPricing, 64)
	if err := db.CreateTable(schedSourceTable("t0", rowsPerTable, 1)); err != nil {
		return nil, err
	}
	if err := p.ConnectDatabase(db); err != nil {
		return nil, err
	}
	srv := server.New(p, server.Config{MaxInFlight: 4, MaxBackground: 1, MaxQueue: 256})
	hub := board.NewHub()
	sched := scheduler.New(p, hub)
	srv.AttachScheduler(sched, hub)
	hs := httptest.NewServer(srv)
	defer hs.Close()
	ctx := context.Background()
	c := client.New(hs.URL)
	if err := c.RegisterFile(ctx, "load.csv", serverLoadCSV(rowsPerTable)); err != nil {
		return nil, err
	}

	stop := make(chan struct{})
	var bgWG sync.WaitGroup
	if mode == "with-background" {
		g := dag.NewGraph()
		g.Add(skills.Invocation{Skill: "LoadTable",
			Args: skills.Args{"database": "wh", "table": "t0"}, Output: "raw"})
		g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"raw"},
			Args: skills.Args{"condition": "val >= 500"}, Output: "hot"})
		rec, err := recipe.FromGraph("bg", g)
		if err != nil {
			return nil, err
		}
		if _, err := sched.Add(scheduler.Spec{
			Name: "bg", User: "sched", Recipe: rec, Every: time.Hour, Board: "bg",
		}); err != nil {
			return nil, err
		}
		// Sustained background pressure: force-run back to back, flipping
		// the table between runs so half the refreshes really recompute.
		bgWG.Add(1)
		go func() {
			defer bgWG.Done()
			seed := 2
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := sched.RunNow(ctx, "bg"); err != nil {
					return
				}
				seed++
				_ = db.ReplaceTable(schedSourceTable("t0", rowsPerTable, seed))
			}
		}()
	}

	// Interactive traffic: each client on its own session, preloaded, then
	// timed aggregate requests.
	sessions := make([]string, clients)
	bases := make([]string, clients)
	for i := range sessions {
		name := fmt.Sprintf("int-%s-%d", mode, i)
		if _, err := c.CreateSession(ctx, name, "bench"); err != nil {
			return nil, err
		}
		resp, err := c.RunGEL(ctx, name, "bench", "Load data from the file load.csv", "")
		if err != nil {
			return nil, err
		}
		sessions[i] = name
		bases[i] = fmt.Sprintf("node%d", resp.Nodes[len(resp.Nodes)-1])
	}
	latencies := make([]time.Duration, 0, clients*perClient)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				t0 := time.Now()
				_, err := c.RunGEL(ctx, sessions[i], "bench",
					"Compute the sum of v for each grp", bases[i])
				if err != nil {
					errs <- fmt.Errorf("sched: interactive request (%s): %w", mode, err)
					return
				}
				mu.Lock()
				latencies = append(latencies, time.Since(t0))
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	bgWG.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	cell := &SchedInterferenceCase{
		Mode: mode, Clients: clients, Requests: len(latencies),
		P50Ms: float64(latencies[len(latencies)/2]) / float64(time.Millisecond),
		P95Ms: float64(latencies[len(latencies)*95/100]) / float64(time.Millisecond),
	}
	stats, err := c.Statsz(ctx)
	if err != nil {
		return nil, err
	}
	if stats.Admission != nil {
		cell.AdmissionP50WaitMs = stats.Admission.Interactive.P50WaitMs
	}
	if stats.Scheduler != nil {
		cell.BackgroundRuns = stats.Scheduler.Runs
	}
	if mode == "with-background" && cell.BackgroundRuns == 0 {
		return nil, fmt.Errorf("sched: interference cell ran no background refreshes")
	}
	return cell, nil
}

// Report renders the grid as the EXPERIMENTS.md table.
func (r *SchedResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scheduled refresh: cost vs fraction of changed sources (%d tables × %d rows)\n", r.Tables, r.RowsPerTable)
	b.WriteString("  refresh  frac_changed  tables_changed  elapsed(ms)  cloud_scans  cache_hits  fp_changed/total\n")
	for _, c := range r.Refresh {
		fmt.Fprintf(&b, "  %-8s %-13.2f %-15d %-12.2f %-12d %-11d %d/%d\n",
			c.Label, c.FracChanged, c.TablesChanged, c.ElapsedMs, c.CloudScans, c.CacheHits, c.FPChanged, c.FPTotal)
	}
	fmt.Fprintf(&b, "  unchanged node fraction: %.2f, board publishes: %d\n", r.UnchangedNodeFraction, r.Publishes)
	if len(r.Interference) > 0 {
		b.WriteString("Interactive latency with background refreshes competing (background class, capped in flight)\n")
		b.WriteString("  mode             clients  requests  p50(ms)  p95(ms)  admission_p50_wait(ms)  bg_runs\n")
		for _, c := range r.Interference {
			fmt.Fprintf(&b, "  %-16s %-8d %-9d %-8.2f %-8.2f %-23.2f %d\n",
				c.Mode, c.Clients, c.Requests, c.P50Ms, c.P95Ms, c.AdmissionP50WaitMs, c.BackgroundRuns)
		}
	}
	return b.String()
}

// JSON renders the result for BENCH_sched.json.
func (r *SchedResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
