package nl2code

import (
	"math"
	"sort"
	"strings"

	"datachat/internal/expr"
	"datachat/internal/semantic"
	"datachat/internal/skills"
	"datachat/internal/sqlengine"
)

// parseConditionExpr parses a condition string into an expression.
func parseConditionExpr(cond string) (expr.Expr, error) {
	return sqlengine.ParseExpr(cond)
}

// LibraryExample is one question/solution pair in the example library
// (§4.3): the solutions span analytics functions and domains so few-shot
// prompts can cover the user's intent.
type LibraryExample struct {
	// Question is the NL question.
	Question string
	// Program is the solution as skill invocations.
	Program []skills.Invocation
	// Domain names the example's source domain.
	Domain string

	// derived fields
	tokens    map[string]float64
	functions string
}

// Functions returns the example's analytics-function signature: the sorted
// set of skills its program uses.
func (e *LibraryExample) Functions() string {
	if e.functions == "" {
		set := map[string]bool{}
		for _, inv := range e.Program {
			set[inv.Skill] = true
		}
		names := make([]string, 0, len(set))
		for name := range set {
			names = append(names, name)
		}
		sort.Strings(names)
		e.functions = strings.Join(names, "+")
	}
	return e.functions
}

func (e *LibraryExample) tokenVector() map[string]float64 {
	if e.tokens == nil {
		e.tokens = vectorize(e.Question)
	}
	return e.tokens
}

func vectorize(text string) map[string]float64 {
	v := map[string]float64{}
	for _, tok := range semantic.Tokens(text) {
		v[tok]++
	}
	return v
}

func cosine(a, b map[string]float64) float64 {
	dot, na, nb := 0.0, 0.0, 0.0
	for k, av := range a {
		na += av * av
		if bv, ok := b[k]; ok {
			dot += av * bv
		}
	}
	for _, bv := range b {
		nb += bv * bv
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Library is the example repository with similarity retrieval.
type Library struct {
	examples []*LibraryExample
}

// NewLibrary builds a library.
func NewLibrary(examples []*LibraryExample) *Library {
	return &Library{examples: examples}
}

// Len returns the number of stored examples.
func (l *Library) Len() int { return len(l.examples) }

// RetrievalMode selects how examples are picked for prompts.
type RetrievalMode int

// Retrieval modes; the paper's method is SimilarDiverse (§4.3: rank by
// similarity, then select examples featuring a unique set of analytics
// functions). Random is the ablation baseline.
const (
	SimilarDiverse RetrievalMode = iota
	SimilarOnly
	Random
)

// Scored pairs an example with its similarity to the query.
type Scored struct {
	Example    *LibraryExample
	Similarity float64
}

// Retrieve returns up to k examples for the question. SimilarDiverse ranks
// by cosine similarity and greedily keeps examples whose function signature
// is new, so the prompt demonstrates a variety of compositions.
func (l *Library) Retrieve(question string, k int, mode RetrievalMode) []Scored {
	if k <= 0 || len(l.examples) == 0 {
		return nil
	}
	qv := vectorize(question)
	scored := make([]Scored, len(l.examples))
	for i, ex := range l.examples {
		scored[i] = Scored{Example: ex, Similarity: cosine(qv, ex.tokenVector())}
	}
	if mode == Random {
		// Deterministic pseudo-random: rank by a hash of question+example.
		sort.SliceStable(scored, func(a, b int) bool {
			return hashString(question+scored[a].Example.Question) <
				hashString(question+scored[b].Example.Question)
		})
		if len(scored) > k {
			scored = scored[:k]
		}
		return scored
	}
	sort.SliceStable(scored, func(a, b int) bool { return scored[a].Similarity > scored[b].Similarity })
	if mode == SimilarOnly {
		if len(scored) > k {
			scored = scored[:k]
		}
		return scored
	}
	// SimilarDiverse: first pass keeps unique function signatures.
	var out []Scored
	seenFuncs := map[string]bool{}
	for _, s := range scored {
		if len(out) >= k {
			break
		}
		sig := s.Example.Functions()
		if seenFuncs[sig] {
			continue
		}
		seenFuncs[sig] = true
		out = append(out, s)
	}
	// Fill remaining slots by raw similarity.
	if len(out) < k {
		chosen := map[*LibraryExample]bool{}
		for _, s := range out {
			chosen[s.Example] = true
		}
		for _, s := range scored {
			if len(out) >= k {
				break
			}
			if !chosen[s.Example] {
				out = append(out, s)
			}
		}
	}
	return out
}

// hashString is a small FNV-1a hash used for deterministic pseudo-random
// decisions.
func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
