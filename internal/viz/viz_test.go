package viz

import (
	"strings"
	"testing"
	"time"

	"datachat/internal/dataset"
)

func collisionsLike(t *testing.T) *dataset.Table {
	t.Helper()
	n := 60
	atFault := make([]string, n)
	ages := make([]int64, n)
	sexes := make([]string, n)
	phone := make([]string, n)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			atFault[i] = "at fault"
		} else {
			atFault[i] = "not at fault"
		}
		ages[i] = int64(18 + (i*7)%60)
		if i%2 == 0 {
			sexes[i] = "male"
		} else {
			sexes[i] = "female"
		}
		if i%5 == 0 {
			phone[i] = "in use"
		} else {
			phone[i] = "not in use"
		}
	}
	return dataset.MustNewTable("parties",
		dataset.StringColumn("at_fault", atFault, nil),
		dataset.IntColumn("party_age", ages, nil),
		dataset.StringColumn("party_sex", sexes, nil),
		dataset.StringColumn("cellphone_in_use", phone, nil),
	)
}

func TestBuildDonut(t *testing.T) {
	tbl := collisionsLike(t)
	chart, err := Build(tbl, Spec{Type: Donut, X: "at_fault"})
	if err != nil {
		t.Fatal(err)
	}
	s := chart.Series[0]
	if len(s.Labels) != 2 {
		t.Fatalf("labels = %v", s.Labels)
	}
	total := s.Y[0] + s.Y[1]
	if total != 60 {
		t.Errorf("total count = %v", total)
	}
	if !strings.Contains(chart.Describe(), "donut chart using the column at_fault") {
		t.Errorf("describe = %s", chart.Describe())
	}
}

func TestBuildBarWithMeasure(t *testing.T) {
	tbl := dataset.MustNewTable("sales",
		dataset.StringColumn("region", []string{"east", "west", "east"}, nil),
		dataset.FloatColumn("revenue", []float64{10, 20, 5}, nil),
	)
	chart, err := Build(tbl, Spec{Type: Bar, X: "region", Y: "revenue"})
	if err != nil {
		t.Fatal(err)
	}
	s := chart.Series[0]
	if s.Labels[0] != "east" || s.Y[0] != 15 {
		t.Errorf("east sum = %v", s.Y)
	}
}

func TestBuildHistogram(t *testing.T) {
	tbl := collisionsLike(t)
	chart, err := Build(tbl, Spec{Type: Histogram, X: "party_age", Bins: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := chart.Series[0]
	if len(s.Y) != 5 {
		t.Fatalf("bins = %d", len(s.Y))
	}
	total := 0.0
	for _, c := range s.Y {
		total += c
	}
	if total != 60 {
		t.Errorf("histogram total = %v", total)
	}
}

func TestBuildLineSortsAndGroups(t *testing.T) {
	d := func(day int) time.Time { return time.Date(2020, 1, day, 0, 0, 0, 0, time.UTC) }
	tbl := dataset.MustNewTable("ts",
		dataset.TimeColumn("date", []time.Time{d(3), d(1), d(2), d(1), d(2), d(3)}, nil),
		dataset.FloatColumn("v", []float64{30, 10, 20, 1, 2, 3}, nil),
		dataset.StringColumn("kind", []string{"a", "a", "a", "b", "b", "b"}, nil),
	)
	chart, err := Build(tbl, Spec{Type: Line, X: "date", Y: "v", GroupBy: "kind"})
	if err != nil {
		t.Fatal(err)
	}
	if len(chart.Series) != 2 {
		t.Fatalf("series = %d", len(chart.Series))
	}
	a := chart.Series[0]
	if a.Name != "a" || a.Y[0] != 10 || a.Y[2] != 30 {
		t.Errorf("series a not sorted by x: %v", a.Y)
	}
}

func TestBuildViolin(t *testing.T) {
	tbl := collisionsLike(t)
	chart, err := Build(tbl, Spec{Type: Violin, X: "party_age", GroupBy: "at_fault"})
	if err != nil {
		t.Fatal(err)
	}
	if len(chart.Series) != 2 {
		t.Fatalf("series = %d", len(chart.Series))
	}
	for _, s := range chart.Series {
		if len(s.Y) != 5 {
			t.Fatalf("quantiles = %v", s.Y)
		}
		if !(s.Y[0] <= s.Y[1] && s.Y[1] <= s.Y[2] && s.Y[2] <= s.Y[3] && s.Y[3] <= s.Y[4]) {
			t.Errorf("quantiles not ordered: %v", s.Y)
		}
	}
}

func TestBuildBubbleGrid(t *testing.T) {
	tbl := collisionsLike(t)
	chart, err := Build(tbl, Spec{Type: Bubble, X: "party_sex", Y: "cellphone_in_use", ColorBy: "at_fault"})
	if err != nil {
		t.Fatal(err)
	}
	if len(chart.Series) != 2 { // male, female
		t.Fatalf("series = %d", len(chart.Series))
	}
	total := 0.0
	for _, s := range chart.Series {
		for _, y := range s.Y {
			total += y
		}
	}
	if total != 60 {
		t.Errorf("grid total = %v", total)
	}
}

func TestBuildErrors(t *testing.T) {
	tbl := collisionsLike(t)
	if _, err := Build(tbl, Spec{Type: Donut, X: "missing"}); err == nil {
		t.Error("missing column should error")
	}
	if _, err := Build(tbl, Spec{Type: Histogram, X: "at_fault"}); err == nil {
		t.Error("histogram over strings should error")
	}
	if _, err := Build(tbl, Spec{Type: ChartType(99), X: "at_fault"}); err == nil {
		t.Error("unknown type should error")
	}
	if _, err := Build(tbl, Spec{Type: Line, X: "at_fault", Y: "party_sex"}); err == nil {
		t.Error("line over two string columns should error")
	}
}

func TestAutoChartsFigure1(t *testing.T) {
	// Figure 1: "Visualize at_fault by party_age, party_sex,
	// cellphone_in_use" produces 6 charts, mixing donut, violin, and bubble.
	tbl := collisionsLike(t)
	specs, err := AutoCharts(tbl, "at_fault", []string{"party_age", "party_sex", "cellphone_in_use"})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 6 {
		t.Fatalf("specs = %d, want >= 6", len(specs))
	}
	kinds := map[ChartType]int{}
	for _, s := range specs {
		kinds[s.Type]++
		if _, err := Build(tbl, s); err != nil {
			t.Errorf("auto spec %+v failed to build: %v", s, err)
		}
	}
	if kinds[Donut] == 0 {
		t.Error("expected a donut chart for the categorical KPI")
	}
	if kinds[Violin] == 0 {
		t.Error("expected a violin chart for numeric-by-categorical")
	}
	if kinds[Bubble] == 0 {
		t.Error("expected bubble charts for category pairs")
	}
}

func TestAutoChartsNumericKPI(t *testing.T) {
	tbl := dataset.MustNewTable("m",
		dataset.FloatColumn("kpi", []float64{1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5, 9.5, 10.5, 11.5, 12.5, 13.5}, nil),
		dataset.StringColumn("g", []string{"a", "b", "a", "b", "a", "b", "a", "b", "a", "b", "a", "b", "a"}, nil),
	)
	specs, err := AutoCharts(tbl, "kpi", []string{"g"})
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Type != Histogram {
		t.Errorf("numeric KPI should start with a histogram, got %v", specs[0].Type)
	}
	if specs[1].Type != Bar {
		t.Errorf("numeric KPI by category should be a bar, got %v", specs[1].Type)
	}
}

func TestAutoChartsErrors(t *testing.T) {
	tbl := collisionsLike(t)
	if _, err := AutoCharts(tbl, "missing", nil); err == nil {
		t.Error("missing KPI should error")
	}
	if _, err := AutoCharts(tbl, "at_fault", []string{"missing"}); err == nil {
		t.Error("missing group column should error")
	}
}

func TestRenderAllTypes(t *testing.T) {
	tbl := collisionsLike(t)
	specs := []Spec{
		{Type: Donut, X: "at_fault"},
		{Type: Bar, X: "party_sex"},
		{Type: Histogram, X: "party_age", Bins: 4},
		{Type: Violin, X: "party_age", GroupBy: "at_fault"},
		{Type: Bubble, X: "party_sex", Y: "cellphone_in_use"},
	}
	for _, spec := range specs {
		chart, err := Build(tbl, spec)
		if err != nil {
			t.Fatalf("build %v: %v", spec.Type, err)
		}
		out := Render(chart)
		if len(out) < 20 {
			t.Errorf("render %v too short: %q", spec.Type, out)
		}
		if !strings.Contains(out, "=") {
			t.Errorf("render %v missing title underline", spec.Type)
		}
	}
}

func TestRenderLine(t *testing.T) {
	tbl := dataset.MustNewTable("ts",
		dataset.IntColumn("x", []int64{0, 1, 2, 3}, nil),
		dataset.FloatColumn("y", []float64{0, 1, 4, 9}, nil),
		dataset.StringColumn("k", []string{"a", "a", "b", "b"}, nil),
	)
	chart, err := Build(tbl, Spec{Type: Line, X: "x", Y: "y", GroupBy: "k", Title: "squares"})
	if err != nil {
		t.Fatal(err)
	}
	out := Render(chart)
	if !strings.Contains(out, "squares") || !strings.Contains(out, "legend:") {
		t.Errorf("line render missing parts:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("line render missing series marks:\n%s", out)
	}
}

func TestChartTypeStrings(t *testing.T) {
	for ct, want := range map[ChartType]string{
		Bar: "bar", Line: "line", Donut: "donut", Violin: "violin",
		Bubble: "bubble", Heatmap: "heatmap", Histogram: "histogram", Scatter: "scatter",
	} {
		if ct.String() != want {
			t.Errorf("%d.String() = %s", int(ct), ct.String())
		}
	}
}
