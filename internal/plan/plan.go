// Package plan defines the logical-plan IR that sits between the skill DAG
// and the executor, together with an ordered pipeline of optimizing passes
// (§2.2, §2.3). A dag.Graph is lowered into a Plan, the passes rewrite it —
// dead-step elimination, adjacent-operator fusion, relational-chain
// consolidation, scan pushdown, normalization-aware fingerprinting and cache
// probing — and the executor then emits one task per surviving node or
// fragment. Every front end (GEL, pyapi, phrase, recipe replay) goes through
// the same lowering, so semantically identical pipelines share canonical
// fingerprints and therefore sub-DAG cache entries.
package plan

import (
	"fmt"

	"datachat/internal/skills"
)

// External marks an Input that names a session dataset rather than another
// plan node.
const External = -1

// Input is one input edge of a plan node: either another plan node (by ID,
// with the producer's output name) or an external session dataset.
type Input struct {
	// Node is the producing plan node's ID, or External.
	Node int `json:"node"`
	// Name is the dataset name the input resolves to at execution time.
	Name string `json:"name"`
}

// Node is one logical operator: a skill invocation with resolved inputs.
// Passes annotate it in place; the executor reads the annotations when
// emitting tasks.
type Node struct {
	// ID is the originating dag node ID (stable across passes).
	ID int `json:"id"`
	// Skill is the canonical skill name.
	Skill string `json:"skill"`
	// Args are the skill parameters. Passes that rewrite arguments replace
	// the map (copy-on-write) — the lowered graph's maps are shared.
	Args skills.Args `json:"args,omitempty"`
	// Inputs are the resolved input edges, aligned with the invocation's
	// input order.
	Inputs []Input `json:"inputs,omitempty"`
	// Output is the explicit output name ("" means the node%d default).
	Output string `json:"output,omitempty"`

	// Absorbed lists the dag node IDs the fusion pass folded into this node,
	// so consolidation stats still count every original step.
	Absorbed []int `json:"absorbed,omitempty"`
	// Mergeable, Volatile and Invalidates mirror the skill definition flags
	// (Volatile additionally propagates to descendants).
	Mergeable   bool `json:"mergeable,omitempty"`
	Volatile    bool `json:"volatile,omitempty"`
	Invalidates bool `json:"invalidates,omitempty"`
	// Fingerprint is the canonical structural fingerprint; Key is the cache
	// key derived from it plus external-input content fingerprints ("" when
	// the node cannot be cached).
	Fingerprint string `json:"fingerprint,omitempty"`
	Key         string `json:"-"`
	// Cached marks a plan-time cache hit; Pinned holds the cached result.
	Cached bool           `json:"cached,omitempty"`
	Pinned *skills.Result `json:"-"`
	// Pushdown notes which scan arguments the pushdown pass injected.
	Pushdown []string `json:"pushdown,omitempty"`
	// Aliases are extra dataset names this node's result materializes under.
	// Session-wide CSE publishes a deduplicated node's output names through
	// the surviving node so downstream references keep resolving.
	Aliases []string `json:"aliases,omitempty"`
	// Cost is the estimated cost annotation, recomputed after every pass
	// when the Env carries stats hooks (nil when costing is off).
	Cost *NodeCost `json:"cost,omitempty"`
	// Substituted marks a scan the budget pass rewrote into a block sample;
	// SubstituteNote is the human-readable degradation note the executor
	// attaches to the result (never cached, never silent).
	Substituted    bool   `json:"substituted,omitempty"`
	SubstituteNote string `json:"substitute_note,omitempty"`
}

// OutputName returns the dataset name this node materializes under. It must
// match dag's formula so plan-produced names line up with graph-produced
// names.
func (n *Node) OutputName() string {
	if n.Output != "" {
		return n.Output
	}
	return fmt.Sprintf("node%d", n.ID)
}

// Invocation reconstructs the skill invocation this node represents, with
// inputs resolved to producer output names.
func (n *Node) Invocation() skills.Invocation {
	inv := skills.Invocation{Skill: n.Skill, Output: n.Output, Args: n.Args}
	for _, in := range n.Inputs {
		inv.Inputs = append(inv.Inputs, in.Name)
	}
	return inv
}

// Fragment is one consolidated relational chain: a maximal run of mergeable
// single-input nodes folded into a single SQL task (Figure 4).
type Fragment struct {
	// Nodes are the member plan node IDs in execution order; the last one is
	// the tail whose output the fragment materializes.
	Nodes []int `json:"nodes"`
	// Base is the chain's input: an external dataset or a materialized plan
	// node outside the fragment.
	Base Input `json:"base"`
	// SQL is the flattened statement; Blocks its SELECT-block count.
	SQL    string `json:"sql"`
	Blocks int    `json:"blocks"`
	// DagNodes counts the original dag nodes the fragment covers, including
	// ones the fusion pass absorbed — the §2.2 consolidation measure.
	DagNodes int `json:"dag_nodes"`
	// EstBaseRows is the estimated row count flowing into the chain from its
	// base, annotated by the cost model; the executor sizes adaptive morsel
	// worker counts from it (0 = unknown).
	EstBaseRows int64 `json:"est_base_rows,omitempty"`

	// Builder is the compiled query, ready to execute.
	Builder *skills.QueryBuilder `json:"-"`
}

// Plan is a lowered sub-DAG plus pass annotations. Nodes stay in topological
// order through every pass.
type Plan struct {
	Nodes     []*Node     `json:"nodes"`
	Target    int         `json:"target"`
	Fragments []Fragment  `json:"fragments,omitempty"`
	Trace     []PassTrace `json:"trace,omitempty"`
	// Cost is the whole-plan estimate after the final pass (nil when the
	// Env carries no stats hooks).
	Cost *PlanCost `json:"plan_cost,omitempty"`

	byID map[int]*Node
}

// New returns an empty plan targeting the given node ID.
func New(target int) *Plan {
	return &Plan{Target: target, byID: map[int]*Node{}}
}

// Add appends a node (callers append in topological order).
func (p *Plan) Add(n *Node) {
	p.Nodes = append(p.Nodes, n)
	p.byID[n.ID] = n
}

// Node returns the node with the given ID, or nil.
func (p *Plan) Node(id int) *Node {
	if p.byID == nil {
		p.reindex()
	}
	return p.byID[id]
}

// Consumers maps each node ID to the IDs of nodes consuming its output,
// within the plan's current extent.
func (p *Plan) Consumers() map[int][]int {
	cons := map[int][]int{}
	for _, n := range p.Nodes {
		for _, in := range n.Inputs {
			if in.Node != External {
				cons[in.Node] = append(cons[in.Node], n.ID)
			}
		}
	}
	return cons
}

// keep retains only the nodes whose IDs are in the set, preserving order.
func (p *Plan) keep(ids map[int]bool) {
	out := p.Nodes[:0]
	for _, n := range p.Nodes {
		if ids[n.ID] {
			out = append(out, n)
		}
	}
	p.Nodes = out
	p.reindex()
}

// remove drops one node by ID.
func (p *Plan) remove(id int) {
	out := p.Nodes[:0]
	for _, n := range p.Nodes {
		if n.ID != id {
			out = append(out, n)
		}
	}
	p.Nodes = out
	p.reindex()
}

func (p *Plan) reindex() {
	p.byID = make(map[int]*Node, len(p.Nodes))
	for _, n := range p.Nodes {
		p.byID[n.ID] = n
	}
}

// Env supplies the pass pipeline's view of the outside world. Any field may
// be nil, in which case the passes needing it become no-ops (fusion and
// slicing run fine with an empty Env — dag.Slice relies on that).
type Env struct {
	// Lookup resolves skill definitions (fingerprint, consolidation and
	// pushdown passes).
	Lookup func(name string) (*skills.Definition, error)
	// ExtFingerprint returns the content fingerprint of an external dataset;
	// ok=false means the dataset is missing or unhashable and nodes
	// depending on it get no cache key.
	ExtFingerprint func(name string) (uint64, bool)
	// SourceFingerprint returns a content hash of the out-of-DAG source a
	// volatile node would read (a skill's Definition.SourceFingerprint).
	// Success de-volatilizes the node: the hash joins its fingerprint, so
	// the node — and its descendants — become cacheable without ever
	// serving stale results for changed source content.
	SourceFingerprint func(skill string, args skills.Args) (uint64, bool)
	// CacheGet probes the sub-DAG cache during planning. A hit pins the
	// node's result and prunes its ancestors.
	CacheGet func(key string) (*skills.Result, bool)

	// TableStats returns size/pricing estimates for a connected cloud table
	// (cost model + budget substitution). nil disables table costing.
	TableStats func(database, table string) (TableEstimate, bool)
	// DatasetStats returns (rows, approxBytes) for an external session
	// dataset. nil disables dataset costing.
	DatasetStats func(name string) (rows, bytes int64, ok bool)
	// DatasetColumns returns the column names of an external session dataset
	// (join reordering needs schemas to keep qualified predicates valid).
	DatasetColumns func(name string) ([]string, bool)
	// Observed returns measured output stats for a node fingerprint, fed
	// back from prior executions through the stats registry. Observations
	// override heuristic cardinality estimates.
	Observed func(fingerprint string) (ObservedStats, bool)
	// CostBudgetBytes caps a request's estimated cloud scan bytes; past it
	// the substitution pass degrades scans to block samples. 0 = unlimited.
	CostBudgetBytes int64
}

// Costed reports whether the env carries any stats hooks — the switch that
// turns on per-pass cost estimation.
func (e *Env) Costed() bool {
	return e != nil && (e.TableStats != nil || e.DatasetStats != nil)
}

// Pass is one rewriting step of the pipeline.
type Pass interface {
	Name() string
	Run(p *Plan, env *Env, t *PassTrace) error
}

// PassTrace records what one pass did, for EXPLAIN output and for callers
// that preserve pre-pipeline reporting (dag.SliceReport).
type PassTrace struct {
	Pass  string `json:"pass"`
	Fired bool   `json:"fired"`
	// Detail lists human-readable notes about individual rewrites.
	Detail []string `json:"detail,omitempty"`

	Pruned            int `json:"pruned,omitempty"`
	Merged            int `json:"merged,omitempty"`
	Chains            int `json:"chains,omitempty"`
	NodesConsolidated int `json:"nodes_consolidated,omitempty"`
	Pushdowns         int `json:"pushdowns,omitempty"`
	CacheHits         int `json:"cache_hits,omitempty"`
	Dedup             int `json:"dedup,omitempty"`
	Reordered         int `json:"reordered,omitempty"`
	Substituted       int `json:"substituted,omitempty"`

	// Cost snapshots the whole-plan estimate after this pass ran, so the
	// trace history doubles as a per-pass cost-delta log (nil when costing
	// is off).
	Cost *PlanCost `json:"cost,omitempty"`
}

// RunPasses applies the passes in order, appending one trace entry each.
// When the env carries stats hooks, plan costs are re-estimated after every
// pass so each trace entry snapshots the cost the pipeline had at that
// point.
func RunPasses(p *Plan, env *Env, passes ...Pass) error {
	if env == nil {
		env = &Env{}
	}
	for _, pass := range passes {
		t := PassTrace{Pass: pass.Name()}
		if err := pass.Run(p, env, &t); err != nil {
			return err
		}
		if env.Costed() {
			t.Cost = EstimateCosts(p, env)
		}
		p.Trace = append(p.Trace, t)
	}
	return nil
}
