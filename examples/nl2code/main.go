// NL2Code: the §4 / Figure 6 scenario. An English analytics request flows
// through the full pipeline — semantic-layer retrieval, example retrieval,
// prompt composition under a token budget, the (simulated) LLM generator,
// and the program checker — and the result is shown in all three dialects
// and executed.
//
//	go run ./examples/nl2code
package main

import (
	"fmt"
	"log"
	"strings"

	"datachat/internal/nl2code"
	"datachat/internal/skills"
	"datachat/internal/spider"
)

func main() {
	reg := skills.NewRegistry()
	domains := spider.Domains(1)
	var sales *spider.Domain
	for _, d := range domains {
		if d.Name == "sales" {
			sales = d
		}
	}

	// The example library (§4.3): question/solution pairs across domains.
	var examples []*nl2code.LibraryExample
	for _, ex := range spider.GenerateLibrary(domains, 99, 8) {
		examples = append(examples, &nl2code.LibraryExample{
			Question: ex.Question, Program: ex.Gold, Domain: ex.Domain,
		})
	}
	sys := nl2code.NewSystem(reg, nl2code.NewLibrary(examples))

	questions := []string{
		// The paper's §4.2 motivating example: "successful purchases" only
		// resolves through the semantic layer.
		"How many successful purchases were there?",
		"What is the average price for each region?",
		"Which 3 region have the highest total price where status is Refunded?",
	}
	for _, q := range questions {
		fmt.Printf("Q: %s\n%s\n", q, strings.Repeat("-", len(q)+3))
		resp, err := sys.Generate(nl2code.Request{
			Question: q, Tables: sales.Tables, Layer: sales.Layer,
		})
		if err != nil {
			log.Fatalf("generate: %v", err)
		}
		fmt.Printf("prompt: %d examples, %d semantic hints (budget %d tokens)\n",
			len(resp.Prompt.Examples), len(resp.Prompt.Hints), resp.Prompt.Budget)
		if len(resp.Check.Repairs) > 0 {
			fmt.Printf("checker repairs: %v\n", resp.Check.Repairs)
		}
		fmt.Println("\nPython API:")
		fmt.Println(indent(resp.Python))
		fmt.Println("GEL:")
		for _, line := range resp.GEL {
			fmt.Println("  " + line)
		}
		table, err := nl2code.Execute(reg, sales.Tables, resp.Program)
		if err != nil {
			log.Fatalf("execute: %v", err)
		}
		fmt.Println("Result:")
		fmt.Println(indent(table.String()))
		fmt.Println()
	}

	// Show the composed prompt once, for the curious.
	resp, err := sys.Generate(nl2code.Request{
		Question: questions[0], Tables: sales.Tables, Layer: sales.Layer,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== The prompt the generator saw (Figure 6, step 9) ==")
	fmt.Println(indent(resp.Prompt.Text(reg)))
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n")
}
