package client

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"datachat/internal/wire"
)

// --- Schedules ---

// CreateSchedule registers a recipe as a long-lived scheduled job.
func (c *Client) CreateSchedule(ctx context.Context, req wire.ScheduleRequest) (*wire.ScheduleInfo, error) {
	var out wire.ScheduleInfo
	if err := c.do(ctx, http.MethodPost, "/v1/schedules", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Schedules lists every job.
func (c *Client) Schedules(ctx context.Context) ([]wire.ScheduleInfo, error) {
	var out wire.SchedulesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/schedules", nil, &out); err != nil {
		return nil, err
	}
	return out.Schedules, nil
}

// Schedule fetches one job and its recent run history.
func (c *Client) Schedule(ctx context.Context, name string) (*wire.ScheduleInfo, error) {
	var out wire.ScheduleInfo
	if err := c.do(ctx, http.MethodGet, "/v1/schedules/"+url.PathEscape(name), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteSchedule removes a job; published board history stays.
func (c *Client) DeleteSchedule(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/schedules/"+url.PathEscape(name), nil, nil)
}

// RunScheduleNow force-runs a job immediately and returns the run record.
func (c *Client) RunScheduleNow(ctx context.Context, name string) (*wire.ScheduleRun, error) {
	var out wire.ScheduleRun
	if err := c.do(ctx, http.MethodPost, "/v1/schedules/"+url.PathEscape(name)+"/run", struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- Boards ---

// CreateBoard makes an insights board.
func (c *Client) CreateBoard(ctx context.Context, id, name, owner string) (*wire.BoardInfo, error) {
	var out wire.BoardInfo
	if err := c.do(ctx, http.MethodPost, "/v1/boards", wire.CreateBoardRequest{ID: id, Name: name, Owner: owner}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Boards lists every board with its tiles.
func (c *Client) Boards(ctx context.Context) ([]wire.BoardInfo, error) {
	var out wire.BoardsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/boards", nil, &out); err != nil {
		return nil, err
	}
	return out.Boards, nil
}

// Board fetches one board snapshot, inlining at most maxRows rows per tile
// (<= 0 for the server default).
func (c *Client) Board(ctx context.Context, id string, maxRows int) (*wire.BoardInfo, error) {
	path := "/v1/boards/" + url.PathEscape(id)
	if maxRows > 0 {
		path += "?max_rows=" + strconv.Itoa(maxRows)
	}
	var out wire.BoardInfo
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteBoard removes a board, ending every live subscription.
func (c *Client) DeleteBoard(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/boards/"+url.PathEscape(id), nil, nil)
}

// SubscribeOptions tune a board subscription stream.
type SubscribeOptions struct {
	// FromVersion backfills retained updates newer than this version before
	// going live (0 = everything the history ring holds).
	FromVersion uint64
	// MaxUpdates ends the stream cleanly after that many updates
	// (0 = stream until ctx is cancelled or the server drains).
	MaxUpdates int
	// MaxRows caps rows inlined per update table (0 = server default).
	MaxRows int
}

// SubscribeBoard attaches to a board's live NDJSON feed and calls fn once
// per update, backfilled history first, then live publishes, in version
// order. It rides the same stream machinery as RunStream — the terminal
// sentinel is mandatory, so a dropped connection surfaces as an explicit
// truncation error instead of a silently short stream, and server-side
// endings (drain, slow-consumer eviction, board deletion) come back as
// typed *wire.Error values. It returns the number of updates delivered.
func (c *Client) SubscribeBoard(ctx context.Context, id string, opts SubscribeOptions, fn func(ev *wire.BoardEvent) error) (int, error) {
	q := url.Values{}
	if opts.FromVersion > 0 {
		q.Set("from_version", strconv.FormatUint(opts.FromVersion, 10))
	}
	if opts.MaxUpdates > 0 {
		q.Set("max_updates", strconv.Itoa(opts.MaxUpdates))
	}
	if opts.MaxRows > 0 {
		q.Set("max_rows", strconv.Itoa(opts.MaxRows))
	}
	path := c.BaseURL + "/v1/boards/" + url.PathEscape(id) + "/subscribe"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return 0, fmt.Errorf("client: building subscribe request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, fmt.Errorf("client: subscribing to board %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return 0, decodeError(resp)
	}
	delivered := 0
	_, _, err = consumeStream(resp.Body, "board "+id, func(_ *wire.Table, rc wire.RowChunk) error {
		if rc.Board == nil {
			return fmt.Errorf("client: board stream chunk %d carries no update", rc.Offset)
		}
		delivered++
		if fn != nil {
			return fn(rc.Board)
		}
		return nil
	})
	return delivered, err
}
