package conformance

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"datachat/internal/cloud"
	"datachat/internal/core"
	"datachat/internal/dataset"
	"datachat/internal/recipe"
)

var update = flag.Bool("update", false, "rewrite the generated gen_*.case corpus goldens")

const corpusDir = "../../testdata/conformance"

func loadCorpus(t *testing.T) []*Case {
	t.Helper()
	cases, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	if len(cases) < 100 {
		t.Fatalf("corpus holds %d cases, want at least 100", len(cases))
	}
	return cases
}

// TestCorpusRoutes is the conformance gate: every case is dry-run planned
// (plan-shape asserts included), then executed through all five front ends
// and compared cell by cell; dry-run-error cases must be rejected by the
// type checker without reaching execution.
func TestCorpusRoutes(t *testing.T) {
	for _, c := range loadCorpus(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			if c.DryRunError != "" {
				_, err := DryRun(c)
				if err == nil {
					t.Fatalf("dry-run succeeded, want error containing %q", c.DryRunError)
				}
				if !strings.Contains(err.Error(), c.DryRunError) {
					t.Fatalf("dry-run error %q does not contain %q", err.Error(), c.DryRunError)
				}
				return
			}
			rep, err := DryRun(c)
			if err != nil {
				t.Fatalf("dry-run: %v", err)
			}
			if err := CheckExplain(c, rep); err != nil {
				t.Fatal(err)
			}
			if _, err := Verify(c); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCorpusMatrix re-runs the eligible cases streamed at parallelism
// {1,2,4} with a 3-row memory budget (so pipeline breakers must spill) and
// asserts both the final table and the reassembled chunk stream match the
// buffered reference. Under -short only every fourth case runs, at a
// single matrix point.
func TestCorpusMatrix(t *testing.T) {
	var eligible []*Case
	for _, c := range loadCorpus(t) {
		if MatrixEligible(c) {
			eligible = append(eligible, c)
		}
	}
	if len(eligible) == 0 {
		t.Fatal("no matrix-eligible cases in the corpus")
	}
	for i, c := range eligible {
		if testing.Short() && i%4 != 0 {
			continue
		}
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			ref, err := runRecipe(c)
			if err != nil {
				t.Fatalf("buffered reference: %v", err)
			}
			if ref.Err != nil {
				t.Fatalf("buffered reference failed: %v", ref.Err)
			}
			points := DefaultMatrix
			if testing.Short() {
				points = points[1:2] // one mid-parallelism point is enough
			}
			for _, pt := range points {
				if err := RunMatrix(c, ref, pt, t.TempDir()); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestCorpusLint keeps the checked-in case files structurally sound.
func TestCorpusLint(t *testing.T) {
	_, errs := LintDir(corpusDir)
	for _, err := range errs {
		t.Error(err)
	}
}

// TestGeneratedCorpusUpToDate regenerates the corpus in memory and compares
// it byte for byte against the checked-in gen_*.case files, so editing the
// generator without refreshing the goldens fails loudly. Run with -update
// (or `go run ./cmd/dcconform -gen`) to rewrite them.
func TestGeneratedCorpusUpToDate(t *testing.T) {
	cases, err := Generate()
	if err != nil {
		t.Fatalf("generating corpus: %v", err)
	}
	if *update {
		if err := WriteCorpus(corpusDir, cases); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %d generated cases", len(cases))
		return
	}
	want := map[string]string{}
	for _, c := range cases {
		want["gen_"+c.Name+".case"] = c.Format()
	}
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "gen_") || !strings.HasSuffix(e.Name(), ".case") {
			continue
		}
		onDisk[e.Name()] = true
		body, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		w, ok := want[e.Name()]
		switch {
		case !ok:
			t.Errorf("%s is on disk but no longer generated; refresh with -update", e.Name())
		case string(body) != w:
			t.Errorf("%s is stale; refresh with -update", e.Name())
		}
	}
	for name := range want {
		if !onDisk[name] {
			t.Errorf("%s is generated but missing on disk; refresh with -update", name)
		}
	}
}

// countingDB wraps a cloud database and counts every row-reading call, so
// the dry-run test can prove EXPLAIN never touches the data.
type countingDB struct {
	cloud.DB
	reads atomic.Int64
}

func (c *countingDB) Scan(name string) (*dataset.Table, error) {
	c.reads.Add(1)
	return c.DB.Scan(name)
}

func (c *countingDB) SampleBlocks(name string, rate float64, seed int64) (*dataset.Table, error) {
	c.reads.Add(1)
	return c.DB.SampleBlocks(name, rate, seed)
}

func (c *countingDB) Table(name string) (*dataset.Table, error) {
	c.reads.Add(1)
	return c.DB.Table(name)
}

// TestDryRunExecutesNothing pins the dry-run contract: planning a pipeline
// rooted at a cloud scan — pass pipeline, plan-shape report and all — must
// not read a single block, while really running it must.
func TestDryRunExecutesNothing(t *testing.T) {
	const eventsCSV = "eid,kind,val\n1,click,3\n2,view,5\n3,click,7\n"
	events, err := dataset.ReadCSVString("events", eventsCSV)
	if err != nil {
		t.Fatal(err)
	}
	base := cloud.NewDatabase("wh", cloud.DefaultPricing, 4)
	if err := base.CreateTable(events); err != nil {
		t.Fatal(err)
	}
	cdb := &countingDB{DB: base}
	p := core.New()
	if err := p.ConnectDatabase(cdb); err != nil {
		t.Fatal(err)
	}
	s, err := p.CreateSession(SessionName, User)
	if err != nil {
		t.Fatal(err)
	}
	c := &Case{
		Name:    "dryrun-zero-scan",
		Dialect: "gel",
		DBFixtures: []DBFixture{
			{DB: "wh", Table: "events", CSV: eventsCSV},
		},
		Body: "Load the table events from the database wh\n" +
			"Keep the rows where kind = 'click'\n" +
			"Compute the sum of val",
	}
	if err := Lower(c); err != nil {
		t.Fatal(err)
	}
	g := (&recipe.Recipe{Name: c.Name, Steps: c.Steps}).Graph()
	if _, err := s.Executor().Explain(g, g.Last()); err != nil {
		t.Fatalf("explain: %v", err)
	}
	if n := cdb.reads.Load(); n != 0 {
		t.Fatalf("EXPLAIN read the cloud table %d times, want 0", n)
	}
	// A type error must surface at plan time, again without any read.
	bad := &Case{
		Name:    "dryrun-zero-scan-bad",
		Dialect: "gel",
		DBFixtures: []DBFixture{
			{DB: "wh", Table: "events", CSV: eventsCSV},
		},
		Body: "Load the table events from the database wh\n" +
			"Keep the rows where kindd = 'click'",
		DryRunError: `unknown column "kindd"`,
	}
	if err := Lower(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := DryRun(bad); err == nil || !strings.Contains(err.Error(), bad.DryRunError) {
		t.Fatalf("dry-run of a bad column returned %v, want %q", err, bad.DryRunError)
	}
	if n := cdb.reads.Load(); n != 0 {
		t.Fatalf("dry runs read the cloud table %d times, want 0", n)
	}
	// Sanity: actually executing the same program does read, so the
	// counter is wired to the path EXPLAIN is claimed to skip.
	if _, _, err := s.RequestProgram(User, invsOf(c.Steps)...); err != nil {
		t.Fatalf("real run: %v", err)
	}
	if cdb.reads.Load() == 0 {
		t.Fatal("real execution read nothing; the counting wrapper is not in the loop")
	}
}
