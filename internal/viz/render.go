package viz

import (
	"fmt"
	"math"
	"strings"
)

// Render draws the chart as terminal text. The console uses it to show
// chart artifacts inline; tests use it to pin chart shapes.
func Render(c *Chart) string {
	switch c.Spec.Type {
	case Bar, Histogram:
		return renderBars(c)
	case Donut:
		return renderDonut(c)
	case Line, Scatter:
		return renderXY(c)
	case Violin:
		return renderViolin(c)
	case Bubble, Heatmap:
		return renderGrid(c)
	default:
		return fmt.Sprintf("(unrenderable chart type %v)", c.Spec.Type)
	}
}

const barWidth = 40

func renderBars(c *Chart) string {
	var b strings.Builder
	writeTitle(&b, c)
	for _, s := range c.Series {
		maxVal := 0.0
		for _, y := range s.Y {
			if y > maxVal {
				maxVal = y
			}
		}
		labelWidth := 0
		for _, l := range s.Labels {
			if len(l) > labelWidth {
				labelWidth = len(l)
			}
		}
		for i, label := range s.Labels {
			bar := 0
			if maxVal > 0 {
				bar = int(math.Round(s.Y[i] / maxVal * barWidth))
			}
			fmt.Fprintf(&b, "%-*s | %s %.4g\n", labelWidth, label, strings.Repeat("#", bar), s.Y[i])
		}
	}
	return b.String()
}

func renderDonut(c *Chart) string {
	var b strings.Builder
	writeTitle(&b, c)
	for _, s := range c.Series {
		total := 0.0
		for _, y := range s.Y {
			total += y
		}
		for i, label := range s.Labels {
			pct := 0.0
			if total > 0 {
				pct = s.Y[i] / total * 100
			}
			fmt.Fprintf(&b, "  %s: %.1f%% (%.4g)\n", label, pct, s.Y[i])
		}
	}
	return b.String()
}

const (
	plotWidth  = 60
	plotHeight = 16
)

var seriesMarks = []byte{'*', '+', 'o', 'x', '@', '%'}

func renderXY(c *Chart) string {
	var b strings.Builder
	writeTitle(&b, c)
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return b.String() + "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, plotHeight)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", plotWidth))
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(plotWidth-1))
			row := plotHeight - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(plotHeight-1))
			grid[row][col] = mark
		}
	}
	fmt.Fprintf(&b, "%.4g ┐\n", maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "     │%s\n", string(row))
	}
	fmt.Fprintf(&b, "%.4g ┴%s\n", minY, strings.Repeat("─", plotWidth))
	fmt.Fprintf(&b, "      %-.4g%s%.4g\n", minX, strings.Repeat(" ", plotWidth-12), maxX)
	if len(c.Series) > 1 {
		b.WriteString("legend:")
		for si, s := range c.Series {
			fmt.Fprintf(&b, " %c=%s", seriesMarks[si%len(seriesMarks)], s.Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func renderViolin(c *Chart) string {
	var b strings.Builder
	writeTitle(&b, c)
	for _, s := range c.Series {
		if len(s.Y) != 5 {
			continue
		}
		fmt.Fprintf(&b, "  %s: min %.4g ├── q1 %.4g ▓ med %.4g ▓ q3 %.4g ──┤ max %.4g\n",
			s.Name, s.Y[0], s.Y[1], s.Y[2], s.Y[3], s.Y[4])
	}
	return b.String()
}

func renderGrid(c *Chart) string {
	var b strings.Builder
	writeTitle(&b, c)
	if len(c.Series) == 0 {
		return b.String() + "(no data)\n"
	}
	maxSize := 0.0
	for _, s := range c.Series {
		for _, sz := range s.Size {
			if sz > maxSize {
				maxSize = sz
			}
		}
	}
	marks := []string{"·", "o", "O", "@"}
	colLabels := c.Series[0].Labels
	nameWidth := 0
	for _, s := range c.Series {
		if len(s.Name) > nameWidth {
			nameWidth = len(s.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s", nameWidth+1, "")
	for _, l := range colLabels {
		fmt.Fprintf(&b, " %-10.10s", l)
	}
	b.WriteByte('\n')
	for _, s := range c.Series {
		fmt.Fprintf(&b, "%-*s", nameWidth+1, s.Name)
		for i := range s.Labels {
			mark := " "
			if i < len(s.Size) && s.Size[i] > 0 && maxSize > 0 {
				level := int(s.Size[i] / maxSize * float64(len(marks)-1))
				mark = marks[level]
			}
			fmt.Fprintf(&b, " %-10s", mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func writeTitle(b *strings.Builder, c *Chart) {
	title := c.Spec.Title
	if title == "" {
		title = c.Describe()
	}
	fmt.Fprintf(b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
}
