package plan

import (
	"fmt"
	"strings"

	"datachat/internal/skills"
)

// Cost-based join reordering. The pass finds maximal left-deep chains of
// inner JoinDatasets nodes whose leaves are all external session datasets,
// and greedily re-permutes the probe sides so the cheapest (smallest
// estimated cardinality) joins run first, minimizing the estimated sum of
// intermediate result sizes. It is deliberately conservative — a rewrite
// fires only when every safety condition holds and the estimated cost
// strictly improves:
//
//   - every chain node is a two-input inner join; interior nodes have a
//     single consumer and default output names (an explicitly named
//     intermediate is observable session state whose content would change);
//   - every leaf is an external dataset with known stats and schema, leaf
//     schemas are pairwise column-disjoint, and leaf names are distinct;
//   - every ON predicate is a bare-column equality ("a = b", no
//     qualifiers): the SQL engine resolves unqualified names against the
//     joined relation, so with disjoint schemas the predicate stays valid
//     under any association of the chain. Qualified predicates pin the
//     original shape (the qualifier must name a direct input) and are left
//     alone.
//
// The top join gains a "columns" projection restoring the original output
// column order, so downstream column positions are unchanged; row order
// within the result is multiset-equivalent, as for any hash join.
//
// After a rewrite the affected subtree's fingerprints are stale, so the
// pass re-runs the strict fingerprint pass before returning.

type joinReorderPass struct{}

// JoinReorderPass returns the cost-based join-reordering pass. It requires
// cost annotations (a costed Env) plus DatasetStats/DatasetColumns hooks.
func JoinReorderPass() Pass { return joinReorderPass{} }

func (joinReorderPass) Name() string { return "join-reorder" }

// joinLeaf is one reorderable chain leaf: an external dataset with stats.
type joinLeaf struct {
	in   Input
	rows int64
	cols map[string]bool // lower-cased column names
}

// joinStep is one probe of a chain: the probe leaf, its predicate, and the
// leaf the predicate connects back to.
type joinStep struct {
	leaf  *joinLeaf
	on    string
	other *joinLeaf
}

func (joinReorderPass) Run(p *Plan, env *Env, t *PassTrace) error {
	if !env.Costed() || env.DatasetStats == nil || env.DatasetColumns == nil {
		return nil
	}
	cons := p.Consumers()
	fired := false
	for i := len(p.Nodes) - 1; i >= 0; i-- {
		top := p.Nodes[i]
		if !isInnerJoin(top) {
			continue
		}
		// Only start from a chain top: no consumer continues the left spine.
		isTop := true
		for _, cid := range cons[top.ID] {
			if c := p.Node(cid); c != nil && isInnerJoin(c) && c.Inputs[0].Node == top.ID {
				isTop = false
				break
			}
		}
		if !isTop {
			continue
		}
		if reorderChain(p, env, cons, top, t) {
			fired = true
		}
	}
	if fired {
		t.Fired = true
		// Rewired nodes (and their descendants) carry stale fingerprints
		// and cache keys; recompute them in place.
		if err := (fingerprintPass{}).Run(p, env, &PassTrace{}); err != nil {
			return err
		}
	}
	return nil
}

func isInnerJoin(n *Node) bool {
	if !strings.EqualFold(n.Skill, "JoinDatasets") || len(n.Inputs) != 2 {
		return false
	}
	kind := strings.ToLower(n.Args.StringOr("kind", "inner"))
	return kind == "inner"
}

// reorderChain walks the left spine down from top, validates the chain, and
// rewrites it when a cheaper probe order exists. Returns whether it fired.
func reorderChain(p *Plan, env *Env, cons map[int][]int, top *Node, t *PassTrace) bool {
	// Collect the spine top-down, then reverse to bottom-up order.
	var chain []*Node
	cur := top
	for {
		chain = append(chain, cur)
		leftIn := cur.Inputs[0]
		if leftIn.Node == External {
			break
		}
		left := p.Node(leftIn.Node)
		if left == nil || !isInnerJoin(left) || len(cons[left.ID]) != 1 || left.Output != "" {
			break
		}
		cur = left
	}
	for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
		chain[l], chain[r] = chain[r], chain[l]
	}
	if len(chain) < 2 || chain[0].Inputs[0].Node != External {
		return false
	}

	// Leaves: the bottom join's build side plus every probe side.
	leafInputs := []Input{chain[0].Inputs[0]}
	for _, j := range chain {
		if j.Inputs[1].Node != External {
			return false
		}
		leafInputs = append(leafInputs, j.Inputs[1])
	}
	leaves := make([]*joinLeaf, len(leafInputs))
	seenName := map[string]bool{}
	allCols := map[string]bool{}
	var origCols []string
	for i, in := range leafInputs {
		name := strings.ToLower(in.Name)
		if seenName[name] {
			return false
		}
		seenName[name] = true
		rows, _, ok := extStats(env, in.Name)
		if !ok {
			return false
		}
		cols, ok := env.DatasetColumns(in.Name)
		if !ok {
			return false
		}
		set := make(map[string]bool, len(cols))
		for _, c := range cols {
			lc := strings.ToLower(c)
			if allCols[lc] {
				return false // overlapping schemas: predicates become ambiguous
			}
			allCols[lc] = true
			set[lc] = true
		}
		origCols = append(origCols, cols...)
		leaves[i] = &joinLeaf{in: in, rows: rows, cols: set}
	}

	// Parse each step's predicate and bind it to the two leaves it touches;
	// exactly one side must be the step's own probe leaf.
	steps := make([]*joinStep, len(chain))
	for i, j := range chain {
		on := j.Args.StringOr("on", "")
		a, b, ok := parseBareEquality(on)
		if !ok {
			return false
		}
		la, lb := leafOfColumn(leaves, a), leafOfColumn(leaves, b)
		if la == nil || lb == nil {
			return false
		}
		probe := leaves[i+1]
		var other *joinLeaf
		switch probe {
		case la:
			other = lb
		case lb:
			other = la
		default:
			return false // predicate doesn't involve this step's probe side
		}
		steps[i] = &joinStep{leaf: probe, on: on, other: other}
	}

	// Greedy order: among remaining steps whose "other" leaf is already
	// joined, take the smallest probe side first.
	joined := map[*joinLeaf]bool{leaves[0]: true}
	remaining := append([]*joinStep(nil), steps...)
	var order []*joinStep
	for len(remaining) > 0 {
		best := -1
		for i, s := range remaining {
			if !joined[s.other] {
				continue
			}
			if best < 0 || s.leaf.rows < remaining[best].leaf.rows {
				best = i
			}
		}
		if best < 0 {
			return false // disconnected under this base; keep original shape
		}
		s := remaining[best]
		order = append(order, s)
		joined[s.leaf] = true
		remaining = append(remaining[:best], remaining[best+1:]...)
	}

	changed := false
	for i := range order {
		if order[i] != steps[i] {
			changed = true
			break
		}
	}
	if !changed || chainCost(leaves[0].rows, order) >= chainCost(leaves[0].rows, steps) {
		return false
	}

	for i, j := range chain {
		s := order[i]
		args := make(skills.Args, len(j.Args)+1)
		for k, v := range j.Args {
			args[k] = v
		}
		args["on"] = s.on
		if j == top {
			// Restore the original output column order: SELECT * emits
			// left-then-right, which the permutation shuffled.
			args["columns"] = append([]string(nil), origCols...)
		}
		j.Args = args
		j.Inputs[1] = s.leaf.in
		t.Detail = append(t.Detail,
			fmt.Sprintf("node %d probes %s (est %d rows)", j.ID, s.leaf.in.Name, s.leaf.rows))
		t.Reordered++
	}
	return true
}

// chainCost is the estimated sum of intermediate cardinalities of joining
// the steps in order, using the same max-of-sides model as the node
// estimator.
func chainCost(baseRows int64, order []*joinStep) int64 {
	cur := baseRows
	var sum int64
	for _, s := range order {
		if s.leaf.rows > cur {
			cur = s.leaf.rows
		}
		sum = satAdd64(sum, cur)
	}
	return sum
}

// parseBareEquality parses "a = b" where both sides are bare (unqualified)
// identifiers.
func parseBareEquality(on string) (a, b string, ok bool) {
	parts := strings.Split(on, "=")
	if len(parts) != 2 {
		return "", "", false
	}
	a = strings.TrimSpace(parts[0])
	b = strings.TrimSpace(parts[1])
	if a == "" || b == "" || strings.ContainsAny(a, ". ") || strings.ContainsAny(b, ". ") {
		return "", "", false
	}
	return a, b, true
}

func leafOfColumn(leaves []*joinLeaf, col string) *joinLeaf {
	lc := strings.ToLower(col)
	for _, l := range leaves {
		if l.cols[lc] {
			return l
		}
	}
	return nil
}
