package core

import (
	"testing"

	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/gel"
	"datachat/internal/recipe"
	"datachat/internal/session"
	"datachat/internal/skills"
)

func skillInv(skill string, inputs []string, output string, args map[string]any) skills.Invocation {
	return skills.Invocation{Skill: skill, Inputs: inputs, Output: output, Args: skills.Args(args)}
}

// sliceSessionGraph captures the session's latest step as a sliced recipe,
// the way SaveArtifact does.
func sliceSessionGraph(s *session.Session) (*recipe.Recipe, dag.SliceReport, error) {
	sliced, rep, err := dag.Slice(s.Graph(), s.Graph().Last())
	if err != nil {
		return nil, rep, err
	}
	rec, err := recipe.FromGraph("top", sliced)
	return rec, rep, err
}

// planTable builds the shared input both front ends operate on. Sessions get
// the same *dataset.Table instance, so the external content fingerprints in
// the cache keys match exactly.
func planTable() *dataset.Table {
	n := 40
	ids := make([]int64, n)
	vals := make([]float64, n)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = float64(i % 11)
	}
	return dataset.MustNewTable("base",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("v", vals, nil),
	)
}

// The same pipeline built through the GEL runner in one session and through
// the Python API in another must lower to identical canonical fingerprints
// and therefore share sub-DAG cache entries across the platform (§2.2: the
// front ends are views over one skill layer, not separate engines).
func TestCrossFrontEndCacheUnification(t *testing.T) {
	p := New()
	table := planTable()
	sa, err := p.CreateSession("viaGel", "ann")
	if err != nil {
		t.Fatal(err)
	}
	sa.Context().PutDataset("base", table)
	sb, err := p.CreateSession("viaPython", "ann")
	if err != nil {
		t.Fatal(err)
	}
	sb.Context().PutDataset("base", table)

	// Front end 1: the GEL recipe runner.
	runner := gel.NewRunner(p.Parser, sa.Executor(), []string{
		"Use the dataset base",
		"Keep the rows where v > 5",
		"Keep the columns id, v",
		"Limit the data to 7 rows",
	})
	steps, err := runner.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	gelRes := steps[len(steps)-1].Result
	gelExplain, err := runner.Explain()
	if err != nil {
		t.Fatal(err)
	}

	// Front end 2: the same pipeline as a Python API script.
	pyRes, err := p.RunPython("viaPython", "ann", `
f = base.keep_rows(condition = "v > 5")
g = f.keep_columns(columns = ["id", "v"])
g.limit_rows(count = 7)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !pyRes.Table.Equal(gelRes.Table) {
		t.Fatalf("front ends disagree:\nGEL:\n%s\npyapi:\n%s", gelRes.Table, pyRes.Table)
	}

	// The pyapi run must have been served from the GEL run's cache entries.
	if hits := sb.Executor().Stats().CacheHits; hits == 0 {
		t.Error("python run had no cache hits; front ends are not sharing plan keys")
	}

	// And the canonical fingerprints of the final step must be identical.
	pyExplain, err := p.Explain("viaPython", "")
	if err != nil {
		t.Fatal(err)
	}
	gelFP := gelExplain.Nodes[len(gelExplain.Nodes)-1].Fingerprint
	pyFP := pyExplain.Nodes[len(pyExplain.Nodes)-1].Fingerprint
	if gelFP == "" || gelFP != pyFP {
		t.Errorf("target fingerprints differ: GEL %q vs pyapi %q", gelFP, pyFP)
	}
}

// A recipe replay of a sliced pipeline must hit the cache entries the live
// session populated: slicing pre-merges adjacent filters, and because fusion
// runs before fingerprinting, the merged step and the live two-step chain
// share one canonical fingerprint.
func TestRecipeReplaySharesCacheWithLiveRun(t *testing.T) {
	p := New()
	table := planTable()
	s, err := p.CreateSession("live", "ann")
	if err != nil {
		t.Fatal(err)
	}
	s.Context().PutDataset("base", table)

	res, err := p.Run("live", "ann",
		skillInv("KeepRows", []string{"base"}, "f1", map[string]any{"condition": "v > 2"}),
		skillInv("KeepRows", []string{"f1"}, "f2", map[string]any{"condition": "v < 9"}),
		skillInv("LimitRows", []string{"f2"}, "top", map[string]any{"count": 10}),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Save and replay the sliced recipe in a second session holding the same
	// data: dag.Slice merges the adjacent filters, so the replayed graph has
	// fewer steps than the live one — but the same canonical plan.
	sliced, _, err := sliceSessionGraph(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.CreateSession("replay", "ann")
	if err != nil {
		t.Fatal(err)
	}
	s2.Context().PutDataset("base", table)
	g2 := sliced.Graph()
	res2, err := s2.Executor().Run(g2, g2.Last())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Table.Equal(res.Table) {
		t.Fatal("replay result differs from the live run")
	}
	if hits := s2.Executor().Stats().CacheHits; hits == 0 {
		t.Error("sliced replay recomputed everything; pre-merged steps are not sharing fingerprints with live chains")
	}
}
