package wire

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/skills"
)

func sampleTable(t *testing.T) *dataset.Table {
	t.Helper()
	return dataset.MustNewTable("mixed",
		dataset.IntColumn("id", []int64{1, 2, 3, 1 << 60}, []bool{false, false, true, false}),
		dataset.FloatColumn("score", []float64{1.5, -2.25, 0, 9e15}, []bool{false, false, true, false}),
		dataset.StringColumn("tag", []string{"a", "", "c", "d"}, []bool{false, true, false, false}),
		dataset.BoolColumn("ok", []bool{true, false, true, false}, nil),
		dataset.TimeColumn("at", []time.Time{
			time.Date(2023, 6, 1, 12, 0, 0, 0, time.UTC),
			time.Date(2024, 1, 2, 3, 4, 5, 600700800, time.UTC),
			{},
			time.Date(2025, 12, 31, 23, 59, 59, 0, time.UTC),
		}, []bool{false, false, true, false}),
	)
}

// TestTableRoundTrip: encode → JSON → DecodeJSON → Decode reproduces the
// table exactly, including nulls, times, and int64s beyond 2^53.
func TestTableRoundTrip(t *testing.T) {
	orig := sampleTable(t)
	w := EncodeTable(orig, 0, 0)
	if w.TotalRows != 4 || w.Offset != 0 || w.NextOffset != -1 {
		t.Fatalf("page header = %d/%d/%d, want 4/0/-1", w.TotalRows, w.Offset, w.NextOffset)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := DecodeJSON(bytes.NewReader(data), &got); err != nil {
		t.Fatal(err)
	}
	back, err := got.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(orig) {
		t.Fatalf("round trip changed the table:\norig:\n%v\ngot:\n%v", orig, back)
	}
}

// TestTablePagination: offset/limit slice the rows and set NextOffset.
func TestTablePagination(t *testing.T) {
	orig := sampleTable(t)
	w := EncodeTable(orig, 1, 2)
	if len(w.Rows) != 2 || w.Offset != 1 || w.NextOffset != 3 || w.TotalRows != 4 {
		t.Fatalf("page = rows:%d offset:%d next:%d total:%d, want 2/1/3/4",
			len(w.Rows), w.Offset, w.NextOffset, w.TotalRows)
	}
	last := EncodeTable(orig, 3, 10)
	if len(last.Rows) != 1 || last.NextOffset != -1 {
		t.Fatalf("last page = rows:%d next:%d, want 1/-1", len(last.Rows), last.NextOffset)
	}
	empty := EncodeTable(orig, 99, 5)
	if len(empty.Rows) != 0 || empty.NextOffset != -1 {
		t.Fatalf("past-the-end page = rows:%d next:%d, want 0/-1", len(empty.Rows), empty.NextOffset)
	}
}

// TestTableRoundTripWithoutUseNumber: a plain json.Unmarshal (float64 cells)
// still decodes small ints correctly — the degraded path streaming consumers
// may take.
func TestTableRoundTripWithoutUseNumber(t *testing.T) {
	orig := dataset.MustNewTable("small",
		dataset.IntColumn("n", []int64{0, -5, 1 << 40}, nil),
		dataset.FloatColumn("f", []float64{0.5, 2, -7.25}, nil),
	)
	data, err := json.Marshal(EncodeTable(orig, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	back, err := got.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(orig) {
		t.Fatalf("plain-decode round trip changed the table:\n%v\n%v", orig, back)
	}
}

// TestDecodeRejectsNonIntegralFloat: on the plain-json path a fractional
// value landing in an int column is a type error, not a silent truncation.
func TestDecodeRejectsNonIntegralFloat(t *testing.T) {
	w := &Table{
		Name: "bad",
		Cols: []ColumnMeta{{Name: "n", Type: "int"}},
		Rows: [][]any{{3.9}},
	}
	if _, err := w.Decode(); err == nil || !strings.Contains(err.Error(), "non-integral") {
		t.Fatalf("Decode(3.9 in int col) = %v, want non-integral error", err)
	}
	ok := &Table{
		Name: "good",
		Cols: []ColumnMeta{{Name: "n", Type: "int"}},
		Rows: [][]any{{3.0}},
	}
	tab, err := ok.Decode()
	if err != nil {
		t.Fatalf("Decode(3.0 in int col): %v", err)
	}
	if got := tab.Columns()[0].Value(0).I; got != 3 {
		t.Fatalf("decoded value = %d, want 3", got)
	}
}

// TestEncodeResultCarriesDegradation: the §2.3 degradation marker survives
// the wire form.
func TestEncodeResultCarriesDegradation(t *testing.T) {
	res := &skills.Result{
		Table:        sampleTable(t),
		Message:      "via fallback",
		Degraded:     true,
		DegradedNote: "stale snapshot \"s1\" (age 3h)",
	}
	w := EncodeResult(res, 2)
	if !w.Degraded || w.DegradedNote != res.DegradedNote {
		t.Fatalf("degradation lost: %+v", w)
	}
	if len(w.Table.Rows) != 2 || w.Table.TotalRows != 4 {
		t.Fatalf("maxRows page = %d rows of %d", len(w.Table.Rows), w.Table.TotalRows)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := DecodeJSON(bytes.NewReader(data), &got); err != nil {
		t.Fatal(err)
	}
	if !got.Degraded || got.DegradedNote != res.DegradedNote || got.Message != "via fallback" {
		t.Fatalf("decoded result lost fields: %+v", got)
	}
}

// TestErrorPayload: the typed error round-trips and formats usefully.
func TestErrorPayload(t *testing.T) {
	e := &Error{Code: CodeBusy, Message: "session: another execution is already running", RetryAfterMs: 250}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var got Error
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	got.Status = 409
	if got.Code != CodeBusy || got.RetryAfterMs != 250 {
		t.Fatalf("error round trip: %+v", got)
	}
	if got.Error() == "" {
		t.Fatal("empty error text")
	}
}
