package conformance

import (
	"fmt"
	"path/filepath"
	"strings"

	"datachat/internal/dataset"
	"datachat/internal/recipe"
)

// Lint checks one loaded (and lowered) case for structural problems that
// would make a run's failure confusing: missing fixtures, dangling input
// references, un-parseable expect blocks, conflicting expectations. It
// returns every problem, not just the first.
func Lint(c *Case) []error {
	var errs []error
	report := func(format string, a ...any) {
		errs = append(errs, fmt.Errorf("%s: %s", c.Name, fmt.Sprintf(format, a...)))
	}
	if c.Path != "" {
		base := strings.TrimSuffix(filepath.Base(c.Path), ".case")
		base = strings.TrimPrefix(base, "gen_")
		if base != c.Name {
			report("file %s does not match case name (want %s.case or gen_%s.case)", filepath.Base(c.Path), c.Name, c.Name)
		}
	}
	fixtures := map[string]bool{}
	for _, f := range c.Fixtures {
		if fixtures[strings.ToLower(f.Name)] {
			report("duplicate fixture %q", f.Name)
		}
		fixtures[strings.ToLower(f.Name)] = true
		if _, err := dataset.ReadCSVString(f.Name, f.CSV); err != nil {
			report("fixture %s: %v", f.Name, err)
		}
	}
	for _, f := range c.DBFixtures {
		if _, err := dataset.ReadCSVString(f.Table, f.CSV); err != nil {
			report("fixture %s.%s: %v", f.DB, f.Table, err)
		}
	}
	if len(c.Steps) == 0 {
		report("lowered to zero steps")
		return errs
	}
	r := &recipe.Recipe{Name: c.Name, Steps: c.Steps}
	reg, _ := frontEnds()
	if err := r.Validate(reg); err != nil {
		report("canonical program: %v", err)
	}
	// Every external input must be a declared fixture.
	produced := map[string]bool{}
	for _, step := range c.Steps {
		for _, in := range step.Inputs {
			key := strings.ToLower(in)
			if !produced[key] && !fixtures[key] {
				report("step %s consumes %q, which is neither a fixture nor an earlier output", step.Skill, in)
			}
		}
		if step.Output != "" {
			produced[strings.ToLower(step.Output)] = true
		}
	}
	if c.Expect != "" {
		if _, err := dataset.ReadCSVString("expect", c.Expect); err != nil {
			report("expect block: %v", err)
		}
	}
	if c.ExpectError != "" && (c.Expect != "" || c.ExpectMessage != "" || c.ExpectCharts >= 0) {
		report("error: conflicts with expect/expect-message/expect-charts")
	}
	if c.DryRunError != "" && c.ExpectError != "" {
		report("dryrun-error and error are mutually exclusive")
	}
	if c.Kind == "degraded" && len(c.DBFixtures) == 0 {
		report("kind degraded needs a cloud fixture (fixture <db>.<table>:)")
	}
	if c.ExpectDegraded && c.Kind != "degraded" && c.BudgetBytes <= 0 {
		report("expect-degraded requires kind: degraded or budget-bytes:")
	}
	if c.BudgetBytes < 0 {
		report("budget-bytes must be positive")
	}
	if c.BudgetBytes > 0 && len(c.DBFixtures) == 0 {
		report("budget-bytes needs a cloud fixture (fixture <db>.<table>:) for the planner to cost")
	}
	if c.ExpectDegradedNote != "" && !c.ExpectDegraded {
		report("expect-degraded-note requires expect-degraded: true")
	}
	if !c.HasExpectation() {
		report("case asserts nothing beyond route agreement; add expect:, expect-message:, expect-charts:, error:, dryrun-error:, or explain:")
	}
	return errs
}

// LintDir loads and lints every case under dir.
func LintDir(dir string) ([]*Case, []error) {
	cases, err := LoadDir(dir)
	if err != nil {
		return nil, []error{err}
	}
	var errs []error
	for _, c := range cases {
		errs = append(errs, Lint(c)...)
	}
	return cases, errs
}
