package conformance

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"datachat/internal/dataset"
	"datachat/internal/gel"
	"datachat/internal/phrase"
	"datachat/internal/pyapi"
	"datachat/internal/recipe"
	"datachat/internal/semantic"
	"datachat/internal/skills"
)

// The lowering front ends are stateless; share one registry + parser
// across every case.
var (
	lowerOnce   sync.Once
	lowerReg    *skills.Registry
	lowerParser *gel.Parser
)

func frontEnds() (*skills.Registry, *gel.Parser) {
	lowerOnce.Do(func() {
		lowerReg = skills.NewRegistry()
		lowerParser = gel.MustNewParser(lowerReg)
	})
	return lowerReg, lowerParser
}

// Lower fills c.Steps: the canonical recipe-step program every route
// executes. Outputs are normalized to py-safe names s1, s2, ... so the
// same program renders back to GEL and the Python API losslessly.
func Lower(c *Case) error {
	reg, parser := frontEnds()
	var steps []recipe.Step
	var err error
	switch c.Dialect {
	case "gel":
		steps, err = lowerGEL(c.Body, reg, parser)
	case "pyapi":
		steps, err = lowerPyAPI(c.Body, reg)
	case "recipe":
		err = json.Unmarshal([]byte(c.Body), &steps)
		if err == nil && len(steps) == 0 {
			err = fmt.Errorf("recipe body has no steps")
		}
	case "phrase":
		steps, err = lowerPhrase(c)
	default:
		err = fmt.Errorf("unknown dialect %q", c.Dialect)
	}
	if err != nil {
		return fmt.Errorf("conformance: lowering case %q: %w", c.Name, err)
	}
	for i := range steps {
		if steps[i].Output == "" {
			steps[i].Output = fmt.Sprintf("s%d", i+1)
		}
	}
	c.Steps = steps
	return nil
}

func lowerGEL(body string, reg *skills.Registry, parser *gel.Parser) ([]recipe.Step, error) {
	var steps []recipe.Step
	current := ""
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		inv, err := parser.Parse(line)
		if err != nil {
			return nil, err
		}
		if len(inv.Inputs) == 0 && needsInput(inv.Skill) {
			if current == "" {
				return nil, fmt.Errorf("%q needs a dataset; use one first", line)
			}
			inv.Inputs = []string{current}
		}
		out := fmt.Sprintf("s%d", len(steps)+1)
		steps = append(steps, recipe.Step{Skill: inv.Skill, Inputs: inv.Inputs, Output: out, Args: inv.Args})
		if advancesCurrent(reg, inv.Skill) {
			current = out
		}
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("gel body has no sentences")
	}
	return steps, nil
}

func lowerPyAPI(body string, reg *skills.Registry) ([]recipe.Step, error) {
	prog, err := pyapi.Parse(body)
	if err != nil {
		return nil, err
	}
	invs, err := pyapi.NewTranslator(reg).Invocations(prog)
	if err != nil {
		return nil, err
	}
	steps := make([]recipe.Step, len(invs))
	for i, inv := range invs {
		steps[i] = recipe.Step{Skill: inv.Skill, Inputs: inv.Inputs, Output: inv.Output, Args: inv.Args}
	}
	return steps, nil
}

func lowerPhrase(c *Case) ([]recipe.Step, error) {
	var csv string
	for _, f := range c.Fixtures {
		if f.Name == c.PhraseDataset {
			csv = f.CSV
		}
	}
	if csv == "" {
		return nil, fmt.Errorf("phrase dataset %q is not a fixture", c.PhraseDataset)
	}
	t, err := dataset.ReadCSVString(c.PhraseDataset, csv)
	if err != nil {
		return nil, err
	}
	// A phrase session may hold several statements, one per line. The
	// phrase surface is Visualize-only — statements answer questions about
	// the dataset without transforming it — so every line lowers against
	// the same fixture schema and defaults its input to the same dataset.
	tr := &phrase.Translator{Layer: semantic.NewLayer()}
	var steps []recipe.Step
	for _, line := range strings.Split(c.Body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		trans, err := tr.Translate(line, t)
		if err != nil {
			return nil, err
		}
		inv := trans.Invocation
		if len(inv.Inputs) == 0 {
			inv.Inputs = []string{c.PhraseDataset}
		}
		steps = append(steps, recipe.Step{Skill: inv.Skill, Inputs: inv.Inputs,
			Output: fmt.Sprintf("s%d", len(steps)+1), Args: inv.Args})
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("phrase body has no sentences")
	}
	return steps, nil
}

// needsInput mirrors core's defaulting rule for GEL sentences: these
// skills never consume the current dataset. (core keeps its copy
// unexported; the conformance corpus pins the two in agreement via
// TestNeedsInputMirror-style GEL cases that chain on current.)
func needsInput(skill string) bool {
	switch skill {
	case "LoadData", "LoadTable", "SampleTable", "CreateSnapshot", "UseSnapshot",
		"RefreshSnapshot", "ListDatasets", "UseDataset", "Define", "ShareSession",
		"ShareArtifact", "PublishToInsightsBoard", "AddComment", "ExplainModel", "RunSQL":
		return false
	default:
		return true
	}
}

// advancesCurrent mirrors gel.Runner.record: ingestion skills and
// table-producing transforms advance the working dataset; exploration,
// visualization, and collaboration skills produce side results without
// moving it.
func advancesCurrent(reg *skills.Registry, skill string) bool {
	switch skill {
	case "UseDataset", "LoadData", "LoadTable", "SampleTable",
		"UseSnapshot", "CreateSnapshot", "RefreshSnapshot":
		return true
	case "ListDatasets", "Define":
		return false
	}
	def, err := reg.Lookup(skill)
	if err != nil {
		return false
	}
	switch def.Category {
	case skills.DataExploration, skills.DataVisualization, skills.Collaboration:
		return false
	}
	return true
}
