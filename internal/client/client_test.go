package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"datachat/internal/wire"
)

func TestTypedErrorDecoding(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/sessions": // busy with hint
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			_, _ = w.Write([]byte(`{"code":"busy","message":"session locked","retry_after_ms":750}`))
		case "/healthz": // non-JSON body must still yield a usable error
			w.WriteHeader(http.StatusBadGateway)
			_, _ = w.Write([]byte("upstream exploded"))
		}
	}))
	defer hs.Close()
	c := New(hs.URL)
	ctx := context.Background()

	_, err := c.CreateSession(ctx, "s", "ann")
	if !IsBusy(err) {
		t.Fatalf("err = %v, want busy", err)
	}
	if RetryAfter(err) != 750 {
		t.Fatalf("retry_after = %d, want 750", RetryAfter(err))
	}
	if e := err.(*wire.Error); e.Status != http.StatusConflict {
		t.Fatalf("status = %d, want 409", e.Status)
	}

	err = c.Health(ctx)
	e, ok := err.(*wire.Error)
	if !ok || e.Status != http.StatusBadGateway {
		t.Fatalf("err = %v, want wire.Error with 502", err)
	}
	if e.Message == "" {
		t.Fatal("non-JSON error body produced an empty message")
	}
	if IsBusy(err) || IsThrottled(err) || IsDraining(err) || IsDeadline(err) {
		t.Fatalf("502 misclassified: %v", err)
	}
}
