package gel

import (
	"fmt"
	"strings"

	"datachat/internal/dag"
	"datachat/internal/plan"
	"datachat/internal/skills"
)

// StepState describes one recipe line in the runner.
type StepState int

// Step lifecycle states shown in the recipe editor margin.
const (
	StepPending StepState = iota
	StepDone
	StepFailed
)

// Step is one line of a recipe under execution.
type Step struct {
	// Line is the GEL sentence.
	Line string
	// State is the execution state.
	State StepState
	// NodeID is the DAG node the line became (valid once parsed).
	NodeID dag.NodeID
	// Result holds the execution result once run.
	Result *skills.Result
	// Err records a failure.
	Err error
	// Breakpoint marks a debugger breakpoint on this line (Figure 2a's
	// red dot).
	Breakpoint bool
}

// Runner is the IDE-like recipe stepper of Figure 2a: it executes a GEL
// recipe line by line, honoring breakpoints, and maintains the versioned
// dataset bookkeeping GEL sentences rely on ("Use the dataset fredgraph,
// version 1").
type Runner struct {
	Parser   *Parser
	Executor *dag.Executor

	steps []Step
	graph *dag.Graph
	pc    int

	// versions tracks every version of each dataset name: versions[name][i]
	// is the output-name of version i+1.
	versions map[string][]string
	// current is the output name the next transform consumes.
	current string
	// currentName is the base dataset name of current.
	currentName string
}

// NewRunner prepares a runner over recipe lines. Blank lines and lines
// starting with '#' are kept (and skipped at execution) so line numbers
// match the editor.
func NewRunner(parser *Parser, executor *dag.Executor, lines []string) *Runner {
	r := &Runner{
		Parser:   parser,
		Executor: executor,
		graph:    dag.NewGraph(),
		versions: map[string][]string{},
	}
	for _, line := range lines {
		r.steps = append(r.steps, Step{Line: line, NodeID: -1})
	}
	// Pre-register session datasets as version 1 of themselves.
	for name := range executor.Ctx.Datasets {
		r.versions[name] = []string{name}
	}
	return r
}

// Steps returns the step list (a copy of the slice header; entries are
// live).
func (r *Runner) Steps() []Step { return r.steps }

// PC returns the index of the next line to execute.
func (r *Runner) PC() int { return r.pc }

// Done reports whether every line has executed.
func (r *Runner) Done() bool { return r.pc >= len(r.steps) }

// SetBreakpoint toggles a breakpoint on a line.
func (r *Runner) SetBreakpoint(line int, on bool) error {
	if line < 0 || line >= len(r.steps) {
		return fmt.Errorf("gel: no line %d", line)
	}
	r.steps[line].Breakpoint = on
	return nil
}

// CurrentDataset returns the output name the next transform would consume.
func (r *Runner) CurrentDataset() string { return r.current }

// Step executes the next line and returns its step record. Comments and
// blank lines complete immediately.
func (r *Runner) Step() (*Step, error) {
	if r.Done() {
		return nil, fmt.Errorf("gel: recipe finished")
	}
	step := &r.steps[r.pc]
	line := strings.TrimSpace(step.Line)
	r.pc++
	if line == "" || strings.HasPrefix(line, "#") {
		step.State = StepDone
		return step, nil
	}
	inv, err := r.Parser.Parse(line)
	if err != nil {
		step.State = StepFailed
		step.Err = err
		return step, err
	}
	if err := r.wire(&inv); err != nil {
		step.State = StepFailed
		step.Err = err
		return step, err
	}
	id := r.graph.Add(inv)
	step.NodeID = id
	res, err := r.Executor.Run(r.graph, id)
	if err != nil {
		step.State = StepFailed
		step.Err = err
		return step, err
	}
	step.State = StepDone
	step.Result = res
	r.record(inv, id, res)
	return step, nil
}

// Continue executes lines until a breakpoint (stopping before it) or the
// end of the recipe, returning the executed steps.
func (r *Runner) Continue() ([]*Step, error) {
	var out []*Step
	for !r.Done() {
		if r.steps[r.pc].Breakpoint && len(out) > 0 {
			break
		}
		step, err := r.Step()
		if step != nil {
			out = append(out, step)
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// RunAll executes the remaining lines, ignoring breakpoints.
func (r *Runner) RunAll() ([]*Step, error) {
	var out []*Step
	for !r.Done() {
		step, err := r.Step()
		if step != nil {
			out = append(out, step)
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Graph exposes the DAG built so far (for slicing and saving artifacts).
func (r *Runner) Graph() *dag.Graph { return r.graph }

// Explain compiles — without executing — the plan for the most recently
// executed line and returns the EXPLAIN report: the debugger's "what would
// this recipe actually run" view.
func (r *Runner) Explain() (*plan.Explain, error) {
	last := r.graph.Last()
	if last < 0 {
		return nil, fmt.Errorf("gel: no executed lines to explain")
	}
	return r.Executor.Explain(r.graph, last)
}

// wire resolves the invocation's dataset inputs: sentences that name
// datasets resolve to their latest versions; sentences that do not operate
// on the current dataset; UseDataset pins a specific version.
func (r *Runner) wire(inv *skills.Invocation) error {
	switch inv.Skill {
	case "UseDataset":
		name, err := inv.Args.String("dataset")
		if err != nil {
			return err
		}
		versions, ok := r.versions[name]
		if !ok {
			return fmt.Errorf("gel: no dataset named %q", name)
		}
		v := inv.Args.IntOr("version", len(versions))
		if v < 1 || v > len(versions) {
			return fmt.Errorf("gel: dataset %q has versions 1..%d, not %d", name, len(versions), v)
		}
		inv.Args["dataset"] = versions[v-1]
		return nil
	case "LoadData", "LoadTable", "SampleTable", "CreateSnapshot", "UseSnapshot",
		"RefreshSnapshot", "ListDatasets":
		return nil // no dataset input
	}
	if len(inv.Inputs) > 0 {
		// Sentence-named datasets (Concatenate, Join): latest versions.
		for i, name := range inv.Inputs {
			if versions, ok := r.versions[name]; ok {
				inv.Inputs[i] = versions[len(versions)-1]
			}
		}
		return nil
	}
	if r.current == "" {
		return fmt.Errorf("gel: no current dataset; load or use one first")
	}
	inv.Inputs = []string{r.current}
	return nil
}

// record updates version bookkeeping after a successful step.
func (r *Runner) record(inv skills.Invocation, id dag.NodeID, res *skills.Result) {
	node, err := r.graph.Node(id)
	if err != nil {
		return
	}
	out := node.OutputName()
	switch inv.Skill {
	case "UseDataset":
		// Current becomes the pinned dataset itself; no new version. Later
		// transforms version under the dataset's base name, so recover it
		// from the version registry.
		pinned, _ := inv.Args.String("dataset")
		r.current = pinned
		r.currentName = pinned
		for name, outs := range r.versions {
			for _, o := range outs {
				if o == pinned {
					r.currentName = name
				}
			}
		}
		return
	case "LoadData", "LoadTable", "SampleTable", "UseSnapshot", "CreateSnapshot", "RefreshSnapshot":
		if res.Table != nil {
			name := res.Table.Name()
			r.versions[name] = append(r.versions[name], out)
			r.current = out
			r.currentName = name
		}
		return
	}
	if res.Table == nil {
		return // charts, messages: current dataset unchanged
	}
	// Exploration, visualization, and collaboration skills produce side
	// results (summaries, counts, exports) without advancing the working
	// dataset.
	if def, err := r.Parser.Registry.Lookup(inv.Skill); err == nil {
		switch def.Category {
		case skills.DataExploration, skills.DataVisualization, skills.Collaboration:
			return
		}
	}
	name := res.Table.Name()
	if name != "" && name != r.currentName && looksLikeNewDataset(inv.Skill) {
		// Skills that mint a distinct dataset (PredictTimeSeries) start a
		// new version history under their own name.
		r.versions[name] = append(r.versions[name], out)
		r.current = out
		r.currentName = name
		return
	}
	// A transform of the current dataset: bump its version.
	if r.currentName == "" {
		r.currentName = name
	}
	r.versions[r.currentName] = append(r.versions[r.currentName], out)
	r.current = out
}

func looksLikeNewDataset(skill string) bool {
	switch skill {
	case "PredictTimeSeries", "Pivot", "Compute", "Concatenate", "JoinDatasets":
		return true
	default:
		return false
	}
}

func baseName(output string) string {
	if i := strings.IndexByte(output, '@'); i >= 0 {
		return output[:i]
	}
	return output
}

// Versions returns the recorded versions of a dataset name (output names,
// oldest first).
func (r *Runner) Versions(name string) []string {
	return append([]string{}, r.versions[name]...)
}

// Append adds a line to the end of the recipe; the interactive console
// feeds user input through this before stepping.
func (r *Runner) Append(line string) {
	r.steps = append(r.steps, Step{Line: line, NodeID: -1})
}

// EditLine replaces the text of a recipe line (§2.3: recipes are designed
// to be edited). Everything from the edited line onward is reset to
// pending, and the runner replays the unedited prefix against a fresh DAG —
// cheap, because the executor's sub-DAG cache serves the unchanged steps.
func (r *Runner) EditLine(line int, newText string) error {
	if line < 0 || line >= len(r.steps) {
		return fmt.Errorf("gel: no line %d", line)
	}
	r.steps[line].Line = newText
	// Reset execution state from the edited line on.
	for i := line; i < len(r.steps); i++ {
		r.steps[i].State = StepPending
		r.steps[i].NodeID = -1
		r.steps[i].Result = nil
		r.steps[i].Err = nil
	}
	executed := r.pc
	if executed > line {
		executed = line
	}
	// Rebuild the graph and version bookkeeping by replaying the prefix.
	r.graph = dag.NewGraph()
	r.versions = map[string][]string{}
	for name := range r.Executor.Ctx.Datasets {
		if looksGenerated(name) {
			continue // prior runs' materializations, not source datasets
		}
		r.versions[name] = []string{name}
	}
	r.current, r.currentName = "", ""
	r.pc = 0
	for r.pc < executed {
		if _, err := r.Step(); err != nil {
			return fmt.Errorf("gel: replaying prefix after edit: %w", err)
		}
	}
	return nil
}

// looksGenerated reports whether a dataset name is a prior run's node
// output rather than a user-supplied source.
func looksGenerated(name string) bool {
	if !strings.HasPrefix(name, "node") {
		return false
	}
	for _, r := range name[4:] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(name) > 4
}
