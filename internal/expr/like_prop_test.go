package expr

import (
	"math/rand"
	"strings"
	"testing"

	"datachat/internal/dataset"
)

// randLikePattern draws from an alphabet rich in wildcards and case
// variance so every fast-path classification and the DP fallback get hit.
func randLikePattern(rng *rand.Rand) string {
	alphabet := []rune{'a', 'b', 'c', 'A', 'B', '%', '%', '_', 'é'}
	n := rng.Intn(8)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}

func randLikeInput(rng *rand.Rand) string {
	alphabet := []rune{'a', 'b', 'c', 'A', 'B', 'C', 'é', 'É', 'x'}
	n := rng.Intn(10)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}

// TestLikeFastPathsMatchDP pins every compiled fast path to the reference
// dynamic-programming matcher on randomized patterns and inputs.
func TestLikeFastPathsMatchDP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20000; trial++ {
		pat := randLikePattern(rng)
		s := randLikeInput(rng)
		p := compileLikePattern(pat)
		got := p.match(s)
		want := likeMatch(strings.ToLower(s), strings.ToLower(pat))
		if got != want {
			t.Fatalf("pattern %q input %q (kind %d): fast=%v dp=%v", pat, s, p.kind, got, want)
		}
	}
}

// TestLikeKindClassification pins representative patterns to the expected
// fast path, so a regression cannot silently reroute everything to the DP.
func TestLikeKindClassification(t *testing.T) {
	cases := []struct {
		pattern string
		kind    likeKind
	}{
		{"abc", likeExact},
		{"", likeExact},
		{"a_c", likeExact}, // '_' handled by the wildcard-aware exact comparison
		{"abc%", likePrefix},
		{"%abc", likeSuffix},
		{"%abc%", likeContains},
		{"%", likeContains},
		{"%%", likeContains},
		{"a%c", likeSegments},
		{"a%b%c", likeSegments},
		{"a%b_c", likeGeneral}, // '_' in a multi-segment pattern needs the DP
		{"a_%c", likeGeneral},
	}
	for _, tc := range cases {
		p := compileLikePattern(tc.pattern)
		if p.kind != tc.kind {
			t.Errorf("pattern %q: kind = %d, want %d", tc.pattern, p.kind, tc.kind)
		}
	}
}

// TestLikeEvalEndToEnd exercises LIKE through Eval, covering the
// ASCII-fold fast comparisons and the lowered-input path for non-ASCII.
func TestLikeEvalEndToEnd(t *testing.T) {
	cases := []struct {
		s, pattern string
		want       bool
	}{
		{"Widget", "wid%", true},
		{"Widget", "%GET", true},
		{"Widget", "%dge%", true},
		{"Widget", "widget", true},
		{"Widget", "w_dget", true},
		{"Widget", "w%t", true},
		{"Widget", "x%", false},
		{"ÉCLAIR", "é%", true},
		{"anything", "%", true},
		{"", "%", true},
		{"", "", true},
		{"", "_", false},
	}
	for _, tc := range cases {
		e := Bin(OpLike, Lit(dataset.Str(tc.s)), Lit(dataset.Str(tc.pattern)))
		got, err := EvalBool(e, MapEnv{})
		if err != nil {
			t.Fatalf("%q LIKE %q: %v", tc.s, tc.pattern, err)
		}
		if got != tc.want {
			t.Errorf("%q LIKE %q = %v, want %v", tc.s, tc.pattern, got, tc.want)
		}
	}
}
