package plan

import "fmt"

// Session-wide common-subexpression elimination. The pass runs over the
// whole lowered session graph, before slicing, so structurally identical
// sub-plans built by different requests (or different front ends) collapse
// onto one producer: the first occurrence in topological order survives,
// later duplicates are dropped, and their consumers are rewired to the
// survivor. Equality is by canonical structural fingerprint (the lenient
// whole-graph fingerprint pass runs immediately before), which covers the
// skill, canonicalized args, and the full input subtree — exactly the
// cache's notion of identity, minus external content hashes, which don't
// matter here because both duplicates read the same session state.
//
// Rewiring keeps each consumer's Input.Name unchanged — join predicates
// qualify columns by input dataset names — and instead publishes every
// dropped node's output name as an alias on the survivor, so the one
// materialized result answers to all the names the duplicates had. Dropped
// IDs join the survivor's Absorbed list, which keeps executor bookkeeping
// (result lookup by original dag node ID) intact for free.
//
// Volatile nodes merge too: within one request's execution a duplicated
// cloud scan reads the same data, so merging trades two identical scans for
// one — that is the pass's main scan-bytes win, since keyless volatile
// nodes never dedup through the cache. Invalidating (side-effectful) nodes
// and nodes without fingerprints never merge.

type csePass struct{}

// CSEPass returns the session-wide common-subexpression-elimination pass.
// It requires fingerprints (run a fingerprint pass first).
func CSEPass() Pass { return csePass{} }

func (csePass) Name() string { return "cse" }

func (csePass) Run(p *Plan, env *Env, t *PassTrace) error {
	survivorByFP := map[string]*Node{}
	redirect := map[int]*Node{} // dropped ID → survivor
	for _, n := range p.Nodes {
		if n.Fingerprint == "" || n.Invalidates {
			continue
		}
		surv, ok := survivorByFP[n.Fingerprint]
		if !ok {
			survivorByFP[n.Fingerprint] = n
			continue
		}
		redirect[n.ID] = surv
		surv.Absorbed = append(surv.Absorbed, n.ID)
		surv.Absorbed = append(surv.Absorbed, n.Absorbed...)
		if name := n.OutputName(); name != surv.OutputName() {
			dup := false
			for _, a := range surv.Aliases {
				if a == name {
					dup = true
					break
				}
			}
			if !dup {
				surv.Aliases = append(surv.Aliases, name)
			}
		}
		t.Detail = append(t.Detail,
			fmt.Sprintf("node %d == node %d (%s)", n.ID, surv.ID, n.Skill))
		t.Dedup++
	}
	if len(redirect) == 0 {
		return nil
	}
	keep := make(map[int]bool, len(p.Nodes))
	for _, n := range p.Nodes {
		if _, dropped := redirect[n.ID]; dropped {
			continue
		}
		keep[n.ID] = true
		for i, in := range n.Inputs {
			if surv, ok := redirect[in.Node]; ok {
				// Keep Input.Name: the survivor materializes the dropped
				// node's output name as an alias, so name-based references
				// (join predicates, SQL fragments) stay valid.
				n.Inputs[i].Node = surv.ID
			}
		}
	}
	if surv, ok := redirect[p.Target]; ok {
		p.Target = surv.ID
	}
	p.keep(keep)
	t.Fired = true
	return nil
}
