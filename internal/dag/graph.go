// Package dag implements DataChat's execution layer (§2.2): skill requests
// accumulate in a directed acyclic graph without running anything; when a
// result is needed, the DAG compiles into execution tasks — consolidating
// chains of relational skills into single flattened SQL queries (Figure 4)
// — runs them against a sub-DAG result cache, and returns the results. It
// also implements recipe slicing (§2.3, Figure 5): reducing an exploratory
// DAG to just the steps an artifact depends on.
package dag

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"datachat/internal/skills"
)

// NodeID identifies a node within one Graph.
type NodeID int

// Node is one skill request in the DAG.
type Node struct {
	ID NodeID
	// Inv is the skill invocation this node will execute.
	Inv skills.Invocation
	// Parents are the nodes whose outputs this node consumes, aligned with
	// the Inv.Inputs entries they satisfy; -1 marks an external dataset.
	Parents []NodeID
}

// OutputName returns the dataset name this node produces.
func (n *Node) OutputName() string {
	if n.Inv.Output != "" {
		return n.Inv.Output
	}
	return fmt.Sprintf("node%d", n.ID)
}

// Graph is a DAG of skill requests. Building it performs no computation.
// A Graph is internally synchronized: Add and the read accessors may be
// called concurrently (the network layer reads Len/Last/ProducerOf while a
// session execution appends nodes). Node pointers returned by accessors stay
// valid — existing nodes are never rewired after insertion.
type Graph struct {
	mu       sync.RWMutex
	nodes    map[NodeID]*Node
	order    []NodeID
	next     NodeID
	byOutput map[string]NodeID

	// sigMemo and extMemo cache per-node signatures and external-input sets.
	// Without memoization Signature recomputes parent hashes recursively,
	// which is exponential on diamond-shaped DAGs. Both reset on Add.
	sigMemo map[NodeID]string
	extMemo map[NodeID][]string
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{nodes: map[NodeID]*Node{}, byOutput: map[string]NodeID{}}
}

// Add appends a skill invocation, wiring dependencies: each input that
// matches an earlier node's output becomes a parent edge; other inputs are
// external session datasets.
func (g *Graph) Add(inv skills.Invocation) NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	id := g.next
	g.next++
	node := &Node{ID: id, Inv: inv}
	for _, in := range inv.Inputs {
		if parent, ok := g.byOutput[in]; ok {
			node.Parents = append(node.Parents, parent)
		} else {
			node.Parents = append(node.Parents, -1)
		}
	}
	g.nodes[id] = node
	g.order = append(g.order, id)
	g.byOutput[node.OutputName()] = id
	// A new node can change which inputs resolve to parents for later
	// additions but never rewires existing nodes; dropping the memos wholesale
	// is still cheap because they rebuild in one topological pass.
	g.sigMemo = nil
	g.extMemo = nil
	return id
}

// Node returns a node by ID.
func (g *Graph) Node(id NodeID) (*Node, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return nil, fmt.Errorf("dag: no node %d", id)
	}
	return n, nil
}

// Len returns the number of nodes.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// Order returns node IDs in insertion (and hence topological) order.
func (g *Graph) Order() []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]NodeID{}, g.order...)
}

// Last returns the most recently added node ID, or -1 for an empty graph.
func (g *Graph) Last() NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(g.order) == 0 {
		return -1
	}
	return g.order[len(g.order)-1]
}

// ProducerOf returns the node producing the named dataset, if any.
func (g *Graph) ProducerOf(output string) (NodeID, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	id, ok := g.byOutput[output]
	return id, ok
}

// Ancestors returns target plus all its transitive parents, in topological
// order.
func (g *Graph) Ancestors(target NodeID) ([]NodeID, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.nodes[target]; !ok {
		return nil, fmt.Errorf("dag: no node %d", target)
	}
	needed := map[NodeID]bool{}
	var visit func(id NodeID)
	visit = func(id NodeID) {
		if id < 0 || needed[id] {
			return
		}
		needed[id] = true
		for _, p := range g.nodes[id].Parents {
			visit(p)
		}
	}
	visit(target)
	out := make([]NodeID, 0, len(needed))
	for _, id := range g.order {
		if needed[id] {
			out = append(out, id)
		}
	}
	return out, nil
}

// consumers maps each node to the needed nodes that consume its output.
func (g *Graph) consumers(needed []NodeID) map[NodeID][]NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	inSet := map[NodeID]bool{}
	for _, id := range needed {
		inSet[id] = true
	}
	out := map[NodeID][]NodeID{}
	for _, id := range needed {
		for _, p := range g.nodes[id].Parents {
			if p >= 0 && inSet[p] {
				out[p] = append(out[p], id)
			}
		}
	}
	return out
}

// Signature returns a content hash identifying the computation a node
// performs, including its whole ancestry — the cache key for shared
// sub-DAG reuse (§2.2). Signatures are memoized per graph, so a DAG with
// shared sub-structure (diamonds) hashes each node once instead of once
// per path.
func (g *Graph) Signature(id NodeID) (string, error) {
	// Full lock, not RLock: memoization writes sigMemo, and the recursion
	// uses an unlocked helper (RWMutex is not reentrant).
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.signature(id)
}

func (g *Graph) signature(id NodeID) (string, error) {
	if sig, ok := g.sigMemo[id]; ok {
		return sig, nil
	}
	node, ok := g.nodes[id]
	if !ok {
		return "", fmt.Errorf("dag: no node %d", id)
	}
	h := sha256.New()
	fmt.Fprintf(h, "skill:%s\n", node.Inv.Skill)
	// Canonical argument encoding: sorted keys, JSON values.
	keys := make([]string, 0, len(node.Inv.Args))
	for k := range node.Inv.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		encoded, err := json.Marshal(node.Inv.Args[k])
		if err != nil {
			return "", fmt.Errorf("dag: unencodable argument %q on node %d: %w", k, id, err)
		}
		fmt.Fprintf(h, "arg:%s=%s\n", k, encoded)
	}
	for i, in := range node.Inv.Inputs {
		parent := NodeID(-1)
		if i < len(node.Parents) {
			parent = node.Parents[i]
		}
		if parent < 0 {
			fmt.Fprintf(h, "ext:%s\n", in)
			continue
		}
		sig, err := g.signature(parent)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "parent:%s\n", sig)
	}
	sig := hex.EncodeToString(h.Sum(nil))
	if g.sigMemo == nil {
		g.sigMemo = map[NodeID]string{}
	}
	g.sigMemo[id] = sig
	return sig, nil
}

// ExternalInputs returns the sorted, de-duplicated names of the external
// session datasets the sub-DAG rooted at id reads. The executor folds their
// content fingerprints into cache keys, so a reloaded dataset under the same
// name cannot serve stale cached results. Memoized like Signature.
func (g *Graph) ExternalInputs(id NodeID) ([]string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.externalInputs(id)
}

func (g *Graph) externalInputs(id NodeID) ([]string, error) {
	if exts, ok := g.extMemo[id]; ok {
		return exts, nil
	}
	node, ok := g.nodes[id]
	if !ok {
		return nil, fmt.Errorf("dag: no node %d", id)
	}
	set := map[string]bool{}
	for i, in := range node.Inv.Inputs {
		parent := NodeID(-1)
		if i < len(node.Parents) {
			parent = node.Parents[i]
		}
		if parent < 0 {
			set[in] = true
			continue
		}
		parentExts, err := g.externalInputs(parent)
		if err != nil {
			return nil, err
		}
		for _, name := range parentExts {
			set[name] = true
		}
	}
	exts := make([]string, 0, len(set))
	for name := range set {
		exts = append(exts, name)
	}
	sort.Strings(exts)
	if g.extMemo == nil {
		g.extMemo = map[NodeID][]string{}
	}
	g.extMemo[id] = exts
	return exts, nil
}

// Clone returns a deep-enough copy of the graph (nodes are copied; Args
// maps are shared, as invocations are immutable by convention). Memoized
// signatures are not carried over; the clone rebuilds its own.
func (g *Graph) Clone() *Graph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := NewGraph()
	out.next = g.next
	for _, id := range g.order {
		src := g.nodes[id]
		node := &Node{ID: src.ID, Inv: src.Inv, Parents: append([]NodeID{}, src.Parents...)}
		out.nodes[id] = node
		out.order = append(out.order, id)
		out.byOutput[node.OutputName()] = id
	}
	return out
}
