package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"datachat/internal/dataset"
)

func TestBuildMatrixBasics(t *testing.T) {
	tbl := dataset.MustNewTable("t",
		dataset.FloatColumn("x", []float64{1, 2, 3, 4}, []bool{false, false, true, false}),
		dataset.StringColumn("cat", []string{"a", "b", "a", "c"}, nil),
		dataset.FloatColumn("y", []float64{10, 20, 30, 40}, nil),
	)
	m, err := BuildMatrix(tbl, []string{"x", "cat"}, "y")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rows) != 3 { // row 2 dropped: null x
		t.Fatalf("rows = %d", len(m.Rows))
	}
	if m.Rows[1][1] != 1 { // "b" encoded as 1
		t.Errorf("encoded cat = %v", m.Rows[1])
	}
	if got := m.Levels["cat"]; len(got) != 3 || got[0] != "a" {
		t.Errorf("levels = %v", got)
	}
	if m.Kept[2] != 3 {
		t.Errorf("kept = %v", m.Kept)
	}
}

func TestBuildMatrixTimeAndErrors(t *testing.T) {
	d1, _ := dataset.ParseTime("2020-01-01")
	d2, _ := dataset.ParseTime("2020-01-02")
	tbl := dataset.MustNewTable("t",
		dataset.TimeColumn("when", []time.Time{d1, d2}, nil),
		dataset.FloatColumn("y", []float64{1, 2}, nil),
	)
	m, err := BuildMatrix(tbl, []string{"when"}, "y")
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows[1][0]-m.Rows[0][0] != 86400 {
		t.Errorf("time delta = %v", m.Rows[1][0]-m.Rows[0][0])
	}
	if _, err := BuildMatrix(tbl, nil, "y"); err == nil {
		t.Error("no features should error")
	}
	if _, err := BuildMatrix(tbl, []string{"missing"}, ""); err == nil {
		t.Error("missing feature should error")
	}
	allNull := dataset.MustNewTable("t",
		dataset.FloatColumn("x", []float64{0, 0}, []bool{true, true}),
	)
	if _, err := BuildMatrix(allNull, []string{"x"}, ""); err == nil {
		t.Error("all-null matrix should error")
	}
}

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := &Matrix{Names: []string{"a", "b"}}
	for i := 0; i < 200; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		m.Rows = append(m.Rows, []float64{a, b})
		m.Target = append(m.Target, 3*a-2*b+5+rng.NormFloat64()*0.01)
	}
	model, err := TrainLinear(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.Weights[0]-3) > 0.05 || math.Abs(model.Weights[1]+2) > 0.05 || math.Abs(model.Bias-5) > 0.1 {
		t.Errorf("weights = %v bias = %v", model.Weights, model.Bias)
	}
	pred := model.Predict(m.Rows)
	if r2 := R2(pred, m.Target); r2 < 0.999 {
		t.Errorf("R2 = %v", r2)
	}
	if model.Kind() != "linear-regression" {
		t.Errorf("kind = %s", model.Kind())
	}
	if model.Explain() == "" {
		t.Error("explain empty")
	}
}

func TestRidgeRescuesCollinearity(t *testing.T) {
	m := &Matrix{Names: []string{"a", "b"}}
	for i := 0; i < 50; i++ {
		x := float64(i)
		m.Rows = append(m.Rows, []float64{x, 2 * x}) // perfectly collinear
		m.Target = append(m.Target, x)
	}
	if _, err := TrainLinear(m, 0); err == nil {
		t.Error("OLS on collinear features should fail")
	}
	model, err := TrainLinear(m, 1e-3)
	if err != nil {
		t.Fatalf("ridge should succeed: %v", err)
	}
	if model.Kind() != "ridge-regression" {
		t.Errorf("kind = %s", model.Kind())
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	m := &Matrix{Names: []string{"a"}, Rows: [][]float64{{1}}}
	if _, err := TrainLinear(m, 0); err == nil {
		t.Error("missing target should error")
	}
	m.Target = []float64{1}
	if _, err := TrainLinear(m, 0); err == nil {
		t.Error("too few rows should error")
	}
}

func TestLogisticRegressionSeparable(t *testing.T) {
	m := &Matrix{Names: []string{"x"}}
	for i := 0; i < 100; i++ {
		x := float64(i)
		m.Rows = append(m.Rows, []float64{x})
		if x >= 50 {
			m.Target = append(m.Target, 1)
		} else {
			m.Target = append(m.Target, 0)
		}
	}
	model, err := TrainLogistic(m, 0.5, 500)
	if err != nil {
		t.Fatal(err)
	}
	pred := model.Predict(m.Rows)
	if acc := Accuracy(pred, m.Target); acc < 0.95 {
		t.Errorf("accuracy = %v", acc)
	}
	if p := model.Predict([][]float64{{0}})[0]; p > 0.2 {
		t.Errorf("P(1 | x=0) = %v", p)
	}
	if p := model.Predict([][]float64{{99}})[0]; p < 0.8 {
		t.Errorf("P(1 | x=99) = %v", p)
	}
}

func TestLogisticRejectsNonBinary(t *testing.T) {
	m := &Matrix{Names: []string{"x"}, Rows: [][]float64{{1}, {2}}, Target: []float64{0, 2}}
	if _, err := TrainLogistic(m, 0.1, 10); err == nil {
		t.Error("non-binary target should error")
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := &Matrix{Names: []string{"x", "y"}}
	centers := [][]float64{{0, 0}, {10, 10}, {0, 10}}
	var wantLabels []int
	for i := 0; i < 300; i++ {
		c := centers[i%3]
		m.Rows = append(m.Rows, []float64{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5})
		wantLabels = append(wantLabels, i%3)
	}
	model, err := TrainKMeans(m, 3, 7, 100)
	if err != nil {
		t.Fatal(err)
	}
	assign := model.Predict(m.Rows)
	// All points from the same true cluster should share a predicted label.
	for c := 0; c < 3; c++ {
		var first float64 = -1
		for i, label := range wantLabels {
			if label != c {
				continue
			}
			if first < 0 {
				first = assign[i]
			} else if assign[i] != first {
				t.Fatalf("cluster %d split across labels", c)
			}
		}
	}
	if model.Inertia > 300 {
		t.Errorf("inertia = %v", model.Inertia)
	}
	if model.Explain() == "" || model.Kind() != "kmeans" {
		t.Error("metadata wrong")
	}
}

func TestKMeansErrors(t *testing.T) {
	m := &Matrix{Names: []string{"x"}, Rows: [][]float64{{1}, {2}}}
	if _, err := TrainKMeans(m, 0, 1, 10); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := TrainKMeans(m, 3, 1, 10); err == nil {
		t.Error("k>n should error")
	}
}

func TestDecisionTreeLearnsStep(t *testing.T) {
	m := &Matrix{Names: []string{"x"}}
	for i := 0; i < 100; i++ {
		x := float64(i)
		m.Rows = append(m.Rows, []float64{x})
		if x < 30 {
			m.Target = append(m.Target, 1)
		} else {
			m.Target = append(m.Target, 9)
		}
	}
	model, err := TrainTree(m, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	pred := model.Predict([][]float64{{10}, {80}})
	if math.Abs(pred[0]-1) > 0.01 || math.Abs(pred[1]-9) > 0.01 {
		t.Errorf("pred = %v", pred)
	}
	if model.Depth() < 1 {
		t.Error("tree should have split")
	}
	if model.Explain() == "" {
		t.Error("explain empty")
	}
}

func TestDecisionTreeConstantTargetStaysLeaf(t *testing.T) {
	m := &Matrix{Names: []string{"x"}}
	for i := 0; i < 20; i++ {
		m.Rows = append(m.Rows, []float64{float64(i)})
		m.Target = append(m.Target, 7)
	}
	model, err := TrainTree(m, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !model.Root.IsLeaf {
		t.Error("constant target should produce a single leaf")
	}
	if got := model.Predict([][]float64{{100}})[0]; got != 7 {
		t.Errorf("pred = %v", got)
	}
}

func TestOutlierZScoreAndIQR(t *testing.T) {
	series := make([]float64, 100)
	rng := rand.New(rand.NewSource(3))
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	series[10] = 50
	series[90] = -40

	for _, method := range []OutlierMethod{ZScore, IQR} {
		report, err := DetectOutliers(series, method, 0)
		if err != nil {
			t.Fatal(err)
		}
		found := map[int]bool{}
		for _, i := range report.Indexes {
			found[i] = true
		}
		if !found[10] || !found[90] {
			t.Errorf("%v missed planted outliers: %v", method, report.Indexes)
		}
		if len(report.Indexes) > 6 {
			t.Errorf("%v flagged too many: %d", method, len(report.Indexes))
		}
		if len(report.Scores) != len(report.Indexes) {
			t.Errorf("%v scores/indexes mismatch", method)
		}
	}
}

func TestOutlierModelResidualRobustToTrend(t *testing.T) {
	// A strong trend fools the plain z-score but not the model-based method.
	series := make([]float64, 120)
	for i := range series {
		series[i] = float64(i) * 2
	}
	series[60] = 500 // planted anomaly
	report, err := DetectOutliers(series, ModelResidual, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range report.Indexes {
		if i == 60 {
			found = true
		}
	}
	if !found {
		t.Errorf("model-residual missed planted outlier: %v", report.Indexes)
	}
}

func TestOutlierErrors(t *testing.T) {
	if _, err := DetectOutliers([]float64{1, 2}, ZScore, 0); err == nil {
		t.Error("too-short series should error")
	}
	if _, err := DetectOutliers([]float64{1, 2, 3}, OutlierMethod(99), 0); err == nil {
		t.Error("unknown method should error")
	}
	// NaNs are skipped, constant series yields no outliers.
	report, err := DetectOutliers([]float64{5, math.NaN(), 5, 5, 5}, ZScore, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Indexes) != 0 {
		t.Errorf("constant series flagged: %v", report.Indexes)
	}
}

func TestForecastTrend(t *testing.T) {
	series := make([]float64, 40)
	for i := range series {
		series[i] = 100 + 2*float64(i)
	}
	f, err := FitForecast(series, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-9 || math.Abs(f.Intercept-100) > 1e-9 {
		t.Errorf("slope=%v intercept=%v", f.Slope, f.Intercept)
	}
	next := f.Next(3)
	want := []float64{180, 182, 184}
	for i := range want {
		if math.Abs(next[i]-want[i]) > 1e-9 {
			t.Errorf("next = %v, want %v", next, want)
		}
	}
	if f.Residual > 1e-9 {
		t.Errorf("residual = %v", f.Residual)
	}
}

func TestForecastSeasonality(t *testing.T) {
	// y = t + 10*[0,1,0,-1][t%4]
	pattern := []float64{0, 10, 0, -10}
	series := make([]float64, 48)
	for i := range series {
		series[i] = float64(i) + pattern[i%4]
	}
	f, err := FitForecast(series, 4)
	if err != nil {
		t.Fatal(err)
	}
	next := f.Next(4)
	for i, got := range next {
		t0 := 48 + i
		want := float64(t0) + pattern[t0%4]
		if math.Abs(got-want) > 0.5 {
			t.Errorf("next[%d] = %v, want %v", i, got, want)
		}
	}
	if f.Explain() == "" || f.Kind() != "time-series-forecast" {
		t.Error("metadata wrong")
	}
}

func TestForecastErrors(t *testing.T) {
	if _, err := FitForecast([]float64{1, 2}, 0); err == nil {
		t.Error("too-short series should error")
	}
	if _, err := FitForecast([]float64{1, 2, 3, 4}, 4); err == nil {
		t.Error("period without two full cycles should error")
	}
	if _, err := FitForecast([]float64{1, math.NaN(), 3}, 0); err == nil {
		t.Error("NaN should error")
	}
}

func TestSplitPartitions(t *testing.T) {
	m := &Matrix{Names: []string{"x"}}
	for i := 0; i < 100; i++ {
		m.Rows = append(m.Rows, []float64{float64(i)})
		m.Target = append(m.Target, float64(i))
		m.Kept = append(m.Kept, i)
	}
	train, test := m.Split(0.25, 5)
	if len(train.Rows) != 75 || len(test.Rows) != 25 {
		t.Fatalf("split sizes = %d/%d", len(train.Rows), len(test.Rows))
	}
	seen := map[float64]bool{}
	for _, r := range append(append([][]float64{}, train.Rows...), test.Rows...) {
		if seen[r[0]] {
			t.Fatal("row appears twice")
		}
		seen[r[0]] = true
	}
	if len(seen) != 100 {
		t.Errorf("rows lost: %d", len(seen))
	}
}

func TestMetricsEdgeCases(t *testing.T) {
	if !math.IsNaN(RMSE(nil, nil)) || !math.IsNaN(MAE([]float64{1}, nil)) {
		t.Error("empty/mismatched metrics should be NaN")
	}
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Errorf("perfect RMSE = %v", got)
	}
	if got := R2([]float64{5, 5}, []float64{5, 5}); got != 1 {
		t.Errorf("constant perfect R2 = %v", got)
	}
	if got := Accuracy([]float64{0.9, 0.1}, []float64{1, 0}); got != 1 {
		t.Errorf("accuracy = %v", got)
	}
}

func TestForecastResidualNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 6 {
			return true
		}
		series := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			series[i] = math.Mod(x, 1000)
		}
		model, err := FitForecast(series, 0)
		if err != nil {
			return false
		}
		return model.Residual >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveLinearSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1 => x = 2, y = 1
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	x, ok := solveLinearSystem(a, b)
	if !ok {
		t.Fatal("solvable system reported singular")
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Errorf("x = %v", x)
	}
	if _, ok := solveLinearSystem([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); ok {
		t.Error("singular system should report failure")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if got := quantile(sorted, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := quantile(sorted, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := quantile(sorted, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := quantile(sorted, 0.25); got != 2 {
		t.Errorf("q25 = %v", got)
	}
	if !math.IsNaN(quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}
