// Package viz implements DataChat's charting substrate: chart specs, data
// binding from tables, the auto-chart selection behind the Visualize skill
// (Figure 1 shows it producing six charts for one request), and a terminal
// renderer so artifacts are viewable from the console.
package viz

import (
	"fmt"
	"math"
	"sort"

	"datachat/internal/dataset"
)

// ChartType enumerates supported chart families.
type ChartType int

// The chart families DataChat's Visualize skill emits.
const (
	Bar ChartType = iota
	Line
	Scatter
	Histogram
	Donut
	Violin
	Bubble
	Heatmap
)

// String names the chart type as shown in chart lists ("donut chart …").
func (c ChartType) String() string {
	switch c {
	case Bar:
		return "bar"
	case Line:
		return "line"
	case Scatter:
		return "scatter"
	case Histogram:
		return "histogram"
	case Donut:
		return "donut"
	case Violin:
		return "violin"
	case Bubble:
		return "bubble"
	case Heatmap:
		return "heatmap"
	default:
		return fmt.Sprintf("chart(%d)", int(c))
	}
}

// Spec declares a chart over table columns.
type Spec struct {
	Type  ChartType
	Title string
	// X is the x-axis column (category, numeric, or time).
	X string
	// Y is the y-axis / measure column (empty means count of records).
	Y string
	// GroupBy splits the data into one series per distinct value.
	GroupBy string
	// SizeBy scales bubble sizes (bubble charts).
	SizeBy string
	// ColorBy colors marks by a category (bubble charts).
	ColorBy string
	// Bins is the histogram bin count (0 selects automatically).
	Bins int
}

// Series is one named data series of a built chart.
type Series struct {
	Name string
	// Labels are categorical x labels (bar, donut, violin, bubble rows).
	Labels []string
	// X and Y are numeric coordinates (line, scatter, histogram edges).
	X []float64
	// Y holds the measure per label or per point.
	Y []float64
	// Size holds bubble sizes when the spec asked for them.
	Size []float64
}

// Chart is a built chart: the spec plus the bound data.
type Chart struct {
	Spec   Spec
	Series []Series
	// RowsUsed counts the table rows that contributed (nulls excluded).
	RowsUsed int
}

// Build binds a spec to a table, computing the series data.
func Build(t *dataset.Table, spec Spec) (*Chart, error) {
	switch spec.Type {
	case Bar, Donut:
		return buildCategorical(t, spec)
	case Histogram:
		return buildHistogram(t, spec)
	case Line, Scatter:
		return buildXY(t, spec)
	case Violin:
		return buildViolin(t, spec)
	case Bubble, Heatmap:
		return buildGrid(t, spec)
	default:
		return nil, fmt.Errorf("viz: unsupported chart type %v", spec.Type)
	}
}

// buildCategorical aggregates a measure (or record count) per category of X.
func buildCategorical(t *dataset.Table, spec Spec) (*Chart, error) {
	xCol, err := t.Column(spec.X)
	if err != nil {
		return nil, err
	}
	var yCol *dataset.Column
	if spec.Y != "" {
		if yCol, err = t.Column(spec.Y); err != nil {
			return nil, err
		}
	}
	sums := map[string]float64{}
	var order []string
	used := 0
	for i := 0; i < xCol.Len(); i++ {
		label := xCol.Value(i).String()
		if _, seen := sums[label]; !seen {
			order = append(order, label)
		}
		if yCol == nil {
			sums[label]++
			used++
			continue
		}
		if f, ok := yCol.Value(i).AsFloat(); ok {
			sums[label] += f
			used++
		} else if _, seen := sums[label]; !seen {
			sums[label] = 0
		}
	}
	sort.Strings(order)
	s := Series{Name: spec.X}
	for _, label := range order {
		s.Labels = append(s.Labels, label)
		s.Y = append(s.Y, sums[label])
	}
	return &Chart{Spec: spec, Series: []Series{s}, RowsUsed: used}, nil
}

func buildHistogram(t *dataset.Table, spec Spec) (*Chart, error) {
	xCol, err := t.Column(spec.X)
	if err != nil {
		return nil, err
	}
	vals, valid := xCol.Floats()
	var xs []float64
	for i, v := range vals {
		if valid[i] {
			xs = append(xs, v)
		}
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("viz: histogram over %q has no numeric values", spec.X)
	}
	bins := spec.Bins
	if bins <= 0 {
		bins = int(math.Ceil(math.Sqrt(float64(len(xs)))))
		if bins > 20 {
			bins = 20
		}
		if bins < 1 {
			bins = 1
		}
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	width := (hi - lo) / float64(bins)
	if width == 0 {
		width = 1
	}
	counts := make([]float64, bins)
	edges := make([]float64, bins)
	for b := range edges {
		edges[b] = lo + width*float64(b)
	}
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	s := Series{Name: spec.X, X: edges, Y: counts}
	for b := range edges {
		s.Labels = append(s.Labels, fmt.Sprintf("[%.4g, %.4g)", edges[b], edges[b]+width))
	}
	return &Chart{Spec: spec, Series: []Series{s}, RowsUsed: len(xs)}, nil
}

func buildXY(t *dataset.Table, spec Spec) (*Chart, error) {
	xCol, err := t.Column(spec.X)
	if err != nil {
		return nil, err
	}
	yCol, err := t.Column(spec.Y)
	if err != nil {
		return nil, err
	}
	var groupCol *dataset.Column
	if spec.GroupBy != "" {
		if groupCol, err = t.Column(spec.GroupBy); err != nil {
			return nil, err
		}
	}
	bySeries := map[string]*Series{}
	var order []string
	used := 0
	for i := 0; i < xCol.Len(); i++ {
		x, okX := numericOrTime(xCol.Value(i))
		y, okY := yCol.Value(i).AsFloat()
		if !okX || !okY {
			continue
		}
		name := spec.Y
		if groupCol != nil {
			name = groupCol.Value(i).String()
		}
		s, seen := bySeries[name]
		if !seen {
			s = &Series{Name: name}
			bySeries[name] = s
			order = append(order, name)
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
		s.Labels = append(s.Labels, xCol.Value(i).String())
		used++
	}
	sort.Strings(order)
	chart := &Chart{Spec: spec, RowsUsed: used}
	for _, name := range order {
		s := bySeries[name]
		if spec.Type == Line {
			sortSeriesByX(s)
		}
		chart.Series = append(chart.Series, *s)
	}
	if len(chart.Series) == 0 {
		return nil, fmt.Errorf("viz: no plottable rows for %s vs %s", spec.X, spec.Y)
	}
	return chart, nil
}

func sortSeriesByX(s *Series) {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	x := make([]float64, len(idx))
	y := make([]float64, len(idx))
	labels := make([]string, len(idx))
	for i, j := range idx {
		x[i], y[i], labels[i] = s.X[j], s.Y[j], s.Labels[j]
	}
	s.X, s.Y, s.Labels = x, y, labels
}

func numericOrTime(v dataset.Value) (float64, bool) {
	if v.Type == dataset.TypeTime {
		return float64(v.T.Unix()), true
	}
	return v.AsFloat()
}

// buildViolin summarizes the distribution of numeric X per category of
// GroupBy (or overall): min, q1, median, q3, max per series.
func buildViolin(t *dataset.Table, spec Spec) (*Chart, error) {
	xCol, err := t.Column(spec.X)
	if err != nil {
		return nil, err
	}
	var groupCol *dataset.Column
	if spec.GroupBy != "" {
		if groupCol, err = t.Column(spec.GroupBy); err != nil {
			return nil, err
		}
	}
	groups := map[string][]float64{}
	var order []string
	used := 0
	for i := 0; i < xCol.Len(); i++ {
		v, ok := xCol.Value(i).AsFloat()
		if !ok {
			continue
		}
		name := spec.X
		if groupCol != nil {
			name = groupCol.Value(i).String()
		}
		if _, seen := groups[name]; !seen {
			order = append(order, name)
		}
		groups[name] = append(groups[name], v)
		used++
	}
	if used == 0 {
		return nil, fmt.Errorf("viz: violin over %q has no numeric values", spec.X)
	}
	sort.Strings(order)
	chart := &Chart{Spec: spec, RowsUsed: used}
	for _, name := range order {
		xs := groups[name]
		sort.Float64s(xs)
		s := Series{
			Name:   name,
			Labels: []string{"min", "q1", "median", "q3", "max"},
			Y: []float64{
				xs[0],
				quantileSorted(xs, 0.25),
				quantileSorted(xs, 0.5),
				quantileSorted(xs, 0.75),
				xs[len(xs)-1],
			},
		}
		chart.Series = append(chart.Series, s)
	}
	return chart, nil
}

// buildGrid bins rows by (X category, Y category) for bubble and heatmap
// charts: one series per X category, Y holds the measure per Y category,
// Size the record count (bubble size in Figure 1).
func buildGrid(t *dataset.Table, spec Spec) (*Chart, error) {
	xCol, err := t.Column(spec.X)
	if err != nil {
		return nil, err
	}
	yCol, err := t.Column(spec.Y)
	if err != nil {
		return nil, err
	}
	var sizeCol *dataset.Column
	if spec.SizeBy != "" {
		if sizeCol, err = t.Column(spec.SizeBy); err != nil {
			return nil, err
		}
	}
	type cell struct {
		count float64
		size  float64
	}
	cells := map[[2]string]*cell{}
	xSet, ySet := map[string]bool{}, map[string]bool{}
	used := 0
	for i := 0; i < xCol.Len(); i++ {
		xv := xCol.Value(i).String()
		yv := yCol.Value(i).String()
		key := [2]string{xv, yv}
		c, ok := cells[key]
		if !ok {
			c = &cell{}
			cells[key] = c
		}
		c.count++
		if sizeCol != nil {
			if f, ok := sizeCol.Value(i).AsFloat(); ok {
				c.size += f
			}
		} else {
			c.size++
		}
		xSet[xv] = true
		ySet[yv] = true
		used++
	}
	xs := sortedKeys(xSet)
	ys := sortedKeys(ySet)
	chart := &Chart{Spec: spec, RowsUsed: used}
	for _, xv := range xs {
		s := Series{Name: xv}
		for _, yv := range ys {
			s.Labels = append(s.Labels, yv)
			if c, ok := cells[[2]string{xv, yv}]; ok {
				s.Y = append(s.Y, c.count)
				s.Size = append(s.Size, c.size)
			} else {
				s.Y = append(s.Y, 0)
				s.Size = append(s.Size, 0)
			}
		}
		chart.Series = append(chart.Series, s)
	}
	return chart, nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Describe returns the one-line summary the chat pane shows for a chart
// ("donut chart using the column at_fault", "violin chart with the x-axis
// party_age", …).
func (c *Chart) Describe() string {
	spec := c.Spec
	switch spec.Type {
	case Donut, Bar:
		return fmt.Sprintf("%s chart using the column %s", spec.Type, spec.X)
	case Histogram:
		return fmt.Sprintf("histogram with the x-axis %s", spec.X)
	case Violin:
		if spec.GroupBy != "" {
			return fmt.Sprintf("violin chart with the x-axis %s, grouped by %s", spec.X, spec.GroupBy)
		}
		return fmt.Sprintf("violin chart with the x-axis %s", spec.X)
	case Bubble:
		extra := ""
		if spec.SizeBy != "" {
			extra += ", sized using: " + spec.SizeBy
		}
		if spec.ColorBy != "" {
			extra += ", colored using: " + spec.ColorBy
		}
		return fmt.Sprintf("bubble chart of %s vs. %s%s", spec.X, spec.Y, extra)
	case Heatmap:
		return fmt.Sprintf("heatmap of %s vs. %s", spec.X, spec.Y)
	case Line:
		if spec.GroupBy != "" {
			return fmt.Sprintf("line chart with the x-axis %s, the y-axis %s, for each %s", spec.X, spec.Y, spec.GroupBy)
		}
		return fmt.Sprintf("line chart with the x-axis %s, the y-axis %s", spec.X, spec.Y)
	default:
		return fmt.Sprintf("%s chart of %s vs. %s", spec.Type, spec.X, spec.Y)
	}
}

// columnKind classifies a column for auto-chart selection.
type columnKind int

const (
	kindCategorical columnKind = iota
	kindNumeric
	kindTemporal
)

func classify(c *dataset.Column) columnKind {
	switch c.Type() {
	case dataset.TypeInt, dataset.TypeFloat:
		// Low-cardinality ints behave like categories.
		if c.Type() == dataset.TypeInt {
			distinct := map[int64]bool{}
			for i := 0; i < c.Len() && len(distinct) <= 12; i++ {
				if !c.IsNull(i) {
					distinct[c.Value(i).I] = true
				}
			}
			if len(distinct) <= 12 {
				return kindCategorical
			}
		}
		return kindNumeric
	case dataset.TypeTime:
		return kindTemporal
	default:
		return kindCategorical
	}
}

// AutoCharts implements the Visualize skill's chart fan-out: given a KPI
// column and grouping columns it returns the chart specs DataChat would
// offer — the behaviour in Figure 1 where "Visualize at_fault by party_age,
// party_sex, cellphone_in_use" yields six charts.
func AutoCharts(t *dataset.Table, kpi string, by []string) ([]Spec, error) {
	kpiCol, err := t.Column(kpi)
	if err != nil {
		return nil, err
	}
	var specs []Spec
	// 1. The KPI alone: donut for categories, histogram for numbers.
	switch classify(kpiCol) {
	case kindNumeric:
		specs = append(specs, Spec{Type: Histogram, X: kpi, Title: "Distribution of " + kpi})
	default:
		specs = append(specs, Spec{Type: Donut, X: kpi, Title: "Share of " + kpi})
	}
	// 2. KPI against each grouping column.
	for _, g := range by {
		gCol, err := t.Column(g)
		if err != nil {
			return nil, err
		}
		switch {
		case classify(gCol) == kindNumeric && classify(kpiCol) == kindCategorical:
			specs = append(specs, Spec{Type: Violin, X: g, GroupBy: kpi,
				Title: fmt.Sprintf("%s by %s", g, kpi)})
		case classify(gCol) == kindTemporal:
			specs = append(specs, Spec{Type: Line, X: g, Y: kpi,
				Title: fmt.Sprintf("%s over %s", kpi, g)})
		case classify(kpiCol) == kindNumeric:
			specs = append(specs, Spec{Type: Bar, X: g, Y: kpi,
				Title: fmt.Sprintf("%s by %s", kpi, g)})
		default:
			specs = append(specs, Spec{Type: Donut, X: g, GroupBy: kpi,
				Title: fmt.Sprintf("%s split by %s", kpi, g)})
		}
	}
	// 3. Pairwise grouping columns as bubble grids, colored by the KPI.
	// The fan-out is capped at six charts, matching the Figure 1 behaviour
	// ("Here are 6 charts to visualize the data").
	const maxCharts = 6
	for i := 0; i < len(by) && len(specs) < maxCharts; i++ {
		for j := i + 1; j < len(by) && len(specs) < maxCharts; j++ {
			specs = append(specs, Spec{Type: Bubble, X: by[i], Y: by[j], ColorBy: kpi,
				Title: fmt.Sprintf("%s vs. %s, colored using: %s", by[i], by[j], kpi)})
		}
	}
	if len(specs) > maxCharts {
		specs = specs[:maxCharts]
	}
	return specs, nil
}
