package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"datachat/internal/cloud"
	"datachat/internal/dataset"
	"datachat/internal/faults"
	"datachat/internal/sqlengine"
)

// The faults experiment measures the robustness layer: the differential
// query corpus runs against a fault-injected cloud database at a grid of
// transient-fault rates with retries enabled, and reports recovered-query
// throughput plus the recovery invariant (every answer exact vs the
// fault-free run). All backoff waits on a virtual clock, so wall-clock
// throughput reflects work, not sleeping.

// FaultsCase is one fault-rate cell of the grid.
type FaultsCase struct {
	Rate            float64 `json:"transient_rate"`
	Queries         int     `json:"queries"`
	Exact           int     `json:"exact_results"`
	Errored         int     `json:"errored_both"`
	Divergent       int     `json:"divergent"`
	Recovered       int     `json:"recovered_queries"`
	Retries         int     `json:"total_retries"`
	TransientFaults int     `json:"transient_faults"`
	PermanentFaults int     `json:"permanent_faults"`
	VirtualBackoffS float64 `json:"virtual_backoff_seconds"`
	WallSeconds     float64 `json:"wall_seconds"`
	QueriesPerS     float64 `json:"queries_per_sec"`
}

// FaultsResult is the full fault-rate grid.
type FaultsResult struct {
	Cases []FaultsCase `json:"cases"`
}

// faultsCatalog adapts a cloud DB (possibly fault-wrapped) into a
// sqlengine.Catalog.
type faultsCatalog struct{ db cloud.DB }

func (c faultsCatalog) Table(name string) (*dataset.Table, error) { return c.db.Table(name) }

// Faults runs the corpus at each transient-fault rate and checks every
// retried answer against the fault-free reference.
func Faults(queryCount int, rates []float64, seed int64) (*FaultsResult, error) {
	rng := rand.New(rand.NewSource(seed))
	db := cloud.NewDatabase("wh", cloud.DefaultPricing, 64)
	for _, tbl := range sqlengine.CorpusTables(rng, 200, 60) {
		if err := db.CreateTable(tbl); err != nil {
			return nil, err
		}
	}
	queries := sqlengine.CorpusQueries(rng, queryCount)
	stmts := make([]*sqlengine.SelectStmt, len(queries))
	clean := make([]*dataset.Table, len(queries))
	cleanErr := make([]error, len(queries))
	for i, q := range queries {
		stmt, err := sqlengine.Parse(q)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", q, err)
		}
		stmts[i] = stmt
		clean[i], cleanErr[i] = sqlengine.ExecStmt(faultsCatalog{db}, stmt)
	}

	result := &FaultsResult{}
	for _, rate := range rates {
		clock := faults.NewVirtualClock(time.Unix(0, 0))
		inj := faults.NewInjector(faults.Schedule{Seed: seed, TransientRate: rate}, clock)
		catalog := faultsCatalog{faults.WrapDB(db, inj)}
		pol := faults.RetryPolicy{MaxAttempts: 16, BaseDelay: 10 * time.Millisecond,
			MaxDelay: time.Second, Multiplier: 2, JitterFrac: 0.3, Seed: seed}

		c := FaultsCase{Rate: rate, Queries: len(queries)}
		start := time.Now()
		for i := range queries {
			got, stats, err := faults.Do(context.Background(), clock, pol, time.Time{}, nil,
				func() (*dataset.Table, error) { return sqlengine.ExecStmt(catalog, stmts[i]) })
			c.Retries += stats.Attempts - 1
			if stats.Attempts > 1 {
				c.Recovered++
			}
			switch {
			case (err == nil) != (cleanErr[i] == nil):
				c.Divergent++
			case err != nil:
				c.Errored++
			case got.Equal(clean[i]):
				c.Exact++
			default:
				c.Divergent++
			}
		}
		wall := time.Since(start)
		c.WallSeconds = wall.Seconds()
		if wall > 0 {
			c.QueriesPerS = float64(len(queries)) / wall.Seconds()
		}
		c.TransientFaults, c.PermanentFaults = inj.Counts()
		c.VirtualBackoffS = clock.Slept().Seconds()
		if c.Divergent > 0 {
			return nil, fmt.Errorf("faults: %d divergent answers at rate %v — recovery changed results", c.Divergent, rate)
		}
		result.Cases = append(result.Cases, c)
	}
	return result, nil
}

// Report renders the grid as the EXPERIMENTS.md table.
func (r *FaultsResult) Report() string {
	var b strings.Builder
	b.WriteString("Fault injection: retried corpus vs fault-free reference (all answers exact)\n")
	b.WriteString("  rate  queries  exact  errored  recovered  retries  faults(t/p)  backoff(virt)  queries/s\n")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "  %-5s %-8d %-6d %-8d %-10d %-8d %-12s %-14s %.0f\n",
			fmt.Sprintf("%.0f%%", c.Rate*100), c.Queries, c.Exact, c.Errored, c.Recovered, c.Retries,
			fmt.Sprintf("%d/%d", c.TransientFaults, c.PermanentFaults),
			time.Duration(c.VirtualBackoffS*float64(time.Second)).Round(time.Millisecond).String(),
			c.QueriesPerS)
	}
	return b.String()
}

// JSON renders the result for BENCH_faults.json.
func (r *FaultsResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
