package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"datachat/internal/dataset"
	"datachat/internal/nl2code"
	"datachat/internal/skills"
	"datachat/internal/spider"
)

// nl2codeBench builds the NL2Code pipeline exactly the way the
// examples/nl2code walkthrough does: the spider domains, the §4.3 example
// library drawn from the non-custom domains, and the simulated generator.
func nl2codeBench() (*skills.Registry, []*spider.Domain, *nl2code.System) {
	reg := skills.NewRegistry()
	domains := spider.Domains(1)
	var examples []*nl2code.LibraryExample
	for _, ex := range spider.GenerateLibrary(domains, 99, 8) {
		examples = append(examples, &nl2code.LibraryExample{
			Question: ex.Question, Program: ex.Gold, Domain: ex.Domain,
		})
	}
	return reg, domains, nl2code.NewSystem(reg, nl2code.NewLibrary(examples))
}

// domainFixtures renders every table of a spider domain as an inline CSV
// fixture, in sorted order so case construction is deterministic.
func domainFixtures(t *testing.T, d *spider.Domain) []Fixture {
	t.Helper()
	names := make([]string, 0, len(d.Tables))
	for name := range d.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Fixture, 0, len(names))
	for _, name := range names {
		var b bytes.Buffer
		if err := dataset.WriteCSV(d.Tables[name], &b); err != nil {
			t.Fatalf("rendering fixture %s: %v", name, err)
		}
		out = append(out, Fixture{Name: name, CSV: b.String()})
	}
	return out
}

// caseFromProgram converts a checked NL2Code program into a recipe-dialect
// conformance case rooted at the domain's tables, so the generated code is
// held to the same five-route agreement the hand-written corpus is.
func caseFromProgram(t *testing.T, name string, d *spider.Domain, program []skills.Invocation) *Case {
	t.Helper()
	program = rootAtUseDataset(program)
	steps := make([]struct {
		Skill  string      `json:"skill"`
		Inputs []string    `json:"inputs,omitempty"`
		Output string      `json:"output,omitempty"`
		Args   skills.Args `json:"args,omitempty"`
	}, len(program))
	for i, inv := range program {
		steps[i].Skill = inv.Skill
		steps[i].Inputs = inv.Inputs
		steps[i].Output = inv.Output
		steps[i].Args = inv.Args
	}
	body, err := json.MarshalIndent(steps, "", "  ")
	if err != nil {
		t.Fatalf("encoding program: %v", err)
	}
	c := &Case{
		Name:         name,
		Tags:         []string{"nl2code"},
		Dialect:      "recipe",
		Body:         string(body),
		Fixtures:     domainFixtures(t, d),
		ExpectCharts: -1,
	}
	if err := Lower(c); err != nil {
		t.Fatalf("lowering %s: %v", name, err)
	}
	return c
}

// rootAtUseDataset rewrites a program so every raw dataset reference goes
// through an explicit UseDataset step, the way a session user would root a
// pipeline. NL2Code programs name domain tables directly in Inputs; without
// this the GEL route (which must inject its own "Use the dataset …" switch)
// consolidates SQL over a node name while the reference quotes the raw
// table, and the result messages diverge on a naming artifact rather than a
// real disagreement. The injected outputs use the s-number namespace the
// message canonicalizer already folds.
func rootAtUseDataset(program []skills.Invocation) []skills.Invocation {
	alias := map[string]string{} // raw table or original output -> s-name
	n := 0
	next := func() string {
		n++
		return fmt.Sprintf("s%d", 100+n)
	}
	var out []skills.Invocation
	for _, inv := range program {
		inv.Inputs = append([]string(nil), inv.Inputs...)
		for j, in := range inv.Inputs {
			a, ok := alias[in]
			if !ok { // a raw table: root it
				a = next()
				alias[in] = a
				out = append(out, skills.Invocation{
					Skill: "UseDataset", Output: a, Args: skills.Args{"dataset": in},
				})
			}
			// Join conditions qualify columns by the raw table name;
			// requalify them by the alias alongside the input itself.
			if on, ok := inv.Args["on"].(string); ok {
				args := skills.Args{}
				for k, v := range inv.Args {
					args[k] = v
				}
				args["on"] = strings.ReplaceAll(on, in+".", a+".")
				inv.Args = args
			}
			inv.Inputs[j] = a
		}
		// Intermediate outputs ("filtered", "joined", …) can surface in the
		// consolidated SQL the result message quotes; keep them in the
		// s-number namespace the canonicalizer folds as well.
		a := next()
		alias[inv.Output] = a
		inv.Output = a
		out = append(out, inv)
	}
	return out
}

// TestNL2CodeEvalConformance runs the §4.7 eval protocol over a balanced
// sample of the Spider-like dev split and wires its two guarantees into
// tier-1:
//
//  1. execution accuracy on the sampled set must hold its floor (a
//     retrieval, prompting, checker, or semantic-layer regression that
//     drops generation quality fails here, not in a nightly eval), and
//  2. every correctly-generated program must ALSO pass the five-route
//     conformance check — the code the NL front end emits is replayed as a
//     recipe, rendered to GEL and Python, phrased, and pushed over the
//     wire, and all routes must agree cell for cell.
//
// Together they pin that NL2Code output is not merely accurate in the
// eval harness but executable-identically on every product surface.
func TestNL2CodeEvalConformance(t *testing.T) {
	reg, domains, sys := nl2codeBench()
	byName := map[string]*spider.Domain{}
	for _, d := range domains {
		byName[d.Name] = d
	}

	perZone := 12
	if testing.Short() {
		perZone = 4
	}
	taken := map[spider.Zone]int{}
	hits := map[spider.Zone][2]int{}
	type correct struct {
		ex      *spider.Example
		program []skills.Invocation
	}
	var convertible []correct
	for _, ex := range spider.GenerateDev(domains, 42) {
		if taken[ex.Zone] >= perZone {
			continue
		}
		taken[ex.Zone]++
		d := byName[ex.Domain]
		resp, err := sys.Generate(nl2code.Request{Question: ex.Question, Tables: d.Tables, Layer: d.Layer})
		ea := 0
		if err == nil {
			ea, err = nl2code.ExecutionAccuracy(reg, d.Tables, ex.Gold, resp.Program)
			if err != nil {
				t.Fatalf("%s: %v", ex.ID, err)
			}
		}
		cur := hits[ex.Zone]
		cur[0] += ea
		cur[1]++
		hits[ex.Zone] = cur
		if ea == 1 {
			convertible = append(convertible, correct{ex: ex, program: resp.Program})
		}
	}

	rate := func(z spider.Zone) float64 {
		c := hits[z]
		if c[1] == 0 {
			return 0
		}
		return float64(c[0]) / float64(c[1])
	}
	if ll := rate(spider.LowLow); ll < 0.6 {
		t.Errorf("dev (low,low) execution accuracy = %.2f, floor is 0.60", ll)
	}
	var correctTotal, total int
	for _, c := range hits {
		correctTotal += c[0]
		total += c[1]
	}
	if overall := float64(correctTotal) / float64(total); overall < 0.35 {
		t.Errorf("overall execution accuracy = %.2f over %d examples, floor is 0.35", overall, total)
	}
	if len(convertible) < perZone {
		t.Fatalf("only %d/%d sampled generations were correct; too few to conformance-check", len(convertible), total)
	}

	// Five-route conformance of the generated code. Every correct program
	// is eligible; cap the conversions to keep the tier-1 wall clock flat.
	limit := perZone
	if len(convertible) < limit {
		limit = len(convertible)
	}
	for _, cv := range convertible[:limit] {
		cv := cv
		t.Run(cv.ex.ID, func(t *testing.T) {
			t.Parallel()
			d := byName[cv.ex.Domain]
			c := caseFromProgram(t, fmt.Sprintf("nl2code-%s", cv.ex.ID), d, cv.program)
			if _, err := Verify(c); err != nil {
				t.Fatalf("generated program for %q fails conformance: %v\nprogram body:\n%s",
					cv.ex.Question, err, c.Body)
			}
		})
	}
}
