package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"datachat/internal/faults"
	"datachat/internal/skills"
)

// TestHammerOneSessionThroughBusyRetries: N goroutines hammer a single
// platform session with retry-on-contention enabled. Every request must
// eventually win the §2.4 lock — no lost updates (the synchronized history
// records all N), no deadlocks, and every output is materialized. All
// backoff waiting happens on a virtual clock.
func TestHammerOneSessionThroughBusyRetries(t *testing.T) {
	p := New()
	s, err := p.CreateSession("hammer", "user")
	if err != nil {
		t.Fatal(err)
	}
	s.Context().Datasets["people"] = seedTable()
	s.SetBusyRetry(faults.RetryPolicy{MaxAttempts: 1 << 20, BaseDelay: time.Millisecond,
		MaxDelay: 4 * time.Millisecond, Multiplier: 2, JitterFrac: 0.3, Seed: 5},
		faults.NewVirtualClock(time.Unix(0, 0)))

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = s.Request("user", skills.Invocation{Skill: "KeepRows",
				Inputs: []string{"people"},
				Args:   skills.Args{"condition": fmt.Sprintf("v > %d", i%7)},
				Output: fmt.Sprintf("out%d", i)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d lost despite retries: %v", i, err)
		}
	}
	hist := s.History()
	if len(hist) != n {
		t.Fatalf("history records %d requests, want %d (lost updates)", len(hist), n)
	}
	for _, h := range hist {
		if h.Error != "" {
			t.Errorf("history entry failed: %+v", h)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := s.Context().Dataset(fmt.Sprintf("out%d", i)); err != nil {
			t.Errorf("output out%d not materialized: %v", i, err)
		}
	}
	t.Logf("%d requests serialized through %d busy retries", n, s.BusyRetries())
}
