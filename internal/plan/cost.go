package plan

import (
	"strings"
	"time"

	"datachat/internal/cloud"
	"datachat/internal/dataset"
)

// The cost model annotates every plan node with estimated output
// cardinality, bytes, cloud scan bytes, simulated latency and dollar cost.
// Estimates seed from the cloud meter's pricing (§3 block-sampling
// economics give the units: per-byte scan dollars, per-MB scan latency) and
// from approximate sizes of external session datasets, then refine with
// observed output stats fed back by the executor through the stats
// registry, keyed by canonical fingerprint. Passes read the annotations to
// make cost-aware decisions — join reordering minimizes estimated
// intermediate cardinality, budget substitution compares estimated scan
// bytes against the per-request budget — and EXPLAIN renders them.

// defaultRows is the cardinality assumed for inputs the model knows nothing
// about; deliberately modest so unknown pipelines never trip the budget.
const defaultRows = 1000

// defaultRowBytes approximates the width of a row of unknown schema.
const defaultRowBytes = 32

// TableEstimate is Env.TableStats' answer: the size and pricing of a
// connected cloud table.
type TableEstimate struct {
	Rows    int64
	Bytes   int64
	Pricing cloud.Pricing
}

// NodeCost is one node's estimated cost annotation.
type NodeCost struct {
	// Rows and Bytes estimate the node's output.
	Rows  int64 `json:"rows"`
	Bytes int64 `json:"bytes"`
	// ScanBytes estimates cloud bytes this node scans (0 for everything but
	// cloud reads); Latency and Dollars price that scan via the meter model.
	ScanBytes int64         `json:"scan_bytes,omitempty"`
	Latency   time.Duration `json:"latency_ns,omitempty"`
	Dollars   float64       `json:"dollars,omitempty"`
	// Source says where the estimate came from: "table-stats" (cloud
	// catalog), "dataset" (session dataset size), "observed" (stats
	// registry feedback), "cached" (plan-time cache hit), or "heuristic".
	Source string `json:"source,omitempty"`
}

// PlanCost aggregates node costs over the whole plan: scan totals over
// non-cached nodes, output size from the target.
type PlanCost struct {
	Rows        int64         `json:"rows"`
	Bytes       int64         `json:"bytes"`
	ScanBytes   int64         `json:"scan_bytes"`
	Latency     time.Duration `json:"latency_ns"`
	Dollars     float64       `json:"dollars"`
	Substituted int           `json:"substituted,omitempty"`
}

// EstimateCosts annotates every node (and fragment) with cost estimates and
// stores the whole-plan aggregate on the plan. It returns nil when the env
// carries no stats hooks; estimation is cheap enough to re-run after every
// pass. Nodes are visited in plan order, which is topological, so parent
// estimates are always available.
func EstimateCosts(p *Plan, env *Env) *PlanCost {
	if !env.Costed() {
		return nil
	}
	total := &PlanCost{}
	for _, n := range p.Nodes {
		c := estimateNode(p, env, n)
		n.Cost = c
		if !n.Cached {
			total.ScanBytes = satAdd64(total.ScanBytes, c.ScanBytes)
			total.Latency = satAddDur(total.Latency, c.Latency)
			total.Dollars += c.Dollars
		}
		if n.Substituted {
			total.Substituted++
		}
	}
	if t := p.Node(p.Target); t != nil && t.Cost != nil {
		total.Rows, total.Bytes = t.Cost.Rows, t.Cost.Bytes
	}
	for i := range p.Fragments {
		f := &p.Fragments[i]
		f.EstBaseRows = 0
		if f.Base.Node == External {
			if rows, _, ok := extStats(env, f.Base.Name); ok {
				f.EstBaseRows = rows
			}
		} else if base := p.Node(f.Base.Node); base != nil && base.Cost != nil {
			f.EstBaseRows = base.Cost.Rows
		}
	}
	p.Cost = total
	return total
}

// extStats sizes an external input via the DatasetStats hook.
func extStats(env *Env, name string) (rows, bytes int64, ok bool) {
	if env.DatasetStats == nil {
		return 0, 0, false
	}
	return env.DatasetStats(name)
}

// estimateNode computes one node's cost from its inputs and skill-specific
// selectivity heuristics, then lets observed stats override the output
// cardinality and a plan-time cache hit zero the scan.
func estimateNode(p *Plan, env *Env, n *Node) *NodeCost {
	c := &NodeCost{Source: "heuristic"}

	inRows := make([]int64, 0, len(n.Inputs))
	inBytes := make([]int64, 0, len(n.Inputs))
	known := false
	for _, in := range n.Inputs {
		r, b := int64(defaultRows), int64(defaultRows*defaultRowBytes)
		if in.Node == External {
			if rr, bb, ok := extStats(env, in.Name); ok {
				r, b, known = rr, bb, true
			}
		} else if parent := p.Node(in.Node); parent != nil && parent.Cost != nil {
			r, b = parent.Cost.Rows, parent.Cost.Bytes
			known = true
		}
		inRows = append(inRows, r)
		inBytes = append(inBytes, b)
	}
	var maxRows, sumRows, sumBytes int64
	for i := range inRows {
		if inRows[i] > maxRows {
			maxRows = inRows[i]
		}
		sumRows = satAdd64(sumRows, inRows[i])
		sumBytes = satAdd64(sumBytes, inBytes[i])
	}
	if len(n.Inputs) > 0 && known {
		c.Source = "dataset"
	}

	switch strings.ToLower(n.Skill) {
	case "loadtable", "sampletable":
		estimateScan(env, n, c)
	case "keeprows", "droprows":
		c.Rows = maxRows/3 + 1
		c.Bytes = sumBytes/3 + 1
	case "limitrows":
		count := int64(n.Args.IntOr("count", defaultRows))
		c.Rows = maxRows
		c.Bytes = sumBytes
		if count >= 0 && count < maxRows && maxRows > 0 {
			c.Rows = count
			c.Bytes = int64(float64(sumBytes) * float64(count) / float64(maxRows))
		}
	case "keepcolumns":
		c.Rows = maxRows
		c.Bytes = sumBytes/2 + 1
	case "dropcolumns":
		c.Rows = maxRows
		c.Bytes = (sumBytes*4)/5 + 1
	case "compute":
		if len(n.Args.StringListOr("for_each")) > 0 {
			c.Rows = maxRows/4 + 1
		} else {
			c.Rows = 1
		}
		c.Bytes = c.Rows * defaultRowBytes
	case "pivot":
		c.Rows = maxRows/4 + 1
		c.Bytes = c.Rows * defaultRowBytes
	case "joindatasets":
		kind := strings.ToLower(n.Args.StringOr("kind", "inner"))
		c.Rows, c.Bytes = joinEstimate(kind, inRows, inBytes)
	case "concatenate":
		c.Rows = sumRows
		c.Bytes = sumBytes
	default:
		if len(n.Inputs) == 0 {
			c.Rows, c.Bytes = defaultRows, defaultRows*defaultRowBytes
		} else {
			c.Rows, c.Bytes = maxRows, sumBytes
		}
	}

	if env.Observed != nil && n.Fingerprint != "" {
		if obs, ok := env.Observed(n.Fingerprint); ok {
			c.Rows, c.Bytes = obs.Rows, obs.Bytes
			c.Source = "observed"
		}
	}
	if n.Cached {
		c.ScanBytes, c.Latency, c.Dollars = 0, 0, 0
		c.Source = "cached"
		if n.Pinned != nil && n.Pinned.Table != nil {
			c.Rows = int64(n.Pinned.Table.NumRows())
			c.Bytes = ApproxTableBytes(n.Pinned.Table)
		}
	}
	if c.Rows < 0 {
		c.Rows = 0
	}
	if c.Bytes < 0 {
		c.Bytes = 0
	}
	return c
}

// estimateScan costs a LoadTable/SampleTable node from catalog stats: the
// scan reads (rate ×) the table bytes, the optional pushdown condition and
// columns narrow the output but not the scan (blocks are still read).
func estimateScan(env *Env, n *Node, c *NodeCost) {
	db := n.Args.StringOr("database", "")
	table := n.Args.StringOr("table", "")
	if env.TableStats == nil {
		c.Rows, c.Bytes = defaultRows, defaultRows*defaultRowBytes
		return
	}
	ts, ok := env.TableStats(db, table)
	if !ok {
		c.Rows, c.Bytes = defaultRows, defaultRows*defaultRowBytes
		return
	}
	c.Source = "table-stats"
	rows, bytes := ts.Rows, ts.Bytes
	if strings.EqualFold(n.Skill, "sampletable") {
		rate := n.Args.FloatOr("rate", 1)
		if rate > 0 && rate < 1 {
			rows = int64(float64(rows)*rate) + 1
			bytes = int64(float64(bytes)*rate) + 1
		}
	}
	c.ScanBytes = bytes
	c.Latency = cloud.ScanLatency(bytes, ts.Pricing)
	c.Dollars = cloud.ScanCost(bytes, ts.Pricing)
	if _, hasCond := n.Args["condition"]; hasCond {
		rows = rows/3 + 1
		bytes = bytes/3 + 1
	}
	if _, hasCols := n.Args["columns"]; hasCols {
		bytes = bytes/2 + 1
	}
	c.Rows, c.Bytes = rows, bytes
}

// joinEstimate sizes a two-input join: cross joins multiply, everything
// else assumes a foreign-key-ish equi-join bounded by the larger side.
func joinEstimate(kind string, inRows, inBytes []int64) (rows, bytes int64) {
	if len(inRows) != 2 {
		for i := range inRows {
			if inRows[i] > rows {
				rows = inRows[i]
			}
			bytes = satAdd64(bytes, inBytes[i])
		}
		return rows, bytes
	}
	l, r := inRows[0], inRows[1]
	switch kind {
	case "cross":
		rows = satMul64(l, r)
	default:
		rows = l
		if r > rows {
			rows = r
		}
	}
	return rows, satAdd64(inBytes[0], inBytes[1])
}

// AdaptiveWorkers picks a morsel worker count from an estimated base
// cardinality: one worker per 50k input rows, at least one, capped at the
// available processors. Unknown cardinality (<= 0) keeps the full fan-out —
// the pre-cost-model behavior.
func AdaptiveWorkers(estRows int64, procs int) int {
	if procs < 1 {
		procs = 1
	}
	if estRows <= 0 {
		return procs
	}
	w := int(1 + estRows/50_000)
	if w > procs {
		w = procs
	}
	return w
}

// ApproxTableBytes estimates a table's in-memory payload size. Fixed-width
// columns count exactly; string columns are sized from a bounded sample of
// rows so the estimate stays O(columns) however large the table is.
func ApproxTableBytes(t *dataset.Table) int64 {
	if t == nil {
		return 0
	}
	rows := t.NumRows()
	if rows == 0 {
		return 0
	}
	sample := rows
	if sample > 64 {
		sample = 64
	}
	var perRow int64
	for _, c := range t.Columns() {
		switch c.Type() {
		case dataset.TypeInt, dataset.TypeFloat, dataset.TypeTime:
			perRow += 8
		case dataset.TypeBool:
			perRow++
		case dataset.TypeString:
			var seen int64
			for i := 0; i < sample; i++ {
				if !c.IsNull(i) {
					seen += int64(len(c.Value(i).S))
				}
			}
			perRow += 16 + seen/int64(sample)
		default:
			perRow += 8
		}
	}
	return satMul64(perRow, int64(rows))
}

func satAdd64(a, b int64) int64 {
	s := a + b
	if a > 0 && b > 0 && s < 0 {
		return 1<<63 - 1
	}
	return s
}

func satAddDur(a, b time.Duration) time.Duration {
	s := a + b
	if a > 0 && b > 0 && s < 0 {
		return time.Duration(1<<63 - 1)
	}
	return s
}

func satMul64(a, b int64) int64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	if a > (1<<63-1)/b {
		return 1<<63 - 1
	}
	return a * b
}
