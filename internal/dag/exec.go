package dag

import (
	"fmt"

	"datachat/internal/skills"
	"datachat/internal/sqlengine"
)

// Stats counts what an execution did, for transparency and benchmarks.
type Stats struct {
	// TasksRun is the number of execution tasks dispatched.
	TasksRun int
	// SQLTasks counts consolidated SQL tasks; DirectTasks counts direct
	// skill applications.
	SQLTasks, DirectTasks int
	// NodesConsolidated counts skill nodes folded into SQL tasks.
	NodesConsolidated int
	// QueryBlocks sums the SELECT-block counts of executed SQL tasks — the
	// §2.2 flatness measure.
	QueryBlocks int
	// CacheHits counts nodes served from the sub-DAG cache.
	CacheHits int
}

// Executor compiles and runs DAGs against a skill context. It owns the
// sub-DAG result cache, which persists across Run calls so shared prefixes
// of successive requests are reused (§2.2).
type Executor struct {
	// Registry resolves skill definitions.
	Registry *skills.Registry
	// Ctx is the session execution environment.
	Ctx *skills.Context
	// Consolidate enables merging relational chains into single SQL tasks
	// (on by default via NewExecutor; turn off for the naive baseline).
	Consolidate bool
	// UseCache enables the sub-DAG result cache.
	UseCache bool

	cache map[string]*skills.Result
	stats Stats
}

// NewExecutor returns an executor with consolidation and caching enabled.
func NewExecutor(reg *skills.Registry, ctx *skills.Context) *Executor {
	return &Executor{
		Registry:    reg,
		Ctx:         ctx,
		Consolidate: true,
		UseCache:    true,
		cache:       map[string]*skills.Result{},
	}
}

// Stats returns cumulative execution statistics.
func (e *Executor) Stats() Stats { return e.stats }

// ResetStats zeroes the statistics counters.
func (e *Executor) ResetStats() { e.stats = Stats{} }

// InvalidateCache clears the sub-DAG cache (used after data refreshes).
func (e *Executor) InvalidateCache() {
	e.cache = map[string]*skills.Result{}
}

// Run executes the DAG up to target and returns its result. Intermediate
// results are materialized into the context under their output names so
// later requests (and sibling branches) can reference them.
func (e *Executor) Run(g *Graph, target NodeID) (*skills.Result, error) {
	needed, err := g.Ancestors(target)
	if err != nil {
		return nil, err
	}
	consumers := g.consumers(needed)
	results := map[NodeID]*skills.Result{}
	var compute func(id NodeID) (*skills.Result, error)

	// materialize publishes a node result into the session datasets.
	materialize := func(id NodeID, res *skills.Result) {
		node := g.nodes[id]
		results[id] = res
		if res.Table != nil {
			e.Ctx.Datasets[node.OutputName()] = res.Table.WithName(node.OutputName())
		}
	}

	compute = func(id NodeID) (*skills.Result, error) {
		if res, done := results[id]; done {
			return res, nil
		}
		sig, err := g.Signature(id)
		if err != nil {
			return nil, err
		}
		if e.UseCache {
			if res, hit := e.cache[sig]; hit {
				e.stats.CacheHits++
				materialize(id, res)
				return res, nil
			}
		}
		node := g.nodes[id]

		// Try consolidating a relational chain ending at this node.
		if e.Consolidate {
			if res, ok, err := e.tryConsolidated(g, id, consumers, compute, materialize); err != nil {
				return nil, err
			} else if ok {
				if e.UseCache {
					e.cache[sig] = res
				}
				return res, nil
			}
		}

		// Direct execution: compute parents first.
		for i, p := range node.Parents {
			if p < 0 {
				if _, err := e.Ctx.Dataset(node.Inv.Inputs[i]); err != nil {
					return nil, fmt.Errorf("dag: node %d: %w", id, err)
				}
				continue
			}
			if _, err := compute(p); err != nil {
				return nil, err
			}
		}
		inv := e.rewiredInvocation(g, node)
		res, err := e.Registry.Execute(e.Ctx, inv)
		if err != nil {
			return nil, fmt.Errorf("dag: node %d (%s): %w", id, node.Inv.Skill, err)
		}
		e.stats.TasksRun++
		e.stats.DirectTasks++
		materialize(id, res)
		if e.UseCache {
			e.cache[sig] = res
		}
		return res, nil
	}
	return compute(target)
}

// rewiredInvocation replaces parent-input names with the parents' output
// names (they are the same by construction, but Output defaults resolve
// here).
func (e *Executor) rewiredInvocation(g *Graph, node *Node) skills.Invocation {
	inv := node.Inv
	if len(node.Parents) > 0 {
		inputs := append([]string{}, inv.Inputs...)
		for i, p := range node.Parents {
			if p >= 0 {
				inputs[i] = g.nodes[p].OutputName()
			}
		}
		inv.Inputs = inputs
	}
	return inv
}

// tryConsolidated attempts to execute the maximal single-input relational
// chain ending at id as one SQL task. It reports ok=false when id is not
// relational or the chain is trivial to the point that direct execution is
// equivalent (a single non-mergeable node still consolidates fine — one
// node, one block).
func (e *Executor) tryConsolidated(
	g *Graph,
	id NodeID,
	consumers map[NodeID][]NodeID,
	compute func(NodeID) (*skills.Result, error),
	materialize func(NodeID, *skills.Result),
) (*skills.Result, bool, error) {
	// Collect the chain bottom-up: id, its relational parent, and so on,
	// as long as each link is single-input relational and feeds only the
	// next chain node.
	var chain []NodeID
	cur := id
	for {
		node := g.nodes[cur]
		def, err := e.Registry.Lookup(node.Inv.Skill)
		if err != nil {
			return nil, false, err
		}
		if def.MergeSQL == nil || len(node.Parents) != 1 {
			break
		}
		chain = append(chain, cur)
		parent := node.Parents[0]
		if parent < 0 {
			break
		}
		if len(consumers[parent]) != 1 {
			break // shared sub-DAG: materialize the parent for everyone
		}
		cur = parent
	}
	if len(chain) == 0 {
		return nil, false, nil
	}
	// Reverse into execution order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	head := g.nodes[chain[0]]
	baseName := head.Inv.Inputs[0]
	if head.Parents[0] >= 0 {
		if _, err := compute(head.Parents[0]); err != nil {
			return nil, false, err
		}
		baseName = g.nodes[head.Parents[0]].OutputName()
	} else if _, err := e.Ctx.Dataset(baseName); err != nil {
		return nil, false, fmt.Errorf("dag: node %d: %w", head.ID, err)
	}

	builder := skills.NewQueryBuilder(baseName)
	for _, nid := range chain {
		node := g.nodes[nid]
		def, err := e.Registry.Lookup(node.Inv.Skill)
		if err != nil {
			return nil, false, err
		}
		if err := def.MergeSQL(builder, node.Inv); err != nil {
			return nil, false, fmt.Errorf("dag: consolidating node %d (%s): %w", nid, node.Inv.Skill, err)
		}
	}
	table, err := sqlengine.ExecStmt(e.Ctx, builder.Stmt())
	if err != nil {
		return nil, false, fmt.Errorf("dag: consolidated task %q: %w", builder.SQL(), err)
	}
	res := &skills.Result{Table: table, Message: "via " + builder.SQL()}
	e.stats.TasksRun++
	e.stats.SQLTasks++
	e.stats.NodesConsolidated += len(chain)
	e.stats.QueryBlocks += builder.Blocks()
	materialize(id, res)
	return res, true, nil
}

// CompileSQL returns the consolidated SQL for the relational chain ending
// at target without executing it — the SQL view of a recipe step (§2.3).
func (e *Executor) CompileSQL(g *Graph, target NodeID) (string, error) {
	var chain []NodeID
	cur := target
	for cur >= 0 {
		node, err := g.Node(cur)
		if err != nil {
			return "", err
		}
		def, err := e.Registry.Lookup(node.Inv.Skill)
		if err != nil {
			return "", err
		}
		if def.MergeSQL == nil || len(node.Parents) != 1 {
			break
		}
		chain = append(chain, cur)
		cur = node.Parents[0]
	}
	if len(chain) == 0 {
		return "", fmt.Errorf("dag: node %d is not a relational skill", target)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	head := g.nodes[chain[0]]
	baseName := head.Inv.Inputs[0]
	if head.Parents[0] >= 0 {
		baseName = g.nodes[head.Parents[0]].OutputName()
	}
	builder := skills.NewQueryBuilder(baseName)
	for _, nid := range chain {
		node := g.nodes[nid]
		def, _ := e.Registry.Lookup(node.Inv.Skill)
		if err := def.MergeSQL(builder, node.Inv); err != nil {
			return "", err
		}
	}
	return builder.SQL(), nil
}
