// Command datachat is the interactive GEL console: a REPL where each line
// is a GEL sentence executed against the session's datasets, with tab-less
// autocomplete hints via ":suggest", recipe inspection via ":recipe", and
// the polyglot views of §2.3 via ":python" and ":sql".
//
// Usage:
//
//	datachat [-csv name=path]... [-demo]
//
// -csv registers CSV files as loadable sources; -demo preloads a small
// collisions-style dataset so the console is immediately usable.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/gel"
	"datachat/internal/recipe"
	"datachat/internal/skills"
	"datachat/internal/viz"
)

type csvFlags map[string]string

func (c csvFlags) String() string { return fmt.Sprint(map[string]string(c)) }

func (c csvFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("expected name=path, got %q", v)
	}
	data, err := os.ReadFile(parts[1])
	if err != nil {
		return err
	}
	c[parts[0]] = string(data)
	return nil
}

func main() {
	files := csvFlags{}
	flag.Var(files, "csv", "register a CSV file as name=path (repeatable)")
	demo := flag.Bool("demo", false, "preload a demo collisions dataset")
	flag.Parse()

	reg := skills.NewRegistry()
	ctx := skills.NewContext()
	for name, content := range files {
		ctx.Files[name] = content
	}
	if *demo {
		ctx.Datasets["collisions"] = demoTable()
		fmt.Println("demo dataset 'collisions' loaded — try: Use the dataset collisions")
	}
	executor := dag.NewExecutor(reg, ctx)
	parser := gel.MustNewParser(reg)
	runner := gel.NewRunner(parser, executor, nil)

	fmt.Println("DataChat GEL console — type a GEL sentence, :help for commands, :quit to exit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("gel> ")
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ":") {
			if handleCommand(line, runner, reg, executor) {
				return
			}
			continue
		}
		runner.Append(line)
		step, err := runner.Step()
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(step.Result)
	}
}

// handleCommand processes a console meta-command; returns true to quit.
func handleCommand(line string, runner *gel.Runner, reg *skills.Registry, executor *dag.Executor) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":quit", ":q", ":exit":
		return true
	case ":help":
		fmt.Println(`commands:
  :suggest [prefix]  autocomplete candidates for a partial sentence
  :recipe            show the session recipe as numbered GEL
  :python            show the recipe as DataChat Python API code
  :sql               show the consolidated SQL of the latest step
  :dag               show the session DAG as an ASCII tree
  :dot               show the session DAG in Graphviz DOT form
  :stats             executor statistics (tasks, consolidation, cache)
  :quit              exit`)
	case ":suggest":
		prefix := strings.TrimSpace(strings.TrimPrefix(line, ":suggest"))
		var columns []string
		if cur := runner.CurrentDataset(); cur != "" {
			if t, err := executor.Ctx.Dataset(cur); err == nil {
				columns = t.ColumnNames()
			}
		}
		for _, s := range runner.Parser.Suggest(prefix, columns) {
			fmt.Println(" ", s)
		}
	case ":recipe":
		rec, err := recipe.FromGraph("session", runner.Graph())
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		lines, err := rec.GEL(reg)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		for i, l := range lines {
			fmt.Printf("%3d  %s\n", i+1, l)
		}
	case ":python":
		rec, err := recipe.FromGraph("session", runner.Graph())
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		code, err := rec.Python(reg)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Println(code)
	case ":sql":
		g := runner.Graph()
		if g.Last() < 0 {
			fmt.Println("no steps yet")
			return false
		}
		sql, err := executor.CompileSQL(g, g.Last())
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Println(sql)
	case ":dag":
		fmt.Print(dag.RenderASCII(runner.Graph(), reg))
	case ":dot":
		fmt.Print(dag.RenderDOT(runner.Graph(), reg))
	case ":stats":
		fmt.Printf("%+v\n", executor.Stats())
	default:
		fmt.Println("unknown command; :help for the list")
	}
	return false
}

func printResult(res *skills.Result) {
	if res == nil {
		return
	}
	if res.Message != "" {
		fmt.Println(res.Message)
	}
	if res.Table != nil {
		fmt.Print(res.Table)
	}
	for _, chart := range res.Charts {
		fmt.Print(viz.Render(chart))
	}
}

// demoTable builds a small collisions-style dataset for -demo.
func demoTable() *dataset.Table {
	n := 120
	atFault := make([]string, n)
	ages := make([]int64, n)
	sexes := make([]string, n)
	phone := make([]string, n)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			atFault[i] = "at fault"
		} else {
			atFault[i] = "not at fault"
		}
		ages[i] = int64(16 + (i*13)%60)
		if i%2 == 0 {
			sexes[i] = "male"
		} else {
			sexes[i] = "female"
		}
		if i%6 == 0 {
			phone[i] = "in use"
		} else {
			phone[i] = "not in use"
		}
	}
	return dataset.MustNewTable("collisions",
		dataset.StringColumn("at_fault", atFault, nil),
		dataset.IntColumn("party_age", ages, nil),
		dataset.StringColumn("party_sex", sexes, nil),
		dataset.StringColumn("cellphone_in_use", phone, nil),
	)
}
