package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"datachat/internal/board"
	"datachat/internal/client"
	"datachat/internal/cloud"
	"datachat/internal/core"
	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/faults"
	"datachat/internal/recipe"
	"datachat/internal/scheduler"
	"datachat/internal/server"
	"datachat/internal/skills"
	"datachat/internal/wire"
)

func schedMetricsCSV(n, seed int) string {
	var b strings.Builder
	b.WriteString("mid,host,val\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,h%d,%d\n", i, i%7, (i*31+seed)%1000)
	}
	return b.String()
}

func schedRecipe(t *testing.T) *recipe.Recipe {
	t.Helper()
	g := dag.NewGraph()
	g.Add(skills.Invocation{Skill: "LoadTable",
		Args: skills.Args{"database": "wh", "table": "metrics"}, Output: "metrics"})
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"metrics"},
		Args: skills.Args{"condition": "val >= 500"}, Output: "hot"})
	r, err := recipe.FromGraph("hot-metrics", g)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// newSchedDeployment stands up a full deployment: platform with a warehouse
// table, server, scheduler + board hub on a virtual clock wired through
// AttachScheduler (which installs background admission as the gate).
func newSchedDeployment(t *testing.T, cfg server.Config) (*server.Server, *client.Client, *scheduler.Scheduler, *cloud.Database, *faults.VirtualClock) {
	t.Helper()
	p := core.New()
	db := cloud.NewDatabase("wh", cloud.DefaultPricing, 64)
	tb, err := dataset.ReadCSVString("metrics", schedMetricsCSV(400, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(tb); err != nil {
		t.Fatal(err)
	}
	if err := p.ConnectDatabase(db); err != nil {
		t.Fatal(err)
	}
	srv := server.New(p, cfg)
	clock := faults.NewVirtualClock(time.Unix(1_700_000_000, 0))
	hub := board.NewHub()
	hub.SetClock(clock)
	sched := scheduler.New(p, hub)
	sched.SetClock(clock)
	srv.AttachScheduler(sched, hub)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, client.New(hs.URL), sched, db, clock
}

// TestScheduleBoardOverTheWire drives the tentpole remotely: create a
// schedule over HTTP, tick it on the virtual clock, and watch each refresh
// arrive as a board update on a subscribed client — with the second,
// unchanged refresh executing zero cloud scans.
func TestScheduleBoardOverTheWire(t *testing.T) {
	_, c, sched, db, clock := newSchedDeployment(t, server.Config{})
	ctx := context.Background()

	info, err := c.CreateSchedule(ctx, wire.ScheduleRequest{
		Name: "daily", User: "alice", Recipe: schedRecipe(t),
		EveryMs: 60_000, Board: "ops", Tile: "hot",
	})
	if err != nil {
		t.Fatalf("CreateSchedule: %v", err)
	}
	if info.Session != "sched:daily" || info.EveryMs != 60_000 {
		t.Fatalf("schedule info = %+v", info)
	}
	if _, err := c.CreateSchedule(ctx, wire.ScheduleRequest{Name: "daily", User: "alice",
		Recipe: schedRecipe(t), EveryMs: 60_000}); err == nil {
		t.Fatal("duplicate schedule accepted")
	}

	// Two ticks with unchanged data, then a data refresh and a third tick.
	clock.Advance(time.Minute)
	sched.RunDue(ctx)
	q1 := db.Meter().Queries()
	clock.Advance(time.Minute)
	sched.RunDue(ctx)
	if q2 := db.Meter().Queries(); q2 != q1 {
		t.Fatalf("unchanged refresh scanned: %d -> %d", q1, q2)
	}
	tb, err := dataset.ReadCSVString("metrics", schedMetricsCSV(400, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ReplaceTable(tb); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	sched.RunDue(ctx)

	// The subscribe stream backfills all three updates, in order, with the
	// fingerprint-diff metadata intact.
	var evs []*wire.BoardEvent
	n, err := c.SubscribeBoard(ctx, "ops", client.SubscribeOptions{MaxUpdates: 3, MaxRows: 5},
		func(ev *wire.BoardEvent) error { evs = append(evs, ev); return nil })
	if err != nil {
		t.Fatalf("SubscribeBoard: %v", err)
	}
	if n != 3 || len(evs) != 3 {
		t.Fatalf("subscriber saw %d updates; want 3", n)
	}
	for i, ev := range evs {
		if ev.Job != "daily" || ev.Seq != i+1 || ev.Version != uint64(i+1) || ev.Tile != "hot" {
			t.Fatalf("event %d = %+v", i, ev)
		}
		if ev.Table == nil || len(ev.Table.Rows) == 0 || len(ev.Table.Rows) > 5 {
			t.Fatalf("event %d table not inlined/capped: %+v", i, ev.Table)
		}
	}
	if evs[1].FPChanged != 0 || evs[2].FPChanged == 0 {
		t.Fatalf("diff metadata wrong: %+v vs %+v", evs[1], evs[2])
	}

	// Resuming from a seen version backfills only the tail.
	if n, err = c.SubscribeBoard(ctx, "ops", client.SubscribeOptions{FromVersion: 2, MaxUpdates: 1}, nil); err != nil || n != 1 {
		t.Fatalf("resume subscribe = (%d, %v)", n, err)
	}

	// Run history over the wire carries the same story.
	got, err := c.Schedule(ctx, "daily")
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs != 3 || len(got.History) != 3 {
		t.Fatalf("history = %+v", got)
	}
	h2 := got.History[1]
	if h2.FPChanged != 0 || h2.FPUnchanged != h2.FPTotal || h2.CacheHits == 0 {
		t.Fatalf("unchanged run record = %+v", h2)
	}

	// Board CRUD + listing.
	boards, err := c.Boards(ctx)
	if err != nil || len(boards) != 1 || boards[0].ID != "ops" {
		t.Fatalf("Boards = %+v, %v", boards, err)
	}
	bi, err := c.Board(ctx, "ops", 5)
	if err != nil || len(bi.Tiles) != 1 || bi.Tiles[0].Updates != 3 {
		t.Fatalf("Board = %+v, %v", bi, err)
	}
	if bi.Tiles[0].Last == nil || bi.Tiles[0].Last.Version != 3 {
		t.Fatalf("pinned tile = %+v", bi.Tiles[0].Last)
	}

	// /statsz surfaces all three new sections.
	st, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission == nil || st.Scheduler == nil || st.Boards == nil {
		t.Fatalf("statsz missing sections: %+v", st)
	}
	if st.Scheduler.Runs != 3 || st.Scheduler.NodesUnchanged == 0 {
		t.Fatalf("scheduler stats = %+v", st.Scheduler)
	}
	if st.Boards.Publishes != 3 || st.Boards.Backfills != 4 {
		t.Fatalf("board stats = %+v", st.Boards)
	}
	// Background runs passed through the gate: they are admitted under the
	// background class, not interactive.
	if st.Admission.Background.Admitted != 3 {
		t.Fatalf("admission stats = %+v", st.Admission)
	}

	// Deleting the schedule keeps the board; deleting the board 404s after.
	if err := c.DeleteSchedule(ctx, "daily"); err != nil {
		t.Fatal(err)
	}
	if infos, err := c.Schedules(ctx); err != nil || len(infos) != 0 {
		t.Fatalf("Schedules after delete = %+v, %v", infos, err)
	}
	if err := c.DeleteBoard(ctx, "ops"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Board(ctx, "ops", 0); err == nil {
		t.Fatal("Board after delete succeeded")
	}
}

// TestRunScheduleNowAndFailures: forced runs over the wire, and a missing
// job maps to 404.
func TestRunScheduleNowAndFailures(t *testing.T) {
	_, c, _, _, _ := newSchedDeployment(t, server.Config{})
	ctx := context.Background()
	if _, err := c.RunScheduleNow(ctx, "ghost"); err == nil {
		t.Fatal("RunScheduleNow on unknown job succeeded")
	}
	if _, err := c.CreateSchedule(ctx, wire.ScheduleRequest{
		Name: "j", User: "alice", Recipe: schedRecipe(t), EveryMs: 1000, Board: "b",
	}); err != nil {
		t.Fatal(err)
	}
	rec, err := c.RunScheduleNow(ctx, "j")
	if err != nil {
		t.Fatalf("RunScheduleNow: %v", err)
	}
	if rec.Seq != 1 || rec.Error != "" || rec.BoardVersion != 1 {
		t.Fatalf("forced run = %+v", rec)
	}
}

// TestSubscribeEndsOnDrain: a live subscriber is ended by Shutdown with a
// typed draining error instead of pinning the drain forever.
func TestSubscribeEndsOnDrain(t *testing.T) {
	srv, c, _, _, _ := newSchedDeployment(t, server.Config{})
	ctx := context.Background()
	if _, err := c.CreateBoard(ctx, "live", "", "alice"); err != nil {
		t.Fatal(err)
	}
	subErr := make(chan error, 1)
	go func() {
		_, err := c.SubscribeBoard(ctx, "live", client.SubscribeOptions{}, nil)
		subErr <- err
	}()
	// Wait until the subscriber is registered, then drain.
	deadline := time.After(5 * time.Second)
	for {
		st, err := c.Statsz(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Boards.Subscribers == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("subscriber never registered")
		case <-time.After(time.Millisecond):
		}
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		t.Fatalf("Shutdown did not drain: %v", err)
	}
	err := <-subErr
	if !client.IsDraining(err) {
		t.Fatalf("subscriber ended with %v; want a draining error", err)
	}
}

// TestScheduleEndpointsWithoutScheduler: the endpoints 404 until a
// scheduler/hub is attached.
func TestScheduleEndpointsWithoutScheduler(t *testing.T) {
	_, c := newTestDeployment(t, server.Config{})
	ctx := context.Background()
	if _, err := c.Schedules(ctx); err == nil {
		t.Fatal("Schedules without scheduler succeeded")
	}
	if _, err := c.Boards(ctx); err == nil {
		t.Fatal("Boards without hub succeeded")
	}
	if st, err := c.Statsz(ctx); err != nil || st.Scheduler != nil || st.Boards != nil {
		t.Fatalf("statsz advertises absent subsystems: %+v, %v", st, err)
	}
}
