package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"datachat/internal/cloud"
	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/skills"
)

// The cost experiment measures the §3 budget knob as a cost-vs-accuracy
// grid: the same cloud scan + aggregate pipeline runs under a ladder of
// per-request scan budgets, from unlimited down to a budget the planner can
// only meet by substituting block samples. Each cell reports the planner's
// estimated scan bytes, the bytes the cloud meter actually charged, whether
// the result was flagged degraded, and the relative error of the aggregate
// against the exact answer — the honesty story in numbers: cost falls with
// the budget, error stays visible and labeled.

// CostCell is one budget point of the grid.
type CostCell struct {
	// BudgetBytes is the per-request scan budget (0 = unlimited).
	BudgetBytes int64 `json:"budget_bytes"`
	// EstScanBytes is the planner's estimated scan total after all passes.
	EstScanBytes int64 `json:"est_scan_bytes"`
	// MeterBytes is what the cloud meter actually charged for the run.
	MeterBytes int64 `json:"meter_bytes"`
	// SampleRate is the substituted block-sample rate (0 = exact scan).
	SampleRate float64 `json:"sample_rate"`
	// Degraded reports whether the result carried the degradation flag.
	Degraded bool `json:"degraded"`
	// RelErrPct is the aggregate's relative error vs the exact answer, in
	// percent.
	RelErrPct float64 `json:"rel_err_pct"`
	Seconds   float64 `json:"seconds"`
}

// CostResult holds the grid for BENCH_cost.json.
type CostResult struct {
	Rows       int        `json:"rows"`
	TableBytes int64      `json:"table_bytes"`
	Cells      []CostCell `json:"cells"`
}

// Cost runs the budget ladder over a synthetic cloud table of rows rows.
func Cost(rows int) (*CostResult, error) {
	reg := skills.NewRegistry()
	db := cloud.NewDatabase("wh", cloud.DefaultPricing, 512)
	ids := make([]int64, rows)
	vals := make([]float64, rows)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = float64((i * 7) % 997)
	}
	orders := dataset.MustNewTable("orders",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("c0", vals, nil),
	)
	if err := db.CreateTable(orders); err != nil {
		return nil, err
	}
	st, err := db.Stats("orders")
	if err != nil {
		return nil, err
	}
	result := &CostResult{Rows: rows, TableBytes: st.Bytes}

	mean := func(t *dataset.Table) float64 {
		col := t.Columns()[1]
		var sum float64
		for i := 0; i < t.NumRows(); i++ {
			if f, ok := col.Value(i).AsFloat(); ok {
				sum += f
			}
		}
		if t.NumRows() == 0 {
			return 0
		}
		return sum / float64(t.NumRows())
	}

	budgets := []int64{0, st.Bytes / 2, st.Bytes / 5, st.Bytes / 20}
	var exactMean float64
	for i, budget := range budgets {
		// A fresh context and executor per cell keeps the cells independent
		// (no cache or stats feedback across budgets); the one shared
		// database supplies the meter ground truth via deltas.
		ctx := skills.NewContext()
		ctx.Cloud["wh"] = db
		ex := dag.NewExecutor(reg, ctx)
		ex.Options.CostBudgetBytes = budget
		g := dag.NewGraph()
		g.Add(skills.Invocation{Skill: "LoadTable",
			Args: skills.Args{"database": "wh", "table": "orders"}, Output: "orders"})
		last := g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"orders"},
			Args: skills.Args{"condition": "c0 >= 0"}, Output: "kept"})

		meterBefore := db.Meter().BytesScanned()
		start := time.Now()
		res, err := ex.Run(g, last)
		if err != nil {
			return nil, err
		}
		dur := time.Since(start)
		cell := CostCell{
			BudgetBytes: budget,
			MeterBytes:  db.Meter().BytesScanned() - meterBefore,
			Degraded:    res.Degraded,
			Seconds:     dur.Seconds(),
		}
		if pc := ex.LastPlanCost(); pc != nil {
			cell.EstScanBytes = pc.ScanBytes
		}
		// Recover the substituted rate from the compiled plan.
		e, err := ex.Explain(g, last)
		if err != nil {
			return nil, err
		}
		for _, n := range e.Nodes {
			if n.Substituted {
				if rate := argsRate(n.Args); rate > cell.SampleRate {
					cell.SampleRate = rate
				}
			}
		}
		m := mean(res.Table)
		if i == 0 {
			exactMean = m
		} else if exactMean != 0 {
			cell.RelErrPct = (m - exactMean) / exactMean * 100
			if cell.RelErrPct < 0 {
				cell.RelErrPct = -cell.RelErrPct
			}
		}
		result.Cells = append(result.Cells, cell)
	}
	return result, nil
}

// argsRate extracts the "rate" value from an EXPLAIN node's canonical args
// string ("database=\"wh\", rate=0.1, table=\"orders\"").
func argsRate(args string) float64 {
	idx := strings.Index(args, "rate=")
	if idx < 0 {
		return 0
	}
	s := args[idx+len("rate="):]
	if end := strings.IndexByte(s, ','); end >= 0 {
		s = s[:end]
	}
	var rate float64
	fmt.Sscanf(strings.TrimSpace(s), "%f", &rate)
	return rate
}

// Report renders the grid as the EXPERIMENTS.md table.
func (r *CostResult) Report() string {
	var b strings.Builder
	b.WriteString("Cost-vs-accuracy: budgeted sample substitution (§3)\n")
	fmt.Fprintf(&b, "  table: %d rows, ~%d bytes\n", r.Rows, r.TableBytes)
	b.WriteString("  budget_bytes  est_scan   meter_bytes  rate   degraded  rel_err%  seconds\n")
	for _, c := range r.Cells {
		budget := "unlimited"
		if c.BudgetBytes > 0 {
			budget = fmt.Sprintf("%d", c.BudgetBytes)
		}
		fmt.Fprintf(&b, "  %-13s %-10d %-12d %-6.2f %-9v %-9.3f %.3f\n",
			budget, c.EstScanBytes, c.MeterBytes, c.SampleRate, c.Degraded, c.RelErrPct, c.Seconds)
	}
	return b.String()
}

// JSON renders the result for BENCH_cost.json.
func (r *CostResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
