package sqlengine

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"datachat/internal/dataset"
	"datachat/internal/expr"
)

// This file implements the partitioned streaming group-by engine: scan
// workers evaluate group keys and aggregate arguments per morsel (with the
// vectorized kernels when they compile, the boxed row loop otherwise) and
// hash-partition rows; one reducer per partition folds rows into per-group
// aggregate states, consuming batches in chunk-sequence order so every group
// accumulates in global row order — float SUM/AVG results are bit-identical
// to the serial engine. When the states overflow the memory budget a reducer
// spills rows of *new* keys to a disk run (keys already holding a state keep
// accumulating in memory), finalizes the pass, writes the finished states to
// a state run, and replays the spilled rows as the next pass; spilled key
// sets are disjoint from in-memory ones, so concatenating a partition's
// passes yields its groups in first-seen order. A final merge across
// partitions by (chunk, row) of first appearance restores the exact global
// first-seen order the serial engine produces.

// appendKeyValue encodes one boxed key cell exactly the way appendGroupKey
// encodes a vector cell, so boxed and vectorized chunks of the same stream
// always bucket identically.
func appendKeyValue(buf []byte, v dataset.Value) []byte {
	if v.IsNull() {
		return append(buf, 0)
	}
	switch v.Type {
	case dataset.TypeInt:
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I))
	case dataset.TypeFloat:
		bits := math.Float64bits(v.F)
		if v.F != v.F {
			bits = canonicalNaNBits
		}
		buf = append(buf, 2)
		buf = binary.LittleEndian.AppendUint64(buf, bits)
	case dataset.TypeString:
		buf = append(buf, 3)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(v.S)))
		buf = append(buf, v.S...)
	case dataset.TypeBool:
		if v.B {
			buf = append(buf, 4, 1)
		} else {
			buf = append(buf, 4, 0)
		}
	case dataset.TypeTime:
		buf = append(buf, 5)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.T.UnixNano()))
	}
	return buf
}

// hash32 is FNV-1a over a group key — the radix partitioning hash. It is
// deliberately unseeded so partition assignment is deterministic across runs
// and worker counts.
func hash32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// intGroupKey decodes a single-int-column group key (tag 1 + 8 LE bytes).
// Such keys live in an int64-keyed state map — one word hashed, no byte-wise
// equality walk — which is measurably faster than the string-keyed map on
// the common GROUP BY <int column> shape. Boxed and vectorized scans encode
// keys identically, so a given group always resolves through the same map.
func intGroupKey(key []byte) (int64, bool) {
	if len(key) == 9 && key[0] == 1 {
		return int64(binary.LittleEndian.Uint64(key[1:])), true
	}
	return 0, false
}

// hash32int is hash32 over the 9-byte encoding of a single-int group key
// (tag 1 + 8 LE bytes) without materializing it, so columnar int-key batches
// partition identically to byte-encoded ones.
func hash32int(v int64) uint32 {
	h := uint32(2166136261)
	h ^= 1 // the TypeInt tag byte
	h *= 16777619
	for s := 0; s < 64; s += 8 {
		h ^= uint32(uint8(uint64(v) >> s))
		h *= 16777619
	}
	return h
}

// hash32str is hash32 over a string key without the []byte conversion.
func hash32str(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// argCol is one aggregate argument over a batch: the compiled kernel's
// columnar vector when the expression compiled, boxed values otherwise, and
// neither for COUNT(*). Holding the vector instead of boxing every row into
// a []dataset.Value keeps the scan free of per-batch Value slices (and the
// GC scanning they cost); rows box on the stack only as they accumulate.
type argCol struct {
	vec  *expr.Vec
	vals []dataset.Value
}

func (a argCol) valid() bool { return a.vec != nil || a.vals != nil }

func (a argCol) at(i int) dataset.Value {
	if a.vec != nil {
		return a.vec.ValueAt(i)
	}
	return a.vals[i]
}

// groupedBatch is one scanned morsel, ready for reduction: encoded group key
// per row, per-partition row index lists, and the aggregate argument values.
type groupedBatch struct {
	seq   int
	n     int
	keys  [][]byte  // per-row encoded group key; nil for a single group or when ikeys is set
	ikeys []int64   // columnar keys when the single GROUP BY column is int with no nulls
	rows  [][]int32 // per partition: row indices it owns; nil when parts == 1
	args  []argCol  // per AggCall: argument values (zero for COUNT(*))
	rep   *rel      // the scanned chunk, source of representative rows
}

func (b *groupedBatch) keyAt(i int) []byte {
	if b.keys == nil {
		return nil
	}
	return b.keys[i]
}

// encodedKey materializes row i's group key bytes for a spill record —
// copied (or encoded from the columnar int key) so it outlives the batch.
func (b *groupedBatch) encodedKey(i int) []byte {
	if b.ikeys != nil {
		buf := make([]byte, 0, 9)
		buf = append(buf, 1)
		return binary.LittleEndian.AppendUint64(buf, uint64(b.ikeys[i]))
	}
	return append([]byte(nil), b.keyAt(i)...)
}

// argsAt boxes row i's aggregate arguments for a spill record; COUNT(*)
// slots hold Null placeholders (the count advances per record regardless).
func (b *groupedBatch) argsAt(i int) []dataset.Value {
	out := make([]dataset.Value, len(b.args))
	for ai, col := range b.args {
		if col.valid() {
			out[ai] = col.at(i)
		}
	}
	return out
}

func repRow(c *rel, i int) []dataset.Value {
	out := make([]dataset.Value, len(c.cols))
	for ci, col := range c.cols {
		out[ci] = col.Value(i)
	}
	return out
}

// groupedScan turns source chunks into groupedBatches. It prefers compiled
// kernels for key and argument evaluation (the hot path that makes one
// worker several times faster than the boxed row loop) and falls back to
// boxed evaluation per expression; both encodings bucket identically.
type groupedScan struct {
	se     *streamExec
	stmt   *SelectStmt
	filter expr.Expr // WHERE, applied in the worker when the scan is parallel
	aggs   []*AggCall
	parts  int
}

func (gs *groupedScan) build(c *rel, seq int) (*groupedBatch, error) {
	c, err := gs.se.filterRel(gs.filter, c)
	if err != nil {
		return nil, err
	}
	if c == nil {
		return &groupedBatch{seq: seq}, nil // fully filtered morsel
	}
	n := c.numRows()
	b := &groupedBatch{seq: seq, n: n, rep: c, args: make([]argCol, len(gs.aggs))}
	if len(gs.stmt.GroupBy) > 0 {
		if err := gs.buildKeys(c, b); err != nil {
			return nil, err
		}
	}
	if gs.parts > 1 {
		// Bucketing rows here, in the (parallel) scan stage, means each
		// reducer later visits only its own rows instead of scanning the
		// whole batch and skipping the other partitions' rows — the reducer
		// side does n row visits total rather than parts×n.
		b.rows = make([][]int32, gs.parts)
		for i := 0; i < n; i++ {
			var h uint32
			if b.ikeys != nil {
				h = hash32int(b.ikeys[i])
			} else {
				h = hash32(b.keyAt(i))
			}
			p := h % uint32(gs.parts)
			b.rows[p] = append(b.rows[p], int32(i))
		}
	}
	for ai, a := range gs.aggs {
		if a.Star {
			continue
		}
		vals, err := gs.evalColumn(c, a.Arg, n)
		if err != nil {
			return nil, err
		}
		b.args[ai] = vals
	}
	return b, nil
}

func hasNulls(v *expr.Vec) bool {
	if v.Type == dataset.TypeNull {
		return true
	}
	for _, null := range v.Nulls {
		if null {
			return true
		}
	}
	return false
}

func (gs *groupedScan) buildKeys(c *rel, b *groupedBatch) error {
	n := c.numRows()
	var flat []byte
	if gs.se.ex.vec {
		kvecs := make([]*expr.Vec, 0, len(gs.stmt.GroupBy))
		for _, ge := range gs.stmt.GroupBy {
			k, ok := expr.Compile(ge, relBinder{c}, n)
			if !ok {
				kvecs = nil
				break
			}
			v, err := k()
			if err != nil {
				return err
			}
			kvecs = append(kvecs, v)
		}
		if kvecs != nil {
			if len(kvecs) == 1 && kvecs[0].Type == dataset.TypeInt && !hasNulls(kvecs[0]) {
				// Columnar fast path: keep the int vector as the key column
				// and skip the per-row byte encoding entirely. Partitioning
				// (hash32int) and state lookup (the int map) agree with the
				// encoded form, so mixed batches still bucket identically.
				b.ikeys = kvecs[0].I
				return nil
			}
			b.keys = make([][]byte, n)
			for i := 0; i < n; i++ {
				start := len(flat)
				for _, kv := range kvecs {
					flat = appendGroupKey(flat, kv, i)
				}
				b.keys[i] = flat[start:len(flat):len(flat)]
			}
			return nil
		}
	}
	b.keys = make([][]byte, n)
	for i := 0; i < n; i++ {
		env := rowEnv{c, i}
		start := len(flat)
		for _, ge := range gs.stmt.GroupBy {
			v, err := ge.Eval(env)
			if err != nil {
				return err
			}
			flat = appendKeyValue(flat, v)
		}
		b.keys[i] = flat[start:len(flat):len(flat)]
	}
	return nil
}

// evalColumn evaluates one expression over the chunk, keeping the columnar
// vector when a kernel compiles and boxing per row otherwise.
func (gs *groupedScan) evalColumn(c *rel, ex expr.Expr, n int) (argCol, error) {
	if gs.se.ex.vec {
		if k, ok := expr.Compile(ex, relBinder{c}, n); ok {
			v, err := k()
			if err != nil {
				return argCol{}, err
			}
			return argCol{vec: v}, nil
		}
	}
	vals := make([]dataset.Value, n)
	for i := 0; i < n; i++ {
		v, err := ex.Eval(rowEnv{c, i})
		if err != nil {
			return argCol{}, err
		}
		vals[i] = v
	}
	return argCol{vals: vals}, nil
}

// finGroup is one finished group: its first appearance (chunk, row), its
// representative source row, and its finalized aggregate values (indexed by
// AggCall position). A nil rep marks the synthetic zero-row group of a
// global aggregate, which buffers no representative row — exactly like the
// serial path.
type finGroup struct {
	seq, row int
	rep      []dataset.Value
	agg      []dataset.Value
}

func (g *finGroup) before(o *finGroup) bool {
	return g.seq < o.seq || (g.seq == o.seq && g.row < o.row)
}

// pgState is one live group state in a partition reducer.
type pgState struct {
	gState
	seq, row int
	rep      []dataset.Value
}

// groupReducer owns one hash partition: its live states, its spill passes,
// and its finished groups.
type groupReducer struct {
	se        *streamExec
	id        int
	op        string
	aggs      []*AggCall
	states    map[string]*pgState
	ints      map[int64]*pgState // fast path for single-int group keys
	order     []*pgState
	spilling  bool
	sw        *spillWriter
	admitted  int
	stateRuns []*spillRun
	fin       []finGroup
	err       error
}

func newGroupReducer(se *streamExec, id int, aggs []*AggCall) *groupReducer {
	return &groupReducer{
		se:     se,
		id:     id,
		op:     fmt.Sprintf("group-by#%d", id),
		aggs:   aggs,
		states: map[string]*pgState{},
		ints:   map[int64]*pgState{},
	}
}

// accumulate folds one row's argument into one aggregate slot, mirroring the
// serial streaming loop exactly (same null handling, same float64 addition
// order per group, same Compare-based MIN/MAX).
func (g *gState) accumulate(a *AggCall, ai int, v dataset.Value) error {
	if a.Star {
		g.counts[ai]++
		return nil
	}
	if v.IsNull() {
		return nil
	}
	switch a.Name {
	case "COUNT":
		g.counts[ai]++
	case "MIN", "MAX":
		if !g.hasBest[ai] {
			g.best[ai], g.hasBest[ai] = v, true
			return nil
		}
		cmp := dataset.Compare(v, g.best[ai])
		if (a.Name == "MIN" && cmp < 0) || (a.Name == "MAX" && cmp > 0) {
			g.best[ai] = v
		}
	default: // SUM, AVG accumulate in ascending row order, like computeAgg
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("sql: %s over non-numeric value %v", a.Name, v)
		}
		if v.Type != dataset.TypeInt {
			g.allInt[ai] = false
		}
		g.sums[ai] += f
		g.counts[ai]++
	}
	return nil
}

// finishAggValues finalizes one group's aggregate slots, mirroring the
// serial streaming finalization exactly.
func finishAggValues(g *gState, aggs []*AggCall) []dataset.Value {
	out := make([]dataset.Value, len(aggs))
	for ai, a := range aggs {
		var v dataset.Value
		switch {
		case a.Star || a.Name == "COUNT":
			v = dataset.Int(g.counts[ai])
		case a.Name == "MIN" || a.Name == "MAX":
			v = dataset.Null
			if g.hasBest[ai] {
				v = g.best[ai]
			}
		case a.Name == "SUM":
			switch {
			case g.counts[ai] == 0:
				v = dataset.Null
			case g.allInt[ai]:
				v = dataset.Int(int64(g.sums[ai]))
			default:
				v = dataset.Float(g.sums[ai])
			}
		default: // AVG
			v = dataset.Null
			if g.counts[ai] > 0 {
				v = dataset.Float(g.sums[ai] / float64(g.counts[ai]))
			}
		}
		out[ai] = v
	}
	return out
}

// admit decides whether a new group key gets an in-memory state (true) or
// its rows spill to disk for a later pass (false, with r.sw ready). The
// first state of a pass is admitted even when the budget is full — sibling
// partitions' states can transiently hold all of it, and the bounded overrun
// (one state per partition) keeps every spill pass making progress. Once a
// pass starts spilling it stays spilling, so the in-memory key set always
// first-arrives strictly before the spilled one — the invariant the
// first-seen merge order relies on.
func (r *groupReducer) admit() (bool, error) {
	if !r.spilling {
		if r.se.tryBuffer(r.op, len(r.order)+1) {
			return true, nil
		}
		if !r.se.spillEnabled() {
			return false, r.se.buffer(r.op, len(r.order)+1) // typed BudgetError
		}
		if len(r.order) == 0 {
			r.se.forceBuffer(r.op, 1)
			return true, nil
		}
		r.spilling = true
	}
	if r.sw == nil {
		w, err := r.se.newSpillWriter("group")
		if err != nil {
			return false, err
		}
		r.sw = w
	}
	return false, nil
}

// feed folds one batch's rows for this partition into the live states,
// spilling rows of new keys once the budget refuses another state.
func (r *groupReducer) feed(b *groupedBatch) error {
	if b.rows != nil {
		for _, i := range b.rows[r.id] {
			if err := r.feedRow(b, int(i)); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < b.n; i++ {
		if err := r.feedRow(b, i); err != nil {
			return err
		}
	}
	return nil
}

func (r *groupReducer) feedRow(b *groupedBatch, i int) error {
	var g *pgState
	var ok bool
	if b.ikeys != nil {
		g, ok = r.ints[b.ikeys[i]]
	} else {
		g, ok = r.lookup(b.keyAt(i))
	}
	if !ok {
		admit, err := r.admit()
		if err != nil {
			return err
		}
		if !admit {
			return r.sw.write(&spillRec{Seq: b.seq, Row: i, Key: b.encodedKey(i), A: b.argsAt(i), B: repRow(b.rep, i)})
		}
		if b.ikeys != nil {
			g = r.newIntState(b.ikeys[i], b.seq, i, repRow(b.rep, i))
		} else {
			g = r.newState(b.keyAt(i), b.seq, i, repRow(b.rep, i))
		}
	}
	for ai, a := range r.aggs {
		var v dataset.Value
		if col := b.args[ai]; col.valid() {
			v = col.at(i)
		}
		if err := g.accumulate(a, ai, v); err != nil {
			return err
		}
	}
	return nil
}

func (r *groupReducer) lookup(key []byte) (*pgState, bool) {
	if k, ok := intGroupKey(key); ok {
		g, hit := r.ints[k]
		return g, hit
	}
	g, hit := r.states[string(key)]
	return g, hit
}

func (r *groupReducer) newState(key []byte, seq, row int, rep []dataset.Value) *pgState {
	if k, ok := intGroupKey(key); ok {
		return r.newIntState(k, seq, row, rep)
	}
	g := &pgState{gState: *newGState(0, len(r.aggs)), seq: seq, row: row, rep: rep}
	r.states[string(key)] = g
	r.order = append(r.order, g)
	r.admitted++
	return g
}

func (r *groupReducer) newIntState(k int64, seq, row int, rep []dataset.Value) *pgState {
	g := &pgState{gState: *newGState(0, len(r.aggs)), seq: seq, row: row, rep: rep}
	r.ints[k] = g
	r.order = append(r.order, g)
	r.admitted++
	return g
}

// finish runs the spill passes to completion. Afterwards stateRuns (in pass
// order) followed by fin hold this partition's groups in first-seen order.
func (r *groupReducer) finish() error {
	for {
		fin := make([]finGroup, len(r.order))
		for gi, g := range r.order {
			fin[gi] = finGroup{seq: g.seq, row: g.row, rep: g.rep, agg: finishAggValues(&g.gState, r.aggs)}
		}
		if r.sw == nil {
			r.fin = fin
			return nil
		}
		// Over budget this pass: park the finished states on disk, release
		// the memory, and replay the spilled rows as the next pass.
		sw, err := r.se.newSpillWriter("gstate")
		if err != nil {
			return err
		}
		for gi := range fin {
			if err := sw.write(&spillRec{Seq: fin[gi].seq, Row: fin[gi].row, A: fin[gi].agg, B: fin[gi].rep}); err != nil {
				sw.abort()
				return err
			}
		}
		run, err := sw.finish()
		if err != nil {
			return err
		}
		r.stateRuns = append(r.stateRuns, run)
		r.states = map[string]*pgState{}
		r.ints = map[int64]*pgState{}
		r.order = nil
		// Releasing this partition's charge must never fail: sibling
		// partitions' forced admissions can hold the global total over budget
		// right now, and the checked buffer() would turn that transient into
		// a spurious BudgetError.
		r.se.forceBuffer(r.op, 0)
		rowRun, err := r.sw.finish()
		r.sw = nil
		r.spilling = false
		r.admitted = 0
		if err != nil {
			return err
		}
		if err := r.replay(rowRun); err != nil {
			return err
		}
		if r.admitted == 0 && r.sw != nil {
			// Unreachable with forced first-state admission, kept as a
			// hard stop: a pass that admits nothing while still spilling
			// would otherwise replay the same rows forever. Must fail
			// unconditionally — rows still sitting in r.sw would be
			// silently dropped by returning nil.
			r.se.mu.Lock()
			buffered := r.se.curTotal
			r.se.mu.Unlock()
			return &BudgetError{Op: r.op, Buffered: buffered, Budget: r.se.opts.MaxBufferedRows}
		}
	}
}

func (r *groupReducer) replay(run *spillRun) error {
	rd, err := run.open()
	if err != nil {
		return err
	}
	defer rd.close()
	for {
		rec, err := rd.next()
		if err != nil {
			return err
		}
		if rec == nil {
			return nil
		}
		g, ok := r.lookup(rec.Key)
		if !ok {
			admit, err := r.admit()
			if err != nil {
				return err
			}
			if !admit {
				if err := r.sw.write(rec); err != nil {
					return err
				}
				continue
			}
			g = r.newState(rec.Key, rec.Seq, rec.Row, rec.B)
		}
		for ai, a := range r.aggs {
			if err := g.accumulate(a, ai, rec.A[ai]); err != nil {
				return err
			}
		}
	}
}

// groupSource streams one partition's finished groups in first-seen order:
// state runs from earlier passes, then the final in-memory pass.
type groupSource struct {
	runs []*spillRun
	mem  []finGroup
	rd   *spillReader
}

func (s *groupSource) next() (*finGroup, error) {
	for {
		if s.rd == nil && len(s.runs) > 0 {
			rd, err := s.runs[0].open()
			if err != nil {
				return nil, err
			}
			s.runs = s.runs[1:]
			s.rd = rd
		}
		if s.rd != nil {
			rec, err := s.rd.next()
			if err != nil {
				return nil, err
			}
			if rec == nil {
				s.rd.close()
				s.rd = nil
				continue
			}
			return &finGroup{seq: rec.Seq, row: rec.Row, rep: rec.B, agg: rec.A}, nil
		}
		if len(s.mem) > 0 {
			g := &s.mem[0]
			s.mem = s.mem[1:]
			return g, nil
		}
		return nil, nil
	}
}

// mergedGroups merges the partitions' group streams by first appearance.
type mergedGroups struct {
	srcs  []*groupSource
	heads []*finGroup
}

func newMergedGroups(srcs []*groupSource) *mergedGroups {
	return &mergedGroups{srcs: srcs, heads: make([]*finGroup, len(srcs))}
}

func (m *mergedGroups) next() (*finGroup, error) {
	best := -1
	for i, s := range m.srcs {
		if m.heads[i] == nil {
			g, err := s.next()
			if err != nil {
				return nil, err
			}
			m.heads[i] = g
		}
		if m.heads[i] == nil {
			continue
		}
		if best < 0 || m.heads[i].before(m.heads[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil, nil
	}
	g := m.heads[best]
	m.heads[best] = nil
	return g, nil
}

// partitionedGroupedPull defers the engine run to the first chunk request.
func (se *streamExec) partitionedGroupedPull(stmt *SelectStmt, chunks relChunks, filter expr.Expr, aggs []*AggCall, schema *rel) func() (*dataset.Table, error) {
	var emit func() (*dataset.Table, error)
	return func() (*dataset.Table, error) {
		if emit == nil {
			e, err := se.runPartitionedGrouped(stmt, chunks, filter, aggs, schema)
			if err != nil {
				return nil, err
			}
			emit = e
		}
		return emit()
	}
}

// runPartitionedGrouped drives the whole engine: scan fan-out, partition
// reduction, spill passes, and the final merge. It returns a chunk pull.
func (se *streamExec) runPartitionedGrouped(stmt *SelectStmt, chunks relChunks, filter expr.Expr, aggs []*AggCall, schema *rel) (func() (*dataset.Table, error), error) {
	workers := se.workers()
	parts := workers
	gs := &groupedScan{se: se, stmt: stmt, filter: filter, aggs: aggs, parts: parts}
	pipe := newParallelPipe(workers, 2*workers,
		func() (*rel, bool, error) {
			c, err := chunks.next()
			return c, c != nil, err
		},
		gs.build,
	)
	se.onStop(pipe.stop)

	reducers := make([]*groupReducer, parts)
	for p := range reducers {
		reducers[p] = newGroupReducer(se, p, aggs)
	}

	var srcErr error
	if workers == 1 {
		red := reducers[0]
		for {
			b, ok, err := pipe.next()
			if err != nil {
				srcErr = err
				break
			}
			if !ok {
				break
			}
			if err := red.feed(b); err != nil {
				srcErr = err
				break
			}
		}
	} else {
		chans := make([]chan *groupedBatch, parts)
		var wg sync.WaitGroup
		for p, red := range reducers {
			ch := make(chan *groupedBatch, 4)
			chans[p] = ch
			wg.Add(1)
			go func(red *groupReducer, ch <-chan *groupedBatch) {
				defer wg.Done()
				for b := range ch {
					if red.err != nil {
						continue // drain after failure so the distributor never blocks
					}
					red.err = red.feed(b)
				}
			}(red, ch)
		}
		for {
			b, ok, err := pipe.next()
			if err != nil {
				srcErr = err
				break
			}
			if !ok {
				break
			}
			for p, ch := range chans {
				if b.rows != nil && len(b.rows[p]) == 0 {
					continue // no rows for this partition in the batch
				}
				ch <- b
			}
		}
		for _, ch := range chans {
			close(ch)
		}
		wg.Wait()
	}
	if srcErr != nil {
		return nil, srcErr
	}
	for _, red := range reducers {
		if red.err != nil {
			return nil, red.err
		}
	}
	// Spill passes run per-reducer; concurrently when parallel.
	if workers == 1 {
		if err := reducers[0].finish(); err != nil {
			return nil, err
		}
	} else {
		var wg sync.WaitGroup
		for _, red := range reducers {
			wg.Add(1)
			go func(red *groupReducer) {
				defer wg.Done()
				red.err = red.finish()
			}(red)
		}
		wg.Wait()
		for _, red := range reducers {
			if red.err != nil {
				return nil, red.err
			}
		}
	}

	spilled := false
	for _, red := range reducers {
		if len(red.stateRuns) > 0 {
			spilled = true
		}
	}
	if !spilled {
		return se.finishGroupedInMemory(stmt, aggs, schema, reducers)
	}
	return se.finishGroupedSpilled(stmt, aggs, schema, reducers)
}

// finishGroupedInMemory is the no-spill epilogue: merge the partitions'
// groups into global first-seen order and run the exact serial finishing
// phase (finishGrouped → DISTINCT → OFFSET/LIMIT → re-chunk), so output is
// identical to the serial engine down to column types.
func (se *streamExec) finishGroupedInMemory(stmt *SelectStmt, aggs []*AggCall, schema *rel, reducers []*groupReducer) (func() (*dataset.Table, error), error) {
	idx := make([]int, len(reducers))
	var order []finGroup
	for {
		best := -1
		for p, red := range reducers {
			if idx[p] >= len(red.fin) {
				continue
			}
			if best < 0 || red.fin[idx[p]].before(&reducers[best].fin[idx[best]]) {
				best = p
			}
		}
		if best < 0 {
			break
		}
		order = append(order, reducers[best].fin[idx[best]])
		idx[best]++
	}
	if len(stmt.GroupBy) == 0 && len(order) == 0 {
		// Aggregates over zero rows still produce one output group, with no
		// representative row buffered.
		g := newGState(0, len(aggs))
		order = append(order, finGroup{agg: finishAggValues(g, aggs)})
	}
	firstRows := &rel{cols: make([]*dataset.Column, len(schema.cols)), quals: schema.quals}
	for i, c := range schema.cols {
		firstRows.cols[i] = dataset.NewColumn(c.Name(), c.Type())
	}
	groups := make([]groupData, len(order))
	for gi := range order {
		fg := &order[gi]
		if fg.rep != nil {
			for ci, col := range firstRows.cols {
				col.Append(fg.rep[ci])
			}
		}
		aggVals := make(expr.MapEnv, len(aggs))
		for ai, a := range aggs {
			aggVals[a.Key()] = fg.agg[ai]
		}
		groups[gi] = groupData{firstRow: gi, aggVals: aggVals}
	}
	out, err := se.ex.finishGrouped(stmt, firstRows, groups)
	if err != nil {
		return nil, err
	}
	if stmt.Distinct {
		out, err = out.Distinct()
		if err != nil {
			return nil, err
		}
	}
	if stmt.Offset > 0 || stmt.Limit >= 0 {
		from := stmt.Offset
		to := out.NumRows()
		if stmt.Limit >= 0 && from+stmt.Limit < to {
			to = from + stmt.Limit
		}
		out = out.Slice(from, to)
	}
	return rechunkTable(out, se.opts.chunkRows()), nil
}

// finishGroupedSpilled is the out-of-core epilogue: stream the merged groups
// in batches through HAVING and projection, sort externally when ORDER BY is
// present, and emit fixed-size chunks so the chunk boundaries match the
// serial engine's re-chunked output.
func (se *streamExec) finishGroupedSpilled(stmt *SelectStmt, aggs []*AggCall, schema *rel, reducers []*groupReducer) (func() (*dataset.Table, error), error) {
	srcs := make([]*groupSource, len(reducers))
	for p, red := range reducers {
		srcs[p] = &groupSource{runs: red.stateRuns, mem: red.fin}
	}
	merged := newMergedGroups(srcs)
	names, exprs := se.ex.expandItems(stmt.Items, schema)
	colTypes := make([]dataset.Type, len(schema.cols))
	for i, c := range schema.cols {
		colTypes[i] = c.Type()
	}

	// finishBatch mirrors finishGrouped's per-group phase: HAVING filter,
	// projection, and ORDER BY key evaluation against the same environments.
	finishBatch := func(batch []*finGroup) (vals [][]dataset.Value, keys [][]dataset.Value, err error) {
		source := &rel{cols: make([]*dataset.Column, len(schema.cols)), quals: schema.quals}
		for i, c := range schema.cols {
			source.cols[i] = dataset.NewColumn(c.Name(), colTypes[i])
		}
		for _, fg := range batch {
			for ci, col := range source.cols {
				col.Append(fg.rep[ci])
			}
		}
		outRow := make(expr.MapEnv, len(exprs))
		for bi, fg := range batch {
			aggVals := make(expr.MapEnv, len(aggs))
			for ai, a := range aggs {
				aggVals[a.Key()] = fg.agg[ai]
			}
			env := chainEnv{aggVals, rowEnv{source, bi}}
			if stmt.Having != nil {
				ok, err := expr.EvalBool(stmt.Having, env)
				if err != nil {
					return nil, nil, err
				}
				if !ok {
					continue
				}
			}
			row := make([]dataset.Value, len(exprs))
			for ci, ex := range exprs {
				v, err := ex.Eval(env)
				if err != nil {
					return nil, nil, err
				}
				row[ci] = v
				outRow[names[ci]] = v
			}
			vals = append(vals, row)
			if len(stmt.OrderBy) > 0 {
				orderEnv := chainEnv{outRow, env}
				krow := make([]dataset.Value, len(stmt.OrderBy))
				for ki, o := range stmt.OrderBy {
					v, err := o.Expr.Eval(orderEnv)
					if err != nil {
						return nil, nil, err
					}
					krow[ki] = v
				}
				keys = append(keys, krow)
			}
		}
		return vals, keys, nil
	}

	chunkRows := se.opts.chunkRows()
	nextBatch := func() ([][]dataset.Value, [][]dataset.Value, bool, error) {
		batch := make([]*finGroup, 0, chunkRows)
		for len(batch) < chunkRows {
			g, err := merged.next()
			if err != nil {
				return nil, nil, false, err
			}
			if g == nil {
				break
			}
			batch = append(batch, g)
		}
		if len(batch) == 0 {
			return nil, nil, false, nil
		}
		vals, keys, err := finishBatch(batch)
		return vals, keys, true, err
	}

	var rowSrc func() ([]dataset.Value, bool, error)
	if len(stmt.OrderBy) > 0 {
		// Feed every surviving group through the external sorter; batches
		// arrive in first-seen order, so the stable merge reproduces the
		// serial stable sort.
		sorter := newExtSorter(se, "order-by", stmt.OrderBy)
		seq := 0
		for {
			vals, keys, ok, err := nextBatch()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if err := sorter.addRun(seq, vals, keys, nil); err != nil {
				return nil, err
			}
			seq++
		}
		sorted := sorter.sources()
		rowSrc = func() ([]dataset.Value, bool, error) {
			vals, _, ok, err := sorter.mergeStep(sorted)
			return vals, ok, err
		}
	} else {
		var pending [][]dataset.Value
		done := false
		rowSrc = func() ([]dataset.Value, bool, error) {
			for len(pending) == 0 && !done {
				vals, _, ok, err := nextBatch()
				if err != nil {
					return nil, false, err
				}
				if !ok {
					done = true
					break
				}
				pending = vals
			}
			if len(pending) == 0 {
				return nil, false, nil
			}
			row := pending[0]
			pending = pending[1:]
			return row, true, nil
		}
	}

	// Emit fixed-size chunks; guarantee one (possibly empty) chunk so the
	// schema always reaches the consumer, like the serial re-chunker.
	emitted := false
	finished := false
	pull := func() (*dataset.Table, error) {
		if finished {
			return nil, nil
		}
		rows := make([][]dataset.Value, 0, chunkRows)
		for len(rows) < chunkRows {
			row, ok, err := rowSrc()
			if err != nil {
				return nil, err
			}
			if !ok {
				finished = true
				break
			}
			rows = append(rows, row)
		}
		if len(rows) == 0 {
			if !emitted {
				emitted = true
				return buildValueChunk(names, nil, nil)
			}
			return nil, nil
		}
		emitted = true
		return buildValueChunk(names, nil, rows)
	}
	if stmt.Distinct {
		pull = se.distinctPull(pull)
	}
	if stmt.Offset > 0 || stmt.Limit >= 0 {
		pull = offsetLimitPull(pull, stmt.Offset, stmt.Limit)
	}
	return pull, nil
}
