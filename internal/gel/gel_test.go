package gel

import (
	"strings"
	"testing"
	"time"

	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/skills"
)

var reg = skills.NewRegistry()

func parser(t *testing.T) *Parser {
	t.Helper()
	return MustNewParser(reg)
}

func TestParseCoreSentences(t *testing.T) {
	p := parser(t)
	cases := []struct {
		line  string
		skill string
		check func(t *testing.T, inv skills.Invocation)
	}{
		{"Keep the rows where age > 30", "KeepRows", func(t *testing.T, inv skills.Invocation) {
			if inv.Args["condition"] != "age > 30" {
				t.Errorf("condition = %v", inv.Args["condition"])
			}
		}},
		{"Keep the columns DATE, GDPC1, RecordType", "KeepColumns", func(t *testing.T, inv skills.Invocation) {
			cols, _ := inv.Args.StringList("columns")
			if len(cols) != 3 || cols[2] != "RecordType" {
				t.Errorf("columns = %v", cols)
			}
		}},
		{"Create a new column RecordType with text Actual", "NewColumn", func(t *testing.T, inv skills.Invocation) {
			if inv.Args["text"] != "Actual" || inv.Args["name"] != "RecordType" {
				t.Errorf("args = %v", inv.Args)
			}
		}},
		{"Create a new column double_age as age * 2", "NewColumn", func(t *testing.T, inv skills.Invocation) {
			if inv.Args["formula"] != "age * 2" {
				t.Errorf("formula = %v", inv.Args["formula"])
			}
		}},
		{"Sort the rows by age, name in descending order", "SortRows", func(t *testing.T, inv skills.Invocation) {
			if !inv.Args.Bool("descending") {
				t.Error("descending not set")
			}
		}},
		{"Limit the data to 100 rows", "LimitRows", func(t *testing.T, inv skills.Invocation) {
			if n, _ := inv.Args.Int("count"); n != 100 {
				t.Errorf("count = %v", inv.Args["count"])
			}
		}},
		{"Sample 0.1 of the rows", "SampleRows", func(t *testing.T, inv skills.Invocation) {
			if f, _ := inv.Args.Float("fraction"); f != 0.1 {
				t.Errorf("fraction = %v", inv.Args["fraction"])
			}
		}},
		{"Concatenate the datasets fredgraph and PredictedTimeSeries_GDPC1 remove all duplicates", "Concatenate",
			func(t *testing.T, inv skills.Invocation) {
				if len(inv.Inputs) != 2 || inv.Inputs[1] != "PredictedTimeSeries_GDPC1" {
					t.Errorf("inputs = %v", inv.Inputs)
				}
				if !inv.Args.Bool("dedupe") {
					t.Error("dedupe not set")
				}
			}},
		{"Predict time series with measure columns GDPC1 for the next 12 values of DATE", "PredictTimeSeries",
			func(t *testing.T, inv skills.Invocation) {
				if inv.Args["measure"] != "GDPC1" || inv.Args["time"] != "DATE" {
					t.Errorf("args = %v", inv.Args)
				}
				if n, _ := inv.Args.Int("steps"); n != 12 {
					t.Errorf("steps = %v", inv.Args["steps"])
				}
			}},
		{"Plot a line chart with the x-axis DATE, the y-axis GDPC1, for each RecordType", "PlotChart",
			func(t *testing.T, inv skills.Invocation) {
				if inv.Args["chart"] != "line" || inv.Args["for_each"] != "RecordType" {
					t.Errorf("args = %v", inv.Args)
				}
			}},
		{"Visualize at_fault by party_age, party_sex, cellphone_in_use", "Visualize",
			func(t *testing.T, inv skills.Invocation) {
				by, _ := inv.Args.StringList("by")
				if len(by) != 3 {
					t.Errorf("by = %v", by)
				}
			}},
		{"Use the dataset fredgraph, version 1", "UseDataset", func(t *testing.T, inv skills.Invocation) {
			if v, _ := inv.Args.Int("version"); v != 1 {
				t.Errorf("version = %v", inv.Args["version"])
			}
		}},
		{"Load data from the URL https://fred.example/fredgraph.csv?id=GDPC1", "LoadData",
			func(t *testing.T, inv skills.Invocation) {
				if !strings.Contains(inv.Args.StringOr("source", ""), "fredgraph.csv") {
					t.Errorf("source = %v", inv.Args["source"])
				}
			}},
		{"Describe the column party_age", "DescribeColumn", nil},
		{"Train a model to predict churn using age, tenure", "TrainModel", func(t *testing.T, inv skills.Invocation) {
			feats, _ := inv.Args.StringList("features")
			if len(feats) != 2 {
				t.Errorf("features = %v", feats)
			}
		}},
		{"Detect outliers in amount using iqr", "DetectOutliers", nil},
		{"Run the SQL query SELECT * FROM people WHERE age > 10", "RunSQL", func(t *testing.T, inv skills.Invocation) {
			if !strings.HasPrefix(inv.Args.StringOr("query", ""), "SELECT") {
				t.Errorf("query = %v", inv.Args["query"])
			}
		}},
		{"Create bins of size 20 on party_age", "Bin", func(t *testing.T, inv skills.Invocation) {
			if f, _ := inv.Args.Float("size"); f != 20 {
				t.Errorf("size = %v", inv.Args["size"])
			}
		}},
		{"Sample 10% of the table events from the database warehouse", "SampleTable",
			func(t *testing.T, inv skills.Invocation) {
				if f, _ := inv.Args.Float("rate"); f != 0.1 {
					t.Errorf("rate = %v", inv.Args["rate"])
				}
			}},
	}
	for _, c := range cases {
		inv, err := p.Parse(c.line)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.line, err)
			continue
		}
		if inv.Skill != c.skill {
			t.Errorf("Parse(%q).Skill = %s, want %s", c.line, inv.Skill, c.skill)
			continue
		}
		if c.check != nil {
			c.check(t, inv)
		}
	}
}

func TestParseComputeSentence(t *testing.T) {
	p := parser(t)
	inv, err := p.Parse("Compute the count of case_id for each party_sobriety and call the computed columns NumberOfCases")
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := inv.Args.AggSpecs("aggregates")
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].Func != "count" || aggs[0].Column != "case_id" || aggs[0].As != "NumberOfCases" {
		t.Errorf("agg = %+v", aggs[0])
	}
	keys, _ := inv.Args.StringList("for_each")
	if len(keys) != 1 || keys[0] != "party_sobriety" {
		t.Errorf("keys = %v", keys)
	}

	inv2, err := p.Parse("Compute the count of records and sum of amount for each region, year")
	if err != nil {
		t.Fatal(err)
	}
	aggs2, _ := inv2.Args.AggSpecs("aggregates")
	if len(aggs2) != 2 || aggs2[0].Column != "*" || aggs2[1].Func != "sum" {
		t.Errorf("aggs = %+v", aggs2)
	}
	keys2, _ := inv2.Args.StringList("for_each")
	if len(keys2) != 2 {
		t.Errorf("keys = %v", keys2)
	}

	if _, err := p.Parse("Compute the frobnicate of x"); err == nil {
		t.Error("bad aggregate should error")
	}
	if _, err := p.Parse("Compute nonsense"); err == nil {
		t.Error("malformed compute should error")
	}
}

func TestParseGELRoundTrip(t *testing.T) {
	// Rendering an invocation to GEL and parsing it back reproduces the
	// skill and key args — the §2.3 claim that recipes are editable text.
	p := parser(t)
	invs := []skills.Invocation{
		{Skill: "KeepRows", Args: skills.Args{"condition": "age > 30"}},
		{Skill: "KeepColumns", Args: skills.Args{"columns": []string{"a", "b"}}},
		{Skill: "LimitRows", Args: skills.Args{"count": 10}},
		{Skill: "Compute", Args: skills.Args{
			"aggregates": []string{"count of id as n"}, "for_each": []string{"dept"}}},
		{Skill: "PredictTimeSeries", Args: skills.Args{"measure": "GDPC1", "time": "DATE", "steps": 12}},
	}
	for _, inv := range invs {
		sentence, err := reg.RenderGEL(inv)
		if err != nil {
			t.Fatalf("render %s: %v", inv.Skill, err)
		}
		back, err := p.Parse(sentence)
		if err != nil {
			t.Fatalf("parse rendered %q: %v", sentence, err)
		}
		if back.Skill != inv.Skill {
			t.Errorf("round trip %q: skill %s -> %s", sentence, inv.Skill, back.Skill)
		}
	}
}

func TestTranslateConditionPhrases(t *testing.T) {
	p := parser(t)
	p.Now = time.Date(2023, 1, 15, 0, 0, 0, 0, time.UTC)
	cases := map[string]string{
		"DATE is between the dates 01-01-2005 to 12-31-2020": "DATE BETWEEN '2005-01-01' AND '2020-12-31'",
		"DATE is after Today - 10 years":                     "DATE > '2013-01-15'",
		"DATE is before Today":                               "DATE < '2023-01-15'",
		"DATE is after 2020-06-01":                           "DATE > '2020-06-01'",
		"amount is at least 100":                             "amount >= 100",
		"amount is at most 5":                                "amount <= 5",
		"status is active":                                   "status = 'active'",
		"status is not active":                               "status <> 'active'",
		"salary is null":                                     "salary IS NULL",
		"salary is not null":                                 "salary IS NOT NULL",
		"age > 30 AND dept = 'eng'":                          "age > 30 AND dept = 'eng'", // passthrough
	}
	for in, want := range cases {
		if got := p.TranslateCondition(in); got != want {
			t.Errorf("TranslateCondition(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseRejectsNonsense(t *testing.T) {
	p := parser(t)
	for _, line := range []string{"", "   ", "frobnicate the widgets", "keep the"} {
		if _, err := p.Parse(line); err == nil {
			t.Errorf("Parse(%q) should fail", line)
		}
	}
}

func TestSuggest(t *testing.T) {
	p := parser(t)
	cols := []string{"party_age", "party_sex"}
	got := p.Suggest("Keep the", cols)
	joined := strings.Join(got, " ")
	if !strings.Contains(joined, "rows") || !strings.Contains(joined, "columns") {
		t.Errorf("Suggest after 'Keep the' = %v", got)
	}
	got = p.Suggest("Describe the column", cols)
	joined = strings.Join(got, " ")
	if !strings.Contains(joined, "party_age") {
		t.Errorf("Suggest should offer columns: %v", got)
	}
	got = p.Suggest("", nil)
	if len(got) < 10 {
		t.Errorf("empty prefix should offer many starts: %v", got)
	}
}

// gdpCSV builds a synthetic quarterly GDP series like the FRED data in
// Figure 2.
func gdpCSV() string {
	var b strings.Builder
	b.WriteString("DATE,GDPC1\n")
	year, month := 1995, 1
	for q := 0; q < 104; q++ { // 1995Q1 .. 2020Q4
		val := 11000 + 45*q
		if year >= 2020 {
			val -= 800 // a 2020 dip, so actual diverges from trend
		}
		b.WriteString(time.Date(year, time.Month(month), 1, 0, 0, 0, 0, time.UTC).Format("2006-01-02"))
		b.WriteString(",")
		b.WriteString(strings.TrimSpace(strings.Join([]string{itoa(val)}, "")))
		b.WriteString("\n")
		month += 3
		if month > 12 {
			month = 1
			year++
		}
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// TestRunnerFigure2Recipe executes the full 10-step GEL recipe from
// Figure 2a and checks the resulting chart matches Figure 2b's shape.
func TestRunnerFigure2Recipe(t *testing.T) {
	ctx := skills.NewContext()
	url := "https://fred.stlouisfed.org/graph/fredgraph.csv?id=GDPC1&fq=Quarterly"
	ctx.Files[url] = gdpCSV()
	executor := dag.NewExecutor(reg, ctx)
	p := MustNewParser(reg)
	p.Now = time.Date(2023, 6, 18, 0, 0, 0, 0, time.UTC)

	lines := []string{
		"Load data from the URL " + url,
		"Keep the rows where DATE is between the dates 01-01-2005 to 12-31-2020",
		"Predict time series with measure columns GDPC1 for the next 12 values of DATE",
		"Keep the columns DATE, GDPC1, RecordType",
		"Use the dataset fredgraph, version 1",
		"Create a new column RecordType with text Actual",
		"Keep the columns DATE, GDPC1, RecordType",
		"Concatenate the datasets fredgraph and PredictedTimeSeries_GDPC1 remove all duplicates",
		"Keep the rows where DATE is after Today - 10 years",
		"Plot a line chart with the x-axis DATE, the y-axis GDPC1, for each RecordType",
	}
	r := NewRunner(p, executor, lines)
	steps, err := r.RunAll()
	if err != nil {
		t.Fatalf("recipe failed at line %d: %v", r.PC(), err)
	}
	if len(steps) != 10 {
		t.Fatalf("steps = %d", len(steps))
	}
	final := steps[9].Result
	if len(final.Charts) != 1 {
		t.Fatalf("final chart missing")
	}
	chart := final.Charts[0]
	if len(chart.Series) != 2 {
		t.Fatalf("series = %d, want Actual + Predicted", len(chart.Series))
	}
	names := []string{chart.Series[0].Name, chart.Series[1].Name}
	if names[0] != "Actual" || names[1] != "Predicted" {
		t.Errorf("series names = %v", names)
	}
	// The predicted series extends past the actual one and, since the
	// trend was fit pre-2020 excluding the dip... both series cover the
	// last decade; predicted should have exactly 12 points.
	var predicted, actual int
	for _, s := range chart.Series {
		if s.Name == "Predicted" {
			predicted = len(s.Y)
		} else {
			actual = len(s.Y)
		}
	}
	if predicted != 12 {
		t.Errorf("predicted points = %d, want 12", predicted)
	}
	if actual == 0 {
		t.Error("actual series empty")
	}
}

func TestRunnerStepAndBreakpoints(t *testing.T) {
	ctx := skills.NewContext()
	ctx.Datasets["people"] = dataset.MustNewTable("people",
		dataset.IntColumn("age", []int64{10, 20, 30, 40}, nil),
	)
	executor := dag.NewExecutor(reg, ctx)
	r := NewRunner(MustNewParser(reg), executor, []string{
		"Use the dataset people",
		"Keep the rows where age > 15",
		"# a comment line",
		"Limit the data to 2 rows",
		"Count the rows",
	})
	if err := r.SetBreakpoint(3, true); err != nil {
		t.Fatal(err)
	}
	if err := r.SetBreakpoint(99, true); err == nil {
		t.Error("breakpoint on missing line should error")
	}
	steps, err := r.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 { // use, keep, comment — stops before line 3
		t.Fatalf("ran %d steps before breakpoint", len(steps))
	}
	if r.PC() != 3 {
		t.Errorf("pc = %d", r.PC())
	}
	// Inspect intermediate state mid-debug: the filter result.
	if steps[1].Result.Table.NumRows() != 3 {
		t.Errorf("intermediate rows = %d", steps[1].Result.Table.NumRows())
	}
	step, err := r.Step()
	if err != nil {
		t.Fatal(err)
	}
	if step.Result.Table.NumRows() != 2 {
		t.Errorf("after limit rows = %d", step.Result.Table.NumRows())
	}
	rest, err := r.Continue()
	if err != nil {
		t.Fatal(err)
	}
	c, _ := rest[len(rest)-1].Result.Table.Column("rows")
	if c.Value(0).I != 2 {
		t.Errorf("final count = %v", c.Value(0))
	}
	if !r.Done() {
		t.Error("runner should be done")
	}
	if _, err := r.Step(); err == nil {
		t.Error("step past end should error")
	}
}

func TestRunnerFailureMarksStep(t *testing.T) {
	ctx := skills.NewContext()
	ctx.Datasets["d"] = dataset.MustNewTable("d", dataset.IntColumn("x", []int64{1}, nil))
	executor := dag.NewExecutor(reg, ctx)
	r := NewRunner(MustNewParser(reg), executor, []string{
		"Use the dataset d",
		"Keep the rows where nosuchcolumn > 5",
	})
	if _, err := r.RunAll(); err == nil {
		t.Fatal("expected failure")
	}
	steps := r.Steps()
	if steps[1].State != StepFailed || steps[1].Err == nil {
		t.Errorf("failed step state = %v", steps[1].State)
	}
}

func TestRunnerVersioning(t *testing.T) {
	ctx := skills.NewContext()
	ctx.Datasets["d"] = dataset.MustNewTable("d", dataset.IntColumn("x", []int64{1, 2, 3}, nil))
	executor := dag.NewExecutor(reg, ctx)
	r := NewRunner(MustNewParser(reg), executor, []string{
		"Use the dataset d",
		"Keep the rows where x > 1", // d v2
		"Keep the rows where x > 2", // d v3
		"Use the dataset d, version 1",
		"Count the rows",
	})
	steps, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Versions("d")); got != 3 {
		t.Errorf("versions of d = %d, want 3", got)
	}
	c, _ := steps[4].Result.Table.Column("rows")
	if c.Value(0).I != 3 { // version 1 has all rows
		t.Errorf("count over v1 = %v", c.Value(0))
	}
	// Out-of-range version errors.
	r2 := NewRunner(MustNewParser(reg), dag.NewExecutor(reg, ctx), []string{
		"Use the dataset d, version 9",
	})
	if _, err := r2.RunAll(); err == nil {
		t.Error("bad version should error")
	}
}
