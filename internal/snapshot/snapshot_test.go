package snapshot

import (
	"testing"
	"time"

	"datachat/internal/cloud"
	"datachat/internal/dataset"
	"datachat/internal/sqlengine"
)

func newCloudDB(t *testing.T, rows int) *cloud.Database {
	t.Helper()
	ids := make([]int64, rows)
	for i := range ids {
		ids[i] = int64(i)
	}
	db := cloud.NewDatabase("warehouse", cloud.DefaultPricing, 100)
	if err := db.CreateTable(dataset.MustNewTable("sensor",
		dataset.IntColumn("id", ids, nil))); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateGetAndFreeReads(t *testing.T) {
	db := newCloudDB(t, 1000)
	store := NewStore(50)
	snap, err := store.Create("sensor_snap", db, "sensor", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Data.NumRows() != 1000 {
		t.Errorf("snapshot rows = %d", snap.Data.NumRows())
	}
	createCost := db.Meter().BytesScanned()
	if createCost == 0 {
		t.Fatal("creation should be charged")
	}
	// Ten iterations against the snapshot: cloud meter must not move.
	for i := 0; i < 10; i++ {
		if _, err := store.Get("sensor_snap"); err != nil {
			t.Fatal(err)
		}
	}
	if db.Meter().BytesScanned() != createCost {
		t.Error("snapshot reads must not charge the cloud meter")
	}
	if store.Reads() != 10 {
		t.Errorf("reads = %d", store.Reads())
	}
}

func TestCreateFromSample(t *testing.T) {
	db := newCloudDB(t, 10_000)
	store := NewStore(50)
	snap, err := store.Create("s10", db, "sensor", 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SampleRate != 0.1 {
		t.Errorf("rate = %v", snap.SampleRate)
	}
	if snap.Data.NumRows() >= 10_000 || snap.Data.NumRows() == 0 {
		t.Errorf("sampled snapshot rows = %d", snap.Data.NumRows())
	}
}

func TestRefresh(t *testing.T) {
	db := newCloudDB(t, 500)
	store := NewStore(50)
	now := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	store.SetClock(func() time.Time { return now })
	if _, err := store.Create("snap", db, "sensor", 1, 0); err != nil {
		t.Fatal(err)
	}
	before := db.Meter().BytesScanned()
	now = now.Add(24 * time.Hour)
	snap, err := store.Refresh("snap", db)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.RefreshedAt.Equal(now) {
		t.Errorf("RefreshedAt = %v", snap.RefreshedAt)
	}
	if db.Meter().BytesScanned() <= before {
		t.Error("refresh should charge the cloud meter")
	}
	other := cloud.NewDatabase("other", cloud.DefaultPricing, 0)
	if _, err := store.Refresh("snap", other); err == nil {
		t.Error("refresh against wrong database should fail")
	}
}

func TestErrorsAndLifecycle(t *testing.T) {
	db := newCloudDB(t, 10)
	store := NewStore(50)
	if _, err := store.Create("", db, "sensor", 1, 0); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := store.Create("x", db, "missing", 1, 0); err == nil {
		t.Error("missing source table should fail")
	}
	if _, err := store.Create("x", db, "sensor", 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Create("x", db, "sensor", 1, 0); err == nil {
		t.Error("duplicate snapshot should fail")
	}
	if _, err := store.Get("nope"); err == nil {
		t.Error("missing snapshot get should fail")
	}
	if _, err := store.Info("nope"); err == nil {
		t.Error("missing snapshot info should fail")
	}
	if _, err := store.Refresh("nope", db); err == nil {
		t.Error("missing snapshot refresh should fail")
	}
	info, err := store.Info("x")
	if err != nil {
		t.Fatal(err)
	}
	if info.SourceTable != "sensor" || info.SourceDB != "warehouse" {
		t.Errorf("info = %+v", info)
	}
	if names := store.Names(); len(names) != 1 || names[0] != "x" {
		t.Errorf("names = %v", names)
	}
	if err := store.Drop("x"); err != nil {
		t.Fatal(err)
	}
	if err := store.Drop("x"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestSQLOverSnapshotStore(t *testing.T) {
	db := newCloudDB(t, 100)
	store := NewStore(50)
	if _, err := store.Create("sensor", db, "sensor", 1, 0); err != nil {
		t.Fatal(err)
	}
	cloudCost := db.Meter().BytesScanned()
	out, err := sqlengine.Exec(store, "SELECT COUNT(*) AS n FROM sensor WHERE id >= 50")
	if err != nil {
		t.Fatal(err)
	}
	c, _ := out.Column("n")
	if c.Value(0).I != 50 {
		t.Errorf("count = %v", c.Value(0))
	}
	if db.Meter().BytesScanned() != cloudCost {
		t.Error("SQL over snapshots must not charge the cloud meter")
	}
}
