package conformance

import (
	"fmt"
	"strings"

	"datachat/internal/dataset"
	"datachat/internal/plan"
	"datachat/internal/recipe"
	"datachat/internal/skills"
	"datachat/internal/sqlengine"
)

// DryRunReport is the outcome of planning a case without executing it.
type DryRunReport struct {
	// Explain is the pass-pipeline report for the case's final step.
	Explain *plan.Explain
	// Tasks is the number of surviving plan nodes (post-fusion).
	Tasks int
}

// DryRun lowers the case to the plan layer without executing anything: it
// type-checks the program by propagating fixture schemas through every
// step (conditions, formulas, and column references must resolve), then
// runs the full pass pipeline via the executor's zero-side-effect EXPLAIN.
// No scan, no sample, no skill Apply runs — the counting-DB test pins it.
func DryRun(c *Case) (*DryRunReport, error) {
	env, err := newEnv(c)
	if err != nil {
		return nil, err
	}
	if err := typeCheck(c); err != nil {
		return nil, err
	}
	g := (&recipe.Recipe{Name: c.Name, Steps: c.Steps}).Graph()
	last := g.Last()
	e, err := env.s.Executor().Explain(g, last)
	if err != nil {
		return nil, fmt.Errorf("conformance: planning %s: %w", c.Name, err)
	}
	return &DryRunReport{Explain: e, Tasks: len(e.Nodes)}, nil
}

// CheckExplain evaluates the case's explain: assertions against a report.
func CheckExplain(c *Case, rep *DryRunReport) error {
	for _, a := range c.Explain {
		switch a.Kind {
		case "tasks":
			ok := false
			switch a.Op {
			case "<=":
				ok = rep.Tasks <= a.N
			case ">=":
				ok = rep.Tasks >= a.N
			case "=":
				ok = rep.Tasks == a.N
			}
			if !ok {
				return fmt.Errorf("explain: %d tasks, want %s %d", rep.Tasks, a.Op, a.N)
			}
		case "pass":
			found := false
			for _, t := range rep.Explain.Passes {
				if t.Pass == a.Name {
					found = true
					if t.Fired != a.Want {
						return fmt.Errorf("explain: pass %s fired=%v, want %v", a.Name, t.Fired, a.Want)
					}
				}
			}
			if !found {
				return fmt.Errorf("explain: no pass named %q in the trace", a.Name)
			}
		case "pushdown":
			found := false
			for _, n := range rep.Explain.Nodes {
				for _, p := range n.Pushdown {
					if strings.Contains(p, a.Name) {
						found = true
					}
				}
			}
			if !found {
				return fmt.Errorf("explain: no pushdown marker containing %q", a.Name)
			}
		}
	}
	return nil
}

// colset is a propagated schema: the set of columns a step's output is
// known to have. open means the columns cannot be statically known (after
// RunSQL, Pivot, or a skill the checker does not model) — downstream
// column checks are skipped rather than guessed.
type colset struct {
	open  bool
	order []string
	cols  map[string]bool
}

func newColset(names []string) *colset {
	s := &colset{cols: map[string]bool{}}
	for _, n := range names {
		s.add(n)
	}
	return s
}

func openSet() *colset { return &colset{open: true, cols: map[string]bool{}} }

func (s *colset) add(name string) {
	key := strings.ToLower(name)
	if !s.cols[key] {
		s.cols[key] = true
		s.order = append(s.order, name)
	}
}

func (s *colset) has(name string) bool {
	return s.open || s.cols[strings.ToLower(name)]
}

func (s *colset) clone() *colset {
	c := &colset{open: s.open, cols: map[string]bool{}}
	for _, n := range s.order {
		c.add(n)
	}
	return c
}

func (s *colset) drop(name string) {
	key := strings.ToLower(name)
	if !s.cols[key] {
		return
	}
	delete(s.cols, key)
	out := s.order[:0]
	for _, n := range s.order {
		if strings.ToLower(n) != key {
			out = append(out, n)
		}
	}
	s.order = out
}

// typeCheck propagates fixture schemas through the canonical program and
// rejects references to columns that cannot exist — the dry-run "flag a
// type error without executing" half of the harness.
func typeCheck(c *Case) error {
	schemas := map[string]*colset{}
	for _, f := range c.Fixtures {
		t, err := dataset.ReadCSVString(f.Name, f.CSV)
		if err != nil {
			return err
		}
		schemas[strings.ToLower(f.Name)] = newColset(t.ColumnNames())
	}
	dbTables := map[string]*colset{}
	for _, f := range c.DBFixtures {
		t, err := dataset.ReadCSVString(f.Table, f.CSV)
		if err != nil {
			return err
		}
		dbTables[strings.ToLower(f.DB+"."+f.Table)] = newColset(t.ColumnNames())
	}
	for i, step := range c.Steps {
		out, err := checkStep(step, schemas, dbTables)
		if err != nil {
			return fmt.Errorf("conformance: dry-run: step %d (%s): %w", i+1, step.Skill, err)
		}
		if step.Output != "" {
			schemas[strings.ToLower(step.Output)] = out
		}
	}
	return nil
}

func inputSchema(step recipe.Step, schemas map[string]*colset) (*colset, error) {
	if len(step.Inputs) == 0 {
		return nil, fmt.Errorf("no dataset input")
	}
	s, ok := schemas[strings.ToLower(step.Inputs[0])]
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", step.Inputs[0])
	}
	return s, nil
}

func checkExprCols(src string, s *colset) error {
	if s.open {
		return nil
	}
	e, err := sqlengine.ParseExpr(src)
	if err != nil {
		return fmt.Errorf("parsing %q: %w", src, err)
	}
	for _, col := range e.Columns(nil) {
		if !s.has(col) {
			return fmt.Errorf("unknown column %q in %q", col, src)
		}
	}
	return nil
}

func checkCols(names []string, s *colset) error {
	for _, n := range names {
		if !s.has(n) {
			return fmt.Errorf("unknown column %q", n)
		}
	}
	return nil
}

func checkStep(step recipe.Step, schemas map[string]*colset, dbTables map[string]*colset) (*colset, error) {
	args := skills.Args(step.Args)
	switch step.Skill {
	case "UseDataset":
		name := args.StringOr("dataset", "")
		s, ok := schemas[strings.ToLower(name)]
		if !ok {
			return nil, fmt.Errorf("unknown dataset %q", name)
		}
		return s.clone(), nil
	case "LoadData":
		// Session-file fixtures only; the checker cannot see arbitrary URLs.
		return openSet(), nil
	case "LoadTable", "SampleTable":
		db := args.StringOr("database", "")
		table := args.StringOr("table", "")
		s, ok := dbTables[strings.ToLower(db+"."+table)]
		if !ok {
			return nil, fmt.Errorf("unknown cloud table %s.%s", db, table)
		}
		if cond := args.StringOr("condition", ""); cond != "" {
			if err := checkExprCols(cond, s); err != nil {
				return nil, err
			}
		}
		if cols := args.StringListOr("columns"); len(cols) > 0 {
			if err := checkCols(cols, s); err != nil {
				return nil, err
			}
			return newColset(cols), nil
		}
		return s.clone(), nil
	case "KeepRows", "DropRows":
		s, err := inputSchema(step, schemas)
		if err != nil {
			return nil, err
		}
		if err := checkExprCols(args.StringOr("condition", ""), s); err != nil {
			return nil, err
		}
		return s.clone(), nil
	case "KeepColumns":
		s, err := inputSchema(step, schemas)
		if err != nil {
			return nil, err
		}
		cols := args.StringListOr("columns")
		if err := checkCols(cols, s); err != nil {
			return nil, err
		}
		if s.open {
			return openSet(), nil
		}
		return newColset(cols), nil
	case "DropColumns":
		s, err := inputSchema(step, schemas)
		if err != nil {
			return nil, err
		}
		cols := args.StringListOr("columns")
		if err := checkCols(cols, s); err != nil {
			return nil, err
		}
		out := s.clone()
		for _, c := range cols {
			out.drop(c)
		}
		return out, nil
	case "RenameColumn":
		s, err := inputSchema(step, schemas)
		if err != nil {
			return nil, err
		}
		from := args.StringOr("column", "")
		if !s.has(from) {
			return nil, fmt.Errorf("unknown column %q", from)
		}
		out := s.clone()
		out.drop(from)
		out.add(args.StringOr("to", from))
		return out, nil
	case "NewColumn":
		s, err := inputSchema(step, schemas)
		if err != nil {
			return nil, err
		}
		if formula := args.StringOr("formula", ""); formula != "" {
			if err := checkExprCols(formula, s); err != nil {
				return nil, err
			}
		}
		out := s.clone()
		out.add(args.StringOr("name", ""))
		return out, nil
	case "ChangeType", "FillNull", "ReplaceValues":
		s, err := inputSchema(step, schemas)
		if err != nil {
			return nil, err
		}
		if !s.has(args.StringOr("column", "")) {
			return nil, fmt.Errorf("unknown column %q", args.StringOr("column", ""))
		}
		return s.clone(), nil
	case "SortRows", "DistinctRows":
		s, err := inputSchema(step, schemas)
		if err != nil {
			return nil, err
		}
		if err := checkCols(args.StringListOr("columns"), s); err != nil {
			return nil, err
		}
		return s.clone(), nil
	case "LimitRows", "SampleRows":
		s, err := inputSchema(step, schemas)
		if err != nil {
			return nil, err
		}
		return s.clone(), nil
	case "Concatenate":
		out := &colset{cols: map[string]bool{}}
		for _, in := range step.Inputs {
			s, ok := schemas[strings.ToLower(in)]
			if !ok {
				return nil, fmt.Errorf("unknown dataset %q", in)
			}
			if s.open {
				return openSet(), nil
			}
			for _, n := range s.order {
				out.add(n)
			}
		}
		return out, nil
	case "JoinDatasets":
		merged := &colset{cols: map[string]bool{}}
		for _, in := range step.Inputs {
			s, ok := schemas[strings.ToLower(in)]
			if !ok {
				return nil, fmt.Errorf("unknown dataset %q", in)
			}
			if s.open {
				return openSet(), nil
			}
			for _, n := range s.order {
				merged.add(n)
			}
		}
		if on := args.StringOr("on", ""); on != "" {
			if err := checkExprCols(on, merged); err != nil {
				return nil, err
			}
		}
		// Join output naming (qualifiers, collisions) is the engine's
		// business; downstream checks see an open schema.
		return openSet(), nil
	case "Compute":
		s, err := inputSchema(step, schemas)
		if err != nil {
			return nil, err
		}
		aggs, err := args.AggSpecs("aggregates")
		if err != nil {
			return nil, err
		}
		out := &colset{cols: map[string]bool{}, open: s.open}
		for _, k := range args.StringListOr("for_each") {
			if !s.has(k) {
				return nil, fmt.Errorf("unknown grouping column %q", k)
			}
			out.add(k)
		}
		for _, a := range aggs {
			if a.Column != "" && a.Column != "*" && !s.has(a.Column) {
				return nil, fmt.Errorf("unknown aggregate column %q", a.Column)
			}
			out.add(a.OutName())
		}
		return out, nil
	case "Visualize":
		s, err := inputSchema(step, schemas)
		if err != nil {
			return nil, err
		}
		if kpi := args.StringOr("kpi", ""); !s.has(kpi) {
			return nil, fmt.Errorf("unknown KPI column %q", kpi)
		}
		if err := checkCols(args.StringListOr("by"), s); err != nil {
			return nil, err
		}
		if f := args.StringOr("filter", ""); f != "" {
			if err := checkExprCols(f, s); err != nil {
				return nil, err
			}
		}
		return openSet(), nil
	default:
		// Skills the checker does not model (ML, SQL, collaboration)
		// propagate an open schema: no false positives downstream.
		return openSet(), nil
	}
}
