package dataset

import (
	"testing"
	"time"
)

// The typed accessors back the vectorized executor, so their null-handling
// contract gets its own edge-case suite: all-null, no-null, and mixed
// columns for every type, plus type-mismatch rejections.

func TestTypedAccessorsMixedNulls(t *testing.T) {
	nulls := []bool{false, true, false}

	ic := IntColumn("i", []int64{1, 0, 3}, nulls)
	if vals, nb, ok := ic.Ints(); !ok || len(vals) != 3 || vals[2] != 3 || !nb[1] || nb[0] {
		t.Errorf("Ints() = %v, %v, %v", vals, nb, ok)
	}
	fc := FloatColumn("f", []float64{1.5, 0, 2.5}, nulls)
	if vals, nb, ok := fc.FloatVals(); !ok || vals[0] != 1.5 || !nb[1] {
		t.Errorf("FloatVals() = %v, %v, %v", vals, nb, ok)
	}
	sc := StringColumn("s", []string{"a", "", "c"}, nulls)
	if vals, nb, ok := sc.Strs(); !ok || vals[2] != "c" || !nb[1] {
		t.Errorf("Strs() = %v, %v, %v", vals, nb, ok)
	}
	bc := BoolColumn("b", []bool{true, false, true}, nulls)
	if vals, nb, ok := bc.Bools(); !ok || !vals[0] || !nb[1] {
		t.Errorf("Bools() = %v, %v, %v", vals, nb, ok)
	}
	base := time.Date(2024, 1, 2, 3, 4, 5, 6, time.UTC)
	tc := TimeColumn("ts", []time.Time{base, {}, base.Add(time.Hour)}, nulls)
	if vals, nb, ok := tc.Times(); !ok || vals[0] != base.UnixNano() || !nb[1] {
		t.Errorf("Times() = %v, %v, %v", vals, nb, ok)
	}
}

func TestTypedAccessorsNoNulls(t *testing.T) {
	c := IntColumn("i", []int64{4, 5}, nil)
	vals, nulls, ok := c.Ints()
	if !ok || nulls != nil || len(vals) != 2 {
		t.Fatalf("Ints() = %v, %v, %v; want nil bitmap", vals, nulls, ok)
	}
	if c.Nulls() != nil {
		t.Errorf("Nulls() = %v, want nil for a fully-valid column", c.Nulls())
	}
}

func TestTypedAccessorsAllNull(t *testing.T) {
	n := 4
	nulls := []bool{true, true, true, true}
	cols := []*Column{
		IntColumn("i", make([]int64, n), nulls),
		FloatColumn("f", make([]float64, n), nulls),
		StringColumn("s", make([]string, n), nulls),
		BoolColumn("b", make([]bool, n), nulls),
		TimeNanosColumn("ts", make([]int64, n), nulls),
	}
	for _, c := range cols {
		nb := c.Nulls()
		if nb == nil {
			t.Fatalf("%s: all-null column lost its bitmap", c.Name())
		}
		for i := 0; i < n; i++ {
			if !c.IsNull(i) {
				t.Errorf("%s[%d]: want null", c.Name(), i)
			}
			if !c.Value(i).IsNull() {
				t.Errorf("%s[%d]: boxed value should be null", c.Name(), i)
			}
		}
	}
}

func TestTypedAccessorsTypeMismatch(t *testing.T) {
	c := IntColumn("i", []int64{1}, nil)
	if _, _, ok := c.FloatVals(); ok {
		t.Error("FloatVals on int column should fail")
	}
	if _, _, ok := c.Strs(); ok {
		t.Error("Strs on int column should fail")
	}
	if _, _, ok := c.Bools(); ok {
		t.Error("Bools on int column should fail")
	}
	if _, _, ok := c.Times(); ok {
		t.Error("Times on int column should fail")
	}
	s := StringColumn("s", []string{"x"}, nil)
	if _, _, ok := s.Ints(); ok {
		t.Error("Ints on string column should fail")
	}
}

func TestTimeNanosColumnRoundTrip(t *testing.T) {
	base := time.Date(2023, 7, 9, 10, 11, 12, 0, time.UTC)
	src := TimeColumn("ts", []time.Time{base, base.Add(time.Minute)}, []bool{false, true})
	nanos, nulls, ok := src.Times()
	if !ok {
		t.Fatal("Times() failed")
	}
	rebuilt := TimeNanosColumn("ts", nanos, nulls)
	if rebuilt.Len() != src.Len() || rebuilt.Type() != TypeTime {
		t.Fatalf("rebuilt column shape: %d/%v", rebuilt.Len(), rebuilt.Type())
	}
	for i := 0; i < src.Len(); i++ {
		if !Equal(src.Value(i), rebuilt.Value(i)) {
			t.Errorf("row %d: %v != %v", i, src.Value(i), rebuilt.Value(i))
		}
	}
}

// TestTakeNullEdges pins Take's typed gather on null-heavy inputs and the
// negative-index null extension that the left-outer join relies on.
func TestTakeNullEdges(t *testing.T) {
	c := IntColumn("i", []int64{10, 20, 30}, []bool{false, true, false})
	got := c.Take([]int{2, -1, 1, 0, -1})
	wantNull := []bool{false, true, true, false, true}
	wantVal := []int64{30, 0, 0, 10, 0}
	if got.Len() != 5 {
		t.Fatalf("len = %d", got.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.IsNull(i) != wantNull[i] {
			t.Errorf("null[%d] = %v, want %v", i, got.IsNull(i), wantNull[i])
		}
		if !wantNull[i] && got.Value(i).I != wantVal[i] {
			t.Errorf("val[%d] = %v, want %d", i, got.Value(i), wantVal[i])
		}
	}

	allNull := StringColumn("s", make([]string, 3), []bool{true, true, true})
	taken := allNull.Take([]int{0, 1, 2, -1})
	for i := 0; i < taken.Len(); i++ {
		if !taken.IsNull(i) {
			t.Errorf("all-null take row %d: want null", i)
		}
	}

	noNull := FloatColumn("f", []float64{1, 2}, nil)
	if out := noNull.Take([]int{1, 0}); out.Nulls() != nil {
		t.Errorf("no-null take grew a bitmap: %v", out.Nulls())
	}
}
