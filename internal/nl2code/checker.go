package nl2code

import (
	"fmt"
	"strings"

	"datachat/internal/dataset"
	"datachat/internal/pyapi"
	"datachat/internal/skills"
)

// CheckReport records what the program checker did (§4.5).
type CheckReport struct {
	// Repairs lists reference fixes (misspelled columns snapped to the
	// nearest schema column).
	Repairs []string
	// Removed counts redundant statements stripped (dead assignments).
	Removed int
	// Warnings are non-fatal observations surfaced to the user.
	Warnings []string
}

// Checker validates and post-processes generated programs: syntax and type
// checks, reference validation with nearest-name repair, composition
// validation (every consumed dataset is defined), and dead-code removal.
type Checker struct {
	// Registry resolves API methods.
	Registry *skills.Registry
	// translator lowers parsed programs.
	translator *pyapi.Translator
}

// NewChecker builds a checker.
func NewChecker(reg *skills.Registry) *Checker {
	return &Checker{Registry: reg, translator: pyapi.NewTranslator(reg)}
}

// Check parses and validates a generated Python program against the
// available tables, returning the cleaned invocations.
func (c *Checker) Check(code string, tables map[string]*dataset.Table) ([]skills.Invocation, *CheckReport, error) {
	report := &CheckReport{}
	prog, err := pyapi.Parse(code)
	if err != nil {
		return nil, report, fmt.Errorf("nl2code: syntax check failed: %w", err)
	}
	invs, err := c.translator.Invocations(prog)
	if err != nil {
		return nil, report, fmt.Errorf("nl2code: unknown API call: %w", err)
	}

	// Dead-code removal: drop statements whose output nothing consumes
	// (and that aren't the final answer).
	invs = removeDead(invs, report)

	// Track the evolving column universe per dataset name.
	universe := map[string][]string{}
	for name, t := range tables {
		universe[name] = t.ColumnNames()
	}
	for i := range invs {
		inv := &invs[i]
		cols, err := c.inputColumns(inv, universe)
		if err != nil {
			return nil, report, err
		}
		if err := c.checkInvocation(inv, cols, report); err != nil {
			return nil, report, err
		}
		out := inv.Output
		if out == "" {
			out = fmt.Sprintf("checked%d", i)
			inv.Output = out
		}
		universe[out] = outputColumns(inv, cols)
	}
	return invs, report, nil
}

// inputColumns resolves the column universe an invocation operates over.
func (c *Checker) inputColumns(inv *skills.Invocation, universe map[string][]string) ([]string, error) {
	var cols []string
	seen := map[string]bool{}
	for _, in := range inv.Inputs {
		u, ok := universe[in]
		if !ok {
			return nil, fmt.Errorf("nl2code: statement consumes undefined dataset %q", in)
		}
		for _, col := range u {
			if !seen[strings.ToLower(col)] {
				seen[strings.ToLower(col)] = true
				cols = append(cols, col)
			}
		}
	}
	return cols, nil
}

// checkInvocation validates one statement, repairing near-miss column
// references in place.
func (c *Checker) checkInvocation(inv *skills.Invocation, cols []string, report *CheckReport) error {
	def, err := c.Registry.Lookup(inv.Skill)
	if err != nil {
		return err
	}
	for _, p := range def.Params {
		if p.Required {
			if _, ok := inv.Args[p.Name]; !ok {
				return fmt.Errorf("nl2code: %s is missing required parameter %q", inv.Skill, p.Name)
			}
		}
	}
	switch inv.Skill {
	case "Compute":
		aggs, err := inv.Args.AggSpecs("aggregates")
		if err != nil {
			return fmt.Errorf("nl2code: type check: %w", err)
		}
		changed := false
		for i := range aggs {
			if aggs[i].Column == "*" || aggs[i].Column == "" {
				continue
			}
			fixed, ok := repairColumn(aggs[i].Column, cols, report)
			if !ok {
				return fmt.Errorf("nl2code: %s references unknown column %q", inv.Skill, aggs[i].Column)
			}
			if fixed != aggs[i].Column {
				aggs[i].Column = fixed
				changed = true
			}
		}
		keys := inv.Args.StringListOr("for_each")
		for i, key := range keys {
			fixed, ok := repairColumn(key, cols, report)
			if !ok {
				return fmt.Errorf("nl2code: grouping column %q does not exist", key)
			}
			if fixed != key {
				keys[i] = fixed
				changed = true
			}
		}
		if changed {
			rendered := make([]string, len(aggs))
			for i, a := range aggs {
				rendered[i] = fmt.Sprintf("%s of %s as %s", a.Func, a.Column, a.OutName())
			}
			inv.Args["aggregates"] = rendered
			if len(keys) > 0 {
				inv.Args["for_each"] = keys
			}
		}
	case "LimitRows":
		n, err := inv.Args.Int("count")
		if err != nil || n < 0 {
			return fmt.Errorf("nl2code: LimitRows needs a non-negative count")
		}
	case "KeepRows", "DropRows":
		cond := inv.Args.StringOr("condition", "")
		if _, err := parseConditionExpr(cond); err != nil {
			return fmt.Errorf("nl2code: condition does not parse: %w", err)
		}
	case "SortRows", "KeepColumns":
		keys := inv.Args.StringListOr("columns")
		for i, key := range keys {
			fixed, ok := repairColumn(key, cols, report)
			if !ok {
				return fmt.Errorf("nl2code: %s references unknown column %q", inv.Skill, key)
			}
			keys[i] = fixed
		}
		inv.Args["columns"] = keys
	}
	return nil
}

// outputColumns models the schema after an invocation.
func outputColumns(inv *skills.Invocation, in []string) []string {
	switch inv.Skill {
	case "Compute":
		var out []string
		out = append(out, inv.Args.StringListOr("for_each")...)
		if aggs, err := inv.Args.AggSpecs("aggregates"); err == nil {
			for _, a := range aggs {
				out = append(out, a.OutName())
			}
		}
		return out
	case "KeepColumns":
		return inv.Args.StringListOr("columns")
	case "NewColumn":
		return append(append([]string{}, in...), inv.Args.StringOr("name", "new"))
	default:
		return in
	}
}

// repairColumn returns the column unchanged when it exists, otherwise the
// unique schema column within edit distance 2 (recording the repair), or
// ok=false when no repair is safe.
func repairColumn(name string, cols []string, report *CheckReport) (string, bool) {
	for _, c := range cols {
		if strings.EqualFold(c, name) {
			return c, true
		}
	}
	best, bestDist, ties := "", 3, 0
	for _, c := range cols {
		d := editDistance(strings.ToLower(name), strings.ToLower(c))
		if d < bestDist {
			best, bestDist, ties = c, d, 1
		} else if d == bestDist {
			ties++
		}
	}
	if best != "" && ties == 1 {
		report.Repairs = append(report.Repairs, fmt.Sprintf("%s → %s", name, best))
		return best, true
	}
	return "", false
}

func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// removeDead drops statements whose outputs nothing consumes, keeping the
// final statement (the answer). Mirrors §4.5's removal of redundant lines.
func removeDead(invs []skills.Invocation, report *CheckReport) []skills.Invocation {
	if len(invs) <= 1 {
		return invs
	}
	for {
		consumed := map[string]bool{}
		for _, inv := range invs {
			for _, in := range inv.Inputs {
				consumed[in] = true
			}
		}
		removed := false
		for i := 0; i < len(invs)-1; i++ {
			out := invs[i].Output
			if out == "" || consumed[out] {
				continue
			}
			invs = append(invs[:i], invs[i+1:]...)
			report.Removed++
			removed = true
			break
		}
		if !removed {
			return invs
		}
	}
}
