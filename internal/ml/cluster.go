package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeansModel is a fitted k-means clustering.
type KMeansModel struct {
	Features  []string
	Centroids [][]float64
	Inertia   float64
	Iters     int
}

// TrainKMeans clusters the matrix rows into k clusters with Lloyd's
// algorithm (k-means++ seeding, deterministic by seed).
func TrainKMeans(m *Matrix, k int, seed int64, maxIters int) (*KMeansModel, error) {
	n := len(m.Rows)
	if k <= 0 {
		return nil, fmt.Errorf("ml: k must be positive, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("ml: k=%d exceeds %d rows", k, n)
	}
	if maxIters <= 0 {
		maxIters = 100
	}
	rng := rand.New(rand.NewSource(seed))
	centroids := seedPlusPlus(m.Rows, k, rng)
	assign := make([]int, n)
	var iters int
	for iters = 0; iters < maxIters; iters++ {
		changed := false
		for i, row := range m.Rows {
			best, bestDist := 0, math.Inf(1)
			for c, centroid := range centroids {
				if d := sqDist(row, centroid); d < bestDist {
					best, bestDist = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iters > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, len(m.Names))
		}
		for i, row := range m.Rows {
			c := assign[i]
			counts[c]++
			for j, x := range row {
				next[c][j] += x
			}
		}
		for c := range next {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(next[c], m.Rows[rng.Intn(n)])
				continue
			}
			for j := range next[c] {
				next[c][j] /= float64(counts[c])
			}
		}
		centroids = next
	}
	inertia := 0.0
	for i, row := range m.Rows {
		inertia += sqDist(row, centroids[assign[i]])
	}
	return &KMeansModel{Features: m.Names, Centroids: centroids, Inertia: inertia, Iters: iters}, nil
}

func seedPlusPlus(rows [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, rows[rng.Intn(len(rows))])
	for len(centroids) < k {
		dists := make([]float64, len(rows))
		total := 0.0
		for i, row := range rows {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(row, c); d < best {
					best = d
				}
			}
			dists[i] = best
			total += best
		}
		if total == 0 {
			centroids = append(centroids, rows[rng.Intn(len(rows))])
			continue
		}
		target := rng.Float64() * total
		acc := 0.0
		pick := len(rows) - 1
		for i, d := range dists {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, rows[pick])
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	total := 0.0
	for i := range a {
		d := a[i] - b[i]
		total += d * d
	}
	return total
}

// Predict implements Model, returning the nearest centroid index per row.
func (km *KMeansModel) Predict(features [][]float64) []float64 {
	out := make([]float64, len(features))
	for i, row := range features {
		best, bestDist := 0, math.Inf(1)
		for c, centroid := range km.Centroids {
			if d := sqDist(row, centroid); d < bestDist {
				best, bestDist = c, d
			}
		}
		out[i] = float64(best)
	}
	return out
}

// Kind implements Model.
func (km *KMeansModel) Kind() string { return "kmeans" }

// Explain implements Model.
func (km *KMeansModel) Explain() string {
	return fmt.Sprintf("Clustered rows into %d groups over (%s); within-cluster variance %.4g after %d iterations",
		len(km.Centroids), join(km.Features), km.Inertia, km.Iters)
}

func join(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
