// Plan-pipeline benchmarks live in the external test package so they can
// drive the dag executor (dag imports sqlengine) over realistic relational
// chains: planned execution — fuse + consolidate + pushdown — against the
// naive one-task-per-step baseline, picked up by the tier-1 benchtime smoke.
package sqlengine_test

import (
	"fmt"
	"testing"

	"datachat/internal/cloud"
	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/skills"
)

var benchReg = skills.NewRegistry()

func benchPlanCtx(rows int) *skills.Context {
	ctx := skills.NewContext()
	ids := make([]int64, rows)
	vals := make([]float64, rows)
	cats := make([]string, rows)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = float64(i % 997)
		cats[i] = string(rune('a' + i%5))
	}
	ctx.Datasets["events"] = dataset.MustNewTable("events",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("v", vals, nil),
		dataset.StringColumn("cat", cats, nil),
	)
	return ctx
}

func benchPlanGraph() (*dag.Graph, dag.NodeID) {
	g := dag.NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"events"},
		Args: skills.Args{"condition": "v > 100"}, Output: "f1"})
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"f1"},
		Args: skills.Args{"condition": "v < 900"}, Output: "f2"})
	g.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{"f2"},
		Args: skills.Args{"columns": []string{"id", "v", "cat"}}, Output: "p1"})
	g.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{"p1"},
		Args: skills.Args{"columns": []string{"id", "v"}}, Output: "p2"})
	last := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"p2"},
		Args: skills.Args{"count": 500}})
	return g, last
}

func benchPlanChain(b *testing.B, planned bool) {
	for _, rows := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			ctx := benchPlanCtx(rows)
			ex := dag.NewExecutor(benchReg, ctx)
			if !planned {
				ex.Consolidate, ex.Fuse, ex.Pushdown = false, false, false
			}
			ex.UseCache = false // measure execution, not the cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, last := benchPlanGraph()
				if _, err := ex.Run(g, last); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPlannedChain(b *testing.B) { benchPlanChain(b, true) }

func BenchmarkNaiveChain(b *testing.B) { benchPlanChain(b, false) }

// BenchmarkPlanCompile isolates the planning cost itself: lowering plus the
// full pass pipeline, without executing.
func BenchmarkPlanCompile(b *testing.B) {
	ctx := benchPlanCtx(1_000)
	ex := dag.NewExecutor(benchReg, ctx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, last := benchPlanGraph()
		if _, err := ex.Explain(g, last); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCostCtx adds a cloud table so the cost model has catalog stats to
// seed from and the budget pass has a scan to substitute.
func benchCostCtx(rows int) *skills.Context {
	ctx := benchPlanCtx(rows)
	db := cloud.NewDatabase("wh", cloud.DefaultPricing, 256)
	ids := make([]int64, rows)
	vals := make([]float64, rows)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = float64(i % 997)
	}
	if err := db.CreateTable(dataset.MustNewTable("orders",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("c0", vals, nil),
	)); err != nil {
		panic(err)
	}
	ctx.Cloud["wh"] = db
	return ctx
}

func benchCostGraph() (*dag.Graph, dag.NodeID) {
	g := dag.NewGraph()
	g.Add(skills.Invocation{Skill: "LoadTable",
		Args: skills.Args{"database": "wh", "table": "orders"}, Output: "orders"})
	last := g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"orders"},
		Args: skills.Args{"condition": "c0 > 100"}, Output: "kept"})
	return g, last
}

// BenchmarkCostedPlanning isolates the cost model's planning overhead: the
// full pass pipeline with per-pass cost estimation, against the same
// pipeline with the cost model off (see BenchmarkPlanCompile for the
// pre-cost baseline shape).
func BenchmarkCostedPlanning(b *testing.B) {
	for _, costed := range []bool{false, true} {
		b.Run(fmt.Sprintf("costed=%v", costed), func(b *testing.B) {
			ctx := benchCostCtx(1_000)
			ex := dag.NewExecutor(benchReg, ctx)
			ex.CostModel = costed
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, last := benchCostGraph()
				if _, err := ex.Explain(g, last); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBudgetedScan measures the end-to-end §3 path: a budgeted request
// plans, substitutes the scan for a block sample, and executes the degraded
// pipeline — against the unbudgeted exact scan.
func BenchmarkBudgetedScan(b *testing.B) {
	for _, budget := range []int64{0, 1024} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			ctx := benchCostCtx(50_000)
			ex := dag.NewExecutor(benchReg, ctx)
			ex.UseCache = false
			ex.Options.CostBudgetBytes = budget
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, last := benchCostGraph()
				if _, err := ex.Run(g, last); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
