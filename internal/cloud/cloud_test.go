package cloud

import (
	"math"
	"testing"
	"testing/quick"

	"datachat/internal/dataset"
	"datachat/internal/sqlengine"
)

func bigTable(rows int) *dataset.Table {
	ids := make([]int64, rows)
	vals := make([]float64, rows)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = float64(i % 100)
	}
	return dataset.MustNewTable("events",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("v", vals, nil),
	)
}

func TestCreateScanAndMeter(t *testing.T) {
	db := NewDatabase("test", DefaultPricing, 1000)
	if err := db.CreateTable(bigTable(10_000)); err != nil {
		t.Fatal(err)
	}
	stats, err := db.Stats("events")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != 10_000 || stats.Blocks != 10 {
		t.Fatalf("stats = %+v", stats)
	}
	got, err := db.Scan("events")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 10_000 {
		t.Errorf("scan rows = %d", got.NumRows())
	}
	if db.Meter().BytesScanned() != stats.Bytes {
		t.Errorf("meter = %d, want %d", db.Meter().BytesScanned(), stats.Bytes)
	}
	if db.Meter().Queries() != 1 {
		t.Errorf("queries = %d", db.Meter().Queries())
	}
	if db.Meter().Cost(DefaultPricing) <= 0 {
		t.Error("cost should be positive")
	}
	if db.Meter().SimulatedLatency() <= 0 {
		t.Error("latency should be positive")
	}
}

func TestSampleCostProportionalToRate(t *testing.T) {
	db := NewDatabase("test", DefaultPricing, 100)
	if err := db.CreateTable(bigTable(100_000)); err != nil {
		t.Fatal(err)
	}
	full, _ := db.Stats("events")

	db.Meter().Reset()
	sample, err := db.SampleBlocks("events", 0.10, 42)
	if err != nil {
		t.Fatal(err)
	}
	sampleBytes := db.Meter().BytesScanned()
	ratio := float64(sampleBytes) / float64(full.Bytes)
	if math.Abs(ratio-0.10) > 0.02 {
		t.Errorf("10%% sample scanned %.3f of the table", ratio)
	}
	rowRatio := float64(sample.NumRows()) / 100_000
	if math.Abs(rowRatio-0.10) > 0.02 {
		t.Errorf("10%% sample returned %.3f of rows", rowRatio)
	}
}

func TestSampleDeterministicBySeed(t *testing.T) {
	db := NewDatabase("test", DefaultPricing, 50)
	if err := db.CreateTable(bigTable(5000)); err != nil {
		t.Fatal(err)
	}
	a, err := db.SampleBlocks("events", 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.SampleBlocks("events", 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed should give same sample")
	}
	c, err := db.SampleBlocks("events", 0.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestSampleRateValidation(t *testing.T) {
	db := NewDatabase("test", DefaultPricing, 0)
	if err := db.CreateTable(bigTable(10)); err != nil {
		t.Fatal(err)
	}
	for _, rate := range []float64{0, -1, 1.5} {
		if _, err := db.SampleBlocks("events", rate, 1); err == nil {
			t.Errorf("rate %v should be rejected", rate)
		}
	}
	// Tiny rate still reads at least one block.
	got, err := db.SampleBlocks("events", 0.0001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() == 0 {
		t.Error("minimum one block should be read")
	}
}

func TestDuplicateAndMissingTables(t *testing.T) {
	db := NewDatabase("test", DefaultPricing, 0)
	if err := db.CreateTable(bigTable(10)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(bigTable(10)); err == nil {
		t.Error("duplicate create should fail")
	}
	if _, err := db.Scan("nope"); err == nil {
		t.Error("missing table scan should fail")
	}
	if _, err := db.Stats("nope"); err == nil {
		t.Error("missing table stats should fail")
	}
	if err := db.DropTable("events"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("events"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestEmptyTable(t *testing.T) {
	db := NewDatabase("test", DefaultPricing, 0)
	empty := dataset.MustNewTable("empty", dataset.IntColumn("x", nil, nil))
	if err := db.CreateTable(empty); err != nil {
		t.Fatal(err)
	}
	got, err := db.Scan("empty")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Errorf("rows = %d", got.NumRows())
	}
}

func TestSQLOverCloudChargesMeter(t *testing.T) {
	db := NewDatabase("test", DefaultPricing, 100)
	if err := db.CreateTable(bigTable(1000)); err != nil {
		t.Fatal(err)
	}
	out, err := sqlengine.Exec(db, "SELECT COUNT(*) AS n FROM events WHERE v > 50")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Errorf("rows = %d", out.NumRows())
	}
	if db.Meter().BytesScanned() == 0 {
		t.Error("SQL over cloud should charge the meter")
	}
}

func TestTableNamesSorted(t *testing.T) {
	db := NewDatabase("test", DefaultPricing, 0)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		tbl := bigTable(1).WithName(name)
		if err := db.CreateTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	names := db.TableNames()
	if names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("names = %v", names)
	}
}

func TestSampleCostMonotoneProperty(t *testing.T) {
	db := NewDatabase("test", DefaultPricing, 64)
	if err := db.CreateTable(bigTable(20_000)); err != nil {
		t.Fatal(err)
	}
	// Property: a higher sample rate never scans fewer bytes.
	f := func(a, b uint8) bool {
		ra := 0.01 + float64(a%100)/101.0
		rb := 0.01 + float64(b%100)/101.0
		if ra > rb {
			ra, rb = rb, ra
		}
		db.Meter().Reset()
		if _, err := db.SampleBlocks("events", ra, 3); err != nil {
			return false
		}
		lo := db.Meter().BytesScanned()
		db.Meter().Reset()
		if _, err := db.SampleBlocks("events", rb, 3); err != nil {
			return false
		}
		hi := db.Meter().BytesScanned()
		return lo <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
