package scheduler

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"datachat/internal/board"
	"datachat/internal/cloud"
	"datachat/internal/core"
	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/faults"
	"datachat/internal/recipe"
	"datachat/internal/skills"
)

func metricsCSV(n, seed int) string {
	var b strings.Builder
	b.WriteString("mid,host,val\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,h%d,%d\n", i, i%7, (i*31+seed)%1000)
	}
	return b.String()
}

func metricsTable(t *testing.T, n, seed int) *dataset.Table {
	t.Helper()
	tb, err := dataset.ReadCSVString("metrics", metricsCSV(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func metricsRecipe(t *testing.T) *recipe.Recipe {
	t.Helper()
	g := dag.NewGraph()
	g.Add(skills.Invocation{Skill: "LoadTable",
		Args: skills.Args{"database": "wh", "table": "metrics"}, Output: "metrics"})
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"metrics"},
		Args: skills.Args{"condition": "val >= 500"}, Output: "hot"})
	r, err := recipe.FromGraph("hot-metrics", g)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func newTestRig(t *testing.T) (*core.Platform, *cloud.Database, *board.Hub, *Scheduler, *faults.VirtualClock) {
	t.Helper()
	p := core.New()
	db := cloud.NewDatabase("wh", cloud.DefaultPricing, 64)
	if err := db.CreateTable(metricsTable(t, 500, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.ConnectDatabase(db); err != nil {
		t.Fatal(err)
	}
	clock := faults.NewVirtualClock(time.Unix(1_700_000_000, 0))
	hub := board.NewHub()
	hub.SetClock(clock)
	s := New(p, hub)
	s.SetClock(clock)
	return p, db, hub, s, clock
}

// TestIncrementalRefreshSkipsUnchangedScans is the tentpole acceptance
// path: a job on the virtual clock re-runs at its trigger times; the
// second refresh with unchanged inputs executes ZERO cloud scans (the
// content fingerprint keys the cache) and reports every plan node
// unchanged; replacing the table's data makes the third refresh scan
// again; each refresh reaches a board subscriber in order.
func TestIncrementalRefreshSkipsUnchangedScans(t *testing.T) {
	_, db, hub, s, clock := newTestRig(t)
	ctx := context.Background()

	if _, err := s.Add(Spec{Name: "daily", User: "alice", Recipe: metricsRecipe(t),
		Every: time.Minute, Board: "ops", Tile: "hot"}); err != nil {
		t.Fatal(err)
	}
	if n := s.RunDue(ctx); n != 0 {
		t.Fatalf("ran %d jobs before the first trigger", n)
	}

	// Refresh 1: cold, must scan.
	clock.Advance(time.Minute)
	if n := s.RunDue(ctx); n != 1 {
		t.Fatalf("first trigger ran %d jobs", n)
	}
	q1 := db.Meter().Queries()
	if q1 == 0 {
		t.Fatal("first refresh executed no cloud scans")
	}

	// Refresh 2: data unchanged — zero scans, all fingerprints unchanged.
	clock.Advance(time.Minute)
	if n := s.RunDue(ctx); n != 1 {
		t.Fatalf("second trigger ran %d jobs", n)
	}
	if q2 := db.Meter().Queries(); q2 != q1 {
		t.Fatalf("second refresh scanned the warehouse: queries %d -> %d", q1, q2)
	}
	info, _ := s.Get("daily")
	rec2 := info.History[len(info.History)-1]
	if rec2.FPChanged != 0 || rec2.FPUnchanged == 0 || rec2.FPUnchanged != rec2.FPTotal {
		t.Fatalf("unchanged refresh diff = %+v", rec2)
	}
	if rec2.Stats.CacheHits == 0 {
		t.Fatalf("unchanged refresh had no cache hits: %+v", rec2.Stats)
	}

	// Out-of-band data refresh, then refresh 3: must scan again and report
	// changed fingerprints.
	if err := db.ReplaceTable(metricsTable(t, 500, 2)); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	if n := s.RunDue(ctx); n != 1 {
		t.Fatalf("third trigger ran %d jobs", n)
	}
	if q3 := db.Meter().Queries(); q3 == q1 {
		t.Fatal("refresh after ReplaceTable executed no cloud scans")
	}
	info, _ = s.Get("daily")
	rec3 := info.History[len(info.History)-1]
	if rec3.FPChanged == 0 {
		t.Fatalf("changed refresh diff = %+v", rec3)
	}

	// The board saw all three refreshes, in order, with run metadata.
	b, ok := hub.Get("ops")
	if !ok {
		t.Fatal("scheduler did not create the board")
	}
	_, backlog, err := b.Subscribe(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 3 {
		t.Fatalf("board backlog has %d updates; want 3", len(backlog))
	}
	for i, u := range backlog {
		if u.Job != "daily" || u.Seq != i+1 || u.Version != uint64(i+1) || u.Tile != "hot" {
			t.Fatalf("update %d = %+v", i, u)
		}
		if u.Table == nil || u.RunError != "" {
			t.Fatalf("update %d has no table / an error: %+v", i, u)
		}
	}
	if backlog[1].FPChanged != 0 || backlog[2].FPChanged == 0 {
		t.Fatalf("board updates don't carry the diff: %+v vs %+v", backlog[1], backlog[2])
	}

	st := s.Stats()
	if st.Runs != 3 || st.Failures != 0 || st.Published != 3 || st.NodesUnchanged == 0 {
		t.Fatalf("scheduler stats = %+v", st)
	}
}

func TestGateSkipsAndReleases(t *testing.T) {
	_, _, _, s, clock := newTestRig(t)
	ctx := context.Background()
	if _, err := s.Add(Spec{Name: "j", User: "alice", Recipe: metricsRecipe(t), Every: time.Second, Board: "b"}); err != nil {
		t.Fatal(err)
	}

	releases := 0
	throttle := true
	s.SetGate(func(context.Context) (func(), error) {
		if throttle {
			return nil, errors.New("background throttled")
		}
		return func() { releases++ }, nil
	})

	clock.Advance(time.Second)
	s.RunDue(ctx)
	info, _ := s.Get("j")
	if info.Runs != 0 || len(info.History) != 1 || !info.History[0].Skipped {
		t.Fatalf("throttled run not recorded as skip: %+v", info)
	}
	if !strings.Contains(info.History[0].SkipReason, "admission") {
		t.Fatalf("skip reason = %q", info.History[0].SkipReason)
	}
	if st := s.Stats(); st.Skips != 1 || st.Runs != 0 || st.Published != 0 {
		t.Fatalf("stats after throttle = %+v", st)
	}

	throttle = false
	clock.Advance(time.Second)
	s.RunDue(ctx)
	if releases != 1 {
		t.Fatalf("gate released %d times; want 1", releases)
	}
	if info, _ := s.Get("j"); info.Runs != 1 {
		t.Fatalf("runs = %d after admitted run", info.Runs)
	}
}

func TestMaxRunsAndFailurePublishing(t *testing.T) {
	_, _, hub, s, clock := newTestRig(t)
	ctx := context.Background()

	// A recipe against a database that was never connected: every run
	// fails, and the board must see the error rather than silence.
	g := dag.NewGraph()
	g.Add(skills.Invocation{Skill: "LoadTable",
		Args: skills.Args{"database": "nope", "table": "t"}, Output: "t"})
	bad, err := recipe.FromGraph("bad", g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(Spec{Name: "bad", User: "alice", Recipe: bad, Every: time.Second, Board: "errs", MaxRuns: 2}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		clock.Advance(time.Second)
		s.RunDue(ctx)
	}
	info, _ := s.Get("bad")
	if !info.Done || info.Runs != 2 {
		t.Fatalf("MaxRuns not honored: %+v", info)
	}
	if st := s.Stats(); st.Failures != 2 || st.Done != 1 {
		t.Fatalf("stats = %+v", st)
	}
	b, ok := hub.Get("errs")
	if !ok {
		t.Fatal("no error board")
	}
	_, backlog, err := b.Subscribe(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 2 || backlog[0].RunError == "" || backlog[0].Table != nil {
		t.Fatalf("failure updates = %+v", backlog)
	}

	if _, err := s.RunNow(ctx, "missing"); err == nil {
		t.Fatal("RunNow on unknown job succeeded")
	}
	rec, err := s.RunNow(ctx, "bad")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Err == "" {
		t.Fatalf("forced run of failing job reported no error: %+v", rec)
	}
}

func TestLoopOnVirtualClock(t *testing.T) {
	_, _, _, s, _ := newTestRig(t)
	if _, err := s.Add(Spec{Name: "loop", User: "alice", Recipe: metricsRecipe(t),
		Every: 10 * time.Second, Board: "b", MaxRuns: 3}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		// On the virtual clock every Sleep advances time instantly, so the
		// loop replays the whole schedule as fast as the runs execute.
		s.Loop(ctx, time.Second)
	}()
	deadline := time.After(10 * time.Second)
	for {
		if info, _ := s.Get("loop"); info.Done {
			break
		}
		select {
		case <-deadline:
			t.Fatal("loop never completed the job's 3 runs")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
	if info, _ := s.Get("loop"); info.Runs != 3 {
		t.Fatalf("runs = %d; want 3", info.Runs)
	}
}
