package dag

import (
	"fmt"

	"datachat/internal/plan"
	"datachat/internal/skills"
)

// lowerGraph lowers the whole graph into the logical-plan IR targeting
// target. Parent edges become plan inputs with the producers' output names
// resolved; the slice pass then prunes whatever the target does not need.
func lowerGraph(g *Graph, target NodeID) (*plan.Plan, error) {
	// One read lock for the whole walk; everything below uses direct field
	// access (the locked accessors would self-deadlock under RWMutex).
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.nodes[target]; !ok {
		return nil, fmt.Errorf("dag: no node %d", target)
	}
	lp := plan.New(int(target))
	for _, id := range g.order {
		n := g.nodes[id]
		pn := &plan.Node{
			ID:     int(id),
			Skill:  n.Inv.Skill,
			Args:   n.Inv.Args,
			Output: n.Inv.Output,
		}
		for i, p := range n.Parents {
			if p < 0 {
				pn.Inputs = append(pn.Inputs, plan.Input{Node: plan.External, Name: n.Inv.Inputs[i]})
			} else {
				pn.Inputs = append(pn.Inputs, plan.Input{Node: int(p), Name: g.nodes[p].OutputName()})
			}
		}
		lp.Add(pn)
	}
	return lp, nil
}

// logicalPlan lowers g and runs the executor's configured pass pipeline:
// structural fingerprint + session-wide CSE (CSE, over the whole graph,
// before slicing), slice, fuse (Fuse), strict fingerprint, cost-based join
// reorder (JoinReorder), budget sample substitution, cache probe
// (UseCache), consolidate (Consolidate), pushdown (Pushdown). When the cost
// model is on, every pass trace snapshots the estimated plan cost, so
// EXPLAIN shows per-pass cost deltas. With readOnly set the cache probe
// uses a side-effect-free peek, so Explain never perturbs stats or LRU
// recency.
func (e *Executor) logicalPlan(g *Graph, target NodeID, readOnly bool) (*plan.Plan, error) {
	lp, err := lowerGraph(g, target)
	if err != nil {
		return nil, err
	}
	env := &plan.Env{
		Lookup: e.Registry.Lookup,
		ExtFingerprint: func(name string) (uint64, bool) {
			fp, err := e.Ctx.Fingerprint(name)
			if err != nil {
				return 0, false
			}
			return fp, true
		},
		SourceFingerprint: func(skill string, args skills.Args) (uint64, bool) {
			def, err := e.Registry.Lookup(skill)
			if err != nil || def.SourceFingerprint == nil {
				return 0, false
			}
			return def.SourceFingerprint(e.Ctx, args)
		},
	}
	if e.UseCache {
		if readOnly {
			env.CacheGet = func(key string) (*skills.Result, bool) {
				return nil, e.cache.Peek(key)
			}
		} else {
			env.CacheGet = func(key string) (*skills.Result, bool) {
				res, ok := e.cache.Get(key)
				if ok {
					e.counters.cacheHits.Add(1)
				}
				return res, ok
			}
		}
	}
	if e.CostModel {
		env.TableStats = func(database, table string) (plan.TableEstimate, bool) {
			db, ok := e.Ctx.Cloud[database]
			if !ok {
				return plan.TableEstimate{}, false
			}
			ts, err := db.Stats(table)
			if err != nil {
				return plan.TableEstimate{}, false
			}
			return plan.TableEstimate{Rows: int64(ts.Rows), Bytes: ts.Bytes, Pricing: db.Pricing()}, true
		}
		env.DatasetStats = func(name string) (int64, int64, bool) {
			t, err := e.Ctx.Dataset(name)
			if err != nil {
				return 0, 0, false
			}
			return int64(t.NumRows()), plan.ApproxTableBytes(t), true
		}
		env.DatasetColumns = func(name string) ([]string, bool) {
			t, err := e.Ctx.Dataset(name)
			if err != nil {
				return nil, false
			}
			return t.ColumnNames(), true
		}
		if e.statsReg != nil {
			env.Observed = e.statsReg.Lookup
		}
		env.CostBudgetBytes = e.Options.CostBudgetBytes
	}
	var passes []plan.Pass
	if e.CSE {
		passes = append(passes, plan.StructuralFingerprintPass(), plan.CSEPass())
	}
	passes = append(passes, plan.SlicePass())
	if e.Fuse {
		passes = append(passes, plan.FusePass())
	}
	passes = append(passes, plan.FingerprintPass())
	if e.JoinReorder {
		passes = append(passes, plan.JoinReorderPass())
	}
	if e.CostModel {
		passes = append(passes, plan.SampleSubstitutePass())
	}
	passes = append(passes, plan.CacheProbePass())
	if e.Consolidate {
		passes = append(passes, plan.ConsolidatePass())
	}
	if e.Pushdown {
		passes = append(passes, plan.PushdownPass())
	}
	if err := plan.RunPasses(lp, env, passes...); err != nil {
		return nil, err
	}
	if !readOnly {
		e.lastCost.Store(lp.Cost)
	}
	return lp, nil
}

// Explain compiles — but does not execute — the sub-DAG ending at target
// through the full pass pipeline and returns the plan report: surviving
// nodes, consolidated SQL fragments, and which passes fired.
func (e *Executor) Explain(g *Graph, target NodeID) (*plan.Explain, error) {
	lp, err := e.logicalPlan(g, target, true)
	if err != nil {
		return nil, err
	}
	return plan.NewExplain(lp), nil
}
