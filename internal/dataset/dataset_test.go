package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "null"},
		{Int(42), "42"},
		{Float(3.5), "3.5"},
		{Str("hello"), "hello"},
		{Bool(true), "true"},
		{Time(time.Date(2020, 1, 2, 0, 0, 0, 0, time.UTC)), "2020-01-02"},
		{Time(time.Date(2020, 1, 2, 13, 4, 5, 0, time.UTC)), "2020-01-02 13:04:05"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueAsFloat(t *testing.T) {
	if f, ok := Int(7).AsFloat(); !ok || f != 7 {
		t.Errorf("Int(7).AsFloat() = %v, %v", f, ok)
	}
	if f, ok := Bool(true).AsFloat(); !ok || f != 1 {
		t.Errorf("Bool(true).AsFloat() = %v, %v", f, ok)
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Error("Str.AsFloat() should fail")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("Null.AsFloat() should fail")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, Null, 0},
		{Null, Int(0), -1},
		{Int(0), Null, 1},
		{Int(1), Int(2), -1},
		{Float(2.5), Int(2), 1},
		{Int(3), Float(3.0), 0},
		{Str("a"), Str("b"), -1},
		{Bool(false), Bool(true), -1},
		{Time(time.Unix(0, 0)), Time(time.Unix(1, 0)), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return Compare(Float(a), Float(b)) == -Compare(Float(b), Float(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want Type
	}{
		{"", TypeNull},
		{"null", TypeNull},
		{"NULL", TypeNull},
		{"42", TypeInt},
		{"-7", TypeInt},
		{"3.14", TypeFloat},
		{"1e3", TypeFloat},
		{"true", TypeBool},
		{"False", TypeBool},
		{"2021-06-01", TypeTime},
		{"hello world", TypeString},
	}
	for _, c := range cases {
		if got := ParseValue(c.in).Type; got != c.want {
			t.Errorf("ParseValue(%q).Type = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseTimeFormats(t *testing.T) {
	for _, in := range []string{"2020-05-06", "05-06-2020", "05/06/2020", "2020-05-06 10:11:12"} {
		tm, err := ParseTime(in)
		if err != nil {
			t.Errorf("ParseTime(%q): %v", in, err)
			continue
		}
		if tm.Year() != 2020 || tm.Month() != 5 || tm.Day() != 6 {
			t.Errorf("ParseTime(%q) = %v", in, tm)
		}
	}
	if _, err := ParseTime("not a date"); err == nil {
		t.Error("ParseTime should reject garbage")
	}
}

func TestCoerce(t *testing.T) {
	if v, ok := Coerce(Int(3), TypeFloat); !ok || v.F != 3 {
		t.Errorf("Coerce int->float = %v, %v", v, ok)
	}
	if v, ok := Coerce(Float(3.0), TypeInt); !ok || v.I != 3 {
		t.Errorf("Coerce whole float->int = %v, %v", v, ok)
	}
	if _, ok := Coerce(Float(3.5), TypeInt); ok {
		t.Error("Coerce fractional float->int should fail")
	}
	if v, ok := Coerce(Int(5), TypeString); !ok || v.S != "5" {
		t.Errorf("Coerce int->string = %v, %v", v, ok)
	}
	if v, ok := Coerce(Str("2020-01-01"), TypeTime); !ok || v.T.Year() != 2020 {
		t.Errorf("Coerce string->time = %v, %v", v, ok)
	}
	if v, ok := Coerce(Null, TypeInt); !ok || !v.IsNull() {
		t.Error("Coerce null should stay null")
	}
}

func TestCommonType(t *testing.T) {
	cases := []struct {
		a, b, want Type
	}{
		{TypeInt, TypeInt, TypeInt},
		{TypeInt, TypeFloat, TypeFloat},
		{TypeNull, TypeBool, TypeBool},
		{TypeString, TypeInt, TypeString},
		{TypeTime, TypeTime, TypeTime},
	}
	for _, c := range cases {
		if got := CommonType(c.a, c.b); got != c.want {
			t.Errorf("CommonType(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestColumnBasics(t *testing.T) {
	c := IntColumn("age", []int64{10, 20, 30}, []bool{false, true, false})
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if !c.IsNull(1) || c.IsNull(0) {
		t.Error("null mask wrong")
	}
	if c.NullCount() != 1 {
		t.Errorf("NullCount = %d", c.NullCount())
	}
	if got := c.Value(2); got.I != 30 {
		t.Errorf("Value(2) = %v", got)
	}
	if got := c.Value(1); !got.IsNull() {
		t.Errorf("Value(1) = %v, want null", got)
	}
}

func TestColumnAppendCoercion(t *testing.T) {
	c := NewColumn("x", TypeFloat)
	c.Append(Int(1))
	c.Append(Float(2.5))
	c.Append(Null)
	c.Append(Str("oops")) // cannot coerce -> null
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Value(0).F != 1 || c.Value(1).F != 2.5 {
		t.Error("coerced values wrong")
	}
	if !c.IsNull(2) || !c.IsNull(3) {
		t.Error("nulls wrong after append")
	}
}

func TestColumnTake(t *testing.T) {
	c := StringColumn("s", []string{"a", "b", "c"}, []bool{false, true, false})
	got := c.Take([]int{2, 0, 2})
	if got.Len() != 3 || got.Value(0).S != "c" || got.Value(1).S != "a" || got.Value(2).S != "c" {
		t.Errorf("Take = %v %v %v", got.Value(0), got.Value(1), got.Value(2))
	}
	got2 := c.Take([]int{1})
	if !got2.IsNull(0) {
		t.Error("Take should preserve nulls")
	}
}

func TestColumnFloats(t *testing.T) {
	c := IntColumn("n", []int64{1, 2, 3}, []bool{false, false, true})
	vals, valid := c.Floats()
	if !valid[0] || !valid[1] || valid[2] {
		t.Errorf("valid = %v", valid)
	}
	if vals[0] != 1 || vals[1] != 2 {
		t.Errorf("vals = %v", vals)
	}
}

func newSampleTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("people",
		StringColumn("name", []string{"ann", "bob", "carl", "dee"}, nil),
		IntColumn("age", []int64{30, 25, 40, 25}, nil),
		FloatColumn("score", []float64{1.5, 2.5, 0.5, 2.5}, []bool{false, false, true, false}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTableBasics(t *testing.T) {
	tbl := newSampleTable(t)
	if tbl.NumRows() != 4 || tbl.NumCols() != 3 {
		t.Fatalf("shape = %d×%d", tbl.NumRows(), tbl.NumCols())
	}
	if _, err := tbl.Column("AGE"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := tbl.Column("missing"); err == nil {
		t.Error("missing column should error")
	}
	row := tbl.Row(1)
	if row[0].S != "bob" || row[1].I != 25 {
		t.Errorf("Row(1) = %v", row)
	}
}

func TestTableDuplicateColumnRejected(t *testing.T) {
	_, err := NewTable("bad",
		IntColumn("x", []int64{1}, nil),
		IntColumn("x", []int64{2}, nil),
	)
	if err == nil {
		t.Error("duplicate column names should be rejected")
	}
}

func TestTableLengthMismatchRejected(t *testing.T) {
	_, err := NewTable("bad",
		IntColumn("x", []int64{1, 2}, nil),
		IntColumn("y", []int64{1}, nil),
	)
	if err == nil {
		t.Error("length mismatch should be rejected")
	}
}

func TestTableSelectDrop(t *testing.T) {
	tbl := newSampleTable(t)
	sel, err := tbl.Select("age", "name")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(sel.ColumnNames(), ","); got != "age,name" {
		t.Errorf("Select order = %s", got)
	}
	dropped, err := tbl.Drop("score")
	if err != nil {
		t.Fatal(err)
	}
	if dropped.HasColumn("score") || dropped.NumCols() != 2 {
		t.Error("Drop failed")
	}
	if _, err := tbl.Drop("nope"); err == nil {
		t.Error("Drop missing column should error")
	}
}

func TestTableWithColumnReplace(t *testing.T) {
	tbl := newSampleTable(t)
	newAge := IntColumn("age", []int64{1, 2, 3, 4}, nil)
	out, err := tbl.WithColumn(newAge)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCols() != 3 {
		t.Errorf("replace should not add a column: %d", out.NumCols())
	}
	c, _ := out.Column("age")
	if c.Value(0).I != 1 {
		t.Error("replacement not applied")
	}
	extra := BoolColumn("flag", []bool{true, false, true, false}, nil)
	out2, err := tbl.WithColumn(extra)
	if err != nil {
		t.Fatal(err)
	}
	if out2.NumCols() != 4 {
		t.Error("append should add a column")
	}
}

func TestTableSortBy(t *testing.T) {
	tbl := newSampleTable(t)
	sorted, err := tbl.SortBy([]string{"age", "name"}, []bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	nameCol, _ := sorted.Column("name")
	got := []string{}
	for i := 0; i < sorted.NumRows(); i++ {
		got = append(got, nameCol.Value(i).S)
	}
	want := []string{"dee", "bob", "ann", "carl"} // age 25,25 (name desc), 30, 40
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortBy order = %v, want %v", got, want)
		}
	}
}

func TestTableConcatAndDedupe(t *testing.T) {
	a := MustNewTable("a",
		IntColumn("x", []int64{1, 2}, nil),
		StringColumn("tag", []string{"p", "q"}, nil),
	)
	b := MustNewTable("b",
		IntColumn("x", []int64{2, 3}, nil),
		FloatColumn("y", []float64{0.5, 0.7}, nil),
	)
	merged, err := a.Concat(b, false)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumRows() != 4 || merged.NumCols() != 3 {
		t.Fatalf("merged shape = %d×%d", merged.NumRows(), merged.NumCols())
	}
	yCol, _ := merged.Column("y")
	if !yCol.IsNull(0) || yCol.IsNull(2) {
		t.Error("null padding wrong")
	}

	c := MustNewTable("c", IntColumn("x", []int64{1, 1, 2}, nil))
	d := MustNewTable("d", IntColumn("x", []int64{2, 5}, nil))
	deduped, err := c.Concat(d, true)
	if err != nil {
		t.Fatal(err)
	}
	if deduped.NumRows() != 3 { // 1, 2, 5
		t.Errorf("dedupe rows = %d, want 3", deduped.NumRows())
	}
}

func TestTableDistinct(t *testing.T) {
	tbl := MustNewTable("t",
		IntColumn("a", []int64{1, 1, 2, 1}, nil),
		StringColumn("b", []string{"x", "x", "y", "z"}, nil),
	)
	allDistinct, err := tbl.Distinct()
	if err != nil {
		t.Fatal(err)
	}
	if allDistinct.NumRows() != 3 {
		t.Errorf("Distinct() rows = %d, want 3", allDistinct.NumRows())
	}
	byA, err := tbl.Distinct("a")
	if err != nil {
		t.Fatal(err)
	}
	if byA.NumRows() != 2 {
		t.Errorf("Distinct(a) rows = %d, want 2", byA.NumRows())
	}
}

func TestTableSliceHead(t *testing.T) {
	tbl := newSampleTable(t)
	if got := tbl.Head(2).NumRows(); got != 2 {
		t.Errorf("Head(2) = %d rows", got)
	}
	if got := tbl.Slice(-5, 100).NumRows(); got != 4 {
		t.Errorf("Slice clamping failed: %d rows", got)
	}
	if got := tbl.Slice(3, 1).NumRows(); got != 0 {
		t.Errorf("inverted slice should be empty: %d rows", got)
	}
}

func TestTableEqual(t *testing.T) {
	a := newSampleTable(t)
	b := newSampleTable(t)
	if !a.Equal(b) {
		t.Error("identical tables should be equal")
	}
	c, _ := a.Drop("score")
	if a.Equal(c) {
		t.Error("different schemas should not be equal")
	}
	if a.Equal(nil) {
		t.Error("nil should not be equal")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	src := "name,age,score,joined,active\nann,30,1.5,2020-01-01,true\nbob,25,,2021-02-03,false\n,40,0.25,,true\n"
	tbl, err := ReadCSVString("people", src)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 || tbl.NumCols() != 5 {
		t.Fatalf("shape = %d×%d", tbl.NumRows(), tbl.NumCols())
	}
	wantTypes := map[string]Type{"name": TypeString, "age": TypeInt, "score": TypeFloat, "joined": TypeTime, "active": TypeBool}
	for name, want := range wantTypes {
		c, err := tbl.Column(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Type() != want {
			t.Errorf("column %s type = %v, want %v", name, c.Type(), want)
		}
	}
	scoreCol, _ := tbl.Column("score")
	if !scoreCol.IsNull(1) {
		t.Error("empty cell should be null")
	}

	var buf bytes.Buffer
	if err := WriteCSV(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVString("people", buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Equal(back) {
		t.Errorf("csv round trip changed data:\n%s\nvs\n%s", tbl, back)
	}
}

func TestCSVMixedNumericWidens(t *testing.T) {
	tbl, err := ReadCSVString("t", "v\n1\n2.5\n3\n")
	if err != nil {
		t.Fatal(err)
	}
	c, _ := tbl.Column("v")
	if c.Type() != TypeFloat {
		t.Errorf("mixed int/float should widen to float, got %v", c.Type())
	}
	if c.Value(0).F != 1 {
		t.Errorf("widened value = %v", c.Value(0))
	}
}

func TestCSVEmptyAndErrors(t *testing.T) {
	if _, err := ReadCSVString("t", ""); err == nil {
		t.Error("empty csv should error")
	}
	tbl, err := ReadCSVString("t", "a,b\n")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 || tbl.NumCols() != 2 {
		t.Errorf("header-only shape = %d×%d", tbl.NumRows(), tbl.NumCols())
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	// Property: any table of ints and strings survives a CSV round trip.
	f := func(ints []int64, raw []string) bool {
		n := len(ints)
		if len(raw) < n {
			n = len(raw)
		}
		if n == 0 {
			return true
		}
		strVals := make([]string, n)
		for i := 0; i < n; i++ {
			// Constrain to CSV-safe, parse-stable strings.
			s := strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' {
					return r
				}
				return 'x'
			}, raw[i])
			if s == "" {
				s = "s"
			}
			strVals[i] = "v" + s
		}
		tbl := MustNewTable("p",
			IntColumn("i", ints[:n], nil),
			StringColumn("s", strVals, nil),
		)
		var buf bytes.Buffer
		if err := WriteCSV(tbl, &buf); err != nil {
			return false
		}
		back, err := ReadCSVString("p", buf.String())
		if err != nil {
			return false
		}
		return tbl.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSortStabilityProperty(t *testing.T) {
	// Property: sorting by a constant key preserves original order.
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		konst := make([]int64, len(vals))
		tbl := MustNewTable("t",
			IntColumn("k", konst, nil),
			IntColumn("v", vals, nil),
		)
		sorted, err := tbl.SortBy([]string{"k"}, nil)
		if err != nil {
			return false
		}
		return tbl.Equal(sorted.WithName("t"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
