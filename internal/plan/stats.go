package plan

import "sync"

// ObservedStats is one measured execution outcome for a fingerprinted
// sub-plan: actual output rows/bytes, and whether the streamed execution
// spilled to disk.
type ObservedStats struct {
	Rows    int64
	Bytes   int64
	Spilled bool
}

// DefaultStatsCapacity bounds a stats registry created by the platform.
const DefaultStatsCapacity = 4096

// StatsRegistry is a bounded, concurrency-safe feedback store mapping
// canonical plan fingerprints to observed execution stats. The executor
// records every successful (non-degraded) task result; the cost model's
// Env.Observed hook reads it back so cardinality estimates converge on
// measured reality across a session — and, because fingerprints are
// canonical across front ends and sessions, across the whole platform.
type StatsRegistry struct {
	mu  sync.RWMutex
	cap int
	m   map[string]ObservedStats
}

// NewStatsRegistry returns an empty registry bounded at capacity entries
// (<= 0 means DefaultStatsCapacity).
func NewStatsRegistry(capacity int) *StatsRegistry {
	if capacity <= 0 {
		capacity = DefaultStatsCapacity
	}
	return &StatsRegistry{cap: capacity, m: make(map[string]ObservedStats)}
}

// Observe records (or overwrites) the stats for a fingerprint. When the
// registry is full and the fingerprint is new, the whole generation is
// dropped — estimates degrade gracefully to heuristics and re-learn, which
// is cheaper than tracking recency for what is pure advisory state.
func (r *StatsRegistry) Observe(fingerprint string, s ObservedStats) {
	if r == nil || fingerprint == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[fingerprint]; !ok && len(r.m) >= r.cap {
		r.m = make(map[string]ObservedStats)
	}
	if prev, ok := r.m[fingerprint]; ok && prev.Spilled {
		s.Spilled = true // spill history is sticky across re-observations
	}
	r.m[fingerprint] = s
}

// ObserveSpill marks a fingerprint's execution as having spilled to disk,
// preserving any recorded cardinality.
func (r *StatsRegistry) ObserveSpill(fingerprint string) {
	if r == nil || fingerprint == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.m[fingerprint]
	s.Spilled = true
	if _, ok := r.m[fingerprint]; !ok && len(r.m) >= r.cap {
		r.m = make(map[string]ObservedStats)
	}
	r.m[fingerprint] = s
}

// Lookup returns the observed stats for a fingerprint. It has the exact
// signature of Env.Observed.
func (r *StatsRegistry) Lookup(fingerprint string) (ObservedStats, bool) {
	if r == nil {
		return ObservedStats{}, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.m[fingerprint]
	return s, ok
}

// Len returns the number of fingerprints currently tracked.
func (r *StatsRegistry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}
