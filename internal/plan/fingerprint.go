package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// The fingerprint pass computes a canonical structural fingerprint for every
// node of the (already sliced and fused) plan, plus the cache key derived
// from it. Because every front end lowers through the same pipeline,
// identical pipelines built via GEL, the pyapi, or recipe replay fingerprint
// identically — and because fusion runs first, a pre-merged recipe step and
// the live chain it was sliced from normalize to the same fingerprint, so
// they share one sub-DAG cache entry.
//
// The fingerprint covers the skill (canonical name), the canonicalized
// arguments (sorted keys, JSON-encoded values), and the input fingerprints
// (external inputs hash by name). The cache key appends a content
// fingerprint per external input so a reloaded dataset under the same name
// can never serve a stale result. Volatile nodes — and their descendants —
// get no key at all.

type fingerprintPass struct {
	// lenient makes the pass tolerate unresolvable skills — the node (and
	// its descendants) get an empty fingerprint instead of an error — and
	// skips cache-key computation. The session-wide CSE pass runs it over
	// the whole session graph before slicing, where failed past requests
	// may have left nodes no strict pass could fingerprint and where
	// out-of-cone external inputs should not be content-hashed.
	lenient bool
}

// FingerprintPass annotates nodes with fingerprints, cache keys, and the
// skill-definition flags later passes rely on (requires Env.Lookup).
func FingerprintPass() Pass { return fingerprintPass{} }

// StructuralFingerprintPass is the lenient whole-graph variant: structural
// fingerprints only, no cache keys, unresolvable nodes skipped.
func StructuralFingerprintPass() Pass { return fingerprintPass{lenient: true} }

func (fingerprintPass) Name() string { return "fingerprint" }

func (fp fingerprintPass) Run(p *Plan, env *Env, t *PassTrace) error {
	if env.Lookup == nil {
		return nil
	}
	exts := map[int][]string{} // node ID → sorted external input names
	for _, n := range p.Nodes {
		def, err := env.Lookup(n.Skill)
		if err != nil {
			if fp.lenient {
				n.Fingerprint, n.Key = "", ""
				continue
			}
			return fmt.Errorf("plan: node %d: %w", n.ID, err)
		}
		n.Mergeable = def.MergeSQL != nil
		n.Invalidates = def.Invalidates
		n.Volatile = def.Volatile

		// A volatile skill that can content-hash its out-of-DAG source (a
		// registered file, say) becomes cacheable: the hash below joins the
		// fingerprint, so changed content yields a fresh key, never a stale
		// hit. Without the hash the node — and every descendant — stays
		// uncacheable.
		var srcFP uint64
		srcOK := false
		if n.Volatile && env.SourceFingerprint != nil {
			if fp, ok := env.SourceFingerprint(n.Skill, n.Args); ok {
				srcFP, srcOK = fp, true
				n.Volatile = false
			}
		}

		h := sha256.New()
		fmt.Fprintf(h, "skill:%s\n", strings.ToLower(def.Name))
		if srcOK {
			fmt.Fprintf(h, "src:%016x\n", srcFP)
		}
		keys := make([]string, 0, len(n.Args))
		for k := range n.Args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v, err := json.Marshal(n.Args[k])
			if err != nil {
				return fmt.Errorf("plan: node %d: arg %q: %w", n.ID, k, err)
			}
			fmt.Fprintf(h, "arg:%s=%s\n", k, v)
		}
		extSet := map[string]bool{}
		poisoned := false
		for _, in := range n.Inputs {
			if in.Node == External {
				fmt.Fprintf(h, "ext:%s\n", in.Name)
				extSet[in.Name] = true
				continue
			}
			parent := p.Node(in.Node)
			if parent == nil || (fp.lenient && parent.Fingerprint == "") {
				// An unfingerprintable ancestor poisons the whole subtree:
				// hashing an empty parent fingerprint would collide
				// structurally different plans.
				poisoned = true
				break
			}
			fmt.Fprintf(h, "in:%s\n", parent.Fingerprint)
			if parent.Volatile {
				n.Volatile = true
			}
			for _, name := range exts[parent.ID] {
				extSet[name] = true
			}
		}
		if poisoned {
			n.Fingerprint, n.Key = "", ""
			continue
		}
		n.Fingerprint = hex.EncodeToString(h.Sum(nil))

		names := make([]string, 0, len(extSet))
		for name := range extSet {
			names = append(names, name)
		}
		sort.Strings(names)
		exts[n.ID] = names

		n.Key = ""
		if !fp.lenient && !n.Volatile && env.ExtFingerprint != nil {
			var b strings.Builder
			b.WriteString(n.Fingerprint)
			ok := true
			for _, name := range names {
				fp, found := env.ExtFingerprint(name)
				if !found {
					// Missing input: execution will report the real error;
					// the node simply cannot be cached.
					ok = false
					break
				}
				fmt.Fprintf(&b, "|%s=%016x", name, fp)
			}
			if ok {
				n.Key = b.String()
			}
		}
	}
	t.Fired = true
	return nil
}
