// Package gel implements Guided English Language (§1, §2.3): the controlled
// natural language DataChat recipes are written in. It provides the
// sentence grammar (one or more patterns per skill), a parser from GEL text
// to skill invocations, friendly date/condition phrases, autocomplete for
// the console (Figure 3c), and the IDE-like recipe stepper with breakpoints
// (Figure 2a).
package gel

import (
	"fmt"
	"strings"
)

// slotKind types a pattern placeholder.
type slotKind int

const (
	slotWord   slotKind = iota // one token
	slotNumber                 // one numeric token
	slotList                   // comma/and separated tokens until next literal
	slotRest                   // everything to end of sentence
)

// segment is one element of a compiled pattern: a literal word or a slot.
type segment struct {
	literal string
	slot    string
	kind    slotKind
}

// pattern is a compiled GEL sentence template.
type pattern struct {
	skill    string
	raw      string
	segments []segment
}

// compilePattern parses a template like
// "keep the rows where {condition:rest}" into segments.
func compilePattern(skill, raw string) (*pattern, error) {
	p := &pattern{skill: skill, raw: raw}
	for _, tok := range strings.Fields(raw) {
		if strings.HasPrefix(tok, "{") && strings.HasSuffix(tok, "}") {
			body := tok[1 : len(tok)-1]
			name, kindName := body, "word"
			if i := strings.IndexByte(body, ':'); i >= 0 {
				name, kindName = body[:i], body[i+1:]
			}
			var kind slotKind
			switch kindName {
			case "word":
				kind = slotWord
			case "number":
				kind = slotNumber
			case "list":
				kind = slotList
			case "rest":
				kind = slotRest
			default:
				return nil, fmt.Errorf("gel: unknown slot kind %q in pattern %q", kindName, raw)
			}
			p.segments = append(p.segments, segment{slot: name, kind: kind})
			continue
		}
		p.segments = append(p.segments, segment{literal: strings.ToLower(tok)})
	}
	return p, nil
}

// tokenize splits a GEL sentence into tokens, keeping quoted strings
// together and treating commas as separators.
func tokenize(s string) []string {
	var tokens []string
	var cur strings.Builder
	inQuote := byte(0)
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote != 0:
			cur.WriteByte(c)
			if c == inQuote {
				inQuote = 0
			}
		case c == '\'' || c == '"':
			inQuote = c
			cur.WriteByte(c)
		case c == ' ' || c == '\t':
			flush()
		case c == ',':
			flush()
			tokens = append(tokens, ",")
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return tokens
}

// match attempts to bind the pattern against tokens, returning captured
// slot values. Lists absorb comma/"and"-separated tokens until the next
// literal matches; rest absorbs everything remaining.
func (p *pattern) match(tokens []string) (map[string]any, bool) {
	caps := map[string]any{}
	ti := 0
	for si := 0; si < len(p.segments); si++ {
		seg := p.segments[si]
		switch {
		case seg.literal != "":
			if ti >= len(tokens) || !strings.EqualFold(tokens[ti], seg.literal) {
				return nil, false
			}
			ti++
		case seg.kind == slotRest:
			if ti >= len(tokens) {
				return nil, false
			}
			caps[seg.slot] = strings.Join(tokens[ti:], " ")
			ti = len(tokens)
		case seg.kind == slotWord, seg.kind == slotNumber:
			if ti >= len(tokens) || tokens[ti] == "," {
				return nil, false
			}
			if seg.kind == slotNumber && !looksNumeric(tokens[ti]) {
				return nil, false
			}
			caps[seg.slot] = strings.Trim(tokens[ti], `'"`)
			ti++
		case seg.kind == slotList:
			stop := func(tok string) bool {
				// The list ends where the next literal segment begins.
				for sj := si + 1; sj < len(p.segments); sj++ {
					if p.segments[sj].literal != "" {
						return strings.EqualFold(tok, p.segments[sj].literal)
					}
				}
				return false
			}
			var items []string
			for ti < len(tokens) && !stop(tokens[ti]) {
				tok := tokens[ti]
				if tok == "," || strings.EqualFold(tok, "and") {
					ti++
					continue
				}
				items = append(items, strings.Trim(tok, `'"`))
				ti++
			}
			if len(items) == 0 {
				return nil, false
			}
			caps[seg.slot] = items
		}
	}
	if ti != len(tokens) {
		return nil, false
	}
	return caps, true
}

func looksNumeric(tok string) bool {
	if tok == "" {
		return false
	}
	dot := false
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		switch {
		case c >= '0' && c <= '9':
		case c == '.' && !dot:
			dot = true
		case (c == '-' || c == '+') && i == 0 && len(tok) > 1:
		case c == '%' && i == len(tok)-1:
		default:
			return false
		}
	}
	return true
}

// nextLiterals returns the candidate continuations after the tokens consume
// a prefix of the pattern: the next literal word, or a slot marker.
func (p *pattern) nextLiterals(tokens []string) (string, bool) {
	ti := 0
	for si := 0; si < len(p.segments); si++ {
		seg := p.segments[si]
		if ti >= len(tokens) {
			if seg.literal != "" {
				return seg.literal, true
			}
			return "<" + seg.slot + ">", true
		}
		switch {
		case seg.literal != "":
			if !strings.EqualFold(tokens[ti], seg.literal) {
				return "", false
			}
			ti++
		case seg.kind == slotRest:
			return "", false // already inside free text
		case seg.kind == slotWord, seg.kind == slotNumber:
			ti++
		case seg.kind == slotList:
			stopWord := ""
			for sj := si + 1; sj < len(p.segments); sj++ {
				if p.segments[sj].literal != "" {
					stopWord = p.segments[sj].literal
					break
				}
			}
			for ti < len(tokens) && !strings.EqualFold(tokens[ti], stopWord) {
				ti++
			}
		}
	}
	return "", false
}
