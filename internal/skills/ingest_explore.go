package skills

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strings"

	"datachat/internal/dataset"
)

func ingestionSkills() []*Definition {
	return []*Definition{
		{
			Name:     "LoadData",
			Category: DataIngestion,
			Summary:  "Load a CSV file or URL into the session",
			Params: []ParamSpec{
				{"source", "string", true, "file name or URL to load"},
				{"name", "string", false, "dataset name (defaults to the file stem)"},
			},
			GEL:      "Load data from the URL {source}",
			Volatile: true, // re-registered files must be re-read
			// The file's content hash keys the cache, so LoadData (and its
			// descendants) cache across requests yet re-registering a file
			// with new bytes changes every downstream key.
			SourceFingerprint: func(ctx *Context, args Args) (uint64, bool) {
				source, err := args.String("source")
				if err != nil {
					return 0, false
				}
				content, ok := ctx.File(source)
				if !ok {
					return 0, false
				}
				h := fnv.New64a()
				io.WriteString(h, source)
				h.Write([]byte{0})
				io.WriteString(h, content)
				return h.Sum64(), true
			},
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				source, err := inv.Args.String("source")
				if err != nil {
					return nil, err
				}
				content, ok := ctx.File(source)
				if !ok {
					return nil, fmt.Errorf("skills: no file or URL %q is registered with the session", source)
				}
				name := inv.Args.StringOr("name", datasetNameFromSource(source))
				t, err := dataset.ReadCSVString(name, content)
				if err != nil {
					return nil, err
				}
				return &Result{Table: t, Message: fmt.Sprintf("Loaded %d rows × %d columns as %s", t.NumRows(), t.NumCols(), name)}, nil
			},
		},
		{
			Name:     "LoadTable",
			Category: DataIngestion,
			Summary:  "Load a table from a connected cloud database (full scan)",
			Params: []ParamSpec{
				{"database", "string", true, "connected database name"},
				{"table", "string", true, "table to load"},
				{"condition", "expression", false, "filter applied to the scanned rows (plan pushdown)"},
				{"columns", "columns", false, "columns to fetch (plan pushdown)"},
			},
			GEL:      "Load the table {table} from the database {database}",
			Volatile: true, // cloud tables change outside the DAG
			// The warehouse computes a content fingerprint at ingest and
			// serves it as free metadata (cloud.TableStats), so the scan's
			// cache key tracks the stored data: an unchanged table cache-hits
			// with zero Scan calls, a refreshed table changes every
			// downstream key. Metadata reads cost nothing and are never
			// fault-injected, so this probe cannot itself fail a run.
			SourceFingerprint: func(ctx *Context, args Args) (uint64, bool) {
				dbName, err := args.String("database")
				if err != nil {
					return 0, false
				}
				tableName, err := args.String("table")
				if err != nil {
					return 0, false
				}
				db, ok := ctx.Cloud[dbName]
				if !ok {
					return 0, false
				}
				st, err := db.Stats(tableName)
				if err != nil {
					return 0, false
				}
				h := fnv.New64a()
				io.WriteString(h, dbName)
				h.Write([]byte{0})
				io.WriteString(h, tableName)
				h.Write([]byte{0})
				var buf [8]byte
				binary.LittleEndian.PutUint64(buf[:], st.Fingerprint)
				h.Write(buf[:])
				return h.Sum64(), true
			},
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				dbName, err := inv.Args.String("database")
				if err != nil {
					return nil, err
				}
				tableName, err := inv.Args.String("table")
				if err != nil {
					return nil, err
				}
				db, ok := ctx.Cloud[dbName]
				if !ok {
					return nil, fmt.Errorf("skills: no connected database %q", dbName)
				}
				t, err := db.Scan(tableName)
				if err != nil {
					if res := degradedScan(ctx, db, tableName, err); res != nil {
						if res.Table, err = applyScanPushdown(res.Table, inv); err != nil {
							return nil, err
						}
						return res, nil
					}
					return nil, err
				}
				if t, err = applyScanPushdown(t, inv); err != nil {
					return nil, err
				}
				return &Result{Table: t}, nil
			},
		},
		{
			Name:     "UseDataset",
			Category: DataIngestion,
			Summary:  "Select an existing session dataset as the working data",
			Params: []ParamSpec{
				{"dataset", "string", true, "dataset name"},
				{"version", "number", false, "dataset version (informational)"},
			},
			GEL:      "Use the dataset {dataset}",
			Volatile: true, // resolves whatever the session currently holds
			// The held table's content hash keys the cache, so pipelines
			// rooted at a session dataset cache across requests, yet
			// replacing the dataset (PutDataset drops the memoized hash)
			// changes every downstream key.
			SourceFingerprint: func(ctx *Context, args Args) (uint64, bool) {
				name, err := args.String("dataset")
				if err != nil {
					return 0, false
				}
				fp, err := ctx.Fingerprint(name)
				if err != nil {
					return 0, false
				}
				return fp, true
			},
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				name, err := inv.Args.String("dataset")
				if err != nil {
					return nil, err
				}
				t, err := ctx.Dataset(name)
				if err != nil {
					return nil, err
				}
				return &Result{Table: t}, nil
			},
		},
	}
}

// applyScanPushdown applies the optional "condition" and "columns"
// parameters the plan pushdown pass injects into scan skills, so sampling
// and snapshot reads materialize fewer rows and columns (§3). The filter
// runs on the scanned table first, then the projection narrows it.
func applyScanPushdown(t *dataset.Table, inv Invocation) (*dataset.Table, error) {
	if condStr, err := inv.Args.String("condition"); err == nil {
		cond, err := parseCondition(condStr)
		if err != nil {
			return nil, err
		}
		if t, err = filterTable(t, cond); err != nil {
			return nil, err
		}
	}
	if cols, err := inv.Args.StringList("columns"); err == nil {
		out, err := t.Select(cols...)
		if err != nil {
			return nil, err
		}
		t = out
	}
	return t, nil
}

func datasetNameFromSource(source string) string {
	name := source
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	if i := strings.IndexByte(name, '?'); i >= 0 {
		name = name[:i]
	}
	if i := strings.LastIndexByte(name, '.'); i > 0 {
		name = name[:i]
	}
	if name == "" {
		return "data"
	}
	return name
}

func costControlSkills() []*Definition {
	return []*Definition{
		{
			Name:     "SampleTable",
			Category: CostControl,
			Summary:  "Load a block-level sample of a cloud table at a fraction of the scan cost",
			Params: []ParamSpec{
				{"database", "string", true, "connected database name"},
				{"table", "string", true, "table to sample"},
				{"rate", "number", true, "sample rate in (0, 1], e.g. 0.1 for 10%"},
				{"condition", "expression", false, "filter applied to the sampled rows (plan pushdown)"},
				{"columns", "columns", false, "columns to fetch (plan pushdown)"},
			},
			GEL:      "Sample {rate} of the table {table} from the database {database}",
			Volatile: true, // cloud tables change outside the DAG
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				dbName, err := inv.Args.String("database")
				if err != nil {
					return nil, err
				}
				tableName, err := inv.Args.String("table")
				if err != nil {
					return nil, err
				}
				rate, err := inv.Args.Float("rate")
				if err != nil {
					return nil, err
				}
				db, ok := ctx.Cloud[dbName]
				if !ok {
					return nil, fmt.Errorf("skills: no connected database %q", dbName)
				}
				t, err := db.SampleBlocks(tableName, rate, ctx.Seed)
				if err != nil {
					return nil, err
				}
				sampled := t.NumRows()
				if t, err = applyScanPushdown(t, inv); err != nil {
					return nil, err
				}
				return &Result{Table: t, Message: fmt.Sprintf("Sampled %d rows at rate %v", sampled, rate)}, nil
			},
		},
		{
			Name:     "CreateSnapshot",
			Category: CostControl,
			Summary:  "Cache a cloud table (or a sample) in the fixed-cost local store",
			Params: []ParamSpec{
				{"name", "string", true, "snapshot name"},
				{"database", "string", true, "source database"},
				{"table", "string", true, "source table"},
				{"rate", "number", false, "sample rate (defaults to a full copy)"},
			},
			GEL:         "Create a snapshot {name} of the table {table} from the database {database}",
			Volatile:    true,
			Invalidates: true, // writes the shared snapshot store
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				if ctx.Snapshots == nil {
					return nil, fmt.Errorf("skills: no snapshot store is configured")
				}
				name, err := inv.Args.String("name")
				if err != nil {
					return nil, err
				}
				dbName, err := inv.Args.String("database")
				if err != nil {
					return nil, err
				}
				tableName, err := inv.Args.String("table")
				if err != nil {
					return nil, err
				}
				db, ok := ctx.Cloud[dbName]
				if !ok {
					return nil, fmt.Errorf("skills: no connected database %q", dbName)
				}
				rate := inv.Args.FloatOr("rate", 1)
				snap, err := ctx.Snapshots.Create(name, db, tableName, rate, ctx.Seed)
				if err != nil {
					return nil, err
				}
				return &Result{Table: snap.Data, Message: fmt.Sprintf("Snapshot %s holds %d rows", name, snap.Data.NumRows())}, nil
			},
		},
		{
			Name:     "UseSnapshot",
			Category: CostControl,
			Summary:  "Load a snapshot from the local store (free of cloud cost)",
			Params: []ParamSpec{
				{"name", "string", true, "snapshot name"},
				{"condition", "expression", false, "filter applied to the snapshot rows (plan pushdown)"},
				{"columns", "columns", false, "columns to read (plan pushdown)"},
			},
			GEL:      "Use the snapshot {name}",
			Volatile: true, // snapshot contents change on refresh
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				if ctx.Snapshots == nil {
					return nil, fmt.Errorf("skills: no snapshot store is configured")
				}
				name, err := inv.Args.String("name")
				if err != nil {
					return nil, err
				}
				t, err := ctx.Snapshots.Get(name)
				if err != nil {
					return nil, err
				}
				if t, err = applyScanPushdown(t, inv); err != nil {
					return nil, err
				}
				return &Result{Table: t}, nil
			},
		},
		{
			Name:     "RefreshSnapshot",
			Category: CostControl,
			Summary:  "Re-pull a snapshot from its source cloud database",
			Params: []ParamSpec{
				{"name", "string", true, "snapshot name"},
				{"database", "string", true, "source database"},
			},
			GEL:         "Refresh the snapshot {name} from the database {database}",
			Volatile:    true,
			Invalidates: true, // re-pulls shared source data
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				if ctx.Snapshots == nil {
					return nil, fmt.Errorf("skills: no snapshot store is configured")
				}
				name, err := inv.Args.String("name")
				if err != nil {
					return nil, err
				}
				dbName, err := inv.Args.String("database")
				if err != nil {
					return nil, err
				}
				db, ok := ctx.Cloud[dbName]
				if !ok {
					return nil, fmt.Errorf("skills: no connected database %q", dbName)
				}
				snap, err := ctx.Snapshots.Refresh(name, db)
				if err != nil {
					return nil, err
				}
				return &Result{Table: snap.Data, Message: fmt.Sprintf("Snapshot %s refreshed at %s", name, snap.RefreshedAt.Format("2006-01-02 15:04:05"))}, nil
			},
		},
	}
}

func explorationSkills() []*Definition {
	return []*Definition{
		{
			Name:     "DescribeColumn",
			Category: DataExploration,
			Summary:  "Summarize one column: type, nulls, distincts, and statistics",
			Params: []ParamSpec{
				{"column", "column", true, "column to describe"},
			},
			GEL: "Describe the column {column}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				colName, err := inv.Args.String("column")
				if err != nil {
					return nil, err
				}
				c, err := t.Column(colName)
				if err != nil {
					return nil, err
				}
				return describeColumns(t.Name(), []*dataset.Column{c})
			},
		},
		{
			Name:     "DescribeDataset",
			Category: DataExploration,
			Summary:  "Summarize every column of the dataset",
			Params:   nil,
			GEL:      "Describe the dataset",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				return describeColumns(t.Name(), t.Columns())
			},
		},
		{
			Name:     "ShowDataset",
			Category: DataExploration,
			Summary:  "Preview the first rows of the dataset",
			Params: []ParamSpec{
				{"rows", "number", false, "rows to show (default 10)"},
			},
			GEL: "Show the dataset",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				n := inv.Args.IntOr("rows", 10)
				return &Result{Table: t.Head(n), Message: fmt.Sprintf("%s has %d rows × %d columns", t.Name(), t.NumRows(), t.NumCols())}, nil
			},
		},
		{
			Name:     "CountRows",
			Category: DataExploration,
			Summary:  "Count the rows in the dataset",
			Params:   nil,
			GEL:      "Count the rows",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				out := dataset.MustNewTable("count",
					dataset.IntColumn("rows", []int64{int64(t.NumRows())}, nil))
				return &Result{Table: out}, nil
			},
		},
		{
			Name:     "ListDatasets",
			Category: DataExploration,
			Summary:  "List the session's datasets with shapes and columns",
			Params:   nil,
			GEL:      "List the datasets",
			Volatile: true, // reflects live session state
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				names := ctx.DatasetNames()
				nameCol := dataset.NewColumn("DatasetName", dataset.TypeString)
				rowsCol := dataset.NewColumn("NumRows", dataset.TypeInt)
				colsCol := dataset.NewColumn("NumColumns", dataset.TypeInt)
				columnsCol := dataset.NewColumn("Columns", dataset.TypeString)
				for _, name := range names {
					t, err := ctx.Dataset(name)
					if err != nil {
						continue
					}
					nameCol.Append(dataset.Str(name))
					rowsCol.Append(dataset.Int(int64(t.NumRows())))
					colsCol.Append(dataset.Int(int64(t.NumCols())))
					columnsCol.Append(dataset.Str(strings.Join(t.ColumnNames(), ", ")))
				}
				out, err := dataset.NewTable("datasets", nameCol, rowsCol, colsCol, columnsCol)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
		},
		{
			Name:     "Correlate",
			Category: DataExploration,
			Summary:  "Compute the Pearson correlation between two numeric columns",
			Params: []ParamSpec{
				{"column1", "column", true, "first numeric column"},
				{"column2", "column", true, "second numeric column"},
			},
			GEL: "Correlate {column1} with {column2}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				c1Name, err := inv.Args.String("column1")
				if err != nil {
					return nil, err
				}
				c2Name, err := inv.Args.String("column2")
				if err != nil {
					return nil, err
				}
				r, n, err := pearson(t, c1Name, c2Name)
				if err != nil {
					return nil, err
				}
				out := dataset.MustNewTable("correlation",
					dataset.StringColumn("columns", []string{c1Name + " ~ " + c2Name}, nil),
					dataset.FloatColumn("pearson_r", []float64{r}, nil),
					dataset.IntColumn("rows_used", []int64{int64(n)}, nil))
				return &Result{Table: out, Message: fmt.Sprintf("Pearson r = %.4f over %d rows", r, n)}, nil
			},
		},
		{
			Name:     "TopValues",
			Category: DataExploration,
			Summary:  "List the most frequent values of a column",
			Params: []ParamSpec{
				{"column", "column", true, "column to count"},
				{"count", "number", false, "values to show (default 10)"},
			},
			GEL: "Show the top values of {column}",
			Apply: func(ctx *Context, inv Invocation) (*Result, error) {
				t, err := singleInput(ctx, inv)
				if err != nil {
					return nil, err
				}
				colName, err := inv.Args.String("column")
				if err != nil {
					return nil, err
				}
				c, err := t.Column(colName)
				if err != nil {
					return nil, err
				}
				counts := map[string]int64{}
				var order []string
				for i := 0; i < c.Len(); i++ {
					key := c.Value(i).String()
					if _, seen := counts[key]; !seen {
						order = append(order, key)
					}
					counts[key]++
				}
				sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
				limit := inv.Args.IntOr("count", 10)
				if limit > len(order) {
					limit = len(order)
				}
				valCol := dataset.NewColumn(colName, dataset.TypeString)
				countCol := dataset.NewColumn("count", dataset.TypeInt)
				for _, key := range order[:limit] {
					valCol.Append(dataset.Str(key))
					countCol.Append(dataset.Int(counts[key]))
				}
				out, err := dataset.NewTable("top_values", valCol, countCol)
				if err != nil {
					return nil, err
				}
				return &Result{Table: out}, nil
			},
		},
	}
}

// describeColumns builds the DescribeColumn/DescribeDataset summary table.
func describeColumns(name string, cols []*dataset.Column) (*Result, error) {
	colName := dataset.NewColumn("column", dataset.TypeString)
	typeCol := dataset.NewColumn("type", dataset.TypeString)
	countCol := dataset.NewColumn("count", dataset.TypeInt)
	nullCol := dataset.NewColumn("nulls", dataset.TypeInt)
	distinctCol := dataset.NewColumn("distinct", dataset.TypeInt)
	minCol := dataset.NewColumn("min", dataset.TypeString)
	maxCol := dataset.NewColumn("max", dataset.TypeString)
	meanCol := dataset.NewColumn("mean", dataset.TypeFloat)
	stddevCol := dataset.NewColumn("stddev", dataset.TypeFloat)
	for _, c := range cols {
		colName.Append(dataset.Str(c.Name()))
		typeCol.Append(dataset.Str(c.Type().String()))
		countCol.Append(dataset.Int(int64(c.Len())))
		nullCol.Append(dataset.Int(int64(c.NullCount())))
		distinct := map[string]bool{}
		var minV, maxV dataset.Value
		var sum, sumSq float64
		numeric := 0
		for i := 0; i < c.Len(); i++ {
			v := c.Value(i)
			if v.IsNull() {
				continue
			}
			distinct[v.String()] = true
			if minV.IsNull() || dataset.Compare(v, minV) < 0 {
				minV = v
			}
			if maxV.IsNull() || dataset.Compare(v, maxV) > 0 {
				maxV = v
			}
			if f, ok := v.AsFloat(); ok && c.Type().Numeric() {
				sum += f
				sumSq += f * f
				numeric++
			}
		}
		distinctCol.Append(dataset.Int(int64(len(distinct))))
		if minV.IsNull() {
			minCol.Append(dataset.Null)
			maxCol.Append(dataset.Null)
		} else {
			minCol.Append(dataset.Str(minV.String()))
			maxCol.Append(dataset.Str(maxV.String()))
		}
		if numeric > 0 {
			mean := sum / float64(numeric)
			variance := sumSq/float64(numeric) - mean*mean
			if variance < 0 {
				variance = 0
			}
			meanCol.Append(dataset.Float(mean))
			stddevCol.Append(dataset.Float(math.Sqrt(variance)))
		} else {
			meanCol.Append(dataset.Null)
			stddevCol.Append(dataset.Null)
		}
	}
	out, err := dataset.NewTable(name+"_summary",
		colName, typeCol, countCol, nullCol, distinctCol, minCol, maxCol, meanCol, stddevCol)
	if err != nil {
		return nil, err
	}
	return &Result{Table: out}, nil
}

func pearson(t *dataset.Table, name1, name2 string) (r float64, n int, err error) {
	c1, err := t.Column(name1)
	if err != nil {
		return 0, 0, err
	}
	c2, err := t.Column(name2)
	if err != nil {
		return 0, 0, err
	}
	v1, ok1 := c1.Floats()
	v2, ok2 := c2.Floats()
	var xs, ys []float64
	for i := range v1 {
		if ok1[i] && ok2[i] {
			xs = append(xs, v1[i])
			ys = append(ys, v2[i])
		}
	}
	if len(xs) < 2 {
		return 0, 0, fmt.Errorf("skills: not enough numeric pairs to correlate %s and %s", name1, name2)
	}
	var sumX, sumY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX, meanY := sumX/float64(len(xs)), sumY/float64(len(ys))
	var cov, varX, varY float64
	for i := range xs {
		dx, dy := xs[i]-meanX, ys[i]-meanY
		cov += dx * dy
		varX += dx * dx
		varY += dy * dy
	}
	if varX == 0 || varY == 0 {
		return 0, len(xs), fmt.Errorf("skills: %s or %s is constant; correlation undefined", name1, name2)
	}
	return cov / math.Sqrt(varX*varY), len(xs), nil
}
