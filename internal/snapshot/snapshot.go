// Package snapshot implements the paper's §3 "snapshots": cached copies of
// cloud tables (or samples of them) held in a fixed-cost local instance.
// Iterating a recipe against a snapshot costs nothing per scan, and each
// snapshot remembers how it was produced so it can be refreshed against the
// source cloud database.
package snapshot

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"datachat/internal/cloud"
	"datachat/internal/dataset"
)

// Snapshot is one cached table plus the provenance needed to refresh it.
type Snapshot struct {
	// Name is the snapshot's name in the local store.
	Name string
	// Source identifies the cloud database and table it came from.
	SourceDB    string
	SourceTable string
	// SampleRate is the block-sample rate used (1 means a full copy).
	SampleRate float64
	// Seed is the sampling seed, kept so a refresh re-samples consistently.
	Seed int64
	// RefreshedAt is the virtual time of the last refresh.
	RefreshedAt time.Time
	// Data is the cached table.
	Data *dataset.Table
}

// API is the surface of the snapshot store that skills and sessions
// consume. Store implements it directly; fault-injection wrappers
// implement it around a Store.
type API interface {
	// Create pulls a table (or a sample) from db into the store.
	Create(name string, db cloud.DB, table string, rate float64, seed int64) (*Snapshot, error)
	// Get returns a snapshot's cached table.
	Get(name string) (*dataset.Table, error)
	// Info returns snapshot metadata without touching the data.
	Info(name string) (*Snapshot, error)
	// Refresh re-pulls a snapshot from its source database.
	Refresh(name string, db cloud.DB) (*Snapshot, error)
	// Names lists snapshots in sorted order.
	Names() []string
	// Table implements sqlengine.Catalog over the store.
	Table(name string) (*dataset.Table, error)
}

var _ API = (*Store)(nil)

// Store is the fixed-cost local database instance that holds snapshots.
// Reads from the store are free; the only cloud cost is paid at snapshot
// creation and refresh time.
type Store struct {
	// MonthlyCost is the fixed cost of running the local instance,
	// reported by cost summaries but never scaled by scans.
	MonthlyCost float64

	mu    sync.RWMutex
	snaps map[string]*Snapshot
	reads int
	clock func() time.Time
}

// NewStore creates an empty snapshot store.
func NewStore(monthlyCost float64) *Store {
	return &Store{
		MonthlyCost: monthlyCost,
		snaps:       make(map[string]*Snapshot),
		clock:       time.Now,
	}
}

// SetClock overrides the time source (tests and deterministic replays).
func (s *Store) SetClock(clock func() time.Time) { s.clock = clock }

// Create pulls a table (or a block sample of it, when rate < 1) from the
// cloud database into the store under the given snapshot name. The pull is
// charged on the database's meter; subsequent Get calls are free.
func (s *Store) Create(name string, db cloud.DB, table string, rate float64, seed int64) (*Snapshot, error) {
	if name == "" {
		return nil, fmt.Errorf("snapshot: name must not be empty")
	}
	var data *dataset.Table
	var err error
	if rate >= 1 {
		rate = 1
		data, err = db.Scan(table)
	} else {
		data, err = db.SampleBlocks(table, rate, seed)
	}
	if err != nil {
		return nil, fmt.Errorf("snapshot: creating %q: %w", name, err)
	}
	snap := &Snapshot{
		Name:        name,
		SourceDB:    db.Name(),
		SourceTable: table,
		SampleRate:  rate,
		Seed:        seed,
		RefreshedAt: s.clock(),
		Data:        data.WithName(name),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.snaps[strings.ToLower(name)]; exists {
		return nil, fmt.Errorf("snapshot: %q already exists", name)
	}
	s.snaps[strings.ToLower(name)] = snap
	return snap, nil
}

// Get returns a snapshot's cached table. Reads are free.
func (s *Store) Get(name string) (*dataset.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.snaps[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("snapshot: unknown snapshot %q", name)
	}
	s.reads++
	return snap.Data, nil
}

// Info returns snapshot metadata without touching the data.
func (s *Store) Info(name string) (*Snapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap, ok := s.snaps[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("snapshot: unknown snapshot %q", name)
	}
	copied := *snap
	return &copied, nil
}

// Refresh re-pulls a snapshot from its source database, charging the cloud
// meter again — the "refresh" interaction from §2.3/§3.
func (s *Store) Refresh(name string, db cloud.DB) (*Snapshot, error) {
	s.mu.Lock()
	snap, ok := s.snaps[strings.ToLower(name)]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("snapshot: unknown snapshot %q", name)
	}
	if db.Name() != snap.SourceDB {
		return nil, fmt.Errorf("snapshot: %q came from database %q, not %q", name, snap.SourceDB, db.Name())
	}
	var data *dataset.Table
	var err error
	if snap.SampleRate >= 1 {
		data, err = db.Scan(snap.SourceTable)
	} else {
		data, err = db.SampleBlocks(snap.SourceTable, snap.SampleRate, snap.Seed)
	}
	if err != nil {
		return nil, fmt.Errorf("snapshot: refreshing %q: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap.Data = data.WithName(snap.Name)
	snap.RefreshedAt = s.clock()
	copied := *snap
	return &copied, nil
}

// Drop removes a snapshot.
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := s.snaps[key]; !ok {
		return fmt.Errorf("snapshot: unknown snapshot %q", name)
	}
	delete(s.snaps, key)
	return nil
}

// Names lists snapshots in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.snaps))
	for _, snap := range s.snaps {
		names = append(names, snap.Name)
	}
	sort.Strings(names)
	return names
}

// Reads returns how many free local reads the store has served; benches use
// it to contrast iteration against the cloud meter.
func (s *Store) Reads() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reads
}

// Table implements sqlengine.Catalog over the snapshot store so recipes can
// execute SQL against snapshots with zero marginal cost.
func (s *Store) Table(name string) (*dataset.Table, error) { return s.Get(name) }
