package sqlengine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"datachat/internal/dataset"
)

// The differential harness pins the vectorized engine to the row-at-a-time
// reference: every generated query runs through both paths and must produce
// an identical table (or fail on both). The corpus spans filters with
// three-valued null logic, arithmetic, LIKE, IN, BETWEEN, equi joins with
// residuals, grouping with HAVING, and multi-key ORDER BY, over randomized
// tables with ~15% nulls per column.

func runBothPaths(t *testing.T, catalog MapCatalog, query string) {
	t.Helper()
	stmt, err := Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	vecOut, vecErr := ExecStmtOptions(catalog, stmt, Options{})
	refOut, refErr := ExecStmtOptions(catalog, stmt, Options{DisableVectorized: true})
	if (vecErr == nil) != (refErr == nil) {
		t.Fatalf("error divergence for %q:\n  vectorized: %v\n  reference:  %v", query, vecErr, refErr)
	}
	if vecErr != nil {
		return
	}
	if !vecOut.Equal(refOut) {
		t.Fatalf("result divergence for %q:\nvectorized:\n%s\nreference:\n%s", query, vecOut, refOut)
	}
}

func TestDifferentialVectorizedVsReference(t *testing.T) {
	before := VecCounters()
	seeds := int64(10)
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			catalog := NewMapCatalog(CorpusTables(rng, 150+rng.Intn(200), 40+rng.Intn(40)))
			for _, q := range CorpusQueries(rng, 60) {
				runBothPaths(t, catalog, q)
			}
		})
	}
	after := VecCounters()
	for _, key := range []string{"filters", "projections", "groups", "joins"} {
		if after[key] <= before[key] {
			t.Errorf("vectorized path never ran for %s (counter stuck at %d)", key, after[key])
		}
	}
}

// TestDifferentialEmptyTables pins the zero-row edge cases on both paths.
func TestDifferentialEmptyTables(t *testing.T) {
	empty := dataset.MustNewTable("t1",
		dataset.IntColumn("i", nil, nil),
		dataset.FloatColumn("f", nil, nil),
		dataset.StringColumn("s", nil, nil),
		dataset.BoolColumn("b", nil, nil),
		dataset.TimeColumn("ts", nil, nil),
	)
	t2 := dataset.MustNewTable("t2",
		dataset.IntColumn("k", []int64{1, 2}, nil),
		dataset.StringColumn("s2", []string{"a", "b"}, nil),
		dataset.FloatColumn("v", []float64{1, 2}, nil),
	)
	catalog := NewMapCatalog(map[string]*dataset.Table{"t1": empty, "t2": t2})
	for _, q := range []string{
		"SELECT * FROM t1 WHERE i > 0",
		"SELECT i, f FROM t1 ORDER BY i",
		"SELECT s, COUNT(*) AS c FROM t1 GROUP BY s",
		"SELECT t1.i, t2.v FROM t1 JOIN t2 ON t1.i = t2.k",
		"SELECT t1.i, t2.v FROM t1 LEFT JOIN t2 ON t1.i = t2.k",
	} {
		runBothPaths(t, catalog, q)
	}
}

// TestVectorizedForcedFallback drives an expression the kernel compiler
// does not support (a scalar function call) through every statement
// position and checks the fallback produces the row path's results while
// bumping the fallback counters.
func TestVectorizedForcedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	catalog := NewMapCatalog(CorpusTables(rng, 120, 30))
	before := VecCounters()
	for _, q := range []string{
		"SELECT s FROM t1 WHERE UPPER(s) = 'ALPHA'",
		"SELECT UPPER(s) AS u, i FROM t1 WHERE i > 0 ORDER BY u, i",
		"SELECT UPPER(s) AS u, COUNT(*) AS c FROM t1 GROUP BY UPPER(s) ORDER BY u",
		"SELECT t1.s, t2.v FROM t1 JOIN t2 ON t1.s = t2.s2 AND UPPER(t1.s) != 'ZZZ' ORDER BY t1.s, t2.v LIMIT 40",
	} {
		runBothPaths(t, catalog, q)
	}
	after := VecCounters()
	for _, key := range []string{"filter_fallbacks", "projection_fallbacks", "group_fallbacks", "residual_fallbacks"} {
		if after[key] <= before[key] {
			t.Errorf("%s did not increase (still %d): fallback never exercised", key, after[key])
		}
	}
}

// TestVectorizedFallbackDistinctAgg pins MEDIAN/STDDEV and DISTINCT
// aggregates to the row path with identical results.
func TestVectorizedFallbackDistinctAgg(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	catalog := NewMapCatalog(CorpusTables(rng, 100, 20))
	for _, q := range []string{
		"SELECT s, COUNT(DISTINCT i) AS c FROM t1 GROUP BY s ORDER BY s",
		"SELECT s, MEDIAN(f) AS m FROM t1 GROUP BY s ORDER BY s",
	} {
		stmt, err := Parse(q)
		if err != nil {
			// MEDIAN may not parse as an aggregate in this grammar; skip.
			continue
		}
		vecOut, vecErr := ExecStmtOptions(catalog, stmt, Options{})
		refOut, refErr := ExecStmtOptions(catalog, stmt, Options{DisableVectorized: true})
		if (vecErr == nil) != (refErr == nil) {
			t.Fatalf("error divergence for %q: vec=%v ref=%v", q, vecErr, refErr)
		}
		if vecErr == nil && !vecOut.Equal(refOut) {
			t.Fatalf("result divergence for %q:\nvectorized:\n%s\nreference:\n%s", q, vecOut, refOut)
		}
	}
}

// TestMapCatalogCaseFold covers the precomputed case-fold index: exact
// names win, folded lookups resolve, and collisions pick the
// lexicographically smallest name deterministically.
func TestMapCatalogCaseFold(t *testing.T) {
	mk := func(name string) *dataset.Table {
		return dataset.MustNewTable(name, dataset.StringColumn("src", []string{name}, nil))
	}
	cat := NewMapCatalog(map[string]*dataset.Table{
		"Orders": mk("Orders"),
		"ORDERS": mk("ORDERS"),
		"people": mk("people"),
	})
	got, err := cat.Table("people")
	if err != nil || got.Name() != "people" {
		t.Fatalf("exact lookup: %v, %v", got, err)
	}
	got, err = cat.Table("PEOPLE")
	if err != nil || got.Name() != "people" {
		t.Fatalf("folded lookup: %v, %v", got, err)
	}
	got, err = cat.Table("ORDERS")
	if err != nil || got.Name() != "ORDERS" {
		t.Fatalf("exact beats folded: %v, %v", got, err)
	}
	got, err = cat.Table("orders")
	if err != nil || got.Name() != "ORDERS" {
		t.Fatalf("fold collision should pick lexicographically smallest, got %v, %v", got, err)
	}
	if _, err := cat.Table("missing"); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing table error: %v", err)
	}
}
