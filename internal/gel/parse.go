package gel

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/skills"
)

// grammarEntry binds a sentence template to a skill, with extra implied
// arguments (e.g. the "in descending order" variant of SortRows).
type grammarEntry struct {
	skill    string
	template string
	extra    skills.Args
}

// grammar is the GEL sentence grammar: the first matching template wins, so
// more specific templates come first.
var grammar = []grammarEntry{
	{"LoadData", "load data from the url {source}", nil},
	{"LoadData", "load data from the file {source}", nil},
	{"LoadTable", "load the table {table} from the database {database}", nil},
	{"UseDataset", "use the dataset {dataset} , version {version:number}", nil},
	{"UseDataset", "use the dataset {dataset}", nil},
	{"SampleTable", "sample {rate:number} of the table {table} from the database {database}", nil},
	{"CreateSnapshot", "create a snapshot {name} of the table {table} from the database {database}", nil},
	{"UseSnapshot", "use the snapshot {name}", nil},
	{"RefreshSnapshot", "refresh the snapshot {name} from the database {database}", nil},
	{"KeepRows", "keep the rows where {condition:rest}", nil},
	{"DropRows", "drop the rows where {condition:rest}", nil},
	{"KeepColumns", "keep the columns {columns:list}", nil},
	{"DropColumns", "drop the columns {columns:list}", nil},
	{"RenameColumn", "rename the column {column} to {to}", nil},
	{"NewColumn", "create a new column {name} with text {text:rest}", nil},
	{"NewColumn", "create a new column {name} as {formula:rest}", nil},
	{"NewColumn", "create a new column {name} with {formula:rest}", nil},
	{"ChangeType", "change the type of {column} to {type}", nil},
	{"FillNull", "fill the null values in {column} with {value}", nil},
	{"ReplaceValues", "replace {from} with {to} in the column {column}", nil},
	{"SortRows", "sort the rows by {columns:list} in descending order", skills.Args{"descending": true}},
	{"SortRows", "sort the rows by {columns:list}", nil},
	{"LimitRows", "limit the data to {count:number} rows", nil},
	{"SampleRows", "sample {fraction:number} of the rows", nil},
	{"DistinctRows", "remove duplicate rows over {columns:list}", nil},
	{"DistinctRows", "remove duplicate rows", nil},
	{"Concatenate", "concatenate the datasets {inputs:list} remove all duplicates", skills.Args{"dedupe": true}},
	{"Concatenate", "concatenate the datasets {inputs:list}", nil},
	{"JoinDatasets", "left join the datasets {inputs:list} on {on:rest}", skills.Args{"kind": "left"}},
	{"JoinDatasets", "cross join the datasets {inputs:list} on {on:rest}", skills.Args{"kind": "cross"}},
	{"JoinDatasets", "join the datasets {inputs:list} on {on:rest}", nil},
	{"Pivot", "pivot {columns} against {rows} computing {measure:rest}", nil},
	{"Bin", "create bins of size {size:number} on {column}", nil},
	{"ExtractDatePart", "extract the {part} from {column}", nil},
	{"DescribeColumn", "describe the column {column}", nil},
	{"DescribeDataset", "describe the dataset", nil},
	{"ShowDataset", "show the dataset", nil},
	{"CountRows", "count the rows", nil},
	{"ListDatasets", "list the datasets", nil},
	{"Correlate", "correlate {column1} with {column2}", nil},
	{"TopValues", "show the top values of {column}", nil},
	{"TrainModel", "train a model to predict {target} using {features:list}", nil},
	{"TrainModel", "train a {model} model to predict {target}", nil},
	{"TrainModel", "train a model to predict {target}", nil},
	{"PredictWithModel", "predict with the model {model} using {features:list}", nil},
	{"PredictTimeSeries", "predict time series with measure columns {measure} for the next {steps:number} values of {time}", nil},
	{"ClusterRows", "cluster the rows into {k:number} groups using {columns:list}", nil},
	{"DetectOutliers", "detect outliers in {column} using {method}", nil},
	{"DetectOutliers", "detect outliers in {column}", nil},
	{"EvaluateModel", "evaluate the model {model} against {target} using {features:list}", nil},
	{"ExplainModel", "explain the model {model}", nil},
	{"RunSQL", "run the sql query {query:rest}", nil},
	{"SaveArtifact", "save this as {name}", nil},
	{"ShareArtifact", "share the artifact {name} with {with}", nil},
	{"ShareSession", "share this session with {with}", nil},
	{"PublishToInsightsBoard", "publish {artifact} to the insights board {board}", nil},
	{"AddComment", "comment: {text:rest}", nil},
	{"ExportCSV", "export the data to {file}", nil},
	{"Define", "define {phrase} as {meaning:rest}", nil},
	{"PlotChart", "plot a {chart} chart with the x-axis {x} , the y-axis {y} , for each {for_each}", nil},
	{"PlotChart", "plot a {chart} chart with the x-axis {x} , the y-axis {y}", nil},
	{"PlotChart", "plot a {chart} chart with the x-axis {x}", nil},
	{"Visualize", "visualize {kpi} by {by:list} where {filter:rest}", nil},
	{"Visualize", "visualize {kpi} by {by:list}", nil},
	{"Visualize", "visualize {kpi} where {filter:rest}", nil},
	{"Visualize", "visualize {kpi}", nil},
}

// Parser parses GEL sentences into skill invocations.
type Parser struct {
	// Registry validates parsed invocations.
	Registry *skills.Registry
	// Now anchors relative date phrases ("Today - 10 years"). The zero
	// value selects a fixed date so recipes replay deterministically.
	Now time.Time

	patterns []*pattern
	extras   []skills.Args
}

// defaultNow pins relative dates when no clock is configured.
var defaultNow = time.Date(2023, 6, 18, 0, 0, 0, 0, time.UTC) // SIGMOD'23 week

// NewParser compiles the grammar.
func NewParser(reg *skills.Registry) (*Parser, error) {
	p := &Parser{Registry: reg}
	for _, entry := range grammar {
		compiled, err := compilePattern(entry.skill, entry.template)
		if err != nil {
			return nil, err
		}
		p.patterns = append(p.patterns, compiled)
		p.extras = append(p.extras, entry.extra)
	}
	return p, nil
}

// MustNewParser is NewParser for the static built-in grammar.
func MustNewParser(reg *skills.Registry) *Parser {
	p, err := NewParser(reg)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Parser) now() time.Time {
	if p.Now.IsZero() {
		return defaultNow
	}
	return p.Now
}

// Parse converts one GEL sentence into a skill invocation. Dataset inputs
// named in the sentence (Concatenate, Join) land in Inv.Inputs; other
// skills leave Inputs empty for the runner to wire to the current dataset.
func (p *Parser) Parse(line string) (skills.Invocation, error) {
	tokens := tokenize(strings.TrimSpace(line))
	if len(tokens) == 0 {
		return skills.Invocation{}, fmt.Errorf("gel: empty sentence")
	}
	if strings.EqualFold(tokens[0], "compute") {
		return p.parseCompute(tokens)
	}
	for i, pat := range p.patterns {
		caps, ok := pat.match(tokens)
		if !ok {
			continue
		}
		inv := skills.Invocation{Skill: pat.skill, Args: skills.Args{}}
		for k, v := range caps {
			if k == "inputs" {
				list, _ := v.([]string)
				inv.Inputs = list
				continue
			}
			inv.Args[k] = p.convertCapture(pat.skill, k, v)
		}
		for k, v := range p.extras[i] {
			inv.Args[k] = v
		}
		if _, err := p.Registry.Lookup(inv.Skill); err != nil {
			return skills.Invocation{}, err
		}
		return inv, nil
	}
	return skills.Invocation{}, fmt.Errorf("gel: cannot understand %q; try 'Keep the rows where …' or another skill sentence", line)
}

// convertCapture post-processes captured values: numbers become numeric,
// conditions run through the friendly-phrase translator, and measure
// strings stay verbatim for AggSpecs to parse.
func (p *Parser) convertCapture(skill, key string, v any) any {
	s, isStr := v.(string)
	if !isStr {
		return v
	}
	switch key {
	case "count", "steps", "k", "version", "bins":
		if n, err := strconv.Atoi(s); err == nil {
			return n
		}
		return s
	case "rate", "fraction", "size", "threshold":
		s = strings.TrimSuffix(s, "%")
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			if strings.HasSuffix(fmt.Sprint(v), "%") {
				return f / 100
			}
			return f
		}
		return s
	case "condition", "filter":
		return p.TranslateCondition(s)
	case "measure":
		if skill == "Pivot" {
			return s
		}
		return s
	default:
		return s
	}
}

// parseCompute handles the irregular Compute sentence:
//
//	Compute the count of case_id and sum of amount for each a, b and call
//	the computed columns X and Y
func (p *Parser) parseCompute(tokens []string) (skills.Invocation, error) {
	if len(tokens) < 2 || !strings.EqualFold(tokens[1], "the") {
		return skills.Invocation{}, fmt.Errorf("gel: expected 'Compute the …'")
	}
	rest := tokens[2:]
	// Split off the alias clause.
	var aliases []string
	if i := indexPhrase(rest, "and", "call", "the", "computed", "columns"); i >= 0 {
		aliases = splitList(rest[i+5:])
		rest = rest[:i]
	}
	// Split off the grouping clause.
	var keys []string
	if i := indexPhrase(rest, "for", "each"); i >= 0 {
		keys = splitList(rest[i+2:])
		rest = rest[:i]
	}
	// What remains is "func of column (and func of column)*".
	var aggStrings []string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			aggStrings = append(aggStrings, strings.Join(cur, " "))
			cur = nil
		}
	}
	for _, tok := range rest {
		if strings.EqualFold(tok, "and") || tok == "," {
			flush()
			continue
		}
		cur = append(cur, tok)
	}
	flush()
	if len(aggStrings) == 0 {
		return skills.Invocation{}, fmt.Errorf("gel: Compute needs at least one aggregate like 'count of case_id'")
	}
	// Attach aliases positionally.
	aggs := make([]any, 0, len(aggStrings))
	for i, s := range aggStrings {
		if i < len(aliases) {
			s += " as " + aliases[i]
		}
		aggs = append(aggs, s)
	}
	inv := skills.Invocation{Skill: "Compute", Args: skills.Args{"aggregates": aggs}}
	if len(keys) > 0 {
		inv.Args["for_each"] = keys
	}
	// Validate eagerly so bad sentences fail at parse time.
	if _, err := inv.Args.AggSpecs("aggregates"); err != nil {
		return skills.Invocation{}, fmt.Errorf("gel: %w", err)
	}
	return inv, nil
}

func indexPhrase(tokens []string, phrase ...string) int {
	for i := 0; i+len(phrase) <= len(tokens); i++ {
		match := true
		for j, w := range phrase {
			if !strings.EqualFold(tokens[i+j], w) {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

func splitList(tokens []string) []string {
	var out []string
	for _, tok := range tokens {
		if tok == "," || strings.EqualFold(tok, "and") {
			continue
		}
		out = append(out, strings.Trim(tok, `'"`))
	}
	return out
}

// TranslateCondition rewrites GEL's friendly condition phrases into SQL
// expressions the engine evaluates:
//
//	DATE is between the dates 01-01-2005 to 12-31-2020
//	DATE is after Today - 10 years
//	amount is at least 100
//
// Anything it does not recognize passes through as a SQL expression.
func (p *Parser) TranslateCondition(cond string) string {
	tokens := tokenize(cond)
	if len(tokens) >= 2 && strings.EqualFold(tokens[1], "is") {
		col := tokens[0]
		rest := tokens[2:]
		switch {
		case len(rest) >= 5 && strings.EqualFold(rest[0], "between") && strings.EqualFold(rest[1], "the") && strings.EqualFold(rest[2], "dates"):
			// col is between the dates D1 to D2
			if i := indexOfFold(rest, "to"); i > 3 {
				d1 := p.resolveDate(strings.Join(rest[3:i], " "))
				d2 := p.resolveDate(strings.Join(rest[i+1:], " "))
				if d1 != "" && d2 != "" {
					return fmt.Sprintf("%s BETWEEN '%s' AND '%s'", col, d1, d2)
				}
			}
		case len(rest) >= 2 && strings.EqualFold(rest[0], "after"):
			if d := p.resolveDate(strings.Join(rest[1:], " ")); d != "" {
				return fmt.Sprintf("%s > '%s'", col, d)
			}
		case len(rest) >= 2 && strings.EqualFold(rest[0], "before"):
			if d := p.resolveDate(strings.Join(rest[1:], " ")); d != "" {
				return fmt.Sprintf("%s < '%s'", col, d)
			}
		case len(rest) >= 3 && strings.EqualFold(rest[0], "at") && strings.EqualFold(rest[1], "least"):
			return fmt.Sprintf("%s >= %s", col, strings.Join(rest[2:], " "))
		case len(rest) >= 3 && strings.EqualFold(rest[0], "at") && strings.EqualFold(rest[1], "most"):
			return fmt.Sprintf("%s <= %s", col, strings.Join(rest[2:], " "))
		case len(rest) >= 2 && strings.EqualFold(rest[0], "not") && !strings.EqualFold(rest[1], "null"):
			return fmt.Sprintf("%s <> %s", col, quoteIfNeeded(strings.Join(rest[1:], " ")))
		case len(rest) == 2 && strings.EqualFold(rest[0], "not") && strings.EqualFold(rest[1], "null"):
			return col + " IS NOT NULL"
		case len(rest) == 1 && strings.EqualFold(rest[0], "null"):
			return col + " IS NULL"
		case len(rest) >= 1:
			return fmt.Sprintf("%s = %s", col, quoteIfNeeded(strings.Join(rest, " ")))
		}
	}
	return cond
}

func indexOfFold(tokens []string, word string) int {
	for i, tok := range tokens {
		if strings.EqualFold(tok, word) {
			return i
		}
	}
	return -1
}

func quoteIfNeeded(s string) string {
	if s == "" {
		return "''"
	}
	if s[0] == '\'' {
		return s
	}
	if looksNumeric(s) {
		return s
	}
	if strings.EqualFold(s, "true") || strings.EqualFold(s, "false") {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// resolveDate turns a GEL date phrase into an ISO date, handling absolute
// dates (several formats) and "Today [- N years|months|days]". Returns ""
// when the phrase is not a date.
func (p *Parser) resolveDate(phrase string) string {
	phrase = strings.TrimSpace(phrase)
	if t, err := dataset.ParseTime(phrase); err == nil {
		return t.Format(dataset.TimeLayout)
	}
	tokens := tokenize(phrase)
	if len(tokens) == 0 || !strings.EqualFold(tokens[0], "today") {
		return ""
	}
	t := p.now()
	if len(tokens) == 1 {
		return t.Format(dataset.TimeLayout)
	}
	if len(tokens) != 4 || (tokens[1] != "-" && tokens[1] != "+") {
		return ""
	}
	n, err := strconv.Atoi(tokens[2])
	if err != nil {
		return ""
	}
	if tokens[1] == "-" {
		n = -n
	}
	switch strings.ToLower(strings.TrimSuffix(tokens[3], "s")) {
	case "year":
		t = t.AddDate(n, 0, 0)
	case "month":
		t = t.AddDate(0, n, 0)
	case "day":
		t = t.AddDate(0, 0, n)
	default:
		return ""
	}
	return t.Format(dataset.TimeLayout)
}

// Suggest returns autocomplete candidates for a partial GEL sentence
// (Figure 3c): the next literal keywords of any pattern the prefix could
// still match, plus column names when the cursor sits in a column slot.
func (p *Parser) Suggest(prefix string, columns []string) []string {
	tokens := tokenize(strings.TrimSpace(prefix))
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, pat := range p.patterns {
		next, ok := pat.nextLiterals(tokens)
		if !ok {
			continue
		}
		if strings.HasPrefix(next, "<") {
			// A slot: suggest columns for column-flavored slots.
			slot := strings.Trim(next, "<>")
			if isColumnSlot(slot) {
				for _, c := range columns {
					add(c)
				}
			} else {
				add(next)
			}
			continue
		}
		add(next)
	}
	return out
}

func isColumnSlot(slot string) bool {
	switch slot {
	case "column", "columns", "column1", "column2", "x", "y", "for_each",
		"kpi", "by", "target", "features", "measure", "time":
		return true
	default:
		return false
	}
}
