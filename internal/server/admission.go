package server

import (
	"context"
	"sync"
	"time"

	"datachat/internal/wire"
)

// Priority classes. Interactive is the default for every HTTP request;
// background is what scheduled refreshes (and requests asking for
// "background") run under.
const (
	classInteractive = 0
	classBackground  = 1
	numClasses       = 2
)

// maxTenantEntries bounds the per-tenant accounting map; past it new
// tenants aggregate under tenantOverflow so a tenant-id flood cannot grow
// server memory.
const (
	maxTenantEntries = 64
	tenantOverflow   = "~other"
)

func classOf(priority string) int {
	if priority == wire.PriorityBackground {
		return classBackground
	}
	return classInteractive
}

// waiter is one queued admission request. Its channel is buffered so the
// dispatcher's grant never blocks; granted flips under the admission lock
// exactly once, either by dispatch or by the waiter's own cancellation.
type waiter struct {
	ch      chan struct{}
	class   int
	since   time.Time
	granted bool
}

// admission is the priority-aware slot allocator: a fixed pool of
// execution slots, per-class FIFO wait queues with interactive always
// served first, and a separate cap on background slots in flight so
// scheduled refreshes can never occupy the whole pool. All state is under
// one mutex; slot handoff to waiters is direct (a released slot goes to
// the chosen waiter without becoming free), which keeps the FIFO fair.
type admission struct {
	mu       sync.Mutex
	free     int // unowned execution slots
	maxBg    int // cap on background slots in flight
	bgActive int
	maxQueue int
	queues   [numClasses][]*waiter
	waiting  int // total queued, bounded by maxQueue

	active    [numClasses]int64
	admitted  [numClasses]int64
	queued    [numClasses]int64 // admitted requests that had to wait first
	throttled [numClasses]int64
	waitNs    [numClasses]int64 // total queue wait of admitted requests
	// waitHist counts admitted requests per wait bucket (see waitBoundsMs;
	// the last bucket is overflow). Fast-path admissions land in bucket 0,
	// so percentiles are over every admitted request, not just queued ones.
	waitHist [numClasses][len(waitBoundsMs) + 1]int64

	tenants map[string]*wire.TenantStats
}

// waitBoundsMs are the admission-wait histogram bucket upper bounds.
var waitBoundsMs = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}

// waitBucket returns the histogram bucket index for a wait in ms.
func waitBucket(ms float64) int {
	for i, b := range waitBoundsMs {
		if ms <= b {
			return i
		}
	}
	return len(waitBoundsMs)
}

func newAdmission(slots, maxBg, maxQueue int) *admission {
	return &admission{free: slots, maxBg: maxBg, maxQueue: maxQueue, tenants: make(map[string]*wire.TenantStats)}
}

// tenantLocked returns the accounting bucket for tenant, creating it while
// the map has room.
func (a *admission) tenantLocked(tenant string) *wire.TenantStats {
	if tenant == "" {
		tenant = "anonymous"
	}
	t, ok := a.tenants[tenant]
	if !ok {
		if len(a.tenants) >= maxTenantEntries {
			tenant = tenantOverflow
		}
		if t, ok = a.tenants[tenant]; !ok {
			t = &wire.TenantStats{}
			a.tenants[tenant] = t
		}
	}
	return t
}

// grantableLocked reports whether a request of class can take a slot now.
func (a *admission) grantableLocked(class int) bool {
	if a.free <= 0 {
		return false
	}
	return class == classInteractive || a.bgActive < a.maxBg
}

// takeLocked consumes a slot for class (which must be grantable).
func (a *admission) takeLocked(class int) {
	a.free--
	if class == classBackground {
		a.bgActive++
	}
	a.active[class]++
	a.admitted[class]++
}

// acquire obtains an execution slot for (class, tenant), queueing up to
// maxQueue waiters. Interactive arrivals do not overtake already-queued
// interactive requests (FIFO within a class), but any queued interactive
// request is served before every background one. Returns errThrottled
// when the queue is full, or ctx.Err() when the caller gave up waiting.
func (a *admission) acquire(ctx context.Context, class int, tenant string) error {
	a.mu.Lock()
	// Fast path: a free slot and nobody of our class (or better) is ahead.
	if a.grantableLocked(class) && a.queueEmptyForLocked(class) {
		a.takeLocked(class)
		a.waitHist[class][0]++
		a.tenantLocked(tenant).Admitted++
		a.mu.Unlock()
		return nil
	}
	if a.waiting >= a.maxQueue {
		a.throttled[class]++
		a.tenantLocked(tenant).Throttled++
		a.mu.Unlock()
		return errThrottled
	}
	w := &waiter{ch: make(chan struct{}, 1), class: class, since: time.Now()}
	a.queues[class] = append(a.queues[class], w)
	a.waiting++
	a.queued[class]++
	// A background waiter may be grantable right now (e.g. a slot is free
	// but FIFO order put an interactive waiter first and it just left);
	// dispatch keeps the queues drained whenever capacity allows.
	a.dispatchLocked()
	a.mu.Unlock()

	select {
	case <-w.ch:
		a.mu.Lock()
		waited := time.Since(w.since)
		a.waitNs[class] += waited.Nanoseconds()
		a.waitHist[class][waitBucket(float64(waited.Nanoseconds())/1e6)]++
		a.tenantLocked(tenant).Admitted++
		a.mu.Unlock()
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: we own a slot nobody will
			// use. Put it back and let the next waiter have it.
			a.releaseLocked(class)
			a.mu.Unlock()
			return ctx.Err()
		}
		a.removeLocked(w)
		a.mu.Unlock()
		return ctx.Err()
	}
}

// queueEmptyForLocked reports whether class can be admitted without
// overtaking anyone: interactive only checks its own queue; background
// also yields to every queued interactive request.
func (a *admission) queueEmptyForLocked(class int) bool {
	if len(a.queues[class]) > 0 {
		return false
	}
	return class == classInteractive || len(a.queues[classInteractive]) == 0
}

// removeLocked deletes a cancelled waiter from its queue.
func (a *admission) removeLocked(w *waiter) {
	q := a.queues[w.class]
	for i, x := range q {
		if x == w {
			a.queues[w.class] = append(q[:i], q[i+1:]...)
			a.waiting--
			return
		}
	}
}

// release returns a slot and hands it to the best waiter, if any.
func (a *admission) release(class int) {
	a.mu.Lock()
	a.releaseLocked(class)
	a.mu.Unlock()
}

func (a *admission) releaseLocked(class int) {
	if class == classBackground {
		a.bgActive--
	}
	a.active[class]--
	a.free++
	a.dispatchLocked()
}

// dispatchLocked hands free slots to waiters: every queued interactive
// request first, then background up to its in-flight cap.
func (a *admission) dispatchLocked() {
	for a.free > 0 {
		var w *waiter
		if q := a.queues[classInteractive]; len(q) > 0 {
			w = q[0]
			a.queues[classInteractive] = q[1:]
		} else if q := a.queues[classBackground]; len(q) > 0 && a.bgActive < a.maxBg {
			w = q[0]
			a.queues[classBackground] = q[1:]
		} else {
			return
		}
		a.waiting--
		a.takeLocked(w.class)
		w.granted = true
		w.ch <- struct{}{}
	}
}

// p50Locked estimates the class's median admission wait from the bucket
// histogram: the upper bound (in ms) of the bucket holding the median
// admitted request. The overflow bucket reports its lower bound.
func (a *admission) p50Locked(class int) float64 {
	var total int64
	for _, n := range a.waitHist[class] {
		total += n
	}
	if total == 0 {
		return 0
	}
	half := (total + 1) / 2
	var cum int64
	for i, n := range a.waitHist[class] {
		cum += n
		if cum >= half {
			if i < len(waitBoundsMs) {
				return waitBoundsMs[i]
			}
			return waitBoundsMs[len(waitBoundsMs)-1]
		}
	}
	return waitBoundsMs[len(waitBoundsMs)-1]
}

// gauges returns (total in flight, total waiting).
func (a *admission) gauges() (int64, int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active[classInteractive] + a.active[classBackground], int64(a.waiting)
}

// snapshot builds the /statsz section.
func (a *admission) snapshot() *wire.AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	cls := func(c int) wire.ClassStats {
		st := wire.ClassStats{
			Admitted:  a.admitted[c],
			Queued:    a.queued[c],
			Throttled: a.throttled[c],
			Active:    a.active[c],
			Waiting:   int64(len(a.queues[c])),
		}
		if a.queued[c] > 0 {
			st.AvgWaitMs = float64(a.waitNs[c]) / float64(a.queued[c]) / 1e6
		}
		st.P50WaitMs = a.p50Locked(c)
		return st
	}
	out := &wire.AdmissionStats{
		Interactive:   cls(classInteractive),
		Background:    cls(classBackground),
		MaxBackground: a.maxBg,
		Tenants:       make(map[string]wire.TenantStats, len(a.tenants)),
	}
	for name, t := range a.tenants {
		out.Tenants[name] = *t
	}
	return out
}
