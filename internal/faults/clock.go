package faults

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Clock abstracts time for backoff and deadlines. Production code uses the
// real clock; tests use a VirtualClock so retry schedules spanning minutes
// of simulated waiting execute in microseconds and never call time.Sleep.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Sleep waits for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// realClock is the wall clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Real returns the wall clock.
func Real() Clock { return realClock{} }

// VirtualClock is a deterministic time source: Sleep advances the clock
// instantly instead of blocking, and Slept reports the total virtual time
// spent waiting. It is safe for concurrent use.
type VirtualClock struct {
	mu    sync.Mutex
	now   time.Time
	slept time.Duration
}

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (used by the injector's latency
// spikes and by tests).
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Sleep advances virtual time by d without blocking. It yields the
// processor so spinning retry loops (e.g. session-lock contention with
// instant virtual backoff) cannot starve the goroutine holding the
// contended resource.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d > 0 {
		c.mu.Lock()
		c.now = c.now.Add(d)
		c.slept += d
		c.mu.Unlock()
	}
	runtime.Gosched()
	return nil
}

// Slept returns the total virtual time spent in Sleep.
func (c *VirtualClock) Slept() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slept
}
