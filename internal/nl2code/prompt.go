package nl2code

import (
	"fmt"
	"sort"
	"strings"

	"datachat/internal/dataset"
	"datachat/internal/semantic"
	"datachat/internal/skills"
)

// SemanticHint is one semantic-layer entry surfaced into a prompt. The
// generator can only use hints that made it into the prompt — the paper's
// token-budget trade-off (§4.4) is therefore real: hints squeezed out by
// examples are knowledge the model does not have.
type SemanticHint struct {
	Phrase    string
	Kind      semantic.Kind
	Expansion string
}

// Prompt is the composed LLM input (§4.4's four sections): API
// documentation, few-shot examples, schema + semantic context, and the
// user's intent.
type Prompt struct {
	// APIDoc lists the DataChat Python API signatures included.
	APIDoc []string
	// Examples are the retrieved few-shot pairs.
	Examples []Scored
	// Schema describes the candidate datasets.
	Schema []SchemaTable
	// Hints are the semantic-layer entries that fit the budget.
	Hints []SemanticHint
	// Question is the user intent, always last.
	Question string
	// TokensUsed estimates the prompt size in whitespace tokens.
	TokensUsed int
	// Budget is the token limit the composer worked within.
	Budget int
}

// SchemaTable describes one dataset in the prompt.
type SchemaTable struct {
	Name    string
	Columns []string
	// Values samples category values so the model can link literals.
	Values map[string][]string
}

// Composer builds prompts under a token budget (§4.4). The budget models
// the LLM context window; exceeding sections are trimmed, examples first
// when the request looks complex (the paper's stated trade-off).
type Composer struct {
	// Budget is the total token allowance (≈ whitespace words).
	Budget int
	// MaxExamples caps the few-shot section.
	MaxExamples int
	// Mode selects example retrieval behaviour.
	Mode RetrievalMode
	// DisableSemantic drops the semantic section (ablation).
	DisableSemantic bool
	// Registry supplies API documentation.
	Registry *skills.Registry
}

// NewComposer returns a composer with paper-like defaults.
func NewComposer(reg *skills.Registry) *Composer {
	return &Composer{Budget: 900, MaxExamples: 4, Mode: SimilarDiverse, Registry: reg}
}

// apiDoc renders the API section once: the core analytics method
// signatures the generator may call.
func (c *Composer) apiDoc() []string {
	wanted := []string{
		"KeepRows", "KeepColumns", "NewColumn", "SortRows", "LimitRows",
		"Compute", "JoinDatasets", "DistinctRows",
	}
	var docs []string
	for _, name := range wanted {
		def, err := c.Registry.Lookup(name)
		if err != nil {
			continue
		}
		params := make([]string, len(def.Params))
		for i, p := range def.Params {
			params[i] = p.Name
		}
		docs = append(docs, fmt.Sprintf("%s(%s) — %s", def.PyName, strings.Join(params, ", "), def.Summary))
	}
	return docs
}

// Compose builds the prompt for a question over the given tables. The
// complexityEstimate (a pre-generation guess at C, e.g. from intent
// detection) steers the budget split: complex requests trade examples for
// semantic context, per §4.4.
func (c *Composer) Compose(question string, tables map[string]*dataset.Table,
	layer *semantic.Layer, lib *Library, complexityEstimate float64) *Prompt {

	p := &Prompt{Question: question, Budget: c.Budget}
	p.APIDoc = c.apiDoc()

	// Schema section: always included (the model is lost without it).
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := tables[name]
		st := SchemaTable{Name: name, Columns: t.ColumnNames(), Values: map[string][]string{}}
		for _, col := range t.Columns() {
			if col.Type() != dataset.TypeString {
				continue
			}
			distinct := map[string]bool{}
			for i := 0; i < col.Len() && len(distinct) <= 12; i++ {
				if !col.IsNull(i) {
					distinct[col.Value(i).S] = true
				}
			}
			if len(distinct) <= 12 {
				vals := make([]string, 0, len(distinct))
				for v := range distinct {
					vals = append(vals, v)
				}
				sort.Strings(vals)
				st.Values[col.Name()] = vals
			}
		}
		p.Schema = append(p.Schema, st)
	}

	// Split the remaining budget between examples and semantic hints.
	used := tokenCost(p.APIDoc) + schemaCost(p.Schema) + len(strings.Fields(question))
	remaining := c.Budget - used
	if remaining < 0 {
		remaining = 0
	}
	exampleShare := 0.7
	maxExamples := c.MaxExamples
	if complexityEstimate > CThreshold {
		// Complex request: prefer semantic context over examples (§4.4).
		exampleShare = 0.5
		if maxExamples > 2 {
			maxExamples = 2
		}
	}
	exampleBudget := int(float64(remaining) * exampleShare)
	semanticBudget := remaining - exampleBudget

	if lib != nil {
		for _, s := range lib.Retrieve(question, maxExamples, c.Mode) {
			cost := len(strings.Fields(s.Example.Question)) + 12*len(s.Example.Program)
			if cost > exampleBudget {
				break
			}
			exampleBudget -= cost
			p.Examples = append(p.Examples, s)
		}
	}
	if layer != nil && !c.DisableSemantic {
		for _, s := range layer.Retrieve(question, 0) {
			cost := len(strings.Fields(s.Concept.Name)) + len(strings.Fields(s.Concept.Expansion)) + 2
			if cost > semanticBudget {
				break
			}
			semanticBudget -= cost
			p.Hints = append(p.Hints, SemanticHint{
				Phrase:    s.Concept.Name,
				Kind:      s.Concept.Kind,
				Expansion: s.Concept.Expansion,
			})
		}
	}
	p.TokensUsed = c.Budget - (exampleBudget + semanticBudget) + 0
	return p
}

func tokenCost(lines []string) int {
	total := 0
	for _, l := range lines {
		total += len(strings.Fields(l))
	}
	return total
}

func schemaCost(tables []SchemaTable) int {
	total := 0
	for _, t := range tables {
		total += 1 + len(t.Columns)
		for _, vals := range t.Values {
			total += len(vals)
		}
	}
	return total
}

// Text renders the prompt as the flat text a real LLM would receive; used
// for logging, debugging, and the Figure 6 pipeline trace.
func (p *Prompt) Text(reg *skills.Registry) string {
	var b strings.Builder
	b.WriteString("## DataChat Python API\n")
	for _, doc := range p.APIDoc {
		b.WriteString(doc)
		b.WriteByte('\n')
	}
	if len(p.Examples) > 0 {
		b.WriteString("\n## Examples\n")
		for _, s := range p.Examples {
			fmt.Fprintf(&b, "Q: %s\n", s.Example.Question)
			for _, inv := range s.Example.Program {
				if code, err := reg.RenderPython(inv); err == nil {
					b.WriteString(code)
					b.WriteByte('\n')
				}
			}
		}
	}
	b.WriteString("\n## Schema\n")
	for _, t := range p.Schema {
		fmt.Fprintf(&b, "%s(%s)\n", t.Name, strings.Join(t.Columns, ", "))
	}
	if len(p.Hints) > 0 {
		b.WriteString("\n## Domain concepts\n")
		for _, h := range p.Hints {
			fmt.Fprintf(&b, "%s (%s): %s\n", h.Phrase, h.Kind, h.Expansion)
		}
	}
	fmt.Fprintf(&b, "\n## Request\n%s\n", p.Question)
	return b.String()
}
