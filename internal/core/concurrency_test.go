package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"datachat/internal/dataset"
	"datachat/internal/session"
	"datachat/internal/skills"
)

func seedTable() *dataset.Table {
	n := 400
	ids := make([]int64, n)
	vals := make([]float64, n)
	cats := make([]string, n)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = float64(i % 13)
		cats[i] = string(rune('a' + i%5))
	}
	return dataset.MustNewTable("people",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("v", vals, nil),
		dataset.StringColumn("cat", cats, nil),
	)
}

// runWorkload issues the same two requests every concurrent session makes:
// a relational filter, then an aggregation over its output.
func runWorkload(s *session.Session, user string) (*skills.Result, error) {
	if _, _, err := s.Request(user, skills.Invocation{Skill: "KeepRows",
		Inputs: []string{"people"}, Args: skills.Args{"condition": "v > 3"}, Output: "f"}); err != nil {
		return nil, err
	}
	res, _, err := s.Request(user, skills.Invocation{Skill: "Compute",
		Inputs: []string{"f"}, Args: skills.Args{"aggregates": []string{"sum of v as total"}, "for_each": []string{"cat"}}, Output: "agg"})
	return res, err
}

// TestConcurrentSessionsShareOnePlatform exercises the tentpole concurrency
// model under -race: N goroutines concurrently create sessions on one
// Platform and run identical workloads. Distinct sessions execute in
// parallel (no ErrBusy across sessions), produce identical results, and the
// shared sub-DAG cache deduplicates the work — the first session computes,
// the rest hit or join in-flight executions.
func TestConcurrentSessionsShareOnePlatform(t *testing.T) {
	p := New()
	const n = 8
	var wg sync.WaitGroup
	results := make([]*skills.Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := p.CreateSession(fmt.Sprintf("s%d", i), "user")
			if err != nil {
				errs[i] = err
				return
			}
			// Seeding touches only this session's private context.
			s.Context().Datasets["people"] = seedTable()
			results[i], errs[i] = runWorkload(s, "user")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !results[0].Table.Equal(results[i].Table) {
			t.Fatalf("session %d result differs from session 0", i)
		}
	}
	cs := p.CacheStats()
	// The workload has two cacheable tasks (the filter chain and the
	// aggregation); every other lookup across all n sessions must be served
	// by the shared cache or a shared in-flight execution.
	if cs.Misses > 2 {
		t.Errorf("cache misses = %d, want <= 2 (shared cache should deduplicate)", cs.Misses)
	}
	if cs.Hits < int64(n) {
		t.Errorf("cache hits = %d, want >= %d", cs.Hits, n)
	}
}

// TestSessionLockStillFailsConcurrentRequests pins the §2.4 semantics the
// parallel engine must preserve: within one session, a request that arrives
// while another is executing fails fast with ErrBusy — concurrency lives
// across sessions and across DAG branches, never across requests in a
// session.
func TestSessionLockStillFailsConcurrentRequests(t *testing.T) {
	p := New()
	s, err := p.CreateSession("locked", "ann")
	if err != nil {
		t.Fatal(err)
	}
	s.Context().Datasets["people"] = seedTable()

	const attempts = 64
	var wg sync.WaitGroup
	var busy, ok, other int
	var mu sync.Mutex
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := s.Request("ann", skills.Invocation{Skill: "KeepRows",
				Inputs: []string{"people"},
				Args:   skills.Args{"condition": fmt.Sprintf("v > %d", i%11)},
				Output: fmt.Sprintf("out%d", i)})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, session.ErrBusy):
				busy++
			default:
				other++
			}
		}(i)
	}
	wg.Wait()
	if other != 0 {
		t.Errorf("unexpected errors: %d", other)
	}
	if ok == 0 {
		t.Error("no request succeeded")
	}
	if ok+busy != attempts {
		t.Errorf("ok=%d busy=%d, want %d total", ok, busy, attempts)
	}
}

// TestConcurrentSessionsWithDifferentData verifies the cache-correctness
// half of the tentpole: two sessions holding *different* content under the
// same dataset name must not serve each other's results from the shared
// cache, because keys carry content fingerprints.
func TestConcurrentSessionsWithDifferentData(t *testing.T) {
	p := New()
	mk := func(name string, scale float64) *session.Session {
		s, err := p.CreateSession(name, "user")
		if err != nil {
			t.Fatal(err)
		}
		n := 100
		ids := make([]int64, n)
		vals := make([]float64, n)
		cats := make([]string, n)
		for i := range ids {
			ids[i] = int64(i)
			vals[i] = float64(i%13) * scale
			cats[i] = "x"
		}
		s.Context().Datasets["people"] = dataset.MustNewTable("people",
			dataset.IntColumn("id", ids, nil),
			dataset.FloatColumn("v", vals, nil),
			dataset.StringColumn("cat", cats, nil),
		)
		return s
	}
	a := mk("a", 1)
	b := mk("b", 100)

	var wg sync.WaitGroup
	var resA, resB *skills.Result
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); resA, errA = runWorkload(a, "user") }()
	go func() { defer wg.Done(); resB, errB = runWorkload(b, "user") }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if resA.Table.Equal(resB.Table) {
		t.Fatal("sessions with different data under the same name shared a cached result")
	}
	expected := func(scale float64) float64 {
		var sum float64
		for i := 0; i < 100; i++ {
			if v := float64(i%13) * scale; v > 3 {
				sum += v
			}
		}
		return sum
	}
	for _, tc := range []struct {
		res   *skills.Result
		scale float64
	}{{resA, 1}, {resB, 100}} {
		col, err := tc.res.Table.Column("total")
		if err != nil {
			t.Fatal(err)
		}
		if got := col.Value(0).F; got != expected(tc.scale) {
			t.Errorf("total at scale %v = %v, want %v", tc.scale, got, expected(tc.scale))
		}
	}
}

// TestConcurrentCreateAndList hammers the platform-level maps while
// sessions run, for the race detector's benefit.
func TestConcurrentCreateAndList(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("sess%d", i)
			s, err := p.CreateSession(name, "user")
			if err != nil {
				t.Error(err)
				return
			}
			s.Context().Datasets["people"] = seedTable()
			if _, err := runWorkload(s, "user"); err != nil {
				t.Error(err)
			}
			p.Sessions()
			if _, err := p.Session(name); err != nil {
				t.Error(err)
			}
			p.CacheStats()
		}(i)
	}
	wg.Wait()
	if got := len(p.Sessions()); got != 12 {
		t.Errorf("sessions = %d, want 12", got)
	}
}
