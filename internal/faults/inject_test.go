package faults

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"datachat/internal/cloud"
	"datachat/internal/dataset"
	"datachat/internal/snapshot"
)

func testTable(name string, rows int) *dataset.Table {
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(i)
	}
	return dataset.MustNewTable(name, dataset.IntColumn("x", vals, nil))
}

func testDB(t *testing.T, rows int) *cloud.Database {
	t.Helper()
	db := cloud.NewDatabase("wh", cloud.DefaultPricing, 16)
	if err := db.CreateTable(testTable("events", rows)); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestInjectorDeterministic: same seed + schedule ⇒ identical fault
// sequence, different seed ⇒ different sequence.
func TestInjectorDeterministic(t *testing.T) {
	run := func(seed int64) []Fault {
		inj := NewInjector(Schedule{Seed: seed, TransientRate: 0.4, PermanentRate: 0.05}, nil)
		db := WrapDB(testDB(t, 100), inj)
		for i := 0; i < 200; i++ {
			db.Scan("events")                 //nolint:errcheck
			db.SampleBlocks("events", 0.5, 1) //nolint:errcheck
		}
		return inj.Faults()
	}
	a, b := run(7), run(7)
	if len(a) == 0 {
		t.Fatal("no faults injected at 40% transient rate over 400 ops")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different fault sequences:\n%v\n%v", a, b)
	}
	c := run(8)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical fault sequences")
	}
	for i, f := range a {
		if f.Seq != i+1 {
			t.Fatalf("fault %d has Seq %d", i, f.Seq)
		}
		if (f.Class == Permanent) != (f.Kind == Unavailable) {
			t.Fatalf("fault %v: class/kind mismatch", f)
		}
	}
}

// TestInjectorDeterministicUnderConcurrency: the fault sequence (as a set of
// (seq, kind) draws) does not depend on goroutine interleaving.
func TestInjectorDeterministicUnderConcurrency(t *testing.T) {
	run := func(workers int) []Fault {
		inj := NewInjector(Schedule{Seed: 3, TransientRate: 0.3}, nil)
		db := WrapDB(testDB(t, 64), inj)
		var wg sync.WaitGroup
		per := 120 / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					db.Scan("events") //nolint:errcheck
				}
			}()
		}
		wg.Wait()
		return inj.Faults()
	}
	serial, parallel := run(1), run(4)
	if fmt.Sprint(serial) != fmt.Sprint(parallel) {
		t.Fatalf("fault sequence depends on interleaving:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}

// TestInjectorSchedulePins: FailOps pins specific operations, FailFirst
// fails a deterministic prefix, Ops filters by operation name, and
// MaxTransient caps the total.
func TestInjectorSchedulePins(t *testing.T) {
	inj := NewInjector(Schedule{FailOps: map[int]Kind{2: Unavailable}, FailFirst: 1}, nil)
	db := WrapDB(testDB(t, 32), inj)
	if _, err := db.Scan("events"); !IsTransient(err) {
		t.Fatalf("op 1 should fail transiently (FailFirst), got %v", err)
	}
	if _, err := db.Scan("events"); !IsPermanent(err) {
		t.Fatalf("op 2 should fail permanently (FailOps), got %v", err)
	}
	if _, err := db.Scan("events"); err != nil {
		t.Fatalf("op 3 should pass, got %v", err)
	}

	inj = NewInjector(Schedule{FailFirst: 100, MaxTransient: 2}, nil)
	db = WrapDB(testDB(t, 32), inj)
	failures := 0
	for i := 0; i < 10; i++ {
		if _, err := db.Scan("events"); err != nil {
			failures++
		}
	}
	if failures != 2 {
		t.Fatalf("MaxTransient=2 allowed %d failures", failures)
	}

	inj = NewInjector(Schedule{FailFirst: 100, Ops: map[string]bool{"sample": true}}, nil)
	db = WrapDB(testDB(t, 32), inj)
	if _, err := db.Scan("events"); err != nil {
		t.Fatalf("scan is outside the Ops filter, got %v", err)
	}
	if _, err := db.SampleBlocks("events", 0.5, 1); err == nil {
		t.Fatal("sample is inside the Ops filter and should fail")
	}
}

// TestInjectorLatencySpike: a latency-spike fault advances the virtual
// clock by the configured spike without any wall-clock sleeping.
func TestInjectorLatencySpike(t *testing.T) {
	start := time.Unix(0, 0)
	clock := NewVirtualClock(start)
	inj := NewInjector(Schedule{
		FailOps: map[int]Kind{1: LatencySpike},
		Spike:   3 * time.Second,
	}, clock)
	db := WrapDB(testDB(t, 32), inj)
	_, err := db.Scan("events")
	if KindOf(err) != LatencySpike || !IsTransient(err) {
		t.Fatalf("want transient latency spike, got %v", err)
	}
	if got := clock.Now().Sub(start); got != 3*time.Second {
		t.Fatalf("virtual clock advanced %v, want 3s", got)
	}
}

// TestFaultyDBPassthrough: metadata and meter pass through unfaulted, and a
// clean schedule injects nothing.
func TestFaultyDBPassthrough(t *testing.T) {
	inner := testDB(t, 50)
	db := WrapDB(inner, NewInjector(Schedule{}, nil))
	if db.Name() != "wh" || db.Pricing() != cloud.DefaultPricing || db.Meter() != inner.Meter() {
		t.Fatal("metadata passthrough broken")
	}
	st, err := db.Stats("events")
	if err != nil || st.Rows != 50 {
		t.Fatalf("stats: %+v, %v", st, err)
	}
	tb, err := db.Scan("events")
	if err != nil || tb.NumRows() != 50 {
		t.Fatalf("scan: %v, %v", tb, err)
	}
	if tb2, err := db.Table("events"); err != nil || tb2.NumRows() != 50 {
		t.Fatalf("table: %v", err)
	}
	if _, err := db.SampleBlocks("events", 0.5, 1); err != nil {
		t.Fatalf("sample: %v", err)
	}
}

// TestFaultyStore: snapshot reads fail with snapshot-miss faults on
// schedule; creation and metadata pass through.
func TestFaultyStore(t *testing.T) {
	db := testDB(t, 40)
	store := WrapStore(snapshot.NewStore(10), NewInjector(Schedule{FailOps: map[int]Kind{1: SnapshotMiss}}, nil))
	if _, err := store.Create("snap", db, "events", 1, 1); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := store.Info("snap"); err != nil {
		t.Fatalf("info should not be injected: %v", err)
	}
	_, err := store.Get("snap")
	if KindOf(err) != SnapshotMiss || !IsTransient(err) {
		t.Fatalf("want snapshot-miss fault, got %v", err)
	}
	tb, err := store.Get("snap")
	if err != nil || tb.NumRows() != 40 {
		t.Fatalf("second get: %v, %v", tb, err)
	}
	if names := store.Names(); len(names) != 1 || names[0] != "snap" {
		t.Fatalf("names: %v", names)
	}
	if _, err := store.Refresh("snap", db); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if _, err := store.Table("snap"); err != nil {
		t.Fatalf("table after fault budget: %v", err)
	}
}

// TestErrorRendering pins the error format and classifier helpers.
func TestErrorRendering(t *testing.T) {
	e := &Error{Op: "scan", Target: "events", Kind: Throttled, Class: Transient, Seq: 3}
	want := `faults: transient throttled on scan "events" (fault #3)`
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
	if !e.Temporary() {
		t.Fatal("transient error should be Temporary")
	}
	wrapped := fmt.Errorf("task 4: %w", e)
	if !IsTransient(wrapped) || IsPermanent(wrapped) || KindOf(wrapped) != Throttled {
		t.Fatal("classifiers failed through wrapping")
	}
	if IsTransient(errors.New("plain")) || KindOf(errors.New("plain")) != "" {
		t.Fatal("plain errors misclassified")
	}
}
