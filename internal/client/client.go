// Package client is the Go client for datachatd: it speaks the
// internal/wire protocol over HTTP so tests, examples, and load generators
// drive a remote DataChat deployment exactly like an in-process one. Errors
// come back typed — IsBusy recognizes the §2.4 session-lock 409, IsThrottled
// the admission-control 429 — so callers can implement their own retry
// discipline on top.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"datachat/internal/dataset"
	"datachat/internal/plan"
	"datachat/internal/wire"
)

// Client talks to one datachatd.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one JSON request and decodes the response into out (which may
// be nil). Non-2xx responses decode into a *wire.Error.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := wire.DecodeJSON(resp.Body, out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

func decodeError(resp *http.Response) error {
	e := &wire.Error{Status: resp.StatusCode, Code: wire.CodeInternal}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err := json.Unmarshal(data, e); err != nil || e.Message == "" {
		e.Message = fmt.Sprintf("http %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	e.Status = resp.StatusCode
	return e
}

// asWireError extracts the typed payload from err.
func asWireError(err error) (*wire.Error, bool) {
	var e *wire.Error
	if errors.As(err, &e) {
		return e, true
	}
	return nil, false
}

// IsBusy reports whether err is the §2.4 session-lock refusal (409).
func IsBusy(err error) bool {
	e, ok := asWireError(err)
	return ok && e.Code == wire.CodeBusy
}

// IsThrottled reports whether err is an admission-control refusal (429).
func IsThrottled(err error) bool {
	e, ok := asWireError(err)
	return ok && e.Code == wire.CodeThrottled
}

// IsDraining reports whether err is a shutdown refusal (503).
func IsDraining(err error) bool {
	e, ok := asWireError(err)
	return ok && e.Code == wire.CodeDraining
}

// IsDeadline reports whether err is a deadline expiry (504).
func IsDeadline(err error) bool {
	e, ok := asWireError(err)
	return ok && e.Code == wire.CodeDeadline
}

// RetryAfter returns the server's backoff hint attached to a busy or
// throttled error, or 0.
func RetryAfter(err error) int64 {
	if e, ok := asWireError(err); ok {
		return e.RetryAfterMs
	}
	return 0
}

// --- Sessions ---

// CreateSession opens a session owned by owner.
func (c *Client) CreateSession(ctx context.Context, name, owner string) (*wire.SessionInfo, error) {
	var out wire.SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions", wire.CreateSessionRequest{Name: name, Owner: owner}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Sessions lists open session names.
func (c *Client) Sessions(ctx context.Context) ([]string, error) {
	var out wire.SessionsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out); err != nil {
		return nil, err
	}
	return out.Sessions, nil
}

// SessionInfo describes one session.
func (c *Client) SessionInfo(ctx context.Context, name string) (*wire.SessionInfo, error) {
	var out wire.SessionInfo
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(name), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShareSession grants with access ("view" or "edit") on a session.
func (c *Client) ShareSession(ctx context.Context, name, by, with, access string) error {
	return c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(name)+"/share",
		wire.ShareSessionRequest{By: by, With: with, Access: access}, nil)
}

// --- Execution ---

// Run executes one run request (GEL, Python, phrase, or explicit program).
func (c *Client) Run(ctx context.Context, session string, req wire.RunRequest) (*wire.RunResponse, error) {
	var out wire.RunResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(session)+"/run", req, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// RunGEL executes one GEL sentence (current names the implicit dataset).
func (c *Client) RunGEL(ctx context.Context, session, user, line, current string) (*wire.RunResponse, error) {
	return c.Run(ctx, session, wire.RunRequest{User: user, GEL: line, Current: current})
}

// RunPython executes a DataChat Python API script.
func (c *Client) RunPython(ctx context.Context, session, user, src string) (*wire.RunResponse, error) {
	return c.Run(ctx, session, wire.RunRequest{User: user, Python: src})
}

// RunPhrase executes a §4.8 phrase-based request against a dataset.
func (c *Client) RunPhrase(ctx context.Context, session, user, input, datasetName string) (*wire.RunResponse, error) {
	return c.Run(ctx, session, wire.RunRequest{User: user, Phrase: input, Dataset: datasetName})
}

// Explain fetches the EXPLAIN report for the step producing output
// ("" = the session's latest step) without executing anything.
func (c *Client) Explain(ctx context.Context, session, output string) (*plan.Explain, error) {
	var out wire.ExplainResponse
	path := "/v1/sessions/" + url.PathEscape(session) + "/explain"
	if output != "" {
		path += "?output=" + url.QueryEscape(output)
	}
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out.Explain, nil
}

// --- Rows ---

// Rows fetches one page of a session dataset.
func (c *Client) Rows(ctx context.Context, session, datasetName string, offset, limit int) (*wire.Table, error) {
	var out wire.Table
	path := fmt.Sprintf("/v1/sessions/%s/datasets/%s?offset=%d&limit=%d",
		url.PathEscape(session), url.PathEscape(datasetName), offset, limit)
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FetchTable pages through a session dataset and reassembles it as a typed
// table.
func (c *Client) FetchTable(ctx context.Context, session, datasetName string, pageSize int) (*dataset.Table, error) {
	if pageSize <= 0 {
		pageSize = 1000
	}
	var full *wire.Table
	offset := 0
	for {
		page, err := c.Rows(ctx, session, datasetName, offset, pageSize)
		if err != nil {
			return nil, err
		}
		if full == nil {
			full = page
		} else {
			full.Rows = append(full.Rows, page.Rows...)
		}
		if page.NextOffset < 0 {
			break
		}
		offset = page.NextOffset
	}
	return full.Decode()
}

// consumeStream reads an NDJSON row stream from body: the header line first,
// then fn once per data chunk in order. The terminal sentinel chunk (Last
// set) is consumed here, never passed to fn: a server-side failure recorded
// in it comes back as a *wire.Error, and a stream that ends without one is
// reported as truncated — a dropped connection can no longer masquerade as a
// short table. On success the returned header's TotalRows reflects the
// sentinel's final count, and any execution stats the server attached to the
// sentinel (morsel workers, buffered-row peak, spill activity) are returned
// alongside — even when the sentinel also carries an error.
func consumeStream(body io.Reader, what string, fn func(header *wire.Table, rows wire.RowChunk) error) (*wire.Table, *wire.StreamStats, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var header *wire.Table
	var stats *wire.StreamStats
	sawLast := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if header == nil {
			var h wire.Table
			if err := wire.DecodeJSON(bytes.NewReader(line), &h); err != nil {
				return nil, nil, fmt.Errorf("client: decoding stream header: %w", err)
			}
			header = &h
			continue
		}
		var rc wire.RowChunk
		if err := wire.DecodeJSON(bytes.NewReader(line), &rc); err != nil {
			return nil, nil, fmt.Errorf("client: decoding stream chunk: %w", err)
		}
		if rc.Last {
			sawLast = true
			header.TotalRows = rc.TotalRows
			stats = rc.Stats
			if rc.Error != nil {
				return nil, stats, rc.Error
			}
			break
		}
		if fn != nil {
			if err := fn(header, rc); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("client: reading stream: %w", err)
	}
	if header == nil {
		return nil, nil, fmt.Errorf("client: empty stream for %s", what)
	}
	if !sawLast {
		return nil, nil, fmt.Errorf("client: stream for %s truncated before the terminal chunk", what)
	}
	return header, stats, nil
}

// StreamRows consumes the chunked row stream of a session dataset: the
// header arrives first, then fn is called once per chunk in order. fn may
// be nil to drain the stream (e.g. to measure it).
func (c *Client) StreamRows(ctx context.Context, session, datasetName string, chunk int, fn func(header *wire.Table, rows wire.RowChunk) error) (*wire.Table, error) {
	path := fmt.Sprintf("%s/v1/sessions/%s/datasets/%s/stream?chunk=%d",
		c.BaseURL, url.PathEscape(session), url.PathEscape(datasetName), chunk)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, fmt.Errorf("client: building stream request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: streaming %s/%s: %w", session, datasetName, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	header, _, err := consumeStream(resp.Body, session+"/"+datasetName, fn)
	return header, err
}

// RunStream executes one run request with the result streamed back as it is
// produced: the target step runs through the server's morsel pipeline and fn
// is called once per chunk, so first rows arrive while execution is still in
// flight. The returned header carries the schema; its TotalRows is the final
// streamed count. Errors raised after streaming began (deadline, engine
// failure) arrive via the terminal sentinel and come back typed, exactly
// like pre-stream refusals.
func (c *Client) RunStream(ctx context.Context, session string, req wire.RunRequest, fn func(header *wire.Table, rows wire.RowChunk) error) (*wire.Table, error) {
	header, _, err := c.RunStreamStats(ctx, session, req, fn)
	return header, err
}

// RunStreamStats is RunStream returning also the execution stats the server
// attached to the terminal sentinel: the resolved morsel worker count, the
// buffered-row peak against the request's memory budget, and how much the
// engine spilled to disk. Stats may be non-nil even when err is a post-stream
// failure (they describe the partial execution); nil when the server sent
// none.
func (c *Client) RunStreamStats(ctx context.Context, session string, req wire.RunRequest, fn func(header *wire.Table, rows wire.RowChunk) error) (*wire.Table, *wire.StreamStats, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, nil, fmt.Errorf("client: encoding request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/sessions/"+url.PathEscape(session)+"/run/stream", bytes.NewReader(data))
	if err != nil {
		return nil, nil, fmt.Errorf("client: building stream request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, nil, fmt.Errorf("client: streaming run on %s: %w", session, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, nil, decodeError(resp)
	}
	return consumeStream(resp.Body, session+"/run", fn)
}

// RunStreamTable is RunStream with the chunks reassembled into a typed table.
func (c *Client) RunStreamTable(ctx context.Context, session string, req wire.RunRequest) (*dataset.Table, error) {
	var full *wire.Table
	header, err := c.RunStream(ctx, session, req, func(h *wire.Table, rc wire.RowChunk) error {
		if full == nil {
			cp := *h
			cp.Rows = nil
			full = &cp
		}
		full.Rows = append(full.Rows, rc.Rows...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if full == nil {
		full = header
	}
	return full.Decode()
}

// StreamTable reassembles a full dataset from the chunked row stream.
func (c *Client) StreamTable(ctx context.Context, session, datasetName string, chunk int) (*dataset.Table, error) {
	var full *wire.Table
	header, err := c.StreamRows(ctx, session, datasetName, chunk, func(h *wire.Table, rc wire.RowChunk) error {
		if full == nil {
			cp := *h
			cp.Rows = nil
			full = &cp
		}
		full.Rows = append(full.Rows, rc.Rows...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if full == nil {
		full = header
	}
	return full.Decode()
}

// --- Artifacts ---

// SaveArtifact persists the step producing output ("" = latest) as a named
// artifact.
func (c *Client) SaveArtifact(ctx context.Context, session string, req wire.SaveArtifactRequest) (*wire.ArtifactInfo, error) {
	var out wire.ArtifactInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(session)+"/artifacts", req, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Artifacts lists artifact names user can view.
func (c *Client) Artifacts(ctx context.Context, user string) ([]string, error) {
	var out wire.ArtifactsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/artifacts?user="+url.QueryEscape(user), nil, &out); err != nil {
		return nil, err
	}
	return out.Artifacts, nil
}

// Artifact fetches an artifact (metadata, recipe, payload page).
func (c *Client) Artifact(ctx context.Context, name, user string, maxRows int) (*wire.ArtifactInfo, error) {
	var out wire.ArtifactInfo
	path := "/v1/artifacts/" + url.PathEscape(name) + "?user=" + url.QueryEscape(user) +
		"&max_rows=" + strconv.Itoa(maxRows)
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Recipe fetches an artifact's recipe with its GEL/Python/SQL renderings.
func (c *Client) Recipe(ctx context.Context, name, user string) (*wire.RecipeResponse, error) {
	var out wire.RecipeResponse
	path := "/v1/artifacts/" + url.PathEscape(name) + "/recipe?user=" + url.QueryEscape(user)
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShareArtifact grants with access ("view" or "edit") on an artifact.
func (c *Client) ShareArtifact(ctx context.Context, name, by, with, access string) error {
	return c.do(ctx, http.MethodPost, "/v1/artifacts/"+url.PathEscape(name)+"/share",
		wire.ShareArtifactRequest{By: by, With: with, Access: access}, nil)
}

// MintLink creates a secret link granting account-less view access (§2.4).
func (c *Client) MintLink(ctx context.Context, name, by string) (string, error) {
	var out wire.LinkResponse
	err := c.do(ctx, http.MethodPost, "/v1/artifacts/"+url.PathEscape(name)+"/links",
		wire.LinkRequest{By: by}, &out)
	if err != nil {
		return "", err
	}
	return out.Secret, nil
}

// ResolveLink fetches the artifact behind a secret link, no account needed.
func (c *Client) ResolveLink(ctx context.Context, secret string) (*wire.ArtifactInfo, error) {
	var out wire.ArtifactInfo
	if err := c.do(ctx, http.MethodGet, "/v1/links/"+url.PathEscape(secret), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RefreshArtifact replays an artifact's recipe in a session on the latest
// data.
func (c *Client) RefreshArtifact(ctx context.Context, name, user, session string) (*wire.ArtifactInfo, error) {
	var out wire.ArtifactInfo
	err := c.do(ctx, http.MethodPost, "/v1/artifacts/"+url.PathEscape(name)+"/refresh",
		map[string]string{"user": user, "session": session}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// --- Platform ---

// RegisterFile uploads CSV content loadable by name in sessions created
// afterwards.
func (c *Client) RegisterFile(ctx context.Context, name, content string) error {
	return c.do(ctx, http.MethodPost, "/v1/files", wire.FileRequest{Name: name, Content: content}, nil)
}

// Statsz fetches the deployment's execution/cache/server counters.
func (c *Client) Statsz(ctx context.Context) (*wire.Statsz, error) {
	var out wire.Statsz
	if err := c.do(ctx, http.MethodGet, "/statsz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health pings the daemon.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
