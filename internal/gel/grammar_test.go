package gel

import (
	"strings"
	"testing"
)

// TestGrammarConsistency cross-checks the GEL grammar against the skill
// registry: every template must target a real skill, compile cleanly, and
// only capture slots that are declared parameters of the skill (or the
// runner-level pseudo-slots).
func TestGrammarConsistency(t *testing.T) {
	pseudo := map[string]bool{"inputs": true, "version": true}
	covered := map[string]bool{}
	for _, entry := range grammar {
		def, err := reg.Lookup(entry.skill)
		if err != nil {
			t.Errorf("grammar targets unknown skill %q", entry.skill)
			continue
		}
		covered[def.Name] = true
		pat, err := compilePattern(entry.skill, entry.template)
		if err != nil {
			t.Errorf("template %q does not compile: %v", entry.template, err)
			continue
		}
		params := map[string]bool{}
		for _, p := range def.Params {
			params[p.Name] = true
		}
		for _, seg := range pat.segments {
			if seg.slot == "" {
				continue
			}
			if !params[seg.slot] && !pseudo[seg.slot] {
				t.Errorf("template %q captures %q, which %s does not declare",
					entry.template, seg.slot, def.Name)
			}
		}
		for k := range entry.extra {
			if !params[k] {
				t.Errorf("template %q implies %q, which %s does not declare",
					entry.template, k, def.Name)
			}
		}
	}
	// Compute has a custom parser; count it as covered.
	covered["Compute"] = true
	// Every skill with a GEL template should be reachable from a sentence.
	var missing []string
	for _, name := range reg.Names() {
		def, _ := reg.Lookup(name)
		if def.GEL == "" {
			continue
		}
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		t.Errorf("skills with GEL templates but no grammar entry: %s", strings.Join(missing, ", "))
	}
}

// TestEveryGrammarTemplateParsesItsOwnShape instantiates each template with
// placeholder values and checks the parser maps the sentence back to the
// intended skill — the grammar's own round trip.
func TestEveryGrammarTemplateParsesItsOwnShape(t *testing.T) {
	p := parser(t)
	fill := func(template string) string {
		out := template
		replacements := map[string]string{
			"{condition:rest}":  "x > 1",
			"{formula:rest}":    "x + 1",
			"{text:rest}":       "Hello",
			"{on:rest}":         "a.id = b.id",
			"{query:rest}":      "SELECT 1 AS one",
			"{measure:rest}":    "sum of x",
			"{meaning:rest}":    "x > 2",
			"{filter:rest}":     "x > 3",
			"{columns:list}":    "colA, colB",
			"{inputs:list}":     "ds1 and ds2",
			"{by:list}":         "colA, colB",
			"{features:list}":   "colA, colB",
			"{count:number}":    "5",
			"{steps:number}":    "5",
			"{k:number}":        "3",
			"{size:number}":     "10",
			"{rate:number}":     "0.1",
			"{fraction:number}": "0.5",
			"{version:number}":  "1",
		}
		for slot, value := range replacements {
			out = strings.ReplaceAll(out, slot, value)
		}
		// Remaining generic word slots.
		for strings.Contains(out, "{") {
			start := strings.IndexByte(out, '{')
			end := strings.IndexByte(out, '}')
			if end < start {
				break
			}
			out = out[:start] + "thing" + out[end+1:]
		}
		return out
	}
	for _, entry := range grammar {
		sentence := fill(entry.template)
		inv, err := p.Parse(sentence)
		if err != nil {
			t.Errorf("template %q → %q does not parse: %v", entry.template, sentence, err)
			continue
		}
		if inv.Skill != entry.skill {
			// Earlier templates may shadow more general ones for the same
			// surface; only flag cross-skill captures.
			def1, _ := reg.Lookup(inv.Skill)
			def2, _ := reg.Lookup(entry.skill)
			if def1.Name != def2.Name {
				t.Errorf("template %q parsed as %s, want %s (sentence %q)",
					entry.template, inv.Skill, entry.skill, sentence)
			}
		}
	}
}
