package dag

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"datachat/internal/dataset"
	"datachat/internal/skills"
)

func resultNamed(name string) *skills.Result {
	return &skills.Result{
		Table: dataset.MustNewTable(name, dataset.IntColumn("x", []int64{1}, nil)),
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, hit, err := c.Do(key, func() (*skills.Result, error) {
			return resultNamed(key), nil
		}); err != nil || hit {
			t.Fatalf("Do(%s) = hit=%v err=%v", key, hit, err)
		}
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Error("k0 should have been evicted (least recently used)")
	}
	if _, ok := c.Get("k2"); !ok {
		t.Error("k2 should be present")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Misses != 3 {
		t.Errorf("misses = %d, want 3", st.Misses)
	}
}

func TestCacheLRUOrderRefreshedByUse(t *testing.T) {
	c := NewCache(2)
	store := func(key string) {
		c.Do(key, func() (*skills.Result, error) { return resultNamed(key), nil })
	}
	store("a")
	store("b")
	c.Get("a") // refresh a's recency; b is now the eviction candidate
	store("c")
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("least recently used entry survived")
	}
}

func TestCacheSingleflightDeduplicates(t *testing.T) {
	c := NewCache(16)
	var executions atomic.Int64
	var hits atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, hit, err := c.Do("shared", func() (*skills.Result, error) {
				executions.Add(1)
				<-release // hold the flight open so every goroutine joins it
				return resultNamed("shared"), nil
			})
			if err != nil {
				t.Error(err)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	// The leader is inside fn once executions becomes 1; release everyone.
	for executions.Load() == 0 {
	}
	close(release)
	wg.Wait()
	if executions.Load() != 1 {
		t.Errorf("fn executed %d times, want 1 (singleflight)", executions.Load())
	}
	if hits.Load() != 7 {
		t.Errorf("follower hits = %d, want 7", hits.Load())
	}
	st := c.Stats()
	if st.Hits != 7 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 7 hits / 1 miss", st)
	}
}

func TestCacheLeaderErrorPropagatesAndStoresNothing(t *testing.T) {
	c := NewCache(16)
	boom := errors.New("boom")
	if _, _, err := c.Do("bad", func() (*skills.Result, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Error("failed computation should not be stored")
	}
	// A later call retries rather than serving the error.
	res, hit, err := c.Do("bad", func() (*skills.Result, error) {
		return resultNamed("bad"), nil
	})
	if err != nil || hit || res == nil {
		t.Errorf("retry = (%v, %v, %v)", res, hit, err)
	}
}

func TestCacheInvalidateDiscardsInFlightResults(t *testing.T) {
	c := NewCache(16)
	_, _, err := c.Do("k", func() (*skills.Result, error) {
		// Invalidation lands while the computation is running: its result
		// must not be stored afterwards.
		c.Invalidate()
		return resultNamed("k"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Error("result computed across an invalidation was stored")
	}
}

func TestCacheInvalidateClearsEntries(t *testing.T) {
	c := NewCache(16)
	c.Do("k", func() (*skills.Result, error) { return resultNamed("k"), nil })
	c.Invalidate()
	if _, ok := c.Get("k"); ok {
		t.Error("entry survived invalidation")
	}
	st := c.Stats()
	if st.Evictions != 0 {
		t.Errorf("invalidation should not count as eviction: %+v", st)
	}
}

func TestCachePeekHasNoSideEffects(t *testing.T) {
	c := NewCache(1)
	c.Do("a", func() (*skills.Result, error) { return resultNamed("a"), nil })
	before := c.Stats()
	if !c.Peek("a") {
		t.Error("Peek missed a stored entry")
	}
	if c.Peek("zzz") {
		t.Error("Peek found a missing entry")
	}
	after := c.Stats()
	if before != after {
		t.Errorf("Peek changed counters: %+v -> %+v", before, after)
	}
}

func TestCacheConcurrentMixedAccess(t *testing.T) {
	c := NewCache(8)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				key := fmt.Sprintf("k%d", (i+j)%12)
				switch j % 4 {
				case 0:
					c.Do(key, func() (*skills.Result, error) { return resultNamed(key), nil })
				case 1:
					c.Get(key)
				case 2:
					c.Peek(key)
				default:
					if j%20 == 3 {
						c.Invalidate()
					} else {
						c.Stats()
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("capacity exceeded: %d", c.Len())
	}
}
