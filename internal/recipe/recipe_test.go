package recipe

import (
	"strings"
	"testing"

	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/skills"
)

var reg = skills.NewRegistry()

func buildGraph() *dag.Graph {
	g := dag.NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"people"},
		Args: skills.Args{"condition": "age > 20"}, Output: "adults"})
	g.Add(skills.Invocation{Skill: "Compute", Inputs: []string{"adults"},
		Args:   skills.Args{"aggregates": []string{"count of id as n"}, "for_each": []string{"dept"}},
		Output: "summary"})
	return g
}

func newCtx() *skills.Context {
	ctx := skills.NewContext()
	ctx.Datasets["people"] = dataset.MustNewTable("people",
		dataset.IntColumn("id", []int64{1, 2, 3, 4}, nil),
		dataset.IntColumn("age", []int64{15, 25, 35, 45}, nil),
		dataset.StringColumn("dept", []string{"a", "a", "b", "b"}, nil),
	)
	return ctx
}

func TestFromGraphAndBack(t *testing.T) {
	g := buildGraph()
	rec, err := FromGraph("summary", g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Steps) != 2 || rec.Steps[0].Output != "adults" {
		t.Fatalf("steps = %+v", rec.Steps)
	}
	rebuilt := rec.Graph()
	if rebuilt.Len() != 2 {
		t.Fatalf("rebuilt size = %d", rebuilt.Len())
	}
	node, _ := rebuilt.Node(1)
	if node.Parents[0] != 0 {
		t.Errorf("rebuilt wiring = %v", node.Parents)
	}
}

func TestJSONRoundTripAndReplay(t *testing.T) {
	rec, err := FromGraph("summary", buildGraph())
	if err != nil {
		t.Fatal(err)
	}
	data, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "summary" || len(back.Steps) != 2 {
		t.Fatalf("decoded = %+v", back)
	}
	// Replaying the decoded recipe produces the same table as the original.
	ex1 := dag.NewExecutor(reg, newCtx())
	r1, err := rec.Replay(ex1, false)
	if err != nil {
		t.Fatal(err)
	}
	ex2 := dag.NewExecutor(reg, newCtx())
	r2, err := back.Replay(ex2, false)
	if err != nil {
		t.Fatalf("replaying decoded recipe: %v", err)
	}
	if !r1.Table.Equal(r2.Table.WithName(r1.Table.Name())) {
		t.Error("decoded replay differs from original")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Error("bad json should error")
	}
	if _, err := Decode([]byte(`{"name":"x","steps":[]}`)); err == nil {
		t.Error("empty steps should error")
	}
}

func TestGELView(t *testing.T) {
	rec, err := FromGraph("summary", buildGraph())
	if err != nil {
		t.Fatal(err)
	}
	lines, err := rec.GEL(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "Keep the rows where age > 20" {
		t.Errorf("line 0 = %s", lines[0])
	}
	if !strings.Contains(lines[1], "Compute the count of id") {
		t.Errorf("line 1 = %s", lines[1])
	}
}

func TestPythonView(t *testing.T) {
	rec, err := FromGraph("summary", buildGraph())
	if err != nil {
		t.Fatal(err)
	}
	code, err := rec.Python(reg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, `adults = people.keep_rows(condition = "age > 20")`) {
		t.Errorf("python view:\n%s", code)
	}
	if !strings.Contains(code, "adults.compute(") {
		t.Errorf("python view:\n%s", code)
	}
}

func TestSQLView(t *testing.T) {
	rec, err := FromGraph("summary", buildGraph())
	if err != nil {
		t.Fatal(err)
	}
	ex := dag.NewExecutor(reg, newCtx())
	sql, err := rec.SQL(ex)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "GROUP BY dept") || !strings.Contains(sql, "WHERE (age > 20)") {
		t.Errorf("sql view = %s", sql)
	}
}

func TestReplayWithRefreshSeesNewData(t *testing.T) {
	ctx := newCtx()
	ex := dag.NewExecutor(reg, ctx)
	rec, err := FromGraph("summary", buildGraph())
	if err != nil {
		t.Fatal(err)
	}
	first, err := rec.Replay(ex, false)
	if err != nil {
		t.Fatal(err)
	}
	// Underlying data changes.
	ctx.Datasets["people"] = dataset.MustNewTable("people",
		dataset.IntColumn("id", []int64{1, 2}, nil),
		dataset.IntColumn("age", []int64{30, 40}, nil),
		dataset.StringColumn("dept", []string{"z", "z"}, nil),
	)
	// Cache keys include dataset content fingerprints, so even a replay
	// without explicit invalidation sees the new data — the old behaviour
	// (serving the stale cached result for the same dataset name) was a bug.
	second, err := rec.Replay(ex, false)
	if err != nil {
		t.Fatal(err)
	}
	if first.Table.Equal(second.Table) {
		t.Error("replay after a data change should not serve the stale cached result")
	}
	fresh, err := rec.Replay(ex, true)
	if err != nil {
		t.Fatal(err)
	}
	if first.Table.Equal(fresh.Table) {
		t.Error("refresh should see new data")
	}
	c, _ := fresh.Table.Column("n")
	if c.Value(0).I != 2 {
		t.Errorf("fresh count = %v", c.Value(0))
	}
}

func TestLiveReplayObservesEveryStep(t *testing.T) {
	rec, err := FromGraph("summary", buildGraph())
	if err != nil {
		t.Fatal(err)
	}
	ex := dag.NewExecutor(reg, newCtx())
	var seen []int
	final, err := rec.LiveReplay(ex, func(s ReplayStep) {
		seen = append(seen, s.Index)
		if s.Result == nil {
			t.Errorf("step %d has no result", s.Index)
		}
		if s.Elapsed < 0 {
			t.Errorf("step %d negative elapsed", s.Index)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Errorf("observed steps = %v", seen)
	}
	direct, err := rec.Replay(dag.NewExecutor(reg, newCtx()), false)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Table.Equal(direct.Table.WithName(final.Table.Name())) {
		t.Error("live replay result differs from plain replay")
	}
	// A nil observer is allowed.
	if _, err := rec.LiveReplay(dag.NewExecutor(reg, newCtx()), nil); err != nil {
		t.Fatal(err)
	}
	// Failing recipes surface the failing step.
	bad := &Recipe{Name: "bad", Steps: []Step{
		{Skill: "KeepRows", Inputs: []string{"people"}, Output: "x",
			Args: skills.Args{"condition": "nope > 1"}},
	}}
	if _, err := bad.LiveReplay(dag.NewExecutor(reg, newCtx()), nil); err == nil {
		t.Error("failing live replay should error")
	}
}

func TestValidate(t *testing.T) {
	rec, err := FromGraph("summary", buildGraph())
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(reg); err != nil {
		t.Fatalf("valid recipe rejected: %v", err)
	}
	bad := []*Recipe{
		{Name: "empty"},
		{Name: "unknown", Steps: []Step{{Skill: "Frobnicate"}}},
		{Name: "missing-param", Steps: []Step{{Skill: "KeepRows", Inputs: []string{"x"}}}},
		{Name: "dup-output", Steps: []Step{
			{Skill: "CountRows", Inputs: []string{"x"}, Output: "a"},
			{Skill: "CountRows", Inputs: []string{"x"}, Output: "a"},
		}},
		{Name: "forward-ref", Steps: []Step{
			{Skill: "CountRows", Inputs: []string{"later"}, Output: "a"},
			{Skill: "CountRows", Inputs: []string{"x"}, Output: "later"},
		}},
	}
	for _, r := range bad {
		if err := r.Validate(reg); err == nil {
			t.Errorf("recipe %q should fail validation", r.Name)
		}
	}
}
