package spider

import (
	"strings"
	"testing"

	"datachat/internal/dag"
	"datachat/internal/skills"
)

var reg = skills.NewRegistry()

func TestDomainsBuild(t *testing.T) {
	domains := Domains(1)
	if len(domains) != 7 {
		t.Fatalf("domains = %d", len(domains))
	}
	customCount := 0
	for _, d := range domains {
		if d.Custom {
			customCount++
		}
		if len(d.Tables) < 2 {
			t.Errorf("%s has %d tables", d.Name, len(d.Tables))
		}
		fact, ok := d.Tables[d.Fact]
		if !ok {
			t.Fatalf("%s fact table %q missing", d.Name, d.Fact)
		}
		if fact.NumRows() < 100 {
			t.Errorf("%s fact has %d rows", d.Name, fact.NumRows())
		}
		if len(d.measures()) == 0 || len(d.categories()) == 0 {
			t.Errorf("%s lacks measures or categories", d.Name)
		}
		if d.Layer == nil || d.Layer.Len() == 0 {
			t.Errorf("%s has no semantic layer", d.Name)
		}
		// Every annotated column exists in the fact table.
		for _, c := range d.Columns {
			if !fact.HasColumn(c.Name) {
				t.Errorf("%s annotates missing column %s", d.Name, c.Name)
			}
		}
		// Join columns exist.
		j := d.Join
		if !d.Tables[j.LeftTable].HasColumn(j.LeftKey) || !d.Tables[j.RightTable].HasColumn(j.RightKey) {
			t.Errorf("%s join keys missing", d.Name)
		}
		if !d.Tables[j.RightTable].HasColumn(j.RightCategory) {
			t.Errorf("%s join category missing", d.Name)
		}
	}
	if customCount != 2 {
		t.Errorf("custom domains = %d", customCount)
	}
}

func TestDomainsDeterministic(t *testing.T) {
	a := Domains(7)
	b := Domains(7)
	for i := range a {
		if !a[i].Tables[a[i].Fact].Equal(b[i].Tables[b[i].Fact]) {
			t.Errorf("domain %s not deterministic", a[i].Name)
		}
	}
	c := Domains(8)
	same := 0
	for i := range a {
		if a[i].Tables[a[i].Fact].Equal(c[i].Tables[c[i].Fact]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds should change data")
	}
}

func TestCustomLayersAreSparser(t *testing.T) {
	domains := Domains(1)
	var custom, regular int
	var customValues, regularValues int
	for _, d := range domains {
		for _, c := range d.Layer.Concepts() {
			if d.Custom {
				custom++
				if c.Kind == "filter" {
					customValues++
				}
			} else {
				regular++
				if c.Kind == "filter" {
					regularValues++
				}
			}
		}
	}
	if customValues != 0 {
		t.Errorf("custom domains should lack value phrases, have %d", customValues)
	}
	if regularValues == 0 {
		t.Error("regular domains should have value phrases")
	}
}

func TestGenerateDevDistribution(t *testing.T) {
	domains := Domains(1)
	dev := GenerateDev(domains, 42)
	counts := map[Zone]int{}
	for _, ex := range dev {
		counts[ex.Zone]++
		if ex.Question == "" || len(ex.Gold) == 0 {
			t.Fatalf("degenerate example %s", ex.ID)
		}
	}
	// Figure 7's exact counts.
	if counts[LowLow] != 638 || counts[LowHigh] != 246 || counts[HighLow] != 127 || counts[HighHigh] != 29 {
		t.Errorf("zone counts = %v", counts)
	}
	if len(dev) != 1040 {
		t.Errorf("dev size = %d", len(dev))
	}
	// Dev examples come from non-custom domains only.
	byName := map[string]*Domain{}
	for _, d := range domains {
		byName[d.Name] = d
	}
	for _, ex := range dev {
		if byName[ex.Domain].Custom {
			t.Fatalf("dev example from custom domain %s", ex.Domain)
		}
	}
}

func TestGenerateCustomDistribution(t *testing.T) {
	domains := Domains(1)
	custom := GenerateCustom(domains, 43)
	counts := map[Zone]int{}
	byName := map[string]*Domain{}
	for _, d := range domains {
		byName[d.Name] = d
	}
	for _, ex := range custom {
		counts[ex.Zone]++
		if !byName[ex.Domain].Custom {
			t.Fatalf("custom example from regular domain %s", ex.Domain)
		}
	}
	if counts[LowLow] != 20 || counts[LowHigh] != 22 || counts[HighLow] != 26 || counts[HighHigh] != 22 {
		t.Errorf("custom counts = %v", counts)
	}
}

func TestHighMQuestionsAvoidSchemaNames(t *testing.T) {
	domains := Domains(1)
	dev := GenerateDev(domains, 42)
	byName := map[string]*Domain{}
	for _, d := range domains {
		byName[d.Name] = d
	}
	lowHits, lowTotal := 0, 0
	highHits, highTotal := 0, 0
	for _, ex := range dev {
		d := byName[ex.Domain]
		q := strings.ToLower(ex.Question)
		mentionsSchema := false
		for _, c := range d.Columns {
			if strings.Contains(q, strings.ToLower(c.Name)) {
				mentionsSchema = true
			}
		}
		switch ex.Zone {
		case LowLow, LowHigh:
			lowTotal++
			if mentionsSchema {
				lowHits++
			}
		default:
			highTotal++
			if mentionsSchema {
				highHits++
			}
		}
	}
	lowRate := float64(lowHits) / float64(lowTotal)
	highRate := float64(highHits) / float64(highTotal)
	if lowRate < 0.8 {
		t.Errorf("low-M questions mention schema only %.2f of the time", lowRate)
	}
	if highRate > lowRate-0.2 {
		t.Errorf("high-M questions mention schema too often: %.2f vs %.2f", highRate, lowRate)
	}
}

func TestGoldProgramsExecute(t *testing.T) {
	domains := Domains(1)
	byName := map[string]*Domain{}
	for _, d := range domains {
		byName[d.Name] = d
	}
	dev := GenerateDev(domains, 42)
	// Execute a sample from each zone (full set is covered by the bench).
	perZone := map[Zone]int{}
	for _, ex := range dev {
		if perZone[ex.Zone] >= 5 {
			continue
		}
		perZone[ex.Zone]++
		d := byName[ex.Domain]
		ctx := skills.NewContext()
		for name, table := range d.Tables {
			ctx.Datasets[name] = table
		}
		g := dag.NewGraph()
		var last dag.NodeID
		for _, inv := range ex.Gold {
			last = g.Add(inv)
		}
		res, err := dag.NewExecutor(reg, ctx).Run(g, last)
		if err != nil {
			t.Fatalf("%s gold failed: %v\nQ: %s", ex.ID, err, ex.Question)
		}
		if res.Table == nil || res.Table.NumRows() == 0 {
			t.Errorf("%s gold produced no rows (Q: %s)", ex.ID, ex.Question)
		}
	}
}

func TestGoldPythonRenders(t *testing.T) {
	domains := Domains(1)
	dev := GenerateLibrary(domains, 99, 3)
	for _, ex := range dev {
		code, err := ex.GoldPython(reg)
		if err != nil {
			t.Fatalf("%s render: %v", ex.ID, err)
		}
		if !strings.Contains(code, "(") {
			t.Errorf("%s code looks wrong: %s", ex.ID, code)
		}
	}
}

func TestLibraryExcludesCustomDomains(t *testing.T) {
	domains := Domains(1)
	lib := GenerateLibrary(domains, 5, 10)
	if len(lib) != 40 {
		t.Errorf("library size = %d", len(lib))
	}
	for _, ex := range lib {
		if ex.Domain == "logistics" || ex.Domain == "energy" {
			t.Fatalf("library contains custom-domain example %s", ex.ID)
		}
	}
}
