// Package experiments regenerates every table and figure in the paper's
// evaluation: Table 2 (execution accuracy by difficulty zone), Figure 7
// (the dev split's M/C characterization), the §3 sampling/snapshot cost
// claims, the Figure 4 / §2.2 consolidation claims, and the Figure 5
// slicing behaviour — plus the ablations DESIGN.md calls out. The same
// harness backs cmd/dcbench and the repository's testing.B benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"datachat/internal/cloud"
	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/nl2code"
	"datachat/internal/skills"
	"datachat/internal/snapshot"
	"datachat/internal/spider"
	"datachat/internal/sqlengine"
)

// Suite owns the shared fixtures: domains, library, and the NL2Code system.
type Suite struct {
	Registry *skills.Registry
	Domains  []*spider.Domain
	Library  *nl2code.Library
	System   *nl2code.System

	byDomain map[string]*spider.Domain
	vocab    map[string]map[string]bool
}

// NewSuite builds the fixtures deterministically from a seed.
func NewSuite(seed int64) *Suite {
	reg := skills.NewRegistry()
	domains := spider.Domains(seed)
	var examples []*nl2code.LibraryExample
	for _, ex := range spider.GenerateLibrary(domains, seed+1000, 10) {
		examples = append(examples, &nl2code.LibraryExample{
			Question: ex.Question, Program: ex.Gold, Domain: ex.Domain,
		})
	}
	lib := nl2code.NewLibrary(examples)
	s := &Suite{
		Registry: reg,
		Domains:  domains,
		Library:  lib,
		System:   nl2code.NewSystem(reg, lib),
		byDomain: map[string]*spider.Domain{},
		vocab:    map[string]map[string]bool{},
	}
	for _, d := range domains {
		s.byDomain[d.Name] = d
		s.vocab[d.Name] = nl2code.SchemaVocabulary(d.Tables)
	}
	return s
}

// Characterize computes (M, C) for an example.
func (s *Suite) Characterize(ex *spider.Example) (m, c float64) {
	d := s.byDomain[ex.Domain]
	m = nl2code.Misalignment(ex.Question, s.vocab[d.Name], nl2code.NeededColumns(ex.Gold))
	c = nl2code.Composition(ex.Gold)
	return m, c
}

// MeasuredZone classifies an example by its measured metrics (the paper's
// characterization, independent of generator intent).
func (s *Suite) MeasuredZone(ex *spider.Example) spider.Zone {
	m, c := s.Characterize(ex)
	highM, highC := nl2code.ZoneOf(m, c)
	switch {
	case highM && highC:
		return spider.HighHigh
	case highM:
		return spider.HighLow
	case highC:
		return spider.LowHigh
	default:
		return spider.LowLow
	}
}

// ---- Figure 7 ----

// Figure7Point is one characterized sample.
type Figure7Point struct {
	M, C float64
	Zone spider.Zone
}

// Figure7Result is the dev-split characterization.
type Figure7Result struct {
	// Counts per measured zone.
	Counts map[spider.Zone]int
	// Points are all characterized samples.
	Points []Figure7Point
	// Total is the dev-split size.
	Total int
}

// Figure7 characterizes the full synthetic dev split.
func (s *Suite) Figure7(seed int64) *Figure7Result {
	dev := spider.GenerateDev(s.Domains, seed)
	out := &Figure7Result{Counts: map[spider.Zone]int{}, Total: len(dev)}
	for _, ex := range dev {
		m, c := s.Characterize(ex)
		zone := s.MeasuredZone(ex)
		out.Counts[zone]++
		out.Points = append(out.Points, Figure7Point{M: m, C: c, Zone: zone})
	}
	return out
}

// Report renders the Figure 7 counts the way the paper annotates them.
func (r *Figure7Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — dev split characterization (%d samples, thresholds M=%.1f C=%.0f)\n",
		r.Total, nl2code.MThreshold, nl2code.CThreshold)
	for _, z := range spider.Zones() {
		fmt.Fprintf(&b, "  %-12s : %d\n", z, r.Counts[z])
	}
	return b.String()
}

// ---- Table 2 ----

// AccuracyCell is one zone's result on one evaluation set.
type AccuracyCell struct {
	Zone    spider.Zone
	Samples int
	MeanEA  float64
}

// Table2Result reproduces Table 2.
type Table2Result struct {
	Spider, Custom []AccuracyCell
	SpiderMean     float64
	CustomMean     float64
	// Failures counts ground-truth execution errors (should stay 0).
	Failures int
}

// Table2Options configures the run (ablations flip these).
type Table2Options struct {
	// PerZone is the balanced sample size per zone on the spider set (the
	// paper uses 25 ≈ 10% of dev).
	PerZone int
	// Seed varies the generated dev/custom splits.
	Seed int64
}

// Table2 runs the execution-accuracy experiment: a balanced per-measured-
// zone sample of the dev split, plus the full custom set.
func (s *Suite) Table2(opts Table2Options) (*Table2Result, error) {
	if opts.PerZone <= 0 {
		opts.PerZone = 25
	}
	dev := spider.GenerateDev(s.Domains, opts.Seed)
	custom := spider.GenerateCustom(s.Domains, opts.Seed+1)

	// Balance the spider sample by measured zone.
	taken := map[spider.Zone]int{}
	var spiderSample []*spider.Example
	for _, ex := range dev {
		zone := s.MeasuredZone(ex)
		if taken[zone] >= opts.PerZone {
			continue
		}
		taken[zone]++
		spiderSample = append(spiderSample, ex)
	}
	result := &Table2Result{}
	var err error
	result.Spider, result.SpiderMean, err = s.evaluate(spiderSample)
	if err != nil {
		return nil, err
	}
	result.Custom, result.CustomMean, err = s.evaluate(custom)
	if err != nil {
		return nil, err
	}
	return result, nil
}

func (s *Suite) evaluate(examples []*spider.Example) ([]AccuracyCell, float64, error) {
	type agg struct{ correct, total int }
	perZone := map[spider.Zone]*agg{}
	for _, z := range spider.Zones() {
		perZone[z] = &agg{}
	}
	for _, ex := range examples {
		d := s.byDomain[ex.Domain]
		zone := s.MeasuredZone(ex)
		ea := 0
		resp, err := s.System.Generate(nl2code.Request{
			Question: ex.Question, Tables: d.Tables, Layer: d.Layer,
		})
		if err == nil {
			ea, err = nl2code.ExecutionAccuracy(s.Registry, d.Tables, ex.Gold, resp.Program)
			if err != nil {
				return nil, 0, fmt.Errorf("experiments: gold failed for %s: %w", ex.ID, err)
			}
		}
		perZone[zone].correct += ea
		perZone[zone].total++
	}
	var cells []AccuracyCell
	totalCorrect, total := 0, 0
	for _, z := range spider.Zones() {
		a := perZone[z]
		mean := 0.0
		if a.total > 0 {
			mean = float64(a.correct) / float64(a.total)
		}
		cells = append(cells, AccuracyCell{Zone: z, Samples: a.total, MeanEA: mean})
		totalCorrect += a.correct
		total += a.total
	}
	overall := 0.0
	if total > 0 {
		overall = float64(totalCorrect) / float64(total)
	}
	return cells, overall, nil
}

// Report renders Table 2 in the paper's layout.
func (r *Table2Result) Report() string {
	var b strings.Builder
	b.WriteString("Table 2 — mean execution accuracy by (M, C) zone\n")
	b.WriteString("  zone          | T_spider samples  mean EA | T_custom samples  mean EA\n")
	for i, z := range spider.Zones() {
		sCell, cCell := r.Spider[i], r.Custom[i]
		fmt.Fprintf(&b, "  %-13s | %7d  %13.2f | %7d  %13.2f\n",
			z, sCell.Samples, sCell.MeanEA, cCell.Samples, cCell.MeanEA)
	}
	fmt.Fprintf(&b, "  %-13s | %24.2f | %24.2f\n", "Mean", r.SpiderMean, r.CustomMean)
	return b.String()
}

// ---- §3 sampling and snapshots ----

// SamplingRow is one scan configuration's cost.
type SamplingRow struct {
	Label        string
	Rate         float64
	Rows         int
	BytesScanned int64
	Dollars      float64
	RelativeCost float64
	Latency      time.Duration
}

// SamplingResult holds the §3 cost table plus the snapshot-iteration
// comparison.
type SamplingResult struct {
	Rows []SamplingRow
	// IterationsOnCloud / IterationsOnSnapshot: bytes billed for N recipe
	// iterations against the cloud vs against a snapshot (after the single
	// snapshot pull).
	Iterations           int
	CloudIterationBytes  int64
	SnapshotPullBytes    int64
	SnapshotIterationFee int64
}

// Sampling builds a synthetic cloud table of the given size and measures
// scan cost at each sample rate, then contrasts iterating a recipe N times
// against the cloud vs against a snapshot.
func Sampling(rows int, rates []float64, iterations int) (*SamplingResult, error) {
	db := cloud.NewDatabase("warehouse", cloud.DefaultPricing, 4096)
	ids := make([]int64, rows)
	vals := make([]float64, rows)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = float64(i % 1000)
	}
	if err := db.CreateTable(dataset.MustNewTable("iot_events",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("reading", vals, nil),
	)); err != nil {
		return nil, err
	}
	result := &SamplingResult{Iterations: iterations}

	full, err := db.Stats("iot_events")
	if err != nil {
		return nil, err
	}
	db.Meter().Reset()
	if _, err := db.Scan("iot_events"); err != nil {
		return nil, err
	}
	result.Rows = append(result.Rows, SamplingRow{
		Label: "full scan", Rate: 1, Rows: full.Rows,
		BytesScanned: db.Meter().BytesScanned(),
		Dollars:      db.Meter().Cost(db.Pricing()),
		RelativeCost: 1,
		Latency:      db.Meter().SimulatedLatency(),
	})
	fullBytes := result.Rows[0].BytesScanned
	for _, rate := range rates {
		db.Meter().Reset()
		sample, err := db.SampleBlocks("iot_events", rate, 7)
		if err != nil {
			return nil, err
		}
		result.Rows = append(result.Rows, SamplingRow{
			Label: fmt.Sprintf("%.0f%% block sample", rate*100), Rate: rate,
			Rows:         sample.NumRows(),
			BytesScanned: db.Meter().BytesScanned(),
			Dollars:      db.Meter().Cost(db.Pricing()),
			RelativeCost: float64(db.Meter().BytesScanned()) / float64(fullBytes),
			Latency:      db.Meter().SimulatedLatency(),
		})
	}

	// Snapshot iteration: pull once, then iterate free.
	db.Meter().Reset()
	store := snapshot.NewStore(50)
	if _, err := store.Create("iot_snap", db, "iot_events", 1, 7); err != nil {
		return nil, err
	}
	result.SnapshotPullBytes = db.Meter().BytesScanned()
	db.Meter().Reset()
	for i := 0; i < iterations; i++ {
		if _, err := sqlengine.Exec(store, "SELECT COUNT(*) AS n FROM iot_snap WHERE reading > 500"); err != nil {
			return nil, err
		}
	}
	result.SnapshotIterationFee = db.Meter().BytesScanned() // stays zero
	db.Meter().Reset()
	for i := 0; i < iterations; i++ {
		if _, err := sqlengine.Exec(db, "SELECT COUNT(*) AS n FROM iot_events WHERE reading > 500"); err != nil {
			return nil, err
		}
	}
	result.CloudIterationBytes = db.Meter().BytesScanned()
	return result, nil
}

// Report renders the §3 experiment.
func (r *SamplingResult) Report() string {
	var b strings.Builder
	b.WriteString("§3 — block sampling cost (cost ∝ bytes scanned)\n")
	b.WriteString("  configuration      | rows      | bytes         | relative cost\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-18s | %9d | %13d | %.3f\n", row.Label, row.Rows, row.BytesScanned, row.RelativeCost)
	}
	fmt.Fprintf(&b, "§3 — snapshot iteration (%d recipe iterations)\n", r.Iterations)
	fmt.Fprintf(&b, "  on cloud:    %d bytes billed\n", r.CloudIterationBytes)
	fmt.Fprintf(&b, "  on snapshot: %d bytes pull + %d bytes billed per iteration set\n",
		r.SnapshotPullBytes, r.SnapshotIterationFee)
	return b.String()
}

// ---- Figure 4 / §2.2 consolidation ----

// ConsolidationResult compares the consolidated executor with the naive
// nest-every-step baseline on the Figure 4 workload (Load→Filter→Limit) and
// a deep projection chain.
type ConsolidationResult struct {
	Figure4Blocks      int
	Figure4NaiveBlocks int
	// DeepChainSteps is the projection-chain length of the §2.2 example.
	DeepChainSteps int
	// Durations are wall-clock medians for executing the chain each way.
	ConsolidatedDuration time.Duration
	NaiveDuration        time.Duration
	SameResult           bool
}

// Consolidation runs the Figure 4 experiment over a table of the given
// size.
func Consolidation(rows, chainSteps, trials int) (*ConsolidationResult, error) {
	reg := skills.NewRegistry()
	makeCtx := func() *skills.Context {
		ctx := skills.NewContext()
		cols := []*dataset.Column{}
		ids := make([]int64, rows)
		for i := range ids {
			ids[i] = int64(i)
		}
		cols = append(cols, dataset.IntColumn("id", ids, nil))
		for c := 0; c < chainSteps+2; c++ {
			vals := make([]float64, rows)
			for i := range vals {
				vals[i] = float64((i * (c + 3)) % 997)
			}
			cols = append(cols, dataset.FloatColumn(fmt.Sprintf("c%d", c), vals, nil))
		}
		ctx.Datasets["collisions"] = dataset.MustNewTable("collisions", cols...)
		return ctx
	}

	// Figure 4: user filter + app-inserted limit → one block.
	figGraph := func() (*dag.Graph, dag.NodeID) {
		g := dag.NewGraph()
		g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"collisions"},
			Args: skills.Args{"condition": "c0 > 100"}, Output: "f"})
		last := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"f"},
			Args: skills.Args{"count": 50}})
		return g, last
	}
	result := &ConsolidationResult{DeepChainSteps: chainSteps}
	{
		ex := dag.NewExecutor(reg, makeCtx())
		g, last := figGraph()
		if _, err := ex.Run(g, last); err != nil {
			return nil, err
		}
		result.Figure4Blocks = ex.Stats().QueryBlocks
		naive := dag.NewExecutor(reg, makeCtx())
		naive.Consolidate = false
		naive.Fuse = false
		g2, last2 := figGraph()
		if _, err := naive.Run(g2, last2); err != nil {
			return nil, err
		}
		// Naive task count stands in for its block count (one block per
		// direct task).
		result.Figure4NaiveBlocks = naive.Stats().TasksRun
	}

	// Deep projection chain, timed.
	chain := func() (*dag.Graph, dag.NodeID) {
		g := dag.NewGraph()
		prev := "collisions"
		var last dag.NodeID
		for step := 0; step < chainSteps; step++ {
			cols := []string{"id"}
			for c := 0; c < chainSteps-step; c++ {
				cols = append(cols, fmt.Sprintf("c%d", c))
			}
			out := fmt.Sprintf("p%d", step)
			last = g.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{prev},
				Args: skills.Args{"columns": cols}, Output: out})
			prev = out
		}
		return g, last
	}
	var consolidated, naive *dataset.Table
	ctxA, ctxB := makeCtx(), makeCtx() // fixtures built outside the timers
	result.ConsolidatedDuration = medianDuration(trials, func() error {
		ex := dag.NewExecutor(reg, ctxA)
		ex.UseCache = false
		g, last := chain()
		res, err := ex.Run(g, last)
		if err == nil {
			consolidated = res.Table
		}
		return err
	})
	result.NaiveDuration = medianDuration(trials, func() error {
		ex := dag.NewExecutor(reg, ctxB)
		ex.UseCache = false
		ex.Consolidate = false
		// The chain is adjacent same-skill projections; the naive baseline
		// must execute them one step at a time, not as one fused step.
		ex.Fuse = false
		g, last := chain()
		res, err := ex.Run(g, last)
		if err == nil {
			naive = res.Table
		}
		return err
	})
	result.SameResult = consolidated != nil && naive != nil &&
		consolidated.Equal(naive.WithName(consolidated.Name()))
	return result, nil
}

func medianDuration(trials int, fn func() error) time.Duration {
	if trials <= 0 {
		trials = 3
	}
	durations := make([]time.Duration, 0, trials)
	for i := 0; i < trials; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0
		}
		durations = append(durations, time.Since(start))
	}
	sort.Slice(durations, func(a, b int) bool { return durations[a] < durations[b] })
	return durations[len(durations)/2]
}

// Report renders the consolidation experiment.
func (r *ConsolidationResult) Report() string {
	var b strings.Builder
	b.WriteString("Figure 4 / §2.2 — consolidation\n")
	fmt.Fprintf(&b, "  Load→Filter→Limit blocks: consolidated=%d naive=%d\n",
		r.Figure4Blocks, r.Figure4NaiveBlocks)
	fmt.Fprintf(&b, "  %d-step projection chain: consolidated=%v naive=%v (same result: %v)\n",
		r.DeepChainSteps, r.ConsolidatedDuration, r.NaiveDuration, r.SameResult)
	return b.String()
}

// ---- Figure 5 slicing ----

// SlicingResult captures the slicing experiment.
type SlicingResult struct {
	Before, After  int
	Pruned, Merged int
	Linear         bool
	SameResult     bool
}

// Slicing builds a branchy exploratory session of the given size and slices
// it down to one artifact's recipe.
func Slicing(deadBranches int) (*SlicingResult, error) {
	reg := skills.NewRegistry()
	ctx := skills.NewContext()
	n := 2000
	ids := make([]int64, n)
	vals := make([]float64, n)
	cats := make([]string, n)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = float64(i % 97)
		cats[i] = string(rune('a' + i%5))
	}
	ctx.Datasets["base"] = dataset.MustNewTable("base",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("v", vals, nil),
		dataset.StringColumn("cat", cats, nil))

	g := dag.NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 5"}, Output: "s1"})
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"s1"},
		Args: skills.Args{"condition": "v < 90"}, Output: "s2"})
	target := g.Add(skills.Invocation{Skill: "Compute", Inputs: []string{"s2"},
		Args:   skills.Args{"aggregates": []string{"count of records as n"}, "for_each": []string{"cat"}},
		Output: "chart_data"})
	for i := 0; i < deadBranches; i++ {
		src := "base"
		if i%2 == 0 {
			src = "s1"
		}
		g.Add(skills.Invocation{Skill: "TopValues", Inputs: []string{src},
			Args: skills.Args{"column": "cat"}, Output: fmt.Sprintf("dead%d", i)})
	}
	sliced, report, err := dag.Slice(g, target)
	if err != nil {
		return nil, err
	}
	result := &SlicingResult{
		Before: report.NodesBefore, After: report.NodesAfter,
		Pruned: report.Pruned, Merged: report.Merged,
		Linear: dag.IsLinear(sliced),
	}
	full, err := dag.NewExecutor(reg, ctx).Run(g, target)
	if err != nil {
		return nil, err
	}
	slim, err := dag.NewExecutor(reg, ctx).Run(sliced, sliced.Last())
	if err != nil {
		return nil, err
	}
	result.SameResult = full.Table.Equal(slim.Table.WithName(full.Table.Name()))
	return result, nil
}

// Report renders the slicing experiment.
func (r *SlicingResult) Report() string {
	return fmt.Sprintf("Figure 5 — slicing: %d nodes → %d (pruned %d, merged %d), linear=%v, result preserved=%v\n",
		r.Before, r.After, r.Pruned, r.Merged, r.Linear, r.SameResult)
}

// ---- Ablations ----

// AblationResult compares a configuration against the default on the
// high-misalignment zones (where the ablated component should matter).
type AblationResult struct {
	Name            string
	DefaultAccuracy float64
	AblatedAccuracy float64
	Samples         int
}

// AblateSemanticLayer measures accuracy on high-M spider examples with the
// semantic layer in prompts vs removed (§4.2's claim).
func (s *Suite) AblateSemanticLayer(perZone int, seed int64) (*AblationResult, error) {
	examples := s.highMSample(perZone, seed)
	base, err := s.accuracyWith(examples, func(sys *nl2code.System) {})
	if err != nil {
		return nil, err
	}
	ablated, err := s.accuracyWith(examples, func(sys *nl2code.System) {
		sys.Composer.DisableSemantic = true
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Name: "semantic layer", DefaultAccuracy: base,
		AblatedAccuracy: ablated, Samples: len(examples)}, nil
}

// AblateRetrieval compares similarity+diversity retrieval against random
// example selection (§4.3).
func (s *Suite) AblateRetrieval(perZone int, seed int64) (*AblationResult, error) {
	examples := s.zoneSample(perZone, seed, nil)
	base, err := s.accuracyWith(examples, func(sys *nl2code.System) {})
	if err != nil {
		return nil, err
	}
	ablated, err := s.accuracyWith(examples, func(sys *nl2code.System) {
		sys.Composer.Mode = nl2code.Random
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Name: "example retrieval", DefaultAccuracy: base,
		AblatedAccuracy: ablated, Samples: len(examples)}, nil
}

// AblateChecker measures the program checker's contribution (§4.5).
func (s *Suite) AblateChecker(perZone int, seed int64) (*AblationResult, error) {
	examples := s.zoneSample(perZone, seed, nil)
	base, err := s.accuracyWith(examples, func(sys *nl2code.System) {})
	if err != nil {
		return nil, err
	}
	ablated, err := s.accuracyWith(examples, func(sys *nl2code.System) {
		sys.DisableChecker = true
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Name: "program checker", DefaultAccuracy: base,
		AblatedAccuracy: ablated, Samples: len(examples)}, nil
}

func (s *Suite) highMSample(perZone int, seed int64) []*spider.Example {
	keep := map[spider.Zone]bool{spider.HighLow: true, spider.HighHigh: true}
	return s.zoneSample(perZone, seed, keep)
}

func (s *Suite) zoneSample(perZone int, seed int64, keep map[spider.Zone]bool) []*spider.Example {
	dev := spider.GenerateDev(s.Domains, seed)
	taken := map[spider.Zone]int{}
	var out []*spider.Example
	for _, ex := range dev {
		zone := s.MeasuredZone(ex)
		if keep != nil && !keep[zone] {
			continue
		}
		if taken[zone] >= perZone {
			continue
		}
		taken[zone]++
		out = append(out, ex)
	}
	return out
}

// accuracyWith evaluates examples under a modified copy of the system.
func (s *Suite) accuracyWith(examples []*spider.Example, mutate func(*nl2code.System)) (float64, error) {
	sys := nl2code.NewSystem(s.Registry, s.Library)
	mutate(sys)
	correct, total := 0, 0
	for _, ex := range examples {
		d := s.byDomain[ex.Domain]
		ea := 0
		resp, err := sys.Generate(nl2code.Request{Question: ex.Question, Tables: d.Tables, Layer: d.Layer})
		if err == nil {
			ea, err = nl2code.ExecutionAccuracy(s.Registry, d.Tables, ex.Gold, resp.Program)
			if err != nil {
				return 0, err
			}
		}
		correct += ea
		total++
	}
	if total == 0 {
		return 0, nil
	}
	return float64(correct) / float64(total), nil
}

// Report renders an ablation.
func (r *AblationResult) Report() string {
	return fmt.Sprintf("ablation %-18s: default %.2f vs ablated %.2f over %d samples\n",
		r.Name, r.DefaultAccuracy, r.AblatedAccuracy, r.Samples)
}

// AblatePromptBudget measures the §4.4 token-limit effect: shrinking the
// prompt budget squeezes out the semantic hints and examples that high-M
// questions depend on.
func (s *Suite) AblatePromptBudget(perZone int, seed int64, smallBudget int) (*AblationResult, error) {
	examples := s.highMSample(perZone, seed)
	base, err := s.accuracyWith(examples, func(sys *nl2code.System) {})
	if err != nil {
		return nil, err
	}
	ablated, err := s.accuracyWith(examples, func(sys *nl2code.System) {
		sys.Composer.Budget = smallBudget
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Name: "prompt token budget", DefaultAccuracy: base,
		AblatedAccuracy: ablated, Samples: len(examples)}, nil
}
