package client

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"datachat/internal/wire"
)

// fakeBoardServer serves a canned NDJSON subscribe stream.
func fakeBoardServer(t *testing.T, lines ...string) *Client {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/subscribe") {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, line := range lines {
			fmt.Fprintln(w, line)
		}
	}))
	t.Cleanup(hs.Close)
	return New(hs.URL)
}

// TestSubscribeBoardTruncationIsAnError: a subscribe stream that ends
// without the terminal sentinel is a broken connection, not a short feed —
// the client must say so instead of returning success. This rides the same
// consumeStream machinery as run streams, so the sentinel contract holds
// everywhere.
func TestSubscribeBoardTruncationIsAnError(t *testing.T) {
	c := fakeBoardServer(t,
		`{"name":"board:ops","next_offset":-1}`,
		`{"offset":0,"board":{"board":"ops","tile":"hot","version":1,"at":"2026-01-01T00:00:00Z"}}`,
		// ...and the connection drops: no Last chunk.
	)
	n, err := c.SubscribeBoard(context.Background(), "ops", SubscribeOptions{}, nil)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated stream returned err=%v (delivered %d); want a truncation error", err, n)
	}
}

// TestSubscribeBoardDeliversAndStops: a complete stream delivers each update
// to fn in order and returns the delivered count.
func TestSubscribeBoardDeliversAndStops(t *testing.T) {
	c := fakeBoardServer(t,
		`{"name":"board:ops","next_offset":-1}`,
		`{"offset":0,"board":{"board":"ops","tile":"hot","version":1,"at":"2026-01-01T00:00:00Z"}}`,
		`{"offset":1,"board":{"board":"ops","tile":"hot","version":2,"at":"2026-01-01T00:01:00Z","degraded":true,"degraded_note":"sampled"}}`,
		`{"offset":2,"last":true,"total_rows":2}`,
	)
	var got []uint64
	degraded := false
	n, err := c.SubscribeBoard(context.Background(), "ops", SubscribeOptions{}, func(ev *wire.BoardEvent) error {
		got = append(got, ev.Version)
		degraded = degraded || ev.Degraded
		return nil
	})
	if err != nil || n != 2 {
		t.Fatalf("SubscribeBoard = (%d, %v)", n, err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 || !degraded {
		t.Fatalf("delivered versions %v degraded=%v", got, degraded)
	}
}

// TestSubscribeBoardTypedSentinelErrors: server-side endings (eviction,
// drain) arrive through the sentinel as typed wire errors.
func TestSubscribeBoardTypedSentinelErrors(t *testing.T) {
	c := fakeBoardServer(t,
		`{"name":"board:ops","next_offset":-1}`,
		`{"offset":0,"last":true,"total_rows":0,"error":{"code":"draining","message":"shutting down"}}`,
	)
	_, err := c.SubscribeBoard(context.Background(), "ops", SubscribeOptions{}, nil)
	if !IsDraining(err) {
		t.Fatalf("sentinel error = %v; want draining", err)
	}
}

// TestSubscribeBoardRejectsChunkWithoutUpdate: a data chunk with no board
// payload violates the protocol.
func TestSubscribeBoardRejectsChunkWithoutUpdate(t *testing.T) {
	c := fakeBoardServer(t,
		`{"name":"board:ops","next_offset":-1}`,
		`{"offset":0,"rows":[[1]]}`,
		`{"offset":1,"last":true,"total_rows":1}`,
	)
	_, err := c.SubscribeBoard(context.Background(), "ops", SubscribeOptions{}, nil)
	if err == nil || !strings.Contains(err.Error(), "no update") {
		t.Fatalf("protocol violation returned %v", err)
	}
}
