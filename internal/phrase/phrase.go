// Package phrase implements §4.8's phrase-based translation: the
// deterministic, semantic-layer-driven path for structured requests. The
// Visualize syntax is
//
//	Visualize <KPI> [by <grouping phrase>] [where <filter phrase>]
//
// where the KPI, groupings, and filters are either column names or phrases
// defined in the semantic layer. Unlike the LLM path, a phrase either
// matches deterministically or the translation fails loudly — which is why
// the paper calls this route more accurate for structured questions.
package phrase

import (
	"fmt"
	"strings"

	"datachat/internal/dataset"
	"datachat/internal/semantic"
	"datachat/internal/skills"
)

// Translator resolves Visualize phrases against a table schema and a
// semantic layer.
type Translator struct {
	// Layer supplies phrase definitions (may be nil: schema-only matching).
	Layer *semantic.Layer
}

// Translation is the deterministic parse result.
type Translation struct {
	// Invocation is the Visualize skill request.
	Invocation skills.Invocation
	// Resolved traces each phrase → column/predicate binding.
	Resolved []string
}

// Translate parses a Visualize sentence against the target table.
func (tr *Translator) Translate(input string, table *dataset.Table) (*Translation, error) {
	text := strings.TrimSpace(input)
	lower := strings.ToLower(text)
	if !strings.HasPrefix(lower, "visualize ") {
		return nil, fmt.Errorf("phrase: expected a sentence starting with \"Visualize\"")
	}
	body := text[len("Visualize "):]

	// Split off the filter phrase, then the grouping phrase.
	filterPart := ""
	if i := indexWordFold(body, "where"); i >= 0 {
		filterPart = strings.TrimSpace(body[i+len("where"):])
		body = strings.TrimSpace(body[:i])
	}
	groupPart := ""
	if i := indexWordFold(body, "by"); i >= 0 {
		groupPart = strings.TrimSpace(body[i+len("by"):])
		body = strings.TrimSpace(body[:i])
	}
	kpiPhrase := strings.TrimSpace(body)
	if kpiPhrase == "" {
		return nil, fmt.Errorf("phrase: Visualize needs a KPI")
	}

	t := &Translation{Invocation: skills.Invocation{Skill: "Visualize", Args: skills.Args{}}}
	kpi, how, err := tr.resolveColumn(kpiPhrase, table)
	if err != nil {
		return nil, fmt.Errorf("phrase: KPI %q: %w", kpiPhrase, err)
	}
	t.Invocation.Args["kpi"] = kpi
	t.Resolved = append(t.Resolved, fmt.Sprintf("KPI %q → %s (%s)", kpiPhrase, kpi, how))

	if groupPart != "" {
		var groups []string
		for _, phrase := range splitList(groupPart) {
			col, how, err := tr.resolveColumn(phrase, table)
			if err != nil {
				return nil, fmt.Errorf("phrase: grouping %q: %w", phrase, err)
			}
			groups = append(groups, col)
			t.Resolved = append(t.Resolved, fmt.Sprintf("grouping %q → %s (%s)", phrase, col, how))
		}
		t.Invocation.Args["by"] = groups
	}
	if filterPart != "" {
		pred, err := tr.resolveFilter(filterPart, table, t)
		if err != nil {
			return nil, err
		}
		t.Invocation.Args["filter"] = pred
	}
	return t, nil
}

// resolveColumn maps a phrase to a column: exact schema match first, then
// semantic dimension/synonym concepts.
func (tr *Translator) resolveColumn(phraseText string, table *dataset.Table) (col, how string, err error) {
	phraseText = strings.TrimSpace(strings.Trim(phraseText, `'"`))
	if table.HasColumn(phraseText) {
		c, _ := table.Column(phraseText)
		return c.Name(), "schema", nil
	}
	if tr.Layer != nil {
		if concept, ok := tr.Layer.Lookup(phraseText); ok &&
			(concept.Kind == semantic.Synonym || concept.Kind == semantic.Dimension || concept.Kind == semantic.Metric) {
			if table.HasColumn(concept.Expansion) {
				c, _ := table.Column(concept.Expansion)
				return c.Name(), "semantic layer", nil
			}
			return "", "", fmt.Errorf("defined as %q, which is not a column of %s", concept.Expansion, table.Name())
		}
	}
	return "", "", fmt.Errorf("not a column of %s and not defined in the semantic layer", table.Name())
}

// resolveFilter maps filter phrases (combined with and/or) to a predicate.
// Each conjunct is either a semantic Filter concept or a raw predicate
// mentioning real columns.
func (tr *Translator) resolveFilter(filterPart string, table *dataset.Table, t *Translation) (string, error) {
	type piece struct {
		text string
		op   string // connective before this piece ("", "AND", "OR")
	}
	var pieces []piece
	words := strings.Fields(filterPart)
	cur := []string{}
	currentOp := ""
	flush := func(nextOp string) {
		if len(cur) > 0 {
			pieces = append(pieces, piece{text: strings.Join(cur, " "), op: currentOp})
			cur = nil
		}
		currentOp = nextOp
	}
	for _, w := range words {
		switch strings.ToLower(w) {
		case "and":
			flush("AND")
		case "or":
			flush("OR")
		default:
			cur = append(cur, w)
		}
	}
	flush("")
	if len(pieces) == 0 {
		return "", fmt.Errorf("phrase: empty filter")
	}
	var b strings.Builder
	for i, p := range pieces {
		pred, how, err := tr.resolveOnePredicate(p.text, table)
		if err != nil {
			return "", fmt.Errorf("phrase: filter %q: %w", p.text, err)
		}
		t.Resolved = append(t.Resolved, fmt.Sprintf("filter %q → %s (%s)", p.text, pred, how))
		if i > 0 {
			b.WriteString(" " + p.op + " ")
		}
		b.WriteString("(" + pred + ")")
	}
	return b.String(), nil
}

func (tr *Translator) resolveOnePredicate(text string, table *dataset.Table) (pred, how string, err error) {
	if tr.Layer != nil {
		if concept, ok := tr.Layer.Lookup(text); ok && concept.Kind == semantic.Filter {
			return concept.Expansion, "semantic layer", nil
		}
	}
	// Raw predicate: "col = value", "col > 3", "col is value".
	fields := strings.Fields(text)
	if len(fields) >= 3 && table.HasColumn(fields[0]) {
		col, _ := table.Column(fields[0])
		op := fields[1]
		value := strings.Join(fields[2:], " ")
		switch op {
		case "=", "!=", "<>", ">", ">=", "<", "<=":
		case "is":
			op = "="
		default:
			return "", "", fmt.Errorf("unsupported operator %q", op)
		}
		if dataset.ParseValue(value).Type == dataset.TypeString {
			value = "'" + strings.Trim(value, `'"`) + "'"
		}
		return fmt.Sprintf("%s %s %s", col.Name(), op, value), "predicate", nil
	}
	return "", "", fmt.Errorf("not a defined phrase and not a recognizable predicate")
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		for _, sub := range strings.Split(part, " and ") {
			sub = strings.TrimSpace(sub)
			if sub != "" {
				out = append(out, sub)
			}
		}
	}
	return out
}

// indexWordFold finds the standalone word (case-insensitive) in s,
// returning its byte offset or -1.
func indexWordFold(s, word string) int {
	lower := strings.ToLower(s)
	word = strings.ToLower(word)
	for start := 0; ; {
		i := strings.Index(lower[start:], word)
		if i < 0 {
			return -1
		}
		i += start
		beforeOK := i == 0 || lower[i-1] == ' '
		after := i + len(word)
		afterOK := after == len(lower) || lower[after] == ' '
		if beforeOK && afterOK {
			return i
		}
		start = i + len(word)
	}
}
