// Package dataset provides the columnar table substrate that every other
// DataChat subsystem builds on: typed columns with null masks, tables with
// schema operations, and a CSV codec with type inference.
//
// The design mirrors the spreadsheet-without-limits model from the paper's
// §1: a Table is an immutable-by-convention collection of equal-length typed
// columns, cheap to project and slice, and safe to share across sessions.
package dataset

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type identifies the logical type of a column or value.
type Type int

// The supported logical types. TypeNull is used for untyped all-null columns
// and for the null Value.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeString
	TypeBool
	TypeTime
)

// String returns the lower-case name of the type as used in schemas and GEL.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "null"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeString:
		return "string"
	case TypeBool:
		return "bool"
	case TypeTime:
		return "time"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Numeric reports whether the type supports arithmetic.
func (t Type) Numeric() bool { return t == TypeInt || t == TypeFloat }

// TimeLayout is the canonical wire format for time values in CSV and GEL.
const TimeLayout = "2006-01-02"

// TimeLayoutFull is accepted on input for timestamp-resolution values.
const TimeLayoutFull = "2006-01-02 15:04:05"

// Value is a dynamically typed scalar: the unit of data exchanged between
// rows, expressions, and skills. The zero Value is null.
type Value struct {
	Type Type
	I    int64
	F    float64
	S    string
	B    bool
	T    time.Time
}

// Null is the null value.
var Null = Value{}

// Int returns an int value.
func Int(v int64) Value { return Value{Type: TypeInt, I: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{Type: TypeFloat, F: v} }

// Str returns a string value.
func Str(v string) Value { return Value{Type: TypeString, S: v} }

// Bool returns a bool value.
func Bool(v bool) Value { return Value{Type: TypeBool, B: v} }

// Time returns a time value.
func Time(v time.Time) Value { return Value{Type: TypeTime, T: v} }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.Type == TypeNull }

// AsFloat converts a numeric or bool value to float64. Returns false for
// null, string, and time values.
func (v Value) AsFloat() (float64, bool) {
	switch v.Type {
	case TypeInt:
		return float64(v.I), true
	case TypeFloat:
		return v.F, true
	case TypeBool:
		if v.B {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// AsInt converts a numeric value to int64, truncating floats.
func (v Value) AsInt() (int64, bool) {
	switch v.Type {
	case TypeInt:
		return v.I, true
	case TypeFloat:
		return int64(v.F), true
	case TypeBool:
		if v.B {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// String renders the value the way DataChat prints cells: nulls as "null",
// floats with minimal digits, times with the canonical layout.
func (v Value) String() string {
	switch v.Type {
	case TypeNull:
		return "null"
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		if math.IsNaN(v.F) {
			return "NaN"
		}
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeString:
		return v.S
	case TypeBool:
		return strconv.FormatBool(v.B)
	case TypeTime:
		if v.T.Hour() == 0 && v.T.Minute() == 0 && v.T.Second() == 0 {
			return v.T.Format(TimeLayout)
		}
		return v.T.Format(TimeLayoutFull)
	default:
		return "?"
	}
}

// Compare orders two values. Nulls sort before everything; values of
// different non-null types are coerced numerically when possible and
// otherwise ordered by their string rendering. It returns -1, 0, or 1.
func Compare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if a.Type == b.Type {
		switch a.Type {
		case TypeInt:
			return cmpInt(a.I, b.I)
		case TypeFloat:
			return cmpFloat(a.F, b.F)
		case TypeString:
			return strings.Compare(a.S, b.S)
		case TypeBool:
			return cmpInt(b2i(a.B), b2i(b.B))
		case TypeTime:
			switch {
			case a.T.Before(b.T):
				return -1
			case a.T.After(b.T):
				return 1
			default:
				return 0
			}
		}
	}
	if af, ok := a.AsFloat(); ok {
		if bf, ok2 := b.AsFloat(); ok2 {
			return cmpFloat(af, bf)
		}
	}
	return strings.Compare(a.String(), b.String())
}

// Equal reports whether two values compare equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ParseValue parses a string into the most specific Value it can represent:
// empty and "null" parse as null, then bool, int, float, date, and finally
// string. This drives CSV type inference and GEL literal parsing.
func ParseValue(s string) Value {
	trimmed := strings.TrimSpace(s)
	if trimmed == "" || strings.EqualFold(trimmed, "null") || strings.EqualFold(trimmed, "nan") {
		return Null
	}
	switch strings.ToLower(trimmed) {
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	}
	if i, err := strconv.ParseInt(trimmed, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(trimmed, 64); err == nil {
		return Float(f)
	}
	if t, err := ParseTime(trimmed); err == nil {
		return Time(t)
	}
	return Str(s)
}

// ParseTime parses the date formats DataChat accepts: 2006-01-02,
// 2006-01-02 15:04:05, 01-02-2006, and 01/02/2006.
func ParseTime(s string) (time.Time, error) {
	for _, layout := range []string{TimeLayout, TimeLayoutFull, "01-02-2006", "01/02/2006", time.RFC3339} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("dataset: cannot parse %q as a date", s)
}

// Coerce converts v to the target type when a lossless or conventional
// conversion exists (int↔float, anything→string, string→parsed). It returns
// false when no sensible conversion exists.
func Coerce(v Value, t Type) (Value, bool) {
	if v.IsNull() {
		return Null, true
	}
	if v.Type == t {
		return v, true
	}
	switch t {
	case TypeFloat:
		if f, ok := v.AsFloat(); ok {
			return Float(f), true
		}
	case TypeInt:
		if v.Type == TypeFloat && v.F == math.Trunc(v.F) {
			return Int(int64(v.F)), true
		}
		if i, ok := v.AsInt(); ok && v.Type != TypeFloat {
			return Int(i), true
		}
	case TypeString:
		return Str(v.String()), true
	case TypeBool:
		if v.Type == TypeInt {
			return Bool(v.I != 0), true
		}
	case TypeTime:
		if v.Type == TypeString {
			if tm, err := ParseTime(v.S); err == nil {
				return Time(tm), true
			}
		}
	}
	return Null, false
}

// CommonType returns the narrowest type that can represent both inputs:
// equal types stay, int+float widens to float, null defers to the other,
// and anything else falls back to string.
func CommonType(a, b Type) Type {
	if a == b {
		return a
	}
	if a == TypeNull {
		return b
	}
	if b == TypeNull {
		return a
	}
	if a.Numeric() && b.Numeric() {
		return TypeFloat
	}
	return TypeString
}
