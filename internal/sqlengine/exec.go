package sqlengine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"datachat/internal/dataset"
	"datachat/internal/expr"
)

// Catalog resolves base table names during execution.
type Catalog interface {
	// Table returns the named table.
	Table(name string) (*dataset.Table, error)
}

// MapCatalog is an in-memory Catalog. Lookups hit an exact-name index and
// then a case-folded one, both built once at construction, so resolving a
// table name never scans the table set.
type MapCatalog struct {
	exact  map[string]*dataset.Table
	folded map[string]*dataset.Table
}

// NewMapCatalog indexes tables by exact and case-folded name. When two
// names collide case-insensitively, the lexicographically smallest name
// wins the folded slot (the previous linear scan's winner depended on map
// iteration order).
func NewMapCatalog(tables map[string]*dataset.Table) MapCatalog {
	m := MapCatalog{
		exact:  make(map[string]*dataset.Table, len(tables)),
		folded: make(map[string]*dataset.Table, len(tables)),
	}
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m.exact[name] = tables[name]
		folded := strings.ToLower(name)
		if _, taken := m.folded[folded]; !taken {
			m.folded[folded] = tables[name]
		}
	}
	return m
}

// Table implements Catalog.
func (m MapCatalog) Table(name string) (*dataset.Table, error) {
	if t, ok := m.exact[name]; ok {
		return t, nil
	}
	if t, ok := m.folded[strings.ToLower(name)]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("sql: unknown table %q", name)
}

// Options tunes statement execution.
type Options struct {
	// DisableVectorized forces the row-at-a-time reference path everywhere.
	// The vectorized engine is on by default; the differential tests run a
	// query both ways and require identical results.
	DisableVectorized bool
}

// Exec parses and executes a SQL query against the catalog.
func Exec(catalog Catalog, query string) (*dataset.Table, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecStmt(catalog, stmt)
}

// ExecStmt executes a parsed statement against the catalog.
func ExecStmt(catalog Catalog, stmt *SelectStmt) (*dataset.Table, error) {
	return ExecStmtOptions(catalog, stmt, Options{})
}

// ExecStmtOptions executes a parsed statement with explicit options.
func ExecStmtOptions(catalog Catalog, stmt *SelectStmt, opts Options) (*dataset.Table, error) {
	e := &executor{catalog: catalog, vec: !opts.DisableVectorized}
	return e.execSelect(stmt)
}

// rel is the executor's working relation: columns with source qualifiers,
// allowing duplicate bare names across join sides.
type rel struct {
	cols  []*dataset.Column
	quals []string // alias of the relation each column came from
}

func (r *rel) numRows() int {
	if len(r.cols) == 0 {
		return 0
	}
	return r.cols[0].Len()
}

// lookup resolves a possibly-qualified column name to its index.
func (r *rel) lookup(name string) (int, error) {
	if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
		qual, col := name[:dot], name[dot+1:]
		for i, c := range r.cols {
			if strings.EqualFold(r.quals[i], qual) && strings.EqualFold(c.Name(), col) {
				return i, nil
			}
		}
		return -1, fmt.Errorf("sql: unknown column %q", name)
	}
	found := -1
	for i, c := range r.cols {
		if strings.EqualFold(c.Name(), name) {
			if found >= 0 {
				return -1, fmt.Errorf("sql: ambiguous column %q", name)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("sql: unknown column %q", name)
	}
	return found, nil
}

// rowEnv evaluates expressions against one row of a rel.
type rowEnv struct {
	r   *rel
	row int
}

// Lookup implements expr.Env.
func (e rowEnv) Lookup(name string) (dataset.Value, error) {
	i, err := e.r.lookup(name)
	if err != nil {
		return dataset.Null, err
	}
	return e.r.cols[i].Value(e.row), nil
}

// chainEnv consults envs in order, returning the first successful lookup.
type chainEnv []expr.Env

// Lookup implements expr.Env.
func (c chainEnv) Lookup(name string) (dataset.Value, error) {
	var lastErr error
	for _, env := range c {
		v, err := env.Lookup(name)
		if err == nil {
			return v, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("sql: unknown column %q", name)
	}
	return dataset.Null, lastErr
}

type executor struct {
	catalog Catalog
	vec     bool // use vectorized kernels where they apply
}

func (e *executor) execSelect(stmt *SelectStmt) (*dataset.Table, error) {
	var source *rel
	if stmt.From != nil {
		r, err := e.execRef(stmt.From)
		if err != nil {
			return nil, err
		}
		source = r
	} else {
		source = &rel{} // SELECT without FROM evaluates items once
	}

	aggs := e.collectAllAggs(stmt)
	grouped := len(stmt.GroupBy) > 0 || len(aggs) > 0

	// LIMIT push-down: without grouping, ordering, or DISTINCT, only the
	// first offset+limit surviving rows matter — stop the scan there. This
	// is what makes the consolidated flat query of §2.2 cheap.
	rowBudget := -1
	if !grouped && len(stmt.OrderBy) == 0 && !stmt.Distinct && stmt.Limit >= 0 {
		rowBudget = stmt.Offset + stmt.Limit
	}

	// WHERE
	if stmt.Where != nil && stmt.From != nil {
		keep, vectorized, err := e.vecFilter(stmt.Where, source, rowBudget)
		if err != nil {
			return nil, err
		}
		if !vectorized {
			keep = make([]int, 0, source.numRows())
			for i := 0; i < source.numRows(); i++ {
				ok, err := expr.EvalBool(stmt.Where, rowEnv{source, i})
				if err != nil {
					return nil, err
				}
				if ok {
					keep = append(keep, i)
					if rowBudget >= 0 && len(keep) >= rowBudget {
						break
					}
				}
			}
		}
		source = takeRel(source, keep)
	} else if rowBudget >= 0 && stmt.From != nil && source.numRows() > rowBudget {
		keep := make([]int, rowBudget)
		for i := range keep {
			keep[i] = i
		}
		source = takeRel(source, keep)
	}

	var out *dataset.Table
	var err error
	if grouped {
		out, err = e.execGrouped(stmt, source, aggs)
	} else {
		out, err = e.execProjection(stmt, source)
	}
	if err != nil {
		return nil, err
	}

	if stmt.Distinct {
		out, err = out.Distinct()
		if err != nil {
			return nil, err
		}
	}
	if stmt.Offset > 0 || stmt.Limit >= 0 {
		from := stmt.Offset
		to := out.NumRows()
		if stmt.Limit >= 0 && from+stmt.Limit < to {
			to = from + stmt.Limit
		}
		out = out.Slice(from, to)
	}
	return out, nil
}

func (e *executor) collectAllAggs(stmt *SelectStmt) []*AggCall {
	var aggs []*AggCall
	for _, item := range stmt.Items {
		if !item.Star {
			aggs = collectAggs(item.Expr, aggs)
		}
	}
	aggs = collectAggs(stmt.Having, aggs)
	for _, o := range stmt.OrderBy {
		aggs = collectAggs(o.Expr, aggs)
	}
	// Dedupe by key so each aggregate computes once per group.
	seen := make(map[string]bool, len(aggs))
	uniq := aggs[:0]
	for _, a := range aggs {
		if !seen[a.Key()] {
			seen[a.Key()] = true
			uniq = append(uniq, a)
		}
	}
	return uniq
}

// execRef evaluates a FROM-clause relation.
func (e *executor) execRef(ref TableRef) (*rel, error) {
	switch r := ref.(type) {
	case *BaseTable:
		t, err := e.catalog.Table(r.Name)
		if err != nil {
			return nil, err
		}
		return tableToRel(t, r.Alias), nil
	case *Subquery:
		t, err := e.execSelect(r.Stmt)
		if err != nil {
			return nil, err
		}
		alias := r.Alias
		if alias == "" {
			alias = "subquery"
		}
		return tableToRel(t, alias), nil
	case *Join:
		return e.execJoin(r)
	default:
		return nil, fmt.Errorf("sql: unsupported table reference %T", ref)
	}
}

func tableToRel(t *dataset.Table, alias string) *rel {
	cols := t.Columns()
	r := &rel{cols: make([]*dataset.Column, len(cols)), quals: make([]string, len(cols))}
	for i, c := range cols {
		r.cols[i] = c
		r.quals[i] = alias
	}
	return r
}

func takeRel(r *rel, idx []int) *rel {
	out := &rel{cols: make([]*dataset.Column, len(r.cols)), quals: r.quals}
	for i, c := range r.cols {
		out.cols[i] = c.Take(idx)
	}
	return out
}

// execJoin evaluates a join, using a hash join on equi-conditions between
// the two sides when possible and a nested loop otherwise.
func (e *executor) execJoin(j *Join) (*rel, error) {
	left, err := e.execRef(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := e.execRef(j.Right)
	if err != nil {
		return nil, err
	}
	combined := &rel{
		cols:  append(append([]*dataset.Column{}, left.cols...), right.cols...),
		quals: append(append([]string{}, left.quals...), right.quals...),
	}

	var leftIdx, rightIdx []int
	var matchedLeft []bool
	if j.Kind == LeftJoin {
		matchedLeft = make([]bool, left.numRows())
	}

	leftKeys, rightKeys := equiJoinKeys(j.On, left, right)
	switch {
	case e.vec && len(leftKeys) > 0:
		leftIdx, rightIdx, err = e.vecJoinPairs(j.On, combined, left, right, leftKeys, rightKeys, matchedLeft)
		if err != nil {
			return nil, err
		}
	case len(leftKeys) > 0:
		// Hash join: build on the right side.
		build := make(map[string][]int, right.numRows())
		for i := 0; i < right.numRows(); i++ {
			build[joinKey(right, rightKeys, i)] = append(build[joinKey(right, rightKeys, i)], i)
		}
		for li := 0; li < left.numRows(); li++ {
			for _, ri := range build[joinKey(left, leftKeys, li)] {
				ok, err := e.joinResidual(j.On, combined, left, li, right, ri)
				if err != nil {
					return nil, err
				}
				if ok {
					leftIdx = append(leftIdx, li)
					rightIdx = append(rightIdx, ri)
					if matchedLeft != nil {
						matchedLeft[li] = true
					}
				}
			}
		}
	default:
		for li := 0; li < left.numRows(); li++ {
			for ri := 0; ri < right.numRows(); ri++ {
				ok := true
				if j.On != nil {
					ok, err = e.joinResidual(j.On, combined, left, li, right, ri)
					if err != nil {
						return nil, err
					}
				}
				if ok {
					leftIdx = append(leftIdx, li)
					rightIdx = append(rightIdx, ri)
					if matchedLeft != nil {
						matchedLeft[li] = true
					}
				}
			}
		}
	}

	if matchedLeft != nil {
		for li, m := range matchedLeft {
			if !m {
				leftIdx = append(leftIdx, li)
				rightIdx = append(rightIdx, -1)
			}
		}
	}
	out := &rel{cols: make([]*dataset.Column, len(combined.cols)), quals: combined.quals}
	for ci := range combined.cols {
		var src *dataset.Column
		var idx []int
		if ci < len(left.cols) {
			src, idx = left.cols[ci], leftIdx
		} else {
			src, idx = right.cols[ci-len(left.cols)], rightIdx
		}
		if e.vec {
			// Typed gather; a negative index becomes the null-extension row.
			out.cols[ci] = src.Take(idx)
			continue
		}
		col := dataset.NewColumn(src.Name(), src.Type())
		for _, i := range idx {
			if i < 0 {
				col.Append(dataset.Null)
			} else {
				col.Append(src.Value(i))
			}
		}
		out.cols[ci] = col
	}
	return out, nil
}

// joinEnv resolves names against a (left row, right row) pair.
type joinEnv struct {
	left     *rel
	leftRow  int
	right    *rel
	rightRow int
	combined *rel
}

// Lookup implements expr.Env.
func (e joinEnv) Lookup(name string) (dataset.Value, error) {
	i, err := e.combined.lookup(name)
	if err != nil {
		return dataset.Null, err
	}
	if i < len(e.left.cols) {
		return e.left.cols[i].Value(e.leftRow), nil
	}
	return e.right.cols[i-len(e.left.cols)].Value(e.rightRow), nil
}

func (e *executor) joinResidual(on expr.Expr, combined, left *rel, li int, right *rel, ri int) (bool, error) {
	if on == nil {
		return true, nil
	}
	return expr.EvalBool(on, joinEnv{left: left, leftRow: li, right: right, rightRow: ri, combined: combined})
}

// equiJoinKeys extracts column-index pairs from a conjunction of equality
// predicates where one side resolves in left and the other in right.
func equiJoinKeys(on expr.Expr, left, right *rel) (leftKeys, rightKeys []int) {
	var walk func(e expr.Expr)
	walk = func(e expr.Expr) {
		b, ok := e.(*expr.Binary)
		if !ok {
			return
		}
		switch b.Op {
		case expr.OpAnd:
			walk(b.Left)
			walk(b.Right)
		case expr.OpEq:
			lc, lok := b.Left.(*expr.Col)
			rc, rok := b.Right.(*expr.Col)
			if !lok || !rok {
				return
			}
			if li, err := left.lookup(lc.Name); err == nil {
				if ri, err := right.lookup(rc.Name); err == nil {
					leftKeys = append(leftKeys, li)
					rightKeys = append(rightKeys, ri)
					return
				}
			}
			if li, err := left.lookup(rc.Name); err == nil {
				if ri, err := right.lookup(lc.Name); err == nil {
					leftKeys = append(leftKeys, li)
					rightKeys = append(rightKeys, ri)
				}
			}
		}
	}
	walk(on)
	return leftKeys, rightKeys
}

func joinKey(r *rel, keys []int, row int) string {
	var b strings.Builder
	for _, k := range keys {
		v := r.cols[k].Value(row)
		if f, ok := v.AsFloat(); ok {
			// Normalize numerics so 2 joins with 2.0.
			fmt.Fprintf(&b, "n:%g\x00", f)
			continue
		}
		b.WriteString(v.Type.String())
		b.WriteByte(':')
		b.WriteString(v.String())
		b.WriteByte('\x00')
	}
	return b.String()
}

// execProjection evaluates non-grouped select items row by row, with a
// columnar fast path when every output is a plain column reference.
func (e *executor) execProjection(stmt *SelectStmt, source *rel) (*dataset.Table, error) {
	if stmt.From != nil {
		if out, ok, err := e.columnarProjection(stmt, source); err != nil || ok {
			return out, err
		}
		if out, ok, err := e.vecProjection(stmt, source); err != nil || ok {
			return out, err
		}
	}
	names, exprs := e.expandItems(stmt.Items, source)
	n := source.numRows()
	if stmt.From == nil {
		n = 1
	}
	builders := make([]*valueColumnBuilder, len(exprs))
	for i, name := range names {
		builders[i] = newValueColumnBuilder(name)
	}
	envAt := func(i int) expr.Env {
		if stmt.From == nil {
			return expr.MapEnv{}
		}
		return rowEnv{source, i}
	}
	type sortable struct {
		keys []dataset.Value
	}
	var sortRows []sortable
	for i := 0; i < n; i++ {
		env := envAt(i)
		outRow := make(expr.MapEnv, len(exprs))
		for ci, ex := range exprs {
			v, err := ex.Eval(env)
			if err != nil {
				return nil, err
			}
			builders[ci].append(v)
			outRow[names[ci]] = v
		}
		if len(stmt.OrderBy) > 0 {
			keys := make([]dataset.Value, len(stmt.OrderBy))
			orderEnv := chainEnv{outRow, env}
			for ki, o := range stmt.OrderBy {
				v, err := o.Expr.Eval(orderEnv)
				if err != nil {
					return nil, err
				}
				keys[ki] = v
			}
			sortRows = append(sortRows, sortable{keys: keys})
		}
	}
	out, err := buildTable("result", builders)
	if err != nil {
		return nil, err
	}
	if len(stmt.OrderBy) > 0 {
		idx := sortIndexes(len(sortRows), stmt.OrderBy, func(i, k int) dataset.Value { return sortRows[i].keys[k] })
		out = out.Take(idx)
	}
	return out, nil
}

func (e *executor) expandItems(items []SelectItem, source *rel) (names []string, exprs []expr.Expr) {
	for _, item := range items {
		if item.Star {
			counts := map[string]int{}
			for _, c := range source.cols {
				counts[strings.ToLower(c.Name())]++
			}
			for i, c := range source.cols {
				name := c.Name()
				if counts[strings.ToLower(name)] > 1 {
					name = source.quals[i] + "." + name
				}
				names = append(names, name)
				exprs = append(exprs, expr.Column(source.quals[i]+"."+c.Name()))
			}
			continue
		}
		name := item.Alias
		if name == "" {
			if c, ok := item.Expr.(*expr.Col); ok {
				name = c.Name
				if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
					name = name[dot+1:]
				}
			} else {
				name = item.Expr.String()
			}
		}
		names = append(names, name)
		exprs = append(exprs, item.Expr)
	}
	return names, exprs
}

// groupData is one group ready for the output phase: the source row whose
// values stand in for the group's non-aggregate columns, plus each computed
// aggregate keyed by AggCall.Key. Both the reference (boxed per-group) and
// vectorized (streaming) grouping paths produce this and share
// finishGrouped for HAVING, projection, and ORDER BY.
type groupData struct {
	firstRow int
	aggVals  expr.MapEnv
}

// execGrouped evaluates aggregation queries.
func (e *executor) execGrouped(stmt *SelectStmt, source *rel, aggs []*AggCall) (*dataset.Table, error) {
	if groups, ok, err := e.vecGrouped(stmt, source, aggs); err != nil {
		return nil, err
	} else if ok {
		return e.finishGrouped(stmt, source, groups)
	}

	// Reference path: bucket rows by rendered group key, then aggregate
	// each group's row set with boxed values.
	type group struct {
		firstRow int
		rows     []int
	}
	var order []string
	buckets := map[string]*group{}
	if len(stmt.GroupBy) == 0 {
		g := &group{firstRow: 0}
		for i := 0; i < source.numRows(); i++ {
			g.rows = append(g.rows, i)
		}
		buckets[""] = g
		order = append(order, "")
	} else {
		for i := 0; i < source.numRows(); i++ {
			env := rowEnv{source, i}
			var kb strings.Builder
			for _, ge := range stmt.GroupBy {
				v, err := ge.Eval(env)
				if err != nil {
					return nil, err
				}
				kb.WriteString(v.Type.String())
				kb.WriteByte(':')
				kb.WriteString(v.String())
				kb.WriteByte('\x00')
			}
			key := kb.String()
			g, ok := buckets[key]
			if !ok {
				g = &group{firstRow: i}
				buckets[key] = g
				order = append(order, key)
			}
			g.rows = append(g.rows, i)
		}
	}

	groups := make([]groupData, 0, len(order))
	for _, key := range order {
		g := buckets[key]
		aggVals := make(expr.MapEnv, len(aggs))
		for _, a := range aggs {
			v, err := computeAgg(a, source, g.rows)
			if err != nil {
				return nil, err
			}
			aggVals[a.Key()] = v
		}
		groups = append(groups, groupData{firstRow: g.firstRow, aggVals: aggVals})
	}
	return e.finishGrouped(stmt, source, groups)
}

// finishGrouped runs the per-group output phase: HAVING, select items, and
// ORDER BY, with group rows delivered in first-seen order.
func (e *executor) finishGrouped(stmt *SelectStmt, source *rel, groups []groupData) (*dataset.Table, error) {
	names, exprs := e.expandItems(stmt.Items, source)
	builders := make([]*valueColumnBuilder, len(exprs))
	for i, name := range names {
		builders[i] = newValueColumnBuilder(name)
	}
	var sortKeys [][]dataset.Value
	for _, g := range groups {
		env := chainEnv{g.aggVals, rowEnv{source, g.firstRow}}
		if stmt.Having != nil {
			ok, err := expr.EvalBool(stmt.Having, env)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		outRow := make(expr.MapEnv, len(exprs))
		for ci, ex := range exprs {
			v, err := ex.Eval(env)
			if err != nil {
				return nil, err
			}
			builders[ci].append(v)
			outRow[names[ci]] = v
		}
		if len(stmt.OrderBy) > 0 {
			keys := make([]dataset.Value, len(stmt.OrderBy))
			orderEnv := chainEnv{outRow, env}
			for ki, o := range stmt.OrderBy {
				v, err := o.Expr.Eval(orderEnv)
				if err != nil {
					return nil, err
				}
				keys[ki] = v
			}
			sortKeys = append(sortKeys, keys)
		}
	}
	out, err := buildTable("result", builders)
	if err != nil {
		return nil, err
	}
	if len(stmt.OrderBy) > 0 {
		idx := sortIndexes(len(sortKeys), stmt.OrderBy, func(i, k int) dataset.Value { return sortKeys[i][k] })
		out = out.Take(idx)
	}
	return out, nil
}

func sortIndexes(n int, orderBy []OrderItem, key func(row, k int) dataset.Value) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for k, o := range orderBy {
			cmp := dataset.Compare(key(idx[a], k), key(idx[b], k))
			if cmp == 0 {
				continue
			}
			if o.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	return idx
}

// computeAgg evaluates one aggregate over the rows of a group.
func computeAgg(a *AggCall, source *rel, rows []int) (dataset.Value, error) {
	if a.Star {
		return dataset.Int(int64(len(rows))), nil
	}
	var vals []dataset.Value
	seen := map[string]bool{}
	for _, i := range rows {
		v, err := a.Arg.Eval(rowEnv{source, i})
		if err != nil {
			return dataset.Null, err
		}
		if v.IsNull() {
			continue
		}
		if a.Distinct {
			key := v.Type.String() + ":" + v.String()
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		vals = append(vals, v)
	}
	switch a.Name {
	case "COUNT":
		return dataset.Int(int64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return dataset.Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			cmp := dataset.Compare(v, best)
			if (a.Name == "MIN" && cmp < 0) || (a.Name == "MAX" && cmp > 0) {
				best = v
			}
		}
		return best, nil
	case "SUM", "AVG", "MEDIAN", "STDDEV":
		if len(vals) == 0 {
			return dataset.Null, nil
		}
		nums := make([]float64, 0, len(vals))
		allInt := true
		for _, v := range vals {
			f, ok := v.AsFloat()
			if !ok {
				return dataset.Null, fmt.Errorf("sql: %s over non-numeric value %v", a.Name, v)
			}
			if v.Type != dataset.TypeInt {
				allInt = false
			}
			nums = append(nums, f)
		}
		switch a.Name {
		case "SUM":
			total := 0.0
			for _, f := range nums {
				total += f
			}
			if allInt {
				return dataset.Int(int64(total)), nil
			}
			return dataset.Float(total), nil
		case "AVG":
			total := 0.0
			for _, f := range nums {
				total += f
			}
			return dataset.Float(total / float64(len(nums))), nil
		case "MEDIAN":
			sort.Float64s(nums)
			mid := len(nums) / 2
			if len(nums)%2 == 1 {
				return dataset.Float(nums[mid]), nil
			}
			return dataset.Float((nums[mid-1] + nums[mid]) / 2), nil
		default: // STDDEV (population)
			mean := 0.0
			for _, f := range nums {
				mean += f
			}
			mean /= float64(len(nums))
			ss := 0.0
			for _, f := range nums {
				ss += (f - mean) * (f - mean)
			}
			return dataset.Float(math.Sqrt(ss / float64(len(nums)))), nil
		}
	default:
		return dataset.Null, fmt.Errorf("sql: unknown aggregate %q", a.Name)
	}
}

// valueColumnBuilder accumulates values and infers the narrowest common type.
type valueColumnBuilder struct {
	name string
	vals []dataset.Value
	typ  dataset.Type
}

func newValueColumnBuilder(name string) *valueColumnBuilder {
	return &valueColumnBuilder{name: name, typ: dataset.TypeNull}
}

func (b *valueColumnBuilder) append(v dataset.Value) {
	b.vals = append(b.vals, v)
	if !v.IsNull() {
		b.typ = dataset.CommonType(b.typ, v.Type)
	}
}

func (b *valueColumnBuilder) build() *dataset.Column {
	typ := b.typ
	if typ == dataset.TypeNull {
		typ = dataset.TypeString
	}
	c := dataset.NewColumn(b.name, typ)
	for _, v := range b.vals {
		c.Append(v)
	}
	return c
}

func buildTable(name string, builders []*valueColumnBuilder) (*dataset.Table, error) {
	cols := make([]*dataset.Column, len(builders))
	for i, b := range builders {
		cols[i] = b.build()
	}
	return assembleTable(name, cols)
}

// assembleTable builds a table from output columns, disambiguating
// duplicate output names (e.g. SELECT a, a → a, a_1) the way every
// projection path must.
func assembleTable(name string, cols []*dataset.Column) (*dataset.Table, error) {
	out := make([]*dataset.Column, len(cols))
	used := map[string]int{}
	for i, col := range cols {
		base := col.Name()
		if n := used[strings.ToLower(base)]; n > 0 {
			col = col.Rename(fmt.Sprintf("%s_%d", base, n))
		}
		used[strings.ToLower(base)]++
		out[i] = col
	}
	return dataset.NewTable(name, out...)
}

// columnarProjection handles SELECT lists made purely of columns (and *)
// without re-evaluating expressions per row: output columns alias the
// already-materialized source columns, and plain-column ORDER BY sorts by
// direct column comparison. Returns ok=false when the statement needs the
// general row-at-a-time path.
func (e *executor) columnarProjection(stmt *SelectStmt, source *rel) (*dataset.Table, bool, error) {
	names, exprs := e.expandItems(stmt.Items, source)
	colIdx := make([]int, len(exprs))
	for i, ex := range exprs {
		c, ok := ex.(*expr.Col)
		if !ok {
			return nil, false, nil
		}
		idx, err := source.lookup(c.Name)
		if err != nil {
			return nil, false, nil // ambiguity or unknown: general path reports it
		}
		colIdx[i] = idx
	}
	var orderIdx []int
	var orderDesc []bool
	for _, o := range stmt.OrderBy {
		c, ok := o.Expr.(*expr.Col)
		if !ok {
			return nil, false, nil
		}
		idx, err := source.lookup(c.Name)
		if err != nil {
			return nil, false, nil // may reference an output alias: general path
		}
		orderIdx = append(orderIdx, idx)
		orderDesc = append(orderDesc, o.Desc)
	}
	if len(orderIdx) > 0 {
		rows := make([]int, source.numRows())
		for i := range rows {
			rows[i] = i
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for k, ci := range orderIdx {
				cmp := dataset.Compare(source.cols[ci].Value(rows[a]), source.cols[ci].Value(rows[b]))
				if cmp == 0 {
					continue
				}
				if orderDesc[k] {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		source = takeRel(source, rows)
	}
	cols := make([]*dataset.Column, len(colIdx))
	for i, idx := range colIdx {
		cols[i] = source.cols[idx].Rename(names[i])
	}
	out, err := assembleTable("result", cols)
	if err != nil {
		return nil, false, err
	}
	return out, true, nil
}
