// Package skills implements DataChat's skill layer (§2.1): the curated set
// of ~50 high-level data-science operations that users invoke through UI
// forms, the Python API, or GEL sentences. All three entry paths converge on
// an Invocation — a discrete, parameterized request — and every skill knows
// how to render itself as GEL, as a Python API call, and (for relational
// skills) as a SQL clause, and how to execute directly on tables.
//
// Relational skills carry two implementations, mirroring the paper's §2.2:
// a direct table transform (the "Python" execution path) and a SQL merge
// rule used by the DAG compiler to consolidate chains of skills into one
// flattened query (Figure 4).
package skills

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"datachat/internal/cloud"
	"datachat/internal/dataset"
	"datachat/internal/ml"
	"datachat/internal/snapshot"
	"datachat/internal/viz"
)

// Category groups skills as in the paper's Table 1.
type Category string

// The skill categories from Table 1, plus the cost-control skills of §3 and
// the collaboration skills of §2.4.
const (
	DataIngestion     Category = "Data Ingestion"
	DataExploration   Category = "Data Exploration"
	DataVisualization Category = "Data Visualization"
	DataWrangling     Category = "Data Wrangling"
	MachineLearning   Category = "Machine Learning"
	SQLTasks          Category = "SQL Tasks"
	Collaboration     Category = "Collaboration"
	CostControl       Category = "Cost Control"
)

// Categories lists all categories in display order.
func Categories() []Category {
	return []Category{
		DataIngestion, DataExploration, DataVisualization, DataWrangling,
		MachineLearning, SQLTasks, Collaboration, CostControl,
	}
}

// Args carries an invocation's parameters. Values are JSON-compatible:
// string, float64, int, bool, []string, or []map[string]string.
type Args map[string]any

// String returns a required string parameter.
func (a Args) String(key string) (string, error) {
	v, ok := a[key]
	if !ok {
		return "", fmt.Errorf("skills: missing parameter %q", key)
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("skills: parameter %q must be a string, got %T", key, v)
	}
	return s, nil
}

// StringOr returns an optional string parameter with a default.
func (a Args) StringOr(key, def string) string {
	if s, err := a.String(key); err == nil {
		return s
	}
	return def
}

// StringList returns a string-list parameter; a bare string becomes a
// one-element list. JSON decoding may surface []any, which is handled.
func (a Args) StringList(key string) ([]string, error) {
	v, ok := a[key]
	if !ok {
		return nil, fmt.Errorf("skills: missing parameter %q", key)
	}
	switch vv := v.(type) {
	case string:
		return []string{vv}, nil
	case []string:
		return vv, nil
	case []any:
		out := make([]string, len(vv))
		for i, item := range vv {
			s, ok := item.(string)
			if !ok {
				return nil, fmt.Errorf("skills: parameter %q element %d is %T, not string", key, i, item)
			}
			out[i] = s
		}
		return out, nil
	default:
		return nil, fmt.Errorf("skills: parameter %q must be a string list, got %T", key, v)
	}
}

// StringListOr returns an optional string list.
func (a Args) StringListOr(key string) []string {
	out, err := a.StringList(key)
	if err != nil {
		return nil
	}
	return out
}

// Int returns a required integer parameter (JSON numbers arrive as float64).
func (a Args) Int(key string) (int, error) {
	v, ok := a[key]
	if !ok {
		return 0, fmt.Errorf("skills: missing parameter %q", key)
	}
	switch n := v.(type) {
	case int:
		return n, nil
	case int64:
		return int(n), nil
	case float64:
		return int(n), nil
	default:
		return 0, fmt.Errorf("skills: parameter %q must be a number, got %T", key, v)
	}
}

// IntOr returns an optional integer parameter with a default.
func (a Args) IntOr(key string, def int) int {
	if n, err := a.Int(key); err == nil {
		return n
	}
	return def
}

// Float returns a required float parameter.
func (a Args) Float(key string) (float64, error) {
	v, ok := a[key]
	if !ok {
		return 0, fmt.Errorf("skills: missing parameter %q", key)
	}
	switch n := v.(type) {
	case float64:
		return n, nil
	case int:
		return float64(n), nil
	case int64:
		return float64(n), nil
	default:
		return 0, fmt.Errorf("skills: parameter %q must be a number, got %T", key, v)
	}
}

// FloatOr returns an optional float parameter with a default.
func (a Args) FloatOr(key string, def float64) float64 {
	if f, err := a.Float(key); err == nil {
		return f
	}
	return def
}

// Bool returns an optional boolean parameter (default false).
func (a Args) Bool(key string) bool {
	v, ok := a[key]
	if !ok {
		return false
	}
	b, ok := v.(bool)
	return ok && b
}

// Invocation is a discrete parameterized skill request: the common form that
// UI gestures, Python API calls, and GEL sentences all reduce to (Figure 3).
type Invocation struct {
	// Skill is the canonical skill name, e.g. "KeepRows".
	Skill string
	// Inputs names the session datasets the skill consumes, in order.
	Inputs []string
	// Output names the dataset/artifact the skill produces ("" for default).
	Output string
	// Args are the skill parameters.
	Args Args
}

// ParamSpec documents one skill parameter.
type ParamSpec struct {
	Name     string
	Type     string // "string", "number", "columns", "expression", "aggregates", ...
	Required bool
	Doc      string
}

// Result is what a skill execution produces: at most one table, plus
// optional charts, a model, and a human-readable message.
type Result struct {
	Table   *dataset.Table
	Charts  []*viz.Chart
	Model   ml.Model
	Message string
	// Degraded marks a result produced by a fallback path (stale snapshot,
	// block sample) after the primary source failed permanently. Degraded
	// results are surfaced transparently (§2.3) and are never stored in the
	// sub-DAG cache under the exact-result fingerprint.
	Degraded bool
	// DegradedNote says which fallback produced the result and why.
	DegradedNote string
}

// Context is the execution environment a skill runs in: the session's named
// datasets, connected cloud databases, the snapshot store, trained models,
// in-memory files, and a deterministic seed.
//
// Concurrency: the maps may be populated directly during single-threaded
// setup (tests, examples, session seeding). Once a DAG execution is running,
// all access goes through the locked accessors (Dataset, PutDataset, Model,
// PutModel, File, PutFile, DefinePhrase, DatasetNames) so independent DAG
// branches — and distinct sessions sharing tables — can execute in parallel
// without data races.
type Context struct {
	// Datasets maps dataset names to tables (the session's working set).
	Datasets map[string]*dataset.Table
	// Cloud maps database names to connected cloud databases (possibly
	// wrapped by fault injectors; skills only see the read interface).
	Cloud map[string]cloud.DB
	// Snapshots is the session's snapshot store (may be nil).
	Snapshots snapshot.API
	// Degrade configures the fallback path cloud-reading skills take when
	// the primary source fails permanently. The zero value disables
	// degradation: permanent failures abort the request.
	Degrade DegradePolicy
	// Models holds trained models by name.
	Models map[string]ml.Model
	// Files maps file names/URLs to CSV content for LoadData. Deterministic
	// stand-in for network and filesystem access.
	Files map[string]string
	// Definitions holds semantic-layer phrase definitions added via Define.
	Definitions map[string]string
	// Seed drives every randomized skill (sampling, train/test splits).
	Seed int64

	mu sync.RWMutex
	// fps memoizes dataset content fingerprints by table identity, so the
	// executor can fold them into cache keys without rehashing per run.
	fps map[string]fpEntry
}

type fpEntry struct {
	table *dataset.Table
	fp    uint64
}

// NewContext returns an empty, usable context.
func NewContext() *Context {
	return &Context{
		Datasets:    map[string]*dataset.Table{},
		Cloud:       map[string]cloud.DB{},
		Models:      map[string]ml.Model{},
		Files:       map[string]string{},
		Definitions: map[string]string{},
		Seed:        1,
	}
}

// Dataset returns a named session dataset.
func (c *Context) Dataset(name string) (*dataset.Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.datasetLocked(name)
}

func (c *Context) datasetLocked(name string) (*dataset.Table, error) {
	if t, ok := c.Datasets[name]; ok {
		return t, nil
	}
	for k, t := range c.Datasets {
		if strings.EqualFold(k, name) {
			return t, nil
		}
	}
	return nil, fmt.Errorf("skills: no dataset named %q in the session", name)
}

// PutDataset publishes (or replaces) a named dataset. It is safe to call
// concurrently with readers; the DAG executor uses it to materialize node
// outputs. Replacing a dataset drops its memoized fingerprint, so cache keys
// derived from the name see the new content.
func (c *Context) PutDataset(name string, t *dataset.Table) {
	c.mu.Lock()
	c.Datasets[name] = t
	delete(c.fps, name)
	c.mu.Unlock()
}

// DatasetNames returns the session's dataset names, sorted.
func (c *Context) DatasetNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.Datasets))
	for name := range c.Datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Fingerprint returns the content fingerprint of a named dataset, memoized
// by table identity (tables are immutable by convention, so a pointer match
// means unchanged content).
func (c *Context) Fingerprint(name string) (uint64, error) {
	c.mu.RLock()
	t, err := c.datasetLocked(name)
	if err == nil {
		if e, ok := c.fps[name]; ok && e.table == t {
			c.mu.RUnlock()
			return e.fp, nil
		}
	}
	c.mu.RUnlock()
	if err != nil {
		return 0, err
	}
	fp := t.Fingerprint() // outside the lock: O(cells) on an immutable table
	c.mu.Lock()
	if c.fps == nil {
		c.fps = map[string]fpEntry{}
	}
	if len(c.fps) > 1024 { // bound the memo; entries are tiny but tables churn
		c.fps = map[string]fpEntry{}
	}
	c.fps[name] = fpEntry{table: t, fp: fp}
	c.mu.Unlock()
	return fp, nil
}

// Model returns a trained model by name.
func (c *Context) Model(name string) (ml.Model, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.Models[name]
	return m, ok
}

// PutModel stores a trained model under a name.
func (c *Context) PutModel(name string, m ml.Model) {
	c.mu.Lock()
	c.Models[name] = m
	c.mu.Unlock()
}

// File returns an in-memory file's content.
func (c *Context) File(name string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.Files[name]
	return s, ok
}

// PutFile stores an in-memory file.
func (c *Context) PutFile(name, content string) {
	c.mu.Lock()
	c.Files[name] = content
	c.mu.Unlock()
}

// DefinePhrase records a semantic-layer phrase definition.
func (c *Context) DefinePhrase(phrase, meaning string) {
	c.mu.Lock()
	c.Definitions[strings.ToLower(phrase)] = meaning
	c.mu.Unlock()
}

// Table implements sqlengine.Catalog over the session datasets.
func (c *Context) Table(name string) (*dataset.Table, error) { return c.Dataset(name) }

// ApplyFunc executes a skill directly (the non-SQL execution path).
type ApplyFunc func(ctx *Context, inv Invocation) (*Result, error)

// Definition describes one skill: metadata, parameters, renderings, and its
// implementations.
type Definition struct {
	// Name is the canonical CamelCase skill name.
	Name string
	// Category is the Table 1 grouping.
	Category Category
	// Summary is a one-line description.
	Summary string
	// Params documents the parameters.
	Params []ParamSpec
	// GEL is the sentence template with {param} placeholders, e.g.
	// "Keep the rows where {condition}".
	GEL string
	// PyName is the method name in the DataChat Python API (snake_case).
	PyName string
	// Relational marks skills the DAG compiler can merge into SQL.
	Relational bool
	// Volatile marks skills whose results depend on state outside the DAG
	// signature (cloud tables, the snapshot store, trained models, session
	// files) or that mutate session state when applied. The executor never
	// serves volatile nodes — or their descendants — from the sub-DAG cache.
	Volatile bool
	// Invalidates marks skills whose execution changes shared source data
	// (snapshot create/refresh); running one bumps the sub-DAG cache
	// generation so stale results cannot be served afterwards.
	Invalidates bool
	// Apply is the direct execution path.
	Apply ApplyFunc
	// SourceFingerprint, when set on a volatile skill, returns a content
	// hash of the out-of-DAG state an invocation would read (e.g. a
	// registered session file). When it succeeds the planner treats the
	// node as cacheable, mixing the hash into its fingerprint: re-registered
	// content produces a new cache key instead of a stale hit, while
	// repeated loads of unchanged content share one sub-DAG cache entry.
	// ok=false leaves the node volatile and uncached.
	SourceFingerprint func(ctx *Context, args Args) (uint64, bool)
	// MergeSQL merges the skill into a query under construction; nil for
	// non-relational skills. Returning ErrCannotMerge makes the compiler
	// wrap the current query as a subquery and retry.
	MergeSQL func(b *QueryBuilder, inv Invocation) error
}

// Registry is the set of installed skills.
type Registry struct {
	byName map[string]*Definition
	order  []string
}

// NewRegistry returns a registry with every built-in skill installed.
func NewRegistry() *Registry {
	r := &Registry{byName: map[string]*Definition{}}
	for _, group := range [][]*Definition{
		ingestionSkills(), explorationSkills(), wranglingSkills(),
		visualizationSkills(), mlSkills(), sqlSkills(), collaborationSkills(),
		costControlSkills(),
	} {
		for _, def := range group {
			r.mustRegister(def)
		}
	}
	return r
}

func (r *Registry) mustRegister(def *Definition) {
	if err := r.Register(def); err != nil {
		panic(err.Error())
	}
}

// Register installs a skill definition. Tests and extensions use it to add
// custom skills next to the built-ins; duplicate names are rejected.
func (r *Registry) Register(def *Definition) error {
	if _, dup := r.byName[strings.ToLower(def.Name)]; dup {
		return fmt.Errorf("skills: duplicate skill %q", def.Name)
	}
	if def.PyName == "" {
		def.PyName = toSnake(def.Name)
	}
	r.byName[strings.ToLower(def.Name)] = def
	r.order = append(r.order, def.Name)
	return nil
}

// Lookup returns a skill definition by name (case-insensitive).
func (r *Registry) Lookup(name string) (*Definition, error) {
	def, ok := r.byName[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("skills: unknown skill %q", name)
	}
	return def, nil
}

// Names returns every skill name in registration order.
func (r *Registry) Names() []string { return append([]string{}, r.order...) }

// ByCategory returns skills grouped by category, each group name-sorted.
func (r *Registry) ByCategory() map[Category][]*Definition {
	out := map[Category][]*Definition{}
	for _, name := range r.order {
		def := r.byName[strings.ToLower(name)]
		out[def.Category] = append(out[def.Category], def)
	}
	for _, defs := range out {
		sort.Slice(defs, func(i, j int) bool { return defs[i].Name < defs[j].Name })
	}
	return out
}

// Execute validates and runs an invocation through the direct path.
func (r *Registry) Execute(ctx *Context, inv Invocation) (*Result, error) {
	def, err := r.Lookup(inv.Skill)
	if err != nil {
		return nil, err
	}
	if err := def.validate(inv); err != nil {
		return nil, err
	}
	return def.Apply(ctx, inv)
}

func (d *Definition) validate(inv Invocation) error {
	for _, p := range d.Params {
		if !p.Required {
			continue
		}
		if _, ok := inv.Args[p.Name]; !ok {
			return fmt.Errorf("skills: %s requires parameter %q (%s)", d.Name, p.Name, p.Doc)
		}
	}
	return nil
}

func toSnake(name string) string {
	var b strings.Builder
	for i, r := range name {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r - 'A' + 'a')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// singleInput resolves the invocation's (sole) input dataset.
func singleInput(ctx *Context, inv Invocation) (*dataset.Table, error) {
	if len(inv.Inputs) == 0 {
		return nil, fmt.Errorf("skills: %s needs an input dataset", inv.Skill)
	}
	return ctx.Dataset(inv.Inputs[0])
}

// AggSpec is one aggregate request in a Compute/Pivot skill.
type AggSpec struct {
	Func   string // count, sum, avg, min, max, median, stddev, count_distinct
	Column string // "*" for count of records
	As     string // output column name ("" derives one)
}

// OutName returns the output column name for the aggregate.
func (a AggSpec) OutName() string {
	if a.As != "" {
		return a.As
	}
	if a.Column == "*" || a.Column == "" {
		return a.Func + "_records"
	}
	return a.Func + "_" + a.Column
}

// validAggFuncs lists the aggregate functions Compute accepts.
var validAggFuncs = map[string]string{
	"count": "COUNT", "sum": "SUM", "avg": "AVG", "average": "AVG",
	"min": "MIN", "max": "MAX", "median": "MEDIAN", "stddev": "STDDEV",
	"count_distinct": "COUNT_DISTINCT",
}

// AggSpecs parses the "aggregates" parameter: a list of maps with keys
// func/column/as (JSON) or strings "func of column [as name]" (GEL).
func (a Args) AggSpecs(key string) ([]AggSpec, error) {
	v, ok := a[key]
	if !ok {
		return nil, fmt.Errorf("skills: missing parameter %q", key)
	}
	var items []any
	switch vv := v.(type) {
	case []any:
		items = vv
	case []map[string]string:
		for _, m := range vv {
			items = append(items, m)
		}
	case []AggSpec:
		return vv, nil
	case string:
		items = []any{vv}
	case []string:
		for _, s := range vv {
			items = append(items, s)
		}
	default:
		return nil, fmt.Errorf("skills: parameter %q must be an aggregate list, got %T", key, v)
	}
	out := make([]AggSpec, 0, len(items))
	for _, item := range items {
		spec, err := parseAggItem(item)
		if err != nil {
			return nil, err
		}
		if _, valid := validAggFuncs[spec.Func]; !valid {
			return nil, fmt.Errorf("skills: unknown aggregate function %q", spec.Func)
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("skills: parameter %q must not be empty", key)
	}
	return out, nil
}

func parseAggItem(item any) (AggSpec, error) {
	switch it := item.(type) {
	case AggSpec:
		return it, nil
	case map[string]string:
		return AggSpec{Func: strings.ToLower(it["func"]), Column: it["column"], As: it["as"]}, nil
	case map[string]any:
		spec := AggSpec{}
		if s, ok := it["func"].(string); ok {
			spec.Func = strings.ToLower(s)
		}
		if s, ok := it["column"].(string); ok {
			spec.Column = s
		}
		if s, ok := it["as"].(string); ok {
			spec.As = s
		}
		return spec, nil
	case string:
		return parseAggString(it)
	default:
		return AggSpec{}, fmt.Errorf("skills: cannot parse aggregate %v (%T)", item, item)
	}
}

// parseAggString parses "count of case_id as NumberOfCases", "count of
// records", "sum of amount".
func parseAggString(s string) (AggSpec, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return AggSpec{}, fmt.Errorf("skills: empty aggregate")
	}
	spec := AggSpec{Func: strings.ToLower(fields[0])}
	rest := fields[1:]
	if len(rest) > 0 && strings.EqualFold(rest[0], "of") {
		rest = rest[1:]
	}
	if len(rest) == 0 {
		return AggSpec{}, fmt.Errorf("skills: aggregate %q is missing a column", s)
	}
	spec.Column = rest[0]
	if strings.EqualFold(spec.Column, "records") {
		spec.Column = "*"
	}
	rest = rest[1:]
	if len(rest) >= 2 && strings.EqualFold(rest[0], "as") {
		spec.As = rest[1]
	}
	return spec, nil
}
