package sqlengine

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"datachat/internal/dataset"
	"datachat/internal/expr"
)

// This file implements morsel-driven streaming execution: statements run as
// operator pipelines over bounded column-chunk batches ("morsels") instead of
// whole materialized tables. Streaming operators (scan, filter, projection,
// OFFSET/LIMIT) hold O(ChunkRows) state; pipeline breakers (ORDER BY sorted
// runs, group states, join build sides, DISTINCT seen-sets) buffer rows under
// an explicit budget. A sort or group-by partition that overflows the budget
// spills runs to disk and merges them streaming (spill.go); operators that
// cannot spill fail loudly with a typed BudgetError. With Parallelism > 1 a
// morsel dispatcher (stream_parallel.go) fans chunks out to worker-pinned
// pipelines with order-preserving reassembly, so the parallel stream emits
// exactly the serial chunk sequence. Statements the pipeline cannot stream
// exactly fall back to whole-statement materialized execution re-chunked on
// the way out, so ExecStream always produces the same rows, in the same
// order, as the row-at-a-time reference path — the differential harness pins
// both.

// DefaultChunkRows is the morsel size when StreamOptions.ChunkRows is unset.
const DefaultChunkRows = 1024

// StreamOptions tunes streaming execution.
type StreamOptions struct {
	Options

	// ChunkRows bounds the rows per emitted chunk (default DefaultChunkRows).
	ChunkRows int

	// MaxBufferedRows caps the rows pipeline-breaking operators may buffer
	// (sorted runs, group states, join build sides, DISTINCT sets). Zero
	// means unlimited. Overflowing operators spill sorted/partitioned runs
	// to disk when they can (ORDER BY, group-by) and abort the stream with
	// a *BudgetError when they cannot (join build sides, DISTINCT sets) or
	// when DisableSpill is set.
	MaxBufferedRows int

	// Parallelism is the number of pipeline workers morsels are fanned out
	// to. 0 means serial (the oracle path every differential test pins
	// against), a negative value means GOMAXPROCS, and values > 1 enable
	// the parallel dispatcher with order-preserving reassembly.
	Parallelism int

	// SpillDir is where spill runs are written (default: the OS temp dir).
	SpillDir string

	// DisableSpill turns the disk spill layer off, restoring the strict
	// budget behavior: overflow is always a *BudgetError.
	DisableSpill bool

	// Ctx, when set, cancels parallel workers and releases spill files if
	// it is done before the stream is drained.
	Ctx context.Context

	// ForceFallbackAfterChunks, when positive, switches to the materialized
	// fallback after that many chunks have been emitted. It exists so tests
	// can pin that a mid-stream fallback continues the row sequence exactly.
	ForceFallbackAfterChunks int
}

func (o StreamOptions) chunkRows() int {
	if o.ChunkRows > 0 {
		return o.ChunkRows
	}
	return DefaultChunkRows
}

// workers resolves Parallelism: 0 → 1 (serial), negative → GOMAXPROCS.
func (o StreamOptions) workers() int {
	switch {
	case o.Parallelism == 0:
		return 1
	case o.Parallelism < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return o.Parallelism
	}
}

// BudgetError reports a pipeline-breaking operator exceeding the configured
// memory budget. It is loud and typed so callers can distinguish "query needs
// more memory than allowed" from semantic errors.
type BudgetError struct {
	Op       string // operator that overflowed: order-by, group-by, join-build, …
	Buffered int    // rows buffered across live operators when the budget broke
	Budget   int    // configured MaxBufferedRows
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sql: streaming %s exceeded the memory budget: %d buffered rows > %d allowed",
		e.Op, e.Buffered, e.Budget)
}

// streamExec carries per-stream execution state: the shared executor (for the
// helpers both paths use), the buffered-row accounting across operators (one
// budget shared by every operator and partition, charged under a mutex so
// concurrent reducers account correctly), spill-file tracking, and the stop
// functions that tear down parallel workers on close or cancellation.
type streamExec struct {
	ex   *executor
	opts StreamOptions

	mu       sync.Mutex
	buffered map[string]int
	curTotal int
	peak     int

	spillMu    sync.Mutex
	spillFiles map[string]bool
	spill      SpillStats

	stopMu  sync.Mutex
	stopFns []func(error)
	closed  bool
	stopErr error
	doneCh  chan struct{}
}

// buffer records that operator op now holds rows buffered rows, enforcing the
// budget over the sum across live operators and tracking the high-water mark.
func (se *streamExec) buffer(op string, rows int) error {
	se.mu.Lock()
	defer se.mu.Unlock()
	prev := se.buffered[op]
	se.curTotal += rows - prev
	se.buffered[op] = rows
	if se.curTotal > se.peak {
		se.peak = se.curTotal
	}
	// Only a growing charge can overflow: an operator releasing memory
	// (rows <= prev) must never be blamed for pressure other live
	// operators are holding, or a spill that just freed its buffers would
	// fail with a budget error attributed to the wrong operator.
	if rows > prev && se.opts.MaxBufferedRows > 0 && se.curTotal > se.opts.MaxBufferedRows {
		return &BudgetError{Op: op, Buffered: se.curTotal, Budget: se.opts.MaxBufferedRows}
	}
	return nil
}

// tryBuffer is buffer's non-committing probe: it records the charge and
// returns true when op holding rows fits the budget, and changes nothing
// (returning false) when it would overflow — the spill trigger.
func (se *streamExec) tryBuffer(op string, rows int) bool {
	se.mu.Lock()
	defer se.mu.Unlock()
	newTotal := se.curTotal + rows - se.buffered[op]
	if se.opts.MaxBufferedRows > 0 && newTotal > se.opts.MaxBufferedRows {
		return false
	}
	se.curTotal = newTotal
	se.buffered[op] = rows
	if se.curTotal > se.peak {
		se.peak = se.curTotal
	}
	return true
}

// forceBuffer commits a charge even past the budget: a deliberate, bounded
// overrun (one group state per partition) that keeps spill passes live when
// sibling operators transiently hold the entire budget.
func (se *streamExec) forceBuffer(op string, rows int) {
	se.mu.Lock()
	se.curTotal += rows - se.buffered[op]
	se.buffered[op] = rows
	if se.curTotal > se.peak {
		se.peak = se.curTotal
	}
	se.mu.Unlock()
}

func (se *streamExec) workers() int { return se.opts.workers() }

// spillEnabled reports whether budget overflow may go to disk instead of
// failing. With no budget there is never an overflow to spill.
func (se *streamExec) spillEnabled() bool {
	return se.opts.MaxBufferedRows > 0 && !se.opts.DisableSpill
}

// onStop registers a teardown hook (pipe stop, sorter disposal) run when the
// stream closes, fails, finishes, or its context is cancelled. If the stream
// is already closed the hook runs immediately.
func (se *streamExec) onStop(fn func(error)) {
	se.stopMu.Lock()
	if se.closed {
		cause := se.stopErr
		se.stopMu.Unlock()
		fn(cause)
		return
	}
	se.stopFns = append(se.stopFns, fn)
	se.stopMu.Unlock()
}

// stopAll tears the stream's workers down and deletes any remaining spill
// files. Idempotent and safe to call from the context watcher concurrently
// with the consumer.
func (se *streamExec) stopAll(cause error) {
	se.stopMu.Lock()
	if se.closed {
		se.stopMu.Unlock()
		return
	}
	se.closed = true
	se.stopErr = cause
	fns := se.stopFns
	se.stopFns = nil
	close(se.doneCh)
	se.stopMu.Unlock()
	for _, fn := range fns {
		fn(cause)
	}
	se.spillMu.Lock()
	for path := range se.spillFiles {
		os.Remove(path)
	}
	se.spillFiles = map[string]bool{}
	se.spillMu.Unlock()
}

func (se *streamExec) trackSpillFile(path string) {
	se.spillMu.Lock()
	se.spillFiles[path] = true
	se.spillMu.Unlock()
}

func (se *streamExec) removeSpillFile(path string) {
	se.spillMu.Lock()
	if se.spillFiles[path] {
		delete(se.spillFiles, path)
		os.Remove(path)
	}
	se.spillMu.Unlock()
}

func (se *streamExec) noteSpillRun(rows int, bytes int64) {
	se.spillMu.Lock()
	se.spill.Runs++
	se.spill.SpilledRows += rows
	se.spill.SpilledBytes += bytes
	se.spillMu.Unlock()
}

func (se *streamExec) spillStats() SpillStats {
	se.spillMu.Lock()
	defer se.spillMu.Unlock()
	return se.spill
}

// RowStream yields a statement's result as a sequence of bounded chunks.
type RowStream struct {
	catalog Catalog
	stmt    *SelectStmt
	opts    StreamOptions
	se      *streamExec

	pull         func() (*dataset.Table, error)
	needFallback bool // statement is unstreamable; materialize lazily on first Next
	fellBack     bool
	done         bool
	err          error
	rows         int
	chunks       int
}

// Next returns the next chunk, or (nil, nil) when the stream is exhausted.
// After an error the stream is dead and Next keeps returning the same error.
func (rs *RowStream) Next() (*dataset.Table, error) {
	if rs.done || rs.err != nil {
		return nil, rs.err
	}
	if rs.needFallback {
		rs.needFallback = false
		if err := rs.startFallback(0); err != nil {
			return nil, rs.fail(err)
		}
	}
	if rs.opts.ForceFallbackAfterChunks > 0 && !rs.fellBack && rs.chunks >= rs.opts.ForceFallbackAfterChunks {
		if err := rs.startFallback(rs.rows); err != nil {
			return nil, rs.fail(err)
		}
	}
	t, err := rs.pull()
	if err != nil {
		return nil, rs.fail(err)
	}
	if t == nil {
		rs.done = true
		rs.se.stopAll(nil)
		return nil, nil
	}
	rs.chunks++
	rs.rows += t.NumRows()
	return t, nil
}

func (rs *RowStream) fail(err error) error {
	rs.err = err
	rs.se.stopAll(nil)
	return err
}

// Close releases the stream's resources — parallel workers and spill files —
// without draining it. Required when abandoning a partially-consumed
// parallel stream; harmless (and optional) after a full drain or an error.
func (rs *RowStream) Close() {
	rs.done = true
	if rs.se != nil {
		rs.se.stopAll(nil)
	}
}

// startFallback materializes the whole statement through the standard path
// and re-chunks it, skipping rows the streaming pipeline already emitted.
// Both paths produce rows in identical order, so the spliced sequence is the
// same table the reference path returns.
func (rs *RowStream) startFallback(skipRows int) error {
	// The streaming pipeline is abandoned: stop its workers and drop its
	// spill files before materializing.
	rs.se.stopAll(nil)
	out, err := ExecStmtOptions(rs.catalog, rs.stmt, rs.opts.Options)
	if err != nil {
		return err
	}
	rs.fellBack = true
	if skipRows > 0 {
		out = out.Window(skipRows, out.NumRows())
		if out.NumRows() == 0 {
			rs.pull = func() (*dataset.Table, error) { return nil, nil }
			return nil
		}
	}
	rs.pull = rechunkTable(out, rs.opts.chunkRows())
	return nil
}

// FellBack reports whether the stream switched to materialized execution.
func (rs *RowStream) FellBack() bool { return rs.fellBack }

// RowsEmitted returns the number of rows produced so far.
func (rs *RowStream) RowsEmitted() int { return rs.rows }

// PeakBufferedRows returns the high-water mark of rows buffered by
// pipeline-breaking operators — the stream's working-set gauge.
func (rs *RowStream) PeakBufferedRows() int {
	if rs.se == nil {
		return 0
	}
	rs.se.mu.Lock()
	defer rs.se.mu.Unlock()
	return rs.se.peak
}

// SpillStats returns the stream's disk-spill counters so far.
func (rs *RowStream) SpillStats() SpillStats {
	if rs.se == nil {
		return SpillStats{}
	}
	return rs.se.spillStats()
}

// Workers reports the resolved pipeline worker count.
func (rs *RowStream) Workers() int { return rs.opts.workers() }

// ReadAll drains the stream into one table. Column types are re-inferred
// across all chunks the way the reference projection does.
func (rs *RowStream) ReadAll() (*dataset.Table, error) {
	return rs.Drain(nil)
}

// Drain consumes the stream into one table, handing each chunk to sink (may
// be nil) before accumulating it — the hook the DAG executor uses to forward
// chunks to a network client while still materializing the full result for
// the session context and the sub-DAG cache.
func (rs *RowStream) Drain(sink func(*dataset.Table) error) (*dataset.Table, error) {
	var first *dataset.Table
	var builders []*valueColumnBuilder
	nchunks := 0
	for {
		t, err := rs.Next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			break
		}
		if sink != nil {
			if err := sink(t); err != nil {
				return nil, err
			}
		}
		nchunks++
		if first == nil {
			first = t
			builders = make([]*valueColumnBuilder, t.NumCols())
			for i, name := range t.ColumnNames() {
				builders[i] = newValueColumnBuilder(name)
			}
		}
		if t.NumCols() != len(builders) {
			return nil, fmt.Errorf("sql: stream chunk schema changed mid-stream (%d columns, want %d)", t.NumCols(), len(builders))
		}
		for ci, c := range t.Columns() {
			for r := 0; r < c.Len(); r++ {
				builders[ci].append(c.Value(r))
			}
		}
	}
	if first == nil {
		return nil, fmt.Errorf("sql: stream produced no chunks")
	}
	if nchunks == 1 {
		return first, nil // single chunk: keep its exact column types
	}
	return buildTable("result", builders)
}

// ExecStream parses and streams a SQL query against the catalog.
func ExecStream(catalog Catalog, query string, opts StreamOptions) (*RowStream, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecStreamStmt(catalog, stmt, opts)
}

// ExecStreamStmt streams a parsed statement. Statement shapes the morsel
// pipeline cannot reproduce exactly (SELECT without FROM, DISTINCT over
// computed projections, DISTINCT/MEDIAN/STDDEV aggregates) fall back to
// materialized execution re-chunked on the way out; FellBack reports that.
func ExecStreamStmt(catalog Catalog, stmt *SelectStmt, opts StreamOptions) (*RowStream, error) {
	se := &streamExec{
		ex:         &executor{catalog: catalog, vec: !opts.DisableVectorized},
		opts:       opts,
		buffered:   map[string]int{},
		spillFiles: map[string]bool{},
		doneCh:     make(chan struct{}),
	}
	if opts.Ctx != nil {
		go func() {
			select {
			case <-opts.Ctx.Done():
				se.stopAll(opts.Ctx.Err())
			case <-se.doneCh:
			}
		}()
	}
	rs := &RowStream{catalog: catalog, stmt: stmt, opts: opts, se: se}
	pull, ok, err := se.buildPipeline(stmt)
	if err != nil {
		return nil, err
	}
	if !ok {
		rs.needFallback = true
		rs.fellBack = true
		return rs, nil
	}
	rs.pull = pull
	return rs, nil
}

// relChunks produces a FROM-clause relation as a sequence of bounded chunks.
// Implementations never emit zero-row chunks; schema is available up front.
type relChunks interface {
	schema() *rel        // zero-row relation carrying columns and qualifiers
	next() (*rel, error) // next chunk; (nil, nil) marks exhaustion
}

func windowRel(r *rel, from, to int) *rel {
	out := &rel{cols: make([]*dataset.Column, len(r.cols)), quals: r.quals}
	for i, c := range r.cols {
		out.cols[i] = c.Window(from, to)
	}
	return out
}

// scanChunks yields zero-copy windows over a materialized relation.
type scanChunks struct {
	src   *rel
	off   int
	chunk int
}

func (s *scanChunks) schema() *rel { return windowRel(s.src, 0, 0) }

func (s *scanChunks) next() (*rel, error) {
	n := s.src.numRows()
	if s.off >= n {
		return nil, nil
	}
	end := min(s.off+s.chunk, n)
	out := windowRel(s.src, s.off, end)
	s.off = end
	return out, nil
}

// rechunkRel splits oversized chunks (join fan-out) into bounded windows.
type rechunkRel struct {
	in    relChunks
	chunk int
	cur   *rel
	off   int
}

func (r *rechunkRel) schema() *rel { return r.in.schema() }

func (r *rechunkRel) next() (*rel, error) {
	for {
		if r.cur != nil {
			n := r.cur.numRows()
			if r.off < n {
				end := min(r.off+r.chunk, n)
				out := windowRel(r.cur, r.off, end)
				r.off = end
				return out, nil
			}
			r.cur = nil
		}
		c, err := r.in.next()
		if err != nil || c == nil {
			return nil, err
		}
		if c.numRows() <= r.chunk {
			return c, nil
		}
		r.cur, r.off = c, 0
	}
}

// filterChunks applies WHERE per chunk, with the vectorized kernel when it
// compiles and the boxed row loop otherwise, honoring the LIMIT push-down
// budget across chunks exactly as the materialized scan does.
type filterChunks struct {
	se     *streamExec
	in     relChunks
	where  expr.Expr
	budget int // total surviving rows to keep; -1 = unlimited
	kept   int
}

func (f *filterChunks) schema() *rel { return f.in.schema() }

func (f *filterChunks) next() (*rel, error) {
	for {
		if f.budget >= 0 && f.kept >= f.budget {
			return nil, nil
		}
		c, err := f.in.next()
		if err != nil || c == nil {
			return nil, err
		}
		rem := -1
		if f.budget >= 0 {
			rem = f.budget - f.kept
		}
		keep, vectorized, err := f.se.ex.vecFilter(f.where, c, rem)
		if err != nil {
			return nil, err
		}
		if !vectorized {
			keep = make([]int, 0, c.numRows())
			for i := 0; i < c.numRows(); i++ {
				ok, err := expr.EvalBool(f.where, rowEnv{c, i})
				if err != nil {
					return nil, err
				}
				if ok {
					keep = append(keep, i)
					if rem >= 0 && len(keep) >= rem {
						break
					}
				}
			}
		}
		if len(keep) == 0 {
			continue
		}
		f.kept += len(keep)
		return takeRel(c, keep), nil
	}
}

// truncChunks caps total rows flowing through (LIMIT push-down with no WHERE).
type truncChunks struct {
	in     relChunks
	budget int
	passed int
}

func (t *truncChunks) schema() *rel { return t.in.schema() }

func (t *truncChunks) next() (*rel, error) {
	if t.passed >= t.budget {
		return nil, nil
	}
	c, err := t.in.next()
	if err != nil || c == nil {
		return nil, err
	}
	if rem := t.budget - t.passed; c.numRows() > rem {
		c = windowRel(c, 0, rem)
	}
	t.passed += c.numRows()
	return c, nil
}

// sourceChunks builds the chunk source for a FROM-clause relation. Base
// tables scan as zero-copy windows; subqueries materialize through the
// standard executor and re-chunk (their results equal the reference by the
// existing differential harness); joins stream their left side.
func (se *streamExec) sourceChunks(ref TableRef) (relChunks, error) {
	switch r := ref.(type) {
	case *BaseTable:
		t, err := se.ex.catalog.Table(r.Name)
		if err != nil {
			return nil, err
		}
		return &scanChunks{src: tableToRel(t, r.Alias), chunk: se.opts.chunkRows()}, nil
	case *Subquery:
		t, err := se.ex.execSelect(r.Stmt)
		if err != nil {
			return nil, err
		}
		alias := r.Alias
		if alias == "" {
			alias = "subquery"
		}
		return &scanChunks{src: tableToRel(t, alias), chunk: se.opts.chunkRows()}, nil
	case *Join:
		jc, err := se.newJoinChunks(r)
		if err != nil {
			return nil, err
		}
		return &rechunkRel{in: jc, chunk: se.opts.chunkRows()}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported table reference %T", ref)
	}
}

// joinChunks streams a join: the right side is fully built (hash table for
// equi-conditions, plain materialization otherwise) and charged against the
// memory budget; left chunks probe it through the morsel dispatcher, which
// preserves chunk order, so parallel probing emits exactly the serial
// sequence. The build side cannot spill — overflowing it is a BudgetError
// either way. LEFT JOIN unmatched-row tracking is side-effecting, so the
// workers only report per-row match flags and the consumer folds them into
// the unmatched buffer serially, in chunk order, exactly like the serial
// engine.
type joinChunks struct {
	se                  *streamExec
	j                   *Join
	left                relChunks
	right               *rel
	combined            *rel // schema-level; used for qualified-name resolution only
	leftKeys, rightKeys []int
	build               map[string][]int
	pipe                *parallelPipe[*rel, *joinProbe]
	unmatched           *rel // buffered unmatched left rows (LEFT JOIN)
	extended            bool
	done                bool
}

// joinProbe is one probed left chunk: the matched output rows plus the
// per-left-row match flags the consumer needs for LEFT JOIN bookkeeping.
type joinProbe struct {
	c       *rel // the left chunk that was probed
	out     *rel // combined matched rows (nil when none)
	matched []bool
}

func (se *streamExec) newJoinChunks(j *Join) (*joinChunks, error) {
	left, err := se.sourceChunks(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := se.ex.execRef(j.Right)
	if err != nil {
		return nil, err
	}
	if err := se.buffer("join-build", right.numRows()); err != nil {
		return nil, err
	}
	ls := left.schema()
	jc := &joinChunks{se: se, j: j, left: left, right: right}
	jc.combined = &rel{
		cols:  append(append([]*dataset.Column{}, ls.cols...), right.cols...),
		quals: append(append([]string{}, ls.quals...), right.quals...),
	}
	jc.leftKeys, jc.rightKeys = equiJoinKeys(j.On, ls, right)
	if len(jc.leftKeys) > 0 {
		jc.buildHashTable()
	}
	if j.Kind == LeftJoin {
		cols := make([]*dataset.Column, len(ls.cols))
		for i, c := range ls.cols {
			cols[i] = dataset.NewColumn(c.Name(), c.Type())
		}
		jc.unmatched = &rel{cols: cols, quals: ls.quals}
	}
	jc.pipe = newParallelPipe(se.workers(), 2*se.workers(),
		func() (*rel, bool, error) {
			c, err := jc.left.next()
			return c, c != nil, err
		},
		func(c *rel, _ int) (*joinProbe, error) { return jc.probe(c) },
	)
	se.onStop(jc.pipe.stop)
	return jc, nil
}

// buildHashTable builds the equi-join hash map, range-partitioned across the
// pipeline workers: each worker maps a contiguous slice of right rows, and
// the partials merge in range order, so every key's row list stays in
// ascending right-row order — the order the serial build produces.
func (jc *joinChunks) buildHashTable() {
	n := jc.right.numRows()
	w := jc.se.workers()
	if w > n {
		w = 1
	}
	buildRange := func(lo, hi int) map[string][]int {
		m := make(map[string][]int, hi-lo)
		for ri := lo; ri < hi; ri++ {
			k := joinKey(jc.right, jc.rightKeys, ri)
			m[k] = append(m[k], ri)
		}
		return m
	}
	if w <= 1 {
		jc.build = buildRange(0, n)
		return
	}
	parts := make([]map[string][]int, w)
	var wg sync.WaitGroup
	for p := 0; p < w; p++ {
		lo, hi := p*n/w, (p+1)*n/w
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			parts[p] = buildRange(lo, hi)
		}(p, lo, hi)
	}
	wg.Wait()
	jc.build = parts[0]
	for _, part := range parts[1:] {
		for k, ris := range part {
			jc.build[k] = append(jc.build[k], ris...)
		}
	}
}

func (jc *joinChunks) schema() *rel { return windowRel(jc.combined, 0, 0) }

func (jc *joinChunks) next() (*rel, error) {
	for {
		if jc.done {
			return nil, nil
		}
		if jc.extended {
			jc.done = true
			if jc.unmatched == nil || jc.unmatched.numRows() == 0 {
				return nil, nil
			}
			return jc.nullExtension(), nil
		}
		p, ok, err := jc.pipe.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			jc.extended = true
			continue
		}
		if jc.unmatched != nil {
			appended := false
			for li, m := range p.matched {
				if m {
					continue
				}
				for ci, col := range jc.unmatched.cols {
					col.Append(p.c.cols[ci].Value(li))
				}
				appended = true
			}
			if appended {
				if err := jc.se.buffer("join-unmatched", jc.unmatched.numRows()); err != nil {
					return nil, err
				}
			}
		}
		if p.out == nil || p.out.numRows() == 0 {
			continue
		}
		return p.out, nil
	}
}

// probe matches one left chunk against the build side. It is pure — shared
// state is read-only — so the dispatcher can run it on any worker.
func (jc *joinChunks) probe(c *rel) (*joinProbe, error) {
	var leftIdx, rightIdx []int
	matched := make([]bool, c.numRows())
	residual := func(li, ri int) (bool, error) {
		if jc.j.On == nil {
			return true, nil
		}
		return expr.EvalBool(jc.j.On, joinEnv{left: c, leftRow: li, right: jc.right, rightRow: ri, combined: jc.combined})
	}
	if jc.build != nil {
		for li := 0; li < c.numRows(); li++ {
			for _, ri := range jc.build[joinKey(c, jc.leftKeys, li)] {
				ok, err := residual(li, ri)
				if err != nil {
					return nil, err
				}
				if ok {
					leftIdx = append(leftIdx, li)
					rightIdx = append(rightIdx, ri)
					matched[li] = true
				}
			}
		}
	} else {
		for li := 0; li < c.numRows(); li++ {
			for ri := 0; ri < jc.right.numRows(); ri++ {
				ok, err := residual(li, ri)
				if err != nil {
					return nil, err
				}
				if ok {
					leftIdx = append(leftIdx, li)
					rightIdx = append(rightIdx, ri)
					matched[li] = true
				}
			}
		}
	}
	p := &joinProbe{c: c, matched: matched}
	if len(leftIdx) == 0 {
		return p, nil
	}
	out := &rel{cols: make([]*dataset.Column, len(jc.combined.cols)), quals: jc.combined.quals}
	nLeft := len(c.cols)
	for ci := range jc.combined.cols {
		if ci < nLeft {
			out.cols[ci] = c.cols[ci].Take(leftIdx)
		} else {
			out.cols[ci] = jc.right.cols[ci-nLeft].Take(rightIdx)
		}
	}
	p.out = out
	return p, nil
}

// nullExtension emits the buffered unmatched left rows with null right sides.
func (jc *joinChunks) nullExtension() *rel {
	n := jc.unmatched.numRows()
	nulls := make([]int, n)
	for i := range nulls {
		nulls[i] = -1
	}
	out := &rel{cols: make([]*dataset.Column, len(jc.combined.cols)), quals: jc.combined.quals}
	nLeft := len(jc.unmatched.cols)
	for ci := range jc.combined.cols {
		if ci < nLeft {
			out.cols[ci] = jc.unmatched.cols[ci]
		} else {
			out.cols[ci] = jc.right.cols[ci-nLeft].Take(nulls)
		}
	}
	return out
}

// buildPipeline assembles the streaming operator pipeline for a statement.
// ok=false means the statement must fall back to materialized execution.
func (se *streamExec) buildPipeline(stmt *SelectStmt) (func() (*dataset.Table, error), bool, error) {
	if stmt.From == nil {
		return nil, false, nil // SELECT without FROM evaluates items once, materialized
	}
	aggs := se.ex.collectAllAggs(stmt)
	grouped := len(stmt.GroupBy) > 0 || len(aggs) > 0
	if grouped {
		for _, a := range aggs {
			if a.Distinct {
				return nil, false, nil
			}
			switch a.Name {
			case "COUNT", "SUM", "AVG", "MIN", "MAX":
			default: // MEDIAN, STDDEV need the full value set per group
				return nil, false, nil
			}
		}
	}

	src, err := se.sourceChunks(stmt.From)
	if err != nil {
		return nil, false, err
	}
	schema := src.schema()

	names, exprs := se.ex.expandItems(stmt.Items, schema)
	plain := true
	plainIdx := make([]int, len(exprs))
	for i, ex := range exprs {
		c, ok := ex.(*expr.Col)
		if !ok {
			plain = false
			break
		}
		idx, err := schema.lookup(c.Name)
		if err != nil {
			plain = false
			break
		}
		plainIdx[i] = idx
	}
	// Streaming DISTINCT dedups on rendered row keys, which include column
	// types; only plain-column projections have chunk-stable output types
	// matching what the materialized path dedups on.
	if stmt.Distinct && !grouped && !plain {
		return nil, false, nil
	}

	rowBudget := -1
	if !grouped && len(stmt.OrderBy) == 0 && !stmt.Distinct && stmt.Limit >= 0 {
		rowBudget = stmt.Offset + stmt.Limit
	}
	// Parallel pipelines prefetch chunks ahead of the consumer, so they are
	// only used when the stream consumes its whole input anyway: a LIMIT
	// that stops early (rowBudget, or DISTINCT+LIMIT) could otherwise
	// surface evaluation errors from chunks the serial path never reaches.
	parallelScan := se.workers() > 1 && rowBudget < 0 && !(stmt.Distinct && stmt.Limit >= 0 && !grouped && len(stmt.OrderBy) == 0)
	var scanFilter expr.Expr
	var chunks relChunks = src
	if stmt.Where != nil {
		if parallelScan {
			scanFilter = stmt.Where // each worker filters its own morsels
		} else {
			chunks = &filterChunks{se: se, in: chunks, where: stmt.Where, budget: rowBudget}
		}
	} else if rowBudget >= 0 {
		chunks = &truncChunks{in: chunks, budget: rowBudget}
	}

	var pull func() (*dataset.Table, error)
	switch {
	case grouped:
		if parallelScan || se.spillEnabled() {
			pull = se.partitionedGroupedPull(stmt, chunks, scanFilter, aggs, schema)
		} else {
			pull = se.groupedPull(stmt, chunks, aggs, schema)
		}
	case len(stmt.OrderBy) > 0:
		pull = se.orderedPull(stmt, chunks, scanFilter, names, exprs, plain, plainIdx, schema)
	default:
		if parallelScan {
			pull = se.parallelProjectPull(chunks, scanFilter, names, exprs, plain, plainIdx)
		} else {
			pull = se.projectPull(chunks, names, exprs, plain, plainIdx)
		}
	}
	if !grouped {
		if stmt.Distinct {
			if parallelScan {
				pull = se.parallelDistinctPull(pull)
			} else {
				pull = se.distinctPull(pull)
			}
		}
		if stmt.Offset > 0 || stmt.Limit >= 0 {
			pull = offsetLimitPull(pull, stmt.Offset, stmt.Limit)
		}
	}
	empty := func() (*dataset.Table, error) {
		return se.projectChunk(windowRel(schema, 0, 0), names, exprs, plain, plainIdx)
	}
	return ensureOneChunk(pull, empty), true, nil
}

// projectChunk evaluates the select list over one chunk: zero-copy column
// aliasing for plain references, compiled kernels where they apply, and the
// boxed row loop otherwise. Values are identical across all three; only the
// inferred column types can differ, which result comparison tolerates.
func (se *streamExec) projectChunk(c *rel, names []string, exprs []expr.Expr, plain bool, plainIdx []int) (*dataset.Table, error) {
	if plain {
		cols := make([]*dataset.Column, len(plainIdx))
		for i, idx := range plainIdx {
			cols[i] = c.cols[idx].Rename(names[i])
		}
		return assembleTable("result", cols)
	}
	if se.ex.vec {
		binder := relBinder{c}
		cols := make([]*dataset.Column, len(exprs))
		compiled := true
		for i, ex := range exprs {
			k, ok := expr.Compile(ex, binder, c.numRows())
			if !ok {
				compiled = false
				break
			}
			v, err := k()
			if err != nil {
				return nil, err
			}
			cols[i] = v.Column(names[i])
		}
		if compiled {
			return assembleTable("result", cols)
		}
	}
	builders := make([]*valueColumnBuilder, len(exprs))
	for i, name := range names {
		builders[i] = newValueColumnBuilder(name)
	}
	for i := 0; i < c.numRows(); i++ {
		env := rowEnv{c, i}
		for ci, ex := range exprs {
			v, err := ex.Eval(env)
			if err != nil {
				return nil, err
			}
			builders[ci].append(v)
		}
	}
	return buildTable("result", builders)
}

func (se *streamExec) projectPull(chunks relChunks, names []string, exprs []expr.Expr, plain bool, plainIdx []int) func() (*dataset.Table, error) {
	return func() (*dataset.Table, error) {
		c, err := chunks.next()
		if err != nil || c == nil {
			return nil, err
		}
		return se.projectChunk(c, names, exprs, plain, plainIdx)
	}
}

// filterRel applies a WHERE predicate to one chunk inside a pipeline worker
// (no LIMIT budget — parallel scans only run when the whole input is
// consumed). Returns nil when no row survives.
func (se *streamExec) filterRel(where expr.Expr, c *rel) (*rel, error) {
	if where == nil {
		return c, nil
	}
	keep, vectorized, err := se.ex.vecFilter(where, c, -1)
	if err != nil {
		return nil, err
	}
	if !vectorized {
		keep = make([]int, 0, c.numRows())
		for i := 0; i < c.numRows(); i++ {
			ok, err := expr.EvalBool(where, rowEnv{c, i})
			if err != nil {
				return nil, err
			}
			if ok {
				keep = append(keep, i)
			}
		}
	}
	if len(keep) == 0 {
		return nil, nil
	}
	if len(keep) == c.numRows() {
		return c, nil
	}
	return takeRel(c, keep), nil
}

// parallelProjectPull fans source chunks out to the pipeline workers, each
// filtering and projecting its own morsels; reassembly preserves chunk
// order, so the output sequence is exactly the serial one.
func (se *streamExec) parallelProjectPull(chunks relChunks, where expr.Expr, names []string, exprs []expr.Expr, plain bool, plainIdx []int) func() (*dataset.Table, error) {
	pipe := newParallelPipe(se.workers(), 2*se.workers(),
		func() (*rel, bool, error) {
			c, err := chunks.next()
			return c, c != nil, err
		},
		func(c *rel, _ int) (*dataset.Table, error) {
			fc, err := se.filterRel(where, c)
			if err != nil || fc == nil {
				return nil, err
			}
			return se.projectChunk(fc, names, exprs, plain, plainIdx)
		},
	)
	se.onStop(pipe.stop)
	return func() (*dataset.Table, error) {
		for {
			t, ok, err := pipe.next()
			if err != nil || !ok {
				return nil, err
			}
			if t == nil || t.NumRows() == 0 {
				continue // fully filtered morsel
			}
			return t, nil
		}
	}
}

// orderedRun is one chunk's projected rows and sort keys, built by a
// pipeline worker.
type orderedRun struct {
	vals  [][]dataset.Value // projected rows in input order
	keys  [][]dataset.Value
	order []int // stable sort of row indexes by keys, computed in the worker
}

// orderedPull implements chunked ORDER BY as a sorted-run merge: each input
// chunk becomes a run sorted stably by its keys (built in parallel when the
// dispatcher has workers); exhausted input is merged k-way with ties broken
// by run sequence, which reproduces a global stable sort. Buffered rows are
// charged against the budget; overflow merges the buffered runs into an
// on-disk run (a contiguous sequence range, so the final disk+memory merge
// is still the exact stable sort) unless spilling is disabled.
func (se *streamExec) orderedPull(stmt *SelectStmt, chunks relChunks, where expr.Expr, names []string, exprs []expr.Expr, plain bool, plainIdx []int, schema *rel) func() (*dataset.Table, error) {
	var types []dataset.Type
	if plain {
		types = make([]dataset.Type, len(plainIdx))
		for i, idx := range plainIdx {
			types[i] = schema.cols[idx].Type()
		}
	}
	buildRun := func(c *rel, _ int) (*orderedRun, error) {
		fc, err := se.filterRel(where, c)
		if err != nil {
			return nil, err
		}
		if fc == nil {
			return &orderedRun{}, nil
		}
		n := fc.numRows()
		r := &orderedRun{vals: make([][]dataset.Value, 0, n), keys: make([][]dataset.Value, 0, n)}
		// One output env reused across the chunk's rows: every row writes
		// the same name set, so per-row maps would only add allocations.
		outRow := make(expr.MapEnv, len(exprs))
		for i := 0; i < n; i++ {
			env := rowEnv{fc, i}
			vals := make([]dataset.Value, len(exprs))
			for ci, ex := range exprs {
				v, err := ex.Eval(env)
				if err != nil {
					return nil, err
				}
				vals[ci] = v
				outRow[names[ci]] = v
			}
			keys := make([]dataset.Value, len(stmt.OrderBy))
			orderEnv := chainEnv{outRow, env}
			for ki, o := range stmt.OrderBy {
				v, err := o.Expr.Eval(orderEnv)
				if err != nil {
					return nil, err
				}
				keys[ki] = v
			}
			r.vals = append(r.vals, vals)
			r.keys = append(r.keys, keys)
		}
		r.order = sortIndexes(len(r.vals), stmt.OrderBy, func(row, k int) dataset.Value { return r.keys[row][k] })
		return r, nil
	}
	pipe := newParallelPipe(se.workers(), 2*se.workers(),
		func() (*rel, bool, error) {
			c, err := chunks.next()
			return c, c != nil, err
		},
		buildRun,
	)
	se.onStop(pipe.stop)
	sorter := newExtSorter(se, "order-by", stmt.OrderBy)
	consumed := false
	var sorted []sortedSource
	consume := func() error {
		seq := 0
		for {
			r, ok, err := pipe.next()
			if err != nil {
				return err
			}
			if !ok {
				sorted = sorter.sources()
				return nil
			}
			if err := sorter.addRun(seq, r.vals, r.keys, r.order); err != nil {
				return err
			}
			seq++
		}
	}
	return func() (*dataset.Table, error) {
		if !consumed {
			consumed = true
			if err := consume(); err != nil {
				return nil, err
			}
		}
		chunkRows := se.opts.chunkRows()
		var rows [][]dataset.Value
		for len(rows) < chunkRows {
			vals, _, ok, err := sorter.mergeStep(sorted)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			rows = append(rows, vals)
		}
		if len(rows) == 0 {
			return nil, nil
		}
		return buildValueChunk(names, types, rows)
	}
}

// buildValueChunk materializes boxed rows into a chunk table, pinning column
// types when the projection is plain (chunk-stable types keep DISTINCT and
// the wire encoding consistent with the materialized path).
func buildValueChunk(names []string, types []dataset.Type, rows [][]dataset.Value) (*dataset.Table, error) {
	if types != nil {
		cols := make([]*dataset.Column, len(names))
		for i, name := range names {
			c := dataset.NewColumn(name, types[i])
			for _, row := range rows {
				c.Append(row[i])
			}
			cols[i] = c
		}
		return assembleTable("result", cols)
	}
	builders := make([]*valueColumnBuilder, len(names))
	for i, name := range names {
		builders[i] = newValueColumnBuilder(name)
	}
	for _, row := range rows {
		for ci := range builders {
			builders[ci].append(row[ci])
		}
	}
	return buildTable("result", builders)
}

// groupedPull consumes all input chunks into streaming per-group aggregate
// states (COUNT/SUM/AVG/MIN/MAX, non-distinct — anything else fell back
// before the pipeline was built), then reuses the shared finishGrouped phase
// for HAVING, projection, and ORDER BY, re-chunking its output.
func (se *streamExec) groupedPull(stmt *SelectStmt, chunks relChunks, aggs []*AggCall, schema *rel) func() (*dataset.Table, error) {
	var emit func() (*dataset.Table, error)
	return func() (*dataset.Table, error) {
		if emit == nil {
			out, err := se.runGrouped(stmt, chunks, aggs, schema)
			if err != nil {
				return nil, err
			}
			emit = rechunkTable(out, se.opts.chunkRows())
		}
		return emit()
	}
}

// gState is one group's streaming aggregate state, one slot per AggCall.
type gState struct {
	firstRow int // row index into the buffered first-rows relation
	counts   []int64
	sums     []float64
	allInt   []bool
	best     []dataset.Value
	hasBest  []bool
}

func newGState(firstRow, naggs int) *gState {
	g := &gState{
		firstRow: firstRow,
		counts:   make([]int64, naggs),
		sums:     make([]float64, naggs),
		allInt:   make([]bool, naggs),
		best:     make([]dataset.Value, naggs),
		hasBest:  make([]bool, naggs),
	}
	for i := range g.allInt {
		g.allInt[i] = true
	}
	return g
}

func (se *streamExec) runGrouped(stmt *SelectStmt, chunks relChunks, aggs []*AggCall, schema *rel) (*dataset.Table, error) {
	// firstRows buffers one representative row per group so finishGrouped can
	// resolve non-aggregate column references exactly as the materialized
	// path does against the group's first source row.
	firstRows := &rel{cols: make([]*dataset.Column, len(schema.cols)), quals: schema.quals}
	for i, c := range schema.cols {
		firstRows.cols[i] = dataset.NewColumn(c.Name(), c.Type())
	}
	buckets := map[string]*gState{}
	var order []*gState
	singleGroup := len(stmt.GroupBy) == 0
	for {
		c, err := chunks.next()
		if err != nil {
			return nil, err
		}
		if c == nil {
			break
		}
		for i := 0; i < c.numRows(); i++ {
			env := rowEnv{c, i}
			key := ""
			if !singleGroup {
				var kb strings.Builder
				for _, ge := range stmt.GroupBy {
					v, err := ge.Eval(env)
					if err != nil {
						return nil, err
					}
					kb.WriteString(v.Type.String())
					kb.WriteByte(':')
					kb.WriteString(v.String())
					kb.WriteByte('\x00')
				}
				key = kb.String()
			}
			g, ok := buckets[key]
			if !ok {
				g = newGState(len(order), len(aggs))
				buckets[key] = g
				order = append(order, g)
				for ci, col := range firstRows.cols {
					col.Append(c.cols[ci].Value(i))
				}
				if err := se.buffer("group-by", len(order)); err != nil {
					return nil, err
				}
			}
			for ai, a := range aggs {
				var v dataset.Value
				if !a.Star {
					v, err = a.Arg.Eval(env)
					if err != nil {
						return nil, err
					}
				}
				if err := g.accumulate(a, ai, v); err != nil {
					return nil, err
				}
			}
		}
	}
	if singleGroup && len(order) == 0 {
		// Aggregates over zero rows still produce one output group.
		order = append(order, newGState(0, len(aggs)))
	}
	groups := make([]groupData, len(order))
	for gi, g := range order {
		aggVals := make(expr.MapEnv, len(aggs))
		for ai, a := range aggs {
			var v dataset.Value
			switch {
			case a.Star || a.Name == "COUNT":
				v = dataset.Int(g.counts[ai])
			case a.Name == "MIN" || a.Name == "MAX":
				v = dataset.Null
				if g.hasBest[ai] {
					v = g.best[ai]
				}
			case a.Name == "SUM":
				switch {
				case g.counts[ai] == 0:
					v = dataset.Null
				case g.allInt[ai]:
					v = dataset.Int(int64(g.sums[ai]))
				default:
					v = dataset.Float(g.sums[ai])
				}
			default: // AVG
				v = dataset.Null
				if g.counts[ai] > 0 {
					v = dataset.Float(g.sums[ai] / float64(g.counts[ai]))
				}
			}
			aggVals[a.Key()] = v
		}
		groups[gi] = groupData{firstRow: g.firstRow, aggVals: aggVals}
	}
	out, err := se.ex.finishGrouped(stmt, firstRows, groups)
	if err != nil {
		return nil, err
	}
	if stmt.Distinct {
		out, err = out.Distinct()
		if err != nil {
			return nil, err
		}
	}
	if stmt.Offset > 0 || stmt.Limit >= 0 {
		from := stmt.Offset
		to := out.NumRows()
		if stmt.Limit >= 0 && from+stmt.Limit < to {
			to = from + stmt.Limit
		}
		out = out.Slice(from, to)
	}
	return out, nil
}

// distinctPull drops rows whose rendered row key has been seen, keeping first
// occurrences across chunks. The seen-set is charged against the budget;
// overflow hands the remaining input to a distinctSpiller (external dedupe on
// disk) when spilling is enabled, and fails with the typed BudgetError when
// it is not.
func (se *streamExec) distinctPull(in func() (*dataset.Table, error)) func() (*dataset.Table, error) {
	seen := map[string]bool{}
	var sp *distinctSpiller
	var tail func() (*dataset.Table, error)
	return func() (*dataset.Table, error) {
		for {
			if tail != nil {
				return tail()
			}
			t, err := in()
			if err != nil {
				return nil, err
			}
			if t == nil {
				if sp == nil {
					return nil, nil
				}
				if tail, err = sp.resolve(); err != nil {
					return nil, err
				}
				continue
			}
			if sp != nil {
				if err := sp.add(t, nil); err != nil {
					return nil, err
				}
				continue
			}
			keep := make([]int, 0, t.NumRows())
			for r := 0; r < t.NumRows(); r++ {
				key := streamRowKey(t.Row(r))
				if !seen[key] {
					seen[key] = true
					keep = append(keep, r)
				}
			}
			if err := se.buffer("distinct", len(seen)); err != nil {
				if !se.spillEnabled() {
					return nil, err
				}
				// This chunk's kept rows are still first occurrences —
				// emitted below, keys flushed into the emitted run.
				keys := make([]string, 0, len(seen))
				for k := range seen {
					keys = append(keys, k)
				}
				if sp, err = newDistinctSpiller(se, "distinct", keys); err != nil {
					return nil, err
				}
				se.forceBuffer("distinct", 0)
				seen = nil
			}
			if len(keep) == t.NumRows() {
				return t, nil
			}
			if len(keep) == 0 {
				continue
			}
			return t.Take(keep), nil
		}
	}
}

// distinctBatch is one chunk with its row keys rendered (and sharded) by a
// pipeline worker.
type distinctBatch struct {
	t     *dataset.Table
	keys  []string
	shard []uint32
}

// parallelDistinctPull shards the DISTINCT seen-set by key hash: pipeline
// workers render row keys per morsel, and per-chunk the shards dedup their
// own key subspace concurrently into disjoint slots of a keep bitmap. Shard
// assignment depends only on the key — never the worker count — and chunks
// are processed in input order, so the kept row set is exactly the serial
// one. The budget is charged per shard; overflow hands the remaining input
// to a distinctSpiller like the serial path.
func (se *streamExec) parallelDistinctPull(in func() (*dataset.Table, error)) func() (*dataset.Table, error) {
	shards := se.workers()
	seen := make([]map[string]bool, shards)
	for i := range seen {
		seen[i] = map[string]bool{}
	}
	pipe := newParallelPipe(se.workers(), 2*se.workers(),
		func() (*dataset.Table, bool, error) {
			t, err := in()
			return t, t != nil, err
		},
		func(t *dataset.Table, _ int) (*distinctBatch, error) {
			n := t.NumRows()
			b := &distinctBatch{t: t, keys: make([]string, n), shard: make([]uint32, n)}
			for r := 0; r < n; r++ {
				b.keys[r] = streamRowKey(t.Row(r))
				b.shard[r] = hash32str(b.keys[r]) % uint32(shards)
			}
			return b, nil
		},
	)
	se.onStop(pipe.stop)
	var sp *distinctSpiller
	var tail func() (*dataset.Table, error)
	return func() (*dataset.Table, error) {
		for {
			if tail != nil {
				return tail()
			}
			b, ok, err := pipe.next()
			if err != nil {
				return nil, err
			}
			if !ok {
				if sp == nil {
					return nil, nil
				}
				if tail, err = sp.resolve(); err != nil {
					return nil, err
				}
				continue
			}
			if sp != nil {
				if err := sp.add(b.t, b.keys); err != nil {
					return nil, err
				}
				continue
			}
			n := b.t.NumRows()
			keepBits := make([]bool, n)
			var wg sync.WaitGroup
			for s := 0; s < shards; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					m := seen[s]
					for r := 0; r < n; r++ {
						if int(b.shard[r]) == s && !m[b.keys[r]] {
							m[b.keys[r]] = true
							keepBits[r] = true
						}
					}
				}(s)
			}
			wg.Wait()
			overflow := false
			for s := 0; s < shards; s++ {
				if err := se.buffer(fmt.Sprintf("distinct#%d", s), len(seen[s])); err != nil {
					if !se.spillEnabled() {
						return nil, err
					}
					overflow = true
				}
			}
			if overflow {
				// This chunk's kept rows are still first occurrences —
				// emitted below, keys flushed into the emitted run.
				var keys []string
				for _, m := range seen {
					for k := range m {
						keys = append(keys, k)
					}
				}
				if sp, err = newDistinctSpiller(se, "distinct", keys); err != nil {
					return nil, err
				}
				for s := 0; s < shards; s++ {
					se.forceBuffer(fmt.Sprintf("distinct#%d", s), 0)
				}
				seen = nil
			}
			keep := make([]int, 0, n)
			for r, k := range keepBits {
				if k {
					keep = append(keep, r)
				}
			}
			if len(keep) == n {
				return b.t, nil
			}
			if len(keep) == 0 {
				continue
			}
			return b.t.Take(keep), nil
		}
	}
}

// streamRowKey renders a row the way Table.Distinct does, so streaming
// DISTINCT keeps exactly the rows the materialized path keeps.
func streamRowKey(row []dataset.Value) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.Type.String())
		b.WriteByte(':')
		b.WriteString(v.String())
		b.WriteByte('\x00')
	}
	return b.String()
}

// offsetLimitPull skips Offset rows and truncates at Limit, streaming.
func offsetLimitPull(in func() (*dataset.Table, error), offset, limit int) func() (*dataset.Table, error) {
	skipped, emitted := 0, 0
	done := false
	return func() (*dataset.Table, error) {
		for {
			if done {
				return nil, nil
			}
			if limit >= 0 && emitted >= limit {
				done = true
				return nil, nil
			}
			t, err := in()
			if err != nil {
				return nil, err
			}
			if t == nil {
				done = true
				return nil, nil
			}
			if t.NumRows() == 0 {
				continue
			}
			if skipped < offset {
				skip := min(offset-skipped, t.NumRows())
				skipped += skip
				if skip == t.NumRows() {
					continue
				}
				t = t.Window(skip, t.NumRows())
			}
			if limit >= 0 {
				if rem := limit - emitted; t.NumRows() > rem {
					t = t.Window(0, rem)
				}
			}
			emitted += t.NumRows()
			return t, nil
		}
	}
}

// ensureOneChunk guarantees the stream emits at least one (possibly empty)
// chunk so consumers always observe the result schema.
func ensureOneChunk(in func() (*dataset.Table, error), empty func() (*dataset.Table, error)) func() (*dataset.Table, error) {
	emitted, done := false, false
	return func() (*dataset.Table, error) {
		if done {
			return nil, nil
		}
		t, err := in()
		if err != nil {
			return nil, err
		}
		if t == nil {
			done = true
			if !emitted {
				return empty()
			}
			return nil, nil
		}
		emitted = true
		return t, nil
	}
}

// rechunkTable re-emits a materialized table as bounded zero-copy windows;
// an empty table still yields one empty chunk carrying the schema.
func rechunkTable(t *dataset.Table, chunk int) func() (*dataset.Table, error) {
	off, done := 0, false
	return func() (*dataset.Table, error) {
		if done {
			return nil, nil
		}
		n := t.NumRows()
		if n == 0 {
			done = true
			return t, nil
		}
		if off >= n {
			done = true
			return nil, nil
		}
		end := min(off+chunk, n)
		out := t.Window(off, end)
		off = end
		return out, nil
	}
}
