package sqlengine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"datachat/internal/dataset"
)

// drainChunks pulls every chunk off a stream, preserving chunk boundaries.
func drainChunks(rs *RowStream) ([]*dataset.Table, error) {
	var out []*dataset.Table
	for {
		c, err := rs.Next()
		if err != nil {
			return out, err
		}
		if c == nil {
			return out, nil
		}
		out = append(out, c)
	}
}

// runParallelVsSerial pins the parallel dispatcher chunk-for-chunk against
// the serial oracle: same chunk count, same rows per chunk, same values —
// or both streams fail.
func runParallelVsSerial(t *testing.T, catalog MapCatalog, query string, base StreamOptions, workers int) {
	t.Helper()
	serialOpts := base
	serialOpts.Parallelism = 0
	parOpts := base
	parOpts.Parallelism = workers

	srs, serr := ExecStream(catalog, query, serialOpts)
	var serialChunks []*dataset.Table
	if serr == nil {
		serialChunks, serr = drainChunks(srs)
	}
	prs, perr := ExecStream(catalog, query, parOpts)
	var parChunks []*dataset.Table
	if perr == nil {
		parChunks, perr = drainChunks(prs)
	}
	if (serr == nil) != (perr == nil) {
		t.Fatalf("error divergence for %q (workers=%d):\n  serial:   %v\n  parallel: %v", query, workers, serr, perr)
	}
	if serr != nil {
		return
	}
	if len(serialChunks) != len(parChunks) {
		t.Fatalf("chunk count divergence for %q (workers=%d): serial %d, parallel %d",
			query, workers, len(serialChunks), len(parChunks))
	}
	for i := range serialChunks {
		if serialChunks[i].NumRows() != parChunks[i].NumRows() {
			t.Fatalf("chunk %d row count divergence for %q (workers=%d): serial %d, parallel %d",
				i, query, workers, serialChunks[i].NumRows(), parChunks[i].NumRows())
		}
		if !serialChunks[i].Equal(parChunks[i]) {
			t.Fatalf("chunk %d divergence for %q (workers=%d):\nserial:\n%s\nparallel:\n%s",
				i, query, workers, serialChunks[i], parChunks[i])
		}
	}
}

// TestDifferentialParallelVsSerial runs the randomized corpus through the
// morsel dispatcher at several worker counts and pins every output chunk
// against the serial pipeline — including tiny chunks (many fan-out rounds),
// disabled kernels, and a forced mid-stream fallback.
func TestDifferentialParallelVsSerial(t *testing.T) {
	seeds := int64(4)
	if testing.Short() {
		seeds = 2
	}
	variants := []StreamOptions{
		{},
		{ChunkRows: 7},
		{ChunkRows: 32, Options: Options{DisableVectorized: true}},
		{ChunkRows: 13, ForceFallbackAfterChunks: 1},
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + 100))
			catalog := NewMapCatalog(CorpusTables(rng, 150+rng.Intn(200), 40+rng.Intn(40)))
			queries := CorpusQueries(rng, 30)
			for _, q := range queries {
				for _, opts := range variants {
					for _, workers := range []int{2, 4} {
						runParallelVsSerial(t, catalog, q, opts, workers)
					}
				}
			}
		})
	}
}

// TestDifferentialForcedSpill forces the spill layer on (tiny budget, spill
// dir in a temp dir) and pins the spilled stream against the unbudgeted
// reference result, serial and parallel. At least one query must actually
// spill, and the spill dir must be empty after every drain.
func TestDifferentialForcedSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	catalog := NewMapCatalog(CorpusTables(rng, 400, 60))
	dir := t.TempDir()
	queries := []string{
		"SELECT i, s FROM t1 ORDER BY i, s",
		"SELECT f, i FROM t1 WHERE f > 10 ORDER BY f DESC",
		"SELECT s, COUNT(*) AS c, SUM(f) AS sf FROM t1 GROUP BY s ORDER BY s",
		"SELECT i, AVG(f) AS af, MIN(s) AS ms FROM t1 GROUP BY i",
		"SELECT i, COUNT(*) AS c FROM t1 GROUP BY i HAVING COUNT(*) > 1 ORDER BY c DESC, i",
	}
	spilled := false
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		ref, refErr := ExecStmtOptions(catalog, stmt, Options{DisableVectorized: true})
		if refErr != nil {
			t.Fatalf("reference %q: %v", q, refErr)
		}
		for _, workers := range []int{0, 4} {
			rs, err := ExecStream(catalog, q, StreamOptions{
				ChunkRows:       64,
				MaxBufferedRows: 50,
				SpillDir:        dir,
				Parallelism:     workers,
			})
			if err != nil {
				t.Fatalf("%q (workers=%d): %v", q, workers, err)
			}
			out, err := rs.ReadAll()
			if err != nil {
				t.Fatalf("%q (workers=%d): drain: %v", q, workers, err)
			}
			if !out.Equal(ref) {
				t.Fatalf("spilled result divergence for %q (workers=%d):\nstream:\n%s\nreference:\n%s",
					q, workers, out, ref)
			}
			st := rs.SpillStats()
			if st.SpilledRows > 0 {
				spilled = true
				if st.Runs == 0 || st.SpilledBytes == 0 {
					t.Fatalf("%q: inconsistent spill stats %+v", q, st)
				}
			}
			assertNoSpillFiles(t, dir)
		}
	}
	if !spilled {
		t.Fatal("no query spilled; the forced-spill suite is not exercising the spill layer")
	}
}

// TestStreamSpillCompletesWhereBudgetFailed is the acceptance shape: under a
// budget the serial engine refused, the spilling engine completes with
// nonzero SpilledRows and the exact reference result.
func TestStreamSpillCompletesWhereBudgetFailed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	catalog := NewMapCatalog(CorpusTables(rng, 2000, 10))
	const query = "SELECT i, s, COUNT(*) AS c, SUM(f) AS sf FROM t1 GROUP BY i, s ORDER BY i, s"
	budget := StreamOptions{ChunkRows: 128, MaxBufferedRows: 100}

	strict := budget
	strict.DisableSpill = true
	rs, err := ExecStream(catalog, query, strict)
	if err == nil {
		_, err = rs.ReadAll()
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("strict budget: error = %v, want *BudgetError", err)
	}

	dir := t.TempDir()
	spill := budget
	spill.SpillDir = dir
	rs, err = ExecStream(catalog, query, spill)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rs.ReadAll()
	if err != nil {
		t.Fatalf("spilling engine failed under the same budget: %v", err)
	}
	if st := rs.SpillStats(); st.SpilledRows == 0 {
		t.Fatalf("spill stats = %+v, want nonzero SpilledRows", st)
	}
	ref, err := Exec(catalog, query)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(ref) {
		t.Fatalf("spilled result diverges:\nstream:\n%s\nreference:\n%s", out, ref)
	}
	// Spill-pass liveness may overrun the budget by one state per partition.
	if peak := rs.PeakBufferedRows(); peak > 100+rs.Workers() {
		t.Fatalf("peak buffered rows = %d, want <= budget 100 + %d workers", peak, rs.Workers())
	}
	assertNoSpillFiles(t, dir)
}

// TestStreamBudgetRacingSpill drives many concurrent reducers into a tiny
// shared budget so spill activation races across partitions, and pins the
// result against the reference.
func TestStreamBudgetRacingSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	catalog := NewMapCatalog(CorpusTables(rng, 1500, 30))
	dir := t.TempDir()
	for _, q := range []string{
		"SELECT i, COUNT(*) AS c FROM t1 GROUP BY i",
		"SELECT s, i, SUM(f) AS sf FROM t1 GROUP BY s, i ORDER BY s, i",
	} {
		ref, err := Exec(catalog, q)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := ExecStream(catalog, q, StreamOptions{
			ChunkRows:       32,
			MaxBufferedRows: 60,
			SpillDir:        dir,
			Parallelism:     4,
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := rs.ReadAll()
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if !out.Equal(ref) {
			t.Fatalf("%q diverges under racing spill:\nstream:\n%s\nreference:\n%s", q, out, ref)
		}
		assertNoSpillFiles(t, dir)
	}
}

// TestStreamCancellationMidFanOut cancels the stream's context while workers
// are mid-flight: the consumer must observe an error promptly and every
// spill file must be gone.
func TestStreamCancellationMidFanOut(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	catalog := NewMapCatalog(CorpusTables(rng, 5000, 20))
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	rs, err := ExecStream(catalog, "SELECT i, SUM(f) AS sf FROM t1 GROUP BY i ORDER BY i", StreamOptions{
		ChunkRows:       16,
		MaxBufferedRows: 40,
		SpillDir:        dir,
		Parallelism:     4,
		Ctx:             ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	var lastErr error
	for i := 0; i < 10_000; i++ {
		c, err := rs.Next()
		if err != nil {
			lastErr = err
			break
		}
		if c == nil {
			break
		}
	}
	// Cancellation races the drain: either the stream finished first (fine)
	// or it must surface the cancellation cause.
	if lastErr != nil && !errors.Is(lastErr, context.Canceled) {
		t.Fatalf("cancelled stream error = %v, want context.Canceled", lastErr)
	}
	rs.Close()
	assertNoSpillFiles(t, dir)
}

// TestStreamSpillCleanupOnError checks a mid-stream evaluation error tears
// down a spilling parallel pipeline without leaking temp files.
func TestStreamSpillCleanupOnError(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	catalog := NewMapCatalog(CorpusTables(rng, 2000, 10))
	dir := t.TempDir()
	// SUM(s) over strings fails during aggregation, after spilling started.
	rs, err := ExecStream(catalog, "SELECT i, SUM(s) AS bad FROM t1 GROUP BY i", StreamOptions{
		ChunkRows:       32,
		MaxBufferedRows: 50,
		SpillDir:        dir,
		Parallelism:     4,
	})
	if err == nil {
		_, err = rs.ReadAll()
	}
	if err == nil {
		t.Fatal("SUM over strings succeeded; want an evaluation error")
	}
	var be *BudgetError
	if errors.As(err, &be) {
		t.Fatalf("got BudgetError %v; want the evaluation error", err)
	}
	assertNoSpillFiles(t, dir)
}

// TestStreamCloseReleasesSpillFiles checks abandoning a stream early (Close
// without draining) removes on-disk runs.
func TestStreamCloseReleasesSpillFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	catalog := NewMapCatalog(CorpusTables(rng, 3000, 10))
	dir := t.TempDir()
	rs, err := ExecStream(catalog, "SELECT i, f FROM t1 ORDER BY i, f", StreamOptions{
		ChunkRows:       64,
		MaxBufferedRows: 100,
		SpillDir:        dir,
		Parallelism:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Next(); err != nil {
		t.Fatal(err)
	}
	if rs.SpillStats().Runs == 0 {
		t.Fatal("ORDER BY under a 100-row budget on 3000 rows should have spilled")
	}
	rs.Close()
	assertNoSpillFiles(t, dir)
}

// TestParallelDistinctSharding pins the sharded DISTINCT against the serial
// seen-set on a corpus slice with heavy duplication.
func TestParallelDistinctSharding(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	catalog := NewMapCatalog(CorpusTables(rng, 900, 40))
	for _, q := range []string{
		"SELECT DISTINCT s FROM t1",
		"SELECT DISTINCT s, b FROM t1",
		"SELECT DISTINCT i, s FROM t1 WHERE i >= 0",
	} {
		for _, workers := range []int{2, 4, 8} {
			runParallelVsSerial(t, catalog, q, StreamOptions{ChunkRows: 17}, workers)
		}
	}
}

func assertNoSpillFiles(t *testing.T, dir string) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "dcspill-*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if _, err := os.Stat(m); err == nil {
			t.Fatalf("leaked spill file %s", m)
		}
	}
}

// TestIntKeyHashMatchesEncoded pins the invariant the columnar int-key fast
// path rests on: hash32int(v) must equal hash32 of the byte-encoded key, and
// intGroupKey must invert the encoding — otherwise batches that took
// different key representations (a chunk with nulls falls back to bytes)
// would partition the same group to different reducers.
func TestIntKeyHashMatchesEncoded(t *testing.T) {
	vals := []int64{0, 1, -1, 13, -13, 1 << 31, -(1 << 31), 1<<63 - 1, -(1 << 62), 424242}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		vals = append(vals, rng.Int63()-rng.Int63())
	}
	for _, v := range vals {
		enc := appendKeyValue(nil, dataset.Int(v))
		if got, want := hash32int(v), hash32(enc); got != want {
			t.Fatalf("hash32int(%d) = %#x, hash32(encoded) = %#x", v, got, want)
		}
		k, ok := intGroupKey(enc)
		if !ok || k != v {
			t.Fatalf("intGroupKey(encode(%d)) = %d, %v", v, k, ok)
		}
	}
	if _, ok := intGroupKey(appendKeyValue(nil, dataset.Null)); ok {
		t.Fatal("intGroupKey accepted a null key")
	}
	if _, ok := intGroupKey(appendKeyValue(nil, dataset.Float(1))); ok {
		t.Fatal("intGroupKey accepted a float key")
	}
}

// TestParallelGroupByMixedKeyBatches groups on an int column whose nulls are
// confined to a middle slice of rows: with small chunks, some batches take
// the columnar int-key fast path and others fall back to byte-encoded keys
// within the same stream. Every chunk must still match the serial engine,
// at several worker counts, with and without a spill-forcing budget.
func TestParallelGroupByMixedKeyBatches(t *testing.T) {
	const n = 3000
	ids := make([]int64, n)
	nulls := make([]bool, n)
	vs := make([]float64, n)
	for i := range ids {
		ids[i] = int64(i % 97)
		nulls[i] = i >= 1100 && i < 1250 // only some chunks see a null key
		vs[i] = float64(i) / 8
	}
	catalog := NewMapCatalog(map[string]*dataset.Table{
		"mixed": dataset.MustNewTable("mixed",
			dataset.IntColumn("id", ids, nulls),
			dataset.FloatColumn("v", vs, nil),
		),
	})
	const query = "SELECT id, SUM(v) AS sv, COUNT(*) AS c FROM mixed GROUP BY id ORDER BY id"
	for _, workers := range []int{2, 4} {
		runParallelVsSerial(t, catalog, query, StreamOptions{ChunkRows: 256}, workers)
		runParallelVsSerial(t, catalog, query, StreamOptions{
			ChunkRows: 256, MaxBufferedRows: 40, SpillDir: t.TempDir(),
		}, workers)
	}
}
