package sqlengine

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"datachat/internal/dataset"
)

// This file implements the disk spill layer for pipeline breakers. When a
// sort or a group-by partition exceeds the MaxBufferedRows budget, its
// buffered state is written as a run of gob-encoded records to a temp file
// and merged back streaming, so the budget bounds memory without killing the
// query — BudgetError becomes the fallback of last resort (it still fires
// when spilling is disabled, or for operators that cannot spill, like join
// build sides and DISTINCT seen-sets). Every temp file is tracked on the
// stream and removed when its reader is exhausted or the stream closes, so
// errors and cancellation leave no files behind.

// SpillStats reports the disk traffic of one stream (or an aggregate of
// streams): how many runs were written, and how many rows/bytes they held.
type SpillStats struct {
	Runs         int   `json:"runs"`
	SpilledRows  int   `json:"spilled_rows"`
	SpilledBytes int64 `json:"spilled_bytes"`
}

// spillRec is the one on-disk record shape all spill users share. Sort runs
// store projected values in A and sort keys in B; group-by row runs store
// aggregate arguments in A, the representative source row in B, and the
// encoded group key in Key; group-by state runs store finalized aggregate
// values in A and the representative row in B. Seq/Row stamp the record's
// original (chunk, row) position so first-seen order survives the disk trip.
type spillRec struct {
	Seq int
	Row int
	Key []byte
	A   []dataset.Value
	B   []dataset.Value
}

// spillWriter streams records into one temp-file run.
type spillWriter struct {
	se   *streamExec
	f    *os.File
	bw   *bufio.Writer
	enc  *gob.Encoder
	rows int
}

func (se *streamExec) newSpillWriter(kind string) (*spillWriter, error) {
	f, err := os.CreateTemp(se.opts.SpillDir, "dcspill-"+kind+"-*.run")
	if err != nil {
		return nil, fmt.Errorf("sql: creating spill file: %w", err)
	}
	se.trackSpillFile(f.Name())
	bw := bufio.NewWriterSize(f, 1<<16)
	return &spillWriter{se: se, f: f, bw: bw, enc: gob.NewEncoder(bw)}, nil
}

func (w *spillWriter) write(rec *spillRec) error {
	w.rows++
	if err := w.enc.Encode(rec); err != nil {
		return fmt.Errorf("sql: writing spill run: %w", err)
	}
	return nil
}

// finish flushes the run, records its stats, and returns a handle for
// reading it back. The writer is dead afterwards.
func (w *spillWriter) finish() (*spillRun, error) {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return nil, fmt.Errorf("sql: flushing spill run: %w", err)
	}
	info, err := w.f.Stat()
	if err != nil {
		w.f.Close()
		return nil, fmt.Errorf("sql: sizing spill run: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return nil, fmt.Errorf("sql: closing spill run: %w", err)
	}
	w.se.noteSpillRun(w.rows, info.Size())
	return &spillRun{se: w.se, path: w.f.Name(), rows: w.rows}, nil
}

// abort discards a half-written run.
func (w *spillWriter) abort() {
	w.f.Close()
	w.se.removeSpillFile(w.f.Name())
}

// spillRun is one finished on-disk run.
type spillRun struct {
	se   *streamExec
	path string
	rows int
}

func (r *spillRun) open() (*spillReader, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, fmt.Errorf("sql: opening spill run: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	return &spillReader{run: r, f: f, dec: gob.NewDecoder(br)}, nil
}

// remove deletes the run's file; safe to call more than once.
func (r *spillRun) remove() { r.se.removeSpillFile(r.path) }

// spillReader streams a run's records back in write order.
type spillReader struct {
	run *spillRun
	f   *os.File
	dec *gob.Decoder
}

// next returns the following record, or nil at end of run.
func (r *spillReader) next() (*spillRec, error) {
	rec := &spillRec{}
	if err := r.dec.Decode(rec); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, fmt.Errorf("sql: reading spill run: %w", err)
	}
	return rec, nil
}

// close releases the reader and deletes the underlying file — a run is read
// exactly once.
func (r *spillReader) close() {
	r.f.Close()
	r.run.remove()
}

// ---------------------------------------------------------------------------
// External sorter: sorted in-memory runs that spill to disk under budget
// pressure and merge back streaming.

// sortedSource is one run in the final merge: in-memory or on disk. Rows
// within a source are already in output order; across sources ties are
// broken by startSeq, which reproduces a global stable sort because every
// source covers a contiguous, disjoint range of input sequence numbers.
type sortedSource interface {
	head() (vals, keys []dataset.Value, ok bool, err error)
	pop() error
	startSeq() int
	dispose()
}

// memSortRun is one input chunk sorted stably by its keys.
type memSortRun struct {
	seq   int
	vals  [][]dataset.Value
	keys  [][]dataset.Value
	order []int
	pos   int
}

func (r *memSortRun) head() ([]dataset.Value, []dataset.Value, bool, error) {
	if r.pos >= len(r.order) {
		return nil, nil, false, nil
	}
	i := r.order[r.pos]
	return r.vals[i], r.keys[i], true, nil
}

func (r *memSortRun) pop() error    { r.pos++; return nil }
func (r *memSortRun) startSeq() int { return r.seq }
func (r *memSortRun) dispose()      {}

// diskSortRun reads a merged run back from disk with one-record lookahead.
type diskSortRun struct {
	seq int
	rd  *spillReader
	cur *spillRec
	eof bool
}

func (r *diskSortRun) fill() error {
	if r.cur != nil || r.eof {
		return nil
	}
	rec, err := r.rd.next()
	if err != nil {
		return err
	}
	if rec == nil {
		r.eof = true
		r.rd.close()
		return nil
	}
	r.cur = rec
	return nil
}

func (r *diskSortRun) head() ([]dataset.Value, []dataset.Value, bool, error) {
	if err := r.fill(); err != nil {
		return nil, nil, false, err
	}
	if r.eof {
		return nil, nil, false, nil
	}
	return r.cur.A, r.cur.B, true, nil
}

func (r *diskSortRun) pop() error    { r.cur = nil; return nil }
func (r *diskSortRun) startSeq() int { return r.seq }
func (r *diskSortRun) dispose() {
	if !r.eof {
		r.rd.close()
		r.eof = true
	}
}

// extSorter accumulates sorted runs under the memory budget, merging the
// buffered runs into an on-disk run whenever the budget would overflow (if
// spilling is enabled; otherwise the overflow surfaces as BudgetError).
type extSorter struct {
	se      *streamExec
	op      string
	orderBy []OrderItem
	mem     []*memSortRun
	disk    []*diskSortRun
	total   int // rows across mem runs, the budget charge
}

func newExtSorter(se *streamExec, op string, orderBy []OrderItem) *extSorter {
	return &extSorter{se: se, op: op, orderBy: orderBy}
}

func (s *extSorter) lessKeys(a, b []dataset.Value) bool {
	for k, o := range s.orderBy {
		cmp := dataset.Compare(a[k], b[k])
		if cmp == 0 {
			continue
		}
		if o.Desc {
			return cmp > 0
		}
		return cmp < 0
	}
	return false
}

// addRun ingests one chunk's rows (in input order) as sequence seq. Rows are
// sorted stably within the run — order may carry a precomputed stable sort
// (from a pipeline worker); nil means sort here. Budget overflow triggers a
// spill of the buffered runs (or BudgetError when spilling is off).
func (s *extSorter) addRun(seq int, vals, keys [][]dataset.Value, order []int) error {
	n := len(vals)
	if n == 0 {
		return nil
	}
	r := &memSortRun{seq: seq, vals: vals, keys: keys, order: order}
	if r.order == nil {
		r.order = sortIndexes(n, s.orderBy, func(row, k int) dataset.Value { return keys[row][k] })
	}
	if !s.se.tryBuffer(s.op, s.total+n) {
		if !s.se.spillEnabled() {
			return s.se.buffer(s.op, s.total+n) // surfaces the typed BudgetError
		}
		if err := s.spillMemRuns(); err != nil {
			return err
		}
		if !s.se.tryBuffer(s.op, n) {
			// One chunk alone exceeds the budget: write it straight to disk
			// as its own run rather than failing.
			s.mem = append(s.mem, r)
			s.total = n
			return s.spillMemRuns()
		}
	}
	s.mem = append(s.mem, r)
	s.total += n
	return nil
}

// spillMemRuns merges every buffered in-memory run (a contiguous sequence
// range) into one on-disk run and resets the budget charge.
func (s *extSorter) spillMemRuns() error {
	if len(s.mem) == 0 {
		return nil
	}
	w, err := s.se.newSpillWriter(s.op)
	if err != nil {
		return err
	}
	srcs := make([]sortedSource, len(s.mem))
	startSeq := s.mem[0].seq
	for i, r := range s.mem {
		if r.seq < startSeq {
			startSeq = r.seq
		}
		srcs[i] = r
	}
	for {
		vals, keys, ok, err := s.mergeStep(srcs)
		if err != nil {
			w.abort()
			return err
		}
		if !ok {
			break
		}
		if err := w.write(&spillRec{Seq: startSeq, A: vals, B: keys}); err != nil {
			w.abort()
			return err
		}
	}
	run, err := w.finish()
	if err != nil {
		return err
	}
	rd, err := run.open()
	if err != nil {
		return err
	}
	s.disk = append(s.disk, &diskSortRun{seq: startSeq, rd: rd})
	s.mem = nil
	s.total = 0
	return s.se.buffer(s.op, 0)
}

// mergeStep pops the globally-least row across sources. Strictly-less
// replacement with the earliest startSeq winning ties preserves input order
// the way a global stable sort does.
func (s *extSorter) mergeStep(srcs []sortedSource) ([]dataset.Value, []dataset.Value, bool, error) {
	best := -1
	var bestKeys []dataset.Value
	for i, src := range srcs {
		_, keys, ok, err := src.head()
		if err != nil {
			return nil, nil, false, err
		}
		if !ok {
			continue
		}
		if best < 0 || s.lessKeys(keys, bestKeys) ||
			(!s.lessKeys(bestKeys, keys) && srcs[i].startSeq() < srcs[best].startSeq()) {
			best, bestKeys = i, keys
		}
	}
	if best < 0 {
		return nil, nil, false, nil
	}
	vals, keys, _, err := srcs[best].head()
	if err != nil {
		return nil, nil, false, err
	}
	if err := srcs[best].pop(); err != nil {
		return nil, nil, false, err
	}
	return vals, keys, true, nil
}

// sources returns the final merge set: disk runs plus surviving mem runs.
func (s *extSorter) sources() []sortedSource {
	srcs := make([]sortedSource, 0, len(s.disk)+len(s.mem))
	for _, d := range s.disk {
		srcs = append(srcs, d)
	}
	for _, m := range s.mem {
		srcs = append(srcs, m)
	}
	return srcs
}

// dispose releases any unread disk runs (early stream termination).
func (s *extSorter) dispose() {
	for _, d := range s.disk {
		d.dispose()
	}
}
