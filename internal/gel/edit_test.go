package gel

import (
	"testing"

	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/skills"
)

func editFixture(t *testing.T) *Runner {
	t.Helper()
	ctx := skills.NewContext()
	ctx.Datasets["d"] = dataset.MustNewTable("d",
		dataset.IntColumn("x", []int64{1, 2, 3, 4, 5, 6}, nil))
	executor := dag.NewExecutor(reg, ctx)
	return NewRunner(MustNewParser(reg), executor, []string{
		"Use the dataset d",
		"Keep the rows where x > 2",
		"Limit the data to 2 rows",
		"Count the rows",
	})
}

func TestEditLineRerunsFromEdit(t *testing.T) {
	r := editFixture(t)
	steps, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	c, _ := steps[3].Result.Table.Column("rows")
	if c.Value(0).I != 2 {
		t.Fatalf("initial count = %v", c.Value(0))
	}
	// Edit the filter: everything after it re-executes.
	if err := r.EditLine(1, "Keep the rows where x > 4"); err != nil {
		t.Fatal(err)
	}
	if r.PC() != 1 {
		t.Errorf("pc after edit = %d, want 1", r.PC())
	}
	all := r.Steps()
	if all[1].State != StepPending || all[3].State != StepPending {
		t.Error("edited suffix not reset to pending")
	}
	if all[0].State != StepDone {
		t.Error("prefix should stay executed")
	}
	steps2, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	// x > 4 leaves {5, 6}; limit 2 keeps both; count = 2 — but the filter
	// now has different content, verify through the limit step rows.
	if steps2[0].Result.Table.NumRows() != 2 {
		t.Errorf("edited filter rows = %d", steps2[0].Result.Table.NumRows())
	}
	vals, _ := steps2[0].Result.Table.Column("x")
	if vals.Value(0).I != 5 {
		t.Errorf("edited filter first value = %v", vals.Value(0))
	}
}

func TestEditLineBeforePC(t *testing.T) {
	r := editFixture(t)
	// Execute only the first two lines.
	if _, err := r.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Step(); err != nil {
		t.Fatal(err)
	}
	// Edit line 0 (before the pc): the prefix replays from scratch.
	if err := r.EditLine(0, "Use the dataset d"); err != nil {
		t.Fatal(err)
	}
	if r.PC() != 0 {
		t.Errorf("pc = %d", r.PC())
	}
	if _, err := r.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestEditLineErrors(t *testing.T) {
	r := editFixture(t)
	if err := r.EditLine(99, "x"); err == nil {
		t.Error("out-of-range edit should fail")
	}
	// Editing a line to invalid GEL surfaces on the next run, not at edit.
	if err := r.EditLine(1, "gibberish sentence"); err != nil {
		t.Fatalf("edit itself should succeed: %v", err)
	}
	if _, err := r.RunAll(); err == nil {
		t.Error("running an invalid edited line should fail")
	}
}
