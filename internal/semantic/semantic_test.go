package semantic

import (
	"strings"
	"testing"
)

func salesLayer(t *testing.T) *Layer {
	t.Helper()
	l := NewLayer()
	defs := []Concept{
		{Name: "successful purchases", Kind: Filter,
			Expansion: "PurchaseStatus = 'Successful'", Table: "sales",
			Keywords: []string{"succeeded"}, Doc: "orders that completed"},
		{Name: "revenue", Kind: Metric,
			Expansion: "SUM(price * (1 - discount))", Table: "sales",
			Doc: "net revenue"},
		{Name: "pay", Kind: Synonym, Expansion: "salary"},
		{Name: "region rollup", Kind: Hierarchy, Expansion: "country > state > city"},
	}
	for _, c := range defs {
		if err := l.Define(c); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestDefineAndLookup(t *testing.T) {
	l := salesLayer(t)
	if l.Len() != 4 {
		t.Errorf("len = %d", l.Len())
	}
	c, ok := l.Lookup("Revenue")
	if !ok || c.Kind != Metric {
		t.Errorf("lookup = %+v, %v", c, ok)
	}
	// Redefining replaces in place.
	if err := l.Define(Concept{Name: "revenue", Kind: Metric, Expansion: "SUM(price)"}); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 4 {
		t.Errorf("redefine should not grow: %d", l.Len())
	}
	c, _ = l.Lookup("revenue")
	if c.Expansion != "SUM(price)" {
		t.Errorf("expansion = %s", c.Expansion)
	}
	if err := l.Define(Concept{Name: "", Expansion: "x"}); err == nil {
		t.Error("empty name should fail")
	}
	if err := l.Define(Concept{Name: "x"}); err == nil {
		t.Error("empty expansion should fail")
	}
}

func TestTokens(t *testing.T) {
	got := Tokens("How many purchases were Successful in the month of April?")
	want := []string{"purchases", "successful", "month", "april"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tokens = %v, want %v", got, want)
		}
	}
	// Identifier splitting.
	got = Tokens("PurchaseStatus party_age")
	if len(got) != 4 || got[0] != "purchase" || got[3] != "age" {
		t.Errorf("identifier tokens = %v", got)
	}
}

func TestRetrieveRanksPhraseHitsFirst(t *testing.T) {
	l := salesLayer(t)
	got := l.Retrieve("How many successful purchases were there in April", 2)
	if len(got) == 0 || got[0].Concept.Name != "successful purchases" {
		t.Fatalf("retrieve = %+v", got)
	}
	// The paper's motivating example: the SL bridges the phrase to the
	// predicate the LLM cannot infer from the schema alone.
	if !strings.Contains(got[0].Concept.Expansion, "PurchaseStatus = 'Successful'") {
		t.Errorf("expansion = %s", got[0].Concept.Expansion)
	}
	if none := l.Retrieve("completely unrelated text", 5); len(none) != 0 {
		t.Errorf("unrelated query retrieved %v", none)
	}
	// Keywords trigger too.
	got = l.Retrieve("which orders succeeded", 5)
	if len(got) == 0 || got[0].Concept.Name != "successful purchases" {
		t.Errorf("keyword retrieval = %+v", got)
	}
}

func TestRetrieveLimit(t *testing.T) {
	l := salesLayer(t)
	got := l.Retrieve("revenue from successful purchases by pay", 1)
	if len(got) != 1 {
		t.Errorf("limit ignored: %d", len(got))
	}
}

func TestPromptSnippetsRespectBudget(t *testing.T) {
	l := salesLayer(t)
	all := l.PromptSnippets("revenue from successful purchases", 1000)
	if len(all) < 2 {
		t.Fatalf("snippets = %v", all)
	}
	small := l.PromptSnippets("revenue from successful purchases", 8)
	if len(small) >= len(all) {
		t.Errorf("budget not enforced: %d vs %d", len(small), len(all))
	}
	if len(l.PromptSnippets("revenue", 0)) != 0 {
		t.Error("zero budget should yield nothing")
	}
}

func TestResolveToken(t *testing.T) {
	l := salesLayer(t)
	if got, ok := l.ResolveToken("pay"); !ok || got != "salary" {
		t.Errorf("resolve pay = %s, %v", got, ok)
	}
	if _, ok := l.ResolveToken("unknown"); ok {
		t.Error("unknown token should not resolve")
	}
}
