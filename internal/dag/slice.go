package dag

import (
	"datachat/internal/skills"
)

// SliceReport describes what slicing removed and merged.
type SliceReport struct {
	// NodesBefore and NodesAfter are the graph sizes around slicing.
	NodesBefore, NodesAfter int
	// Pruned counts nodes removed because the artifact does not depend on
	// them; Merged counts adjacent nodes folded into one.
	Pruned, Merged int
}

// Slice reduces a graph to the recipe of one target node (§2.3, Figure 5):
// every node the target does not depend on is pruned, and adjacent steps
// that a single skill call can represent are merged — consecutive KeepRows
// become one AND-ed filter, consecutive LimitRows keep the minimum, and a
// KeepColumns directly after another KeepColumns wins outright.
func Slice(g *Graph, target NodeID) (*Graph, SliceReport, error) {
	report := SliceReport{NodesBefore: g.Len()}
	needed, err := g.Ancestors(target)
	if err != nil {
		return nil, report, err
	}
	report.Pruned = g.Len() - len(needed)

	// Copy the needed nodes in topological order.
	type pending struct {
		inv     skills.Invocation
		parents []NodeID // old IDs
		oldID   NodeID
	}
	var steps []pending
	for _, id := range needed {
		n := g.nodes[id]
		steps = append(steps, pending{inv: n.Inv, parents: append([]NodeID{}, n.Parents...), oldID: id})
	}

	// Merge adjacent mergeable pairs: child directly after its only parent
	// in the linear ancestry. Iterate until a fixed point.
	consumerCount := map[NodeID]int{}
	for _, s := range steps {
		for _, p := range s.parents {
			if p >= 0 {
				consumerCount[p]++
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 1; i < len(steps); i++ {
			child := steps[i]
			if len(child.parents) != 1 || child.parents[0] < 0 {
				continue
			}
			// Find the parent step.
			pi := -1
			for j := range steps {
				if steps[j].oldID == child.parents[0] {
					pi = j
					break
				}
			}
			if pi < 0 || consumerCount[steps[pi].oldID] != 1 {
				continue
			}
			merged, ok := mergeInvocations(steps[pi].inv, child.inv)
			if !ok {
				continue
			}
			// The merged node replaces the child, inheriting the parent's
			// parents; drop the parent.
			merged.Output = child.inv.Output
			merged.Inputs = steps[pi].inv.Inputs
			steps[i] = pending{inv: merged, parents: steps[pi].parents, oldID: child.oldID}
			steps = append(steps[:pi], steps[pi+1:]...)
			report.Merged++
			changed = true
			break
		}
	}

	// Rebuild a fresh graph, remapping parent IDs to new IDs.
	out := NewGraph()
	idMap := map[NodeID]NodeID{}
	for _, s := range steps {
		inv := s.inv
		// Inputs that referenced pruned/merged nodes by generated names keep
		// working because output names are preserved via idMap rebuild below.
		newID := out.Add(inv)
		idMap[s.oldID] = newID
		// Fix parent wiring explicitly (Add matched by output name; enforce
		// the recorded parents instead).
		node := out.nodes[newID]
		node.Parents = node.Parents[:0]
		for _, p := range s.parents {
			if p < 0 {
				node.Parents = append(node.Parents, -1)
			} else {
				node.Parents = append(node.Parents, idMap[p])
			}
		}
	}
	report.NodesAfter = out.Len()
	return out, report, nil
}

// mergeInvocations folds child into parent when one skill call can express
// both, returning the combined invocation.
func mergeInvocations(parent, child skills.Invocation) (skills.Invocation, bool) {
	if parent.Skill != child.Skill {
		return skills.Invocation{}, false
	}
	switch parent.Skill {
	case "KeepRows":
		p, err1 := parent.Args.String("condition")
		c, err2 := child.Args.String("condition")
		if err1 != nil || err2 != nil {
			return skills.Invocation{}, false
		}
		return skills.Invocation{
			Skill: "KeepRows",
			Args:  skills.Args{"condition": "(" + p + ") AND (" + c + ")"},
		}, true
	case "LimitRows":
		p, err1 := parent.Args.Int("count")
		c, err2 := child.Args.Int("count")
		if err1 != nil || err2 != nil {
			return skills.Invocation{}, false
		}
		if c < p {
			p = c
		}
		return skills.Invocation{Skill: "LimitRows", Args: skills.Args{"count": p}}, true
	case "KeepColumns":
		// The later projection must be a subset of the earlier one to have
		// executed at all, so it wins.
		cols, err := child.Args.StringList("columns")
		if err != nil {
			return skills.Invocation{}, false
		}
		return skills.Invocation{Skill: "KeepColumns", Args: skills.Args{"columns": cols}}, true
	default:
		return skills.Invocation{}, false
	}
}

// IsLinear reports whether the graph is a simple chain: every node has at
// most one parent and at most one consumer. Sliced recipes for single
// artifacts typically are (Figure 5's "simple linear" result).
func IsLinear(g *Graph) bool {
	consumerCount := map[NodeID]int{}
	for _, id := range g.order {
		n := g.nodes[id]
		realParents := 0
		for _, p := range n.Parents {
			if p >= 0 {
				realParents++
				consumerCount[p]++
			}
		}
		if realParents > 1 {
			return false
		}
	}
	for _, c := range consumerCount {
		if c > 1 {
			return false
		}
	}
	return true
}
