package pyapi

import (
	"strings"
	"testing"

	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/skills"
)

var reg = skills.NewRegistry()

func TestParseComputeCall(t *testing.T) {
	// The paper's Figure 3b example.
	src := `california_car_collisions.compute(aggregates = [Count("case_id")], for_each = ["party_sobriety"])`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stmt := prog.Statements[0]
	if stmt.Receiver != "california_car_collisions" || stmt.Method != "compute" {
		t.Errorf("stmt = %+v", stmt)
	}
	invs, err := NewTranslator(reg).Invocations(prog)
	if err != nil {
		t.Fatal(err)
	}
	if invs[0].Skill != "Compute" {
		t.Errorf("skill = %s", invs[0].Skill)
	}
	aggs, err := invs[0].Args.AggSpecs("aggregates")
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].Func != "count" || aggs[0].Column != "case_id" {
		t.Errorf("agg = %+v", aggs[0])
	}
	keys, _ := invs[0].Args.StringList("for_each")
	if len(keys) != 1 || keys[0] != "party_sobriety" {
		t.Errorf("for_each = %v", keys)
	}
}

func TestParseMultiStatementProgram(t *testing.T) {
	src := `
# load and filter
adults = people.keep_rows(condition = "age >= 18")
top = adults.sort_rows(columns = ["age"], descending = True)
top.limit_rows(count = 5)
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Statements) != 3 {
		t.Fatalf("statements = %d", len(prog.Statements))
	}
	invs, err := NewTranslator(reg).Invocations(prog)
	if err != nil {
		t.Fatal(err)
	}
	if invs[0].Output != "adults" || invs[1].Inputs[0] != "adults" {
		t.Errorf("dataflow wrong: %+v", invs[:2])
	}
	if !invs[1].Args.Bool("descending") {
		t.Error("bool kwarg lost")
	}
	if n, _ := invs[2].Args.Int("count"); n != 5 {
		t.Error("int kwarg lost")
	}
}

func TestParseValueKinds(t *testing.T) {
	src := `d.new_column(name = 'x', formula = "a + 1.5")
d.sample_rows(fraction = 0.25)
d.limit_rows(count = -3)
d.keep_columns(columns = [])
dc.list_datasets()`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Statements[0].Kwargs["name"] != "x" {
		t.Error("single-quoted string")
	}
	if prog.Statements[1].Kwargs["fraction"] != 0.25 {
		t.Error("float kwarg")
	}
	if prog.Statements[2].Kwargs["count"] != -3 {
		t.Error("negative int kwarg")
	}
	invs, err := NewTranslator(reg).Invocations(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs[4].Inputs) != 0 {
		t.Error("dc receiver should have no inputs")
	}
}

func TestParseAggregateCtors(t *testing.T) {
	src := `d.compute(aggregates = [Average('Age'), Median('Salary'), Sum("x", as_name="total")], for_each = ['JobLevel'])`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	invs, err := NewTranslator(reg).Invocations(prog)
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := invs[0].Args.AggSpecs("aggregates")
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].Func != "avg" || aggs[1].Func != "median" || aggs[2].As != "total" {
		t.Errorf("aggs = %+v", aggs)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"just some words",
		"d.method(",
		"d.method(x = )",
		"d.method(x = 'unterminated)",
		"d.method(x = Frobnicate('y'))",
		"d.method(x = 1) trailing",
		"d.(x = 1)",
		"d.compute(aggregates = [Count()])",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
	// Unknown method caught at translation.
	prog, err := Parse("d.frobnicate(x = 1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTranslator(reg).Invocations(prog); err == nil {
		t.Error("unknown method should fail translation")
	}
}

func TestWithDatasets(t *testing.T) {
	src := `merged = a.concatenate(with_datasets = [b], dedupe = True)`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	invs, err := NewTranslator(reg).Invocations(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs[0].Inputs) != 2 || invs[0].Inputs[1] != "b" {
		t.Errorf("inputs = %v", invs[0].Inputs)
	}
}

func TestRoundTripRenderParse(t *testing.T) {
	invs := []skills.Invocation{
		{Skill: "KeepRows", Inputs: []string{"people"}, Output: "adults",
			Args: skills.Args{"condition": "age >= 18"}},
		{Skill: "Compute", Inputs: []string{"adults"},
			Args: skills.Args{"aggregates": []string{"count of id as n"}, "for_each": []string{"dept"}}},
	}
	tr := NewTranslator(reg)
	code, err := tr.Render(invs)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Parse(code)
	if err != nil {
		t.Fatalf("reparse of rendered code %q: %v", code, err)
	}
	back, err := tr.Invocations(prog)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Skill != "KeepRows" || back[0].Output != "adults" {
		t.Errorf("round trip inv 0 = %+v", back[0])
	}
	if back[1].Skill != "Compute" {
		t.Errorf("round trip inv 1 = %+v", back[1])
	}
	aggs, err := back[1].Args.AggSpecs("aggregates")
	if err != nil || aggs[0].As != "n" {
		t.Errorf("aggs after round trip = %+v, %v", aggs, err)
	}
}

func TestProgramExecutesThroughDAG(t *testing.T) {
	ctx := skills.NewContext()
	ctx.Datasets["people"] = dataset.MustNewTable("people",
		dataset.IntColumn("age", []int64{10, 20, 30, 40}, nil),
		dataset.StringColumn("dept", []string{"a", "a", "b", "b"}, nil),
	)
	src := `adults = people.keep_rows(condition = "age >= 20")
summary = adults.compute(aggregates = [Count("age", as_name="n")], for_each = ["dept"])`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	invs, err := NewTranslator(reg).Invocations(prog)
	if err != nil {
		t.Fatal(err)
	}
	g := dag.NewGraph()
	var last dag.NodeID
	for _, inv := range invs {
		last = g.Add(inv)
	}
	res, err := dag.NewExecutor(reg, ctx).Run(g, last)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 2 {
		t.Errorf("groups = %d", res.Table.NumRows())
	}
	if !strings.Contains(strings.Join(res.Table.ColumnNames(), ","), "n") {
		t.Errorf("columns = %v", res.Table.ColumnNames())
	}
}
