// Package datachat is the public API of this reproduction of "DataChat: An
// Intuitive and Collaborative Data Analytics Platform" (SIGMOD-Companion
// '23). It re-exports the platform façade and the key types a downstream
// user needs: tables, skills, sessions, artifacts, recipes, GEL, the
// NL2Code system, and the cloud/snapshot cost substrates.
//
// Quickstart:
//
//	p := datachat.New()
//	p.RegisterFile("people.csv", csvContent)
//	s, _ := p.CreateSession("analysis", "ann")
//	res, _ := p.RequestGEL("analysis", "ann", "Load data from the file people.csv", "")
//	fmt.Println(res.Table)
//
// See the examples/ directory for runnable end-to-end scenarios, DESIGN.md
// for the system inventory, and EXPERIMENTS.md for the reproduced
// evaluation.
package datachat

import (
	"datachat/internal/artifact"
	"datachat/internal/cloud"
	"datachat/internal/core"
	"datachat/internal/dag"
	"datachat/internal/dataset"
	"datachat/internal/gel"
	"datachat/internal/ml"
	"datachat/internal/nl2code"
	"datachat/internal/phrase"
	"datachat/internal/plan"
	"datachat/internal/recipe"
	"datachat/internal/semantic"
	"datachat/internal/session"
	"datachat/internal/skills"
	"datachat/internal/snapshot"
	"datachat/internal/viz"
)

// Platform is the assembled DataChat system: sessions, skills, artifacts,
// boards, semantic layer, GEL, phrase translation, and NL2Code.
type Platform = core.Platform

// New creates an empty platform.
func New() *Platform { return core.New() }

// Core data types.
type (
	// Table is the columnar dataset every skill consumes and produces.
	Table = dataset.Table
	// Column is one typed column with a null mask.
	Column = dataset.Column
	// Value is a dynamically typed scalar cell.
	Value = dataset.Value
)

// Skill layer types.
type (
	// Invocation is a discrete parameterized skill request — the common
	// form UI gestures, Python API calls, and GEL sentences reduce to.
	Invocation = skills.Invocation
	// Args carries an invocation's parameters.
	Args = skills.Args
	// Registry is the installed skill set (~50 skills).
	Registry = skills.Registry
	// Result is a skill execution's output.
	Result = skills.Result
	// Context is the execution environment skills run in.
	Context = skills.Context
)

// NewRegistry returns a registry with every built-in skill installed.
func NewRegistry() *Registry { return skills.NewRegistry() }

// NewContext returns an empty skill execution context.
func NewContext() *Context { return skills.NewContext() }

// Execution and provenance types.
type (
	// Graph is a lazy DAG of skill requests (§2.2).
	Graph = dag.Graph
	// Executor compiles and runs DAGs, consolidating relational chains
	// into single SQL queries and caching shared sub-DAGs.
	Executor = dag.Executor
	// Recipe is a serialized skill DAG: every artifact carries one (§2.3).
	Recipe = recipe.Recipe
	// Artifact is a persisted result with its recipe.
	Artifact = artifact.Artifact
	// ArtifactStore holds artifacts with permissions and secret links.
	ArtifactStore = artifact.Store
	// Session is a collaborative workspace with a session-level lock.
	Session = session.Session
	// InsightsBoard is the poster-style presentation surface (§2.4).
	InsightsBoard = session.InsightsBoard
	// Explain is the EXPLAIN report for a compiled logical plan: the pass
	// pipeline's decisions (fusion, consolidation, pushdown, cache state)
	// without executing anything (DESIGN.md §9).
	Explain = plan.Explain
	// ExplainNode is one plan node in an EXPLAIN report.
	ExplainNode = plan.ExplainNode
)

// DecodeExplain parses an EXPLAIN report from its JSON encoding.
func DecodeExplain(data []byte) (*Explain, error) { return plan.DecodeExplain(data) }

// NewGraph returns an empty skill DAG.
func NewGraph() *Graph { return dag.NewGraph() }

// NewExecutor returns an executor with consolidation and caching enabled.
func NewExecutor(reg *Registry, ctx *Context) *Executor { return dag.NewExecutor(reg, ctx) }

// Slice reduces a graph to one artifact's recipe (§2.3, Figure 5).
func Slice(g *Graph, target dag.NodeID) (*Graph, dag.SliceReport, error) {
	return dag.Slice(g, target)
}

// Language layer types.
type (
	// GELParser parses Guided English Language sentences.
	GELParser = gel.Parser
	// GELRunner is the IDE-like recipe stepper with breakpoints (Figure 2a).
	GELRunner = gel.Runner
	// PhraseTranslator is the deterministic §4.8 Visualize translator.
	PhraseTranslator = phrase.Translator
	// SemanticLayer holds domain concepts for prompts and phrases (§4.2).
	SemanticLayer = semantic.Layer
	// Concept is one semantic-layer entry.
	Concept = semantic.Concept
)

// NewGELParser compiles the GEL grammar over a registry.
func NewGELParser(reg *Registry) *GELParser { return gel.MustNewParser(reg) }

// NewGELRunner prepares a recipe stepper over GEL lines.
func NewGELRunner(parser *GELParser, executor *Executor, lines []string) *GELRunner {
	return gel.NewRunner(parser, executor, lines)
}

// NewSemanticLayer returns an empty semantic layer.
func NewSemanticLayer() *SemanticLayer { return semantic.NewLayer() }

// NL2Code types (§4).
type (
	// NL2CodeSystem is the Figure 6 pipeline: retrieval, prompt composer,
	// generator, checker.
	NL2CodeSystem = nl2code.System
	// NL2CodeRequest is one English analytics request.
	NL2CodeRequest = nl2code.Request
	// NL2CodeResponse carries every pipeline stage's output.
	NL2CodeResponse = nl2code.Response
	// ExampleLibrary is the few-shot example repository (§4.3).
	ExampleLibrary = nl2code.Library
	// LibraryExample is one question/solution pair.
	LibraryExample = nl2code.LibraryExample
)

// NewNL2CodeSystem builds an NL2Code system over a registry and library.
func NewNL2CodeSystem(reg *Registry, lib *ExampleLibrary) *NL2CodeSystem {
	return nl2code.NewSystem(reg, lib)
}

// NewExampleLibrary builds an example library.
func NewExampleLibrary(examples []*LibraryExample) *ExampleLibrary {
	return nl2code.NewLibrary(examples)
}

// Cost substrates (§3).
type (
	// CloudDatabase is the consumption-priced warehouse simulator.
	CloudDatabase = cloud.Database
	// CloudPricing is a consumption pricing plan.
	CloudPricing = cloud.Pricing
	// SnapshotStore is the fixed-cost local snapshot cache.
	SnapshotStore = snapshot.Store
)

// NewCloudDatabase creates a simulated cloud database.
func NewCloudDatabase(name string, pricing CloudPricing, blockRows int) *CloudDatabase {
	return cloud.NewDatabase(name, pricing, blockRows)
}

// DefaultCloudPricing matches common on-demand warehouse pricing.
var DefaultCloudPricing = cloud.DefaultPricing

// NewSnapshotStore creates a snapshot store with the given fixed monthly cost.
func NewSnapshotStore(monthlyCost float64) *SnapshotStore {
	return snapshot.NewStore(monthlyCost)
}

// ML and charting types.
type (
	// Model is a trained predictor.
	Model = ml.Model
	// Chart is a built chart; render it with RenderChart.
	Chart = viz.Chart
	// ChartSpec declares a chart over table columns.
	ChartSpec = viz.Spec
)

// BuildChart binds a chart spec to a table.
func BuildChart(t *Table, spec ChartSpec) (*Chart, error) { return viz.Build(t, spec) }

// RenderChart draws a chart as terminal text.
func RenderChart(c *Chart) string { return viz.Render(c) }

// ReadCSV parses CSV with type inference into a table.
func ReadCSV(name, data string) (*Table, error) { return dataset.ReadCSVString(name, data) }
