package dataset

import (
	"fmt"
	"math"
	"strings"
)

// Table is an ordered collection of equal-length columns: the unit of data
// that skills consume and produce. Tables are immutable by convention — all
// transforms return new tables that may share column storage.
type Table struct {
	name   string
	cols   []*Column
	byName map[string]int
}

// NewTable builds a table from columns, validating that lengths match and
// names are unique.
func NewTable(name string, cols ...*Column) (*Table, error) {
	t := &Table{name: name, byName: make(map[string]int, len(cols))}
	for _, c := range cols {
		if err := t.addColumn(c); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustNewTable is NewTable for statically known-good inputs; it panics on error.
func MustNewTable(name string, cols ...*Column) *Table {
	t, err := NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Table) addColumn(c *Column) error {
	if _, dup := t.byName[c.Name()]; dup {
		return fmt.Errorf("dataset: duplicate column %q in table %q", c.Name(), t.name)
	}
	if len(t.cols) > 0 && c.Len() != t.cols[0].Len() {
		return fmt.Errorf("dataset: column %q has %d rows, table %q has %d",
			c.Name(), c.Len(), t.name, t.cols[0].Len())
	}
	t.byName[c.Name()] = len(t.cols)
	t.cols = append(t.cols, c)
	return nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// WithName returns a shallow copy of the table under a new name.
func (t *Table) WithName(name string) *Table {
	copied := *t
	copied.name = name
	return &copied
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Columns returns the columns in order. Callers must not mutate the slice.
func (t *Table) Columns() []*Column { return t.cols }

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.Name()
	}
	return names
}

// Column returns the named column, or an error naming the closest matches.
func (t *Table) Column(name string) (*Column, error) {
	if i, ok := t.byName[name]; ok {
		return t.cols[i], nil
	}
	// Case-insensitive fallback keeps GEL forgiving, as the UI is.
	for i, c := range t.cols {
		if strings.EqualFold(c.Name(), name) {
			return t.cols[i], nil
		}
	}
	return nil, fmt.Errorf("dataset: table %q has no column %q (columns: %s)",
		t.name, name, strings.Join(t.ColumnNames(), ", "))
}

// HasColumn reports whether the table has a column with the given name.
func (t *Table) HasColumn(name string) bool {
	_, err := t.Column(name)
	return err == nil
}

// Row returns row i as values in column order.
func (t *Table) Row(i int) []Value {
	row := make([]Value, len(t.cols))
	for j, c := range t.cols {
		row[j] = c.Value(i)
	}
	return row
}

// Select returns a table with only the named columns, in the given order.
func (t *Table) Select(names ...string) (*Table, error) {
	cols := make([]*Column, 0, len(names))
	for _, name := range names {
		c, err := t.Column(name)
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
	}
	return NewTable(t.name, cols...)
}

// Drop returns a table without the named columns.
func (t *Table) Drop(names ...string) (*Table, error) {
	dropped := make(map[string]bool, len(names))
	for _, name := range names {
		if !t.HasColumn(name) {
			return nil, fmt.Errorf("dataset: cannot drop missing column %q", name)
		}
		dropped[strings.ToLower(name)] = true
	}
	kept := make([]*Column, 0, len(t.cols))
	for _, c := range t.cols {
		if !dropped[strings.ToLower(c.Name())] {
			kept = append(kept, c)
		}
	}
	return NewTable(t.name, kept...)
}

// WithColumn returns a table with the column appended (or replaced when a
// column of that name exists).
func (t *Table) WithColumn(c *Column) (*Table, error) {
	if t.NumCols() > 0 && c.Len() != t.NumRows() {
		return nil, fmt.Errorf("dataset: column %q has %d rows, table has %d", c.Name(), c.Len(), t.NumRows())
	}
	cols := make([]*Column, 0, len(t.cols)+1)
	replaced := false
	for _, existing := range t.cols {
		if existing.Name() == c.Name() {
			cols = append(cols, c)
			replaced = true
		} else {
			cols = append(cols, existing)
		}
	}
	if !replaced {
		cols = append(cols, c)
	}
	return NewTable(t.name, cols...)
}

// Take returns a table with the rows at the given indexes, in order.
func (t *Table) Take(idx []int) *Table {
	cols := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.Take(idx)
	}
	return MustNewTable(t.name, cols...)
}

// Slice returns rows [from, to).
func (t *Table) Slice(from, to int) *Table {
	n := t.NumRows()
	if from < 0 {
		from = 0
	}
	if to > n {
		to = n
	}
	if from > to {
		from = to
	}
	idx := make([]int, to-from)
	for i := range idx {
		idx[i] = from + i
	}
	return t.Take(idx)
}

// Head returns the first n rows.
func (t *Table) Head(n int) *Table { return t.Slice(0, n) }

// Window returns rows [from, to) as a zero-copy view: every column is
// windowed in place rather than gathered, so carving a morsel out of a large
// table is O(columns), not O(rows). The view shares storage with the parent.
func (t *Table) Window(from, to int) *Table {
	cols := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.Window(from, to)
	}
	return MustNewTable(t.name, cols...)
}

// SortBy returns a table sorted by the named columns; desc[i] flips the
// order of key i. Missing desc entries default to ascending. The sort is
// stable so earlier orderings survive ties.
func (t *Table) SortBy(keys []string, desc []bool) (*Table, error) {
	if len(keys) == 0 {
		return t, nil
	}
	keyCols := make([]*Column, len(keys))
	for i, k := range keys {
		c, err := t.Column(k)
		if err != nil {
			return nil, err
		}
		keyCols[i] = c
	}
	return t.Take(SortIndex(keyCols, desc)), nil
}

// Concat appends other's rows to t. Columns are matched by name; columns
// missing on either side become null-padded. When dedupe is true, duplicate
// rows (by full-row equality) are removed, keeping first occurrences —
// matching GEL's "Concatenate … remove all duplicates".
func (t *Table) Concat(other *Table, dedupe bool) (*Table, error) {
	names := t.ColumnNames()
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for _, n := range other.ColumnNames() {
		if !seen[n] {
			names = append(names, n)
		}
	}
	cols := make([]*Column, len(names))
	for i, name := range names {
		typ := TypeNull
		if c, err := t.Column(name); err == nil {
			typ = c.Type()
		}
		if c, err := other.Column(name); err == nil {
			typ = CommonType(typ, c.Type())
		}
		out := NewColumn(name, typ)
		appendFrom := func(src *Table) {
			c, err := src.Column(name)
			for r := 0; r < src.NumRows(); r++ {
				if err != nil {
					out.Append(Null)
				} else {
					out.Append(c.Value(r))
				}
			}
		}
		appendFrom(t)
		appendFrom(other)
		cols[i] = out
	}
	merged := MustNewTable(t.name, cols...)
	if !dedupe {
		return merged, nil
	}
	keep := make([]int, 0, merged.NumRows())
	seenRows := make(map[string]bool, merged.NumRows())
	for r := 0; r < merged.NumRows(); r++ {
		key := rowKey(merged.Row(r))
		if !seenRows[key] {
			seenRows[key] = true
			keep = append(keep, r)
		}
	}
	return merged.Take(keep), nil
}

// Distinct returns the table with duplicate rows over the named columns
// removed (all columns when names is empty), keeping first occurrences.
func (t *Table) Distinct(names ...string) (*Table, error) {
	probe := t
	if len(names) > 0 {
		p, err := t.Select(names...)
		if err != nil {
			return nil, err
		}
		probe = p
	}
	keep := make([]int, 0, t.NumRows())
	seen := make(map[string]bool, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		key := rowKey(probe.Row(r))
		if !seen[key] {
			seen[key] = true
			keep = append(keep, r)
		}
	}
	return t.Take(keep), nil
}

func rowKey(row []Value) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.Type.String())
		b.WriteByte(':')
		b.WriteString(v.String())
		b.WriteByte('\x00')
	}
	return b.String()
}

// Fingerprint returns a content hash of the table: schema (column names and
// types, in order) plus every cell value and its null bit. The table name is
// excluded, so renamed shallow copies fingerprint identically. The DAG
// executor folds fingerprints of external inputs into sub-DAG cache keys, so
// a reloaded or refreshed dataset under the same name never serves stale
// cached results. O(cells); callers that look tables up repeatedly should
// memoize (skills.Context does, keyed by table identity).
func (t *Table) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(u uint64) {
		for shift := 0; shift < 64; shift += 8 {
			h ^= (u >> shift) & 0xff
			h *= prime64
		}
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // terminator so "ab","c" != "a","bc"
		h *= prime64
	}
	mix(uint64(t.NumRows()))
	for _, c := range t.cols {
		mixStr(c.Name())
		mix(uint64(c.typ))
		for r := 0; r < c.n; r++ {
			if c.IsNull(r) {
				mix(1)
				continue
			}
			mix(0)
			switch c.typ {
			case TypeInt:
				mix(uint64(c.ints[r]))
			case TypeFloat:
				mix(math.Float64bits(c.fls[r]))
			case TypeString:
				mixStr(c.strs[r])
			case TypeBool:
				if c.bools[r] {
					mix(1)
				} else {
					mix(0)
				}
			case TypeTime:
				mix(uint64(c.times[r]))
			}
		}
	}
	return h
}

// Equal reports whether two tables have identical schemas and cell values.
// Column order matters; table names do not.
func (t *Table) Equal(other *Table) bool {
	if other == nil || t.NumCols() != other.NumCols() || t.NumRows() != other.NumRows() {
		return false
	}
	for i, c := range t.cols {
		oc := other.cols[i]
		if c.Name() != oc.Name() {
			return false
		}
		for r := 0; r < c.Len(); r++ {
			if !Equal(c.Value(r), oc.Value(r)) {
				return false
			}
		}
	}
	return true
}

// String renders a compact preview: schema line plus up to 10 rows, the way
// the console shows datasets.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d rows × %d columns)\n", t.name, t.NumRows(), t.NumCols())
	header := make([]string, t.NumCols())
	for i, c := range t.cols {
		header[i] = fmt.Sprintf("%s:%s", c.Name(), c.Type())
	}
	b.WriteString(strings.Join(header, " | "))
	b.WriteByte('\n')
	limit := t.NumRows()
	if limit > 10 {
		limit = 10
	}
	for r := 0; r < limit; r++ {
		cells := make([]string, t.NumCols())
		for i, c := range t.cols {
			cells[i] = c.Value(r).String()
		}
		b.WriteString(strings.Join(cells, " | "))
		b.WriteByte('\n')
	}
	if t.NumRows() > limit {
		fmt.Fprintf(&b, "… %d more rows\n", t.NumRows()-limit)
	}
	return b.String()
}
