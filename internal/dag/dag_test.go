package dag

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"datachat/internal/dataset"
	"datachat/internal/skills"
)

func newCtx(t *testing.T) *skills.Context {
	t.Helper()
	ctx := skills.NewContext()
	ids := make([]int64, 100)
	vals := make([]float64, 100)
	cats := make([]string, 100)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = float64(i % 10)
		cats[i] = string(rune('a' + i%4))
	}
	ctx.Datasets["base"] = dataset.MustNewTable("base",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("v", vals, nil),
		dataset.StringColumn("cat", cats, nil),
	)
	return ctx
}

var reg = skills.NewRegistry()

func TestGraphWiring(t *testing.T) {
	g := NewGraph()
	a := g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "id > 10"}, Output: "filtered"})
	b := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"filtered"},
		Args: skills.Args{"count": 5}})
	nodeB, err := g.Node(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodeB.Parents) != 1 || nodeB.Parents[0] != a {
		t.Errorf("parents = %v", nodeB.Parents)
	}
	nodeA, _ := g.Node(a)
	if nodeA.Parents[0] != -1 {
		t.Errorf("external input should have parent -1, got %v", nodeA.Parents)
	}
	if g.Last() != b {
		t.Errorf("Last = %v", g.Last())
	}
	if _, err := g.Node(99); err == nil {
		t.Error("missing node should error")
	}
	anc, err := g.Ancestors(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 2 || anc[0] != a {
		t.Errorf("ancestors = %v", anc)
	}
}

// TestGraphConcurrentAddAndRead: the graph is internally synchronized — the
// network layer reads Len/Last/ProducerOf (and Explain hashes signatures)
// while a session execution appends nodes. Meaningful under -race.
func TestGraphConcurrentAddAndRead(t *testing.T) {
	g := NewGraph()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			prev := "base"
			if i > 0 {
				prev = fmt.Sprintf("d%d", i-1)
			}
			g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{prev},
				Args: skills.Args{"condition": fmt.Sprintf("id > %d", i)},
				Output: fmt.Sprintf("d%d", i)})
		}
	}()
	for i := 0; i < 200; i++ {
		_ = g.Len()
		_, _ = g.ProducerOf("d0")
		_ = g.Order()
		if last := g.Last(); last >= 0 {
			if _, err := g.Signature(last); err != nil {
				t.Errorf("Signature(%d): %v", last, err)
			}
			if _, err := g.ExternalInputs(last); err != nil {
				t.Errorf("ExternalInputs(%d): %v", last, err)
			}
			_ = IsLinear(g)
		}
	}
	<-done
	if g.Len() != 200 {
		t.Fatalf("Len = %d, want 200", g.Len())
	}
}

func TestRunSimpleChainConsolidates(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 5"}, Output: "f"})
	g.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{"f"},
		Args: skills.Args{"columns": []string{"id", "v"}}, Output: "p"})
	last := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"p"},
		Args: skills.Args{"count": 7}})
	res, err := ex.Run(g, last)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 7 || res.Table.NumCols() != 2 {
		t.Errorf("result shape = %d×%d", res.Table.NumRows(), res.Table.NumCols())
	}
	stats := ex.Stats()
	if stats.SQLTasks != 1 || stats.DirectTasks != 0 {
		t.Errorf("stats = %+v, want one SQL task", stats)
	}
	if stats.NodesConsolidated != 3 {
		t.Errorf("consolidated = %d, want 3", stats.NodesConsolidated)
	}
	if stats.QueryBlocks != 1 {
		t.Errorf("query blocks = %d, want 1 (Figure 4)", stats.QueryBlocks)
	}
}

func TestRunWithoutConsolidation(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	ex.Consolidate = false
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 5"}, Output: "f"})
	last := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"f"},
		Args: skills.Args{"count": 7}})
	res, err := ex.Run(g, last)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 7 {
		t.Errorf("rows = %d", res.Table.NumRows())
	}
	stats := ex.Stats()
	if stats.DirectTasks != 2 || stats.SQLTasks != 0 {
		t.Errorf("stats = %+v, want two direct tasks", stats)
	}
}

func TestConsolidatedMatchesDirect(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
			Args: skills.Args{"condition": "v >= 3"}, Output: "a"})
		g.Add(skills.Invocation{Skill: "NewColumn", Inputs: []string{"a"},
			Args: skills.Args{"name": "v2", "formula": "v * 2"}, Output: "b"})
		g.Add(skills.Invocation{Skill: "Compute", Inputs: []string{"b"},
			Args: skills.Args{"aggregates": []string{"sum of v2 as total"}, "for_each": []string{"cat"}}, Output: "c"})
		g.Add(skills.Invocation{Skill: "SortRows", Inputs: []string{"c"},
			Args: skills.Args{"columns": "cat"}, Output: "d"})
		return g
	}
	g := build()
	exA := NewExecutor(reg, newCtx(t))
	resA, err := exA.Run(g, g.Last())
	if err != nil {
		t.Fatal(err)
	}
	exB := NewExecutor(reg, newCtx(t))
	exB.Consolidate = false
	resB, err := exB.Run(build(), g.Last())
	if err != nil {
		t.Fatal(err)
	}
	if !resA.Table.Equal(resB.Table.WithName(resA.Table.Name())) {
		t.Errorf("consolidated != direct:\n%s\nvs\n%s", resA.Table, resB.Table)
	}
}

func TestMixedRelationalAndDirectNodes(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "id < 50"}, Output: "f"})
	g.Add(skills.Invocation{Skill: "DescribeDataset", Inputs: []string{"f"}, Output: "desc"})
	last := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"desc"},
		Args: skills.Args{"count": 2}})
	res, err := ex.Run(g, last)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 2 {
		t.Errorf("rows = %d", res.Table.NumRows())
	}
	stats := ex.Stats()
	if stats.DirectTasks == 0 || stats.SQLTasks == 0 {
		t.Errorf("expected mixed task kinds: %+v", stats)
	}
}

func TestSharedSubDAGMaterializedOnce(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 2"}, Output: "shared"})
	g.Add(skills.Invocation{Skill: "Compute", Inputs: []string{"shared"},
		Args: skills.Args{"aggregates": []string{"count of records as n"}}, Output: "lhs"})
	join := g.Add(skills.Invocation{Skill: "JoinDatasets", Inputs: []string{"lhs", "shared"},
		Args: skills.Args{"on": "lhs.n > shared.id", "kind": "inner"}})
	if _, err := ex.Run(g, join); err != nil {
		t.Fatal(err)
	}
	// "shared" feeds two consumers: it must be materialized, not folded
	// into either chain.
	if _, ok := ctx.Datasets["shared"]; !ok {
		t.Error("shared node output not materialized")
	}
}

func TestCacheHitsAcrossRuns(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	last := g.Add(skills.Invocation{Skill: "Compute", Inputs: []string{"base"},
		Args: skills.Args{"aggregates": []string{"sum of v as total"}, "for_each": []string{"cat"}}})
	if _, err := ex.Run(g, last); err != nil {
		t.Fatal(err)
	}
	before := ex.Stats()
	if _, err := ex.Run(g, last); err != nil {
		t.Fatal(err)
	}
	after := ex.Stats()
	if after.CacheHits != before.CacheHits+1 {
		t.Errorf("cache hits = %d -> %d", before.CacheHits, after.CacheHits)
	}
	if after.TasksRun != before.TasksRun {
		t.Errorf("second run should not run tasks: %+v", after)
	}
	// Same computation in a fresh graph also hits (shared sub-DAG reuse).
	g2 := NewGraph()
	last2 := g2.Add(skills.Invocation{Skill: "Compute", Inputs: []string{"base"},
		Args: skills.Args{"aggregates": []string{"sum of v as total"}, "for_each": []string{"cat"}}})
	if _, err := ex.Run(g2, last2); err != nil {
		t.Fatal(err)
	}
	if ex.Stats().CacheHits != after.CacheHits+1 {
		t.Error("equivalent graph should hit the cache")
	}
	ex.InvalidateCache()
	if _, err := ex.Run(g2, last2); err != nil {
		t.Fatal(err)
	}
	if ex.Stats().TasksRun == after.TasksRun {
		t.Error("invalidated cache should force re-execution")
	}
}

// TestCacheHitsAcrossFileLoads is the regression test for the serving-path
// cache never hitting: LoadData is volatile by definition, but its source
// file content-fingerprints, so repeated identical load→aggregate pipelines
// must share one sub-DAG cache entry — while re-registering the file with
// different bytes must miss and recompute.
func TestCacheHitsAcrossFileLoads(t *testing.T) {
	ctx := newCtx(t)
	ctx.PutFile("load.csv", "id,grp,v\n1,a,10\n2,b,20\n3,a,30\n")
	ex := NewExecutor(reg, ctx)
	program := func(g *Graph) NodeID {
		g.Add(skills.Invocation{Skill: "LoadData", Args: skills.Args{"source": "load.csv", "name": "loaded"}, Output: "loaded"})
		return g.Add(skills.Invocation{Skill: "Compute", Inputs: []string{"loaded"},
			Args: skills.Args{"aggregates": []string{"sum of v as total"}, "for_each": []string{"grp"}}})
	}
	g := NewGraph()
	if _, err := ex.Run(g, program(g)); err != nil {
		t.Fatal(err)
	}
	before := ex.Stats()
	g2 := NewGraph()
	if _, err := ex.Run(g2, program(g2)); err != nil {
		t.Fatal(err)
	}
	after := ex.Stats()
	if after.CacheHits <= before.CacheHits {
		t.Errorf("identical file-load pipeline missed the cache: hits %d -> %d", before.CacheHits, after.CacheHits)
	}
	// New content under the same file name must not serve the stale result.
	ctx.PutFile("load.csv", "id,grp,v\n1,a,100\n")
	g3 := NewGraph()
	res, err := ex.Run(g3, program(g3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == nil || res.Table.NumRows() != 1 {
		t.Fatalf("stale cached result served after file re-registration: %v", res.Table)
	}
}

func TestCacheDisabled(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	ex.UseCache = false
	g := NewGraph()
	last := g.Add(skills.Invocation{Skill: "CountRows", Inputs: []string{"base"}})
	if _, err := ex.Run(g, last); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(g, last); err != nil {
		t.Fatal(err)
	}
	if ex.Stats().CacheHits != 0 {
		t.Error("cache disabled but hits recorded")
	}
	if ex.Stats().TasksRun != 2 {
		t.Errorf("tasks = %d, want 2", ex.Stats().TasksRun)
	}
}

func TestRunErrors(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	bad := g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"missing_dataset"},
		Args: skills.Args{"condition": "x > 1"}})
	if _, err := ex.Run(g, bad); err == nil {
		t.Error("missing external dataset should error")
	}
	g2 := NewGraph()
	unknown := g2.Add(skills.Invocation{Skill: "Nope", Inputs: []string{"base"}})
	if _, err := ex.Run(g2, unknown); err == nil {
		t.Error("unknown skill should error")
	}
	if _, err := ex.Run(g2, 42); err == nil {
		t.Error("unknown target should error")
	}
}

func TestSignatureStability(t *testing.T) {
	g := NewGraph()
	a := g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 1", "extra": []string{"x"}}})
	sig1, err := g.Signature(a)
	if err != nil {
		t.Fatal(err)
	}
	g2 := NewGraph()
	b := g2.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"extra": []string{"x"}, "condition": "v > 1"}})
	sig2, err := g2.Signature(b)
	if err != nil {
		t.Fatal(err)
	}
	if sig1 != sig2 {
		t.Error("signatures should be independent of arg map order")
	}
	g3 := NewGraph()
	c := g3.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 2", "extra": []string{"x"}}})
	sig3, _ := g3.Signature(c)
	if sig1 == sig3 {
		t.Error("different args should change the signature")
	}
}

// TestSliceFigure5 reproduces the Figure 5 behaviour: a branchy exploratory
// session slices down to the linear recipe of one chart-feeding chain.
func TestSliceFigure5(t *testing.T) {
	g := NewGraph()
	// The productive chain.
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 1"}, Output: "s1"})
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"s1"},
		Args: skills.Args{"condition": "v < 9"}, Output: "s2"})
	target := g.Add(skills.Invocation{Skill: "Compute", Inputs: []string{"s2"},
		Args: skills.Args{"aggregates": []string{"count of records as n"}, "for_each": []string{"cat"}}, Output: "final"})
	// Dead exploratory branches.
	g.Add(skills.Invocation{Skill: "DescribeDataset", Inputs: []string{"base"}, Output: "x1"})
	g.Add(skills.Invocation{Skill: "TopValues", Inputs: []string{"s1"},
		Args: skills.Args{"column": "cat"}, Output: "x2"})
	g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"x2"},
		Args: skills.Args{"count": 3}, Output: "x3"})
	g.Add(skills.Invocation{Skill: "CountRows", Inputs: []string{"base"}, Output: "x4"})

	sliced, report, err := Slice(g, target)
	if err != nil {
		t.Fatal(err)
	}
	if report.NodesBefore != 7 {
		t.Errorf("before = %d", report.NodesBefore)
	}
	if report.Pruned != 4 {
		t.Errorf("pruned = %d, want 4", report.Pruned)
	}
	if report.Merged != 1 { // the two KeepRows merge
		t.Errorf("merged = %d, want 1", report.Merged)
	}
	if sliced.Len() != 2 {
		t.Errorf("sliced size = %d, want 2", sliced.Len())
	}
	if !IsLinear(sliced) {
		t.Error("sliced recipe should be linear")
	}

	// The sliced recipe computes the same result.
	exFull := NewExecutor(reg, newCtx(t))
	full, err := exFull.Run(g, target)
	if err != nil {
		t.Fatal(err)
	}
	exSliced := NewExecutor(reg, newCtx(t))
	slim, err := exSliced.Run(sliced, sliced.Last())
	if err != nil {
		t.Fatal(err)
	}
	if !full.Table.Equal(slim.Table.WithName(full.Table.Name())) {
		t.Errorf("sliced result differs:\n%s\nvs\n%s", full.Table, slim.Table)
	}
}

func TestSliceMergesLimitsAndProjections(t *testing.T) {
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"base"},
		Args: skills.Args{"count": 50}, Output: "l1"})
	g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"l1"},
		Args: skills.Args{"count": 20}, Output: "l2"})
	g.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{"l2"},
		Args: skills.Args{"columns": []string{"id", "v", "cat"}}, Output: "k1"})
	target := g.Add(skills.Invocation{Skill: "KeepColumns", Inputs: []string{"k1"},
		Args: skills.Args{"columns": []string{"id"}}, Output: "k2"})
	sliced, report, err := Slice(g, target)
	if err != nil {
		t.Fatal(err)
	}
	if report.Merged != 2 {
		t.Errorf("merged = %d, want 2", report.Merged)
	}
	if sliced.Len() != 2 {
		t.Errorf("sliced size = %d", sliced.Len())
	}
	ex := NewExecutor(reg, newCtx(t))
	res, err := ex.Run(sliced, sliced.Last())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 20 || res.Table.NumCols() != 1 {
		t.Errorf("shape = %d×%d", res.Table.NumRows(), res.Table.NumCols())
	}
}

func TestSliceKeepsFanOutIntact(t *testing.T) {
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 1"}, Output: "shared"})
	g.Add(skills.Invocation{Skill: "Compute", Inputs: []string{"shared"},
		Args: skills.Args{"aggregates": []string{"count of records as n"}}, Output: "agg"})
	target := g.Add(skills.Invocation{Skill: "JoinDatasets", Inputs: []string{"agg", "shared"},
		Args: skills.Args{"on": "agg.n > shared.id"}})
	sliced, _, err := Slice(g, target)
	if err != nil {
		t.Fatal(err)
	}
	if sliced.Len() != 3 {
		t.Errorf("fan-out slice size = %d, want 3", sliced.Len())
	}
	if IsLinear(sliced) {
		t.Error("fan-out graph should not be linear")
	}
}

func TestCompileSQL(t *testing.T) {
	ctx := newCtx(t)
	ex := NewExecutor(reg, ctx)
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 5"}, Output: "f"})
	last := g.Add(skills.Invocation{Skill: "LimitRows", Inputs: []string{"f"},
		Args: skills.Args{"count": 3}})
	sql, err := ex.CompileSQL(g, last)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "WHERE") || !strings.Contains(sql, "LIMIT 3") {
		t.Errorf("sql = %s", sql)
	}
	if strings.Count(sql, "SELECT") != 1 {
		t.Errorf("consolidated sql should be one block: %s", sql)
	}
	g2 := NewGraph()
	direct := g2.Add(skills.Invocation{Skill: "DescribeDataset", Inputs: []string{"base"}})
	if _, err := ex.CompileSQL(g2, direct); err == nil {
		t.Error("non-relational node should not compile to SQL")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "CountRows", Inputs: []string{"base"}, Output: "c"})
	clone := g.Clone()
	g.Add(skills.Invocation{Skill: "CountRows", Inputs: []string{"base"}, Output: "c2"})
	if clone.Len() != 1 || g.Len() != 2 {
		t.Errorf("clone tracked later additions: %d vs %d", clone.Len(), g.Len())
	}
}

// TestSliceEquivalenceProperty builds randomized linear chains of mergeable
// and non-mergeable skills and checks the sliced recipe always reproduces
// the full chain's result — the safety property behind Figure 5.
func TestSliceEquivalenceProperty(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		rng := seed
		next := func(n int64) int64 { // deterministic LCG
			rng = (rng*6364136223846793005 + 1442695040888963407) % (1 << 31)
			if rng < 0 {
				rng = -rng
			}
			return rng % n
		}
		g := NewGraph()
		prev := "base"
		var target NodeID
		steps := 3 + int(next(6))
		for i := 0; i < steps; i++ {
			out := fmt.Sprintf("s%d", i)
			var inv skills.Invocation
			switch next(4) {
			case 0:
				inv = skills.Invocation{Skill: "KeepRows", Inputs: []string{prev},
					Args: skills.Args{"condition": fmt.Sprintf("v > %d", next(8))}, Output: out}
			case 1:
				inv = skills.Invocation{Skill: "LimitRows", Inputs: []string{prev},
					Args: skills.Args{"count": int(20 + next(60))}, Output: out}
			case 2:
				inv = skills.Invocation{Skill: "KeepColumns", Inputs: []string{prev},
					Args: skills.Args{"columns": []string{"id", "v"}}, Output: out}
			default:
				inv = skills.Invocation{Skill: "SortRows", Inputs: []string{prev},
					Args: skills.Args{"columns": "v"}, Output: out}
			}
			target = g.Add(inv)
			prev = out
			// Occasionally add a dead branch.
			if next(3) == 0 {
				g.Add(skills.Invocation{Skill: "CountRows", Inputs: []string{prev},
					Output: fmt.Sprintf("dead%d", i)})
			}
		}
		sliced, _, err := Slice(g, target)
		if err != nil {
			return false
		}
		full, err := NewExecutor(reg, newCtxQuiet()).Run(g, target)
		if err != nil {
			return false
		}
		slim, err := NewExecutor(reg, newCtxQuiet()).Run(sliced, sliced.Last())
		if err != nil {
			return false
		}
		return full.Table.Equal(slim.Table.WithName(full.Table.Name()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func newCtxQuiet() *skills.Context {
	ctx := skills.NewContext()
	ids := make([]int64, 100)
	vals := make([]float64, 100)
	cats := make([]string, 100)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = float64(i % 10)
		cats[i] = string(rune('a' + i%4))
	}
	ctx.Datasets["base"] = dataset.MustNewTable("base",
		dataset.IntColumn("id", ids, nil),
		dataset.FloatColumn("v", vals, nil),
		dataset.StringColumn("cat", cats, nil),
	)
	return ctx
}

// TestConsolidationEquivalenceProperty builds randomized relational chains
// and checks the consolidating executor and the direct per-step executor
// produce identical tables — the dual-implementation guarantee of §2.2 at
// the DAG level.
func TestConsolidationEquivalenceProperty(t *testing.T) {
	f := func(seedRaw uint16) bool {
		rng := int64(seedRaw) + 1
		next := func(n int64) int64 {
			rng = (rng*6364136223846793005 + 1442695040888963407) % (1 << 31)
			if rng < 0 {
				rng = -rng
			}
			return rng % n
		}
		build := func() *Graph {
			localRng := int64(seedRaw) + 1
			localNext := func(n int64) int64 {
				localRng = (localRng*6364136223846793005 + 1442695040888963407) % (1 << 31)
				if localRng < 0 {
					localRng = -localRng
				}
				return localRng % n
			}
			g := NewGraph()
			prev := "base"
			steps := 2 + int(localNext(5))
			grouped := false
			for i := 0; i < steps; i++ {
				out := fmt.Sprintf("c%d", i)
				var inv skills.Invocation
				switch localNext(6) {
				case 0:
					cond := fmt.Sprintf("v >= %d", localNext(9))
					if grouped {
						cond = fmt.Sprintf("total >= %d", localNext(50))
					}
					inv = skills.Invocation{Skill: "KeepRows", Inputs: []string{prev},
						Args: skills.Args{"condition": cond}, Output: out}
				case 1:
					inv = skills.Invocation{Skill: "LimitRows", Inputs: []string{prev},
						Args: skills.Args{"count": int(5 + localNext(40))}, Output: out}
				case 2:
					if grouped {
						inv = skills.Invocation{Skill: "SortRows", Inputs: []string{prev},
							Args: skills.Args{"columns": "cat"}, Output: out}
					} else {
						inv = skills.Invocation{Skill: "KeepColumns", Inputs: []string{prev},
							Args: skills.Args{"columns": []string{"id", "v", "cat"}}, Output: out}
					}
				case 3:
					inv = skills.Invocation{Skill: "SortRows", Inputs: []string{prev},
						Args: skills.Args{"columns": "cat", "descending": localNext(2) == 0}, Output: out}
				case 4:
					if grouped {
						inv = skills.Invocation{Skill: "DistinctRows", Inputs: []string{prev}, Output: out,
							Args: skills.Args{}}
					} else {
						inv = skills.Invocation{Skill: "NewColumn", Inputs: []string{prev},
							Args: skills.Args{"name": fmt.Sprintf("n%d", i), "formula": "v + 1"}, Output: out}
					}
				default:
					if !grouped {
						inv = skills.Invocation{Skill: "Compute", Inputs: []string{prev},
							Args: skills.Args{
								"aggregates": []string{"sum of v as total"},
								"for_each":   []string{"cat"},
							}, Output: out}
						grouped = true
					} else {
						inv = skills.Invocation{Skill: "LimitRows", Inputs: []string{prev},
							Args: skills.Args{"count": 3}, Output: out}
					}
				}
				g.Add(inv)
				prev = out
			}
			return g
		}
		_ = next
		gA := build()
		exA := NewExecutor(reg, newCtxQuiet())
		resA, errA := exA.Run(gA, gA.Last())
		gB := build()
		exB := NewExecutor(reg, newCtxQuiet())
		exB.Consolidate = false
		resB, errB := exB.Run(gB, gB.Last())
		if (errA == nil) != (errB == nil) {
			t.Logf("seed %d: error mismatch: %v vs %v", seedRaw, errA, errB)
			return false
		}
		if errA != nil {
			return true // both paths rejected the chain the same way
		}
		if !resA.Table.Equal(resB.Table.WithName(resA.Table.Name())) {
			t.Logf("seed %d mismatch:\nconsolidated:\n%s\ndirect:\n%s", seedRaw, resA.Table, resB.Table)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
