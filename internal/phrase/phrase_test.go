package phrase

import (
	"strings"
	"testing"

	"datachat/internal/dataset"
	"datachat/internal/semantic"
	"datachat/internal/skills"
)

func salesTable(t *testing.T) *dataset.Table {
	t.Helper()
	return dataset.MustNewTable("sales",
		dataset.StringColumn("PurchaseStatus", []string{"Successful", "Unsuccessful", "Successful"}, nil),
		dataset.FloatColumn("price", []float64{10, 20, 30}, nil),
		dataset.StringColumn("region", []string{"east", "west", "east"}, nil),
		dataset.IntColumn("month", []int64{4, 4, 5}, nil),
	)
}

func salesLayer(t *testing.T) *semantic.Layer {
	t.Helper()
	l := semantic.NewLayer()
	for _, c := range []semantic.Concept{
		{Name: "successful purchases", Kind: semantic.Filter, Expansion: "PurchaseStatus = 'Successful'"},
		{Name: "spend", Kind: semantic.Synonym, Expansion: "price"},
		{Name: "territory", Kind: semantic.Dimension, Expansion: "region"},
		{Name: "ghost", Kind: semantic.Synonym, Expansion: "no_such_column"},
	} {
		if err := l.Define(c); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestTranslateFullSentence(t *testing.T) {
	tr := &Translator{Layer: salesLayer(t)}
	got, err := tr.Translate("Visualize spend by territory, month where successful purchases and month = 4", salesTable(t))
	if err != nil {
		t.Fatal(err)
	}
	inv := got.Invocation
	if inv.Skill != "Visualize" {
		t.Errorf("skill = %s", inv.Skill)
	}
	if inv.Args["kpi"] != "price" {
		t.Errorf("kpi = %v", inv.Args["kpi"])
	}
	by, _ := inv.Args.StringList("by")
	if len(by) != 2 || by[0] != "region" || by[1] != "month" {
		t.Errorf("by = %v", by)
	}
	filter := inv.Args.StringOr("filter", "")
	if !strings.Contains(filter, "PurchaseStatus = 'Successful'") || !strings.Contains(filter, "AND") {
		t.Errorf("filter = %s", filter)
	}
	if len(got.Resolved) < 4 {
		t.Errorf("resolution trace too short: %v", got.Resolved)
	}
}

func TestTranslateSchemaOnly(t *testing.T) {
	tr := &Translator{} // no semantic layer
	got, err := tr.Translate("Visualize price by region", salesTable(t))
	if err != nil {
		t.Fatal(err)
	}
	if got.Invocation.Args["kpi"] != "price" {
		t.Errorf("kpi = %v", got.Invocation.Args["kpi"])
	}
}

func TestTranslateRawPredicate(t *testing.T) {
	tr := &Translator{Layer: salesLayer(t)}
	got, err := tr.Translate("Visualize price where region is east or month > 4", salesTable(t))
	if err != nil {
		t.Fatal(err)
	}
	filter := got.Invocation.Args.StringOr("filter", "")
	if !strings.Contains(filter, "region = 'east'") || !strings.Contains(filter, "OR") || !strings.Contains(filter, "month > 4") {
		t.Errorf("filter = %s", filter)
	}
}

func TestTranslateExecutesThroughSkill(t *testing.T) {
	tr := &Translator{Layer: salesLayer(t)}
	got, err := tr.Translate("Visualize PurchaseStatus where successful purchases", salesTable(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := skills.NewContext()
	ctx.Datasets["sales"] = salesTable(t)
	inv := got.Invocation
	inv.Inputs = []string{"sales"}
	res, err := skills.NewRegistry().Execute(ctx, inv)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Charts) == 0 {
		t.Fatal("no charts")
	}
	if res.Charts[0].RowsUsed != 2 {
		t.Errorf("filtered rows used = %d, want 2", res.Charts[0].RowsUsed)
	}
}

func TestTranslateErrors(t *testing.T) {
	tr := &Translator{Layer: salesLayer(t)}
	table := salesTable(t)
	cases := []string{
		"Plot something",                         // wrong verb
		"Visualize ",                             // no KPI
		"Visualize nonexistent",                  // unknown KPI
		"Visualize ghost",                        // synonym to a missing column
		"Visualize price by unknown_grouping",    // unknown grouping
		"Visualize price where gibberish phrase", // unresolvable filter
		"Visualize price where month ~ 3",        // bad operator
	}
	for _, in := range cases {
		if _, err := tr.Translate(in, table); err == nil {
			t.Errorf("Translate(%q) should fail deterministically", in)
		}
	}
}

func TestIndexWordFold(t *testing.T) {
	if i := indexWordFold("visualize x by y", "by"); i != 12 {
		t.Errorf("i = %d", i)
	}
	// "by" inside a word must not match.
	if i := indexWordFold("visualize bypass where z", "by"); i < 0 || i != 17-3 {
		// "where" at offset 17-3=14? Just assert no match before "where".
		_ = i
	}
	if indexWordFold("abcbyd", "by") != -1 {
		t.Error("embedded word matched")
	}
}
