package sqlengine

import (
	"errors"
	"sync"
)

// This file implements the morsel dispatcher: an order-preserving parallel
// pipe that fans work items (source chunks) out to N pipeline workers and
// reassembles their outputs in input order. The source is pulled under the
// pipe's lock (chunk sources are inherently serial), each pulled item gets a
// monotonically increasing sequence number, workers transform items
// concurrently, and the consumer emits results strictly by sequence — so a
// parallel pipeline produces exactly the chunk sequence the serial pipeline
// produces. Errors are deterministic too: the consumer surfaces the error of
// the lowest failing sequence, after emitting every result before it.

// errStreamClosed is returned by a pipe whose stream was closed or cancelled
// without a more specific cause.
var errStreamClosed = errors.New("sql: stream closed")

// parallelPipe fans pull() items out to `workers` goroutines running work()
// and yields outputs in pull order. With workers <= 1 it degenerates to a
// lock-free inline loop (no goroutines), which is the serial oracle path.
type parallelPipe[I, O any] struct {
	pull    func() (I, bool, error)
	work    func(item I, seq int) (O, error)
	workers int
	window  int

	mu       sync.Mutex
	cond     *sync.Cond
	results  map[int]O
	nextSeq  int // next sequence number to assign to a pulled item
	nextEmit int // next sequence number the consumer will emit
	srcDone  bool
	err      error
	errSeq   int
	stopped  bool
	stopErr  error
	started  bool

	// serial-mode state
	serialSeq  int
	serialDone bool
}

// newParallelPipe builds a pipe. Workers are spawned lazily on first next()
// so pipelines that are never consumed never start goroutines.
func newParallelPipe[I, O any](workers, window int, pull func() (I, bool, error), work func(I, int) (O, error)) *parallelPipe[I, O] {
	if workers < 1 {
		workers = 1
	}
	if window < workers {
		window = workers * 2
	}
	p := &parallelPipe[I, O]{
		pull:    pull,
		work:    work,
		workers: workers,
		window:  window,
		results: make(map[int]O),
		errSeq:  -1,
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// stop aborts the pipe: workers exit, and next() returns cause (or
// errStreamClosed when cause is nil). Safe to call concurrently and more
// than once; the first cause wins.
func (p *parallelPipe[I, O]) stop(cause error) {
	p.mu.Lock()
	if !p.stopped {
		p.stopped = true
		if cause == nil {
			cause = errStreamClosed
		}
		p.stopErr = cause
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

func (p *parallelPipe[I, O]) runWorker() {
	for {
		p.mu.Lock()
		for !p.stopped && p.err == nil && !p.srcDone && p.nextSeq-p.nextEmit >= p.window {
			p.cond.Wait()
		}
		if p.stopped || p.err != nil || p.srcDone {
			p.mu.Unlock()
			return
		}
		seq := p.nextSeq
		p.nextSeq++
		item, ok, perr := p.pull()
		if perr != nil {
			// The source failed while producing sequence seq: everything
			// before it still flows out, then the consumer reports perr.
			p.srcDone = true
			if p.err == nil || seq < p.errSeq {
				p.err, p.errSeq = perr, seq
			}
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		if !ok {
			p.nextSeq-- // hand the unused sequence number back
			p.srcDone = true
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()

		out, werr := p.work(item, seq)

		p.mu.Lock()
		if werr != nil {
			if p.err == nil || seq < p.errSeq {
				p.err, p.errSeq = werr, seq
			}
		} else {
			p.results[seq] = out
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// next returns the next output in input order. ok=false with a nil error
// marks exhaustion. After stop(), next returns the stop cause.
func (p *parallelPipe[I, O]) next() (O, bool, error) {
	var zero O
	if p.workers <= 1 {
		return p.serialNext()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		p.started = true
		for i := 0; i < p.workers; i++ {
			go p.runWorker()
		}
	}
	for {
		if p.stopped {
			return zero, false, p.stopErr
		}
		// The lowest failing sequence is the deterministic first error: all
		// results before it have been emitted, none after it ever will be.
		if p.err != nil && p.errSeq == p.nextEmit {
			return zero, false, p.err
		}
		if out, ok := p.results[p.nextEmit]; ok {
			delete(p.results, p.nextEmit)
			p.nextEmit++
			p.cond.Broadcast()
			return out, true, nil
		}
		if p.srcDone && p.nextEmit >= p.nextSeq {
			return zero, false, nil
		}
		p.cond.Wait()
	}
}

func (p *parallelPipe[I, O]) serialNext() (O, bool, error) {
	var zero O
	p.mu.Lock()
	stopped, stopErr, done := p.stopped, p.stopErr, p.serialDone
	p.mu.Unlock()
	if stopped {
		return zero, false, stopErr
	}
	if done {
		return zero, false, nil
	}
	item, ok, err := p.pull()
	if err != nil {
		return zero, false, err
	}
	if !ok {
		p.mu.Lock()
		p.serialDone = true
		p.mu.Unlock()
		return zero, false, nil
	}
	seq := p.serialSeq
	p.serialSeq++
	out, err := p.work(item, seq)
	if err != nil {
		return zero, false, err
	}
	return out, true, nil
}
