// Command dcbench regenerates the paper's tables and figures as text
// reports. Each experiment is addressable by name:
//
//	dcbench -exp table2      # Table 2: execution accuracy by (M, C) zone
//	dcbench -exp figure7     # Figure 7: dev-split characterization
//	dcbench -exp sampling    # §3: block sampling + snapshot iteration cost
//	dcbench -exp consolidation  # Figure 4 / §2.2: query consolidation
//	dcbench -exp parallel    # §2.2: parallel DAG scheduling + cache dedup
//	dcbench -exp slicing     # Figure 5: recipe slicing
//	dcbench -exp ablations   # semantic layer / retrieval / checker ablations
//	dcbench -exp vectorized  # columnar engine vs row reference (filter/join/group-by)
//	dcbench -exp faults      # fault-rate grid: retried corpus throughput + exactness
//	dcbench -exp plan        # logical-plan pass pipeline: planned vs naive execution
//	dcbench -exp server      # datachatd load grid: concurrent HTTP clients, 409/429 accounting
//	dcbench -exp stream      # morsel streaming: first-chunk latency + peak memory vs row count
//	dcbench -exp cost        # §3 budget ladder: cost-vs-accuracy grid for sample substitution
//	dcbench -exp sched       # scheduled refresh: cost vs changed fraction + interference grid
//	dcbench -exp all         # everything (default)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"datachat/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table2, figure7, sampling, consolidation, parallel, slicing, ablations, vectorized, faults, plan, server, stream, cost, sched, all")
	seed := flag.Int64("seed", 42, "corpus seed")
	perZone := flag.Int("per-zone", 25, "balanced sample size per zone for table2")
	rows := flag.Int("rows", 500_000, "synthetic cloud table rows for the sampling experiment")
	benchJSON := flag.String("bench-json", "", "write the vectorized grid as JSON to this path")
	faultsJSON := flag.String("faults-json", "", "write the fault-rate grid as JSON to this path")
	planJSON := flag.String("plan-json", "", "write the plan comparison as JSON to this path")
	serverJSON := flag.String("server-json", "", "write the server load grid as JSON to this path")
	perClient := flag.Int("per-client", 25, "requests per client for the server experiment")
	streamJSON := flag.String("stream-json", "", "write the streaming grid as JSON to this path")
	costJSON := flag.String("cost-json", "", "write the cost-vs-accuracy grid as JSON to this path")
	schedJSON := flag.String("sched-json", "", "write the scheduled-refresh grid as JSON to this path")
	streamRows := flag.Int("stream-rows", 20_000, "1x row count for the stream experiment (scales to 10x and 100x)")
	streamCPUs := flag.String("stream-cpus", "1,2,4,8", "comma-separated morsel worker grid for the stream experiment")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "dcbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	var suite *experiments.Suite
	getSuite := func() *experiments.Suite {
		if suite == nil {
			suite = experiments.NewSuite(1)
		}
		return suite
	}

	run("figure7", func() error {
		fmt.Print(getSuite().Figure7(*seed).Report())
		fmt.Println()
		return nil
	})
	run("table2", func() error {
		r, err := getSuite().Table2(experiments.Table2Options{PerZone: *perZone, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
		fmt.Println()
		return nil
	})
	run("sampling", func() error {
		r, err := experiments.Sampling(*rows, []float64{0.1, 0.01}, 10)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
		fmt.Println()
		return nil
	})
	run("consolidation", func() error {
		r, err := experiments.Consolidation(50_000, 8, 5)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
		fmt.Println()
		return nil
	})
	run("parallel", func() error {
		r, err := experiments.Parallel(50_000, 6, 5)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
		fmt.Println()
		return nil
	})
	run("slicing", func() error {
		r, err := experiments.Slicing(15)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
		fmt.Println()
		return nil
	})
	run("ablations", func() error {
		s := getSuite()
		sem, err := s.AblateSemanticLayer(10, *seed)
		if err != nil {
			return err
		}
		fmt.Print(sem.Report())
		ret, err := s.AblateRetrieval(10, *seed)
		if err != nil {
			return err
		}
		fmt.Print(ret.Report())
		chk, err := s.AblateChecker(10, *seed)
		if err != nil {
			return err
		}
		fmt.Print(chk.Report())
		budget, err := s.AblatePromptBudget(10, *seed, 120)
		if err != nil {
			return err
		}
		fmt.Print(budget.Report())
		fmt.Println()
		return nil
	})
	run("vectorized", func() error {
		sizes := []int{10_000, 100_000, 1_000_000}
		r, err := experiments.Vectorized(sizes, 3)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
		fmt.Println()
		if *benchJSON != "" {
			data, err := r.JSON()
			if err != nil {
				return err
			}
			return os.WriteFile(*benchJSON, append(data, '\n'), 0o644)
		}
		return nil
	})
	run("faults", func() error {
		r, err := experiments.Faults(80, []float64{0, 0.1, 0.2, 0.3}, *seed)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
		fmt.Println()
		if *faultsJSON != "" {
			data, err := r.JSON()
			if err != nil {
				return err
			}
			return os.WriteFile(*faultsJSON, append(data, '\n'), 0o644)
		}
		return nil
	})
	run("cost", func() error {
		r, err := experiments.Cost(200_000)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
		fmt.Println()
		if *costJSON != "" {
			data, err := r.JSON()
			if err != nil {
				return err
			}
			return os.WriteFile(*costJSON, append(data, '\n'), 0o644)
		}
		return nil
	})
	run("plan", func() error {
		r, err := experiments.Plan(100_000, 6)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
		fmt.Println()
		if *planJSON != "" {
			data, err := r.JSON()
			if err != nil {
				return err
			}
			return os.WriteFile(*planJSON, append(data, '\n'), 0o644)
		}
		return nil
	})
	run("server", func() error {
		r, err := experiments.ServerLoad([]int{1, 4, 8}, *perClient)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
		fmt.Println()
		if *serverJSON != "" {
			data, err := r.JSON()
			if err != nil {
				return err
			}
			return os.WriteFile(*serverJSON, append(data, '\n'), 0o644)
		}
		return nil
	})
	run("sched", func() error {
		r, err := experiments.Sched(4, 20_000, 4, *perClient)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
		fmt.Println()
		if *schedJSON != "" {
			data, err := r.JSON()
			if err != nil {
				return err
			}
			return os.WriteFile(*schedJSON, append(data, '\n'), 0o644)
		}
		return nil
	})
	run("stream", func() error {
		var grid []int
		for _, f := range strings.Split(*streamCPUs, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || w < 1 {
				return fmt.Errorf("invalid -stream-cpus entry %q", f)
			}
			grid = append(grid, w)
		}
		r, err := experiments.Stream(*streamRows, grid)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
		fmt.Println()
		if *streamJSON != "" {
			data, err := r.JSON()
			if err != nil {
				return err
			}
			return os.WriteFile(*streamJSON, append(data, '\n'), 0o644)
		}
		return nil
	})
}
