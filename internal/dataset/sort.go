package dataset

import "sort"

// SortIndex returns the row indexes that order the rows by the given key
// columns; desc[i] flips key i (missing entries default to ascending). The
// sort is stable, and nulls order before every non-null value, matching
// Compare. Each key column's typed storage is decoded once into a typed
// comparator, so no per-comparison Value boxing happens — this is the sort
// primitive behind ORDER BY and Table.SortBy.
func SortIndex(cols []*Column, desc []bool) []int {
	if len(cols) == 0 {
		return nil
	}
	n := cols[0].Len()
	cmps := make([]func(a, b int) int, len(cols))
	for i, c := range cols {
		cmps[i] = c.comparator()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for k, cmp := range cmps {
			c := cmp(idx[a], idx[b])
			if c == 0 {
				continue
			}
			if k < len(desc) && desc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return idx
}

// comparator returns a typed row-comparison function over the column,
// equivalent to Compare(c.Value(a), c.Value(b)) but without boxing.
func (c *Column) comparator() func(a, b int) int {
	nulls := c.nulls
	cmpNulls := func(a, b int) (int, bool) {
		an := nulls != nil && nulls[a]
		bn := nulls != nil && nulls[b]
		switch {
		case an && bn:
			return 0, true
		case an:
			return -1, true
		case bn:
			return 1, true
		}
		return 0, false
	}
	switch c.typ {
	case TypeInt:
		vals := c.ints
		return func(a, b int) int {
			if r, done := cmpNulls(a, b); done {
				return r
			}
			return cmpInt(vals[a], vals[b])
		}
	case TypeFloat:
		vals := c.fls
		return func(a, b int) int {
			if r, done := cmpNulls(a, b); done {
				return r
			}
			return cmpFloat(vals[a], vals[b])
		}
	case TypeString:
		vals := c.strs
		return func(a, b int) int {
			if r, done := cmpNulls(a, b); done {
				return r
			}
			switch {
			case vals[a] < vals[b]:
				return -1
			case vals[a] > vals[b]:
				return 1
			default:
				return 0
			}
		}
	case TypeBool:
		vals := c.bools
		return func(a, b int) int {
			if r, done := cmpNulls(a, b); done {
				return r
			}
			return cmpInt(b2i(vals[a]), b2i(vals[b]))
		}
	case TypeTime:
		vals := c.times
		return func(a, b int) int {
			if r, done := cmpNulls(a, b); done {
				return r
			}
			return cmpInt(vals[a], vals[b])
		}
	default: // TypeNull: every row is null, all equal
		return func(a, b int) int { return 0 }
	}
}
