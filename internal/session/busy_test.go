package session

import (
	"context"
	"errors"
	"testing"
	"time"

	"datachat/internal/artifact"
	"datachat/internal/dataset"
	"datachat/internal/faults"
	"datachat/internal/skills"
)

// These tests pin the §2.4 contention policy: by default a request that
// finds the session busy fails fast with ErrBusy (never queues), and
// SetBusyRetry opts in to a bounded, deterministic backoff on the lock —
// all waiting on a virtual clock.

// TestBusyFailFastIsTheDefault: with the zero policy, a held lock fails the
// request immediately — one attempt, no waiting, no retry accounting.
func TestBusyFailFastIsTheDefault(t *testing.T) {
	s := newSession(t)
	s.mu.Lock()
	s.running = true // another request is mid-execution
	s.mu.Unlock()
	_, _, err := s.Request("ann", skills.Invocation{Skill: "CountRows", Inputs: []string{"base"}})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if got := s.BusyRetries(); got != 0 {
		t.Errorf("fail-fast request recorded %d retries", got)
	}
	if len(s.History()) != 0 {
		t.Error("a rejected request must not enter the history")
	}
}

// TestBusyRetryExhaustsDeterministically: with retry enabled and the lock
// never released, the request re-attempts exactly the policy's budget on the
// virtual clock and surfaces ErrBusy.
func TestBusyRetryExhaustsDeterministically(t *testing.T) {
	s := newSession(t)
	s.mu.Lock()
	s.running = true
	s.mu.Unlock()
	clock := faults.NewVirtualClock(time.Unix(0, 0))
	pol := faults.RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 100 * time.Millisecond, Multiplier: 2, JitterFrac: 0.2, Seed: 11}
	s.SetBusyRetry(pol, clock)
	_, _, err := s.Request("ann", skills.Invocation{Skill: "CountRows", Inputs: []string{"base"}})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want wrapped ErrBusy", err)
	}
	if got := s.BusyRetries(); got != 4 {
		t.Errorf("BusyRetries = %d, want 4", got)
	}
	var want time.Duration
	for _, d := range pol.Delays(4) {
		want += d
	}
	if clock.Slept() != want {
		t.Errorf("virtual backoff = %v, want the policy schedule %v", clock.Slept(), want)
	}
}

// releasingClock frees the session lock after a fixed number of backoff
// sleeps, making the contended-then-released sequence fully deterministic.
type releasingClock struct {
	*faults.VirtualClock
	s      *Session
	after  int
	sleeps int
}

func (c *releasingClock) Sleep(ctx context.Context, d time.Duration) error {
	c.sleeps++
	if c.sleeps == c.after {
		c.s.mu.Lock()
		c.s.running = false
		c.s.mu.Unlock()
	}
	return c.VirtualClock.Sleep(ctx, d)
}

// TestBusyRetrySucceedsAfterRelease: a request that finds the lock held
// keeps retrying and wins once the holder finishes.
func TestBusyRetrySucceedsAfterRelease(t *testing.T) {
	s := newSession(t)
	s.mu.Lock()
	s.running = true
	s.mu.Unlock()
	clock := &releasingClock{VirtualClock: faults.NewVirtualClock(time.Unix(0, 0)), s: s, after: 3}
	s.SetBusyRetry(faults.RetryPolicy{MaxAttempts: 100, BaseDelay: time.Millisecond}, clock)
	res, _, err := s.Request("ann", skills.Invocation{Skill: "CountRows", Inputs: []string{"base"}})
	if err != nil {
		t.Fatalf("request after release: %v", err)
	}
	if res.Table == nil {
		t.Fatal("no result")
	}
	if got := s.BusyRetries(); got != 3 {
		t.Errorf("BusyRetries = %d, want 3", got)
	}
	if len(s.History()) != 1 {
		t.Errorf("history length = %d, want 1", len(s.History()))
	}
}

// TestBusyRetryDoesNotRetryPermissionErrors: only ErrBusy is retryable; a
// membership rejection fails on the first attempt even with retry enabled.
func TestBusyRetryDoesNotRetryPermissionErrors(t *testing.T) {
	s := newSession(t)
	clock := faults.NewVirtualClock(time.Unix(0, 0))
	s.SetBusyRetry(faults.RetryPolicy{MaxAttempts: 50, BaseDelay: time.Millisecond}, clock)
	_, _, err := s.Request("stranger", skills.Invocation{Skill: "CountRows", Inputs: []string{"base"}})
	if err == nil || errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want a permission error", err)
	}
	if clock.Slept() != 0 || s.BusyRetries() != 0 {
		t.Errorf("permission error was retried: slept %v, retries %d", clock.Slept(), s.BusyRetries())
	}
}

// TestSaveArtifactCarriesDegradedAnnotation: an artifact saved from a
// degraded result keeps the §2.3 annotation.
func TestSaveArtifactCarriesDegradedAnnotation(t *testing.T) {
	reg2 := skills.NewRegistry()
	sample := dataset.MustNewTable("s", dataset.IntColumn("x", []int64{1, 2}, nil))
	err := reg2.Register(&skills.Definition{
		Name: "DegradedSrc", Summary: "fallback sample",
		Apply: func(ctx *skills.Context, inv skills.Invocation) (*skills.Result, error) {
			return &skills.Result{Table: sample, Degraded: true,
				DegradedNote: "10% block sample"}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := skills.NewContext()
	ctx.Datasets["base"] = dataset.MustNewTable("base", dataset.IntColumn("id", []int64{1}, nil))
	s := New("deg", "ann", reg2, ctx)
	_, id, err := s.Request("ann", skills.Invocation{Skill: "DegradedSrc", Inputs: []string{"base"}, Output: "d"})
	if err != nil {
		t.Fatal(err)
	}
	store := artifact.NewStore()
	a, err := s.SaveArtifact(store, "ann", "deg-art", id, artifact.TypeTable)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Degraded || a.DegradedNote != "10% block sample" {
		t.Errorf("artifact lost the degraded annotation: %+v", a)
	}
}
