// Package board implements the paper's §2.4 Insights Boards: server-side
// objects that pin recipe results and fan refreshed artifacts out to
// subscribed clients. A Board holds named Tiles; every publish bumps a
// monotonic board version, pins the artifact on its tile, appends to a
// bounded history ring (so late subscribers can backfill), and offers the
// update to every live subscriber without ever blocking the publisher — a
// subscriber that cannot keep up is evicted and its stream ends with
// ErrSlowConsumer rather than stalling the refresh pipeline.
package board

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"datachat/internal/dataset"
	"datachat/internal/faults"
)

var (
	// ErrSlowConsumer ends a subscription whose buffer overflowed.
	ErrSlowConsumer = errors.New("board: subscriber evicted (slow consumer)")
	// ErrDeleted ends subscriptions on a board that was deleted.
	ErrDeleted = errors.New("board: board deleted")
)

// DefaultRetain is how many updates a board keeps for backfill.
const DefaultRetain = 64

// Update is one published artifact: a refreshed tile result plus the
// annotations a dashboard needs to render it honestly (degradation flags
// are mandatory — the chaos suite asserts no degraded table ever reaches a
// subscriber without them).
type Update struct {
	Board   string
	Tile    string
	Version uint64 // monotonic per board
	At      time.Time

	Job string // scheduler job that produced it, if any
	Seq int    // job run sequence, if any

	Table        *dataset.Table
	Message      string
	Degraded     bool
	DegradedNote string
	RunError     string // non-empty when the refresh failed; Table is stale/nil

	// Fingerprint-diff summary for the producing run (zero when published
	// directly rather than by the scheduler).
	FPTotal   int
	FPChanged int
	CacheHits int64
}

// TileState is a tile's pinned artifact as of the board's current version.
type TileState struct {
	Tile    string
	Last    Update
	Updates int // publishes to this tile since creation
}

// Snapshot is a consistent read of a board's metadata and tiles.
type Snapshot struct {
	ID      string
	Name    string
	Owner   string
	Version uint64
	Created time.Time
	Tiles   []TileState
}

// Stats are the hub-wide counters surfaced in /statsz.
type Stats struct {
	Boards      int
	Tiles       int
	Subscribers int
	Publishes   int64
	Evictions   int64
	Backfills   int64
}

// Subscription is one client's live feed. Read from C until it closes,
// then check Err: nil means Close was called, ErrSlowConsumer means the
// hub evicted the subscriber, ErrDeleted means the board went away.
type Subscription struct {
	C <-chan Update

	ch    chan Update
	board *Board

	mu     sync.Mutex
	closed bool
	err    error
}

// Close unsubscribes. Safe to call more than once and concurrently with
// publishes.
func (s *Subscription) Close() { s.board.unsubscribe(s, nil) }

// Err reports why C closed. Only meaningful after C is closed.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// finish closes the channel exactly once, recording the cause.
// Must be called with the owning board's lock held (it is the only
// goroutine that ever closes ch, and board.mu serializes callers).
func (s *Subscription) finish(cause error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.closed = true
	s.err = cause
	close(s.ch)
	return true
}

// Board is one insights board: named tiles plus live subscribers.
type Board struct {
	hub     *Hub
	id      string
	name    string
	owner   string
	created time.Time

	mu        sync.Mutex
	version   uint64
	tiles     map[string]*tile
	tileOrder []string
	history   []Update // ring, capped at hub.retain
	subs      map[*Subscription]struct{}
	deleted   bool
}

type tile struct {
	name    string
	last    Update
	updates int
}

// ID returns the board's identifier.
func (b *Board) ID() string { return b.id }

// Owner returns the creating user.
func (b *Board) Owner() string { return b.owner }

// Publish pins an artifact on tileName (creating the tile on first use),
// bumps the board version, and offers the stamped update to every
// subscriber. It never blocks: a subscriber whose buffer is full is
// evicted. The stamped update is returned.
func (b *Board) Publish(tileName string, u Update) Update {
	b.mu.Lock()
	u.Board = b.id
	u.Tile = tileName
	b.version++
	u.Version = b.version
	u.At = b.hub.now()

	t, ok := b.tiles[tileName]
	if !ok {
		t = &tile{name: tileName}
		b.tiles[tileName] = t
		b.tileOrder = append(b.tileOrder, tileName)
	}
	t.last = u
	t.updates++

	b.history = append(b.history, u)
	if excess := len(b.history) - b.hub.retain; excess > 0 {
		b.history = append(b.history[:0:0], b.history[excess:]...)
	}

	var evicted []*Subscription
	for s := range b.subs {
		select {
		case s.ch <- u:
		default:
			evicted = append(evicted, s)
		}
	}
	for _, s := range evicted {
		delete(b.subs, s)
		s.finish(ErrSlowConsumer)
	}
	b.mu.Unlock()

	b.hub.mu.Lock()
	b.hub.publishes++
	b.hub.evictions += int64(len(evicted))
	b.hub.mu.Unlock()
	return u
}

// Snapshot returns the board's current state, tiles in creation order.
func (b *Board) Snapshot() Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	snap := Snapshot{ID: b.id, Name: b.name, Owner: b.owner, Version: b.version, Created: b.created}
	for _, name := range b.tileOrder {
		t := b.tiles[name]
		snap.Tiles = append(snap.Tiles, TileState{Tile: name, Last: t.last, Updates: t.updates})
	}
	return snap
}

// Subscribe registers a live feed with the given channel buffer (minimum
// 1) and returns any retained updates with Version > fromVersion as an
// immediate backlog. Registration and backlog capture are atomic with
// respect to Publish, so a caller that drains the backlog and then reads C
// sees every update exactly once, in order.
func (b *Board) Subscribe(fromVersion uint64, buf int) (*Subscription, []Update, error) {
	if buf < 1 {
		buf = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.deleted {
		return nil, nil, ErrDeleted
	}
	s := &Subscription{board: b, ch: make(chan Update, buf)}
	s.C = s.ch
	var backlog []Update
	for _, u := range b.history {
		if u.Version > fromVersion {
			backlog = append(backlog, u)
		}
	}
	b.subs[s] = struct{}{}
	if len(backlog) > 0 {
		b.hub.mu.Lock()
		b.hub.backfills += int64(len(backlog))
		b.hub.mu.Unlock()
	}
	return s, backlog, nil
}

// unsubscribe removes s, closing its channel with the given cause.
func (b *Board) unsubscribe(s *Subscription, cause error) {
	b.mu.Lock()
	delete(b.subs, s)
	s.finish(cause)
	b.mu.Unlock()
}

// subscriberCount is a test/stats helper.
func (b *Board) subscriberCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Hub owns all boards on a platform.
type Hub struct {
	mu        sync.Mutex
	clock     faults.Clock
	retain    int
	boards    map[string]*Board
	publishes int64
	evictions int64
	backfills int64
}

// NewHub returns an empty hub on the real clock retaining DefaultRetain
// updates per board.
func NewHub() *Hub {
	return &Hub{clock: faults.Real(), retain: DefaultRetain, boards: make(map[string]*Board)}
}

// SetClock swaps the timestamp source (virtual clock in tests).
func (h *Hub) SetClock(c faults.Clock) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if c != nil {
		h.clock = c
	}
}

func (h *Hub) now() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.clock.Now()
}

// Create makes a new board. IDs are unique; an empty name defaults to the
// ID.
func (h *Hub) Create(id, name, owner string) (*Board, error) {
	if id == "" {
		return nil, fmt.Errorf("board: empty board id")
	}
	if name == "" {
		name = id
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, exists := h.boards[id]; exists {
		return nil, fmt.Errorf("board: board %q already exists", id)
	}
	b := &Board{
		hub:     h,
		id:      id,
		name:    name,
		owner:   owner,
		created: h.clock.Now(),
		tiles:   make(map[string]*tile),
		subs:    make(map[*Subscription]struct{}),
	}
	h.boards[id] = b
	return b, nil
}

// Get looks a board up by ID.
func (h *Hub) Get(id string) (*Board, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b, ok := h.boards[id]
	return b, ok
}

// Delete removes a board, ending every live subscription with ErrDeleted.
func (h *Hub) Delete(id string) bool {
	h.mu.Lock()
	b, ok := h.boards[id]
	delete(h.boards, id)
	h.mu.Unlock()
	if !ok {
		return false
	}
	b.mu.Lock()
	b.deleted = true
	for s := range b.subs {
		delete(b.subs, s)
		s.finish(ErrDeleted)
	}
	b.mu.Unlock()
	return true
}

// List returns snapshots of every board, sorted by ID.
func (h *Hub) List() []Snapshot {
	h.mu.Lock()
	boards := make([]*Board, 0, len(h.boards))
	for _, b := range h.boards {
		boards = append(boards, b)
	}
	h.mu.Unlock()
	sort.Slice(boards, func(i, j int) bool { return boards[i].id < boards[j].id })
	snaps := make([]Snapshot, 0, len(boards))
	for _, b := range boards {
		snaps = append(snaps, b.Snapshot())
	}
	return snaps
}

// Stats returns hub-wide counters.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	boards := make([]*Board, 0, len(h.boards))
	for _, b := range h.boards {
		boards = append(boards, b)
	}
	st := Stats{Boards: len(h.boards), Publishes: h.publishes, Evictions: h.evictions, Backfills: h.backfills}
	h.mu.Unlock()
	for _, b := range boards {
		b.mu.Lock()
		st.Tiles += len(b.tiles)
		st.Subscribers += len(b.subs)
		b.mu.Unlock()
	}
	return st
}
