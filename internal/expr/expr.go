// Package expr defines the scalar expression AST and evaluator shared by
// the SQL engine and the skill layer. Expressions are built either by the
// SQL parser or directly by skills (e.g. GEL filter phrases) and evaluated
// row-at-a-time against an Env.
package expr

import (
	"fmt"
	"strings"

	"datachat/internal/dataset"
)

// Env resolves column references during evaluation.
type Env interface {
	// Lookup returns the value bound to name in the current row.
	Lookup(name string) (dataset.Value, error)
}

// MapEnv is an Env backed by a map; used in tests and for constant folding.
type MapEnv map[string]dataset.Value

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (dataset.Value, error) {
	if v, ok := m[name]; ok {
		return v, nil
	}
	for k, v := range m {
		if strings.EqualFold(k, name) {
			return v, nil
		}
	}
	return dataset.Null, fmt.Errorf("expr: unknown column %q", name)
}

// Expr is a scalar expression node.
type Expr interface {
	// Eval computes the expression's value for the row bound in env.
	Eval(env Env) (dataset.Value, error)
	// String renders the expression in SQL-compatible syntax.
	String() string
	// Columns appends the column names the expression references.
	Columns(dst []string) []string
}

// Literal is a constant value.
type Literal struct{ Value dataset.Value }

// Lit builds a literal expression.
func Lit(v dataset.Value) *Literal { return &Literal{Value: v} }

// Eval implements Expr.
func (l *Literal) Eval(Env) (dataset.Value, error) { return l.Value, nil }

// String implements Expr.
func (l *Literal) String() string {
	switch l.Value.Type {
	case dataset.TypeString:
		return "'" + strings.ReplaceAll(l.Value.S, "'", "''") + "'"
	case dataset.TypeTime:
		return "'" + l.Value.String() + "'"
	case dataset.TypeNull:
		return "NULL"
	default:
		return l.Value.String()
	}
}

// Columns implements Expr.
func (l *Literal) Columns(dst []string) []string { return dst }

// Col is a column reference.
type Col struct{ Name string }

// Column builds a column reference expression.
func Column(name string) *Col { return &Col{Name: name} }

// Eval implements Expr.
func (c *Col) Eval(env Env) (dataset.Value, error) { return env.Lookup(c.Name) }

// String implements Expr.
func (c *Col) String() string {
	if needsQuoting(c.Name) {
		return `"` + c.Name + `"`
	}
	return c.Name
}

func needsQuoting(name string) bool {
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9' && i > 0:
		case r == '.' && i > 0:
		default:
			return true
		}
	}
	return name == ""
}

// Columns implements Expr.
func (c *Col) Columns(dst []string) []string { return append(dst, c.Name) }

// BinOp identifies a binary operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpLike
	OpConcat
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpLike: "LIKE", OpConcat: "||",
}

// String returns the SQL spelling of the operator.
func (op BinOp) String() string { return binOpNames[op] }

// Binary is a binary operation node.
type Binary struct {
	Op          BinOp
	Left, Right Expr
}

// Bin builds a binary expression.
func Bin(op BinOp, left, right Expr) *Binary { return &Binary{Op: op, Left: left, Right: right} }

// String implements Expr.
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Left.String(), b.Op, b.Right.String())
}

// Columns implements Expr.
func (b *Binary) Columns(dst []string) []string {
	return b.Right.Columns(b.Left.Columns(dst))
}

// Eval implements Expr with SQL three-valued null semantics: any null
// operand yields null, except AND/OR which short-circuit where determined.
func (b *Binary) Eval(env Env) (dataset.Value, error) {
	if b.Op == OpAnd || b.Op == OpOr {
		return b.evalLogical(env)
	}
	left, err := b.Left.Eval(env)
	if err != nil {
		return dataset.Null, err
	}
	right, err := b.Right.Eval(env)
	if err != nil {
		return dataset.Null, err
	}
	if left.IsNull() || right.IsNull() {
		return dataset.Null, nil
	}
	switch b.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return evalArith(b.Op, left, right)
	case OpEq:
		return dataset.Bool(dataset.Equal(left, right)), nil
	case OpNe:
		return dataset.Bool(!dataset.Equal(left, right)), nil
	case OpLt:
		return dataset.Bool(dataset.Compare(left, right) < 0), nil
	case OpLe:
		return dataset.Bool(dataset.Compare(left, right) <= 0), nil
	case OpGt:
		return dataset.Bool(dataset.Compare(left, right) > 0), nil
	case OpGe:
		return dataset.Bool(dataset.Compare(left, right) >= 0), nil
	case OpLike:
		return evalLike(left, right)
	case OpConcat:
		return dataset.Str(left.String() + right.String()), nil
	default:
		return dataset.Null, fmt.Errorf("expr: unsupported binary op %v", b.Op)
	}
}

func (b *Binary) evalLogical(env Env) (dataset.Value, error) {
	left, err := b.Left.Eval(env)
	if err != nil {
		return dataset.Null, err
	}
	lb, lok := asBool(left)
	if b.Op == OpAnd && lok && !lb {
		return dataset.Bool(false), nil
	}
	if b.Op == OpOr && lok && lb {
		return dataset.Bool(true), nil
	}
	right, err := b.Right.Eval(env)
	if err != nil {
		return dataset.Null, err
	}
	rb, rok := asBool(right)
	switch b.Op {
	case OpAnd:
		switch {
		case lok && rok:
			return dataset.Bool(lb && rb), nil
		case rok && !rb:
			return dataset.Bool(false), nil
		default:
			return dataset.Null, nil
		}
	default: // OpOr
		switch {
		case lok && rok:
			return dataset.Bool(lb || rb), nil
		case rok && rb:
			return dataset.Bool(true), nil
		default:
			return dataset.Null, nil
		}
	}
}

func asBool(v dataset.Value) (bool, bool) {
	switch v.Type {
	case dataset.TypeBool:
		return v.B, true
	case dataset.TypeInt:
		return v.I != 0, true
	case dataset.TypeFloat:
		return v.F != 0, true
	default:
		return false, false
	}
}

func evalArith(op BinOp, left, right dataset.Value) (dataset.Value, error) {
	lf, lok := left.AsFloat()
	rf, rok := right.AsFloat()
	if !lok || !rok {
		if op == OpAdd && (left.Type == dataset.TypeString || right.Type == dataset.TypeString) {
			return dataset.Str(left.String() + right.String()), nil
		}
		return dataset.Null, fmt.Errorf("expr: cannot apply %v to %v and %v", op, left.Type, right.Type)
	}
	bothInt := left.Type == dataset.TypeInt && right.Type == dataset.TypeInt
	switch op {
	case OpAdd:
		if bothInt {
			return dataset.Int(left.I + right.I), nil
		}
		return dataset.Float(lf + rf), nil
	case OpSub:
		if bothInt {
			return dataset.Int(left.I - right.I), nil
		}
		return dataset.Float(lf - rf), nil
	case OpMul:
		if bothInt {
			return dataset.Int(left.I * right.I), nil
		}
		return dataset.Float(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return dataset.Null, nil
		}
		return dataset.Float(lf / rf), nil
	case OpMod:
		if !bothInt || right.I == 0 {
			return dataset.Null, nil
		}
		return dataset.Int(left.I % right.I), nil
	}
	return dataset.Null, fmt.Errorf("expr: unsupported arithmetic op %v", op)
}

// evalLike implements SQL LIKE with % and _ wildcards, case-insensitively
// (matching the forgiving behaviour of the DataChat UI).
func evalLike(left, right dataset.Value) (dataset.Value, error) {
	p := compileLikePattern(right.String())
	return dataset.Bool(p.match(left.String())), nil
}

// likeKind classifies a LIKE pattern by the cheapest matcher that decides it.
type likeKind int

const (
	likeExact    likeKind = iota // no '%'; '_' wildcards allowed (fixed length)
	likePrefix                   // lit%
	likeSuffix                   // %lit
	likeContains                 // %lit%
	likeSegments                 // only '%' wildcards, several literal segments
	likeGeneral                  // '%' and '_' mixed: dynamic-programming match
)

// likePattern is a LIKE pattern compiled once: the pattern is lowered a
// single time and classified so the common shapes (exact, prefix%, %suffix,
// %contains%, and multi-segment %-only patterns) match without allocating.
// Only likeGeneral still runs the DP table.
type likePattern struct {
	kind       likeKind
	lit        string   // lowered literal for exact/prefix/suffix/contains
	segs       []string // lowered middle segments for likeSegments
	anchorHead bool     // likeSegments: pattern does not start with '%'
	anchorTail bool     // likeSegments: pattern does not end with '%'
	lowered    string   // lowered whole pattern for likeGeneral
}

// compileLikePattern lowers and classifies pattern.
func compileLikePattern(pattern string) *likePattern {
	lowered := strings.ToLower(pattern)
	hasPct := strings.IndexByte(lowered, '%') >= 0
	hasUnd := strings.IndexByte(lowered, '_') >= 0
	switch {
	case !hasPct:
		return &likePattern{kind: likeExact, lit: lowered}
	case hasUnd:
		return &likePattern{kind: likeGeneral, lowered: lowered}
	}
	segs := strings.Split(lowered, "%")
	head, tail := segs[0] != "", segs[len(segs)-1] != ""
	var mid []string
	for _, s := range segs {
		if s != "" {
			mid = append(mid, s)
		}
	}
	switch {
	case len(mid) == 0: // all wildcards: matches everything
		return &likePattern{kind: likeContains, lit: ""}
	case len(mid) == 1 && head && !tail:
		return &likePattern{kind: likePrefix, lit: mid[0]}
	case len(mid) == 1 && !head && tail:
		return &likePattern{kind: likeSuffix, lit: mid[0]}
	case len(mid) == 1:
		return &likePattern{kind: likeContains, lit: mid[0]}
	default:
		return &likePattern{kind: likeSegments, segs: mid, anchorHead: head, anchorTail: tail}
	}
}

// match reports whether s matches the pattern, case-insensitively. ASCII
// inputs fold byte-wise with no allocation; non-ASCII inputs lower once so
// results agree with the byte-DP over two ToLower'd strings.
func (p *likePattern) match(s string) bool {
	if p.kind == likeGeneral {
		return likeMatch(strings.ToLower(s), p.lowered)
	}
	if !isASCII(s) {
		s = strings.ToLower(s)
	}
	switch p.kind {
	case likeExact:
		return foldEqualWild(s, p.lit)
	case likePrefix:
		return foldHasPrefix(s, p.lit)
	case likeSuffix:
		return foldHasSuffix(s, p.lit)
	case likeContains:
		return foldIndex(s, p.lit) >= 0
	default: // likeSegments
		if p.anchorHead {
			if !foldHasPrefix(s, p.segs[0]) {
				return false
			}
			s = s[len(p.segs[0]):]
		}
		segs := p.segs
		if p.anchorHead {
			segs = segs[1:]
		}
		if p.anchorTail {
			last := segs[len(segs)-1]
			if !foldHasSuffix(s, last) {
				return false
			}
			s = s[:len(s)-len(last)]
			segs = segs[:len(segs)-1]
		}
		for _, seg := range segs {
			i := foldIndex(s, seg)
			if i < 0 {
				return false
			}
			s = s[i+len(seg):]
		}
		return true
	}
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// foldByte lowers an ASCII byte; non-ASCII bytes (and already-lowered
// input) pass through unchanged, so folding a ToLower'd string is identity.
func foldByte(b byte) byte {
	if 'A' <= b && b <= 'Z' {
		return b + 32
	}
	return b
}

// foldEqualWild compares s against an already-lowered fixed-length pattern
// where '_' matches any single byte.
func foldEqualWild(s, pat string) bool {
	if len(s) != len(pat) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if pat[i] != '_' && foldByte(s[i]) != pat[i] {
			return false
		}
	}
	return true
}

func foldEqual(s, pat string) bool {
	if len(s) != len(pat) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if foldByte(s[i]) != pat[i] {
			return false
		}
	}
	return true
}

func foldHasPrefix(s, pat string) bool {
	return len(s) >= len(pat) && foldEqual(s[:len(pat)], pat)
}

func foldHasSuffix(s, pat string) bool {
	return len(s) >= len(pat) && foldEqual(s[len(s)-len(pat):], pat)
}

func foldIndex(s, pat string) int {
	if pat == "" {
		return 0
	}
	for i := 0; i+len(pat) <= len(s); i++ {
		if foldEqual(s[i:i+len(pat)], pat) {
			return i
		}
	}
	return -1
}

// likeMatch is the general matcher for patterns mixing '%' and '_': a
// byte-wise dynamic program over the two lowered strings. It is the
// reference the fast paths above must agree with (see the property test).
func likeMatch(s, pattern string) bool {
	// Dynamic-programming match over bytes; patterns are short.
	m, n := len(s), len(pattern)
	prev := make([]bool, m+1)
	cur := make([]bool, m+1)
	prev[0] = true
	for j := 1; j <= n; j++ {
		p := pattern[j-1]
		cur[0] = prev[0] && p == '%'
		for i := 1; i <= m; i++ {
			switch p {
			case '%':
				cur[i] = cur[i-1] || prev[i]
			case '_':
				cur[i] = prev[i-1]
			default:
				cur[i] = prev[i-1] && s[i-1] == p
			}
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// Unary is a unary operation: NOT or numeric negation.
type Unary struct {
	Negate  bool // true for numeric -, false for logical NOT
	Operand Expr
}

// Not builds a logical negation.
func Not(operand Expr) *Unary { return &Unary{Negate: false, Operand: operand} }

// Neg builds a numeric negation.
func Neg(operand Expr) *Unary { return &Unary{Negate: true, Operand: operand} }

// Eval implements Expr.
func (u *Unary) Eval(env Env) (dataset.Value, error) {
	v, err := u.Operand.Eval(env)
	if err != nil {
		return dataset.Null, err
	}
	if v.IsNull() {
		return dataset.Null, nil
	}
	if u.Negate {
		switch v.Type {
		case dataset.TypeInt:
			return dataset.Int(-v.I), nil
		case dataset.TypeFloat:
			return dataset.Float(-v.F), nil
		default:
			return dataset.Null, fmt.Errorf("expr: cannot negate %v", v.Type)
		}
	}
	b, ok := asBool(v)
	if !ok {
		return dataset.Null, fmt.Errorf("expr: NOT applied to %v", v.Type)
	}
	return dataset.Bool(!b), nil
}

// String implements Expr.
func (u *Unary) String() string {
	if u.Negate {
		return "(-" + u.Operand.String() + ")"
	}
	return "(NOT " + u.Operand.String() + ")"
}

// Columns implements Expr.
func (u *Unary) Columns(dst []string) []string { return u.Operand.Columns(dst) }

// IsNull tests a value for (non-)nullness.
type IsNull struct {
	Operand Expr
	Negated bool // IS NOT NULL
}

// Eval implements Expr.
func (e *IsNull) Eval(env Env) (dataset.Value, error) {
	v, err := e.Operand.Eval(env)
	if err != nil {
		return dataset.Null, err
	}
	return dataset.Bool(v.IsNull() != e.Negated), nil
}

// String implements Expr.
func (e *IsNull) String() string {
	if e.Negated {
		return "(" + e.Operand.String() + " IS NOT NULL)"
	}
	return "(" + e.Operand.String() + " IS NULL)"
}

// Columns implements Expr.
func (e *IsNull) Columns(dst []string) []string { return e.Operand.Columns(dst) }

// In tests membership in a literal list.
type In struct {
	Operand Expr
	List    []Expr
	Negated bool
}

// Eval implements Expr.
func (e *In) Eval(env Env) (dataset.Value, error) {
	v, err := e.Operand.Eval(env)
	if err != nil {
		return dataset.Null, err
	}
	if v.IsNull() {
		return dataset.Null, nil
	}
	sawNull := false
	for _, item := range e.List {
		iv, err := item.Eval(env)
		if err != nil {
			return dataset.Null, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if dataset.Equal(v, iv) {
			return dataset.Bool(!e.Negated), nil
		}
	}
	if sawNull {
		return dataset.Null, nil
	}
	return dataset.Bool(e.Negated), nil
}

// String implements Expr.
func (e *In) String() string {
	items := make([]string, len(e.List))
	for i, item := range e.List {
		items[i] = item.String()
	}
	op := "IN"
	if e.Negated {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", e.Operand.String(), op, strings.Join(items, ", "))
}

// Columns implements Expr.
func (e *In) Columns(dst []string) []string {
	dst = e.Operand.Columns(dst)
	for _, item := range e.List {
		dst = item.Columns(dst)
	}
	return dst
}

// Between tests range membership, inclusive on both ends.
type Between struct {
	Operand Expr
	Lo, Hi  Expr
	Negated bool
}

// Eval implements Expr.
func (e *Between) Eval(env Env) (dataset.Value, error) {
	v, err := e.Operand.Eval(env)
	if err != nil {
		return dataset.Null, err
	}
	lo, err := e.Lo.Eval(env)
	if err != nil {
		return dataset.Null, err
	}
	hi, err := e.Hi.Eval(env)
	if err != nil {
		return dataset.Null, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return dataset.Null, nil
	}
	in := dataset.Compare(v, lo) >= 0 && dataset.Compare(v, hi) <= 0
	return dataset.Bool(in != e.Negated), nil
}

// String implements Expr.
func (e *Between) String() string {
	op := "BETWEEN"
	if e.Negated {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("(%s %s %s AND %s)", e.Operand.String(), op, e.Lo.String(), e.Hi.String())
}

// Columns implements Expr.
func (e *Between) Columns(dst []string) []string {
	return e.Hi.Columns(e.Lo.Columns(e.Operand.Columns(dst)))
}

// Case is a searched CASE expression.
type Case struct {
	Whens []When
	Else  Expr // may be nil
}

// When is one WHEN cond THEN result arm.
type When struct {
	Cond, Result Expr
}

// Eval implements Expr.
func (c *Case) Eval(env Env) (dataset.Value, error) {
	for _, w := range c.Whens {
		cond, err := w.Cond.Eval(env)
		if err != nil {
			return dataset.Null, err
		}
		if b, ok := asBool(cond); ok && b {
			return w.Result.Eval(env)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(env)
	}
	return dataset.Null, nil
}

// String implements Expr.
func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond.String(), w.Result.String())
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// Columns implements Expr.
func (c *Case) Columns(dst []string) []string {
	for _, w := range c.Whens {
		dst = w.Result.Columns(w.Cond.Columns(dst))
	}
	if c.Else != nil {
		dst = c.Else.Columns(dst)
	}
	return dst
}

// EvalBool evaluates e and interprets the result as a predicate: null and
// false both reject the row, matching SQL WHERE semantics.
func EvalBool(e Expr, env Env) (bool, error) {
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	b, ok := asBool(v)
	return ok && b, nil
}
