// Command dcskills prints the skill catalog — the expanded form of the
// paper's Table 1 — grouped by category, with each skill's GEL sentence,
// Python API method, parameters, and whether the DAG compiler can merge it
// into SQL.
package main

import (
	"flag"
	"fmt"
	"strings"

	"datachat/internal/skills"
)

func main() {
	verbose := flag.Bool("v", false, "show parameters for each skill")
	flag.Parse()

	reg := skills.NewRegistry()
	byCat := reg.ByCategory()
	total := 0
	for _, cat := range skills.Categories() {
		defs := byCat[cat]
		if len(defs) == 0 {
			continue
		}
		fmt.Printf("%s (%d skills)\n%s\n", cat, len(defs), strings.Repeat("=", len(string(cat))+12))
		for _, def := range defs {
			relational := ""
			if def.Relational {
				relational = "  [SQL-mergeable]"
			}
			fmt.Printf("  %-22s %s%s\n", def.Name, def.Summary, relational)
			fmt.Printf("  %22s GEL:    %s\n", "", def.GEL)
			fmt.Printf("  %22s Python: .%s(...)\n", "", def.PyName)
			if *verbose {
				for _, p := range def.Params {
					req := "optional"
					if p.Required {
						req = "required"
					}
					fmt.Printf("  %22s   - %s (%s, %s): %s\n", "", p.Name, p.Type, req, p.Doc)
				}
			}
			total++
		}
		fmt.Println()
	}
	fmt.Printf("Table 1 — %d skills across %d categories\n", total, len(byCat))
}
