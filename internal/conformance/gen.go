package conformance

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"datachat/internal/dataset"
)

// The generated corpus is built from three small fixtures chosen to force
// 3VL decisions everywhere: people has null ages, orders has a null amount
// and a dangling person_id (left-join probe), wh.events lives in a cloud
// database so scans, pushdown, and the degrade ladder are reachable.
const peopleCSV = `id,age,name,city
1,34,ann,austin
2,19,bob,boston
3,,cara,chicago
4,45,dan,austin
5,28,eve,boston
6,61,fay,chicago
7,23,gus,austin
8,,hal,boston
9,52,ivy,chicago
10,31,joe,austin`

const ordersCSV = `oid,person_id,amount,status
100,1,25.5,paid
101,2,10,open
102,1,300,paid
103,3,,open
104,5,42.75,paid
105,7,5.25,refunded
106,9,120,paid
107,2,60,open
108,11,75,paid
109,4,18.5,paid`

const eventsCSV = `eid,kind,val
1,click,10
2,view,3
3,click,7
4,buy,99
5,view,1
6,click,12`

var fixtureCSV = map[string]string{
	"people":    peopleCSV,
	"orders":    ordersCSV,
	"wh.events": eventsCSV,
}

// genSpec is one corpus entry before expectations are computed. The gel
// field is the source program for every dialect: pyapi and recipe bodies
// are derived from its canonical lowering through the product's own
// renderers, so the corpus can never drift from what the front ends emit.
type genSpec struct {
	name     string
	tags     string
	dialect  string // "" = gel
	kind     string
	fixtures []string
	gel      []string
	phrase   string // phrase-dialect sentence (fixtures[0] is the dataset)
	explain  []string
	dryErr   string
	execErr  string
}

func corpusSpecs() []genSpec {
	g := func(lines ...string) []string { return lines }
	people := []string{"people"}
	orders := []string{"orders"}
	both := []string{"people", "orders"}
	events := []string{"wh.events"}

	var specs []genSpec
	add := func(s genSpec) { specs = append(specs, s) }

	// --- filters: comparison operators, strings, 3VL nulls, compounds ---
	filters := []struct{ name, tags, cond string }{
		{"filter-age-ge", "filter int", "age >= 30"},
		{"filter-age-gt", "filter int", "age > 30"},
		{"filter-age-le", "filter int nulls", "age <= 30"},
		{"filter-age-lt", "filter int nulls", "age < 30"},
		{"filter-age-eq", "filter int", "age = 45"},
		{"filter-age-ne", "filter int nulls", "age <> 34"},
		{"filter-city-eq", "filter string", "city = 'austin'"},
		{"filter-city-ne", "filter string", "city <> 'austin'"},
		{"filter-null", "filter nulls 3vl", "age is null"},
		{"filter-not-null", "filter nulls 3vl", "age is not null"},
		{"filter-and", "filter compound", "age >= 20 and city = 'austin'"},
		{"filter-or", "filter compound", "city = 'boston' or city = 'chicago'"},
		{"filter-between", "filter range", "age between 20 and 40"},
		{"filter-in", "filter list", "city in ('austin', 'chicago')"},
		{"filter-like", "filter string", "name like 'a%'"},
		{"filter-at-least", "filter gelphrase", "age is at least 45"},
	}
	for _, f := range filters {
		add(genSpec{name: f.name, tags: f.tags, fixtures: people,
			gel: g("Use the dataset people", "Keep the rows where "+f.cond)})
	}
	add(genSpec{name: "drop-age-ge", tags: "filter drop nulls 3vl", fixtures: people,
		gel: g("Use the dataset people", "Drop the rows where age >= 30")})
	add(genSpec{name: "drop-city-eq", tags: "filter drop string", fixtures: people,
		gel: g("Use the dataset people", "Drop the rows where city = 'boston'")})
	add(genSpec{name: "filter-amount-ge", tags: "filter float nulls 3vl", fixtures: orders,
		gel: g("Use the dataset orders", "Keep the rows where amount >= 40")})
	add(genSpec{name: "filter-status-or-null", tags: "filter compound nulls", fixtures: orders,
		gel: g("Use the dataset orders", "Keep the rows where status = 'open' or amount is null")})

	// --- sort / limit ---
	add(genSpec{name: "sort-age-asc", tags: "sort nulls", fixtures: people,
		gel: g("Use the dataset people", "Sort the rows by age")})
	add(genSpec{name: "sort-age-desc", tags: "sort nulls", fixtures: people,
		gel: g("Use the dataset people", "Sort the rows by age in descending order")})
	add(genSpec{name: "sort-multi", tags: "sort multikey", fixtures: people,
		gel: g("Use the dataset people", "Sort the rows by city, age")})
	add(genSpec{name: "sort-name-desc", tags: "sort string", fixtures: people,
		gel: g("Use the dataset people", "Sort the rows by name in descending order")})
	add(genSpec{name: "limit-3", tags: "limit", fixtures: people,
		gel: g("Use the dataset people", "Limit the data to 3 rows")})
	add(genSpec{name: "limit-beyond", tags: "limit edge", fixtures: people,
		gel: g("Use the dataset people", "Limit the data to 100 rows")})
	add(genSpec{name: "sort-limit", tags: "sort limit topk", fixtures: people,
		gel: g("Use the dataset people",
			"Sort the rows by age in descending order",
			"Limit the data to 3 rows")})

	// --- aggregation: every function, grouped and global, aliases, nulls ---
	aggs := []struct {
		name, tags string
		lines      []string
	}{
		{"agg-count", "agg count", g("Use the dataset people", "Compute the count of records")},
		{"agg-count-col", "agg count nulls 3vl", g("Use the dataset people", "Compute the count of age")},
		{"agg-sum", "agg sum nulls", g("Use the dataset people", "Compute the sum of age")},
		{"agg-avg", "agg avg nulls", g("Use the dataset people", "Compute the avg of age")},
		{"agg-min", "agg min", g("Use the dataset people", "Compute the min of age")},
		{"agg-max", "agg max", g("Use the dataset people", "Compute the max of age")},
		{"agg-count-distinct", "agg distinct", g("Use the dataset people", "Compute the count_distinct of city")},
		{"agg-by-city-count", "agg groupby", g("Use the dataset people", "Compute the count of records for each city")},
		{"agg-by-city-sum", "agg groupby nulls 3vl", g("Use the dataset people", "Compute the sum of age for each city")},
		{"agg-by-city-avg", "agg groupby nulls", g("Use the dataset people", "Compute the avg of age for each city")},
		{"agg-by-city-minmax", "agg groupby multi", g("Use the dataset people", "Compute the min of age and max of age for each city")},
		{"agg-by-status-sum", "agg groupby nulls 3vl", g("Use the dataset orders", "Compute the sum of amount for each status")},
		{"agg-multi", "agg multi", g("Use the dataset people", "Compute the count of records and sum of age and avg of age")},
		{"agg-two-keys", "agg groupby multikey", g("Use the dataset orders", "Compute the count of records for each status, person_id")},
		{"agg-alias", "agg alias", g("Use the dataset people", "Compute the sum of age and call the computed columns total_age")},
		{"agg-alias-multi", "agg alias multi", g("Use the dataset people", "Compute the count of records and sum of age and call the computed columns n, total")},
	}
	for _, a := range aggs {
		fx := people
		if strings.Contains(a.lines[0], "orders") {
			fx = orders
		}
		add(genSpec{name: a.name, tags: a.tags, fixtures: fx, gel: a.lines})
	}

	// --- distinct ---
	add(genSpec{name: "distinct-city", tags: "distinct project", fixtures: people,
		gel: g("Use the dataset people", "Keep the columns city", "Remove duplicate rows")})
	add(genSpec{name: "distinct-over-city", tags: "distinct keyed", fixtures: people,
		gel: g("Use the dataset people", "Remove duplicate rows over city")})
	add(genSpec{name: "distinct-status", tags: "distinct project sort", fixtures: orders,
		gel: g("Use the dataset orders", "Keep the columns status", "Remove duplicate rows", "Sort the rows by status")})

	// --- column operations ---
	add(genSpec{name: "keep-columns", tags: "project", fixtures: people,
		gel: g("Use the dataset people", "Keep the columns id, name")})
	add(genSpec{name: "drop-columns", tags: "project", fixtures: people,
		gel: g("Use the dataset people", "Drop the columns city")})
	add(genSpec{name: "rename-column", tags: "rename", fixtures: people,
		gel: g("Use the dataset people", "Rename the column name to full_name")})
	add(genSpec{name: "new-column-formula", tags: "derive nulls 3vl", fixtures: people,
		gel: g("Use the dataset people", "Create a new column age2 as age * 2")})
	add(genSpec{name: "new-column-text", tags: "derive literal", fixtures: people,
		gel: g("Use the dataset people", "Create a new column origin with text earth")})
	add(genSpec{name: "change-type", tags: "cast", fixtures: people,
		gel: g("Use the dataset people", "Change the type of age to float")})
	add(genSpec{name: "fill-null", tags: "nulls fill", fixtures: people,
		gel: g("Use the dataset people", "Fill the null values in age with 0")})
	add(genSpec{name: "replace-values", tags: "replace", fixtures: people,
		gel: g("Use the dataset people", "Replace austin with atx in the column city")})

	// --- joins ---
	add(genSpec{name: "join-inner", tags: "join", fixtures: both,
		gel: g("Join the datasets people and orders on id = person_id", "Sort the rows by oid")})
	add(genSpec{name: "join-left", tags: "join left nulls 3vl", fixtures: both,
		gel: g("Left join the datasets people and orders on id = person_id", "Sort the rows by id, oid")})
	add(genSpec{name: "join-filter", tags: "join filter", fixtures: both,
		gel: g("Join the datasets people and orders on id = person_id",
			"Keep the rows where amount >= 50", "Sort the rows by oid")})
	add(genSpec{name: "join-compute", tags: "join agg", fixtures: both,
		gel: g("Join the datasets people and orders on id = person_id",
			"Compute the sum of amount for each city", "Sort the rows by city")})

	// --- concatenation ---
	add(genSpec{name: "concat-halves", tags: "concat nulls 3vl", fixtures: people,
		gel: g("Use the dataset people", "Keep the rows where age >= 30",
			"Use the dataset people", "Keep the rows where age < 30",
			"Concatenate the datasets s2 and s4", "Sort the rows by id")})
	add(genSpec{name: "concat-dedupe", tags: "concat dedupe", fixtures: people,
		gel: g("Use the dataset people", "Keep the rows where age >= 30",
			"Use the dataset people", "Keep the rows where age >= 45",
			"Concatenate the datasets s2 and s4 remove all duplicates", "Sort the rows by id")})
	add(genSpec{name: "concat-self", tags: "concat", fixtures: people,
		gel: g("Concatenate the datasets people and people", "Sort the rows by id")})

	// --- multi-step chains ---
	add(genSpec{name: "chain-filter-sort-limit", tags: "chain", fixtures: people,
		gel: g("Use the dataset people", "Keep the rows where age is not null",
			"Sort the rows by age in descending order", "Limit the data to 4 rows")})
	add(genSpec{name: "chain-filter-agg", tags: "chain agg", fixtures: people,
		gel: g("Use the dataset people",
			"Keep the rows where city = 'austin' or city = 'boston'",
			"Compute the avg of age for each city", "Sort the rows by city")})
	add(genSpec{name: "chain-rename-filter", tags: "chain rename", fixtures: people,
		gel: g("Use the dataset people", "Rename the column age to years",
			"Keep the rows where years >= 30")})
	add(genSpec{name: "chain-newcol-agg", tags: "chain derive agg nulls", fixtures: people,
		gel: g("Use the dataset people", "Create a new column age2 as age * 2",
			"Compute the sum of age2")})
	add(genSpec{name: "chain-drop-distinct-sort", tags: "chain", fixtures: people,
		gel: g("Use the dataset people", "Drop the columns id, name",
			"Remove duplicate rows", "Sort the rows by city, age")})
	add(genSpec{name: "chain-long", tags: "chain deep", fixtures: people,
		gel: g("Use the dataset people", "Keep the rows where age is not null",
			"Create a new column decade as age / 10", "Keep the columns city, decade",
			"Sort the rows by city, decade", "Limit the data to 6 rows")})

	// --- visualization (charts + message instead of a table) ---
	add(genSpec{name: "viz-age", tags: "viz", fixtures: people,
		gel: g("Use the dataset people", "Visualize age")})
	add(genSpec{name: "viz-age-by-city", tags: "viz groupby", fixtures: people,
		gel: g("Use the dataset people", "Visualize age by city")})
	add(genSpec{name: "viz-amount-by-status", tags: "viz groupby nulls", fixtures: orders,
		gel: g("Use the dataset orders", "Visualize amount by status")})
	add(genSpec{name: "viz-filtered", tags: "viz filter", fixtures: people,
		gel: g("Use the dataset people", "Visualize age where city = 'austin'")})
	add(genSpec{name: "viz-after-filter", tags: "viz chain", fixtures: people,
		gel: g("Use the dataset people", "Keep the rows where age >= 25", "Visualize age by city")})

	// --- phrase dialect (§4.8 phrase-based front end, body verbatim) ---
	add(genSpec{name: "phrase-viz-age", tags: "phrase viz", dialect: "phrase", fixtures: people,
		phrase: "Visualize age"})
	add(genSpec{name: "phrase-viz-age-by-city", tags: "phrase viz groupby", dialect: "phrase", fixtures: people,
		phrase: "Visualize age by city"})
	add(genSpec{name: "phrase-viz-amount", tags: "phrase viz", dialect: "phrase", fixtures: orders,
		phrase: "Visualize amount"})
	add(genSpec{name: "phrase-viz-amount-by-status", tags: "phrase viz groupby", dialect: "phrase", fixtures: orders,
		phrase: "Visualize amount by status"})
	add(genSpec{name: "phrase-viz-filtered", tags: "phrase viz filter", dialect: "phrase", fixtures: people,
		phrase: "Visualize age where city = 'austin'"})
	add(genSpec{name: "phrase-viz-id-by-city", tags: "phrase viz", dialect: "phrase", fixtures: people,
		phrase: "Visualize id by city"})

	// --- pyapi dialect (bodies rendered from the canonical lowering) ---
	pyapis := []struct {
		name, tags string
		fx         []string
		lines      []string
	}{
		{"py-filter-age", "pyapi filter", people, g("Use the dataset people", "Keep the rows where age >= 40")},
		{"py-filter-city", "pyapi filter string", people, g("Use the dataset people", "Keep the rows where city = 'chicago'")},
		{"py-sort-desc", "pyapi sort", people, g("Use the dataset people", "Sort the rows by age in descending order")},
		{"py-agg-count-by-city", "pyapi agg groupby", people, g("Use the dataset people", "Compute the count of records for each city")},
		{"py-agg-sum-by-status", "pyapi agg groupby nulls", orders, g("Use the dataset orders", "Compute the sum of amount for each status")},
		{"py-keep-columns", "pyapi project", people, g("Use the dataset people", "Keep the columns id, city")},
		{"py-new-column", "pyapi derive", people, g("Use the dataset people", "Create a new column older as age + 1")},
		{"py-join", "pyapi join", both, g("Join the datasets people and orders on id = person_id", "Sort the rows by oid")},
		{"py-chain", "pyapi chain", people, g("Use the dataset people", "Keep the rows where age is not null",
			"Sort the rows by age", "Limit the data to 5 rows")},
		{"py-limit", "pyapi limit", people, g("Use the dataset people", "Limit the data to 2 rows")},
	}
	for _, p := range pyapis {
		add(genSpec{name: p.name, tags: p.tags, dialect: "pyapi", fixtures: p.fx, gel: p.lines})
	}

	// --- recipe dialect (raw canonical steps as JSON) ---
	recipes := []struct {
		name, tags string
		fx         []string
		lines      []string
	}{
		{"rec-filter-in", "recipe filter list", people, g("Use the dataset people", "Keep the rows where city in ('austin', 'boston')")},
		{"rec-agg-alias", "recipe agg alias", people, g("Use the dataset people", "Compute the max of age and call the computed columns oldest")},
		{"rec-join-left", "recipe join left nulls", both, g("Left join the datasets people and orders on id = person_id", "Sort the rows by id, oid")},
		{"rec-chain", "recipe chain", people, g("Use the dataset people", "Keep the rows where age >= 20",
			"Keep the columns id, age", "Sort the rows by age")},
		{"rec-sort-desc-multi", "recipe sort multikey", people, g("Use the dataset people", "Sort the rows by city, age in descending order")},
		{"rec-limit-filter", "recipe chain limit", orders, g("Use the dataset orders", "Keep the rows where status = 'paid'", "Limit the data to 3 rows")},
	}
	for _, r := range recipes {
		add(genSpec{name: r.name, tags: r.tags, dialect: "recipe", fixtures: r.fx, gel: r.lines})
	}

	// --- cloud scans: LoadTable, pushdown shape, degrade ladder ---
	add(genSpec{name: "load-events", tags: "cloud scan", fixtures: events,
		gel: g("Load the table events from the database wh", "Sort the rows by eid")})
	add(genSpec{name: "load-events-filter", tags: "cloud scan pushdown", fixtures: events,
		gel:     g("Load the table events from the database wh", "Keep the rows where val >= 5"),
		explain: []string{"pushdown condition", "pass pushdown fired"}})
	add(genSpec{name: "load-events-columns", tags: "cloud scan pushdown project", fixtures: events,
		gel:     g("Load the table events from the database wh", "Keep the columns eid, kind"),
		explain: []string{"pushdown columns", "pass pushdown fired"}})
	add(genSpec{name: "load-events-agg", tags: "cloud scan agg", fixtures: events,
		gel: g("Load the table events from the database wh",
			"Compute the sum of val for each kind", "Sort the rows by kind")})

	// --- plan-shape assertions on session datasets ---
	add(genSpec{name: "explain-fuse-filters", tags: "explain fuse", fixtures: people,
		gel:     g("Use the dataset people", "Keep the rows where age >= 20", "Keep the rows where age <= 50"),
		explain: []string{"pass fuse fired", "tasks <= 2"}})
	add(genSpec{name: "explain-fuse-projections", tags: "explain fuse project", fixtures: people,
		gel:     g("Use the dataset people", "Keep the columns id, age, name", "Keep the columns id, age"),
		explain: []string{"pass fuse fired", "tasks <= 2"}})
	add(genSpec{name: "explain-linear-no-slice", tags: "explain slice", fixtures: people,
		gel:     g("Use the dataset people", "Keep the rows where age >= 30", "Sort the rows by age"),
		explain: []string{"pass slice not-fired", "pass cache-probe not-fired"}})
	add(genSpec{name: "explain-fuse-limits", tags: "explain fuse limit", fixtures: people,
		gel:     g("Use the dataset people", "Limit the data to 5 rows", "Limit the data to 3 rows"),
		explain: []string{"pass fuse fired", "tasks <= 2"}})

	// --- degraded: every scan fails permanently, the degrade ladder answers ---
	add(genSpec{name: "degraded-scan", tags: "cloud degraded faults", kind: "degraded", fixtures: events,
		gel: g("Load the table events from the database wh", "Sort the rows by eid")})
	add(genSpec{name: "degraded-agg", tags: "cloud degraded faults agg", kind: "degraded", fixtures: events,
		gel: g("Load the table events from the database wh",
			"Compute the count of records for each kind", "Sort the rows by kind")})

	// --- lock: §2.4 single-writer contention around the pipeline ---
	add(genSpec{name: "lock-filter", tags: "lock contention", kind: "lock", fixtures: people,
		gel: g("Use the dataset people", "Keep the rows where age >= 30")})
	add(genSpec{name: "lock-join", tags: "lock contention join", kind: "lock", fixtures: both,
		gel: g("Join the datasets people and orders on id = person_id", "Sort the rows by oid")})

	// --- cache: replaying the same recipe must hit the sub-DAG cache ---
	add(genSpec{name: "cache-chain", tags: "cache replay", kind: "cache", fixtures: people,
		gel: g("Use the dataset people", "Keep the rows where age >= 25", "Sort the rows by age")})
	add(genSpec{name: "cache-agg", tags: "cache replay agg", kind: "cache", fixtures: people,
		gel: g("Use the dataset people", "Compute the count of records for each city", "Sort the rows by city")})

	// --- runtime errors: type-check clean, fail identically on all routes ---
	add(genSpec{name: "error-sql-missing-table", tags: "error sql", fixtures: people,
		gel:     g("Run the sql query select * from nope"),
		execErr: "nope"})

	// --- dry-run rejections: flagged by planning, never executed ---
	add(genSpec{name: "dry-bad-filter-column", tags: "dryrun typecheck", fixtures: people,
		gel:    g("Use the dataset people", "Keep the rows where agee >= 30"),
		dryErr: `unknown column "agee"`})
	add(genSpec{name: "dry-bad-sort-column", tags: "dryrun typecheck sort", fixtures: people,
		gel:    g("Use the dataset people", "Sort the rows by height"),
		dryErr: `unknown column "height"`})
	add(genSpec{name: "dry-bad-agg-column", tags: "dryrun typecheck agg", fixtures: people,
		gel:    g("Use the dataset people", "Compute the sum of salary for each city"),
		dryErr: `unknown aggregate column "salary"`})
	add(genSpec{name: "dry-bad-dropped-column", tags: "dryrun typecheck project", fixtures: people,
		gel:    g("Use the dataset people", "Drop the columns age", "Keep the rows where age >= 30"),
		dryErr: `unknown column "age"`})

	return specs
}

// buildCase materializes one spec as a Case (body in its dialect, fixtures
// attached, expectations still empty).
func buildCase(s genSpec) (*Case, error) {
	c := &Case{Name: s.name, Tags: strings.Fields(s.tags), Kind: s.kind, ExpectCharts: -1,
		ExpectError: s.execErr, DryRunError: s.dryErr}
	for _, f := range s.fixtures {
		csv, ok := fixtureCSV[f]
		if !ok {
			return nil, fmt.Errorf("conformance: gen %s: unknown fixture %q", s.name, f)
		}
		if dot := strings.IndexByte(f, '.'); dot > 0 {
			c.DBFixtures = append(c.DBFixtures, DBFixture{DB: f[:dot], Table: f[dot+1:], CSV: csv})
		} else {
			c.Fixtures = append(c.Fixtures, Fixture{Name: f, CSV: csv})
		}
	}
	if len(s.explain) > 0 {
		asserts, err := parseExplainAsserts(strings.Join(s.explain, "\n"))
		if err != nil {
			return nil, fmt.Errorf("conformance: gen %s: %w", s.name, err)
		}
		c.Explain = asserts
	}
	dialect := s.dialect
	if dialect == "" {
		dialect = "gel"
	}
	switch dialect {
	case "gel":
		c.Dialect = "gel"
		c.Body = strings.Join(s.gel, "\n")
	case "phrase":
		c.Dialect = "phrase"
		c.PhraseDataset = s.fixtures[0]
		c.Body = s.phrase
	case "pyapi", "recipe":
		body, err := convertBody(dialect, strings.Join(s.gel, "\n"))
		if err != nil {
			return nil, fmt.Errorf("conformance: gen %s: %w", s.name, err)
		}
		c.Dialect = dialect
		c.Body = body
	default:
		return nil, fmt.Errorf("conformance: gen %s: unknown dialect %q", s.name, dialect)
	}
	if err := Lower(c); err != nil {
		return nil, err
	}
	return c, nil
}

// convertBody lowers a GEL program and re-renders it in another dialect
// through the product's own renderers.
func convertBody(dialect, gelBody string) (string, error) {
	tmp := &Case{Name: "convert", Dialect: "gel", Body: gelBody}
	if err := Lower(tmp); err != nil {
		return "", err
	}
	switch dialect {
	case "pyapi":
		reg, _ := frontEnds()
		var lines []string
		for _, inv := range invsOf(tmp.Steps) {
			line, err := reg.RenderPython(inv)
			if err != nil {
				return "", err
			}
			lines = append(lines, line)
		}
		return strings.Join(lines, "\n"), nil
	case "recipe":
		j, err := json.MarshalIndent(tmp.Steps, "", "  ")
		if err != nil {
			return "", err
		}
		return string(j), nil
	}
	return "", fmt.Errorf("cannot convert to %q", dialect)
}

// FillExpectations computes a case's expected outcome by running the
// reference route (recipe replay) — or, for dry-run rejection cases, by
// confirming the planner flags them. The result lands back in the case as
// its golden expectation.
func FillExpectations(c *Case) error {
	if c.DryRunError != "" {
		_, err := DryRun(c)
		if err == nil {
			return fmt.Errorf("conformance: gen %s: dry-run succeeded, want error containing %q", c.Name, c.DryRunError)
		}
		if !strings.Contains(err.Error(), c.DryRunError) {
			return fmt.Errorf("conformance: gen %s: dry-run error %q does not contain %q", c.Name, err.Error(), c.DryRunError)
		}
		return nil
	}
	rr, err := runRecipe(c)
	if err != nil {
		return fmt.Errorf("conformance: gen %s: %w", c.Name, err)
	}
	if c.ExpectError != "" {
		if rr.Err == nil {
			return fmt.Errorf("conformance: gen %s: succeeded, want error containing %q", c.Name, c.ExpectError)
		}
		if !strings.Contains(rr.Err.Error(), c.ExpectError) {
			return fmt.Errorf("conformance: gen %s: error %q does not contain %q", c.Name, rr.Err.Error(), c.ExpectError)
		}
		return nil
	}
	if rr.Err != nil {
		return fmt.Errorf("conformance: gen %s: reference route failed: %w", c.Name, rr.Err)
	}
	if rr.Table != nil {
		var b strings.Builder
		if err := dataset.WriteCSV(rr.Table, &b); err != nil {
			return fmt.Errorf("conformance: gen %s: %w", c.Name, err)
		}
		c.Expect = strings.TrimRight(b.String(), "\n")
	}
	if rr.NumCharts > 0 {
		c.ExpectCharts = rr.NumCharts
		c.ExpectMessage = rr.Message
	}
	c.ExpectDegraded = rr.Degraded
	return nil
}

// Generate builds the full deterministic corpus with expectations filled.
func Generate() ([]*Case, error) {
	specs := corpusSpecs()
	seen := map[string]bool{}
	cases := make([]*Case, 0, len(specs))
	for _, s := range specs {
		if seen[s.name] {
			return nil, fmt.Errorf("conformance: gen: duplicate case name %q", s.name)
		}
		seen[s.name] = true
		c, err := buildCase(s)
		if err != nil {
			return nil, err
		}
		if err := FillExpectations(c); err != nil {
			return nil, err
		}
		if errs := Lint(c); len(errs) > 0 {
			return nil, fmt.Errorf("conformance: gen %s: %v", c.Name, errs[0])
		}
		cases = append(cases, c)
	}
	return cases, nil
}

// WriteCorpus writes generated cases to dir as gen_<name>.case files,
// removing stale gen_ files no longer produced.
func WriteCorpus(dir string, cases []*Case) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	want := map[string]bool{}
	for _, c := range cases {
		name := "gen_" + c.Name + ".case"
		want[name] = true
		if err := os.WriteFile(filepath.Join(dir, name), []byte(c.Format()), 0o644); err != nil {
			return err
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "gen_") && strings.HasSuffix(name, ".case") && !want[name] {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}
