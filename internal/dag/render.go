package dag

import (
	"fmt"
	"sort"
	"strings"

	"datachat/internal/skills"
)

// RenderDOT renders the graph in Graphviz DOT form — the §2.3 "view the
// skill DAG directly in a graphical form" affordance. Nodes are labeled
// with their skill and output name; external dataset inputs appear as
// box-shaped source nodes.
func RenderDOT(g *Graph, reg *skills.Registry) string {
	var b strings.Builder
	b.WriteString("digraph recipe {\n  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n")
	externals := map[string]bool{}
	for _, id := range g.Order() {
		node, err := g.Node(id)
		if err != nil {
			continue
		}
		label := node.Inv.Skill
		if reg != nil {
			if sentence, err := reg.RenderGEL(node.Inv); err == nil && len(sentence) <= 60 {
				label = sentence
			}
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", id, fmt.Sprintf("%s\n→ %s", label, node.OutputName()))
		for i, p := range node.Parents {
			if p >= 0 {
				fmt.Fprintf(&b, "  n%d -> n%d;\n", p, id)
				continue
			}
			src := node.Inv.Inputs[i]
			if !externals[src] {
				externals[src] = true
				fmt.Fprintf(&b, "  %s [shape=box, label=%q];\n", dotID(src), src)
			}
			fmt.Fprintf(&b, "  %s -> n%d;\n", dotID(src), id)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func dotID(name string) string {
	var b strings.Builder
	b.WriteString("src_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// RenderASCII renders the graph as an indented tree rooted at its sinks —
// the console-friendly DAG view. Shared subtrees print once and are
// referenced by node id afterwards.
func RenderASCII(g *Graph, reg *skills.Registry) string {
	consumers := map[NodeID]int{}
	for _, id := range g.Order() {
		n, err := g.Node(id)
		if err != nil {
			continue
		}
		for _, p := range n.Parents {
			if p >= 0 {
				consumers[p]++
			}
		}
	}
	var sinks []NodeID
	for _, id := range g.Order() {
		if consumers[id] == 0 {
			sinks = append(sinks, id)
		}
	}
	sort.Slice(sinks, func(a, b int) bool { return sinks[a] < sinks[b] })
	var b strings.Builder
	printed := map[NodeID]bool{}
	var walk func(id NodeID, depth int)
	walk = func(id NodeID, depth int) {
		node, err := g.Node(id)
		if err != nil {
			return
		}
		indent := strings.Repeat("  ", depth)
		label := node.Inv.Skill
		if reg != nil {
			if sentence, err := reg.RenderGEL(node.Inv); err == nil {
				label = sentence
			}
		}
		if printed[id] {
			fmt.Fprintf(&b, "%s[%d] (see above)\n", indent, id)
			return
		}
		printed[id] = true
		fmt.Fprintf(&b, "%s[%d] %s → %s\n", indent, id, label, node.OutputName())
		for i, p := range node.Parents {
			if p >= 0 {
				walk(p, depth+1)
			} else {
				fmt.Fprintf(&b, "%s  (source: %s)\n", indent, node.Inv.Inputs[i])
			}
		}
	}
	for _, sink := range sinks {
		walk(sink, 0)
	}
	return b.String()
}
