// Package server is datachatd: the multi-tenant network layer that exposes a
// core.Platform over HTTP/JSON. It maps the paper's §2.4 semantics onto the
// wire — the session lock becomes 409 with a typed busy payload — and adds
// the production plumbing the library anticipates: admission control
// (bounded in-flight executions plus a queue-depth cap, refusing excess load
// with 429 + Retry-After), per-request deadlines propagated into the DAG
// executor's retry machinery, chunked row streaming for large results,
// graceful drain on shutdown, and a /statsz endpoint surfacing executor,
// cache, and vectorized-engine counters.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datachat/internal/board"
	"datachat/internal/core"
	"datachat/internal/faults"
	"datachat/internal/scheduler"
	"datachat/internal/session"
	"datachat/internal/wire"
)

// Config tunes the service layer. The zero value yields a working server:
// GOMAXPROCS in-flight executions, twice that queued, fail-fast busy
// semantics, no deadlines.
type Config struct {
	// MaxInFlight bounds concurrently executing requests (admission
	// control); <= 0 means runtime.GOMAXPROCS(0).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; past it the
	// server refuses with 429. < 0 means 2*MaxInFlight; 0 queues nothing.
	MaxQueue int
	// MaxBackground caps background-priority executions in flight, so
	// scheduled refreshes can never occupy the whole slot pool. <= 0 means
	// max(1, MaxInFlight/2).
	MaxBackground int
	// RetryAfter is the backoff hint sent with 409 and 429 responses.
	RetryAfter time.Duration
	// DefaultDeadline bounds requests that do not ask for a deadline
	// (0 = unbounded); MaxDeadline caps what clients may ask for
	// (0 = uncapped).
	DefaultDeadline, MaxDeadline time.Duration
	// Retry is the transient-failure retry policy applied to every remote
	// execution (the zero policy fails fast).
	Retry faults.RetryPolicy
	// BusyRetry, when enabled, is applied to sessions created through the
	// server: requests hitting the §2.4 lock retry with bounded backoff
	// server-side instead of failing straight to 409.
	BusyRetry faults.RetryPolicy
	// Clock drives deadlines, retry backoff, and busy-retry backoff; nil
	// means the wall clock. Tests install a faults.VirtualClock.
	Clock faults.Clock
	// DefaultMaxRows caps rows inlined in run/artifact responses when the
	// request does not say (<= 0 means 100); MaxPageRows caps page and
	// stream-chunk sizes (<= 0 means 10000).
	DefaultMaxRows, MaxPageRows int
	// StreamWorkers is the default morsel worker setting for requests that
	// do not ask (0 keeps the engine default of one worker per core, 1
	// forces the serial pipeline). Client asks are capped at MaxStreamWorkers
	// (<= 0 means 64) so a request cannot fan out unboundedly.
	StreamWorkers    int
	MaxStreamWorkers int
	// StreamMaxBufferedRows is the default memory budget for streamed
	// executions when the request does not ask (0 = unlimited), and
	// StreamSpillDir is where budget overflow spills runs ("" = the OS temp
	// dir). Clients choose their budget per request but never the spill
	// location.
	StreamMaxBufferedRows int
	StreamSpillDir        string
	// DefaultCostBudgetBytes caps estimated cloud scan bytes for requests
	// that do not set cost_budget_bytes themselves (0 = unlimited). Past
	// the budget the planner substitutes block samples and flags the
	// result degraded.
	DefaultCostBudgetBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.MaxBackground <= 0 {
		c.MaxBackground = c.MaxInFlight / 2
		if c.MaxBackground < 1 {
			c.MaxBackground = 1
		}
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	if c.DefaultMaxRows <= 0 {
		c.DefaultMaxRows = 100
	}
	if c.MaxPageRows <= 0 {
		c.MaxPageRows = 10000
	}
	if c.MaxStreamWorkers <= 0 {
		c.MaxStreamWorkers = 64
	}
	return c
}

// Server serves one core.Platform over HTTP.
type Server struct {
	platform *core.Platform
	cfg      Config
	mux      *http.ServeMux

	// adm is the priority-aware admission state: execution slots, per-class
	// wait queues, and the background in-flight cap.
	adm      *admission
	draining atomic.Bool
	// drainCh is closed when Shutdown begins; long-lived subscribe streams
	// select on it to end gracefully instead of pinning the drain forever.
	drainCh chan struct{}
	// drainMu makes admit's final draining check atomic with its wg.Add, so
	// Shutdown's wg.Wait can never observe a zero counter while a request
	// that passed the check is still being admitted.
	drainMu sync.Mutex
	wg      sync.WaitGroup

	// sched and boards are attached by the daemon (or a test) after New;
	// the schedule/board endpoints 404 until then.
	sched  *scheduler.Scheduler
	boards *board.Hub

	requests     atomic.Int64
	busy409      atomic.Int64
	throttled429 atomic.Int64
	draining503  atomic.Int64
	deadline504  atomic.Int64
}

// New wraps a platform in a server. MaxQueue < 0 in cfg selects the default
// queue depth; pass 0 to refuse immediately when every slot is busy.
func New(p *core.Platform, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		platform: p,
		cfg:      cfg,
		adm:      newAdmission(cfg.MaxInFlight, cfg.MaxBackground, cfg.MaxQueue),
		drainCh:  make(chan struct{}),
	}
	s.mux = s.routes()
	return s
}

// AttachScheduler wires a scheduler and its board hub into the server,
// enabling the /v1/schedules and /v1/boards endpoints and their /statsz
// sections, and installs the server's background admission class as the
// scheduler's gate so refreshes share the slot pool with (and yield to)
// interactive traffic.
func (s *Server) AttachScheduler(sched *scheduler.Scheduler, hub *board.Hub) {
	s.sched = sched
	s.boards = hub
	if sched != nil {
		sched.SetGate(s.AdmitBackground)
	}
}

// Platform exposes the served platform (examples seed demo data through it).
func (s *Server) Platform() *core.Platform { return s.platform }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// clock returns the configured time source.
func (s *Server) clock() faults.Clock {
	if s.cfg.Clock != nil {
		return s.cfg.Clock
	}
	return faults.Real()
}

// Admission-control sentinels, mapped to 429/503 by writeErr.
var (
	errThrottled = errors.New("server: too many requests; execution slots and queue are full")
	errDraining  = errors.New("server: shutting down; not accepting new executions")
)

// statusClientClosedRequest is nginx's non-standard 499: the client cancelled
// the request before a response was written. Nobody is usually left to read
// the body, but the status keeps logs and stats honest.
const statusClientClosedRequest = 499

// admit acquires an execution slot for a priority class, queueing up to the
// configured depth. Queued interactive requests are always served before
// background ones, and background executions are additionally capped at
// MaxBackground in flight. It refuses with errThrottled when the queue is
// full and with errDraining during shutdown. On success the caller owns a
// slot and must call release with the same class.
func (s *Server) admit(ctx context.Context, class int, tenant string) error {
	if s.draining.Load() {
		return errDraining
	}
	if err := s.adm.acquire(ctx, class, tenant); err != nil {
		return err
	}
	s.drainMu.Lock()
	if s.draining.Load() {
		s.drainMu.Unlock()
		s.adm.release(class)
		return errDraining
	}
	s.wg.Add(1)
	s.drainMu.Unlock()
	return nil
}

// release returns an execution slot.
func (s *Server) release(class int) {
	s.adm.release(class)
	s.wg.Done()
}

// AdmitBackground admits one background-priority execution through the
// same pool HTTP requests use, yielding to interactive traffic and honoring
// the MaxBackground cap. It has the scheduler.Gate signature so a daemon can
// wire sched.SetGate(srv.AdmitBackground) without the scheduler importing
// this package.
func (s *Server) AdmitBackground(ctx context.Context) (func(), error) {
	if err := s.admit(ctx, classBackground, "scheduler"); err != nil {
		return nil, err
	}
	s.requests.Add(1)
	return func() { s.release(classBackground) }, nil
}

// joinStream registers a long-lived stream (a board subscription) with the
// drain machinery without consuming an execution slot: the stream must end
// when leave() is called or drainCh closes. Refused once draining.
func (s *Server) joinStream() (leave func(), drain <-chan struct{}, err error) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining.Load() {
		return nil, nil, errDraining
	}
	s.wg.Add(1)
	return func() { s.wg.Done() }, s.drainCh, nil
}

// Shutdown drains the server: new executions are refused with 503 while
// requests already holding a slot run to completion. It returns when the
// last in-flight execution finishes or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	// Setting the flag under drainMu serializes with admit's check+Add
	// critical section: every admission either completed its wg.Add before
	// this store (wg.Wait sees it) or will observe draining and refuse.
	s.drainMu.Lock()
	if !s.draining.Load() {
		s.draining.Store(true)
		close(s.drainCh) // wake long-lived subscribe streams
	}
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		inflight, _ := s.adm.gauges()
		return fmt.Errorf("server: drain interrupted with %d executions in flight: %w",
			inflight, ctx.Err())
	}
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// tuning builds the per-request execution options from the request's
// deadline ask: the configured retry policy and clock, plus the effective
// deadline (client ask capped at MaxDeadline, DefaultDeadline when absent).
func (s *Server) tuning(deadlineMs int64) *session.Tuning {
	d := time.Duration(deadlineMs) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && (d <= 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	return &session.Tuning{Deadline: d, Retry: s.cfg.Retry, Clock: s.cfg.Clock}
}

// requestContext derives the execution context for a request: with a real
// clock and a positive deadline the HTTP context gets a matching timeout, so
// even non-retrying hangs are abandoned; with a virtual clock the deadline
// lives purely in the executor's retry machinery (tests advance time, the
// wall clock must not interfere).
func (s *Server) requestContext(r *http.Request, tune *session.Tuning) (context.Context, context.CancelFunc) {
	if tune.Deadline > 0 && s.cfg.Clock == nil {
		return context.WithTimeout(r.Context(), tune.Deadline)
	}
	return context.WithCancel(r.Context())
}

// errStatus maps an error to (HTTP status, wire code). Typed sentinels are
// matched first; the long tail of library errors is classified by message
// shape — the library predates the wire layer and reports not-found and
// permission failures as plain fmt errors.
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, session.ErrBusy):
		return http.StatusConflict, wire.CodeBusy
	case errors.Is(err, errThrottled):
		return http.StatusTooManyRequests, wire.CodeThrottled
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, wire.CodeDraining
	case errors.Is(err, faults.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, wire.CodeDeadline
	case errors.Is(err, context.Canceled):
		// The client went away (disconnect mid-request, or cancel while
		// queued in admission): not a deadline expiry, so it must not feed
		// the deadline504 stat. 499 is nginx's "client closed request".
		return statusClientClosedRequest, wire.CodeCanceled
	}
	msg := err.Error()
	for _, marker := range []string{
		"no session", "no artifact", "no connected database", "no folder",
		"no dataset", "no snapshot", "invalid or revoked link", "unknown link",
		"is not in folder", "no step", "no scheduler", "no board", "no job",
	} {
		if strings.Contains(msg, marker) {
			return http.StatusNotFound, wire.CodeNotFound
		}
	}
	// Dialect parse errors are the user's input being wrong, whatever their
	// wording ("gel: cannot understand …"), so match the prefixes before the
	// permission markers below.
	for _, prefix := range []string{"gel:", "pyapi:", "phrase:"} {
		if strings.HasPrefix(msg, prefix) {
			return http.StatusBadRequest, wire.CodeBadRequest
		}
	}
	for _, marker := range []string{"cannot", "has no access", "only the owner", "may not"} {
		if strings.Contains(msg, marker) {
			return http.StatusForbidden, wire.CodeDenied
		}
	}
	for _, marker := range []string{
		"gel:", "pyapi:", "phrase:", "must not be empty", "can only grant",
		"empty program", "needs a", "already exists", "already connected",
		"already running", "expected", "unknown skill", "invalid",
	} {
		if strings.Contains(msg, marker) {
			return http.StatusBadRequest, wire.CodeBadRequest
		}
	}
	return http.StatusInternalServerError, wire.CodeInternal
}

// Stats snapshots the server's own counters.
func (s *Server) Stats() wire.ServerStats {
	inflight, queued := s.adm.gauges()
	return wire.ServerStats{
		Requests:     s.requests.Load(),
		Busy409:      s.busy409.Load(),
		Throttled429: s.throttled429.Load(),
		Draining503:  s.draining503.Load(),
		Deadline504:  s.deadline504.Load(),
		InFlight:     inflight,
		Queued:       queued,
		Draining:     s.draining.Load(),
	}
}

// countRefusal updates the refusal counters for a mapped error status.
func (s *Server) countRefusal(status int) {
	switch status {
	case http.StatusConflict:
		s.busy409.Add(1)
	case http.StatusTooManyRequests:
		s.throttled429.Add(1)
	case http.StatusServiceUnavailable:
		s.draining503.Add(1)
	case http.StatusGatewayTimeout:
		s.deadline504.Add(1)
	}
}
