package faults

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"datachat/internal/cloud"
	"datachat/internal/dataset"
	"datachat/internal/sqlengine"
)

// The chaos suite replays the differential harness's randomized query
// corpus against a fault-injected cloud database with retries enabled and
// pins the recovery invariant: recovery must never change answers. Every
// query either returns the exact fault-free result (after retries) or fails
// loudly — never a silent wrong answer. All waiting is virtual-time, so the
// suite runs in milliseconds even at a 30% fault rate under -race.

// chaosCatalog adapts a fault-injected DB into a sqlengine.Catalog.
type chaosCatalog struct{ db cloud.DB }

func (c chaosCatalog) Table(name string) (*dataset.Table, error) { return c.db.Table(name) }

func newChaosDB(t *testing.T, seed int64) *cloud.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := cloud.NewDatabase("wh", cloud.DefaultPricing, 64)
	for _, tbl := range sqlengine.CorpusTables(rng, 150+rng.Intn(150), 40+rng.Intn(40)) {
		if err := db.CreateTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestChaosCorpusExactUnderTransientFaults: at transient-fault rates up to
// 30%, retried execution over the faulty database returns byte-identical
// results to the fault-free run for every corpus query.
func TestChaosCorpusExactUnderTransientFaults(t *testing.T) {
	for _, rate := range []float64{0.1, 0.3} {
		rate := rate
		t.Run(fmt.Sprintf("rate%.0f%%", rate*100), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(21))
			db := newChaosDB(t, 5)
			queries := sqlengine.CorpusQueries(rng, 60)

			// Fault-free reference results first.
			clean := make([]*dataset.Table, len(queries))
			cleanErr := make([]error, len(queries))
			for i, q := range queries {
				stmt, err := sqlengine.Parse(q)
				if err != nil {
					t.Fatalf("parse %q: %v", q, err)
				}
				clean[i], cleanErr[i] = sqlengine.ExecStmt(chaosCatalog{db}, stmt)
			}

			clock := NewVirtualClock(time.Unix(0, 0))
			inj := NewInjector(Schedule{Seed: 99, TransientRate: rate}, clock)
			faulty := chaosCatalog{WrapDB(db, inj)}
			pol := RetryPolicy{MaxAttempts: 16, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, JitterFrac: 0.3, Seed: 1}

			recovered := 0
			for i, q := range queries {
				stmt, err := sqlengine.Parse(q)
				if err != nil {
					t.Fatalf("parse %q: %v", q, err)
				}
				got, stats, err := Do(context.Background(), clock, pol, time.Time{}, nil,
					func() (*dataset.Table, error) { return sqlengine.ExecStmt(faulty, stmt) })
				if stats.Attempts > 1 {
					recovered++
				}
				if (err == nil) != (cleanErr[i] == nil) {
					t.Fatalf("error divergence for %q under faults:\n  faulty: %v\n  clean:  %v", q, err, cleanErr[i])
				}
				if err != nil {
					continue
				}
				if !got.Equal(clean[i]) {
					t.Fatalf("silent wrong answer for %q after %d attempts:\nfaulty:\n%s\nclean:\n%s",
						q, stats.Attempts, got, clean[i])
				}
			}
			transient, permanent := inj.Counts()
			if transient == 0 {
				t.Fatalf("no faults injected at rate %v", rate)
			}
			if permanent != 0 {
				t.Fatalf("transient-only schedule injected %d permanent faults", permanent)
			}
			if recovered == 0 {
				t.Fatal("no query ever needed a retry — the chaos run exercised nothing")
			}
			t.Logf("rate %.0f%%: %d faults injected, %d/%d queries recovered via retry, %v virtual backoff",
				rate*100, transient, recovered, len(queries), clock.Slept())
		})
	}
}

// TestChaosCorpusConcurrent: the same invariant with queries hammering the
// shared injector from parallel workers (the -race half of the suite).
func TestChaosCorpusConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	db := newChaosDB(t, 6)
	queries := sqlengine.CorpusQueries(rng, 40)

	clean := make([]*dataset.Table, len(queries))
	cleanErr := make([]error, len(queries))
	stmts := make([]*sqlengine.SelectStmt, len(queries))
	for i, q := range queries {
		stmt, err := sqlengine.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		stmts[i] = stmt
		clean[i], cleanErr[i] = sqlengine.ExecStmt(chaosCatalog{db}, stmt)
	}

	clock := NewVirtualClock(time.Unix(0, 0))
	inj := NewInjector(Schedule{Seed: 4, TransientRate: 0.3}, clock)
	faulty := chaosCatalog{WrapDB(db, inj)}
	pol := RetryPolicy{MaxAttempts: 20, BaseDelay: time.Millisecond, JitterFrac: 0.2, Seed: 2}

	var wg sync.WaitGroup
	errs := make([]error, len(queries))
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += workers {
				got, _, err := Do(context.Background(), clock, pol, time.Time{}, nil,
					func() (*dataset.Table, error) { return sqlengine.ExecStmt(faulty, stmts[i]) })
				if (err == nil) != (cleanErr[i] == nil) {
					errs[i] = fmt.Errorf("error divergence for %q: faulty=%v clean=%v", queries[i], err, cleanErr[i])
					continue
				}
				if err == nil && !got.Equal(clean[i]) {
					errs[i] = fmt.Errorf("silent wrong answer for %q", queries[i])
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if transient, _ := inj.Counts(); transient == 0 {
		t.Fatal("concurrent chaos run injected no faults")
	}
}
