package expr

import (
	"fmt"
	"math"
	"strings"

	"datachat/internal/dataset"
)

// FuncCall is a scalar function application. The function set mirrors the
// scalar helpers the DataChat skill layer exposes.
type FuncCall struct {
	Name string
	Args []Expr
}

// Func builds a scalar function call expression.
func Func(name string, args ...Expr) *FuncCall {
	return &FuncCall{Name: strings.ToUpper(name), Args: args}
}

// String implements Expr.
func (f *FuncCall) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(args, ", "))
}

// Columns implements Expr.
func (f *FuncCall) Columns(dst []string) []string {
	for _, a := range f.Args {
		dst = a.Columns(dst)
	}
	return dst
}

// ScalarFuncs lists the supported scalar function names with their arities
// (-1 means variadic). The SQL parser consults this to validate calls.
var ScalarFuncs = map[string]int{
	"ABS": 1, "ROUND": -1, "FLOOR": 1, "CEIL": 1, "SQRT": 1, "LN": 1, "EXP": 1, "POW": 2,
	"UPPER": 1, "LOWER": 1, "LENGTH": 1, "TRIM": 1, "SUBSTR": -1, "REPLACE": 3, "CONCAT": -1,
	"YEAR": 1, "MONTH": 1, "DAY": 1, "DATE": 1,
	"COALESCE": -1, "NULLIF": 2, "IF": 3, "CAST": 2, "SIGN": 1,
}

// Eval implements Expr.
func (f *FuncCall) Eval(env Env) (dataset.Value, error) {
	args := make([]dataset.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(env)
		if err != nil {
			return dataset.Null, err
		}
		args[i] = v
	}
	switch f.Name {
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return dataset.Null, nil
	case "IF":
		if err := f.checkArity(3, args); err != nil {
			return dataset.Null, err
		}
		if b, ok := asBool(args[0]); ok && b {
			return args[1], nil
		}
		return args[2], nil
	case "NULLIF":
		if err := f.checkArity(2, args); err != nil {
			return dataset.Null, err
		}
		if !args[0].IsNull() && !args[1].IsNull() && dataset.Equal(args[0], args[1]) {
			return dataset.Null, nil
		}
		return args[0], nil
	}
	// Remaining functions are strict: null in, null out.
	for _, a := range args {
		if a.IsNull() {
			return dataset.Null, nil
		}
	}
	switch f.Name {
	case "ABS":
		return f.mathUnary(args, math.Abs)
	case "FLOOR":
		return f.mathUnary(args, math.Floor)
	case "CEIL":
		return f.mathUnary(args, math.Ceil)
	case "SQRT":
		return f.mathUnary(args, math.Sqrt)
	case "LN":
		return f.mathUnary(args, math.Log)
	case "EXP":
		return f.mathUnary(args, math.Exp)
	case "SIGN":
		return f.mathUnary(args, func(x float64) float64 {
			switch {
			case x > 0:
				return 1
			case x < 0:
				return -1
			default:
				return 0
			}
		})
	case "POW":
		if err := f.checkArity(2, args); err != nil {
			return dataset.Null, err
		}
		x, ok1 := args[0].AsFloat()
		y, ok2 := args[1].AsFloat()
		if !ok1 || !ok2 {
			return dataset.Null, f.typeErr(args)
		}
		return dataset.Float(math.Pow(x, y)), nil
	case "ROUND":
		if len(args) < 1 || len(args) > 2 {
			return dataset.Null, fmt.Errorf("expr: ROUND takes 1 or 2 arguments, got %d", len(args))
		}
		x, ok := args[0].AsFloat()
		if !ok {
			return dataset.Null, f.typeErr(args)
		}
		digits := int64(0)
		if len(args) == 2 {
			d, ok := args[1].AsInt()
			if !ok {
				return dataset.Null, f.typeErr(args)
			}
			digits = d
		}
		scale := math.Pow(10, float64(digits))
		return dataset.Float(math.Round(x*scale) / scale), nil
	case "UPPER":
		return dataset.Str(strings.ToUpper(args[0].String())), nil
	case "LOWER":
		return dataset.Str(strings.ToLower(args[0].String())), nil
	case "TRIM":
		return dataset.Str(strings.TrimSpace(args[0].String())), nil
	case "LENGTH":
		return dataset.Int(int64(len(args[0].String()))), nil
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			b.WriteString(a.String())
		}
		return dataset.Str(b.String()), nil
	case "REPLACE":
		if err := f.checkArity(3, args); err != nil {
			return dataset.Null, err
		}
		return dataset.Str(strings.ReplaceAll(args[0].String(), args[1].String(), args[2].String())), nil
	case "SUBSTR":
		if len(args) < 2 || len(args) > 3 {
			return dataset.Null, fmt.Errorf("expr: SUBSTR takes 2 or 3 arguments, got %d", len(args))
		}
		s := args[0].String()
		start, ok := args[1].AsInt()
		if !ok {
			return dataset.Null, f.typeErr(args)
		}
		// SQL SUBSTR is 1-based.
		begin := int(start) - 1
		if begin < 0 {
			begin = 0
		}
		if begin > len(s) {
			begin = len(s)
		}
		end := len(s)
		if len(args) == 3 {
			n, ok := args[2].AsInt()
			if !ok {
				return dataset.Null, f.typeErr(args)
			}
			if e := begin + int(n); e < end {
				end = e
			}
			if end < begin {
				end = begin
			}
		}
		return dataset.Str(s[begin:end]), nil
	case "YEAR", "MONTH", "DAY":
		t, ok := dataset.Coerce(args[0], dataset.TypeTime)
		if !ok {
			return dataset.Null, f.typeErr(args)
		}
		switch f.Name {
		case "YEAR":
			return dataset.Int(int64(t.T.Year())), nil
		case "MONTH":
			return dataset.Int(int64(t.T.Month())), nil
		default:
			return dataset.Int(int64(t.T.Day())), nil
		}
	case "DATE":
		t, ok := dataset.Coerce(args[0], dataset.TypeTime)
		if !ok {
			return dataset.Null, f.typeErr(args)
		}
		return t, nil
	case "CAST":
		if err := f.checkArity(2, args); err != nil {
			return dataset.Null, err
		}
		var target dataset.Type
		switch strings.ToLower(args[1].String()) {
		case "int", "integer", "bigint":
			target = dataset.TypeInt
		case "float", "double", "real", "numeric":
			target = dataset.TypeFloat
		case "string", "text", "varchar":
			target = dataset.TypeString
		case "bool", "boolean":
			target = dataset.TypeBool
		case "date", "time", "timestamp":
			target = dataset.TypeTime
		default:
			return dataset.Null, fmt.Errorf("expr: CAST to unknown type %q", args[1].String())
		}
		v, ok := dataset.Coerce(args[0], target)
		if !ok {
			return dataset.Null, nil
		}
		return v, nil
	default:
		return dataset.Null, fmt.Errorf("expr: unknown function %q", f.Name)
	}
}

func (f *FuncCall) mathUnary(args []dataset.Value, fn func(float64) float64) (dataset.Value, error) {
	if err := f.checkArity(1, args); err != nil {
		return dataset.Null, err
	}
	x, ok := args[0].AsFloat()
	if !ok {
		return dataset.Null, f.typeErr(args)
	}
	result := fn(x)
	if args[0].Type == dataset.TypeInt && result == math.Trunc(result) &&
		(f.Name == "ABS" || f.Name == "SIGN" || f.Name == "FLOOR" || f.Name == "CEIL") {
		return dataset.Int(int64(result)), nil
	}
	return dataset.Float(result), nil
}

func (f *FuncCall) checkArity(want int, args []dataset.Value) error {
	if len(args) != want {
		return fmt.Errorf("expr: %s takes %d arguments, got %d", f.Name, want, len(args))
	}
	return nil
}

func (f *FuncCall) typeErr(args []dataset.Value) error {
	types := make([]string, len(args))
	for i, a := range args {
		types[i] = a.Type.String()
	}
	return fmt.Errorf("expr: %s cannot be applied to (%s)", f.Name, strings.Join(types, ", "))
}
