package faults

import (
	"math/rand"
	"sync"
	"time"

	"datachat/internal/cloud"
	"datachat/internal/dataset"
	"datachat/internal/snapshot"
)

// DefaultSpike is the virtual latency added by a LatencySpike fault when
// the schedule leaves Spike zero.
const DefaultSpike = 250 * time.Millisecond

// Schedule configures when the injector fails an operation. All randomness
// is drawn from a private generator seeded with Seed, so the fault sequence
// is a pure function of the schedule: same seed + schedule ⇒ identical
// sequence of (kind, class) draws, op by op.
type Schedule struct {
	// Seed drives the fault stream.
	Seed int64
	// TransientRate is the per-operation probability of a transient fault.
	TransientRate float64
	// PermanentRate is the per-operation probability of a permanent fault.
	PermanentRate float64
	// MaxTransient caps the total transient faults injected (0 = unlimited);
	// schedules use it to guarantee recovery within a retry budget.
	MaxTransient int
	// FailFirst deterministically fails the first N matching operations
	// with transient faults, before the rate-based draws take over.
	FailFirst int
	// FailOps pins specific operations (1-based op index) to a fault kind,
	// overriding every other rule.
	FailOps map[int]Kind
	// Ops restricts injection to these operation names (nil = all ops).
	// Operations outside the set pass through and consume no randomness.
	Ops map[string]bool
	// Kinds overrides the per-wrapper default transient kinds to draw from.
	Kinds []Kind
	// Spike is the virtual latency a LatencySpike adds (DefaultSpike if 0).
	Spike time.Duration
}

// Fault is one injected failure, recorded in the injector's log.
type Fault struct {
	// Seq is the 1-based position in the fault sequence.
	Seq int
	// Op and Target identify the failed operation.
	Op, Target string
	// Kind and Class describe the failure.
	Kind  Kind
	Class Class
}

// Injector decides, operation by operation, whether to fail. It is safe
// for concurrent use; the op counter and the random stream advance under
// one lock, so the fault sequence itself stays deterministic (which caller
// observes which fault depends on goroutine interleaving, as in production).
type Injector struct {
	mu         sync.Mutex
	sched      Schedule
	rng        *rand.Rand
	clock      Clock
	ops        int
	seq        int
	transients int
	permanents int
	log        []Fault
}

// NewInjector builds an injector for the schedule. The clock receives
// LatencySpike advances when it is a *VirtualClock; nil uses real time (on
// which spikes only mark the error, they never block).
func NewInjector(sched Schedule, clock Clock) *Injector {
	if sched.Spike <= 0 {
		sched.Spike = DefaultSpike
	}
	if clock == nil {
		clock = Real()
	}
	return &Injector{
		sched: sched,
		rng:   rand.New(rand.NewSource(sched.Seed)),
		clock: clock,
	}
}

func classOf(k Kind) Class {
	if k == Unavailable {
		return Permanent
	}
	return Transient
}

// check runs the schedule for one operation. kinds are the wrapper's
// default transient kinds, overridden by Schedule.Kinds when set.
func (in *Injector) check(op, target string, kinds []Kind) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.sched.Ops != nil && !in.sched.Ops[op] {
		return nil
	}
	if len(in.sched.Kinds) > 0 {
		kinds = in.sched.Kinds
	}
	if len(kinds) == 0 {
		kinds = []Kind{Throttled, BlockIO, LatencySpike}
	}
	in.ops++
	var kind Kind
	inject := false
	if k, pinned := in.sched.FailOps[in.ops]; pinned {
		inject, kind = true, k
	} else if in.ops <= in.sched.FailFirst {
		inject, kind = true, kinds[(in.ops-1)%len(kinds)]
	} else if in.sched.TransientRate > 0 || in.sched.PermanentRate > 0 {
		u := in.rng.Float64()
		switch {
		case u < in.sched.PermanentRate:
			inject, kind = true, Unavailable
		case u < in.sched.PermanentRate+in.sched.TransientRate:
			inject, kind = true, kinds[in.rng.Intn(len(kinds))]
		}
	}
	if !inject {
		return nil
	}
	class := classOf(kind)
	if class == Transient && in.sched.MaxTransient > 0 && in.transients >= in.sched.MaxTransient {
		return nil
	}
	in.seq++
	if class == Transient {
		in.transients++
	} else {
		in.permanents++
	}
	in.log = append(in.log, Fault{Seq: in.seq, Op: op, Target: target, Kind: kind, Class: class})
	if kind == LatencySpike {
		if vc, ok := in.clock.(*VirtualClock); ok {
			vc.Advance(in.sched.Spike)
		}
	}
	return &Error{Op: op, Target: target, Kind: kind, Class: class, Seq: in.seq}
}

// Ops returns how many matching operations the injector has seen.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Counts returns the injected transient and permanent fault totals.
func (in *Injector) Counts() (transient, permanent int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.transients, in.permanents
}

// Faults returns a copy of the injected-fault log, in sequence order.
func (in *Injector) Faults() []Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Fault{}, in.log...)
}

// FaultyDB wraps a cloud database, injecting faults on the metered read
// paths (Scan, SampleBlocks, Table). Metadata reads stay reliable, as in
// real warehouses.
type FaultyDB struct {
	inner cloud.DB
	inj   *Injector
}

var _ cloud.DB = (*FaultyDB)(nil)

// WrapDB wraps db with fault injection.
func WrapDB(db cloud.DB, inj *Injector) *FaultyDB {
	return &FaultyDB{inner: db, inj: inj}
}

var dbKinds = []Kind{Throttled, BlockIO, LatencySpike}

// Name returns the wrapped database's name.
func (d *FaultyDB) Name() string { return d.inner.Name() }

// Pricing returns the wrapped database's pricing plan.
func (d *FaultyDB) Pricing() cloud.Pricing { return d.inner.Pricing() }

// Meter returns the wrapped database's consumption meter.
func (d *FaultyDB) Meter() *cloud.Meter { return d.inner.Meter() }

// Stats returns table metadata (never injected: metadata reads are free
// and reliable).
func (d *FaultyDB) Stats(name string) (cloud.TableStats, error) { return d.inner.Stats(name) }

// Scan reads the full table through the injector.
func (d *FaultyDB) Scan(name string) (*dataset.Table, error) {
	if err := d.inj.check("scan", name, dbKinds); err != nil {
		return nil, err
	}
	return d.inner.Scan(name)
}

// SampleBlocks reads a block sample through the injector.
func (d *FaultyDB) SampleBlocks(name string, rate float64, seed int64) (*dataset.Table, error) {
	if err := d.inj.check("sample", name, dbKinds); err != nil {
		return nil, err
	}
	return d.inner.SampleBlocks(name, rate, seed)
}

// Table implements sqlengine.Catalog with scan semantics (and scan faults).
func (d *FaultyDB) Table(name string) (*dataset.Table, error) {
	if err := d.inj.check("scan", name, dbKinds); err != nil {
		return nil, err
	}
	return d.inner.Table(name)
}

// FaultyStore wraps a snapshot store, injecting faults on the read paths
// (Get, Table). Writes (Create, Refresh) pull from the cloud database,
// which carries its own injector when wrapped.
type FaultyStore struct {
	inner snapshot.API
	inj   *Injector
}

var _ snapshot.API = (*FaultyStore)(nil)

// WrapStore wraps a snapshot store with fault injection.
func WrapStore(s snapshot.API, inj *Injector) *FaultyStore {
	return &FaultyStore{inner: s, inj: inj}
}

var storeKinds = []Kind{SnapshotMiss}

// Create pulls a snapshot through the wrapped store.
func (s *FaultyStore) Create(name string, db cloud.DB, table string, rate float64, seed int64) (*snapshot.Snapshot, error) {
	return s.inner.Create(name, db, table, rate, seed)
}

// Get reads a snapshot through the injector.
func (s *FaultyStore) Get(name string) (*dataset.Table, error) {
	if err := s.inj.check("snapshot-get", name, storeKinds); err != nil {
		return nil, err
	}
	return s.inner.Get(name)
}

// Info returns snapshot metadata (reliable, like cloud Stats).
func (s *FaultyStore) Info(name string) (*snapshot.Snapshot, error) { return s.inner.Info(name) }

// Refresh re-pulls a snapshot through the wrapped store.
func (s *FaultyStore) Refresh(name string, db cloud.DB) (*snapshot.Snapshot, error) {
	return s.inner.Refresh(name, db)
}

// Names lists snapshots.
func (s *FaultyStore) Names() []string { return s.inner.Names() }

// Table implements sqlengine.Catalog with Get semantics (and Get faults).
func (s *FaultyStore) Table(name string) (*dataset.Table, error) {
	if err := s.inj.check("snapshot-get", name, storeKinds); err != nil {
		return nil, err
	}
	return s.inner.Table(name)
}
