package sqlengine

import (
	"testing"

	"datachat/internal/dataset"
)

// The streaming benchmarks ride the same catalog as the vectorized ones so
// rows/s figures are comparable across execution models.

const benchStreamQuery = "SELECT id, v FROM big WHERE v > 25.0 AND s != 'zeta'"

// BenchmarkStreamFirstChunk measures time-to-first-rows through the morsel
// pipeline — the latency a remote client sees before any output, which must
// stay flat as the table grows (it scans one morsel, not the table).
func BenchmarkStreamFirstChunk(b *testing.B) {
	catalog := NewMapCatalog(benchTables(100_000))
	stmt, err := Parse(benchStreamQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := ExecStreamStmt(catalog, stmt, StreamOptions{})
		if err != nil {
			b.Fatal(err)
		}
		chunk, err := rs.Next()
		if err != nil {
			b.Fatal(err)
		}
		if chunk == nil || chunk.NumRows() == 0 {
			b.Fatal("empty first chunk")
		}
	}
}

// BenchmarkStreamDrain measures full-stream throughput against the buffered
// reference execution of the identical statement.
func BenchmarkStreamDrain(b *testing.B) {
	const n = 100_000
	catalog := NewMapCatalog(benchTables(n))
	stmt, err := Parse(benchStreamQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rs, err := ExecStreamStmt(catalog, stmt, StreamOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rs.Drain(func(*dataset.Table) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ExecStmtOptions(catalog, stmt, Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkStreamGroupBy measures the chunked hash group-by under its memory
// budget, where the pipeline breaker buffers groups rather than input rows.
func BenchmarkStreamGroupBy(b *testing.B) {
	catalog := NewMapCatalog(benchTables(100_000))
	stmt, err := Parse("SELECT k, SUM(v), COUNT(*) FROM big GROUP BY k")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := ExecStreamStmt(catalog, stmt, StreamOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rs.Drain(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// The parallel benchmarks run with Parallelism: -1 (GOMAXPROCS), so
// `go test -cpu 1,4 -bench BenchmarkStreamParallel` produces the worker
// scaling grid: -cpu 1 exercises the inline serial path, -cpu N the morsel
// dispatcher with N pipeline workers.

func BenchmarkStreamParallelDrain(b *testing.B) {
	const n = 100_000
	catalog := NewMapCatalog(benchTables(n))
	stmt, err := Parse(benchStreamQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := ExecStreamStmt(catalog, stmt, StreamOptions{Parallelism: -1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rs.Drain(func(*dataset.Table) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkStreamParallelGroupBy(b *testing.B) {
	catalog := NewMapCatalog(benchTables(100_000))
	stmt, err := Parse("SELECT k, SUM(v), COUNT(*) FROM big GROUP BY k")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := ExecStreamStmt(catalog, stmt, StreamOptions{Parallelism: -1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rs.Drain(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamOrderBy measures the sorted-run merge path (run building,
// k-way merge, chunk assembly).
func BenchmarkStreamOrderBy(b *testing.B) {
	catalog := NewMapCatalog(benchTables(100_000))
	stmt, err := Parse("SELECT id, v FROM big ORDER BY v, id")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := ExecStreamStmt(catalog, stmt, StreamOptions{Parallelism: -1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rs.Drain(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestOrderedPullAllocsPerRow guards the hoisted projection environment in
// the ORDER BY run builder: the per-row cost is the boxed row and key slices,
// not a fresh expr.MapEnv per row (the regression this pins used to add a
// map allocation plus its growth to every row).
func TestOrderedPullAllocsPerRow(t *testing.T) {
	const rows = 8192
	catalog := NewMapCatalog(benchTables(rows))
	// A computed projection forces the boxed row loop through the reused env.
	stmt, err := Parse("SELECT id, v * 2.0 AS dv FROM big ORDER BY v, id")
	if err != nil {
		t.Fatal(err)
	}
	perRun := testing.AllocsPerRun(5, func() {
		rs, err := ExecStreamStmt(catalog, stmt, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rs.Drain(nil); err != nil {
			t.Fatal(err)
		}
	})
	perRow := perRun / rows
	// Row slice + key slice + boxed values + merge/chunk assembly amortized:
	// measures ~11 with the hoisted env; a fresh per-row map env pushes it
	// past 13.
	if perRow > 12 {
		t.Fatalf("ordered path allocates %.1f allocs/row (%.0f total); per-row env hoisting regressed", perRow, perRun)
	}
}
