package dag

import (
	"strings"
	"testing"

	"datachat/internal/skills"
)

func renderFixture() *Graph {
	g := NewGraph()
	g.Add(skills.Invocation{Skill: "KeepRows", Inputs: []string{"base"},
		Args: skills.Args{"condition": "v > 1"}, Output: "shared"})
	g.Add(skills.Invocation{Skill: "Compute", Inputs: []string{"shared"},
		Args: skills.Args{"aggregates": []string{"count of records as n"}}, Output: "agg"})
	g.Add(skills.Invocation{Skill: "JoinDatasets", Inputs: []string{"agg", "shared"},
		Args: skills.Args{"on": "agg.n > shared.id"}, Output: "final"})
	return g
}

func TestRenderDOT(t *testing.T) {
	dot := RenderDOT(renderFixture(), reg)
	for _, want := range []string{
		"digraph recipe",
		"n0 ->", "n1 ->",
		"src_base",      // external source node
		"Keep the rows", // GEL labels
		"shape=box",     // sources are boxes
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// A graph rendered without a registry still works (skill-name labels).
	dot2 := RenderDOT(renderFixture(), nil)
	if !strings.Contains(dot2, "KeepRows") {
		t.Errorf("registry-less DOT missing skill name:\n%s", dot2)
	}
}

func TestRenderASCII(t *testing.T) {
	out := RenderASCII(renderFixture(), reg)
	if !strings.Contains(out, "→ final") {
		t.Errorf("ASCII missing sink:\n%s", out)
	}
	if !strings.Contains(out, "(source: base)") {
		t.Errorf("ASCII missing source:\n%s", out)
	}
	// The shared node prints once and is referenced the second time.
	if !strings.Contains(out, "(see above)") {
		t.Errorf("shared subtree not deduplicated:\n%s", out)
	}
	// Indentation increases with depth.
	if !strings.Contains(out, "  [") {
		t.Errorf("no indentation:\n%s", out)
	}
}
