package ml

import (
	"fmt"
	"math"
)

// OutlierMethod selects an outlier-detection algorithm. The paper (§2.1)
// notes users graduating from simple statistical methods to more robust
// ones; we provide both ends of that spectrum.
type OutlierMethod int

// Supported outlier methods.
const (
	// ZScore flags values more than k standard deviations from the mean.
	ZScore OutlierMethod = iota
	// IQR flags values beyond k interquartile ranges from the quartiles —
	// robust to the outliers themselves.
	IQR
	// ModelResidual fits a tree to the series indexed by position and
	// flags large residuals; robust to trend and regime shifts.
	ModelResidual
)

// String names the method.
func (m OutlierMethod) String() string {
	switch m {
	case ZScore:
		return "zscore"
	case IQR:
		return "iqr"
	case ModelResidual:
		return "model-residual"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// OutlierReport describes the outliers found in one numeric series.
type OutlierReport struct {
	Method    OutlierMethod
	Threshold float64
	// Indexes are the positions of flagged values in the input series.
	Indexes []int
	// Scores are the per-flagged-value anomaly scores (|z|, IQR multiples,
	// or |residual| depending on the method).
	Scores []float64
	// Lo and Hi bound the non-outlier region for threshold methods.
	Lo, Hi float64
}

// DetectOutliers flags anomalies in a numeric series. NaNs are skipped.
// threshold <= 0 selects the method's conventional default (3 for z-score,
// 1.5 for IQR, 3 sigma-equivalents for model residuals).
func DetectOutliers(series []float64, method OutlierMethod, threshold float64) (*OutlierReport, error) {
	clean := make([]float64, 0, len(series))
	pos := make([]int, 0, len(series))
	for i, x := range series {
		if !math.IsNaN(x) {
			clean = append(clean, x)
			pos = append(pos, i)
		}
	}
	if len(clean) < 3 {
		return nil, fmt.Errorf("ml: outlier detection needs at least 3 values, got %d", len(clean))
	}
	report := &OutlierReport{Method: method, Threshold: threshold}
	switch method {
	case ZScore:
		if threshold <= 0 {
			threshold = 3
		}
		report.Threshold = threshold
		mean, std := meanStd(clean)
		if std == 0 {
			return report, nil
		}
		report.Lo, report.Hi = mean-threshold*std, mean+threshold*std
		for i, x := range clean {
			if z := math.Abs(x-mean) / std; z > threshold {
				report.Indexes = append(report.Indexes, pos[i])
				report.Scores = append(report.Scores, z)
			}
		}
	case IQR:
		if threshold <= 0 {
			threshold = 1.5
		}
		report.Threshold = threshold
		sorted := sortedCopy(clean)
		q1 := quantile(sorted, 0.25)
		q3 := quantile(sorted, 0.75)
		iqr := q3 - q1
		if iqr == 0 {
			return report, nil
		}
		report.Lo, report.Hi = q1-threshold*iqr, q3+threshold*iqr
		for i, x := range clean {
			if x < report.Lo || x > report.Hi {
				dist := math.Max(report.Lo-x, x-report.Hi) / iqr
				report.Indexes = append(report.Indexes, pos[i])
				report.Scores = append(report.Scores, dist+threshold)
			}
		}
	case ModelResidual:
		if threshold <= 0 {
			threshold = 3
		}
		report.Threshold = threshold
		// Fit a shallow tree to value ~ position, then flag large residuals.
		m := &Matrix{Names: []string{"t"}}
		for i, x := range clean {
			m.Rows = append(m.Rows, []float64{float64(i)})
			m.Target = append(m.Target, x)
			_ = i
		}
		tree, err := TrainTree(m, 4, 3)
		if err != nil {
			return nil, err
		}
		fitted := tree.Predict(m.Rows)
		resid := make([]float64, len(clean))
		for i := range clean {
			resid[i] = clean[i] - fitted[i]
		}
		_, std := meanStd(resid)
		if std == 0 {
			return report, nil
		}
		for i, r := range resid {
			if z := math.Abs(r) / std; z > threshold {
				report.Indexes = append(report.Indexes, pos[i])
				report.Scores = append(report.Scores, z)
			}
		}
	default:
		return nil, fmt.Errorf("ml: unknown outlier method %v", method)
	}
	return report, nil
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
