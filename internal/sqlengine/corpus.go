package sqlengine

import (
	"fmt"
	"math/rand"
	"time"

	"datachat/internal/dataset"
)

// This file generates the randomized differential-test corpus: tables with
// ~15% nulls per column and queries spanning filters with three-valued null
// logic, arithmetic, LIKE, IN, BETWEEN, equi joins with residuals, grouping
// with HAVING, and multi-key ORDER BY. It lives outside the test files so
// other packages' harnesses (the chaos suite in internal/faults, the faults
// experiment) can replay the same corpus through their own execution paths.

// CorpusTables builds a deterministic random catalog: a main table t1 and a
// smaller t2 whose join keys overlap t1's ranges.
func CorpusTables(rng *rand.Rand, n1, n2 int) map[string]*dataset.Table {
	vocab := []string{"alpha", "beta", "gamma", "delta", "eps", "zeta", "Alpha", "BETA", ""}
	base := time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC)

	nulls := func(n int) []bool {
		b := make([]bool, n)
		for i := range b {
			b[i] = rng.Intn(100) < 15
		}
		return b
	}
	ints := func(n, lo, hi int) []int64 {
		v := make([]int64, n)
		for i := range v {
			v[i] = int64(lo + rng.Intn(hi-lo))
		}
		return v
	}
	floats := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			// Quarter steps over a small range: plenty of duplicates for
			// group/join hits, no NaN, no negative zero.
			v[i] = float64(rng.Intn(81)-40) / 4
		}
		return v
	}
	strs := func(n int) []string {
		v := make([]string, n)
		for i := range v {
			v[i] = vocab[rng.Intn(len(vocab))]
		}
		return v
	}
	bools := func(n int) []bool {
		v := make([]bool, n)
		for i := range v {
			v[i] = rng.Intn(2) == 0
		}
		return v
	}
	times := func(n int) []time.Time {
		v := make([]time.Time, n)
		for i := range v {
			// Whole days only: the reference renders midnight times
			// date-only, so sub-second keys would not round-trip.
			v[i] = base.AddDate(0, 0, rng.Intn(7))
		}
		return v
	}

	t1 := dataset.MustNewTable("t1",
		dataset.IntColumn("i", ints(n1, -10, 25), nulls(n1)),
		dataset.FloatColumn("f", floats(n1), nulls(n1)),
		dataset.StringColumn("s", strs(n1), nulls(n1)),
		dataset.BoolColumn("b", bools(n1), nulls(n1)),
		dataset.TimeColumn("ts", times(n1), nulls(n1)),
	)
	t2 := dataset.MustNewTable("t2",
		dataset.IntColumn("k", ints(n2, -10, 25), nulls(n2)),
		dataset.StringColumn("s2", strs(n2), nulls(n2)),
		dataset.FloatColumn("v", floats(n2), nulls(n2)),
	)
	return map[string]*dataset.Table{"t1": t1, "t2": t2}
}

// CorpusPredicate generates a random predicate over t1's columns. qual prefixes
// column references for join queries.
func CorpusPredicate(rng *rand.Rand, qual string, depth int) string {
	c := func(name string) string { return qual + name }
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	op := func() string { return ops[rng.Intn(len(ops))] }
	atoms := []func() string{
		func() string { return fmt.Sprintf("%s %s %d", c("i"), op(), rng.Intn(30)-12) },
		func() string { return fmt.Sprintf("%s %s %.2f", c("f"), op(), float64(rng.Intn(60)-30)/4) },
		func() string {
			return fmt.Sprintf("%s %s '%s'", c("s"), op(), []string{"alpha", "beta", "GAMMA", "zeta"}[rng.Intn(4)])
		},
		func() string {
			pats := []string{"a%", "%a", "%et%", "alpha", "_eta", "%a%a%", "a%a", "%", "g_mma", "%A", "Z%"}
			not := ""
			if rng.Intn(3) == 0 {
				not = "NOT "
			}
			return fmt.Sprintf("%s %sLIKE '%s'", c("s"), not, pats[rng.Intn(len(pats))])
		},
		func() string {
			not := ""
			if rng.Intn(2) == 0 {
				not = "NOT "
			}
			return fmt.Sprintf("%s %sIN (%d, %d, %d)", c("i"), not, rng.Intn(20)-8, rng.Intn(20)-8, rng.Intn(20)-8)
		},
		func() string { return fmt.Sprintf("%s IN ('alpha', 'beta', '')", c("s")) },
		func() string {
			lo := rng.Intn(20) - 12
			not := ""
			if rng.Intn(3) == 0 {
				not = "NOT "
			}
			return fmt.Sprintf("%s %sBETWEEN %d AND %d", c("i"), not, lo, lo+rng.Intn(10))
		},
		func() string { return fmt.Sprintf("%s BETWEEN -5.0 AND %.2f", c("f"), float64(rng.Intn(40))/4) },
		func() string { return c("b") },
		func() string { return "NOT " + c("b") },
		func() string { return fmt.Sprintf("%s = TRUE", c("b")) },
		func() string {
			col := []string{"i", "f", "s", "b", "ts"}[rng.Intn(5)]
			not := ""
			if rng.Intn(2) == 0 {
				not = "NOT "
			}
			return fmt.Sprintf("%s IS %sNULL", c(col), not)
		},
		func() string { return fmt.Sprintf("%s + 2 > %s", c("i"), c("f")) },
		func() string { return fmt.Sprintf("%s * 2 - 1 >= %d", c("i"), rng.Intn(30)) },
		func() string { return fmt.Sprintf("%s / 2.0 < %.2f", c("f"), float64(rng.Intn(20)-10)/2) },
		func() string { return fmt.Sprintf("%s %% 3 = %d", c("i"), rng.Intn(3)) },
		func() string { return fmt.Sprintf("-%s < %s", c("i"), c("f")) },
	}
	atom := func() string { return atoms[rng.Intn(len(atoms))]() }
	if depth <= 0 {
		return atom()
	}
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s AND %s)", CorpusPredicate(rng, qual, depth-1), CorpusPredicate(rng, qual, depth-1))
	case 1:
		return fmt.Sprintf("(%s OR %s)", CorpusPredicate(rng, qual, depth-1), CorpusPredicate(rng, qual, depth-1))
	case 2:
		return fmt.Sprintf("NOT (%s)", CorpusPredicate(rng, qual, depth-1))
	default:
		return atom()
	}
}

// CorpusQueries builds the query corpus for one rng stream: count random
// queries over the CorpusTables schema plus the fixed regression tail.
func CorpusQueries(rng *rand.Rand, count int) []string {
	orderKeys := []string{"i", "f DESC", "s", "ts DESC", "b", "i DESC, s", "f, ts"}
	var qs []string
	for len(qs) < count {
		p := func() string { return CorpusPredicate(rng, "", rng.Intn(3)) }
		jp := func() string { return CorpusPredicate(rng, "t1.", rng.Intn(2)) }
		ok := orderKeys[rng.Intn(len(orderKeys))]
		switch rng.Intn(10) {
		case 0:
			qs = append(qs, fmt.Sprintf("SELECT * FROM t1 WHERE %s", p()))
		case 1:
			qs = append(qs, fmt.Sprintf("SELECT i, f, s FROM t1 WHERE %s ORDER BY %s LIMIT %d", p(), ok, 5+rng.Intn(60)))
		case 2:
			qs = append(qs, fmt.Sprintf("SELECT i + 1 AS x, f * 2 AS y, s FROM t1 WHERE %s ORDER BY x DESC, s", p()))
		case 3:
			qs = append(qs, fmt.Sprintf(
				"SELECT s, COUNT(*) AS c, SUM(f) AS sf, AVG(i) AS ai, MIN(f) AS mn, MAX(i) AS mx FROM t1 WHERE %s GROUP BY s HAVING c >= %d ORDER BY c DESC, s",
				p(), 1+rng.Intn(3)))
		case 4:
			qs = append(qs, fmt.Sprintf(
				"SELECT i %% 4 AS bucket, COUNT(i) AS c, MIN(s) AS mn, MAX(ts) AS mx FROM t1 WHERE %s GROUP BY i %% 4 ORDER BY bucket", p()))
		case 5:
			qs = append(qs, "SELECT b, ts, COUNT(*) AS c, AVG(f) AS af FROM t1 GROUP BY b, ts ORDER BY c DESC, b, ts")
		case 6:
			qs = append(qs, fmt.Sprintf(
				"SELECT t1.i, t1.s, t2.v FROM t1 JOIN t2 ON t1.i = t2.k WHERE %s ORDER BY t1.i, t2.v LIMIT 80", jp()))
		case 7:
			qs = append(qs, fmt.Sprintf(
				"SELECT t1.i, t1.f, t2.v FROM t1 LEFT JOIN t2 ON t1.i = t2.k AND t1.f > t2.v WHERE %s ORDER BY t1.i, t1.f, t2.v LIMIT 80", jp()))
		case 8:
			qs = append(qs, fmt.Sprintf("SELECT COUNT(*) AS c, SUM(i) AS si, AVG(f) AS af, MIN(ts) AS mn FROM t1 WHERE %s", p()))
		default:
			qs = append(qs, fmt.Sprintf("SELECT DISTINCT s, b FROM t1 WHERE %s ORDER BY s, b", p()))
		}
	}
	// Fixed regression queries: string-keyed joins, alias ORDER BY against
	// source columns, fold-insensitive ORDER BY names, empty-input grouping.
	qs = append(qs,
		"SELECT t1.s, t2.s2 FROM t1 JOIN t2 ON t1.s = t2.s2 ORDER BY t1.s, t2.s2 LIMIT 60",
		"SELECT i AS I2, f FROM t1 ORDER BY i2 DESC, F LIMIT 30",
		"SELECT COUNT(*) AS c, SUM(f) AS sf FROM t1 WHERE i > 99999",
		"SELECT s, COUNT(*) AS c FROM t1 WHERE f IS NULL AND f IS NOT NULL GROUP BY s",
		"SELECT i / 0 AS z, i % 0 AS m FROM t1 ORDER BY i LIMIT 10",
		"SELECT f FROM t1 WHERE f / 0 > 1",
		"SELECT b, MIN(b) AS mn, MAX(b) AS mx, SUM(b) AS sb FROM t1 GROUP BY b ORDER BY b",
	)
	return qs
}
