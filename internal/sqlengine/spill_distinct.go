package sqlengine

import (
	"sort"

	"datachat/internal/dataset"
)

// distinctSpiller is streaming DISTINCT's budget-overflow path. The
// in-memory phase emits first occurrences until the seen-set hits the
// budget; at that point every key emitted so far is flushed to a sorted
// on-disk run, the charge is released, and all remaining input rows are
// deferred to a pending run. resolve then dedupes the tail externally:
// sort by (key, arrival), keep each key's first arrival, subtract the
// emitted keys with a linear merge, and sort the survivors back into
// arrival order — so spilled DISTINCT keeps exactly the rows the
// materialized path keeps, in the same order, under any budget.
type distinctSpiller struct {
	se      *streamExec
	op      string
	emitted *spillRun    // keys emitted in the in-memory phase, sorted
	pending *spillWriter // deferred tail: A=row values, B=[key], Seq=arrival
	seq     int
	names   []string
	types   []dataset.Type
}

// newDistinctSpiller flushes the in-memory phase's seen keys as the sorted
// emitted-key run and opens the pending tail run.
func newDistinctSpiller(se *streamExec, op string, seenKeys []string) (*distinctSpiller, error) {
	sort.Strings(seenKeys) // strings.Compare order, matching dataset.Compare on strings
	w, err := se.newSpillWriter(op + "-keys")
	if err != nil {
		return nil, err
	}
	for _, k := range seenKeys {
		if err := w.write(&spillRec{B: []dataset.Value{dataset.Str(k)}}); err != nil {
			w.abort()
			return nil, err
		}
	}
	emitted, err := w.finish()
	if err != nil {
		return nil, err
	}
	pending, err := se.newSpillWriter(op + "-tail")
	if err != nil {
		emitted.remove()
		return nil, err
	}
	return &distinctSpiller{se: se, op: op, emitted: emitted, pending: pending}, nil
}

// add defers one chunk's rows to the pending tail run. keys may carry the
// chunk's pre-rendered row keys (from a pipeline worker); nil renders here.
func (d *distinctSpiller) add(t *dataset.Table, keys []string) error {
	if d.names == nil {
		d.names = t.ColumnNames()
		cols := t.Columns()
		d.types = make([]dataset.Type, len(cols))
		for i, c := range cols {
			d.types[i] = c.Type()
		}
	}
	for r := 0; r < t.NumRows(); r++ {
		key := ""
		if keys != nil {
			key = keys[r]
		} else {
			key = streamRowKey(t.Row(r))
		}
		rec := &spillRec{Seq: d.seq, A: t.Row(r), B: []dataset.Value{dataset.Str(key)}}
		if err := d.pending.write(rec); err != nil {
			return err
		}
		d.seq++
	}
	return nil
}

// resolve closes the tail run, dedupes it externally, and returns a pull
// over the surviving rows in arrival order.
func (d *distinctSpiller) resolve() (func() (*dataset.Table, error), error) {
	run, err := d.pending.finish()
	if err != nil {
		return nil, err
	}
	if d.names == nil { // no tail rows arrived after the switch
		d.emitted.remove()
		run.remove()
		return func() (*dataset.Table, error) { return nil, nil }, nil
	}
	batchRows := d.se.opts.chunkRows()
	var vals, keys [][]dataset.Value
	seq := 0
	flush := func(s *extSorter) error {
		if len(vals) == 0 {
			return nil
		}
		if err := s.addRun(seq, vals, keys, nil); err != nil {
			return err
		}
		seq++
		vals, keys = nil, nil
		return nil
	}

	// Sort the tail by (key, arrival); the sorter's stability makes the
	// first row of each equal-key group the key's earliest arrival.
	byKey := newExtSorter(d.se, d.op+"-spill-key", []OrderItem{{}, {}})
	rd, err := run.open()
	if err != nil {
		return nil, err
	}
	for {
		rec, err := rd.next()
		if err != nil {
			rd.close()
			return nil, err
		}
		if rec == nil {
			rd.close()
			break
		}
		vals = append(vals, rec.A)
		keys = append(keys, []dataset.Value{rec.B[0], dataset.Int(int64(rec.Seq))})
		if len(vals) >= batchRows {
			if err := flush(byKey); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(byKey); err != nil {
		return nil, err
	}

	// Linear merge against the sorted emitted-key run: both streams are in
	// strings.Compare order, so one pass subtracts the in-memory phase.
	emRd, err := d.emitted.open()
	if err != nil {
		return nil, err
	}
	var emCur *spillRec
	emEOF := false
	emittedHas := func(key dataset.Value) (bool, error) {
		for {
			if emCur == nil {
				if emEOF {
					return false, nil
				}
				rec, err := emRd.next()
				if err != nil {
					return false, err
				}
				if rec == nil {
					emEOF = true
					emRd.close()
					return false, nil
				}
				emCur = rec
			}
			switch cmp := dataset.Compare(emCur.B[0], key); {
			case cmp < 0:
				emCur = nil
			case cmp == 0:
				return true, nil
			default:
				return false, nil
			}
		}
	}

	bySeq := newExtSorter(d.se, d.op+"-spill-seq", []OrderItem{{}})
	srcs := byKey.sources()
	var prevKey dataset.Value
	havePrev := false
	seq = 0
	for {
		v, k, ok, err := byKey.mergeStep(srcs)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if havePrev && dataset.Compare(prevKey, k[0]) == 0 {
			continue // a later arrival of a key the tail already kept
		}
		prevKey, havePrev = k[0], true
		dup, err := emittedHas(k[0])
		if err != nil {
			return nil, err
		}
		if dup {
			continue
		}
		vals = append(vals, v)
		keys = append(keys, []dataset.Value{k[1]})
		if len(vals) >= batchRows {
			if err := flush(bySeq); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(bySeq); err != nil {
		return nil, err
	}
	if !emEOF {
		emRd.close()
	}

	outSrcs := bySeq.sources()
	return func() (*dataset.Table, error) {
		var rows [][]dataset.Value
		for len(rows) < batchRows {
			v, _, ok, err := bySeq.mergeStep(outSrcs)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			rows = append(rows, v)
		}
		if len(rows) == 0 {
			return nil, nil
		}
		return buildValueChunk(d.names, d.types, rows)
	}, nil
}
