package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"datachat/internal/board"
	"datachat/internal/client"
	"datachat/internal/cloud"
	"datachat/internal/core"
	"datachat/internal/dataset"
	"datachat/internal/faults"
	"datachat/internal/recipe"
	"datachat/internal/scheduler"
	"datachat/internal/server"
	"datachat/internal/skills"
	"datachat/internal/wire"
)

// TestChaosSchedulerVsInteractive is the scheduler chaos suite: one shared
// platform where scheduled refreshes run against a fault-injected warehouse
// as background jobs while interactive clients hammer the HTTP API the whole
// time. It pins three invariants under -race:
//
//  1. interactive admission stays fast — the p50 admission wait is bounded
//     even with background refreshes competing for slots;
//  2. the background class actually carries the scheduled runs (they never
//     ride the interactive class);
//  3. no degraded refresh is ever published to a board without its Degraded
//     annotation — every published version cross-checks against the run
//     history's degraded flag.
//
// The injector is seeded and only warehouse scans draw from it (interactive
// traffic reads a registered file), so which refreshes degrade is
// deterministic run to run.
func TestChaosSchedulerVsInteractive(t *testing.T) {
	ctx := context.Background()
	p := core.New()
	db := cloud.NewDatabase("wh", cloud.DefaultPricing, 64)
	tb, err := dataset.ReadCSVString("metrics", schedMetricsCSV(300, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(tb); err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(faults.Schedule{
		Seed:          7,
		PermanentRate: 0.5,
		Ops:           map[string]bool{"scan": true},
	}, nil)
	if err := p.ConnectDatabase(faults.WrapDB(db, inj)); err != nil {
		t.Fatal(err)
	}
	p.RegisterFile("traffic.csv", schedMetricsCSV(60, 3))

	srv := server.New(p, server.Config{MaxInFlight: 2, MaxBackground: 1, MaxQueue: 256})
	clock := faults.NewVirtualClock(time.Unix(1_700_000_000, 0))
	hub := board.NewHub()
	hub.SetClock(clock)
	sched := scheduler.New(p, hub)
	sched.SetClock(clock)
	srv.AttachScheduler(sched, hub)
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := client.New(hs.URL)

	// The scheduler's session degrades (block sample) instead of failing
	// outright when the warehouse is faulted — the suite's whole point is
	// that those degraded refreshes arrive annotated.
	sess, err := p.EnsureSession("sched:chaos", "sched")
	if err != nil {
		t.Fatal(err)
	}
	sess.Context().Degrade = skills.DegradePolicy{Enabled: true, SampleRate: 1}

	if _, err := c.CreateSchedule(ctx, wire.ScheduleRequest{
		Name: "chaos", User: "sched", Session: "sched:chaos",
		Recipe: schedRecipe(t), EveryMs: 60_000, Board: "chaos", Tile: "hot",
	}); err != nil {
		t.Fatal(err)
	}

	// Interactive traffic: four clients, each on its own session, running a
	// small file-backed pipeline in a loop for the duration of the chaos.
	prog := []recipe.Step{
		{Skill: "LoadData", Args: skills.Args{"source": "traffic.csv"}, Output: "d"},
		{Skill: "KeepRows", Inputs: []string{"d"}, Args: skills.Args{"condition": "val >= 500"}, Output: "hot"},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		if _, err := c.CreateSession(ctx, fmt.Sprintf("chaos-user-%d", g), "u"); err != nil {
			t.Fatal(err)
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := fmt.Sprintf("chaos-user-%d", g)
			for i := 0; i < 20; i++ {
				_, err := c.Run(ctx, sess, wire.RunRequest{User: "u", Program: prog})
				if err != nil && !client.IsThrottled(err) {
					errs <- fmt.Errorf("interactive run (session %s, i=%d): %w", sess, i, err)
					return
				}
			}
		}(g)
	}

	// Scheduled refreshes tick on the virtual clock while the interactive
	// flood is in flight; the warehouse data changes twice so refreshes mix
	// cache-served and freshly scanned (fault-exposed) runs.
	const ticks = 12
	for i := 0; i < ticks; i++ {
		clock.Advance(time.Minute)
		sched.RunDue(ctx)
		if i == 3 || i == 7 {
			nt, err := dataset.ReadCSVString("metrics", schedMetricsCSV(300, i))
			if err != nil {
				t.Fatal(err)
			}
			if err := db.ReplaceTable(nt); err != nil {
				t.Fatal(err)
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission == nil || st.Scheduler == nil || st.Boards == nil {
		t.Fatalf("statsz missing sections: %+v", st)
	}
	// Interactive latency interference is bounded: each pipeline is
	// millisecond-scale, so even queued behind a refresh the median
	// admission wait must stay well under a second.
	if p50 := st.Admission.Interactive.P50WaitMs; p50 > 250 {
		t.Fatalf("interactive p50 admission wait %vms; want bounded", p50)
	}
	if st.Admission.Interactive.Admitted < 80 {
		t.Fatalf("interactive admitted %d; want all 80 runs", st.Admission.Interactive.Admitted)
	}
	// The scheduled refreshes ran under the background class.
	if st.Admission.Background.Admitted == 0 {
		t.Fatalf("no background admissions: %+v", st.Admission)
	}
	if st.Scheduler.Runs == 0 {
		t.Fatalf("scheduler never ran: %+v", st.Scheduler)
	}

	// Cross-check every published version against the run history: a run
	// that degraded must carry the annotation on its board event, and a run
	// that failed must surface its error instead of a silent stale tile.
	job, err := c.Schedule(ctx, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	byVersion := map[uint64]wire.ScheduleRun{}
	published := 0
	for _, rec := range job.History {
		if rec.BoardVersion > 0 {
			byVersion[rec.BoardVersion] = rec
			published++
		}
	}
	if published == 0 {
		t.Fatal("no refresh was published")
	}
	degradedSeen := false
	n, err := c.SubscribeBoard(ctx, "chaos", client.SubscribeOptions{MaxUpdates: published},
		func(ev *wire.BoardEvent) error {
			rec, ok := byVersion[ev.Version]
			if !ok {
				return fmt.Errorf("board version %d has no run record", ev.Version)
			}
			if rec.Error != "" && ev.RunError == "" {
				return fmt.Errorf("failed run %d published without its error", rec.Seq)
			}
			if rec.Degraded != ev.Degraded {
				return fmt.Errorf("run %d degraded=%v but board event degraded=%v", rec.Seq, rec.Degraded, ev.Degraded)
			}
			if ev.Degraded {
				degradedSeen = true
				if ev.DegradedNote == "" {
					return fmt.Errorf("degraded event %d has no note", ev.Version)
				}
			}
			return nil
		})
	if err != nil {
		t.Fatalf("SubscribeBoard: %v", err)
	}
	if n != published {
		t.Fatalf("subscriber saw %d of %d published updates", n, published)
	}
	// The fault schedule must actually have degraded something, or the
	// annotation check above is vacuous.
	if !degradedSeen {
		t.Fatalf("no degraded refresh was published; stats=%+v", st.Scheduler)
	}
}
