// Command dcconform drives the conformance corpus from the shell: lint the
// case files, regenerate the gen_ corpus, or run every case through all
// five execution routes.
//
//	dcconform -lint ./testdata/conformance     # structural checks only
//	dcconform -gen ./testdata/conformance      # rewrite gen_*.case goldens
//	dcconform ./testdata/conformance           # full five-route run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"datachat/internal/conformance"
)

func main() {
	lint := flag.Bool("lint", false, "lint the case files without executing them")
	gen := flag.Bool("gen", false, "regenerate the gen_*.case corpus goldens")
	flag.Parse()
	dir := flag.Arg(0)
	if dir == "" {
		dir = "testdata/conformance"
	}
	switch {
	case *gen:
		cases, err := conformance.Generate()
		if err != nil {
			fail(err)
		}
		if err := conformance.WriteCorpus(dir, cases); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d generated cases to %s\n", len(cases), dir)
	case *lint:
		cases, errs := conformance.LintDir(dir)
		for _, err := range errs {
			fmt.Fprintln(os.Stderr, "lint:", err)
		}
		if len(errs) > 0 {
			os.Exit(1)
		}
		fmt.Printf("%d cases lint clean\n", len(cases))
	default:
		cases, err := conformance.LoadDir(dir)
		if err != nil {
			fail(err)
		}
		failures := 0
		for _, c := range cases {
			if err := runCase(c); err != nil {
				failures++
				fmt.Fprintln(os.Stderr, "FAIL:", err)
			}
		}
		if failures > 0 {
			fail(fmt.Errorf("%d of %d cases failed", failures, len(cases)))
		}
		fmt.Printf("%d cases passed on all %d routes\n", len(cases), len(conformance.Routes))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dcconform:", err)
	os.Exit(1)
}

func runCase(c *conformance.Case) error {
	if c.DryRunError == "" {
		rep, err := conformance.DryRun(c)
		if err != nil {
			return fmt.Errorf("%s: dry-run: %w", c.Name, err)
		}
		if err := conformance.CheckExplain(c, rep); err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		if _, err := conformance.Verify(c); err != nil {
			return err
		}
		return nil
	}
	if _, err := conformance.DryRun(c); err == nil {
		return fmt.Errorf("%s: dry-run succeeded, want error containing %q", c.Name, c.DryRunError)
	} else if !strings.Contains(err.Error(), c.DryRunError) {
		return fmt.Errorf("%s: dry-run error %q does not contain %q", c.Name, err.Error(), c.DryRunError)
	}
	return nil
}
